package hybrid

import (
	"context"
	"fmt"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// Candidate is one backend's finished attempt inside an orchestration.
type Candidate struct {
	// Backend is the registered backend name.
	Backend string
	// Decoded is the validated result (nil when Err is set or validation
	// failed).
	Decoded *core.Decoded
	// Cost is the true plan cost of Decoded.Order, recomputed by the
	// arbiter from the query — never the QUBO energy the backend
	// optimised.
	Cost float64
	// Err is the backend's error, or the arbiter's validation error.
	Err error
	// Elapsed is the backend's solve latency.
	Elapsed time.Duration
	// Fallback marks a candidate that ran purely as the safety floor of a
	// learned routing decision. If it wins only because every primary
	// candidate failed, the arbiter records a degraded outcome for it
	// instead of a win — a forfeit says nothing about relative plan
	// quality, and counting it as a win poisons reward signals derived
	// from the win statistics.
	Fallback bool
}

// vet validates a backend result the way the §3.5 post-processing does —
// the decoded order must exist, be a permutation of all relations, and is
// re-scored by true plan cost so a backend reporting a stale or energy-
// based cost cannot win on a lie.
func vet(enc *core.Encoding, backend string, d *core.Decoded, err error, elapsed time.Duration) Candidate {
	c := Candidate{Backend: backend, Err: err, Elapsed: elapsed}
	if err != nil {
		return c
	}
	if d == nil || !d.Valid {
		c.Err = fmt.Errorf("hybrid: backend %q returned no valid join order", backend)
		return c
	}
	n := enc.Query.NumRelations()
	if !d.Order.IsPermutation(n) {
		c.Err = fmt.Errorf("hybrid: backend %q returned order %v, not a permutation of %d relations",
			backend, d.Order, n)
		return c
	}
	c.Decoded = d
	c.Cost = enc.Query.Cost(d.Order)
	return c
}

// arbitrate picks the cheapest valid candidate, records win/loss and
// latency outcomes into the metrics registry, and assembles the Outcome.
// With no valid candidate it surfaces the first backend error (preferring
// a context error so the HTTP layer maps deadlines to 504).
func (b *Backend) arbitrate(ctx context.Context, strategy string, candidates []Candidate) (*Outcome, error) {
	best := -1
	for i, c := range candidates {
		if c.Decoded == nil {
			continue
		}
		if best < 0 || c.Cost < candidates[best].Cost {
			best = i
		}
	}
	// A fallback candidate that "won" while some primary ran but none
	// produced a valid plan won by forfeit, not by arbitration.
	forfeit := false
	if best >= 0 && candidates[best].Fallback {
		hadPrimary, validPrimary := false, false
		for _, c := range candidates {
			if c.Fallback {
				continue
			}
			hadPrimary = true
			if c.Decoded != nil {
				validPrimary = true
			}
		}
		forfeit = hadPrimary && !validPrimary
	}
	if b.cfg.Metrics != nil {
		for i, c := range candidates {
			bm := b.cfg.Metrics.Backend(c.Backend)
			bm.Observe(c.Elapsed, c.Err)
			switch {
			case i != best:
				bm.RecordLoss()
			case forfeit:
				bm.RecordDegraded()
			default:
				bm.RecordWin()
			}
		}
	}
	if best >= 0 {
		if span := obs.ActiveSpan(ctx); span != nil {
			span.SetAttr("hybrid_winner", candidates[best].Backend)
			span.SetAttr("hybrid_candidates", len(candidates))
			if forfeit {
				span.SetAttr("hybrid_forfeit", true)
			}
		}
		obs.Logger(ctx).DebugContext(ctx, "hybrid arbitration",
			"strategy", strategy,
			"winner", candidates[best].Backend,
			"cost", candidates[best].Cost,
			"candidates", len(candidates))
	}
	if best < 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("hybrid: no valid candidate from %d backends before deadline: %w",
				len(candidates), err)
		}
		for _, c := range candidates {
			if c.Err != nil {
				return nil, fmt.Errorf("hybrid: no valid candidate from %d backends: %w",
					len(candidates), c.Err)
			}
		}
		return nil, fmt.Errorf("hybrid: no candidates produced (empty portfolio?): %w",
			service.ErrBadRequest)
	}
	return &Outcome{
		Strategy:   strategy,
		Winner:     candidates[best].Backend,
		Best:       candidates[best].Decoded,
		Candidates: candidates,
	}, nil
}
