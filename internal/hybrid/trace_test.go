package hybrid

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// findSpan walks a snapshot tree depth-first for the first span named name.
func findSpan(s *obs.SpanSnapshot, name string) *obs.SpanSnapshot {
	if s.Name == name {
		return s
	}
	for i := range s.Children {
		if found := findSpan(&s.Children[i], name); found != nil {
			return found
		}
	}
	return nil
}

// openSpans counts spans still marked open in a snapshot tree.
func openSpans(s *obs.SpanSnapshot) int {
	n := 0
	if s.Open {
		n++
	}
	for i := range s.Children {
		n += openSpans(&s.Children[i])
	}
	return n
}

// TestHybridTraceEndToEnd is the tracing acceptance path: one
// POST /v1/optimize with the hybrid race strategy must yield a stored
// trace — addressable by the response's X-Request-ID — whose tree carries
// the encode stages, one child span per portfolio racer (with a
// cancellation reason on the loser), and the decode stage.
func TestHybridTraceEndToEnd(t *testing.T) {
	reg := testRegistry(t)
	if err := reg.Register(&slowBackend{}); err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(obs.Options{Capacity: 32, SampleRate: 1})
	svc := service.New(reg, service.Config{Workers: 2, DefaultBackend: "dp", Tracer: tracer})
	hb, err := New(Config{Registry: reg, Metrics: svc.Metrics()})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(hb); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	defer func() {
		ts.Close()
		svc.Close(context.Background())
	}()

	raw, _ := json.Marshal(map[string]any{
		"backend": "hybrid", "query": json.RawMessage(chainCatalog),
		"strategy": "race", "portfolio": []string{"greedy", "slow"},
		"thresholds": 2, "reads": 4, "seed": 11, "timeout_ms": 10000,
	})
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize: status %d", resp.StatusCode)
	}
	rid := resp.Header.Get("X-Request-ID")
	if rid == "" {
		t.Fatal("response carries no X-Request-ID")
	}

	tresp, err := http.Get(ts.URL + "/debug/traces?id=" + rid)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces?id=%s: status %d", rid, tresp.StatusCode)
	}
	var payload struct {
		Traces []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Traces) != 1 {
		t.Fatalf("got %d traces for id %s, want 1", len(payload.Traces), rid)
	}
	trace := payload.Traces[0]
	if trace.TraceID != rid {
		t.Errorf("trace id = %q, want the request id %q", trace.TraceID, rid)
	}
	root := &trace.Root
	if root.Name != "optimize" {
		t.Errorf("root span = %q, want optimize", root.Name)
	}

	// Encode stages (cold cache: the full MILP → BILP → QUBO chain ran).
	for _, name := range []string{"encode", "encode.milp", "encode.bilp", "encode.qubo"} {
		if findSpan(root, name) == nil {
			t.Errorf("trace is missing span %q", name)
		}
	}
	// One child span per racer, under the solve span.
	solve := findSpan(root, "solve")
	if solve == nil {
		t.Fatal("trace is missing the solve span")
	}
	if findSpan(solve, "racer.greedy") == nil {
		t.Error("trace is missing racer.greedy")
	}
	loser := findSpan(solve, "racer.slow")
	if loser == nil {
		t.Fatal("trace is missing racer.slow")
	}
	if reason, ok := loser.Attrs["cancel_reason"]; !ok || reason != "lost_race" {
		t.Errorf("loser cancel_reason = %v, want lost_race (attrs %v)", reason, loser.Attrs)
	}
	if findSpan(root, "decode") == nil {
		t.Error("trace is missing the decode span")
	}
	if n := openSpans(root); n != 0 {
		t.Errorf("%d spans still open in the stored trace, want 0", n)
	}
}

// TestRaceLoserSpansCloseExactlyOnce pins the racer span lifecycle under
// -race: a cancelled loser's goroutine must close its span exactly once —
// no span left open, no goroutine leaked — and record why it stopped.
func TestRaceLoserSpansCloseExactlyOnce(t *testing.T) {
	base := runtime.NumGoroutine()
	reg := testRegistry(t)
	released := make(chan struct{})
	if err := reg.Register(&slowBackend{released: released}); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	tracer := obs.NewTracer(obs.Options{Capacity: 8, SampleRate: 1})

	_, enc := cliqueInstance(t, 6, 3)
	ctx := obs.NewContext(context.Background(), tracer)
	ctx, root := tracer.Start(ctx, "test-root")
	out, err := b.Orchestrate(ctx, enc, service.Params{
		Reads: 4, Seed: 3,
		Hybrid: service.HybridParams{Strategy: StrategyRace, Portfolio: []string{"greedy", "slow"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "greedy" {
		t.Errorf("winner = %q, want greedy (slow never answers)", out.Winner)
	}
	select {
	case <-released:
	case <-time.After(3 * time.Second):
		t.Fatal("slow racer never observed cancellation")
	}
	// The loser closes its span before reporting its candidate, and the
	// race drains reported losers before arbitrating — so by now every
	// racer span under the root must be closed.
	if n := root.OpenSpans(); n != 1 { // only the still-running root itself
		t.Errorf("open spans under root = %d, want 1 (the root)", n)
	}
	root.End(nil)

	trace, ok := tracer.Find(root.TraceID())
	if !ok {
		t.Fatal("trace was not stored despite SampleRate 1")
	}
	loser := findSpan(&trace.Root, "racer.slow")
	if loser == nil {
		t.Fatal("stored trace is missing racer.slow")
	}
	if loser.Open {
		t.Error("loser span still open in stored trace")
	}
	if reason := loser.Attrs["cancel_reason"]; reason != "lost_race" {
		t.Errorf("loser cancel_reason = %v, want lost_race", reason)
	}
	if loser.Error != "" {
		t.Errorf("cancelled loser marked errored (%q); cancellation is an outcome, not a failure", loser.Error)
	}
	if n := openSpans(&trace.Root); n != 0 {
		t.Errorf("%d spans still open in the stored trace, want 0", n)
	}
	settleGoroutines(t, base)
}
