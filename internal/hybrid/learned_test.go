package hybrid

import (
	"context"
	"errors"
	"testing"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
	"quantumjoin/internal/sched"
	"quantumjoin/internal/service"
)

func testRouter(t *testing.T, arms ...string) *sched.Router {
	t.Helper()
	r, err := sched.NewRouter(sched.Config{Arms: arms, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// pretrain drives the router to a strong preference by replaying decide/
// update rounds on the query with fixed per-arm rewards.
func pretrain(r *sched.Router, q *join.Query, rewards map[string]float64, rounds int) {
	for i := 0; i < rounds; i++ {
		d := r.Decide(q, sched.Context{Budget: time.Second})
		for _, arm := range d.Arms {
			r.Update(&d, arm, rewards[arm])
		}
	}
}

func TestLearnedRequiresRouter(t *testing.T) {
	b, err := New(Config{Registry: testRegistry(t)})
	if err != nil {
		t.Fatal(err)
	}
	_, enc := cliqueInstance(t, 5, 21)
	_, err = b.Orchestrate(context.Background(), enc, service.Params{
		Hybrid: service.HybridParams{Strategy: StrategyLearned},
	})
	if !errors.Is(err, service.ErrBadRequest) {
		t.Errorf("learned without router: err = %v, want ErrBadRequest", err)
	}
	// And a learned default strategy without a router must not construct.
	if _, err := New(Config{Registry: testRegistry(t), Strategy: StrategyLearned}); err == nil {
		t.Error("New accepted learned default strategy without a router")
	}
}

// TestLearnedColdRacesFullSet: an untrained router must race every arm
// (cold-start exploration) and the orchestration must return a valid plan
// while feeding one reward update per invoked arm back into the model.
func TestLearnedColdRacesFullSet(t *testing.T) {
	reg := testRegistry(t)
	router := testRouter(t, "dp", "tabu")
	b, err := New(Config{Registry: reg, Router: router})
	if err != nil {
		t.Fatal(err)
	}
	q, enc := cliqueInstance(t, 6, 22)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := b.Orchestrate(ctx, enc, service.Params{
		Reads:  20,
		Seed:   22,
		Hybrid: service.HybridParams{Strategy: StrategyLearned},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Best.Order.IsPermutation(q.NumRelations()) {
		t.Fatalf("invalid result %+v", out.Best)
	}
	seen := map[string]bool{}
	for _, c := range out.Candidates {
		seen[c.Backend] = true
	}
	for _, arm := range []string{"dp", "tabu", "greedy"} {
		if !seen[arm] {
			t.Errorf("cold decision did not invoke %q: %v", arm, seen)
		}
	}
	s := router.Snapshot()
	if s.Counters.Decisions != 1 {
		t.Errorf("decisions = %d, want 1", s.Counters.Decisions)
	}
	if s.Counters.Updates != int64(len(out.Candidates)) {
		t.Errorf("updates = %d, want one per candidate (%d)", s.Counters.Updates, len(out.Candidates))
	}
}

// TestLearnedDirectInvokesPredictedBestPlusFloor: once the model strongly
// prefers one arm, the orchestration must invoke only that arm plus the
// classical floor — the invocation saving the predict-then-race design
// exists for.
func TestLearnedDirectInvokesPredictedBestPlusFloor(t *testing.T) {
	reg := testRegistry(t)
	router := testRouter(t, "dp", "tabu")
	b, err := New(Config{Registry: reg, Router: router})
	if err != nil {
		t.Fatal(err)
	}
	q, enc := cliqueInstance(t, 6, 23)
	pretrain(router, q, map[string]float64{"dp": 1.0, "greedy": 0.4, "tabu": 0.1}, 15)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := b.Orchestrate(ctx, enc, service.Params{
		Reads:  20,
		Seed:   23,
		Hybrid: service.HybridParams{Strategy: StrategyLearned},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Candidates) != 2 {
		t.Fatalf("direct decision invoked %d backends %+v, want dp + greedy only",
			len(out.Candidates), out.Candidates)
	}
	seen := map[string]bool{}
	for _, c := range out.Candidates {
		seen[c.Backend] = true
	}
	if !seen["dp"] || !seen["greedy"] {
		t.Fatalf("direct candidates = %v, want dp + greedy", seen)
	}
	if out.Winner != "dp" && out.Winner != "greedy" {
		t.Errorf("winner = %q, want a classical arm", out.Winner)
	}
	if !out.Best.Order.IsPermutation(q.NumRelations()) {
		t.Fatalf("invalid result %+v", out.Best)
	}
}

// TestLearnedForfeitRecordsDegraded is the satellite regression test: when
// the predicted-best arm fails and the safety floor answers by forfeit,
// the floor must record a degraded outcome, NOT an arbitration win — a
// fallback winning because everything else broke must not poison the
// win/loss statistics reward signals are derived from.
func TestLearnedForfeitRecordsDegraded(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.Register(service.NewGreedyBackend()); err != nil {
		t.Fatal(err)
	}
	probe := &probeBackend{} // always fails
	if err := reg.Register(probe); err != nil {
		t.Fatal(err)
	}
	m := service.NewMetrics()
	router := testRouter(t, "probe")
	b, err := New(Config{Registry: reg, Metrics: m, Router: router})
	if err != nil {
		t.Fatal(err)
	}
	q, enc := cliqueInstance(t, 6, 24)
	// Teach the router to trust probe so the decision is direct-to-probe
	// with greedy riding along purely as the safety arm.
	pretrain(router, q, map[string]float64{"probe": 1.0, "greedy": 0.1}, 12)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := b.Orchestrate(ctx, enc, service.Params{
		Seed:   24,
		Hybrid: service.HybridParams{Strategy: StrategyLearned},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "greedy" {
		t.Fatalf("winner = %q, want the greedy safety arm after probe failed", out.Winner)
	}
	var fallbackSeen bool
	for _, c := range out.Candidates {
		if c.Backend == "greedy" && c.Fallback {
			fallbackSeen = true
		}
	}
	if !fallbackSeen {
		t.Error("greedy candidate not marked Fallback despite riding along as safety arm")
	}
	gs, _ := m.ReadBackend("greedy")
	if gs.Wins != 0 {
		t.Errorf("greedy wins = %d, want 0 — a forfeit is not an arbitration win", gs.Wins)
	}
	if gs.Degraded != 1 {
		t.Errorf("greedy degraded = %d, want 1", gs.Degraded)
	}
	ps, _ := m.ReadBackend("probe")
	if ps.Losses != 1 {
		t.Errorf("probe losses = %d, want 1", ps.Losses)
	}
}

// TestArbiterForfeitAttribution pins the attribution rules at the arbiter
// level: a fallback winning by forfeit records degraded; a fallback
// beating a valid primary on cost records a genuine win.
func TestArbiterForfeitAttribution(t *testing.T) {
	// Any permutation works; arbitrate compares Candidate.Cost directly.
	valid := func() *core.Decoded {
		return &core.Decoded{Valid: true, Order: join.Order{0, 1, 2, 3}}
	}

	cases := []struct {
		name       string
		candidates []Candidate
		wantWin    map[string]int64
		wantDeg    map[string]int64
	}{
		{
			name: "forfeit",
			candidates: []Candidate{
				{Backend: "tabu", Err: errors.New("boom")},
				{Backend: "greedy", Decoded: valid(), Cost: 10, Fallback: true},
			},
			wantWin: map[string]int64{"greedy": 0, "tabu": 0},
			wantDeg: map[string]int64{"greedy": 1, "tabu": 0},
		},
		{
			name: "fallback beats valid primary on cost",
			candidates: []Candidate{
				{Backend: "tabu", Decoded: valid(), Cost: 20},
				{Backend: "greedy", Decoded: valid(), Cost: 10, Fallback: true},
			},
			wantWin: map[string]int64{"greedy": 1, "tabu": 0},
			wantDeg: map[string]int64{"greedy": 0, "tabu": 0},
		},
		{
			name: "primary win unaffected",
			candidates: []Candidate{
				{Backend: "tabu", Decoded: valid(), Cost: 10},
				{Backend: "greedy", Decoded: valid(), Cost: 20, Fallback: true},
			},
			wantWin: map[string]int64{"greedy": 0, "tabu": 1},
			wantDeg: map[string]int64{"greedy": 0, "tabu": 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := service.NewMetrics()
			b, err := New(Config{Registry: testRegistry(t), Metrics: m})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := b.arbitrate(context.Background(), StrategyLearned, tc.candidates); err != nil {
				t.Fatal(err)
			}
			for name, want := range tc.wantWin {
				if bs, _ := m.ReadBackend(name); bs.Wins != want {
					t.Errorf("%s wins = %d, want %d", name, bs.Wins, want)
				}
			}
			for name, want := range tc.wantDeg {
				if bs, _ := m.ReadBackend(name); bs.Degraded != want {
					t.Errorf("%s degraded = %d, want %d", name, bs.Degraded, want)
				}
			}
		})
	}
}

// TestLearnedSkipsOpenBreakerArm: an arm whose breaker reports open must
// not be invoked, whatever the model thinks of it.
func TestLearnedSkipsOpenBreakerArm(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.Register(service.NewGreedyBackend()); err != nil {
		t.Fatal(err)
	}
	tripped := &trippedBackend{}
	if err := reg.Register(tripped); err != nil {
		t.Fatal(err)
	}
	router := testRouter(t, "tripped")
	b, err := New(Config{Registry: reg, Router: router})
	if err != nil {
		t.Fatal(err)
	}
	_, enc := cliqueInstance(t, 5, 26)
	out, err := b.Orchestrate(context.Background(), enc, service.Params{
		Hybrid: service.HybridParams{Strategy: StrategyLearned},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range out.Candidates {
		if c.Backend == "tripped" {
			t.Fatal("open-breaker arm was invoked")
		}
	}
	if out.Winner != "greedy" {
		t.Errorf("winner = %q, want greedy", out.Winner)
	}
}

// trippedBackend reports an open breaker and must never be asked to solve.
type trippedBackend struct{}

func (b *trippedBackend) Name() string { return "tripped" }

func (b *trippedBackend) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	return nil, errors.New("tripped: must not be called")
}

func (b *trippedBackend) Health() service.BackendHealth {
	return service.BackendHealth{State: service.HealthOpen}
}
