// Package hybrid orchestrates the registered solver backends into a single
// deadline-aware meta-backend, following the hybrid quantum-classical
// framing of the paper's co-design discussion: near-term quantum solvers
// are unreliable per-shot, so production use races them against (or hedges
// them behind) classical baselines and lets an arbiter pick the best valid
// plan produced before the deadline.
//
// Two strategies are provided:
//
//   - "race": fan the encoded instance across a portfolio of backends
//     concurrently; the first valid join order wins and the rest are
//     cancelled. Latency-optimal when any single backend may stall.
//   - "staged": run the classical stage (greedy, then DP when the instance
//     is small enough) for an instant feasible incumbent, then — after a
//     hedge delay — launch the quantum-simulated portfolio warm-started
//     from that incumbent, improving the answer anytime until the deadline.
//     Quality-optimal: the final plan is never worse than the classical
//     incumbent.
//
// Every candidate is validated and re-scored by true plan cost (Query.Cost
// of the decoded order), never by QUBO energy, and per-backend win/loss
// and latency outcomes are recorded into the service metrics registry.
package hybrid

import (
	"context"
	"fmt"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/sched"
	"quantumjoin/internal/service"
)

// Strategy names accepted by Config.Strategy and Params.Hybrid.Strategy.
const (
	StrategyRace   = "race"
	StrategyStaged = "staged"
	// StrategyLearned routes with the contextual-bandit scheduler
	// (Config.Router): straight to the predicted-best backend when the
	// model is confident, an uncertainty-sized race when not, the
	// classical floor always riding along as a safety arm. Requires a
	// configured router.
	StrategyLearned = "learned"
)

// Name is the registry name of the hybrid backend.
const Name = "hybrid"

// Config assembles a hybrid Backend over an existing registry.
type Config struct {
	// Registry resolves portfolio backend names (required).
	Registry *service.Registry
	// Metrics, when non-nil, receives per-backend win/loss and latency
	// outcomes from the arbiter.
	Metrics *service.Metrics
	// Strategy is the default strategy when a request names none
	// (default "staged").
	Strategy string
	// Portfolio is the default backend portfolio: the racers for "race",
	// the quantum stage for "staged" (the classical stage is always
	// greedy+DP). Default: anneal, tabu, qaoa — filtered to what the
	// registry actually has.
	Portfolio []string
	// HedgeDelay is the default pause between the classical incumbent and
	// the quantum launch in the staged strategy (default 25ms). The pause
	// lets cheap requests return without ever spinning up samplers.
	HedgeDelay time.Duration
	// MinBudget is the minimum remaining deadline worth launching a
	// quantum stage for (default 10ms); below it the staged strategy
	// returns the classical incumbent immediately.
	MinBudget time.Duration
	// MaxDPRelations caps the instance size for the DP pass of the staged
	// classical stage, which does not poll the context (default 18).
	MaxDPRelations int
	// Router is the learned scheduler behind the "learned" strategy:
	// requests selecting it are routed per its contextual-bandit decision,
	// and arbiter outcomes feed its reward updates. Required for
	// StrategyLearned, ignored by the other strategies.
	Router *sched.Router
}

func (c Config) withDefaults() Config {
	if c.Strategy == "" {
		c.Strategy = StrategyStaged
	}
	if c.Portfolio == nil {
		c.Portfolio = []string{"anneal", "tabu", "qaoa"}
	}
	if c.HedgeDelay == 0 {
		c.HedgeDelay = 25 * time.Millisecond
	}
	if c.MinBudget == 0 {
		c.MinBudget = 10 * time.Millisecond
	}
	if c.MaxDPRelations == 0 {
		c.MaxDPRelations = 18
	}
	return c
}

// Backend is the hybrid orchestrator; it implements service.Backend and is
// safe for concurrent use.
type Backend struct {
	cfg Config
}

// New builds the hybrid backend. It returns an error when the registry is
// missing or the default strategy is unknown.
func New(cfg Config) (*Backend, error) {
	cfg = cfg.withDefaults()
	if cfg.Registry == nil {
		return nil, fmt.Errorf("hybrid: config needs a backend registry")
	}
	switch cfg.Strategy {
	case StrategyRace, StrategyStaged:
	case StrategyLearned:
		if cfg.Router == nil {
			return nil, fmt.Errorf("hybrid: the learned default strategy needs a configured router")
		}
	default:
		return nil, fmt.Errorf("hybrid: unknown default strategy %q", cfg.Strategy)
	}
	return &Backend{cfg: cfg}, nil
}

// Name implements service.Backend.
func (b *Backend) Name() string { return Name }

// Solve implements service.Backend: it dispatches on the request's
// strategy and returns the arbiter's pick.
func (b *Backend) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	out, err := b.Orchestrate(ctx, enc, p)
	if err != nil {
		return nil, err
	}
	return out.Best, nil
}

// Outcome is the full orchestration result, exposing what Solve discards.
type Outcome struct {
	// Strategy is the strategy that ran.
	Strategy string
	// Winner is the backend whose candidate the arbiter selected.
	Winner string
	// Best is the selected decoded join order.
	Best *core.Decoded
	// Candidates are all finished attempts, including losers and errors.
	Candidates []Candidate
}

// Orchestrate runs the selected strategy and returns the arbitrated
// outcome. It is the programmatic entry point for callers that want the
// losing candidates too (benchmarks, tests).
func (b *Backend) Orchestrate(ctx context.Context, enc *core.Encoding, p service.Params) (*Outcome, error) {
	strategy := p.Hybrid.Strategy
	if strategy == "" {
		strategy = b.cfg.Strategy
	}
	portfolio, skippedOpen, err := b.portfolio(p)
	if err != nil {
		return nil, err
	}
	switch strategy {
	case StrategyRace:
		return b.race(ctx, enc, p, portfolio, skippedOpen)
	case StrategyStaged:
		return b.staged(ctx, enc, p, portfolio, skippedOpen)
	case StrategyLearned:
		return b.learned(ctx, enc, p)
	default:
		return nil, fmt.Errorf("hybrid: unknown strategy %q (have: race, staged, learned): %w",
			strategy, service.ErrBadRequest)
	}
}

// portfolio resolves the request's (or the default) portfolio against the
// registry. Unknown names are client errors; the hybrid backend itself is
// rejected to keep orchestration non-recursive. A default portfolio is
// silently filtered to registered backends so a slim registry still works.
//
// Backends whose circuit breaker reports open (see service.HealthReporter)
// are skipped — launching a racer that is guaranteed to fast-fail wastes a
// goroutine and pollutes the loss statistics — and the skip count is
// returned so the strategies can distinguish "no such backends" (a client
// error) from "all backends tripped" (transient unavailability, 503).
// Half-open backends stay in: portfolio traffic is how they get probed
// back to health.
func (b *Backend) portfolio(p service.Params) ([]string, int, error) {
	names := p.Hybrid.Portfolio
	explicit := len(names) > 0
	if !explicit {
		names = b.cfg.Portfolio
	}
	var out []string
	skippedOpen := 0
	for _, name := range names {
		if name == Name {
			return nil, 0, fmt.Errorf("hybrid: portfolio must not include %q itself: %w",
				Name, service.ErrBadRequest)
		}
		be, ok := b.cfg.Registry.Get(name)
		if !ok {
			if explicit {
				return nil, 0, fmt.Errorf("hybrid: unknown portfolio backend %q: %w",
					name, service.ErrBadRequest)
			}
			continue
		}
		if hr, ok := be.(service.HealthReporter); ok && hr.Health().State == service.HealthOpen {
			skippedOpen++
			continue
		}
		out = append(out, name)
	}
	if explicit && len(out) == 0 && skippedOpen == 0 {
		return nil, 0, fmt.Errorf("hybrid: empty portfolio: %w", service.ErrBadRequest)
	}
	return out, skippedOpen, nil
}

// subParams derives the parameters passed to a portfolio backend: the
// hybrid knobs are stripped (they are meaningless one level down) and the
// warm-start state is attached when the strategy produced one.
func subParams(p service.Params, warm []bool) service.Params {
	p.Hybrid = service.HybridParams{}
	p.InitialState = warm
	return p
}
