package hybrid

import (
	"context"
	"fmt"
	"strings"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/sched"
	"quantumjoin/internal/service"
)

// learned is the predict-then-race strategy: the contextual-bandit router
// scores every available arm against the request features and decides
// between routing straight to the predicted-best backend (plus the
// classical floor as a safety arm) and racing an uncertainty-sized
// portfolio. Execution is staged-style — classical arms run synchronously
// to establish an incumbent, quantum arms launch warm-started from it and
// are collected anytime until the deadline — and the arbiter's ground
// truth feeds reward updates back into the router: true plan-cost ratio
// versus the best candidate minus a deadline-consumption penalty, zero for
// arms that failed or missed the deadline.
func (b *Backend) learned(ctx context.Context, enc *core.Encoding, p service.Params) (*Outcome, error) {
	router := b.cfg.Router
	if router == nil {
		return nil, fmt.Errorf("hybrid: learned strategy needs a configured router: %w",
			service.ErrBadRequest)
	}

	budget := time.Duration(0)
	if deadline, ok := ctx.Deadline(); ok {
		budget = time.Until(deadline)
		if budget < 0 {
			budget = 0
		}
	}
	available, breakers, skippedOpen := b.availableArms(router.Arms(), enc.Query.NumRelations())
	if len(available) == 0 {
		if skippedOpen > 0 {
			return nil, fmt.Errorf("hybrid: all %d scheduler arms have open circuit breakers: %w",
				skippedOpen, service.ErrUnavailable)
		}
		return nil, fmt.Errorf("hybrid: no scheduler arm is registered: %w", service.ErrBadRequest)
	}

	decision := router.Decide(enc.Query, sched.Context{
		Budget:    budget,
		CacheHit:  p.CacheHit,
		Parts:     1,
		Breakers:  breakers,
		Available: available,
	})
	if span := obs.ActiveSpan(ctx); span != nil {
		span.SetAttr("sched_mode", decision.Mode)
		span.SetAttr("sched_best", decision.Best)
		span.SetAttr("sched_confidence", decision.Confidence)
		span.SetAttr("sched_arms", strings.Join(decision.Arms, ","))
	}

	// Classical arms run synchronously first (microseconds-to-
	// milliseconds) so the portfolio can warm-start from their incumbent;
	// everything else launches concurrently.
	var classical, quantum []string
	for _, arm := range decision.Arms {
		if isClassicalArm(arm) {
			classical = append(classical, arm)
		} else {
			quantum = append(quantum, arm)
		}
	}

	var candidates []Candidate
	var incumbent *Candidate
	for _, name := range classical {
		be, ok := b.cfg.Registry.Get(name)
		if !ok {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		clCtx, clSpan := obs.StartSpan(ctx, "classical."+name)
		start := time.Now()
		d, err := be.Solve(clCtx, enc, subParams(p, nil))
		c := vet(enc, name, d, err, time.Since(start))
		c.Fallback = name == decision.Safety
		clSpan.SetAttr("valid", c.Decoded != nil)
		clSpan.End(err)
		candidates = append(candidates, c)
		if c.Decoded != nil && (incumbent == nil || c.Cost < incumbent.Cost) {
			cc := c
			incumbent = &cc
		}
	}

	if len(quantum) > 0 && b.budgetLeft(ctx) {
		warm := warmState(enc, incumbent)
		results := make(chan Candidate, len(quantum))
		for _, name := range quantum {
			be, ok := b.cfg.Registry.Get(name)
			if !ok {
				continue
			}
			spanCtx, span := obs.StartSpan(ctx, "racer."+name)
			span.SetAttr("warm_start", warm != nil)
			go func(name string, be service.Backend) {
				start := time.Now()
				d, err := be.Solve(spanCtx, enc, subParams(p, warm))
				c := vet(enc, name, d, err, time.Since(start))
				span.SetAttr("valid", c.Decoded != nil)
				endRacerSpan(span, ctx, ctx, err)
				results <- c
			}(name, be)
		}
	collect:
		for collected := 0; collected < len(quantum); collected++ {
			select {
			case c := <-results:
				candidates = append(candidates, c)
			case <-ctx.Done():
				break collect
			}
		}
	}

	b.feedback(router, &decision, candidates, budget)

	if len(candidates) == 0 && skippedOpen > 0 {
		return nil, fmt.Errorf("hybrid: all %d scheduler arms have open circuit breakers: %w",
			skippedOpen, service.ErrUnavailable)
	}
	return b.arbitrate(ctx, StrategyLearned, candidates)
}

// feedback converts the finished candidates into reward updates for every
// arm the decision invoked: cost ratio versus the best valid candidate
// minus the latency penalty, zero for errors, invalid plans, and arms
// whose result never arrived before the deadline.
func (b *Backend) feedback(router *sched.Router, d *sched.Decision, candidates []Candidate, budget time.Duration) {
	bestCost := 0.0
	for _, c := range candidates {
		if c.Decoded != nil && (bestCost == 0 || c.Cost < bestCost) {
			bestCost = c.Cost
		}
	}
	finished := make(map[string]bool, len(candidates))
	for _, c := range candidates {
		finished[c.Backend] = true
		reward := 0.0
		if c.Decoded != nil {
			reward = router.Reward(bestCost, c.Cost, c.Elapsed, budget)
		}
		router.Update(d, c.Backend, reward)
	}
	for _, arm := range d.Arms {
		if !finished[arm] {
			router.Update(d, arm, 0) // invoked but missed the deadline
		}
	}
}

// availableArms filters the router's arm set to what can actually serve
// this request — registered, breaker not open, DP size-gated — and
// collects the breaker states the router consumes as features.
func (b *Backend) availableArms(arms []string, n int) (available []string, breakers map[string]string, skippedOpen int) {
	breakers = make(map[string]string, len(arms))
	for _, name := range arms {
		if name == Name {
			continue // never recurse into ourselves
		}
		be, ok := b.cfg.Registry.Get(name)
		if !ok {
			continue
		}
		if name == "dp" && n > b.cfg.MaxDPRelations {
			continue
		}
		if hr, ok := be.(service.HealthReporter); ok {
			state := hr.Health().State
			breakers[name] = state
			if state == service.HealthOpen {
				skippedOpen++
				continue
			}
		}
		available = append(available, name)
	}
	return available, breakers, skippedOpen
}

// isClassicalArm reports whether the arm belongs to the synchronous
// classical stage (pure CPU heuristics with no sampling loop).
func isClassicalArm(name string) bool {
	for _, c := range classicalStage {
		if c == name {
			return true
		}
	}
	return false
}
