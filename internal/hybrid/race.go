package hybrid

import (
	"context"
	"errors"
	"fmt"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/faults"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// raceDrainGrace bounds how long the racer waits, after cancelling the
// losers, for them to observe the cancellation and report back (so their
// loss/latency outcomes can be recorded). Stragglers past the grace are
// abandoned: their goroutines still exit on their own — the results
// channel is buffered for the whole portfolio, so a late send never
// blocks — but they go unrecorded.
const raceDrainGrace = 250 * time.Millisecond

// race fans the encoded instance across the portfolio concurrently and
// returns as soon as any backend produces a valid join order, cancelling
// the rest. Per-backend budgets are the full remaining deadline: racing
// trades compute for latency, so every racer gets the whole window and the
// first valid answer ends it.
//
// A racer that dies of a transient QPU fault (mid-run abort, rejection,
// failed embedding — see faults.Retryable) is relaunched once on a salted
// seed while the race is undecided and deadline budget remains: on
// unreliable hardware an abort says nothing about the instance, only about
// that attempt.
func (b *Backend) race(ctx context.Context, enc *core.Encoding, p service.Params, portfolio []string, skippedOpen int) (*Outcome, error) {
	if len(portfolio) == 0 {
		if skippedOpen > 0 {
			return nil, fmt.Errorf("hybrid: all %d portfolio backends have open circuit breakers: %w",
				skippedOpen, service.ErrUnavailable)
		}
		return nil, fmt.Errorf("hybrid: race strategy needs a non-empty portfolio: %w", service.ErrBadRequest)
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Buffered for every racer plus one relaunch each, so a straggler's
	// send never blocks even after the race is abandoned.
	results := make(chan Candidate, 2*len(portfolio))
	launch := func(name string, p service.Params) {
		be, _ := b.cfg.Registry.Get(name) // presence checked by portfolio()
		// The racer's span is a child of the request's solve span; the
		// goroutine owns it and ends it exactly once, win or lose — a
		// cancelled loser past the drain grace still closes its span, and
		// read-time trace snapshots pick that up.
		spanCtx, span := obs.StartSpan(raceCtx, "racer."+name)
		go func() {
			start := time.Now()
			d, err := be.Solve(spanCtx, enc, subParams(p, nil))
			c := vet(enc, name, d, err, time.Since(start))
			span.SetAttr("valid", c.Decoded != nil)
			endRacerSpan(span, ctx, raceCtx, err)
			results <- c
		}()
	}
	for _, name := range portfolio {
		launch(name, p)
	}

	expected := len(portfolio)
	relaunched := make(map[string]bool, len(portfolio))
	var candidates []Candidate
	won := false
	for len(candidates) < expected {
		c := <-results
		candidates = append(candidates, c)
		if !won && c.Decoded == nil && !relaunched[c.Backend] && b.reRace(raceCtx, c.Err) {
			relaunched[c.Backend] = true
			expected++
			pp := p
			// Salt the seed so the relaunch explores a fresh embedding and
			// sample path instead of replaying the doomed attempt.
			pp.Seed = p.Seed ^ (int64(len(candidates)) * 0x5deece66d)
			launch(c.Backend, pp)
			continue
		}
		if c.Decoded != nil && !won {
			won = true
			cancel()
			// Collect the cancelled losers for their outcome records, but
			// only within the grace window — a loser stuck in a non-
			// interruptible section must not delay the winning answer.
			grace := time.NewTimer(raceDrainGrace)
			for len(candidates) < expected {
				select {
				case c := <-results:
					candidates = append(candidates, c)
				case <-grace.C:
					return b.arbitrate(ctx, StrategyRace, candidates)
				}
			}
			grace.Stop()
		}
	}
	return b.arbitrate(ctx, StrategyRace, candidates)
}

// reRace reports whether a failed racer is worth one relaunch: its failure
// is a transient fault, the race is still live, and enough deadline budget
// remains for a fresh attempt.
func (b *Backend) reRace(ctx context.Context, err error) bool {
	return faults.Retryable(err) && ctx.Err() == nil && b.budgetLeft(ctx)
}

// endRacerSpan closes a portfolio racer's span, recording why a loser
// stopped: the race was decided (lost_race), the request deadline hit, or
// the client went away. Cancellation is an outcome, not a failure — only
// a genuine backend error (while the race was still live) marks the span
// errored, so healthy races stay subject to probabilistic sampling.
func endRacerSpan(span *obs.Span, outer, race context.Context, err error) {
	if race.Err() != nil {
		reason := "lost_race"
		switch {
		case errors.Is(outer.Err(), context.DeadlineExceeded):
			reason = "deadline"
		case errors.Is(outer.Err(), context.Canceled):
			reason = "client_cancelled"
		}
		span.SetAttr("cancel_reason", reason)
		if err != nil {
			span.SetAttr("error", err.Error())
		}
		span.End(nil)
		return
	}
	span.End(err)
}
