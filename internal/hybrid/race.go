package hybrid

import (
	"context"
	"fmt"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/service"
)

// raceDrainGrace bounds how long the racer waits, after cancelling the
// losers, for them to observe the cancellation and report back (so their
// loss/latency outcomes can be recorded). Stragglers past the grace are
// abandoned: their goroutines still exit on their own — the results
// channel is buffered for the whole portfolio, so a late send never
// blocks — but they go unrecorded.
const raceDrainGrace = 250 * time.Millisecond

// race fans the encoded instance across the portfolio concurrently and
// returns as soon as any backend produces a valid join order, cancelling
// the rest. Per-backend budgets are the full remaining deadline: racing
// trades compute for latency, so every racer gets the whole window and the
// first valid answer ends it.
func (b *Backend) race(ctx context.Context, enc *core.Encoding, p service.Params, portfolio []string) (*Outcome, error) {
	if len(portfolio) == 0 {
		return nil, fmt.Errorf("hybrid: race strategy needs a non-empty portfolio: %w", service.ErrBadRequest)
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan Candidate, len(portfolio))
	for _, name := range portfolio {
		be, _ := b.cfg.Registry.Get(name) // presence checked by portfolio()
		go func(name string, be service.Backend) {
			start := time.Now()
			d, err := be.Solve(raceCtx, enc, subParams(p, nil))
			results <- vet(enc, name, d, err, time.Since(start))
		}(name, be)
	}

	var candidates []Candidate
	won := false
	for len(candidates) < len(portfolio) {
		c := <-results
		candidates = append(candidates, c)
		if c.Decoded != nil && !won {
			won = true
			cancel()
			// Collect the cancelled losers for their outcome records, but
			// only within the grace window — a loser stuck in a non-
			// interruptible section must not delay the winning answer.
			grace := time.NewTimer(raceDrainGrace)
			for len(candidates) < len(portfolio) {
				select {
				case c := <-results:
					candidates = append(candidates, c)
				case <-grace.C:
					return b.arbitrate(ctx, StrategyRace, candidates)
				}
			}
			grace.Stop()
		}
	}
	return b.arbitrate(ctx, StrategyRace, candidates)
}
