package hybrid

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/service"
)

// cliqueInstance generates a clique query of n relations and its encoding.
func cliqueInstance(t testing.TB, n int, seed int64) (*join.Query, *core.Encoding) {
	t.Helper()
	q, err := querygen.Generate(querygen.Config{Relations: n, Graph: querygen.Clique}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := core.Encode(q, core.Options{Thresholds: core.DefaultThresholds(q, 2)})
	if err != nil {
		t.Fatal(err)
	}
	return q, enc
}

// testRegistry holds the classical stage plus tabu as the quantum-adjacent
// portfolio member (fast enough for unit tests) and a deliberately tiny
// annealer whose embedding fails on big instances, exercising the
// degraded-portfolio path.
func testRegistry(t testing.TB) *service.Registry {
	t.Helper()
	r := service.NewRegistry()
	for _, b := range []service.Backend{
		service.NewDPBackend(),
		service.NewGreedyBackend(),
		service.NewTabuBackend(),
		service.NewAnnealBackend(2),
	} {
		if err := r.Register(b); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

// slowBackend blocks until its context is cancelled — a stand-in for a
// stalled solver in racing and cancellation tests.
type slowBackend struct {
	released chan struct{} // closed when Solve observes cancellation
}

func (s *slowBackend) Name() string { return "slow" }

func (s *slowBackend) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	<-ctx.Done()
	if s.released != nil {
		close(s.released)
	}
	return nil, ctx.Err()
}

// settleGoroutines waits for the goroutine count to come back to (near)
// base, failing the test if orchestration leaked workers.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d running, base was %d", runtime.NumGoroutine(), base)
}

// TestStagedShortDeadlineAlwaysValid is the availability half of the
// acceptance criteria: a 50ms deadline on a 10-relation clique must always
// come back with a valid join order (the classical incumbent), regardless
// of what the quantum stage manages in the remaining budget.
func TestStagedShortDeadlineAlwaysValid(t *testing.T) {
	reg := testRegistry(t)
	b, err := New(Config{Registry: reg, Portfolio: []string{"tabu", "anneal"}, HedgeDelay: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		q, enc := cliqueInstance(t, 10, seed)
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		d, err := b.Solve(ctx, enc, service.Params{Reads: 100, Seed: seed})
		cancel()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !d.Valid || !d.Order.IsPermutation(q.NumRelations()) {
			t.Fatalf("seed %d: invalid result %+v", seed, d)
		}
	}
}

// TestStagedMatchesBestSingleBackend is the quality half: with a generous
// deadline on a 10-relation clique, the arbitrated plan cost must not
// exceed what any single backend achieves on the same seed.
func TestStagedMatchesBestSingleBackend(t *testing.T) {
	reg := testRegistry(t)
	b, err := New(Config{Registry: reg, Portfolio: []string{"tabu"}, HedgeDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const seed = 42
	q, enc := cliqueInstance(t, 10, seed)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	out, err := b.Orchestrate(ctx, enc, service.Params{Reads: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	hybridCost := q.Cost(out.Best.Order)

	for _, name := range []string{"greedy", "dp", "tabu"} {
		be, _ := reg.Get(name)
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		d, err := be.Solve(sctx, enc, service.Params{Reads: 4, Seed: seed})
		scancel()
		if err != nil {
			// A single backend producing nothing valid is a legitimate
			// outcome the hybrid trivially beats.
			t.Logf("%s alone found no valid plan (%v); hybrid wins by default", name, err)
			continue
		}
		single := q.Cost(d.Order)
		if hybridCost > single*(1+1e-9) {
			t.Errorf("hybrid cost %v worse than single backend %s at %v", hybridCost, name, single)
		}
	}
	if out.Winner == "" || out.Best == nil {
		t.Errorf("outcome missing winner/best: %+v", out)
	}
	// The classical stage always contributes both its candidates; the
	// quantum candidate may be abandoned at the deadline under -race.
	seen := map[string]bool{}
	for _, c := range out.Candidates {
		seen[c.Backend] = true
	}
	if !seen["greedy"] || !seen["dp"] {
		t.Errorf("classical candidates missing: %+v", seen)
	}
}

// TestRaceFirstValidWinsAndCancelsLosers pins the racing contract: the
// first valid answer ends the race, the losers' contexts are cancelled
// promptly, and no goroutines leak.
func TestRaceFirstValidWinsAndCancelsLosers(t *testing.T) {
	base := runtime.NumGoroutine()
	reg := testRegistry(t)
	slow := &slowBackend{released: make(chan struct{})}
	if err := reg.Register(slow); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	_, enc := cliqueInstance(t, 6, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	start := time.Now()
	out, err := b.Orchestrate(ctx, enc, service.Params{
		Seed:   7,
		Hybrid: service.HybridParams{Strategy: StrategyRace, Portfolio: []string{"slow", "greedy"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "greedy" {
		t.Errorf("winner = %q, want greedy", out.Winner)
	}
	// The race must end far before the 10s deadline: greedy is instant and
	// the slow loser must not hold up the response.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("race took %v despite an instant winner", elapsed)
	}
	// The loser must observe the cancellation promptly.
	select {
	case <-slow.released:
	case <-time.After(2 * time.Second):
		t.Error("slow loser never observed cancellation")
	}
	// The loser's candidate (when collected) must carry the context error.
	for _, c := range out.Candidates {
		if c.Backend == "slow" && !errors.Is(c.Err, context.Canceled) {
			t.Errorf("slow candidate error = %v, want context.Canceled", c.Err)
		}
	}
	settleGoroutines(t, base)
}

// TestStagedCancellationReleasesWorkers cancels the parent mid-quantum-
// stage and checks the portfolio goroutines exit.
func TestStagedCancellationReleasesWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	reg := testRegistry(t)
	slow := &slowBackend{}
	if err := reg.Register(slow); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Registry: reg, HedgeDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, enc := cliqueInstance(t, 6, 8)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		out, err := b.Orchestrate(ctx, enc, service.Params{
			Seed:   8,
			Hybrid: service.HybridParams{Strategy: StrategyStaged, Portfolio: []string{"slow"}},
		})
		// The classical incumbent survives the cancellation.
		if err != nil {
			t.Errorf("orchestrate: %v", err)
		} else if out.Best == nil || !out.Best.Valid {
			t.Errorf("no valid incumbent after cancellation: %+v", out)
		}
	}()
	time.Sleep(50 * time.Millisecond) // let the quantum stage launch
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("orchestration did not return after cancellation")
	}
	settleGoroutines(t, base)
}

func TestPortfolioValidation(t *testing.T) {
	reg := testRegistry(t)
	b, err := New(Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	_, enc := cliqueInstance(t, 4, 9)
	ctx := context.Background()

	cases := []struct {
		name   string
		hybrid service.HybridParams
	}{
		{"recursive portfolio", service.HybridParams{Portfolio: []string{"hybrid"}}},
		{"unknown backend", service.HybridParams{Portfolio: []string{"warp-drive"}}},
		{"unknown strategy", service.HybridParams{Strategy: "tournament"}},
	}
	for _, tc := range cases {
		_, err := b.Orchestrate(ctx, enc, service.Params{Hybrid: tc.hybrid})
		if !errors.Is(err, service.ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", tc.name, err)
		}
	}

	// A default portfolio quietly drops unregistered names instead.
	slim := service.NewRegistry()
	if err := slim.Register(service.NewGreedyBackend()); err != nil {
		t.Fatal(err)
	}
	sb, err := New(Config{Registry: slim, HedgeDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sb.Solve(ctx, enc, service.Params{})
	if err != nil || !d.Valid {
		t.Errorf("slim-registry solve: d=%+v err=%v", d, err)
	}
}

func TestArbiterRecordsWinsAndLosses(t *testing.T) {
	reg := testRegistry(t)
	m := service.NewMetrics()
	b, err := New(Config{Registry: reg, Metrics: m, Portfolio: []string{"tabu"}, HedgeDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, enc := cliqueInstance(t, 6, 11)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := b.Orchestrate(ctx, enc, service.Params{Reads: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot(nil)
	var wins, losses int64
	for _, bs := range snap.Backends {
		wins += bs.Wins
		losses += bs.Losses
	}
	if wins != 1 {
		t.Errorf("total wins = %d, want exactly 1", wins)
	}
	if want := int64(len(out.Candidates) - 1); losses != want {
		t.Errorf("total losses = %d, want %d", losses, want)
	}
	if ws := snap.Backends[out.Winner]; ws.Wins != 1 {
		t.Errorf("winner %q has %d wins", out.Winner, ws.Wins)
	}
	// The arbiter also observed each candidate's latency.
	for _, c := range out.Candidates {
		if bs := snap.Backends[c.Backend]; bs.Latency.Count == 0 {
			t.Errorf("backend %q has no latency observations", c.Backend)
		}
	}
}

// TestWarmStartReachesQuantumStage pins the warm-start plumbing end to
// end: the staged strategy must hand the portfolio a full QUBO assignment
// built from the classical incumbent.
func TestWarmStartReachesQuantumStage(t *testing.T) {
	reg := service.NewRegistry()
	for _, b := range []service.Backend{service.NewDPBackend(), service.NewGreedyBackend()} {
		if err := reg.Register(b); err != nil {
			t.Fatal(err)
		}
	}
	var got []bool
	probe := &probeBackend{onSolve: func(p service.Params) { got = p.InitialState }}
	if err := reg.Register(probe); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Registry: reg, Portfolio: []string{"probe"}, HedgeDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	q, enc := cliqueInstance(t, 6, 13)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := b.Orchestrate(ctx, enc, service.Params{Seed: 13}); err != nil {
		t.Fatal(err)
	}
	if len(got) != enc.NumQubits() {
		t.Fatalf("portfolio received initial state of %d vars, want %d", len(got), enc.NumQubits())
	}
	// The warm state must decode back to a valid plan at least as good as
	// greedy (it came from the classical incumbent, which includes DP).
	d := enc.Decode(got)
	if !d.Valid {
		t.Fatal("warm state does not decode to a valid plan")
	}
	greedy, _ := reg.Get("greedy")
	gd, err := greedy.Solve(ctx, enc, service.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cost > q.Cost(gd.Order)*(1+1e-9) {
		t.Errorf("warm state cost %v worse than greedy %v", d.Cost, q.Cost(gd.Order))
	}
}

// probeBackend records the params it was called with and fails, so the
// arbiter falls back to the classical incumbent.
type probeBackend struct {
	onSolve func(service.Params)
}

func (p *probeBackend) Name() string { return "probe" }

func (p *probeBackend) Solve(ctx context.Context, enc *core.Encoding, params service.Params) (*core.Decoded, error) {
	if p.onSolve != nil {
		p.onSolve(params)
	}
	return nil, errors.New("probe: no result")
}

// BenchmarkHybrid measures one staged orchestration on a mid-size chain
// (the CI smoke runs it with -benchtime 1x).
func BenchmarkHybrid(b *testing.B) {
	reg := testRegistry(b)
	hb, err := New(Config{Registry: reg, Portfolio: []string{"tabu"}, HedgeDelay: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	q, err := querygen.Generate(querygen.Config{Relations: 8, Graph: querygen.Chain}, rand.New(rand.NewSource(3)))
	if err != nil {
		b.Fatal(err)
	}
	enc, err := core.Encode(q, core.Options{Thresholds: core.DefaultThresholds(q, 2)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		if _, err := hb.Solve(ctx, enc, service.Params{Reads: 50, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
		cancel()
	}
}
