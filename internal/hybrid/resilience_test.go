package hybrid

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/faults"
	"quantumjoin/internal/join"
	"quantumjoin/internal/service"
)

// flakyBackend fails its first failures calls with a transient fault, then
// returns the identity-order plan.
type flakyBackend struct {
	name     string
	failures int
	calls    atomic.Int64
}

func (f *flakyBackend) Name() string { return f.name }

func (f *flakyBackend) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	n := f.calls.Add(1)
	if int(n) <= f.failures {
		return nil, &faults.Error{Kind: faults.KindAborted, Backend: f.name}
	}
	order := make(join.Order, enc.Query.NumRelations())
	for i := range order {
		order[i] = i
	}
	return &core.Decoded{Valid: true, Order: order, Cost: enc.Query.Cost(order)}, nil
}

// TestRaceReRacesOnTransientFault: a racer killed by a mid-run abort is
// relaunched on a salted seed while the race is undecided, so a single
// transient fault does not cost the request its only backend.
func TestRaceReRacesOnTransientFault(t *testing.T) {
	flaky := &flakyBackend{name: "flaky", failures: 1}
	reg := service.NewRegistry()
	if err := reg.Register(flaky); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Registry: reg, Strategy: StrategyRace, Portfolio: []string{"flaky"}})
	if err != nil {
		t.Fatal(err)
	}
	q, enc := cliqueInstance(t, 5, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	d, err := b.Solve(ctx, enc, service.Params{Seed: 9})
	if err != nil {
		t.Fatalf("race with one transient abort failed: %v", err)
	}
	if !d.Valid || !d.Order.IsPermutation(q.NumRelations()) {
		t.Fatalf("invalid result %+v", d)
	}
	if got := flaky.calls.Load(); got != 2 {
		t.Errorf("backend calls = %d, want 2 (original + one relaunch)", got)
	}
}

// TestRaceRelaunchesEachBackendAtMostOnce: a persistently aborting backend
// is relaunched exactly once, not looped on until the deadline.
func TestRaceRelaunchesEachBackendAtMostOnce(t *testing.T) {
	flaky := &flakyBackend{name: "flaky", failures: 1 << 30}
	reg := service.NewRegistry()
	if err := reg.Register(flaky); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Registry: reg, Strategy: StrategyRace, Portfolio: []string{"flaky"}})
	if err != nil {
		t.Fatal(err)
	}
	_, enc := cliqueInstance(t, 5, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := b.Solve(ctx, enc, service.Params{Seed: 9}); err == nil {
		t.Fatal("always-aborting backend produced a result")
	}
	if got := flaky.calls.Load(); got != 2 {
		t.Errorf("backend calls = %d, want 2 (original + one relaunch)", got)
	}
}

// tripBreaker wraps be in a breaker and feeds it failures until it opens.
func tripBreaker(t *testing.T, be service.Backend, enc *core.Encoding) service.Backend {
	t.Helper()
	wrapped := faults.WithBreaker(be, faults.BreakerConfig{ConsecutiveFailures: 1, OpenFor: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	// A blown deadline counts as a backend failure and trips the
	// one-failure breaker.
	_, _ = wrapped.Solve(ctx, enc, service.Params{})
	if h := wrapped.(service.HealthReporter).Health(); h.State != service.HealthOpen {
		t.Fatalf("breaker did not trip: %+v", h)
	}
	return wrapped
}

// TestPortfolioSkipsOpenBreakers: an open backend is never launched; the
// race proceeds on the healthy remainder.
func TestPortfolioSkipsOpenBreakers(t *testing.T) {
	_, enc := cliqueInstance(t, 5, 1)
	broken := &flakyBackend{name: "qpu", failures: 1 << 30}
	reg := service.NewRegistry()
	if err := reg.Register(tripBreaker(t, broken, enc)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(service.NewDPBackend()); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Registry: reg, Strategy: StrategyRace, Portfolio: []string{"qpu", "dp"}})
	if err != nil {
		t.Fatal(err)
	}
	callsBefore := broken.calls.Load()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := b.Orchestrate(ctx, enc, service.Params{Seed: 3, Hybrid: service.HybridParams{
		Strategy: StrategyRace, Portfolio: []string{"qpu", "dp"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Winner != "dp" {
		t.Errorf("winner = %q, want dp", out.Winner)
	}
	if broken.calls.Load() != callsBefore {
		t.Error("open-breaker backend was launched")
	}
}

// TestAllBreakersOpenIsUnavailable: when every portfolio backend is
// tripped, the race maps to transient unavailability (503), never a client
// error or a 500.
func TestAllBreakersOpenIsUnavailable(t *testing.T) {
	_, enc := cliqueInstance(t, 5, 1)
	broken := &flakyBackend{name: "qpu", failures: 1 << 30}
	reg := service.NewRegistry()
	if err := reg.Register(tripBreaker(t, broken, enc)); err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Registry: reg, Strategy: StrategyRace, Portfolio: []string{"qpu"}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Solve(context.Background(), enc, service.Params{Seed: 3})
	if !errors.Is(err, service.ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if errors.Is(err, service.ErrBadRequest) {
		t.Error("all-open portfolio misclassified as a client error")
	}
}
