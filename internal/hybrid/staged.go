package hybrid

import (
	"context"
	"fmt"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// classicalStage names the backends of the staged strategy's first stage,
// in launch order. Greedy is O(T²) and never fails; DP is exact, polls the
// context (so a tight deadline degrades the stage to greedy quality rather
// than blowing the budget), and is additionally gated on instance size
// (Config.MaxDPRelations) to bound the 2^T table memory.
var classicalStage = []string{"greedy", "dp"}

// staged runs the hedged two-stage strategy: the classical stage produces
// an instant feasible incumbent, then — after the hedge delay, and only if
// enough deadline remains — the quantum-simulated portfolio launches warm-
// started from that incumbent, improving the answer anytime until the
// deadline. The final plan is never worse than the classical incumbent.
// Open-breaker backends were already filtered from the portfolio; the
// classical stage keeps working regardless, so tripped quantum backends
// degrade quality, never availability.
func (b *Backend) staged(ctx context.Context, enc *core.Encoding, p service.Params, portfolio []string, skippedOpen int) (*Outcome, error) {
	var candidates []Candidate
	var incumbent *Candidate

	// Stage 1: classical, synchronous, microseconds-to-milliseconds. Both
	// backends are optional registry members; a slim registry degrades to
	// a pure quantum portfolio.
	n := enc.Query.NumRelations()
	for _, name := range classicalStage {
		be, ok := b.cfg.Registry.Get(name)
		if !ok {
			continue
		}
		if name == "dp" && n > b.cfg.MaxDPRelations {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		clCtx, clSpan := obs.StartSpan(ctx, "classical."+name)
		start := time.Now()
		d, err := be.Solve(clCtx, enc, subParams(p, nil))
		c := vet(enc, name, d, err, time.Since(start))
		clSpan.SetAttr("valid", c.Decoded != nil)
		clSpan.End(err)
		candidates = append(candidates, c)
		if c.Decoded != nil && (incumbent == nil || c.Cost < incumbent.Cost) {
			cc := c
			incumbent = &cc
		}
	}

	// Stage 2: hedge, then launch the quantum portfolio. The hedge delay
	// gives cheap requests a chance to return without ever spinning up
	// samplers; a negative request value disables it.
	if len(portfolio) > 0 && b.hedge(ctx, p) && b.budgetLeft(ctx) {
		warm := warmState(enc, incumbent)
		results := make(chan Candidate, len(portfolio))
		for _, name := range portfolio {
			be, _ := b.cfg.Registry.Get(name)
			spanCtx, span := obs.StartSpan(ctx, "racer."+name)
			span.SetAttr("warm_start", warm != nil)
			go func(name string, be service.Backend) {
				start := time.Now()
				d, err := be.Solve(spanCtx, enc, subParams(p, warm))
				c := vet(enc, name, d, err, time.Since(start))
				span.SetAttr("valid", c.Decoded != nil)
				// The staged portfolio has no private race context: the
				// request context both cancels stragglers and carries the
				// deadline, so it plays both roles here.
				endRacerSpan(span, ctx, ctx, err)
				results <- c
			}(name, be)
		}
		// Anytime collection: candidates are folded in as they finish,
		// and the deadline ends the wait even if a backend is stuck in a
		// non-interruptible section (the buffered channel lets stragglers
		// finish their send and exit on their own).
	collect:
		for collected := 0; collected < len(portfolio); collected++ {
			select {
			case c := <-results:
				candidates = append(candidates, c)
			case <-ctx.Done():
				break collect
			}
		}
	}
	if len(candidates) == 0 && skippedOpen > 0 {
		// Slim registry without classical backends and every quantum
		// backend tripped: transient unavailability, not a client error.
		return nil, fmt.Errorf("hybrid: all %d portfolio backends have open circuit breakers: %w",
			skippedOpen, service.ErrUnavailable)
	}
	return b.arbitrate(ctx, StrategyStaged, candidates)
}

// hedge sleeps for the hedge delay (bounded by the context) and reports
// whether the quantum stage should still launch.
func (b *Backend) hedge(ctx context.Context, p service.Params) bool {
	delay := p.Hybrid.HedgeDelay
	if delay == 0 {
		delay = b.cfg.HedgeDelay
	}
	if delay <= 0 {
		return ctx.Err() == nil
	}
	// Launching right at the deadline is useless: cap the wait so at
	// least MinBudget of solving time remains afterwards.
	if deadline, ok := ctx.Deadline(); ok {
		if room := time.Until(deadline) - b.cfg.MinBudget; room < delay {
			delay = room
		}
		if delay <= 0 {
			return ctx.Err() == nil
		}
	}
	timer := time.NewTimer(delay)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}

// budgetLeft reports whether enough deadline remains to be worth starting
// a quantum-simulated solve.
func (b *Backend) budgetLeft(ctx context.Context) bool {
	if err := ctx.Err(); err != nil {
		return false
	}
	if deadline, ok := ctx.Deadline(); ok {
		return time.Until(deadline) >= b.cfg.MinBudget
	}
	return true
}

// warmState embeds the classical incumbent into the full QUBO variable
// space (decision variables via EncodeOrder, slacks via CompleteSlacks) so
// samplers refine a good solution instead of starting from noise. Any
// failure degrades to a cold start — warm-starting is an optimisation,
// never a correctness requirement.
func warmState(enc *core.Encoding, incumbent *Candidate) []bool {
	if incumbent == nil {
		return nil
	}
	decision, err := enc.EncodeOrder(incumbent.Decoded.Order)
	if err != nil {
		return nil
	}
	full, err := enc.CompleteSlacks(decision)
	if err != nil {
		return nil
	}
	return full
}
