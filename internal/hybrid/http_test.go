package hybrid

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"quantumjoin/internal/service"
)

const chainCatalog = `{
	"relations": [
		{"name": "a", "cardinality": 100},
		{"name": "b", "cardinality": 1000},
		{"name": "c", "cardinality": 5000},
		{"name": "d", "cardinality": 200}
	],
	"predicates": [
		{"left": "a", "right": "b", "selectivity": 0.01},
		{"left": "b", "right": "c", "selectivity": 0.001},
		{"left": "c", "right": "d", "selectivity": 0.05}
	]
}`

// TestHTTPHybridEndToEnd drives the hybrid backend through the full
// qjoind stack — registry, service, HTTP handler — exactly as cmd/qjoind
// wires it, including the per-request strategy/portfolio/hedge knobs and
// the win/loss counters on /metrics.
func TestHTTPHybridEndToEnd(t *testing.T) {
	reg := testRegistry(t)
	svc := service.New(reg, service.Config{Workers: 2, DefaultBackend: "dp"})
	hb, err := New(Config{
		Registry:   reg,
		Metrics:    svc.Metrics(),
		Portfolio:  []string{"tabu"},
		HedgeDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(hb); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(service.NewHandler(svc))
	defer func() {
		ts.Close()
		svc.Close(context.Background())
	}()

	for _, tc := range []struct {
		name string
		body map[string]any
	}{
		{"staged defaults", map[string]any{
			"backend": "hybrid", "query": json.RawMessage(chainCatalog),
			"thresholds": 2, "reads": 4, "seed": 5, "timeout_ms": 10000,
		}},
		{"race with portfolio", map[string]any{
			"backend": "hybrid", "query": json.RawMessage(chainCatalog),
			"strategy": "race", "portfolio": []string{"greedy", "tabu"},
			"thresholds": 2, "reads": 4, "seed": 5, "timeout_ms": 10000,
		}},
		{"staged with hedge", map[string]any{
			"backend": "hybrid", "query": json.RawMessage(chainCatalog),
			"strategy": "staged", "portfolio": []string{"tabu"}, "hedge_ms": 1,
			"thresholds": 2, "reads": 4, "seed": 5, "timeout_ms": 10000,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			raw, _ := json.Marshal(tc.body)
			resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var out service.OptimizeResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %+v", resp.StatusCode, out)
			}
			if out.Backend != "hybrid" || len(out.Order) != 4 || out.Cost <= 0 {
				t.Errorf("bad response: %+v", out)
			}
		})
	}

	// An invalid strategy must surface as 400 through the whole stack.
	raw, _ := json.Marshal(map[string]any{
		"backend": "hybrid", "query": json.RawMessage(chainCatalog),
		"strategy": "tournament",
	})
	resp, err := http.Post(ts.URL+"/v1/optimize", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid strategy: status %d, want 400", resp.StatusCode)
	}

	// /metrics.json must expose hybrid requests and arbitration outcomes.
	mresp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap service.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	// 3 successful orchestrations plus the rejected-strategy attempt.
	if hb, ok := snap.Backends["hybrid"]; !ok || hb.Requests != 4 || hb.Errors != 1 {
		t.Errorf("hybrid backend metrics = %+v, want 4 requests / 1 error", snap.Backends["hybrid"])
	}
	var wins int64
	for _, bs := range snap.Backends {
		wins += bs.Wins
	}
	if wins != 3 {
		t.Errorf("total arbitration wins = %d, want one per hybrid request (3)", wins)
	}
}
