package decomp

import (
	"context"
	"fmt"
	"math"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/join"
)

// subQuery extracts the part's induced subproblem: relations reindexed
// 0..len(rels)-1 (rels is sorted, so local order mirrors global order) and
// the predicates internal to the part remapped onto the local indices.
func subQuery(q *join.Query, rels []int) *join.Query {
	local := make(map[int]int, len(rels))
	sq := &join.Query{Relations: make([]join.Relation, len(rels))}
	for li, g := range rels {
		local[g] = li
		sq.Relations[li] = q.Relations[g]
	}
	for _, p := range q.Predicates {
		a, aok := local[p.R1]
		b, bok := local[p.R2]
		if aok && bok {
			sq.Predicates = append(sq.Predicates, join.Predicate{R1: a, R2: b, Sel: p.Sel})
		}
	}
	return sq
}

// contract builds the part-graph query: one composite relation per part
// with the part's joined cardinality (SetCard over the part mask, clamped
// to >= 1 — highly selective parts can shrink below a single row, which
// join.Validate rejects), and one predicate per connected part pair whose
// selectivity is the product of the cut predicates' selectivities. This is
// exactly the uncorrelated-predicate cardinality model lifted to composite
// relations, so the classical planner can run on it unchanged.
func contract(q *join.Query, parts [][]int) (*join.Query, error) {
	k := len(parts)
	cq := &join.Query{Relations: make([]join.Relation, k)}
	partOf := make([]int, q.NumRelations())
	for pi, part := range parts {
		var mask uint64
		for _, g := range part {
			partOf[g] = pi
			mask |= 1 << uint(g)
		}
		card := q.SetCard(mask)
		if card < 1 {
			card = 1
		}
		cq.Relations[pi] = join.Relation{Name: fmt.Sprintf("P%d", pi), Card: card}
	}
	cross := make(map[[2]int]float64)
	for _, p := range q.Predicates {
		a, b := partOf[p.R1], partOf[p.R2]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		key := [2]int{a, b}
		if s, ok := cross[key]; ok {
			cross[key] = s * p.Sel
		} else {
			cross[key] = p.Sel
		}
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			if s, ok := cross[[2]int{a, b}]; ok {
				if s < math.SmallestNonzeroFloat64 {
					s = math.SmallestNonzeroFloat64
				}
				cq.Predicates = append(cq.Predicates, join.Predicate{R1: a, R2: b, Sel: s})
			}
		}
	}
	if err := cq.Validate(); err != nil {
		return nil, fmt.Errorf("decomp: contracted part-graph invalid: %w", err)
	}
	return cq, nil
}

// maxStitchDP caps the part count for the exact DP stitch: 2^16 subsets is
// milliseconds, and classical.MaxDPRelations bounds it anyway.
const maxStitchDP = 16

// stitchOrder sequences the parts over the contracted query — exact DP
// when the part count admits it, greedy otherwise — and expands the
// part sequence into a full join order by splicing each part's internal
// order (local indices) back onto the global relation indices.
func stitchOrder(ctx context.Context, parts [][]int, partOrders []join.Order, cq *join.Query, dpParts int) (join.Order, string) {
	var seq join.Order
	producer := "greedy"
	if len(parts) == 1 {
		seq = join.Order{0}
		producer = "single"
	} else if len(parts) <= dpParts {
		if res, err := classical.OptimalContext(ctx, cq); err == nil {
			seq = res.Order
			producer = "dp"
		}
	}
	if seq == nil {
		seq = classical.Greedy(cq).Order
	}
	full := make(join.Order, 0, len(cq.Relations))
	for _, pi := range seq {
		for _, li := range partOrders[pi] {
			full = append(full, parts[pi][li])
		}
	}
	return full, producer
}
