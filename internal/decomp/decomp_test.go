package decomp

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/service"
)

func genQuery(t testing.TB, n int, g querygen.GraphType, seed int64) *join.Query {
	t.Helper()
	q, err := querygen.Generate(querygen.Config{Relations: n, Graph: g},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

var shapes = []querygen.GraphType{querygen.Chain, querygen.Star, querygen.Clique, querygen.Tree}

// connected reports whether the part is connected over the query's
// part-internal predicate edges.
func connected(q *join.Query, part []int) bool {
	if len(part) <= 1 {
		return true
	}
	in := make(map[int]bool, len(part))
	for _, v := range part {
		in[v] = true
	}
	adj := make(map[int][]int)
	for _, p := range q.Predicates {
		if in[p.R1] && in[p.R2] {
			adj[p.R1] = append(adj[p.R1], p.R2)
			adj[p.R2] = append(adj[p.R2], p.R1)
		}
	}
	seen := map[int]bool{part[0]: true}
	stack := []int{part[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return len(seen) == len(part)
}

func TestPartitionInvariants(t *testing.T) {
	for _, g := range shapes {
		for _, n := range []int{12, 30, 47, 60} {
			for _, budget := range []int{4, 10, 16} {
				q := genQuery(t, n, g, int64(n*100+budget))
				p, err := PartitionQuery(q, budget)
				if err != nil {
					t.Fatalf("%v n=%d budget=%d: %v", g, n, budget, err)
				}
				seen := make([]bool, n)
				for pi, part := range p.Parts {
					if len(part) == 0 || len(part) > budget {
						t.Fatalf("%v n=%d budget=%d: part %d has %d relations", g, n, budget, pi, len(part))
					}
					for _, v := range part {
						if seen[v] {
							t.Fatalf("%v n=%d: relation %d in two parts", g, n, v)
						}
						seen[v] = true
						if p.PartOf[v] != pi {
							t.Fatalf("%v n=%d: PartOf[%d]=%d, want %d", g, n, v, p.PartOf[v], pi)
						}
					}
					if !connected(q, part) {
						t.Fatalf("%v n=%d budget=%d: part %d %v is disconnected", g, n, budget, pi, part)
					}
				}
				for v, ok := range seen {
					if !ok {
						t.Fatalf("%v n=%d: relation %d unassigned", g, n, v)
					}
				}
				// Deterministic: same query and budget, same partition.
				p2, err := PartitionQuery(q, budget)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(p.Parts, p2.Parts) {
					t.Fatalf("%v n=%d budget=%d: partition not deterministic", g, n, budget)
				}
			}
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	q := genQuery(t, 8, querygen.Chain, 1)
	if _, err := PartitionQuery(q, 0); err == nil {
		t.Fatal("budget 0 accepted")
	}
	if _, err := PartitionQuery(&join.Query{}, 4); err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestContractComposites(t *testing.T) {
	q := genQuery(t, 24, querygen.Tree, 7)
	p, err := PartitionQuery(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := contract(q, p.Parts)
	if err != nil {
		t.Fatal(err)
	}
	if cq.NumRelations() != len(p.Parts) {
		t.Fatalf("contracted to %d relations, want %d parts", cq.NumRelations(), len(p.Parts))
	}
	for i, r := range cq.Relations {
		if r.Card < 1 {
			t.Fatalf("composite %d has cardinality %v < 1", i, r.Card)
		}
	}
	// A tree stays a tree under contraction of connected parts: exactly
	// parts-1 cross edges.
	if len(cq.Predicates) != len(p.Parts)-1 {
		t.Fatalf("contracted tree has %d predicates, want %d", len(cq.Predicates), len(p.Parts)-1)
	}
}

func testBackend(t testing.TB, cfg Config) *Backend {
	t.Helper()
	r := service.NewRegistry()
	for _, be := range []service.Backend{
		service.NewDPBackend(),
		service.NewGreedyBackend(),
		service.NewTabuBackend(),
	} {
		if err := r.Register(be); err != nil {
			t.Fatal(err)
		}
	}
	cfg.Registry = r
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStitchedPlansValidAndNeverWorseThanGreedy is the subsystem's core
// property: across graph shapes, sizes well past the monolithic limit, and
// seeds, the decomposed plan is a valid permutation whose true cost never
// exceeds the global greedy plan's.
func TestStitchedPlansValidAndNeverWorseThanGreedy(t *testing.T) {
	b := testBackend(t, Config{Subsolver: "tabu", PartBudget: 7})
	for _, g := range shapes {
		for _, n := range []int{20, 34, 41} {
			for seed := int64(0); seed < 2; seed++ {
				q := genQuery(t, n, g, seed*1000+int64(n))
				res, err := b.SolveQuery(context.Background(), q, service.EncodeSpec{},
					service.Params{Reads: 3, Seed: seed})
				if err != nil {
					t.Fatalf("%v n=%d seed=%d: %v", g, n, seed, err)
				}
				if !res.Decoded.Order.IsPermutation(n) {
					t.Fatalf("%v n=%d seed=%d: order %v is not a permutation", g, n, seed, res.Decoded.Order)
				}
				greedy := classical.Greedy(q)
				if res.Decoded.Cost > greedy.Cost*(1+1e-12) {
					t.Fatalf("%v n=%d seed=%d: decomp cost %g worse than greedy %g",
						g, n, seed, res.Decoded.Cost, greedy.Cost)
				}
				if got := q.Cost(res.Decoded.Order); got != res.Decoded.Cost {
					t.Fatalf("%v n=%d seed=%d: reported cost %g != recomputed %g", g, n, seed, res.Decoded.Cost, got)
				}
				if n > core.MaxMonolithicRelations && res.LogicalQubits == 0 {
					t.Fatalf("%v n=%d: no part went through a QUBO encoding", g, n)
				}
			}
		}
	}
}

// TestSolvesBeyondMonolithicLimit pins the headline capability: a query the
// monolithic encoder rejects outright is solved end-to-end by decomp.
func TestSolvesBeyondMonolithicLimit(t *testing.T) {
	n := 40
	q := genQuery(t, n, querygen.Chain, 9)
	if _, err := core.Encode(q, core.Options{Thresholds: core.DefaultThresholds(q, 3)}); err == nil {
		t.Fatalf("monolithic encode of %d relations unexpectedly succeeded", n)
	}
	b := testBackend(t, Config{Subsolver: "tabu", PartBudget: 10})
	res, err := b.SolveQuery(context.Background(), q, service.EncodeSpec{}, service.Params{Reads: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decoded.Valid || !res.Decoded.Order.IsPermutation(n) {
		t.Fatalf("invalid decomposed plan: %+v", res.Decoded)
	}
	if res.LogicalQubits == 0 {
		t.Fatal("expected a nonzero aggregate qubit count")
	}
}

// TestPartBudgetOverride checks Params.Decomp.PartBudget steers the
// partitioner per request.
func TestPartBudgetOverride(t *testing.T) {
	q := genQuery(t, 36, querygen.Chain, 3)
	p, err := PartitionQuery(q, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range p.Parts {
		if len(part) > 6 {
			t.Fatalf("part exceeds budget: %v", part)
		}
	}
	p2, err := PartitionQuery(q, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Parts) >= len(p.Parts) {
		t.Fatalf("larger budget produced %d parts, smaller produced %d", len(p2.Parts), len(p.Parts))
	}
}

// TestSolveOnEncoding exercises the plain service.Backend entry point: a
// monolithic-sized encoding is still solved via decomposition, and the
// decoded order must be valid for the encoding's query.
func TestSolveOnEncoding(t *testing.T) {
	q := genQuery(t, 12, querygen.Star, 5)
	enc, err := core.Encode(q, core.Options{Thresholds: core.DefaultThresholds(q, 3)})
	if err != nil {
		t.Fatal(err)
	}
	b := testBackend(t, Config{Subsolver: "tabu", PartBudget: 5})
	d, err := b.Solve(context.Background(), enc, service.Params{Reads: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Valid || !d.Order.IsPermutation(12) {
		t.Fatalf("invalid decoded plan: %+v", d)
	}
	if greedy := classical.Greedy(q); d.Cost > greedy.Cost*(1+1e-12) {
		t.Fatalf("cost %g worse than greedy %g", d.Cost, greedy.Cost)
	}
}

// TestHybridSubsolvePath runs the default (no named subsolver) hybrid
// orchestration per part with hedging disabled for test speed.
func TestHybridSubsolvePath(t *testing.T) {
	q := genQuery(t, 24, querygen.Tree, 11)
	b := testBackend(t, Config{PartBudget: 8, HedgeDelay: -1})
	res, err := b.SolveQuery(context.Background(), q, service.EncodeSpec{}, service.Params{Reads: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decoded.Order.IsPermutation(24) {
		t.Fatalf("order %v is not a permutation", res.Decoded.Order)
	}
	if greedy := classical.Greedy(q); res.Decoded.Cost > greedy.Cost*(1+1e-12) {
		t.Fatalf("cost %g worse than greedy %g", res.Decoded.Cost, greedy.Cost)
	}
}

// TestUnknownSubsolverDegradesClassically: a misconfigured subsolver name
// must not fail the query — every part falls back to its classical floor.
func TestUnknownSubsolverDegradesClassically(t *testing.T) {
	q := genQuery(t, 20, querygen.Chain, 6)
	b := testBackend(t, Config{Subsolver: "no-such-backend"})
	res, err := b.SolveQuery(context.Background(), q, service.EncodeSpec{}, service.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decoded.Order.IsPermutation(20) {
		t.Fatalf("order %v is not a permutation", res.Decoded.Order)
	}
}
