// Package decomp scales join order optimisation past the monolithic QUBO
// limit by hybrid decomposition (after Nayak et al., "Improved Join Order
// Optimization … Hybrid Quantum-Classical Approaches for QUBO Problems"):
// the join-predicate graph is partitioned into connected, QUBO-sized
// subgraphs with a min-cut-flavoured greedy partitioner plus KL-style
// refinement, each part is solved through the existing backend portfolio
// (hybrid orchestration or a named subsolver, warm-started and
// breaker-aware), and the per-part orders are stitched into a full plan by
// the classical planner running on the contracted part-graph — parts
// become composite relations with derived cardinalities and selectivities.
package decomp

import (
	"fmt"
	"math"
	"sort"

	"quantumjoin/internal/join"
)

// Partition is a decomposition of a query's relations into disjoint,
// connected parts of bounded size.
type Partition struct {
	// Parts lists the relation indices of each part, each sorted ascending.
	Parts [][]int
	// PartOf maps relation index -> part index.
	PartOf []int
	// CutEdges counts predicates whose endpoints land in different parts.
	CutEdges int
	// CutWeight is the total −log10(selectivity) weight of cut predicates:
	// the selectivity "lost" to the contraction (smaller is better).
	CutWeight float64
}

// edgeWeight scores a predicate for the partitioner: 1 − log10(sel).
// The constant keeps sel = 1 predicates attractive (they still constrain
// the graph), and more selective predicates — the ones that shrink
// intermediates the most — pull their endpoints into the same part
// hardest, which is exactly min-cut on the selectivity mass.
func edgeWeight(sel float64) float64 {
	return 1 - math.Log10(sel)
}

// PartitionQuery splits the query's join graph into connected parts of at
// most budget relations: greedy agglomerative growth (heaviest-connection
// vertex joins the open part) followed by KL-style boundary refinement
// (single-vertex moves that reduce the cut while preserving connectivity
// and the budget). Vertices with no unassigned neighbours seed their own
// parts, so star spokes become singletons instead of cross-product parts.
// The result is deterministic for a given query and budget.
func PartitionQuery(q *join.Query, budget int) (*Partition, error) {
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("decomp: cannot partition invalid query: %w", err)
	}
	if budget < 1 {
		return nil, fmt.Errorf("decomp: part budget must be >= 1, got %d", budget)
	}
	n := q.NumRelations()
	// Dense weighted adjacency: n <= 64 (join.MaxRelations), so n² stays
	// trivial and the inner loops branch-free.
	adj := make([][]float64, n)
	for i := range adj {
		adj[i] = make([]float64, n)
	}
	for _, p := range q.Predicates {
		w := edgeWeight(p.Sel)
		adj[p.R1][p.R2] += w
		adj[p.R2][p.R1] += w
	}

	partOf := make([]int, n)
	for i := range partOf {
		partOf[i] = -1
	}
	var parts [][]int
	conn := make([]float64, n)
	remaining := n
	for remaining > 0 {
		// Seed: the unassigned vertex with the heaviest connection to other
		// unassigned vertices (ties to the lowest index). Heavy hubs anchor
		// parts early, pulling their strongest neighbours in after them.
		seed, seedW := -1, -1.0
		for v := 0; v < n; v++ {
			if partOf[v] >= 0 {
				continue
			}
			w := 0.0
			for u := 0; u < n; u++ {
				if partOf[u] < 0 {
					w += adj[v][u]
				}
			}
			if w > seedW {
				seed, seedW = v, w
			}
		}
		pi := len(parts)
		part := []int{seed}
		partOf[seed] = pi
		remaining--
		for v := 0; v < n; v++ {
			conn[v] = adj[seed][v]
		}
		for len(part) < budget {
			best, bestW := -1, 0.0
			for v := 0; v < n; v++ {
				if partOf[v] < 0 && conn[v] > bestW {
					best, bestW = v, conn[v]
				}
			}
			if best < 0 {
				break // nothing connected remains: keep the part connected
			}
			part = append(part, best)
			partOf[best] = pi
			remaining--
			for v := 0; v < n; v++ {
				conn[v] += adj[best][v]
			}
		}
		sort.Ints(part)
		parts = append(parts, part)
	}

	refine(q, adj, parts, partOf, budget)

	p := &Partition{Parts: parts, PartOf: partOf}
	for _, pr := range q.Predicates {
		if partOf[pr.R1] != partOf[pr.R2] {
			p.CutEdges++
			p.CutWeight += -math.Log10(pr.Sel)
		}
	}
	return p, nil
}

// refine performs KL-style steepest-descent vertex moves: while some
// boundary vertex is more strongly connected to a neighbouring part than
// to the rest of its own (and moving it keeps the source part connected
// and the target within budget), apply the best such move. Bounded by 2n
// moves — each strictly reduces the cut, so termination is guaranteed
// anyway; the bound just caps the worst case.
func refine(q *join.Query, adj [][]float64, parts [][]int, partOf []int, budget int) {
	n := len(partOf)
	toPart := make([]float64, len(parts))
	for moves := 0; moves < 2*n; moves++ {
		bestV, bestTo, bestGain := -1, -1, 0.0
		for v := 0; v < n; v++ {
			from := partOf[v]
			if len(parts[from]) <= 1 {
				continue
			}
			for i := range toPart {
				toPart[i] = 0
			}
			internal := 0.0
			for u := 0; u < n; u++ {
				if w := adj[v][u]; w > 0 {
					if partOf[u] == from {
						internal += w
					} else {
						toPart[partOf[u]] += w
					}
				}
			}
			for to, w := range toPart {
				if w <= 0 || len(parts[to]) >= budget {
					continue
				}
				gain := w - internal
				if gain > bestGain && connectedWithout(adj, parts[from], v, partOf) {
					bestV, bestTo, bestGain = v, to, gain
				}
			}
		}
		if bestV < 0 {
			return
		}
		from := partOf[bestV]
		parts[from] = removeInt(parts[from], bestV)
		parts[bestTo] = append(parts[bestTo], bestV)
		sort.Ints(parts[bestTo])
		partOf[bestV] = bestTo
	}
}

// connectedWithout reports whether part stays connected (over part-internal
// predicate edges) after removing vertex v.
func connectedWithout(adj [][]float64, part []int, v int, partOf []int) bool {
	if len(part) <= 2 {
		return true // removing one vertex from <=2 leaves <=1: trivially connected
	}
	start := -1
	inPart := make(map[int]bool, len(part))
	for _, u := range part {
		if u != v {
			inPart[u] = true
			if start < 0 {
				start = u
			}
		}
	}
	seen := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for u := range inPart {
			if !seen[u] && adj[x][u] > 0 {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return len(seen) == len(inPart)
}

func removeInt(s []int, v int) []int {
	out := s[:0]
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}
