package decomp

import (
	"context"
	"fmt"
	"time"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/core"
	"quantumjoin/internal/hybrid"
	"quantumjoin/internal/join"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// Name is the registry name of the decomposition backend.
const Name = "decomp"

// Config assembles a decomposition Backend over an existing registry.
type Config struct {
	// Registry resolves the subsolver backends (required).
	Registry *service.Registry
	// Metrics, when non-nil, receives per-backend outcomes from the hybrid
	// orchestration of each part.
	Metrics *service.Metrics
	// PartBudget is the default maximum relations per part (default 12,
	// clamped to [2, core.MaxMonolithicRelations]). Requests override it
	// via Params.Decomp.PartBudget.
	PartBudget int
	// MaxStitchDPParts caps the part count for the exact DP stitch over the
	// contracted part-graph; above it the stitch falls back to greedy
	// (default 16).
	MaxStitchDPParts int
	// Subsolver, when non-empty, names a single registry backend to solve
	// every part with (batched through SolveBatch when supported) instead
	// of hybrid orchestration. Deterministic given a seed, which makes it
	// the right mode for CI gates and benchmarks.
	Subsolver string
	// Portfolio and HedgeDelay tune the per-part hybrid orchestration used
	// when Subsolver is empty; zero values select the hybrid defaults.
	Portfolio  []string
	HedgeDelay time.Duration
	// StandardParts disables the compact per-part encoding: by default
	// parts are encoded with core.Options.Compact (fewer qubits per part)
	// unless the request already asked for a specific encoding.
	StandardParts bool
}

func (c Config) withDefaults() Config {
	if c.PartBudget == 0 {
		c.PartBudget = 12
	}
	if c.MaxStitchDPParts == 0 {
		c.MaxStitchDPParts = maxStitchDP
	}
	return c
}

func clampBudget(b int) int {
	if b < 2 {
		b = 2
	}
	if b > core.MaxMonolithicRelations {
		b = core.MaxMonolithicRelations
	}
	return b
}

// Backend decomposes large join graphs into QUBO-sized parts, solves each
// part through the backend portfolio, and stitches the per-part orders with
// the classical planner. It implements service.QueryBackend, so the service
// routes it around the monolithic encoding cache, and is safe for
// concurrent use.
type Backend struct {
	cfg Config
	hyb *hybrid.Backend
}

// New builds the decomposition backend over the registry.
func New(cfg Config) (*Backend, error) {
	cfg = cfg.withDefaults()
	if cfg.Registry == nil {
		return nil, fmt.Errorf("decomp: config needs a backend registry")
	}
	hyb, err := hybrid.New(hybrid.Config{
		Registry:   cfg.Registry,
		Metrics:    cfg.Metrics,
		Strategy:   hybrid.StrategyStaged,
		Portfolio:  cfg.Portfolio,
		HedgeDelay: cfg.HedgeDelay,
	})
	if err != nil {
		return nil, fmt.Errorf("decomp: %w", err)
	}
	return &Backend{cfg: cfg, hyb: hyb}, nil
}

// Name implements service.Backend.
func (b *Backend) Name() string { return Name }

// Solve implements service.Backend for callers holding a monolithic
// encoding (tests, direct library use): it recovers the query and encoding
// spec from the encoding and delegates to SolveQuery. The service itself
// never takes this path — it detects the QueryBackend interface and calls
// SolveQuery before any monolithic encode is attempted.
func (b *Backend) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	spec := service.EncodeSpec{
		Thresholds:   len(enc.Opts.Thresholds),
		Omega:        enc.Opts.Omega,
		LogObjective: enc.Opts.LogObjective,
		Compact:      enc.Opts.Compact,
	}
	res, err := b.SolveQuery(ctx, enc.Query, spec, p)
	if err != nil {
		return nil, err
	}
	d := res.Decoded
	return &d, nil
}

// SolveQuery implements service.QueryBackend: partition → per-part solve →
// stitch. Per-part solver failures degrade to the part's classical plan
// rather than failing the query, and the stitched plan is floored at the
// global greedy plan, so the result is never worse than classical.Greedy.
func (b *Backend) SolveQuery(ctx context.Context, q *join.Query, spec service.EncodeSpec, p service.Params) (*service.QueryResult, error) {
	if q == nil {
		return nil, fmt.Errorf("decomp: nil query: %w", service.ErrBadRequest)
	}
	budget := p.Decomp.PartBudget
	if budget == 0 {
		budget = b.cfg.PartBudget
	}
	budget = clampBudget(budget)

	_, pspan := obs.StartSpan(ctx, "partition")
	part, err := PartitionQuery(q, budget)
	if err != nil {
		pspan.End(err)
		return nil, fmt.Errorf("%w: %w", err, service.ErrBadRequest)
	}
	pspan.SetAttrInt("parts", len(part.Parts))
	pspan.SetAttrInt("cut_edges", part.CutEdges)
	pspan.SetAttrFloat("cut_weight", part.CutWeight)
	pspan.End(nil)

	partOrders, totalQubits := b.solveParts(ctx, q, part.Parts, spec, p)

	sctx, sspan := obs.StartSpan(ctx, "stitch")
	cq, err := contract(q, part.Parts)
	if err != nil {
		sspan.End(err)
		return nil, err
	}
	dpParts := b.cfg.MaxStitchDPParts
	if dpParts > classical.MaxDPRelations {
		dpParts = classical.MaxDPRelations
	}
	full, producer := stitchOrder(sctx, part.Parts, partOrders, cq, dpParts)
	cost := q.Cost(full)
	// Global floor: the stitch is heuristic (part boundaries constrain the
	// order), so never return a plan worse than the one-shot greedy plan
	// over the full graph.
	if g := classical.Greedy(q); g.Cost < cost {
		full, cost = g.Order, g.Cost
		producer = "greedy-floor"
	}
	sspan.SetAttrStr("producer", producer)
	sspan.SetAttrFloat("cost", cost)
	sspan.End(nil)

	return &service.QueryResult{
		Decoded:       core.Decoded{Valid: true, Order: full, Cost: cost},
		LogicalQubits: totalQubits,
	}, nil
}

// saltSeed derives a distinct deterministic seed per part so parts do not
// replay identical sampler trajectories.
func saltSeed(seed int64, i int) int64 {
	return int64(uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15)
}

// partJob is the prepared per-part solve: the induced subquery, its
// classical floor (warm-start incumbent and degrade path), and the part's
// encoding with derived params (nil enc for parts solved classically).
type partJob struct {
	rels  []int
	sq    *join.Query
	floor classical.Result
	enc   *core.Encoding
	pp    service.Params
}

// solveParts resolves a local join order per part, returning the orders
// index-aligned with parts and the aggregate logical qubit count. When the
// named subsolver has a SolveBatch fast path, every encoded part goes
// through it in one amortised call; otherwise parts solve one at a time
// (hybrid orchestration or plain Solve).
func (b *Backend) solveParts(ctx context.Context, q *join.Query, parts [][]int, spec service.EncodeSpec, p service.Params) ([]join.Order, int) {
	orders := make([]join.Order, len(parts))
	jobs := make([]*partJob, len(parts))
	totalQubits := 0

	if bs := b.batchSubsolver(); bs != nil {
		var encs []*core.Encoding
		var pps []service.Params
		var idx []int
		for i, rels := range parts {
			_, span := obs.StartSpan(ctx, "subsolve")
			span.SetAttrInt("part", i)
			span.SetAttrInt("relations", len(rels))
			jobs[i] = b.preparePart(ctx, q, rels, spec, p, i)
			orders[i] = jobs[i].floor.Order
			if jobs[i].enc != nil {
				span.SetAttrInt("qubits", jobs[i].enc.NumQubits())
				totalQubits += jobs[i].enc.NumQubits()
				encs = append(encs, jobs[i].enc)
				pps = append(pps, jobs[i].pp)
				idx = append(idx, i)
			} else {
				span.SetAttrStr("solver", "classical")
			}
			span.End(nil)
		}
		if len(encs) > 0 {
			bctx, span := obs.StartSpan(ctx, "subsolve.batch")
			span.SetAttrInt("parts", len(encs))
			span.SetAttrStr("solver", b.cfg.Subsolver)
			ds, errs := bs.SolveBatch(bctx, encs, pps)
			span.End(nil)
			for k, i := range idx {
				if errs[k] != nil {
					obs.Logger(ctx).WarnContext(ctx, "batched part solve failed, using classical plan",
						"part", i, "subsolver", b.cfg.Subsolver, "error", errs[k])
					continue
				}
				orders[i] = pickOrder(jobs[i], ds[k])
			}
		}
		return orders, totalQubits
	}

	for i, rels := range parts {
		sctx, span := obs.StartSpan(ctx, "subsolve")
		span.SetAttrInt("part", i)
		span.SetAttrInt("relations", len(rels))
		job := b.preparePart(sctx, q, rels, spec, p, i)
		orders[i] = job.floor.Order
		if job.enc == nil {
			span.SetAttrStr("solver", "classical")
			span.End(nil)
			continue
		}
		span.SetAttrInt("qubits", job.enc.NumQubits())
		totalQubits += job.enc.NumQubits()
		d, solver := b.subsolve(sctx, job.enc, job.pp)
		span.SetAttrStr("solver", solver)
		orders[i] = pickOrder(job, d)
		span.End(nil)
	}
	return orders, totalQubits
}

// batchSubsolver returns the named subsolver's batch interface when it is
// registered, healthy, and implements SolveBatch.
func (b *Backend) batchSubsolver() service.BatchSolver {
	if b.cfg.Subsolver == "" {
		return nil
	}
	be, ok := b.cfg.Registry.Get(b.cfg.Subsolver)
	if !ok {
		return nil
	}
	if hr, ok := be.(service.HealthReporter); ok && hr.Health().State == service.HealthOpen {
		return nil
	}
	bs, ok := be.(service.BatchSolver)
	if !ok {
		return nil
	}
	return bs
}

// pickOrder selects the part's final local order: the solver's sample when
// it is a valid permutation strictly cheaper than the classical floor, the
// floor otherwise.
func pickOrder(job *partJob, d *core.Decoded) join.Order {
	if d != nil && d.Valid && d.Order.IsPermutation(len(job.rels)) {
		if job.sq.Cost(d.Order) < job.floor.Cost {
			return d.Order
		}
	}
	return job.floor.Order
}

// preparePart builds one part's solve job: trivial and two-relation parts
// are resolved classically (nil enc); larger parts get a compact-by-default
// encoding, a per-part salted seed, and a warm start from the floor.
func (b *Backend) preparePart(ctx context.Context, q *join.Query, rels []int, spec service.EncodeSpec, p service.Params, i int) *partJob {
	job := &partJob{rels: rels}
	if len(rels) == 1 {
		job.floor = classical.Result{Order: join.Order{0}}
		return job
	}
	job.sq = subQuery(q, rels)

	// Classical floor for the part: exact DP when the part is small enough
	// for the non-cancellable pass, greedy otherwise. This is also the
	// warm-start incumbent and the degrade path on solver failure.
	job.floor = classical.Greedy(job.sq)
	if len(rels) <= 18 {
		if res, err := classical.OptimalContext(ctx, job.sq); err == nil {
			job.floor = res
		}
	}
	if len(rels) == 2 {
		return job
	}

	enc, err := b.encodePart(ctx, job.sq, spec)
	if err != nil {
		obs.Logger(ctx).WarnContext(ctx, "part encode failed, using classical plan",
			"part", i, "error", err)
		return job
	}
	job.enc = enc
	job.pp = p
	job.pp.Seed = saltSeed(p.Seed, i)
	job.pp.Decomp = service.DecompParams{}
	job.pp.Hybrid = service.HybridParams{}
	if warm, werr := enc.EncodeOrder(job.floor.Order); werr == nil {
		if full, ferr := enc.CompleteSlacks(warm); ferr == nil {
			job.pp.InitialState = full
		}
	}
	return job
}

// encodePart builds the part's QUBO encoding. Parts default to the compact
// encoding — the whole point of decomposition is fitting hardware, and the
// compact substitution drops T·(J−1) decision qubits per part — unless the
// backend is configured for standard part encodings. A request that set
// spec.Compact explicitly always gets compact parts.
func (b *Backend) encodePart(ctx context.Context, sq *join.Query, spec service.EncodeSpec) (*core.Encoding, error) {
	thresholds := spec.Thresholds
	if thresholds <= 0 {
		thresholds = 3
	}
	omega := spec.Omega
	if omega == 0 {
		omega = 1
	}
	return core.EncodeContext(ctx, sq, core.Options{
		Thresholds:   core.DefaultThresholds(sq, thresholds),
		Omega:        omega,
		LogObjective: spec.LogObjective,
		Compact:      spec.Compact || !b.cfg.StandardParts,
	})
}

// subsolve runs one part's encoding through the configured solver path and
// reports which solver produced the result ("" when none did).
func (b *Backend) subsolve(ctx context.Context, enc *core.Encoding, pp service.Params) (*core.Decoded, string) {
	if b.cfg.Subsolver != "" {
		be, ok := b.cfg.Registry.Get(b.cfg.Subsolver)
		if !ok {
			obs.Logger(ctx).WarnContext(ctx, "decomp subsolver not registered", "subsolver", b.cfg.Subsolver)
			return nil, ""
		}
		if hr, ok := be.(service.HealthReporter); ok && hr.Health().State == service.HealthOpen {
			return nil, "" // breaker open: fast-degrade to the classical floor
		}
		d, err := be.Solve(ctx, enc, pp)
		if err != nil {
			obs.Logger(ctx).WarnContext(ctx, "decomp subsolver failed, using classical plan",
				"subsolver", b.cfg.Subsolver, "error", err)
			return nil, ""
		}
		return d, b.cfg.Subsolver
	}
	out, err := b.hyb.Orchestrate(ctx, enc, pp)
	if err != nil {
		obs.Logger(ctx).WarnContext(ctx, "decomp hybrid orchestration failed, using classical plan",
			"error", err)
		return nil, ""
	}
	return out.Best, "hybrid/" + out.Winner
}
