package join

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func exampleQuery() *Query {
	// The running example of the paper (§3, Example 3.3): R, S, T with
	// cardinality 100 each and one predicate p_RS with selectivity 0.1.
	return &Query{
		Relations: []Relation{
			{Name: "R", Card: 100},
			{Name: "S", Card: 100},
			{Name: "T", Card: 100},
		},
		Predicates: []Predicate{{R1: 0, R2: 1, Sel: 0.1}},
	}
}

func TestValidate(t *testing.T) {
	q := exampleQuery()
	if err := q.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
	bad := []*Query{
		{Relations: []Relation{{Card: 10}}},
		{Relations: []Relation{{Card: 0}, {Card: 10}}},
		{Relations: []Relation{{Card: 10}, {Card: 10}}, Predicates: []Predicate{{R1: 0, R2: 2, Sel: 0.5}}},
		{Relations: []Relation{{Card: 10}, {Card: 10}}, Predicates: []Predicate{{R1: 0, R2: 0, Sel: 0.5}}},
		{Relations: []Relation{{Card: 10}, {Card: 10}}, Predicates: []Predicate{{R1: 0, R2: 1, Sel: 0}}},
		{Relations: []Relation{{Card: 10}, {Card: 10}}, Predicates: []Predicate{{R1: 0, R2: 1, Sel: 1.5}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
	// Relation counts above MaxRelations must be rejected with a pointer at
	// the decomposition path, not silently miscost via overflowed masks.
	big := &Query{Relations: make([]Relation, MaxRelations+1)}
	for i := range big.Relations {
		big.Relations[i] = Relation{Card: 2}
	}
	err := big.Validate()
	if err == nil {
		t.Fatalf("query with %d relations accepted", len(big.Relations))
	}
	if !strings.Contains(err.Error(), "decomp") {
		t.Errorf("oversize error should point at the decomp backend, got: %v", err)
	}
	atLimit := &Query{Relations: make([]Relation, MaxRelations)}
	for i := range atLimit.Relations {
		atLimit.Relations[i] = Relation{Card: 2}
	}
	if err := atLimit.Validate(); err != nil {
		t.Errorf("query at the %d-relation limit rejected: %v", MaxRelations, err)
	}
}

func TestSetCard(t *testing.T) {
	q := exampleQuery()
	cases := []struct {
		mask uint64
		want float64
	}{
		{0, 1},
		{1 << 0, 100},
		{1 << 1, 100},
		{1<<0 | 1<<1, 1000},  // 100*100*0.1: predicate applies
		{1<<0 | 1<<2, 10000}, // cross product
		{1<<0 | 1<<1 | 1<<2, 100000},
	}
	for _, c := range cases {
		if got := q.SetCard(c.mask); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("SetCard(%b) = %v, want %v", c.mask, got, c.want)
		}
		if got := q.LogSetCard(c.mask); math.Abs(got-math.Log10(c.want)) > 1e-9 {
			t.Errorf("LogSetCard(%b) = %v, want %v", c.mask, got, math.Log10(c.want))
		}
	}
}

func TestCostMatchesPaperExample(t *testing.T) {
	q := exampleQuery()
	// (R ⋈ S) ⋈ T: intermediate 1000, final 100000 -> 101000.
	got := q.Cost(Order{0, 1, 2})
	if math.Abs(got-101000) > 1e-6 {
		t.Fatalf("Cost(R,S,T) = %v, want 101000", got)
	}
	// (R ⋈ T) ⋈ S needs a cross product: 10000 + 100000 = 110000.
	if got := q.Cost(Order{0, 2, 1}); math.Abs(got-110000) > 1e-6 {
		t.Fatalf("Cost(R,T,S) = %v, want 110000", got)
	}
	// Optimal orders are (R ⋈ S) ⋈ T and (S ⋈ R) ⋈ T.
	if q.Cost(Order{0, 1, 2}) != q.Cost(Order{1, 0, 2}) {
		t.Fatal("first-two-commutation should not change cost")
	}
}

func TestLogCostMatchesCost(t *testing.T) {
	q := exampleQuery()
	for _, o := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}} {
		c, lc := q.Cost(Order(o)), q.LogCost(Order(o))
		if math.Abs(c-lc)/c > 1e-9 {
			t.Errorf("Cost and LogCost disagree for %v: %v vs %v", o, c, lc)
		}
	}
}

func TestTree(t *testing.T) {
	q := exampleQuery()
	if got, want := q.Tree(Order{0, 1, 2}), "((R ⋈ S) ⋈ T)"; got != want {
		t.Errorf("Tree = %q, want %q", got, want)
	}
	anon := &Query{Relations: []Relation{{Card: 1}, {Card: 1}}}
	if got, want := anon.Tree(Order{1, 0}), "(R1 ⋈ R0)"; got != want {
		t.Errorf("Tree = %q, want %q", got, want)
	}
}

func TestRequiresCrossProduct(t *testing.T) {
	q := exampleQuery()
	// Any order involving T requires a cross product since only p_RS exists.
	for _, o := range [][]int{{0, 1, 2}, {0, 2, 1}, {2, 0, 1}} {
		if !q.RequiresCrossProduct(Order(o)) {
			t.Errorf("order %v must require a cross product", o)
		}
	}
	chain := &Query{
		Relations:  []Relation{{Card: 10}, {Card: 10}, {Card: 10}},
		Predicates: []Predicate{{R1: 0, R2: 1, Sel: 0.1}, {R1: 1, R2: 2, Sel: 0.1}},
	}
	if chain.RequiresCrossProduct(Order{0, 1, 2}) {
		t.Error("chain order 0,1,2 should not require a cross product")
	}
	if !chain.RequiresCrossProduct(Order{0, 2, 1}) {
		t.Error("chain order 0,2,1 must require a cross product")
	}
}

func TestIsPermutation(t *testing.T) {
	if !(Order{2, 0, 1}).IsPermutation(3) {
		t.Error("valid permutation rejected")
	}
	for _, o := range []Order{{0, 1}, {0, 0, 1}, {0, 1, 3}, {-1, 0, 1}} {
		if o.IsPermutation(3) {
			t.Errorf("invalid permutation %v accepted", o)
		}
	}
}

func TestCostPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Cost on non-permutation should panic")
		}
	}()
	exampleQuery().Cost(Order{0, 0, 1})
}

// Property: cost is invariant under swapping the first two relations
// (the first join is symmetric in its operands under C_out).
func TestQuickFirstJoinSymmetry(t *testing.T) {
	f := func(cards [4]uint8, sel uint8) bool {
		q := &Query{}
		for _, c := range cards {
			q.Relations = append(q.Relations, Relation{Card: float64(c%100) + 1})
		}
		s := float64(sel%100+1) / 100
		q.Predicates = []Predicate{{R1: 0, R2: 1, Sel: s}, {R1: 2, R2: 3, Sel: s}}
		a := q.Cost(Order{0, 1, 2, 3})
		b := q.Cost(Order{1, 0, 2, 3})
		return math.Abs(a-b) <= 1e-9*math.Abs(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding a predicate never increases the cost of any order.
func TestQuickPredicatesReduceCost(t *testing.T) {
	f := func(cards [3]uint8, sel uint8) bool {
		base := &Query{}
		for _, c := range cards {
			base.Relations = append(base.Relations, Relation{Card: float64(c)*4 + 1})
		}
		with := &Query{Relations: base.Relations,
			Predicates: []Predicate{{R1: 0, R2: 1, Sel: float64(sel%99+1) / 100}}}
		for _, o := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}} {
			if with.Cost(Order(o)) > base.Cost(Order(o))+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
