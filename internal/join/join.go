// Package join models the join ordering (JO) problem domain: queries over
// relations with binary join predicates, left-deep join trees, and the
// classic C_out cost function of Cluet and Moerkotte that the paper's QUBO
// formulation targets.
//
// A join order for n relations is a permutation s_1 ... s_n interpreted as
// the left-deep tree (...((s_1 ⋈ s_2) ⋈ s_3)... ⋈ s_n). Cross products are
// permitted: a join step without an applicable predicate multiplies
// cardinalities.
package join

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Relation is a base relation with a name and cardinality.
type Relation struct {
	Name string
	Card float64 // cardinality, must be >= 1
}

// Predicate is a binary join predicate between two relations, identified by
// their indices into Query.Relations, with a selectivity in (0, 1].
// Predicates are uncorrelated (the paper's §3.2 restriction): the
// cardinality of a joined set is the product of base cardinalities and the
// selectivities of all predicates internal to the set.
type Predicate struct {
	R1, R2 int
	Sel    float64
}

// Query is a join ordering problem instance.
type Query struct {
	Relations  []Relation
	Predicates []Predicate
}

// MaxRelations is the hard relation-count ceiling for a single Query: set
// cardinalities, DP bitsets, and the permutation fast path all use uint64
// masks indexed by relation. Larger join graphs must be split first (see
// internal/decomp, which partitions the join graph and stitches per-part
// orders).
const MaxRelations = 64

// NumRelations returns the number of base relations T.
func (q *Query) NumRelations() int { return len(q.Relations) }

// NumJoins returns the number of joins J = T-1 in any left-deep tree.
func (q *Query) NumJoins() int {
	if len(q.Relations) == 0 {
		return 0
	}
	return len(q.Relations) - 1
}

// NumPredicates returns the number of join predicates P.
func (q *Query) NumPredicates() int { return len(q.Predicates) }

// Validate checks structural invariants: at least two relations, all
// cardinalities >= 1, predicate endpoints in range and distinct, and all
// selectivities in (0, 1].
func (q *Query) Validate() error {
	if len(q.Relations) < 2 {
		return errors.New("join: query needs at least two relations")
	}
	if len(q.Relations) > MaxRelations {
		return fmt.Errorf("join: %d relations exceeds the %d-relation limit of the uint64 set masks; partition the join graph instead (the decomp backend splits large graphs into QUBO-sized parts and stitches the per-part orders)", len(q.Relations), MaxRelations)
	}
	for i, r := range q.Relations {
		if r.Card < 1 || math.IsNaN(r.Card) || math.IsInf(r.Card, 0) {
			return fmt.Errorf("join: relation %d (%s) has invalid cardinality %v", i, r.Name, r.Card)
		}
	}
	for i, p := range q.Predicates {
		if p.R1 < 0 || p.R1 >= len(q.Relations) || p.R2 < 0 || p.R2 >= len(q.Relations) {
			return fmt.Errorf("join: predicate %d references relation out of range", i)
		}
		if p.R1 == p.R2 {
			return fmt.Errorf("join: predicate %d joins relation %d with itself", i, p.R1)
		}
		if !(p.Sel > 0 && p.Sel <= 1) {
			return fmt.Errorf("join: predicate %d has selectivity %v outside (0, 1]", i, p.Sel)
		}
	}
	// Selectivities are <= 1, so the product of all base cardinalities
	// bounds every intermediate SetCard; if it overflows float64, linear
	// cost arithmetic breaks down (Inf comparisons) before any solver runs.
	logCard := 0.0
	for t := range q.Relations {
		logCard += q.LogCard(t)
	}
	if logCard > math.Log10(math.MaxFloat64) {
		return fmt.Errorf("join: cardinality product 1e%.0f overflows float64 cost arithmetic", logCard)
	}
	return nil
}

// LogCard returns log10 of the cardinality of relation t.
func (q *Query) LogCard(t int) float64 { return math.Log10(q.Relations[t].Card) }

// LogSel returns log10 of the selectivity of predicate p (non-positive).
func (q *Query) LogSel(p int) float64 { return math.Log10(q.Predicates[p].Sel) }

// SetCard returns the cardinality of the join of the relation set given as
// a bitmask over relation indices: the product of the base cardinalities
// and of the selectivities of every predicate whose endpoints are both in
// the set. A single relation yields its base cardinality; the empty set
// yields 1.
func (q *Query) SetCard(mask uint64) float64 {
	card := 1.0
	for t := 0; t < len(q.Relations); t++ {
		if mask&(1<<uint(t)) != 0 {
			card *= q.Relations[t].Card
		}
	}
	for _, p := range q.Predicates {
		if mask&(1<<uint(p.R1)) != 0 && mask&(1<<uint(p.R2)) != 0 {
			card *= p.Sel
		}
	}
	return card
}

// LogSetCard returns log10 of SetCard(mask), computed in log space to avoid
// overflow for large sets.
func (q *Query) LogSetCard(mask uint64) float64 {
	l := 0.0
	for t := 0; t < len(q.Relations); t++ {
		if mask&(1<<uint(t)) != 0 {
			l += q.LogCard(t)
		}
	}
	for i, p := range q.Predicates {
		if mask&(1<<uint(p.R1)) != 0 && mask&(1<<uint(p.R2)) != 0 {
			l += q.LogSel(i)
		}
	}
	return l
}

// Order is a left-deep join order: a permutation of relation indices.
type Order []int

// IsPermutation reports whether o is a permutation of 0..n-1.
func (o Order) IsPermutation(n int) bool {
	if len(o) != n {
		return false
	}
	if n <= 64 {
		// Allocation-free fast path; every query this package can cost
		// has at most 64 relations (set cardinalities use uint64 masks).
		var seen uint64
		for _, t := range o {
			if t < 0 || t >= n || seen&(1<<uint(t)) != 0 {
				return false
			}
			seen |= 1 << uint(t)
		}
		return true
	}
	seen := make([]bool, n)
	for _, t := range o {
		if t < 0 || t >= n || seen[t] {
			return false
		}
		seen[t] = true
	}
	return true
}

// Cost evaluates the C_out cost of the left-deep join order per Eq. (2) of
// the paper: the sum over i = 2..n of the cardinality of the intermediate
// result after joining the first i relations. It panics if the order is not
// a permutation of the query's relations (programming error).
func (q *Query) Cost(o Order) float64 {
	n := len(q.Relations)
	if !o.IsPermutation(n) {
		panic(fmt.Sprintf("join: order %v is not a permutation of %d relations", o, n))
	}
	var mask uint64
	cost := 0.0
	for i, t := range o {
		mask |= 1 << uint(t)
		if i >= 1 {
			cost += q.SetCard(mask)
		}
	}
	return cost
}

// LogCost evaluates the cost in log space: sum over prefixes of
// 10^LogSetCard(prefix). Equivalent to Cost but stable for large queries.
func (q *Query) LogCost(o Order) float64 {
	n := len(q.Relations)
	if !o.IsPermutation(n) {
		panic(fmt.Sprintf("join: order %v is not a permutation of %d relations", o, n))
	}
	var mask uint64
	cost := 0.0
	for i, t := range o {
		mask |= 1 << uint(t)
		if i >= 1 {
			cost += math.Pow(10, q.LogSetCard(mask))
		}
	}
	return cost
}

// Tree renders the order as a left-deep join tree, e.g. ((R ⋈ S) ⋈ T).
func (q *Query) Tree(o Order) string {
	if len(o) == 0 {
		return ""
	}
	name := func(t int) string {
		if n := q.Relations[t].Name; n != "" {
			return n
		}
		return fmt.Sprintf("R%d", t)
	}
	var b strings.Builder
	b.WriteString(name(o[0]))
	for _, t := range o[1:] {
		s := b.String()
		b.Reset()
		fmt.Fprintf(&b, "(%s ⋈ %s)", s, name(t))
	}
	return b.String()
}

// PredicatesBetween returns the indices of predicates connecting relation t
// to any relation in mask.
func (q *Query) PredicatesBetween(mask uint64, t int) []int {
	var out []int
	for i, p := range q.Predicates {
		other := -1
		switch t {
		case p.R1:
			other = p.R2
		case p.R2:
			other = p.R1
		}
		if other >= 0 && mask&(1<<uint(other)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// RequiresCrossProduct reports whether evaluating the order requires at
// least one cross product (a join step with no applicable new predicate).
func (q *Query) RequiresCrossProduct(o Order) bool {
	var mask uint64
	for i, t := range o {
		if i >= 1 && len(q.PredicatesBetween(mask, t)) == 0 {
			return true
		}
		mask |= 1 << uint(t)
	}
	return false
}
