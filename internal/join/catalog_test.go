package join

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCatalog = `{
  "relations": [
    {"name": "orders", "cardinality": 1500000},
    {"name": "customers", "cardinality": 100000},
    {"name": "items", "cardinality": 6000000}
  ],
  "predicates": [
    {"left": "orders", "right": "customers", "selectivity": 1e-5},
    {"left": "orders", "right": "items", "selectivity": 6.7e-7}
  ]
}`

func TestReadCatalog(t *testing.T) {
	q, err := ReadCatalog(strings.NewReader(sampleCatalog))
	if err != nil {
		t.Fatal(err)
	}
	if q.NumRelations() != 3 || q.NumPredicates() != 2 {
		t.Fatalf("parsed %d relations, %d predicates", q.NumRelations(), q.NumPredicates())
	}
	if q.Relations[0].Name != "orders" || q.Relations[0].Card != 1500000 {
		t.Fatalf("relation 0: %+v", q.Relations[0])
	}
	if q.Predicates[1].R1 != 0 || q.Predicates[1].R2 != 2 {
		t.Fatalf("predicate 1: %+v", q.Predicates[1])
	}
}

func TestReadCatalogErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":         `{`,
		"unknown field":    `{"relations": [{"name": "a", "cardinality": 10, "rows": 5}]}`,
		"missing name":     `{"relations": [{"cardinality": 10}, {"name": "b", "cardinality": 10}]}`,
		"duplicate name":   `{"relations": [{"name": "a", "cardinality": 10}, {"name": "a", "cardinality": 10}]}`,
		"unknown left":     `{"relations": [{"name": "a", "cardinality": 10}, {"name": "b", "cardinality": 10}], "predicates": [{"left": "x", "right": "b", "selectivity": 0.5}]}`,
		"unknown right":    `{"relations": [{"name": "a", "cardinality": 10}, {"name": "b", "cardinality": 10}], "predicates": [{"left": "a", "right": "x", "selectivity": 0.5}]}`,
		"invalid sel":      `{"relations": [{"name": "a", "cardinality": 10}, {"name": "b", "cardinality": 10}], "predicates": [{"left": "a", "right": "b", "selectivity": 2}]}`,
		"zero cardinality": `{"relations": [{"name": "a", "cardinality": 0}, {"name": "b", "cardinality": 10}]}`,
		"single relation":  `{"relations": [{"name": "a", "cardinality": 10}]}`,
	}
	for name, doc := range cases {
		if _, err := ReadCatalog(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	q, err := ReadCatalog(strings.NewReader(sampleCatalog))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.WriteCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	q2, err := ReadCatalog(&buf)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
	}
	if q2.NumRelations() != q.NumRelations() || q2.NumPredicates() != q.NumPredicates() {
		t.Fatal("round trip changed structure")
	}
	for i := range q.Relations {
		if q2.Relations[i] != q.Relations[i] {
			t.Fatalf("relation %d changed: %+v vs %+v", i, q2.Relations[i], q.Relations[i])
		}
	}
}

func TestWriteCatalogNamesAnonymous(t *testing.T) {
	q := &Query{Relations: []Relation{{Card: 10}, {Card: 20}}}
	var buf bytes.Buffer
	if err := q.WriteCatalog(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"R0"`) || !strings.Contains(buf.String(), `"R1"`) {
		t.Fatalf("anonymous relations not named: %s", buf.String())
	}
}
