package join

import (
	"encoding/json"
	"fmt"
	"io"
)

// catalogJSON is the on-disk format for user-supplied query instances:
//
//	{
//	  "relations": [
//	    {"name": "orders", "cardinality": 1500000},
//	    {"name": "customers", "cardinality": 100000}
//	  ],
//	  "predicates": [
//	    {"left": "orders", "right": "customers", "selectivity": 1e-5}
//	  ]
//	}
type catalogJSON struct {
	Relations  []catalogRelation  `json:"relations"`
	Predicates []catalogPredicate `json:"predicates,omitempty"`
}

type catalogRelation struct {
	Name        string  `json:"name"`
	Cardinality float64 `json:"cardinality"`
}

type catalogPredicate struct {
	Left        string  `json:"left"`
	Right       string  `json:"right"`
	Selectivity float64 `json:"selectivity"`
}

// ReadCatalog parses a query instance from its JSON catalog form,
// resolving predicate endpoints by relation name, and validates it.
func ReadCatalog(r io.Reader) (*Query, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var cat catalogJSON
	if err := dec.Decode(&cat); err != nil {
		return nil, fmt.Errorf("join: parsing catalog: %w", err)
	}
	q := &Query{}
	byName := make(map[string]int, len(cat.Relations))
	for i, rel := range cat.Relations {
		if rel.Name == "" {
			return nil, fmt.Errorf("join: relation %d has no name", i)
		}
		if _, dup := byName[rel.Name]; dup {
			return nil, fmt.Errorf("join: duplicate relation name %q", rel.Name)
		}
		byName[rel.Name] = i
		q.Relations = append(q.Relations, Relation{Name: rel.Name, Card: rel.Cardinality})
	}
	for i, p := range cat.Predicates {
		l, ok := byName[p.Left]
		if !ok {
			return nil, fmt.Errorf("join: predicate %d references unknown relation %q", i, p.Left)
		}
		r2, ok := byName[p.Right]
		if !ok {
			return nil, fmt.Errorf("join: predicate %d references unknown relation %q", i, p.Right)
		}
		q.Predicates = append(q.Predicates, Predicate{R1: l, R2: r2, Sel: p.Selectivity})
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// WriteCatalog serialises the query in the JSON catalog form. Relations
// without names receive positional names (R0, R1, ...).
func (q *Query) WriteCatalog(w io.Writer) error {
	cat := catalogJSON{}
	name := func(t int) string {
		if n := q.Relations[t].Name; n != "" {
			return n
		}
		return fmt.Sprintf("R%d", t)
	}
	for t, rel := range q.Relations {
		cat.Relations = append(cat.Relations, catalogRelation{Name: name(t), Cardinality: rel.Card})
	}
	for _, p := range q.Predicates {
		cat.Predicates = append(cat.Predicates, catalogPredicate{
			Left: name(p.R1), Right: name(p.R2), Selectivity: p.Sel,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cat)
}
