// Package classical provides classical join-ordering baselines: exact
// optimisation by dynamic programming over relation subsets (left-deep
// trees with cross products), exhaustive enumeration for cross-checking,
// and a greedy heuristic. The exact optimum serves as ground truth for the
// valid/optimal statistics reported for the quantum backends (the paper's
// Tables 2 and 3), mirroring the role of the classical MILP solver in the
// original study.
package classical

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"quantumjoin/internal/join"
)

// MaxDPRelations bounds the DP solver; beyond this the 2^T table does not
// fit in memory on commodity machines.
const MaxDPRelations = 26

// Result is an optimised join order with its C_out cost.
type Result struct {
	Order join.Order
	Cost  float64
}

// Optimal computes the cheapest left-deep join order (cross products
// allowed) by dynamic programming over subsets: dp[S] is the cheapest cost
// of any left-deep tree joining exactly the relations in S, and because
// C_out charges each intermediate result cardinality exactly once,
// dp[S] = min over r in S of dp[S \ {r}] + card(S).
func Optimal(q *join.Query) (Result, error) {
	return OptimalContext(context.Background(), q)
}

// dpPollMask gates the context check in OptimalContext to once every 8192
// subsets, keeping the poll off the inner loop's hot path.
const dpPollMask = 8192 - 1

// OptimalContext is Optimal with cancellation: the subset sweep polls the
// context periodically, so a request deadline interrupts the table fill on
// instances where 2^T iterations take longer than the caller can wait.
func OptimalContext(ctx context.Context, q *join.Query) (Result, error) {
	n := q.NumRelations()
	if n < 2 {
		return Result{}, fmt.Errorf("classical: need at least two relations, got %d", n)
	}
	if n > MaxDPRelations {
		return Result{}, fmt.Errorf("classical: %d relations exceeds DP limit %d", n, MaxDPRelations)
	}
	size := uint64(1) << uint(n)
	dp := make([]float64, size)
	last := make([]int8, size)
	for s := uint64(1); s < size; s++ {
		if s&dpPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, fmt.Errorf("classical: DP interrupted after %d of %d subsets: %w", s, size, err)
			}
		}
		if bits.OnesCount64(s) == 1 { // singleton
			dp[s] = 0
			last[s] = -1
			continue
		}
		dp[s] = math.Inf(1)
		card := q.SetCard(s)
		for r := 0; r < n; r++ {
			if s&(1<<uint(r)) == 0 {
				continue
			}
			prev := s &^ (1 << uint(r))
			if bits.OnesCount64(prev) == 0 {
				continue
			}
			c := dp[prev] + card
			if c < dp[s] {
				dp[s] = c
				last[s] = int8(r)
			}
		}
	}
	full := size - 1
	order := make(join.Order, n)
	s := full
	for i := n - 1; i >= 1; i-- {
		r := int(last[s])
		order[i] = r
		s &^= 1 << uint(r)
	}
	// The remaining singleton is the first relation.
	order[0] = bits.TrailingZeros64(s)
	return Result{Order: order, Cost: dp[full]}, nil
}

// OptimalCost is a convenience wrapper returning only the optimal cost.
func OptimalCost(q *join.Query) (float64, error) {
	r, err := Optimal(q)
	if err != nil {
		return 0, err
	}
	return r.Cost, nil
}

// MaxExhaustiveRelations bounds Exhaustive; n! permutations beyond ~10
// relations are impractical.
const MaxExhaustiveRelations = 10

// Exhaustive enumerates every permutation and returns the cheapest order.
// Intended for validating Optimal in tests and for tiny instances.
func Exhaustive(q *join.Query) (Result, error) {
	n := q.NumRelations()
	if n < 2 {
		return Result{}, fmt.Errorf("classical: need at least two relations, got %d", n)
	}
	if n > MaxExhaustiveRelations {
		return Result{}, fmt.Errorf("classical: %d relations exceeds exhaustive limit %d", n, MaxExhaustiveRelations)
	}
	perm := make(join.Order, n)
	for i := range perm {
		perm[i] = i
	}
	best := Result{Cost: math.Inf(1)}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			if c := q.Cost(perm); c < best.Cost {
				best.Cost = c
				best.Order = append(join.Order(nil), perm...)
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	return best, nil
}

// Greedy builds an order by repeatedly appending the relation that
// minimises the next intermediate result cardinality (min-selectivity
// greedy). It is a fast non-optimal baseline.
func Greedy(q *join.Query) Result {
	n := q.NumRelations()
	order := make(join.Order, 0, n)
	var mask uint64
	// Start with the pair producing the smallest first intermediate.
	bestI, bestJ, bestCard := -1, -1, math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// bestI == -1 guards degenerate cost arithmetic (all
			// candidates Inf): some pair must be picked regardless.
			if c := q.SetCard(1<<uint(i) | 1<<uint(j)); bestI == -1 || c < bestCard {
				bestI, bestJ, bestCard = i, j, c
			}
		}
	}
	order = append(order, bestI, bestJ)
	mask = 1<<uint(bestI) | 1<<uint(bestJ)
	cost := bestCard
	for len(order) < n {
		bestT, bestC := -1, math.Inf(1)
		for t := 0; t < n; t++ {
			if mask&(1<<uint(t)) != 0 {
				continue
			}
			if c := q.SetCard(mask | 1<<uint(t)); bestT == -1 || c < bestC {
				bestT, bestC = t, c
			}
		}
		order = append(order, bestT)
		mask |= 1 << uint(bestT)
		cost += bestC
	}
	return Result{Order: order, Cost: cost}
}

// IsOptimal reports whether the cost equals the optimal cost within a
// relative tolerance of 1e-9 (costs are derived from the same float
// arithmetic, so exact up to rounding).
func IsOptimal(q *join.Query, cost float64) (bool, error) {
	opt, err := OptimalCost(q)
	if err != nil {
		return false, err
	}
	return cost <= opt*(1+1e-9)+1e-12, nil
}
