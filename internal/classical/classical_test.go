package classical

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/join"
)

func paperQuery() *join.Query {
	return &join.Query{
		Relations: []join.Relation{
			{Name: "R", Card: 100}, {Name: "S", Card: 100}, {Name: "T", Card: 100},
		},
		Predicates: []join.Predicate{{R1: 0, R2: 1, Sel: 0.1}},
	}
}

func randomQuery(rng *rand.Rand, n int) *join.Query {
	q := &join.Query{}
	for i := 0; i < n; i++ {
		q.Relations = append(q.Relations, join.Relation{Card: math.Pow(10, 1+rng.Float64()*3)})
	}
	for i := 1; i < n; i++ {
		q.Predicates = append(q.Predicates, join.Predicate{
			R1: rng.Intn(i), R2: i, Sel: math.Pow(10, -rng.Float64()*2),
		})
	}
	return q
}

func TestOptimalPaperExample(t *testing.T) {
	r, err := Optimal(paperQuery())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Cost-101000) > 1e-6 {
		t.Fatalf("optimal cost = %v, want 101000", r.Cost)
	}
	// The optimum must start with {R, S} in either order, then T.
	if r.Order[2] != 2 {
		t.Fatalf("optimal order = %v, want T last", r.Order)
	}
}

func TestOptimalMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		q := randomQuery(rng, n)
		opt, err := Optimal(q)
		if err != nil {
			t.Fatal(err)
		}
		exh, err := Exhaustive(q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(opt.Cost-exh.Cost) > 1e-6*exh.Cost {
			t.Fatalf("n=%d: DP cost %v != exhaustive cost %v", n, opt.Cost, exh.Cost)
		}
		if got := q.Cost(opt.Order); math.Abs(got-opt.Cost) > 1e-6*opt.Cost {
			t.Fatalf("DP order %v costs %v, reported %v", opt.Order, got, opt.Cost)
		}
	}
}

func TestGreedyIsValidAndNotBetterThanOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		q := randomQuery(rng, 3+rng.Intn(8))
		g := Greedy(q)
		if !g.Order.IsPermutation(q.NumRelations()) {
			t.Fatalf("greedy order %v not a permutation", g.Order)
		}
		if got := q.Cost(g.Order); math.Abs(got-g.Cost) > 1e-6*got {
			t.Fatalf("greedy cost mismatch: %v vs %v", got, g.Cost)
		}
		opt, err := OptimalCost(q)
		if err != nil {
			t.Fatal(err)
		}
		if g.Cost < opt*(1-1e-9) {
			t.Fatalf("greedy %v beat optimal %v", g.Cost, opt)
		}
	}
}

func TestIsOptimal(t *testing.T) {
	q := paperQuery()
	ok, err := IsOptimal(q, 101000)
	if err != nil || !ok {
		t.Fatalf("IsOptimal(101000) = %v, %v", ok, err)
	}
	ok, err = IsOptimal(q, 110000)
	if err != nil || ok {
		t.Fatalf("IsOptimal(110000) = %v, %v", ok, err)
	}
}

func TestErrorsOnDegenerateInput(t *testing.T) {
	q := &join.Query{Relations: []join.Relation{{Card: 10}}}
	if _, err := Optimal(q); err == nil {
		t.Error("Optimal accepted single relation")
	}
	if _, err := Exhaustive(q); err == nil {
		t.Error("Exhaustive accepted single relation")
	}
	big := randomQuery(rand.New(rand.NewSource(1)), MaxExhaustiveRelations+1)
	if _, err := Exhaustive(big); err == nil {
		t.Error("Exhaustive accepted oversized instance")
	}
}

func TestOptimalLargeInstance(t *testing.T) {
	q := randomQuery(rand.New(rand.NewSource(3)), 15)
	r, err := Optimal(q)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Order.IsPermutation(15) {
		t.Fatalf("order %v not a permutation", r.Order)
	}
	// Optimum can be no worse than greedy.
	if g := Greedy(q); r.Cost > g.Cost*(1+1e-9) {
		t.Fatalf("DP cost %v worse than greedy %v", r.Cost, g.Cost)
	}
}

func TestOptimalContextCancellation(t *testing.T) {
	q := randomQuery(rand.New(rand.NewSource(4)), 16)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := OptimalContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled DP returned %v, want context.Canceled", err)
	}

	// A live context must give the same answer as the plain entry point.
	got, err := OptimalContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Optimal(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost || !got.Order.IsPermutation(16) {
		t.Fatalf("OptimalContext = %+v, Optimal = %+v", got, want)
	}
}
