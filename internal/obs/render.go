package obs

import (
	"fmt"
	"io"

	"quantumjoin/internal/textplot"
)

// RenderFlame writes a flame-style text rendering of the trace: one bar
// per span on the trace's time axis, children indented under parents,
// with per-span durations, errors, and interesting attributes listed
// below the chart. This is what /debug/traces?format=flame serves.
func RenderFlame(w io.Writer, t TraceSnapshot, width int) {
	var rows []textplot.SpanBar
	collectBars(t.Root, 0, &rows)
	title := fmt.Sprintf("trace %s  %.3fms  (kept: %s)", t.TraceID, t.DurationMs, t.Kept)
	textplot.RenderSpans(w, title, rows, width)
	fmt.Fprintln(w)
	writeSpanDetails(w, t.Root, 0)
}

func collectBars(s SpanSnapshot, depth int, rows *[]textplot.SpanBar) {
	*rows = append(*rows, textplot.SpanBar{
		Label: s.Name,
		Depth: depth,
		Start: s.OffsetMs,
		End:   s.OffsetMs + s.DurationMs,
	})
	for _, c := range s.Children {
		collectBars(c, depth+1, rows)
	}
}

func writeSpanDetails(w io.Writer, s SpanSnapshot, depth int) {
	fmt.Fprintf(w, "%*s%s  %.3fms", 2*depth, "", s.Name, s.DurationMs)
	if s.Open {
		fmt.Fprint(w, "  [open]")
	}
	if s.Error != "" {
		fmt.Fprintf(w, "  error=%q", s.Error)
	}
	for _, k := range sortedKeys(s.Attrs) {
		fmt.Fprintf(w, "  %s=%v", k, s.Attrs[k])
	}
	if s.AllocBytes != 0 {
		fmt.Fprintf(w, "  alloc=%dB", s.AllocBytes)
	}
	if s.CPUMicros != 0 {
		fmt.Fprintf(w, "  cpu=%dµs", s.CPUMicros)
	}
	fmt.Fprintln(w)
	for _, c := range s.Children {
		writeSpanDetails(w, c, depth+1)
	}
}
