package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
	"time"
)

// idState is the request-ID generator state: a splitmix64 stream seeded
// once from the system entropy pool. Request IDs need process-lifetime
// uniqueness for log/trace correlation, not unpredictability, so the hot
// path is one atomic add and a finaliser instead of a crypto read per
// request (which showed up in the optimize-path profile).
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		// Entropy exhaustion is effectively impossible on Linux, but the
		// stream must never start at a fixed point across restarts.
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

// NewRequestID returns a 16-hex-char request ID. IDs are generated at
// the HTTP edge, echoed as X-Request-ID, and double as trace IDs.
func NewRequestID() string {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], x)
	var dst [16]byte
	hex.Encode(dst[:], b[:])
	return string(dst[:])
}

// WithRequestID attaches a request ID to ctx.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the request ID on ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// WithLogger attaches a logger to ctx for retrieval by Logger.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey, l)
}

// Logger returns the logger on ctx, or a discard logger — never nil, so
// instrumented code logs unconditionally and pays nothing when logging
// is not configured.
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return discardLogger
}

var discardLogger = slog.New(discardHandler{})

// discardHandler drops everything (slog.DiscardHandler needs go1.24; the
// module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// ctxHandler decorates a slog handler with the request ID carried by the
// log call's context, so every line emitted on a request path is
// joinable with its trace.
type ctxHandler struct{ inner slog.Handler }

func (h ctxHandler) Enabled(ctx context.Context, l slog.Level) bool {
	return h.inner.Enabled(ctx, l)
}

func (h ctxHandler) Handle(ctx context.Context, r slog.Record) error {
	if id := RequestID(ctx); id != "" {
		r = r.Clone()
		r.AddAttrs(slog.String("request_id", id))
	}
	return h.inner.Handle(ctx, r)
}

func (h ctxHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return ctxHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h ctxHandler) WithGroup(name string) slog.Handler {
	return ctxHandler{inner: h.inner.WithGroup(name)}
}

// NewLogger builds a structured logger writing to w. Level is one of
// debug, info, warn, error; format is text or json. Invalid values are
// an error (callers turn that into a usage error, not a silent default).
// The returned logger injects request_id from the context of each call.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(ctxHandler{inner: h}), nil
}
