package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledPathIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything")
	if s != nil {
		t.Fatalf("StartSpan on unarmed ctx returned a span")
	}
	if ctx2 != ctx {
		t.Fatalf("StartSpan on unarmed ctx changed the context")
	}
	// Every nil-span method must be safe.
	s.SetAttr("k", 1)
	s.End(errors.New("x"))
	s.End(nil)
	if s.Err() != nil || s.TraceID() != "" || s.OpenSpans() != 0 {
		t.Fatalf("nil span methods returned non-zero values")
	}
	var tr *Tracer
	if got := tr.Snapshots(); got != nil {
		t.Fatalf("nil tracer Snapshots = %v, want nil", got)
	}
	if _, ok := tr.Find("x"); ok {
		t.Fatalf("nil tracer Find reported a hit")
	}
}

func TestSpanTreeAndSnapshot(t *testing.T) {
	tr := NewTracer(Options{Seed: 1})
	ctx, root := tr.Start(context.Background(), "optimize")
	root.SetAttr("backend", "anneal")

	cctx, encode := StartSpan(ctx, "encode")
	_, milp := StartSpan(cctx, "encode.milp")
	milp.End(nil)
	encode.SetAttr("qubits", 42)
	encode.End(nil)

	_, solve := StartSpan(ctx, "solve")
	solve.End(errors.New("boom"))

	root.End(nil)

	snaps := tr.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("got %d traces, want 1", len(snaps))
	}
	trace := snaps[0]
	if trace.Kept != "error" {
		t.Fatalf("trace kept = %q, want error (child errored)", trace.Kept)
	}
	if trace.Root.Name != "optimize" || len(trace.Root.Children) != 2 {
		t.Fatalf("unexpected root shape: %+v", trace.Root)
	}
	enc := trace.Root.Children[0]
	if enc.Name != "encode" || enc.Attrs["qubits"] != 42 {
		t.Fatalf("unexpected encode span: %+v", enc)
	}
	if len(enc.Children) != 1 || enc.Children[0].Name != "encode.milp" {
		t.Fatalf("missing encode.milp child: %+v", enc)
	}
	if trace.Root.Children[1].Error != "boom" {
		t.Fatalf("solve error not recorded: %+v", trace.Root.Children[1])
	}
	if got, ok := tr.Find(trace.TraceID); !ok || got.TraceID != trace.TraceID {
		t.Fatalf("Find(%q) failed", trace.TraceID)
	}
	if _, ok := tr.Find("no-such-id"); ok {
		t.Fatalf("Find on unknown id reported a hit")
	}
}

func TestEndExactlyOnce(t *testing.T) {
	tr := NewTracer(Options{Seed: 1})
	_, root := tr.Start(context.Background(), "r")
	root.End(nil)
	root.End(errors.New("late"))
	if err := root.Err(); err != nil {
		t.Fatalf("second End overwrote error: %v", err)
	}
	if got := tr.Stats().Stored; got != 1 {
		t.Fatalf("stored = %d, want 1 (double End must not double-store)", got)
	}
}

func TestSamplingPolicy(t *testing.T) {
	// Rate 0-ish: healthy fast traces dropped, error traces always kept.
	tr := NewTracer(Options{SampleRate: 1e-12, SlowThreshold: time.Hour, Seed: 7})
	for i := 0; i < 50; i++ {
		_, s := tr.Start(context.Background(), "ok")
		s.End(nil)
	}
	if st := tr.Stats(); st.Stored != 0 || st.Dropped != 50 {
		t.Fatalf("healthy traces at ~0 rate: %+v, want all dropped", st)
	}
	_, s := tr.Start(context.Background(), "bad")
	s.End(errors.New("x"))
	if st := tr.Stats(); st.Stored != 1 {
		t.Fatalf("error trace was not kept: %+v", st)
	}
	if snaps := tr.Snapshots(); len(snaps) != 1 || snaps[0].Kept != "error" {
		t.Fatalf("kept reason wrong: %+v", snaps)
	}

	// Slow traces always kept even at ~0 rate.
	tr2 := NewTracer(Options{SampleRate: 1e-12, SlowThreshold: time.Nanosecond, Seed: 7})
	_, s2 := tr2.Start(context.Background(), "slow")
	time.Sleep(time.Millisecond)
	s2.End(nil)
	if snaps := tr2.Snapshots(); len(snaps) != 1 || snaps[0].Kept != "slow" {
		t.Fatalf("slow trace not kept: %+v", snaps)
	}

	// Rate 1: everything kept.
	tr3 := NewTracer(Options{SampleRate: 1, Seed: 7})
	for i := 0; i < 10; i++ {
		_, s := tr3.Start(context.Background(), "ok")
		s.End(nil)
	}
	if st := tr3.Stats(); st.Stored != 10 {
		t.Fatalf("rate-1 sampler dropped traces: %+v", st)
	}

	// Intermediate rates are roughly honoured (deterministic stream).
	tr4 := NewTracer(Options{SampleRate: 0.25, SlowThreshold: time.Hour, Seed: 3})
	for i := 0; i < 1000; i++ {
		_, s := tr4.Start(context.Background(), "ok")
		s.End(nil)
	}
	if st := tr4.Stats(); st.Stored < 150 || st.Stored > 350 {
		t.Fatalf("rate-0.25 sampler stored %d of 1000", st.Stored)
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := NewTracer(Options{Capacity: 4, Seed: 1})
	for i := 0; i < 10; i++ {
		_, s := tr.Start(context.Background(), fmt.Sprintf("t%d", i))
		s.End(nil)
	}
	snaps := tr.Snapshots()
	if len(snaps) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(snaps))
	}
	if snaps[0].Root.Name != "t9" || snaps[3].Root.Name != "t6" {
		t.Fatalf("ring order wrong: %s .. %s", snaps[0].Root.Name, snaps[3].Root.Name)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer(Options{Capacity: 128, Seed: 1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.Start(context.Background(), "root")
				var kids sync.WaitGroup
				for c := 0; c < 4; c++ {
					kids.Add(1)
					go func(c int) {
						defer kids.Done()
						_, s := StartSpan(ctx, "child")
						s.SetAttr("i", c)
						s.End(nil)
					}(c)
				}
				kids.Wait()
				root.End(nil)
				if n := root.OpenSpans(); n != 0 {
					t.Errorf("open spans after all ended: %d", n)
				}
			}
		}(g)
	}
	wg.Wait()
	for _, snap := range tr.Snapshots() {
		if len(snap.Root.Children) != 4 {
			t.Fatalf("trace lost children: %d", len(snap.Root.Children))
		}
	}
}

func TestLateEndingChildVisibleInStoredTrace(t *testing.T) {
	// A racer that ends after its root was stored (past the drain grace)
	// must still render closed once it ends — snapshots are read-time.
	tr := NewTracer(Options{Seed: 1})
	ctx, root := tr.Start(context.Background(), "root")
	_, straggler := StartSpan(ctx, "racer.slow")
	root.End(nil)

	snap := tr.Snapshots()[0]
	if len(snap.Root.Children) != 1 || !snap.Root.Children[0].Open {
		t.Fatalf("straggler should be open in first snapshot: %+v", snap.Root.Children)
	}
	straggler.End(nil)
	snap = tr.Snapshots()[0]
	if snap.Root.Children[0].Open {
		t.Fatalf("straggler still open after End")
	}
}

func TestRequestIDAndTraceID(t *testing.T) {
	id := NewRequestID()
	if len(id) != 16 {
		t.Fatalf("request id %q, want 16 hex chars", id)
	}
	if id2 := NewRequestID(); id2 == id {
		t.Fatalf("request ids collide: %q", id)
	}
	ctx := WithRequestID(context.Background(), "req-42")
	if RequestID(ctx) != "req-42" {
		t.Fatalf("request id not propagated")
	}
	tr := NewTracer(Options{Seed: 1})
	_, root := tr.Start(ctx, "root")
	if root.TraceID() != "req-42" {
		t.Fatalf("trace id = %q, want the request id", root.TraceID())
	}
	root.End(nil)
	if _, ok := tr.Find("req-42"); !ok {
		t.Fatalf("trace not findable by request id")
	}
}

func TestNewContextArming(t *testing.T) {
	tr := NewTracer(Options{Seed: 1})
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatalf("tracer not recoverable from armed ctx")
	}
	ctx2, root := StartSpan(ctx, "root")
	if root == nil {
		t.Fatalf("StartSpan on armed ctx did not open a root span")
	}
	if ActiveSpan(ctx2) != root {
		t.Fatalf("ActiveSpan mismatch")
	}
	root.End(nil)
	if tr.Stats().Stored != 1 {
		t.Fatalf("root span via armed ctx not stored")
	}
	if got := NewContext(context.Background(), nil); got != context.Background() {
		t.Fatalf("NewContext(nil) should return ctx unchanged")
	}
}

func TestSink(t *testing.T) {
	tr := NewTracer(Options{SampleRate: 1e-12, SlowThreshold: time.Hour, Seed: 1})
	var mu sync.Mutex
	var got []TraceSnapshot
	tr.SetSink(func(s TraceSnapshot) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	})
	_, s := tr.Start(context.Background(), "dropped")
	s.End(nil)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Root.Name != "dropped" {
		t.Fatalf("sink should see dropped traces too: %+v", got)
	}
}

func TestProfileDeltas(t *testing.T) {
	tr := NewTracer(Options{Profile: true, Seed: 1})
	_, root := tr.Start(context.Background(), "alloc")
	sink := make([]byte, 1<<20)
	_ = sink
	root.End(nil)
	snap := tr.Snapshots()[0]
	if snap.Root.AllocBytes < 1<<20 {
		t.Fatalf("alloc delta %d, want >= 1MiB", snap.Root.AllocBytes)
	}
}

func TestLogger(t *testing.T) {
	var buf strings.Builder
	l, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithRequestID(context.Background(), "rid-1")
	l.InfoContext(ctx, "hello", "k", "v")
	out := buf.String()
	if !strings.Contains(out, `"request_id":"rid-1"`) {
		t.Fatalf("request_id not injected: %s", out)
	}
	l.DebugContext(ctx, "dropped")
	if strings.Contains(buf.String(), "dropped") {
		t.Fatalf("debug line emitted at info level")
	}

	if _, err := NewLogger(&buf, "loud", "json"); err == nil {
		t.Fatalf("invalid level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatalf("invalid format accepted")
	}

	// Context logger helpers: default is a discard logger, never nil.
	if Logger(context.Background()) == nil {
		t.Fatalf("Logger returned nil")
	}
	ctx2 := WithLogger(context.Background(), l)
	if Logger(ctx2) != l {
		t.Fatalf("logger not propagated")
	}
}

func TestRenderFlame(t *testing.T) {
	tr := NewTracer(Options{Seed: 1})
	ctx, root := tr.Start(context.Background(), "optimize")
	_, enc := StartSpan(ctx, "encode")
	enc.SetAttr("qubits", 12)
	enc.End(nil)
	root.End(nil)

	var buf strings.Builder
	RenderFlame(&buf, tr.Snapshots()[0], 40)
	out := buf.String()
	for _, want := range []string{"optimize", "encode", "qubits=12", "█"} {
		if !strings.Contains(out, want) {
			t.Fatalf("flame rendering missing %q:\n%s", want, out)
		}
	}
}
