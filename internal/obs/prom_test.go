package obs

import (
	"math"
	"strings"
	"testing"
)

func TestPromWriterFormat(t *testing.T) {
	var buf strings.Builder
	p := NewPromWriter(&buf)
	p.Family("qjoind_requests_total", "Total requests.", "counter")
	p.Sample("qjoind_requests_total", map[string]string{"backend": "anneal"}, 17)
	p.Sample("qjoind_up", nil, 1)
	p.Sample("qjoind_weird", map[string]string{"v": "a\"b\\c\nd"}, math.Inf(1))
	p.Histogram("qjoind_latency_seconds", map[string]string{"backend": "dp"},
		[]float64{0.001, 0.01}, []int64{3, 2}, 1, 0.123)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP qjoind_requests_total Total requests.",
		"# TYPE qjoind_requests_total counter",
		`qjoind_requests_total{backend="anneal"} 17`,
		"qjoind_up 1",
		`qjoind_weird{v="a\"b\\c\nd"} +Inf`,
		`qjoind_latency_seconds_bucket{backend="dp",le="0.001"} 3`,
		`qjoind_latency_seconds_bucket{backend="dp",le="0.01"} 5`,
		`qjoind_latency_seconds_bucket{backend="dp",le="+Inf"} 6`,
		`qjoind_latency_seconds_sum{backend="dp"} 0.123`,
		`qjoind_latency_seconds_count{backend="dp"} 6`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPromLabelOrderDeterministic(t *testing.T) {
	var a, b strings.Builder
	NewPromWriter(&a).Sample("m", map[string]string{"z": "1", "a": "2", "m": "3"}, 1)
	NewPromWriter(&b).Sample("m", map[string]string{"m": "3", "a": "2", "z": "1"}, 1)
	if a.String() != b.String() {
		t.Fatalf("label order nondeterministic: %q vs %q", a.String(), b.String())
	}
	if !strings.HasPrefix(a.String(), `m{a="2",m="3",z="1"}`) {
		t.Fatalf("labels not sorted: %q", a.String())
	}
}
