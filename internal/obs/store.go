package obs

import "sync/atomic"

// ringStore is a lock-free bounded buffer of sampled root spans: writers
// claim a slot with one atomic add and store the root pointer; readers
// load each slot. Overwrites discard the oldest trace — the store is a
// flight recorder, not an archive. Snapshots of the span trees happen at
// read time (Span has its own fine-grained lock), so a trace stored while
// a straggler racer span was still open renders closed once that span
// ends.
type ringStore struct {
	slots []atomic.Pointer[Span]
	next  atomic.Uint64
}

func newRingStore(capacity int) *ringStore {
	return &ringStore{slots: make([]atomic.Pointer[Span], capacity)}
}

func (r *ringStore) add(root *Span) {
	i := (r.next.Add(1) - 1) % uint64(len(r.slots))
	r.slots[i].Store(root)
}

// all returns the stored roots, most recent first.
func (r *ringStore) all() []*Span {
	n := r.next.Load()
	out := make([]*Span, 0, len(r.slots))
	cap64 := uint64(len(r.slots))
	seen := make(map[*Span]bool, len(r.slots))
	// Walk backwards from the most recently claimed slot. Slots may lag
	// their claim (claim and store are two operations), so skip nils and
	// de-duplicate in case of wrap-around races.
	for k := uint64(0); k < cap64; k++ {
		i := (n - 1 - k + cap64*2) % cap64
		s := r.slots[i].Load()
		if s == nil || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}
