// Package obs is the observability layer of the solve pipeline: a
// context-propagated span tracer with a bounded lock-free trace store,
// structured logging on log/slog with request-ID propagation, Prometheus
// text-exposition helpers, and opt-in per-span allocation/CPU profiling.
//
// The paper's empirical story depends on knowing where time and qubits go
// — per-stage costs of the MILP → BILP → QUBO pipeline, transpilation
// depth, annealer/QAOA run time. The related work on real-time hybrid
// database optimisation frames classical-vs-quantum routing as a
// latency-budget question; this package makes those budgets measurable
// per request instead of guessed: a single trace answers "why did this
// query take 40 ms and which racer won".
//
// Design constraints:
//
//   - stdlib only — no external tracing or metrics dependency.
//   - The disabled path (no Tracer configured) must cost essentially
//     nothing: StartSpan on an unarmed context is one context lookup and
//     a nil return, and every *Span method is safe (and free) on nil.
//   - The enabled path is tail-sampled: the keep/drop decision is made
//     when the root span ends, so traces for errors and slow requests are
//     always kept regardless of the probabilistic sample rate.
package obs

import (
	"context"
	"sync/atomic"
	"time"
)

// ctxKey is the private context-key namespace of the package.
type ctxKey int

const (
	spanKey ctxKey = iota
	tracerKey
	requestIDKey
	loggerKey
)

// Default tuning values; see Options.
const (
	DefaultCapacity      = 64
	DefaultSlowThreshold = 100 * time.Millisecond
)

// Options tune a Tracer.
type Options struct {
	// Capacity bounds the trace ring buffer (default 64): the store keeps
	// the most recent Capacity sampled traces and overwrites the oldest.
	Capacity int
	// SampleRate is the probability of keeping a healthy, fast trace
	// (default 1 when exactly zero; set Disabled to drop everything).
	// Error traces and traces at/above SlowThreshold are always kept.
	SampleRate float64
	// SlowThreshold is the root-span duration at which a trace is always
	// kept regardless of SampleRate (default 100ms; negative disables the
	// slow override).
	SlowThreshold time.Duration
	// Profile records per-span heap-allocation and process-CPU deltas.
	// Both counters are process-wide, so attribution is approximate under
	// concurrency — a profiling aid, not an accounting ledger. Opt-in
	// because reading them costs two syscalls per span.
	Profile bool
	// Seed drives the deterministic probabilistic sampler.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Capacity <= 0 {
		o.Capacity = DefaultCapacity
	}
	if o.SampleRate == 0 {
		o.SampleRate = 1
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = DefaultSlowThreshold
	}
	return o
}

// Tracer creates and stores traces. All methods are safe for concurrent
// use and safe on a nil receiver (a nil *Tracer never traces).
type Tracer struct {
	opts  Options
	store *ringStore

	sampleState atomic.Uint64 // splitmix64 stream for the sampler

	started atomic.Int64
	stored  atomic.Int64
	dropped atomic.Int64

	// sink, when set (before traffic starts), receives a snapshot of every
	// finished root span, kept or not — the aggregation hook used by
	// cmd/experiments for per-stage timing breakdowns.
	sink func(TraceSnapshot)
}

// NewTracer builds a tracer with the given options.
func NewTracer(opts Options) *Tracer {
	opts = opts.withDefaults()
	t := &Tracer{opts: opts, store: newRingStore(opts.Capacity)}
	t.sampleState.Store(uint64(opts.Seed)*0x9e3779b97f4a7c15 + 0x243f6a8885a308d3)
	return t
}

// SetSink registers fn to receive every finished root trace. Call before
// the tracer sees traffic; fn must be safe for concurrent use.
func (t *Tracer) SetSink(fn func(TraceSnapshot)) { t.sink = fn }

// NewContext arms ctx with the tracer so that a later StartSpan (with no
// active parent span) opens a root span. A nil tracer returns ctx
// unchanged.
func NewContext(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the tracer armed on ctx, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// Start opens a span: a child of the active span when ctx carries one,
// otherwise a new root trace on the tracer (the receiver, or failing
// that, one armed on ctx via NewContext). With neither an active span nor
// a tracer it is a no-op returning (ctx, nil) — every method on the nil
// span is safe, so call sites never branch.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent, ok := ctx.Value(spanKey).(*Span); ok && parent != nil {
		return parent.startChild(ctx, name)
	}
	if t == nil {
		t = FromContext(ctx)
		if t == nil {
			return ctx, nil
		}
	}
	return t.startRoot(ctx, name)
}

// StartSpan opens a child of the active span on ctx, or a root span when
// ctx was armed with a tracer via NewContext; otherwise it is a no-op
// returning (ctx, nil). This is the call instrumented pipeline stages
// use: with no tracer in play it costs one context lookup.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return (*Tracer)(nil).Start(ctx, name)
}

// ActiveSpan returns the span ctx carries, or nil.
func ActiveSpan(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// startRoot opens a new root span; the trace ID is the request ID on ctx
// when present (so /debug/traces lookups by X-Request-ID work), a fresh
// ID otherwise.
func (t *Tracer) startRoot(ctx context.Context, name string) (context.Context, *Span) {
	id := RequestID(ctx)
	if id == "" {
		id = NewRequestID()
	}
	t.started.Add(1)
	sc := &spanCtx{Context: ctx}
	s := &sc.span
	s.tracer = t
	s.root = s
	s.traceID = id
	s.name = name
	s.isRoot = true
	s.start = time.Now()
	if t.opts.Profile {
		p := readProfCounters()
		s.prof = &p
	}
	return sc, s
}

// finish runs the tail-sampling policy on a finished root span.
func (t *Tracer) finish(root *Span) {
	keep, reason := t.keep(root)
	root.mu.Lock()
	root.keptReason = reason
	root.mu.Unlock()
	if keep {
		t.store.add(root)
		t.stored.Add(1)
	} else {
		t.dropped.Add(1)
	}
	if t.sink != nil {
		t.sink(root.Trace())
	}
}

// keep decides whether a finished root trace is stored: always for
// errors, always for slow traces, probabilistically otherwise. The root
// has ended (same goroutine), so endOff is stable to read unlocked.
func (t *Tracer) keep(root *Span) (bool, string) {
	if root.errored.Load() {
		return true, "error"
	}
	if t.opts.SlowThreshold >= 0 && root.endOff >= t.opts.SlowThreshold {
		return true, "slow"
	}
	if t.randFloat() < t.opts.SampleRate {
		return true, "sampled"
	}
	return false, ""
}

// randFloat draws from a lock-free deterministic splitmix64 stream.
func (t *Tracer) randFloat() float64 {
	x := t.sampleState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Snapshots returns the stored traces, most recent first. Traces holding
// still-open spans (stragglers past a race's drain grace) snapshot those
// spans with Open: true and their duration so far.
func (t *Tracer) Snapshots() []TraceSnapshot {
	if t == nil {
		return nil
	}
	roots := t.store.all()
	out := make([]TraceSnapshot, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.Trace())
	}
	return out
}

// Find returns the stored trace with the given trace/request ID.
func (t *Tracer) Find(traceID string) (TraceSnapshot, bool) {
	if t == nil {
		return TraceSnapshot{}, false
	}
	for _, r := range t.store.all() {
		if r.traceID == traceID {
			return r.Trace(), true
		}
	}
	return TraceSnapshot{}, false
}

// Stats reports the tracer's lifetime counters.
type Stats struct {
	Started int64 `json:"started"`
	Stored  int64 `json:"stored"`
	Dropped int64 `json:"dropped"`
}

// Stats returns the tracer's lifetime counters (zero on a nil tracer).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{
		Started: t.started.Load(),
		Stored:  t.stored.Load(),
		Dropped: t.dropped.Load(),
	}
}
