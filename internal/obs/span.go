package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation in a trace. Spans form a tree under a root
// span created by (*Tracer).Start; children are created by StartSpan on a
// context carrying the parent. All methods are safe for concurrent use
// and safe on a nil receiver, so instrumentation sites never branch on
// whether tracing is enabled.
type Span struct {
	tracer  *Tracer
	root    *Span // the trace's root span (self for roots)
	traceID string
	name    string
	isRoot  bool

	// start is the trace's wall-clock origin, set on the root only. Child
	// spans record startOff/endOff as monotonic offsets from it: reading
	// the monotonic clock (time.Since) is nearly half the cost of
	// time.Now on the hot path, and offsets are what snapshots report
	// anyway.
	start    time.Time
	startOff time.Duration

	// prof, non-nil only when the tracer profiles, holds the counters
	// sampled at span start; a pointer so unprofiled spans (the common
	// case) don't carry or zero the extra words.
	prof *profCounters

	// errored is set (on the root) by any span in the trace ending with a
	// non-nil error, so the tail sampler's error check is one atomic load
	// instead of a locked tree walk.
	errored atomic.Bool

	mu         sync.Mutex
	endOff     time.Duration
	ended      bool
	err        error
	attrs      []attrKV
	children   []*Span
	keptReason string

	allocBytes int64
	cpuMicros  int64

	// Inline backing for attrs and children: pipeline spans carry a
	// handful of each, so the common case costs zero extra allocations
	// (append falls back to the heap only past the inline capacity).
	attrsBuf [3]attrKV
	childBuf [4]*Span
}

// spanCtx is a context node and the span it carries, as one heap object:
// deriving a child context per span is half the tracing allocation cost,
// so the span is embedded in its own context.WithValue equivalent.
type spanCtx struct {
	context.Context // parent
	span            Span
}

func (c *spanCtx) Value(key any) any {
	if key == spanKey {
		return &c.span
	}
	return c.Context.Value(key)
}

// startChild opens a child span under s.
func (s *Span) startChild(ctx context.Context, name string) (context.Context, *Span) {
	if s == nil {
		return ctx, nil
	}
	sc := &spanCtx{Context: ctx}
	c := &sc.span
	c.tracer = s.tracer
	c.root = s.root
	c.traceID = s.traceID
	c.name = name
	c.startOff = time.Since(s.root.start)
	if s.tracer.opts.Profile {
		p := readProfCounters()
		c.prof = &p
	}
	s.mu.Lock()
	if s.children == nil {
		s.children = s.childBuf[:0]
	}
	s.children = append(s.children, c)
	s.mu.Unlock()
	return sc, c
}

// attrKV is one span attribute. Attributes live in a small slice rather
// than a map: spans carry a handful at most, and the linear scan is
// cheaper than a map allocation on the request hot path.
type attrKV struct {
	key string
	val any
}

// SetAttr records a key/value attribute on the span. Values should be
// JSON-encodable; later writes to the same key overwrite.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].key == key {
			s.attrs[i].val = v
			s.mu.Unlock()
			return
		}
	}
	if s.attrs == nil {
		s.attrs = s.attrsBuf[:0]
	}
	s.attrs = append(s.attrs, attrKV{key: key, val: v})
	s.mu.Unlock()
}

// SetAttrStr is SetAttr for string values with the interface boxing
// moved behind the nil check: when tracing is disabled (nil span) the
// call costs nothing, where SetAttr would heap-box its value at every
// call site regardless. Use on allocation-sensitive hot paths.
func (s *Span) SetAttrStr(key, v string) {
	if s == nil {
		return
	}
	s.SetAttr(key, v)
}

// SetAttrBool is SetAttrStr for bools.
func (s *Span) SetAttrBool(key string, v bool) {
	if s == nil {
		return
	}
	s.SetAttr(key, v)
}

// SetAttrInt is SetAttrStr for ints.
func (s *Span) SetAttrInt(key string, v int) {
	if s == nil {
		return
	}
	s.SetAttr(key, v)
}

// SetAttrFloat is SetAttrStr for float64s.
func (s *Span) SetAttrFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.SetAttr(key, v)
}

// End closes the span, recording err (nil for success). Exactly the
// first call wins; later calls are no-ops, so deferred Ends compose with
// explicit early Ends. Ending a root span runs the tracer's sampling
// policy and, when kept, publishes the trace to the store.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	off := time.Since(s.root.start)
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.endOff = off
	s.err = err
	if s.prof != nil {
		after := readProfCounters()
		s.allocBytes = int64(after.allocBytes - s.prof.allocBytes)
		s.cpuMicros = after.cpuMicros - s.prof.cpuMicros
	}
	s.mu.Unlock()
	if err != nil {
		s.root.errored.Store(true)
	}
	if s.isRoot {
		s.tracer.finish(s)
	}
}

// Err returns the error recorded at End (nil before End or on success).
func (s *Span) Err() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// TraceID returns the span's trace/request ID ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// duration is the span's wall time: end-start once ended, time-so-far
// while still open.
func (s *Span) duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	if s.ended {
		return s.endOff - s.startOff
	}
	return time.Since(s.root.start) - s.startOff
}

// TraceSnapshot is the immutable, JSON-ready view of one trace.
type TraceSnapshot struct {
	TraceID    string       `json:"trace_id"`
	Start      time.Time    `json:"start"`
	DurationMs float64      `json:"duration_ms"`
	Kept       string       `json:"kept,omitempty"` // error | slow | sampled
	Root       SpanSnapshot `json:"root"`
}

// SpanSnapshot is the immutable view of one span within a trace.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	OffsetMs   float64        `json:"offset_ms"` // from trace start
	DurationMs float64        `json:"duration_ms"`
	Open       bool           `json:"open,omitempty"` // still running at snapshot time
	Error      string         `json:"error,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	AllocBytes int64          `json:"alloc_bytes,omitempty"`
	CPUMicros  int64          `json:"cpu_micros,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Trace snapshots the whole tree under the (root) span. Snapshots are
// taken at read time, so a racer span that ended after its trace was
// stored appears closed here.
func (s *Span) Trace() TraceSnapshot {
	if s == nil {
		return TraceSnapshot{}
	}
	s.mu.Lock()
	reason := s.keptReason
	s.mu.Unlock()
	return TraceSnapshot{
		TraceID:    s.traceID,
		Start:      s.root.start,
		DurationMs: float64(s.duration()) / float64(time.Millisecond),
		Kept:       reason,
		Root:       s.snapshot(),
	}
}

// snapshot captures the span subtree; offsets are relative to the trace
// start.
func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:       s.name,
		OffsetMs:   float64(s.startOff) / float64(time.Millisecond),
		DurationMs: float64(s.durationLocked()) / float64(time.Millisecond),
		Open:       !s.ended,
		AllocBytes: s.allocBytes,
		CPUMicros:  s.cpuMicros,
	}
	if s.err != nil {
		snap.Error = s.err.Error()
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			snap.Attrs[a.key] = a.val
		}
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		snap.Children = append(snap.Children, c.snapshot())
	}
	return snap
}

// OpenSpans counts spans in the tree not yet ended — the leak check used
// by the cancellation tests.
func (s *Span) OpenSpans() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	n := 0
	if !s.ended {
		n = 1
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		n += c.OpenSpans()
	}
	return n
}
