//go:build linux

package obs

import "syscall"

// processCPUMicros returns the process's cumulative CPU time (user +
// system) in microseconds via getrusage.
func processCPUMicros() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Sec*1e6 + ru.Utime.Usec + ru.Stime.Sec*1e6 + ru.Stime.Usec
}
