package obs

import "runtime/metrics"

// profCounters is the process-wide counter pair sampled at span start
// and end when Options.Profile is on. Deltas are approximate under
// concurrency (both counters are process-global); they answer "is this
// stage allocation-heavy / CPU-bound" rather than attributing bytes
// exactly.
type profCounters struct {
	allocBytes uint64 // cumulative heap allocation
	cpuMicros  int64  // process CPU time (user+sys), 0 where unsupported
}

func readProfCounters() profCounters {
	sample := [1]metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}
	metrics.Read(sample[:])
	var alloc uint64
	if sample[0].Value.Kind() == metrics.KindUint64 {
		alloc = sample[0].Value.Uint64()
	}
	return profCounters{allocBytes: alloc, cpuMicros: processCPUMicros()}
}
