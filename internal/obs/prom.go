package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter emits Prometheus text exposition format 0.0.4: HELP/TYPE
// headers, label escaping, +Inf bucket bounds. It is a formatting
// helper, not a metrics registry — callers (internal/service) walk their
// own counters and write families in one pass per scrape.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w. Write errors are latched; check Err once done.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family writes the # HELP and # TYPE headers for a metric family.
// typ is counter, gauge, histogram, or summary.
func (p *PromWriter) Family(name, help, typ string) {
	p.printf("# HELP %s %s\n", name, escapeHelp(help))
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one sample line: name{labels} value. Labels are emitted
// in sorted key order so output is deterministic and testable.
func (p *PromWriter) Sample(name string, labels map[string]string, value float64) {
	p.printf("%s%s %s\n", name, formatLabels(labels), formatValue(value))
}

// Histogram writes a full cumulative histogram family for one label set:
// _bucket lines with cumulative counts per le bound (ending at +Inf),
// then _sum and _count. bounds and counts are parallel; counts[i] is the
// count in (bounds[i-1], bounds[i]], and overflow is the count above the
// last bound.
func (p *PromWriter) Histogram(name string, labels map[string]string, bounds []float64, counts []int64, overflow int64, sum float64) {
	cum := int64(0)
	for i, b := range bounds {
		cum += counts[i]
		p.printf("%s_bucket%s %d\n", name, formatLabels(withLE(labels, formatValue(b))), cum)
	}
	cum += overflow
	p.printf("%s_bucket%s %d\n", name, formatLabels(withLE(labels, "+Inf")), cum)
	p.printf("%s_sum%s %s\n", name, formatLabels(labels), formatValue(sum))
	p.printf("%s_count%s %d\n", name, formatLabels(labels), cum)
}

func withLE(labels map[string]string, le string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		out[k] = v
	}
	out["le"] = le
	return out
}

func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range sortedLabelKeys(labels) {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func sortedLabelKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedKeys sorts the keys of an attribute map (shared with render.go).
func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// escapeLabelValue escapes per the exposition format: backslash, quote,
// and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// escapeHelp escapes HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// formatValue renders a sample value; infinities use the +Inf/-Inf
// spelling the format requires.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
