//go:build !linux

package obs

// processCPUMicros has no portable stdlib implementation off Linux;
// span CPU deltas report zero there (wall time is always recorded).
func processCPUMicros() int64 { return 0 }
