package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderBoxplots(t *testing.T) {
	var buf bytes.Buffer
	rows := []Boxplot{
		{Label: "a", Min: 0, Q1: 2, Median: 5, Q3: 8, Max: 10},
		{Label: "longer-label", Min: 5, Q1: 6, Median: 7, Q3: 8, Max: 9},
	}
	RenderBoxplots(&buf, "depths", rows, 40)
	out := buf.String()
	if !strings.Contains(out, "depths") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "M") || !strings.Contains(out, "█") {
		t.Fatal("missing box glyphs")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 2 rows + axis
		t.Fatalf("got %d lines", len(lines))
	}
	// Labels aligned.
	if !strings.HasPrefix(lines[1], "a           ") {
		t.Fatalf("label misaligned: %q", lines[1])
	}
}

func TestRenderBoxplotsDegenerate(t *testing.T) {
	var buf bytes.Buffer
	RenderBoxplots(&buf, "t", []Boxplot{{Label: "x", Min: 3, Q1: 3, Median: 3, Q3: 3, Max: 3}}, 30)
	if !strings.Contains(buf.String(), "M") {
		t.Fatal("degenerate box not rendered")
	}
	// Empty input renders nothing and must not panic.
	var empty bytes.Buffer
	RenderBoxplots(&empty, "t", nil, 30)
	if empty.Len() != 0 {
		t.Fatal("empty input rendered output")
	}
}

func TestRenderLinesLinear(t *testing.T) {
	var buf bytes.Buffer
	s := []Series{
		{Label: "up", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
		{Label: "down", X: []float64{1, 2, 3, 4}, Y: []float64{4, 3, 2, 1}},
	}
	RenderLines(&buf, "curves", s, 40, 10, false)
	out := buf.String()
	if !strings.Contains(out, "curves") || !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatalf("missing parts:\n%s", out)
	}
	// Both marks present in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("marks missing")
	}
}

func TestRenderLinesLog(t *testing.T) {
	var buf bytes.Buffer
	s := []Series{{Label: "exp", X: []float64{1, 2, 3}, Y: []float64{10, 100, 1000}}}
	RenderLines(&buf, "log", s, 40, 8, true)
	out := buf.String()
	// Log axis labels show the raw values.
	if !strings.Contains(out, "1000") {
		t.Fatalf("log axis label missing:\n%s", out)
	}
	// Non-positive values are skipped, not crashed on.
	var buf2 bytes.Buffer
	RenderLines(&buf2, "log", []Series{{Label: "z", X: []float64{1, 2}, Y: []float64{0, 10}}}, 40, 8, true)
}

func TestRenderLinesEmpty(t *testing.T) {
	var buf bytes.Buffer
	RenderLines(&buf, "t", nil, 40, 8, false)
	if buf.Len() != 0 {
		t.Fatal("empty series rendered output")
	}
}
