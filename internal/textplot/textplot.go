// Package textplot renders the experiment harness's figures as plain-text
// charts, so cmd/experiments can emit actual figures (boxplots for
// Figure 2, scaling curves for Figures 3–5) next to the raw tables.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Boxplot is one row of a horizontal boxplot chart.
type Boxplot struct {
	Label                    string
	Min, Q1, Median, Q3, Max float64
}

// RenderBoxplots draws horizontal boxplots on a shared linear axis:
//
//	label |    ├──[██M██]──┤
func RenderBoxplots(w io.Writer, title string, rows []Boxplot, width int) {
	if width < 20 {
		width = 60
	}
	if len(rows) == 0 {
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, r := range rows {
		lo = math.Min(lo, r.Min)
		hi = math.Max(hi, r.Max)
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	span := hi - lo
	scale := func(v float64) int {
		p := int(float64(width-1) * (v - lo) / span)
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	fmt.Fprintln(w, title)
	for _, r := range rows {
		line := make([]rune, width)
		for i := range line {
			line[i] = ' '
		}
		for i := scale(r.Min); i <= scale(r.Max); i++ {
			line[i] = '─'
		}
		for i := scale(r.Q1); i <= scale(r.Q3); i++ {
			line[i] = '█'
		}
		line[scale(r.Min)] = '├'
		line[scale(r.Max)] = '┤'
		line[scale(r.Median)] = 'M'
		fmt.Fprintf(w, "%-*s │%s│\n", labelW, r.Label, string(line))
	}
	fmt.Fprintf(w, "%-*s  %-*.4g%*.4g\n", labelW, "", width/2, lo, width-width/2, hi)
}

// SpanBar is one row of a flame-style span chart: a labelled horizontal
// bar spanning [Start, End) on a shared time axis, indented by Depth.
type SpanBar struct {
	Label      string
	Depth      int
	Start, End float64
}

// RenderSpans draws a trace as a flame-style chart — one bar per span,
// children indented under their parent, all on the trace's time axis:
//
//	optimize        │██████████████████████████│
//	  encode        │██                        │
//	  solve         │   ███████████████████    │
//
// Rows are drawn in the order given (callers emit depth-first so the
// indentation reads as a tree).
func RenderSpans(w io.Writer, title string, rows []SpanBar, width int) {
	if width < 20 {
		width = 60
	}
	if len(rows) == 0 {
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, r := range rows {
		lo = math.Min(lo, r.Start)
		hi = math.Max(hi, r.End)
		if n := len(r.Label) + 2*r.Depth; n > labelW {
			labelW = n
		}
	}
	if hi <= lo {
		hi = lo + 1
	}
	span := hi - lo
	scale := func(v float64) int {
		p := int(float64(width) * (v - lo) / span)
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	fmt.Fprintln(w, title)
	for _, r := range rows {
		line := make([]rune, width)
		for i := range line {
			line[i] = ' '
		}
		for i := scale(r.Start); i <= scale(r.End); i++ {
			line[i] = '█'
		}
		label := strings.Repeat("  ", r.Depth) + r.Label
		fmt.Fprintf(w, "%-*s │%s│\n", labelW, label, string(line))
	}
	fmt.Fprintf(w, "%-*s  %-*.4g%*.4g\n", labelW, "", width/2, lo, width-width/2, hi)
}

// Series is one labelled curve for a line chart.
type Series struct {
	Label string
	X, Y  []float64
}

// RenderLines draws multiple series as a character-grid line chart; with
// logY the y axis is logarithmic (the paper's Figure 5 uses log scale).
func RenderLines(w io.Writer, title string, series []Series, width, height int, logY bool) {
	if width < 20 {
		width = 64
	}
	if height < 5 {
		height = 16
	}
	if len(series) == 0 {
		return
	}
	tr := func(y float64) float64 {
		if logY {
			if y <= 0 {
				return math.Inf(-1)
			}
			return math.Log10(y)
		}
		return y
	}
	xlo, xhi := math.Inf(1), math.Inf(-1)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xlo = math.Min(xlo, s.X[i])
			xhi = math.Max(xhi, s.X[i])
			ty := tr(s.Y[i])
			if !math.IsInf(ty, -1) {
				ylo = math.Min(ylo, ty)
				yhi = math.Max(yhi, ty)
			}
		}
	}
	if xhi <= xlo {
		xhi = xlo + 1
	}
	if yhi <= ylo {
		yhi = ylo + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	marks := []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			ty := tr(s.Y[i])
			if math.IsInf(ty, -1) {
				continue
			}
			col := int(float64(width-1) * (s.X[i] - xlo) / (xhi - xlo))
			row := height - 1 - int(float64(height-1)*(ty-ylo)/(yhi-ylo))
			if grid[row][col] != ' ' && grid[row][col] != mark {
				grid[row][col] = '▒' // overlap marker
			} else {
				grid[row][col] = mark
			}
		}
	}
	fmt.Fprintln(w, title)
	yLabel := func(frac float64) string {
		v := ylo + frac*(yhi-ylo)
		if logY {
			return fmt.Sprintf("%.4g", math.Pow(10, v))
		}
		return fmt.Sprintf("%.3g", v)
	}
	for r := 0; r < height; r++ {
		prefix := strings.Repeat(" ", 9)
		switch r {
		case 0:
			prefix = fmt.Sprintf("%8s ", yLabel(1))
		case height - 1:
			prefix = fmt.Sprintf("%8s ", yLabel(0))
		case height / 2:
			prefix = fmt.Sprintf("%8s ", yLabel(0.5))
		}
		fmt.Fprintf(w, "%s│%s\n", prefix, string(grid[r]))
	}
	fmt.Fprintf(w, "%9s└%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(w, "%10s%-*.4g%*.4g\n", "", width/2, xlo, width-width/2, xhi)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", marks[si%len(marks)], s.Label))
	}
	fmt.Fprintf(w, "%10s%s\n", "", strings.Join(legend, "   "))
}
