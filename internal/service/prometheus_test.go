package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"quantumjoin/internal/obs"
)

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePromText is a strict parser for the Prometheus text exposition
// format 0.0.4 — enough of it to fail the test on anything a real scraper
// would reject: malformed names, unquoted or unescaped label values,
// unparsable sample values, TYPE lines after samples of their family, or
// duplicate (name, labels) series.
func parsePromText(t *testing.T, body string) (samples []promSample, types map[string]string) {
	t.Helper()
	types = make(map[string]string)
	helps := make(map[string]string)
	seen := make(map[string]bool)
	sampled := make(map[string]bool) // family base name → sample emitted

	sc := bufio.NewScanner(strings.NewReader(body))
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(text, "# HELP "), " ", 2)
			if len(parts) != 2 || !promNameRe.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed HELP: %q", line, text)
			}
			helps[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(parts) != 2 || !promNameRe.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed TYPE: %q", line, text)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: invalid metric type %q", line, parts[1])
			}
			if sampled[parts[0]] {
				t.Fatalf("line %d: TYPE for %q after its samples", line, parts[0])
			}
			types[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // other comments are legal
		}
		s := parsePromSample(t, line, text)
		samples = append(samples, s)
		sampled[promFamilyOf(s.name)] = true
		key := s.name + labelKey(s.labels)
		if seen[key] {
			t.Fatalf("line %d: duplicate series %s", line, key)
		}
		seen[key] = true
		if _, ok := types[promFamilyOf(s.name)]; !ok {
			t.Errorf("line %d: sample %q has no TYPE", line, s.name)
		}
		if _, ok := helps[promFamilyOf(s.name)]; !ok {
			t.Errorf("line %d: sample %q has no HELP", line, s.name)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples, types
}

// promFamilyOf strips the histogram sample suffixes back to the family
// name declared by TYPE.
func promFamilyOf(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suffix); base != name {
			return base
		}
	}
	return name
}

func labelKey(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		parts = append(parts, k+"="+v)
	}
	// Order-insensitive key: good enough for duplicate detection here.
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			if parts[j] < parts[i] {
				parts[i], parts[j] = parts[j], parts[i]
			}
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func parsePromSample(t *testing.T, line int, text string) promSample {
	t.Helper()
	s := promSample{labels: make(map[string]string)}
	rest := text
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator: %q", line, text)
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if !promNameRe.MatchString(s.name) {
		t.Fatalf("line %d: invalid metric name %q", line, s.name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			t.Fatalf("line %d: unterminated label set: %q", line, text)
		}
		for _, pair := range splitLabelPairs(t, line, rest[1:end]) {
			eq := strings.Index(pair, "=")
			if eq < 0 {
				t.Fatalf("line %d: malformed label pair %q", line, pair)
			}
			k, quoted := pair[:eq], pair[eq+1:]
			if !promLabelRe.MatchString(k) {
				t.Fatalf("line %d: invalid label name %q", line, k)
			}
			if len(quoted) < 2 || quoted[0] != '"' || quoted[len(quoted)-1] != '"' {
				t.Fatalf("line %d: label value not quoted: %q", line, pair)
			}
			v, err := unescapePromLabel(quoted[1 : len(quoted)-1])
			if err != nil {
				t.Fatalf("line %d: bad escape in %q: %v", line, pair, err)
			}
			s.labels[k] = v
		}
		rest = rest[end+1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional timestamp
		t.Fatalf("line %d: expected value [timestamp], got %q", line, rest)
	}
	v, err := parsePromValue(fields[0])
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", line, fields[0], err)
	}
	s.value = v
	return s
}

// splitLabelPairs splits k="v",k2="v2" on commas outside quotes.
func splitLabelPairs(t *testing.T, line int, s string) []string {
	t.Helper()
	if s == "" {
		return nil
	}
	var pairs []string
	inQuote, escaped, start := false, false, 0
	for i, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\':
			escaped = true
		case r == '"':
			inQuote = !inQuote
		case r == ',' && !inQuote:
			pairs = append(pairs, s[start:i])
			start = i + 1
		}
	}
	if inQuote {
		t.Fatalf("line %d: unterminated quote in labels %q", line, s)
	}
	return append(pairs, s[start:])
}

func unescapePromLabel(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch s[i] {
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		case 'n':
			b.WriteByte('\n')
		default:
			return "", fmt.Errorf("unknown escape \\%c", s[i])
		}
	}
	return b.String(), nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// TestMetricsEndpointIsValidPrometheus drives real traffic through the
// service and asserts the /metrics output survives a strict parse of the
// text exposition format, with the families and invariants a scraper
// relies on: cumulative histogram buckets ending at +Inf, _count matching
// the +Inf bucket, and the core request counters present and consistent.
func TestMetricsEndpointIsValidPrometheus(t *testing.T) {
	svc, ts := newTestServer(t)
	_ = svc
	for i := 0; i < 3; i++ {
		resp, body := postOptimize(t, ts.URL, map[string]any{
			"backend": "dp", "query": json.RawMessage(pairCatalog),
			"seed": i, "timeout_ms": 30000,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("optimize: status %d: %s", resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, types := parsePromText(t, string(raw))

	byName := make(map[string][]promSample)
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}

	if got := byName["qjoind_requests_total"]; len(got) != 1 || got[0].value != 3 {
		t.Errorf("qjoind_requests_total = %+v, want single sample of 3", got)
	}
	if types["qjoind_requests_total"] != "counter" {
		t.Errorf("qjoind_requests_total TYPE = %q, want counter", types["qjoind_requests_total"])
	}
	if types["qjoind_backend_latency_seconds"] != "histogram" {
		t.Errorf("latency TYPE = %q, want histogram", types["qjoind_backend_latency_seconds"])
	}

	// Histogram invariants for the backend that served the traffic.
	var buckets []promSample
	for _, s := range byName["qjoind_backend_latency_seconds_bucket"] {
		if s.labels["backend"] == "dp" {
			buckets = append(buckets, s)
		}
	}
	if len(buckets) == 0 {
		t.Fatal("no latency buckets for backend dp")
	}
	last := buckets[len(buckets)-1]
	if last.labels["le"] != "+Inf" {
		t.Errorf("terminal bucket le = %q, want +Inf", last.labels["le"])
	}
	prev := -1.0
	prevLE := math.Inf(-1)
	for _, b := range buckets {
		le, err := parsePromValue(b.labels["le"])
		if err != nil {
			t.Fatalf("bad le %q: %v", b.labels["le"], err)
		}
		if le <= prevLE {
			t.Errorf("le bounds not increasing: %v after %v", le, prevLE)
		}
		if b.value < prev {
			t.Errorf("bucket counts not cumulative: %v (le=%v) after %v", b.value, le, prev)
		}
		prev, prevLE = b.value, le
	}
	var count float64
	for _, s := range byName["qjoind_backend_latency_seconds_count"] {
		if s.labels["backend"] == "dp" {
			count = s.value
		}
	}
	if count != last.value {
		t.Errorf("_count = %v, +Inf bucket = %v; must match", count, last.value)
	}
	if count != 3 {
		t.Errorf("_count = %v, want 3 observations", count)
	}
}

// TestMetricsIncludesTracerThroughput: with a tracer configured, /metrics
// carries the tracer counters too.
func TestMetricsIncludesTracerThroughput(t *testing.T) {
	reg := DefaultRegistry(RegistryConfig{PegasusM: 3, QAOAIterations: 2})
	tracer := obs.NewTracer(obs.Options{Capacity: 8, SampleRate: 1})
	svc := New(reg, Config{Workers: 2, DefaultBackend: "dp", Tracer: tracer})
	defer svc.Close(context.Background())

	if _, err := svc.Optimize(context.Background(), &Request{Query: pairQuery(), Backend: "dp"}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := svc.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	samples, _ := parsePromText(t, sb.String())
	found := false
	for _, s := range samples {
		if s.name == "qjoind_traces_started_total" {
			found = true
			if s.value < 1 {
				t.Errorf("qjoind_traces_started_total = %v, want >= 1", s.value)
			}
		}
	}
	if !found {
		t.Error("qjoind_traces_started_total missing with tracer configured")
	}
}
