package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrShutdown is returned by Pool.Run (and Service.Optimize) once graceful
// shutdown has begun.
var ErrShutdown = errors.New("service: shutting down")

// Pool is a bounded worker pool: a fixed number of workers consume a
// bounded job queue, so at most `workers` solves run concurrently and at
// most `queue` requests wait; everything beyond that blocks in Run until
// the caller's deadline expires. Shutdown stops admission, drains queued
// jobs, and waits for the workers to exit.
type Pool struct {
	jobs chan *poolJob
	quit chan struct{}
	wg   sync.WaitGroup

	mu   sync.RWMutex // guards shut; held (shared) across enqueue
	shut bool
}

type poolJob struct {
	ctx     context.Context
	run     func(context.Context)
	done    chan struct{}
	skipped bool // job expired in the queue and never ran
}

// NewPool starts a pool with the given worker count (default: GOMAXPROCS)
// and queue depth (default: 2× workers).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 2 * workers
	}
	p := &Pool{
		jobs: make(chan *poolJob, queue),
		quit: make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		// Prefer draining the queue; only exit when it is momentarily
		// empty AND shutdown has been requested. Admission stops before
		// quit closes, so the queue cannot grow behind an exiting worker.
		select {
		case j := <-p.jobs:
			j.handle()
		default:
			select {
			case j := <-p.jobs:
				j.handle()
			case <-p.quit:
				return
			}
		}
	}
}

func (j *poolJob) handle() {
	defer close(j.done)
	if j.ctx.Err() != nil {
		j.skipped = true
		return
	}
	j.run(j.ctx)
}

// Run enqueues f and blocks until it has finished (or was skipped because
// the context expired while queued). f must honour its context so that
// deadlines bound the wait here.
func (p *Pool) Run(ctx context.Context, f func(context.Context)) error {
	p.mu.RLock()
	if p.shut {
		p.mu.RUnlock()
		return ErrShutdown
	}
	j := &poolJob{ctx: ctx, run: f, done: make(chan struct{})}
	var enqueueErr error
	select {
	case p.jobs <- j:
	case <-ctx.Done():
		enqueueErr = fmt.Errorf("service: request expired before a worker was available: %w", ctx.Err())
	}
	p.mu.RUnlock()
	if enqueueErr != nil {
		return enqueueErr
	}
	<-j.done
	if j.skipped {
		return fmt.Errorf("service: request expired in queue: %w", j.ctx.Err())
	}
	return nil
}

// Shutdown stops admitting jobs, lets the workers drain the queue, and
// waits for them to exit; ctx bounds the wait. Safe to call repeatedly.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	first := !p.shut
	p.shut = true
	p.mu.Unlock()
	if first {
		close(p.quit)
	}
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: pool shutdown incomplete: %w", ctx.Err())
	}
}
