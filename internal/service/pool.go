package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrShutdown is returned by Pool.Run (and Service.Optimize) once graceful
// shutdown has begun.
var ErrShutdown = errors.New("service: shutting down")

// ErrUnavailable marks transient unavailability — queue saturation or an
// open circuit breaker. The HTTP layer maps it to 503 with a Retry-After
// header: the request was fine, the server just cannot take it right now.
var ErrUnavailable = errors.New("service: temporarily unavailable")

// ErrOverloaded is the load-shedding error: the worker pool's bounded
// queue is full and the service chose to reject rather than buffer.
var ErrOverloaded = fmt.Errorf("service: request queue saturated: %w", ErrUnavailable)

// ErrPanic marks a recovered panic in a worker or backend; the request
// that triggered it fails (or degrades), the daemon survives.
var ErrPanic = errors.New("service: recovered panic")

// Pool is a bounded worker pool: a fixed number of workers consume a
// bounded job queue, so at most `workers` solves run concurrently and at
// most `queue` requests wait; everything beyond that blocks in Run until
// the caller's deadline expires. Shutdown stops admission, drains queued
// jobs, and waits for the workers to exit.
type Pool struct {
	jobs chan *poolJob
	quit chan struct{}
	wg   sync.WaitGroup

	mu   sync.RWMutex // guards shut; held (shared) across enqueue
	shut bool
}

type poolJob struct {
	ctx      context.Context
	run      func(context.Context)
	done     chan struct{} // buffered(1); handle sends, enqueue receives
	skipped  bool          // job expired in the queue and never ran
	panicked any           // recovered panic value from run, nil when clean
}

// jobPool recycles poolJob shells (with their done channels) across
// requests. Safe because every enqueued job is handled exactly once —
// workers drain the queue before exiting — and the enqueuer always
// receives the completion signal before returning the job to the pool.
var jobPool = sync.Pool{
	New: func() any { return &poolJob{done: make(chan struct{}, 1)} },
}

// NewPool starts a pool with the given worker count (default: GOMAXPROCS)
// and queue depth (default: 2× workers).
func NewPool(workers, queue int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queue <= 0 {
		queue = 2 * workers
	}
	p := &Pool{
		jobs: make(chan *poolJob, queue),
		quit: make(chan struct{}),
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		// Prefer draining the queue; only exit when it is momentarily
		// empty AND shutdown has been requested. Admission stops before
		// quit closes, so the queue cannot grow behind an exiting worker.
		select {
		case j := <-p.jobs:
			j.handle()
		default:
			select {
			case j := <-p.jobs:
				j.handle()
			case <-p.quit:
				return
			}
		}
	}
}

func (j *poolJob) handle() {
	defer func() { j.done <- struct{}{} }()
	// A panicking job must not take its worker down with it: the pool is
	// fixed-size, so a lost worker is permanent capacity loss and enough
	// of them deadlocks the daemon. Recover, report, keep serving.
	defer func() {
		if r := recover(); r != nil {
			j.panicked = r
		}
	}()
	if j.ctx.Err() != nil {
		j.skipped = true
		return
	}
	j.run(j.ctx)
}

// Run enqueues f and blocks until it has finished (or was skipped because
// the context expired while queued). f must honour its context so that
// deadlines bound the wait here.
func (p *Pool) Run(ctx context.Context, f func(context.Context)) error {
	return p.enqueue(ctx, f, false)
}

// TryRun is Run with load shedding instead of backpressure: when the
// bounded queue is full it returns ErrOverloaded immediately rather than
// blocking the caller until its deadline. Under saturation this converts
// doomed slow requests into instant 503s the client can retry elsewhere —
// the admission-control half of the resilience story.
func (p *Pool) TryRun(ctx context.Context, f func(context.Context)) error {
	return p.enqueue(ctx, f, true)
}

func (p *Pool) enqueue(ctx context.Context, f func(context.Context), shed bool) error {
	p.mu.RLock()
	if p.shut {
		p.mu.RUnlock()
		return ErrShutdown
	}
	j := jobPool.Get().(*poolJob)
	j.ctx, j.run, j.skipped, j.panicked = ctx, f, false, nil
	var enqueueErr error
	enqueued := true
	if shed {
		select {
		case p.jobs <- j:
		default:
			enqueueErr = ErrOverloaded
			enqueued = false
		}
	} else {
		select {
		case p.jobs <- j:
		case <-ctx.Done():
			enqueueErr = fmt.Errorf("service: request expired before a worker was available: %w", ctx.Err())
			enqueued = false
		}
	}
	p.mu.RUnlock()
	if enqueueErr != nil {
		if !enqueued {
			j.ctx, j.run = nil, nil
			jobPool.Put(j)
		}
		return enqueueErr
	}
	<-j.done
	skipped, panicked := j.skipped, j.panicked
	ctxErr := j.ctx.Err()
	j.ctx, j.run, j.panicked = nil, nil, nil
	jobPool.Put(j)
	if skipped {
		return fmt.Errorf("service: request expired in queue: %w", ctxErr)
	}
	if panicked != nil {
		return fmt.Errorf("service: worker recovered panic: %v: %w", panicked, ErrPanic)
	}
	return nil
}

// Shutdown stops admitting jobs, lets the workers drain the queue, and
// waits for them to exit; ctx bounds the wait. Safe to call repeatedly.
func (p *Pool) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	first := !p.shut
	p.shut = true
	p.mu.Unlock()
	if first {
		close(p.quit)
	}
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: pool shutdown incomplete: %w", ctx.Err())
	}
}
