// Chaos tests live in an external test package: they wire internal/faults
// wrappers around service backends, and faults itself imports service.
package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/faults"
	"quantumjoin/internal/join"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// catalogBody is a 5-relation chain in the HTTP catalog schema.
const catalogBody = `{
  "relations": [
    {"name": "a", "cardinality": 100},
    {"name": "b", "cardinality": 2000},
    {"name": "c", "cardinality": 50},
    {"name": "d", "cardinality": 7000},
    {"name": "e", "cardinality": 300}
  ],
  "predicates": [
    {"left": "a", "right": "b", "selectivity": 0.01},
    {"left": "b", "right": "c", "selectivity": 0.05},
    {"left": "c", "right": "d", "selectivity": 0.002},
    {"left": "d", "right": "e", "selectivity": 0.1}
  ]
}`

// settleGoroutines polls until the goroutine count returns to (near) base.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutine leak: %d running, base was %d\n%s",
		runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

// resilientChaosService assembles the full production stack with a
// fault-injected dp backend: Inject → WithRetry → WithBreaker → pool with
// shedding → classical degradation.
func resilientChaosService(t *testing.T, faultRate float64, workers int) *service.Service {
	t.Helper()
	reg := service.NewRegistry()
	for _, b := range []service.Backend{service.NewDPBackend(), service.NewGreedyBackend()} {
		if err := reg.Register(b); err != nil {
			t.Fatal(err)
		}
	}
	svc := service.New(reg, service.Config{
		Workers:        workers,
		QueueDepth:     2 * workers,
		DefaultBackend: "dp",
		Shed:           true,
		Degrade:        true,
	})
	be, _ := reg.Get("dp")
	be = faults.Inject(be, faults.InjectorConfig{
		RejectProb:  faultRate / 3,
		AbortProb:   faultRate / 3,
		CorruptProb: faultRate / 3,
		Seed:        1,
		Metrics:     svc.Metrics(),
	})
	be = faults.WithRetry(be, faults.RetryPolicy{Seed: 1, Metrics: svc.Metrics()})
	be = faults.WithBreaker(be, faults.BreakerConfig{OpenFor: 50 * time.Millisecond})
	if err := reg.Replace(be); err != nil {
		t.Fatal(err)
	}
	return svc
}

// TestChaosHTTPAvailability is the acceptance-criteria chaos test: 200
// seeded requests through the full HTTP stack against a 30%-fault backend
// with 250ms deadlines must produce ≥ 99% HTTP 200s carrying structurally
// valid join orders; the remainder must be 503 load sheds — never a 500 —
// and no goroutines may leak. The fault schedule is a pure function of the
// injector seed and the request seeds, so the run is reproducible.
func TestChaosHTTPAvailability(t *testing.T) {
	base := runtime.NumGoroutine()
	svc := resilientChaosService(t, 0.30, 8)
	srv := httptest.NewServer(service.NewHandler(svc))
	client := srv.Client()

	const requests = 200
	const concurrency = 16
	type outcome struct {
		status int
		body   []byte
	}
	outcomes := make([]outcome, requests)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				body, err := json.Marshal(service.OptimizeRequest{
					Query:     json.RawMessage(catalogBody),
					Seed:      int64(i),
					TimeoutMs: 250,
				})
				if err != nil {
					t.Error(err)
					continue
				}
				resp, err := client.Post(srv.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("request %d: %v", i, err)
					continue
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				outcomes[i] = outcome{status: resp.StatusCode, body: data}
			}
		}()
	}
	for i := 0; i < requests; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	oks, sheds := 0, 0
	for i, o := range outcomes {
		switch o.status {
		case http.StatusOK:
			oks++
			var r service.OptimizeResponse
			if err := json.Unmarshal(o.body, &r); err != nil {
				t.Fatalf("request %d: undecodable 200 body: %v", i, err)
			}
			if !validOrder(r.Order, []string{"a", "b", "c", "d", "e"}) {
				t.Errorf("request %d: invalid join order %v", i, r.Order)
			}
		case http.StatusServiceUnavailable:
			sheds++
		default:
			t.Errorf("request %d: status %d (body %s), want 200 or 503", i, o.status, o.body)
		}
	}
	if oks < requests*99/100 {
		t.Errorf("availability %d/%d below 99%%", oks, requests)
	}
	t.Logf("chaos run: %d 200s, %d 503s", oks, sheds)

	srv.Close()
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)
}

// validOrder reports whether order is a permutation of want.
func validOrder(order, want []string) bool {
	if len(order) != len(want) {
		return false
	}
	seen := make(map[string]bool, len(want))
	for _, name := range want {
		seen[name] = false
	}
	for _, name := range order {
		used, known := seen[name]
		if !known || used {
			return false
		}
		seen[name] = true
	}
	return true
}

// slowBackend holds each solve for its delay (or the context, whichever
// ends first) — saturation fuel for the shedding test.
type slowBackend struct{ delay time.Duration }

func (s slowBackend) Name() string { return "slow" }

func (s slowBackend) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(s.delay):
	}
	order := make(join.Order, enc.Query.NumRelations())
	for i := range order {
		order[i] = i
	}
	return &core.Decoded{Valid: true, Order: order, Cost: enc.Query.Cost(order)}, nil
}

// TestConcurrentLoadShedding: with one worker, a one-slot queue, and a
// burst of concurrent requests, the service must shed the overflow as 503
// + Retry-After immediately — never block callers to their deadlines, and
// never return any other failure mode.
func TestConcurrentLoadShedding(t *testing.T) {
	base := runtime.NumGoroutine()
	reg := service.NewRegistry()
	if err := reg.Register(slowBackend{delay: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	svc := service.New(reg, service.Config{
		Workers:        1,
		QueueDepth:     1,
		DefaultBackend: "slow",
		Shed:           true,
		Degrade:        true,
	})
	srv := httptest.NewServer(service.NewHandler(svc))
	client := srv.Client()

	const burst = 20
	statuses := make([]int, burst)
	retryAfter := make([]string, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(service.OptimizeRequest{
				Query:     json.RawMessage(catalogBody),
				Seed:      int64(i),
				TimeoutMs: 2000,
			})
			resp, err := client.Post(srv.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	oks, sheds := 0, 0
	for i, s := range statuses {
		switch s {
		case http.StatusOK:
			oks++
		case http.StatusServiceUnavailable:
			sheds++
			if retryAfter[i] == "" {
				t.Errorf("request %d: 503 without Retry-After", i)
			}
		default:
			t.Errorf("request %d: status %d, want 200 or 503", i, s)
		}
	}
	if oks == 0 {
		t.Error("burst produced no successes")
	}
	if sheds == 0 {
		t.Error("20-deep burst on a 1-worker/1-slot pool shed nothing")
	}
	snap := svc.MetricsSnapshot()
	if snap.Requests.Shed != int64(sheds) {
		t.Errorf("shed counter = %d, HTTP 503s = %d", snap.Requests.Shed, sheds)
	}

	srv.Close()
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)
}

// TestChaos503sCarryResolvableTraceIDs: under shed-heavy load with an
// all-but-zero sample rate, every 503 must come back with an X-Request-ID
// that resolves to a stored trace at /debug/traces?id= — load sheds end
// the root span with an error, and errored traces bypass probabilistic
// sampling. This is the operator's contract: any failed request in hand
// can be explained after the fact.
func TestChaos503sCarryResolvableTraceIDs(t *testing.T) {
	base := runtime.NumGoroutine()
	reg := service.NewRegistry()
	if err := reg.Register(slowBackend{delay: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	// SampleRate ~0: only the always-on policy (errors, slow requests)
	// stores anything, so a resolvable 503 proves the error path, not luck.
	tracer := obs.NewTracer(obs.Options{Capacity: 64, SampleRate: 1e-9})
	svc := service.New(reg, service.Config{
		Workers:        1,
		QueueDepth:     1,
		DefaultBackend: "slow",
		Shed:           true,
		Tracer:         tracer,
	})
	srv := httptest.NewServer(service.NewHandler(svc))
	client := srv.Client()

	const burst = 20
	type shed struct {
		id   string
		body string
	}
	results := make([]shed, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(service.OptimizeRequest{
				Query:     json.RawMessage(catalogBody),
				Seed:      int64(i),
				TimeoutMs: 2000,
			})
			resp, err := client.Post(srv.URL+"/v1/optimize", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				results[i] = shed{id: resp.Header.Get("X-Request-ID"), body: string(raw)}
			}
		}(i)
	}
	wg.Wait()

	sheds := 0
	for i, r := range results {
		if r.id == "" && r.body == "" {
			continue // not a 503
		}
		sheds++
		if r.id == "" {
			t.Errorf("request %d: 503 without X-Request-ID", i)
			continue
		}
		// The error body repeats the ID so log lines and responses join up.
		var e struct {
			RequestID string `json:"request_id"`
		}
		if err := json.Unmarshal([]byte(r.body), &e); err != nil || e.RequestID != r.id {
			t.Errorf("request %d: 503 body %q does not carry request_id %q", i, r.body, r.id)
		}
		resp, err := client.Get(srv.URL + "/debug/traces?id=" + r.id)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("request %d: 503 id %q does not resolve to a trace (status %d)", i, r.id, resp.StatusCode)
			continue
		}
		var payload struct {
			Traces []obs.TraceSnapshot `json:"traces"`
		}
		if err := json.Unmarshal(raw, &payload); err != nil || len(payload.Traces) != 1 {
			t.Errorf("request %d: bad trace payload for id %q: %v", i, r.id, err)
			continue
		}
		if got := payload.Traces[0]; got.TraceID != r.id || got.Kept != "error" {
			t.Errorf("request %d: trace %q kept=%q, want the shed stored as an error trace", i, got.TraceID, got.Kept)
		}
	}
	if sheds == 0 {
		t.Fatal("burst produced no 503s; the test needs sheds to assert on")
	}

	srv.Close()
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)
}

// panicBackend panics on every solve.
type panicBackend struct{}

func (panicBackend) Name() string { return "panic" }

func (panicBackend) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	panic("backend exploded")
}

// TestPanickingBackendDegradesNotCrashes: a panicking backend costs its
// request nothing but quality — the daemon survives, the response comes
// from the classical fallback with degraded: true, and the panic and
// degradation are both counted.
func TestPanickingBackendDegradesNotCrashes(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.Register(panicBackend{}); err != nil {
		t.Fatal(err)
	}
	svc := service.New(reg, service.Config{Workers: 2, DefaultBackend: "panic", Degrade: true})
	defer svc.Close(context.Background())
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := srv.Client().Post(srv.URL+"/v1/optimize", "application/json",
			bytes.NewReader(fmt.Appendf(nil, `{"query": %s, "seed": %d}`, catalogBody, i)))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (body %s), want 200 via degradation", i, resp.StatusCode, data)
		}
		var r service.OptimizeResponse
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		if !r.Degraded || r.DegradedReason == "" {
			t.Errorf("request %d: response not marked degraded: %+v", i, r)
		}
		if !validOrder(r.Order, []string{"a", "b", "c", "d", "e"}) {
			t.Errorf("request %d: invalid degraded order %v", i, r.Order)
		}
	}
	snap := svc.MetricsSnapshot()
	if snap.Requests.Panics == 0 || snap.Requests.Degraded == 0 {
		t.Errorf("panic/degrade counters = %d/%d, want both > 0",
			snap.Requests.Panics, snap.Requests.Degraded)
	}
	// The fallback producer records degraded outcomes, never arbitration
	// wins — a degradation must not look like a win in its statistics.
	var degraded, wins int64
	for name, bs := range snap.Backends {
		if name == "panic" {
			continue
		}
		degraded += bs.Degraded
		wins += bs.Wins
	}
	if degraded != 3 {
		t.Errorf("fallback degraded outcomes = %d, want 3", degraded)
	}
	if wins != 0 {
		t.Errorf("fallback wins = %d, want 0 — degradations are not wins", wins)
	}
}

// TestPanickingBackendWithoutDegradeIs500NotCrash: with degradation off,
// the panic still must not kill the daemon — the request fails cleanly and
// the next one is served.
func TestPanickingBackendWithoutDegradeIs500NotCrash(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.Register(panicBackend{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(service.NewGreedyBackend()); err != nil {
		t.Fatal(err)
	}
	svc := service.New(reg, service.Config{Workers: 1, DefaultBackend: "panic"})
	defer svc.Close(context.Background())

	q, err := join.ReadCatalog(bytes.NewReader([]byte(catalogBody)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Optimize(context.Background(), &service.Request{Query: q}); err == nil {
		t.Fatal("panicking backend reported success with degradation off")
	}
	// The pool worker survived: a follow-up request on another backend
	// still runs.
	if _, err := svc.Optimize(context.Background(), &service.Request{Query: q, Backend: "greedy"}); err != nil {
		t.Fatalf("daemon did not survive the panic: %v", err)
	}
}

// TestBreakerSurfacesInHealthAndMetrics: trip the dp breaker through real
// traffic and watch it appear on /healthz and /metrics like an operator
// would.
func TestBreakerSurfacesInHealthAndMetrics(t *testing.T) {
	reg := service.NewRegistry()
	if err := reg.Register(service.NewDPBackend()); err != nil {
		t.Fatal(err)
	}
	svc := service.New(reg, service.Config{Workers: 2, DefaultBackend: "dp", Degrade: true})
	defer svc.Close(context.Background())
	be, _ := reg.Get("dp")
	be = faults.WithBreaker(faults.Inject(be, faults.InjectorConfig{RejectProb: 1, Seed: 1}),
		faults.BreakerConfig{ConsecutiveFailures: 3, OpenFor: time.Hour})
	if err := reg.Replace(be); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(service.NewHandler(svc))
	defer srv.Close()

	for i := 0; i < 5; i++ {
		resp, err := srv.Client().Post(srv.URL+"/v1/optimize", "application/json",
			bytes.NewReader(fmt.Appendf(nil, `{"query": %s, "seed": %d}`, catalogBody, i)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// Degradation keeps every request a 200 while the breaker trips
		// underneath.
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, resp.StatusCode)
		}
	}

	var health struct {
		Status string                           `json:"status"`
		Health map[string]service.BackendHealth `json:"health"`
	}
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d: liveness must hold while degraded", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" {
		t.Errorf("/healthz status = %q, want degraded", health.Status)
	}
	if h := health.Health["dp"]; h.State != service.HealthOpen || h.Trips == 0 {
		t.Errorf("/healthz dp health = %+v, want open with trips", h)
	}
	snap := svc.MetricsSnapshot()
	if b := snap.Backends["dp"]; b.Breaker == nil || b.Breaker.State != service.HealthOpen {
		t.Errorf("/metrics dp breaker = %+v, want open", snap.Backends["dp"].Breaker)
	}
}
