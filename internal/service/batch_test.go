package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
)

// countingBackend answers with the greedy plan and counts Solve calls, so
// tests can assert how many solves a deduplicated batch actually ran.
type countingBackend struct {
	calls      atomic.Int64
	batchCalls atomic.Int64
	batchJobs  atomic.Int64
}

func (b *countingBackend) Name() string { return "counting" }

func (b *countingBackend) Solve(ctx context.Context, enc *core.Encoding, p Params) (*core.Decoded, error) {
	b.calls.Add(1)
	res := classical.Greedy(enc.Query)
	return &core.Decoded{Valid: true, Order: res.Order, Cost: res.Cost}, nil
}

// countingBatchBackend additionally implements BatchSolver.
type countingBatchBackend struct{ countingBackend }

func (b *countingBatchBackend) SolveBatch(ctx context.Context, encs []*core.Encoding, ps []Params) ([]*core.Decoded, []error) {
	b.batchCalls.Add(1)
	b.batchJobs.Add(int64(len(encs)))
	ds := make([]*core.Decoded, len(encs))
	errs := make([]error, len(encs))
	for i, enc := range encs {
		res := classical.Greedy(enc.Query)
		ds[i] = &core.Decoded{Valid: true, Order: res.Order, Cost: res.Cost}
	}
	return ds, errs
}

func batchTestService(t *testing.T, backend Backend) *Service {
	t.Helper()
	r := NewRegistry()
	if err := r.Register(backend); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(NewGreedyBackend()); err != nil {
		t.Fatal(err)
	}
	svc := New(r, Config{Workers: 2, DefaultBackend: backend.Name()})
	t.Cleanup(func() { svc.Close(context.Background()) })
	return svc
}

// TestOptimizeBatchDeduplicates: identical items (same canonical query,
// backend, and params) share one solve; distinct items solve separately;
// every member still gets its own full response.
func TestOptimizeBatchDeduplicates(t *testing.T) {
	be := &countingBackend{}
	svc := batchTestService(t, be)

	q1 := chainQuery()
	q2 := chainQuery()
	q2.Relations[0].Card = 77 // distinct shape
	reqs := []*Request{
		{Query: q1, Params: Params{Seed: 1}},
		{Query: permuted(q1, []int{3, 1, 0, 2}), Params: Params{Seed: 1}}, // same canonical instance
		{Query: q1, Params: Params{Seed: 1}},
		{Query: q2, Params: Params{Seed: 1}},
		{Query: q1, Params: Params{Seed: 2}}, // different seed: own group
	}
	resps, errs, stats := svc.OptimizeBatch(context.Background(), reqs, 0)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if stats.Items != 5 || stats.Unique != 3 {
		t.Fatalf("stats = %+v, want 5 items / 3 unique", stats)
	}
	if got := be.calls.Load(); got != 3 {
		t.Fatalf("backend solved %d times, want 3 (deduplicated)", got)
	}
	// The permuted member must decode into its own relation indexing: same
	// cost as the identity member, same cache key, valid order.
	if resps[0].Cost != resps[1].Cost || resps[0].CacheKey != resps[1].CacheKey {
		t.Errorf("permuted member diverged: %+v vs %+v", resps[0], resps[1])
	}
	if resps[0].CacheKey == "" || resps[3].CacheKey == resps[0].CacheKey {
		t.Errorf("cache keys: %q vs %q, want distinct non-empty", resps[0].CacheKey, resps[3].CacheKey)
	}
	for i, r := range resps {
		if !r.Order.IsPermutation(reqs[i].Query.NumRelations()) {
			t.Errorf("item %d: order %v is not a permutation", i, r.Order)
		}
	}
}

// TestOptimizeBatchUsesBatchSolver: a BatchSolver backend receives one
// SolveBatch call covering all its deduplicated instances.
func TestOptimizeBatchUsesBatchSolver(t *testing.T) {
	be := &countingBatchBackend{}
	svc := batchTestService(t, be)

	var reqs []*Request
	for i := 0; i < 6; i++ {
		q := chainQuery()
		q.Relations[0].Card = float64(10 * (i + 1))
		reqs = append(reqs, &Request{Query: q, Params: Params{Seed: int64(i)}})
	}
	_, errs, stats := svc.OptimizeBatch(context.Background(), reqs, 0)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
	}
	if stats.Unique != 6 {
		t.Fatalf("unique = %d, want 6", stats.Unique)
	}
	if got := be.batchCalls.Load(); got != 1 {
		t.Errorf("SolveBatch called %d times, want 1", got)
	}
	if got := be.batchJobs.Load(); got != 6 {
		t.Errorf("SolveBatch saw %d jobs, want 6", got)
	}
	if got := be.calls.Load(); got != 0 {
		t.Errorf("per-instance Solve called %d times alongside the batch path", got)
	}
}

// TestOptimizeBatchPartialFailure: invalid items fail alone with
// ErrBadRequest; the rest of the envelope solves normally.
func TestOptimizeBatchPartialFailure(t *testing.T) {
	be := &countingBackend{}
	svc := batchTestService(t, be)

	bad := &join.Query{Relations: []join.Relation{{Name: "only", Card: 10}}}
	reqs := []*Request{
		{Query: chainQuery()},
		{Query: nil},
		{Query: chainQuery(), Backend: "warp-drive"},
		{Query: bad},
		{Query: chainQuery()},
	}
	resps, errs, stats := svc.OptimizeBatch(context.Background(), reqs, 0)
	if errs[0] != nil || errs[4] != nil {
		t.Fatalf("valid items failed: %v / %v", errs[0], errs[4])
	}
	for _, i := range []int{1, 2, 3} {
		if errs[i] == nil {
			t.Errorf("item %d should have failed", i)
		}
		if resps[i] != nil {
			t.Errorf("item %d has both response and error", i)
		}
	}
	if stats.Unique != 1 {
		t.Errorf("unique = %d, want 1 (items 0 and 4 dedup)", stats.Unique)
	}
	if got := be.calls.Load(); got != 1 {
		t.Errorf("backend solved %d times, want 1", got)
	}
}

// TestHTTPBatchEndpoint drives POST /v1/optimize/batch end to end: dedup
// accounting, per-item errors with their would-be status codes, cache_key
// on every successful item, and the batch counters on /metrics.json.
func TestHTTPBatchEndpoint(t *testing.T) {
	svc, ts := newTestServer(t)

	item := func(seed int) map[string]any {
		return map[string]any{
			"backend": "greedy",
			"query":   json.RawMessage(pairCatalog),
			"seed":    seed,
		}
	}
	envelope := map[string]any{
		"timeout_ms": 30000,
		"requests": []map[string]any{
			item(1), item(1), item(2),
			{"backend": "greedy"}, // missing query: per-item 400
		},
	}
	raw, _ := json.Marshal(envelope)
	resp, err := http.Post(ts.URL+"/v1/optimize/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("envelope status %d", resp.StatusCode)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Items != 4 || out.Unique != 2 {
		t.Fatalf("items/unique = %d/%d, want 4/2", out.Items, out.Unique)
	}
	if len(out.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(out.Results))
	}
	for _, i := range []int{0, 1, 2} {
		r := out.Results[i]
		if r.Response == nil || r.Error != "" {
			t.Fatalf("item %d: %+v, want success", i, r)
		}
		if r.Response.CacheKey == "" {
			t.Errorf("item %d: missing cache_key", i)
		}
	}
	if out.Results[0].Response.CacheKey != out.Results[1].Response.CacheKey {
		t.Error("identical items have different cache keys")
	}
	if out.Results[3].Response != nil || out.Results[3].Status != http.StatusBadRequest {
		t.Errorf("invalid item: %+v, want per-item 400", out.Results[3])
	}

	snap := svc.MetricsSnapshot()
	if snap.Batch.Envelopes != 1 || snap.Batch.Items != 4 || snap.Batch.Unique != 2 {
		t.Errorf("batch metrics = %+v, want 1/4/2", snap.Batch)
	}
}

// TestHTTPBatchMatchesSequential: every item answered by the batch
// endpoint is identical (order, cost, cache key) to the same request on
// the single endpoint — batching is an amortisation, not a semantic change.
func TestHTTPBatchMatchesSequential(t *testing.T) {
	_, ts := newTestServer(t)

	items := make([]map[string]any, 0, 4)
	for i := 0; i < 4; i++ {
		items = append(items, map[string]any{
			"backend":    "tabu",
			"query":      json.RawMessage(pairCatalog),
			"reads":      2,
			"seed":       i,
			"thresholds": 1,
		})
	}
	raw, _ := json.Marshal(map[string]any{"timeout_ms": 30000, "requests": items})
	resp, err := http.Post(ts.URL+"/v1/optimize/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var out BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for i, item := range items {
		item["timeout_ms"] = 30000
		single, body := postOptimize(t, ts.URL, item)
		if single.StatusCode != http.StatusOK {
			t.Fatalf("single %d: status %d: %s", i, single.StatusCode, body)
		}
		var want OptimizeResponse
		if err := json.Unmarshal(body, &want); err != nil {
			t.Fatal(err)
		}
		got := out.Results[i].Response
		if got == nil {
			t.Fatalf("batch item %d failed: %+v", i, out.Results[i])
		}
		if fmt.Sprint(got.Order) != fmt.Sprint(want.Order) || got.Cost != want.Cost || got.CacheKey != want.CacheKey {
			t.Errorf("item %d: batch %+v != single %+v", i, got, want)
		}
	}
}

// TestHTTPCacheKeyHeader: the single endpoint exports the WL-hash cache
// key both as the X-Cache-Key header and the cache_key body field, stable
// across repeats.
func TestHTTPCacheKeyHeader(t *testing.T) {
	_, ts := newTestServer(t)
	var keys []string
	for i := 0; i < 2; i++ {
		resp, body := postOptimize(t, ts.URL, map[string]any{
			"backend": "greedy",
			"query":   json.RawMessage(pairCatalog),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		hk := resp.Header.Get("X-Cache-Key")
		if hk == "" {
			t.Fatal("missing X-Cache-Key header")
		}
		var out OptimizeResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.CacheKey != hk {
			t.Errorf("cache_key %q != X-Cache-Key %q", out.CacheKey, hk)
		}
		keys = append(keys, hk)
	}
	if keys[0] != keys[1] {
		t.Errorf("cache key changed across identical requests: %v", keys)
	}
}

// TestHTTPBatchEnvelopeLimits pins the envelope validation: empty and
// oversized envelopes are envelope-level 400s.
func TestHTTPBatchEnvelopeLimits(t *testing.T) {
	_, ts := newTestServer(t)
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/optimize/batch", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if st := post(`{"requests":[]}`); st != http.StatusBadRequest {
		t.Errorf("empty envelope: status %d, want 400", st)
	}
	var b bytes.Buffer
	b.WriteString(`{"requests":[`)
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"backend":"greedy"}`)
	}
	b.WriteString(`]}`)
	if st := post(b.String()); st != http.StatusBadRequest {
		t.Errorf("oversized envelope: status %d, want 400", st)
	}
	if st := post(`{"timeout_ms":-5,"requests":[{"backend":"greedy"}]}`); st != http.StatusBadRequest {
		t.Errorf("negative timeout: status %d, want 400", st)
	}
}

// TestOptimizeBatchDeadline: the envelope deadline governs the whole
// batch; a blocking backend fails every pool-admitted item with the
// deadline error rather than hanging.
func TestOptimizeBatchDeadline(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&blockingBackend{}); err != nil {
		t.Fatal(err)
	}
	svc := New(r, Config{Workers: 1, DefaultBackend: "block"})
	defer svc.Close(context.Background())
	reqs := []*Request{{Query: chainQuery()}, {Query: chainQuery()}}
	start := time.Now()
	_, errs, _ := svc.OptimizeBatch(context.Background(), reqs, 100*time.Millisecond)
	if time.Since(start) > 5*time.Second {
		t.Fatal("batch ignored its deadline")
	}
	for i, err := range errs {
		if err == nil {
			t.Errorf("item %d succeeded against a blocking backend", i)
		}
	}
}
