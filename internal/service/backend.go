// Package service turns the quantumjoin library into a long-running join
// order optimisation service: a registry of solver backends behind one
// context-aware interface, a bounded worker pool enforcing per-request
// deadlines, an LRU cache of QUBO encodings keyed by a canonical hash of
// the query graph, and an observability layer (request counters,
// per-backend latency histograms, cache hit/miss statistics).
//
// This follows the real-time framing of the related work on hybrid
// quantum-classical database optimisation: the encode→solve→decode
// pipeline runs inside a daemon (cmd/qjoind) under bounded concurrency,
// and repeated query shapes skip the encoding step entirely via the
// cache — for the small instances NISQ hardware admits, building the
// MILP→BILP→QUBO encoding dominates request latency, so caching it is the
// headline performance win.
package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
)

// Params are the per-request solver knobs common to all backends.
type Params struct {
	// Reads is the sampling budget: annealing reads, QAOA shots, or tabu
	// restarts depending on the backend. Zero selects a backend default.
	Reads int
	// Seed drives embedding and sampling; equal seeds give reproducible
	// results on every backend.
	Seed int64
	// InitialState, when non-nil, warm-starts the solver from a full QUBO
	// assignment (length Encoding.NumQubits(); build one from a join order
	// with EncodeOrder + CompleteSlacks). Backends without a warm-start
	// notion ignore it. The hybrid orchestrator threads its classical
	// incumbent through here so quantum stages refine rather than restart.
	InitialState []bool
	// Hybrid tunes the hybrid orchestration backend; other backends
	// ignore it.
	Hybrid HybridParams
	// Decomp tunes the decomposition backend; other backends ignore it.
	Decomp DecompParams
	// CacheHit reports whether this request's encoding came from the
	// service's encoding cache. Populated by the service, not by clients;
	// the learned scheduler consumes it as a routing feature.
	CacheHit bool
}

// DecompParams tune the graph-partition decomposition backend. The zero
// value picks the backend's defaults.
type DecompParams struct {
	// PartBudget caps the relations per partition part (each part becomes
	// one QUBO-sized subproblem). Zero selects the backend default.
	PartBudget int
}

// HybridParams select and tune a hybrid orchestration strategy. The zero
// value picks the backend's defaults.
type HybridParams struct {
	// Strategy is "race" (portfolio racing: first valid result wins),
	// "staged" (classical first, hedged quantum launch, anytime
	// improvement until the deadline), or "learned" (contextual-bandit
	// routing: straight to the predicted-best backend when confident, a
	// sized-down race when not; requires a configured scheduler). Empty
	// selects the backend default.
	Strategy string
	// Portfolio lists the backend names to race or stage; empty selects
	// the backend default portfolio.
	Portfolio []string
	// HedgeDelay is how long the staged strategy waits after launching the
	// classical stage before hedging with the quantum-simulated solvers;
	// zero selects the backend default, negative disables hedging (quantum
	// stages launch immediately).
	HedgeDelay time.Duration
}

// Backend solves one QUBO-encoded join ordering problem. Implementations
// must honour context cancellation in their long-running loops and must be
// safe for concurrent use: the worker pool calls Solve from many
// goroutines against shared backend values.
type Backend interface {
	// Name is the stable identifier clients select the backend by.
	Name() string
	// Solve returns the best valid decoded join order the backend found,
	// or an error (wrapping ctx.Err() on expiry) when none was found.
	Solve(ctx context.Context, enc *core.Encoding, p Params) (*core.Decoded, error)
}

// QueryResult is the outcome of a QueryBackend solve: the decoded plan in
// the query's own relation indexing plus the aggregate encoding size the
// backend actually built (for decomposition: the sum over per-part QUBOs).
type QueryResult struct {
	Decoded       core.Decoded
	LogicalQubits int
}

// QueryBackend is implemented by backends that plan directly over the join
// query instead of a monolithic QUBO encoding — the decomposition backend,
// which partitions graphs far above the monolithic encoding limit and
// builds its own per-part encodings. The service routes requests for such
// backends around the encoding cache entirely: no monolithic encode is
// attempted (it would be rejected above core.MaxMonolithicRelations), and
// the query is passed in its original relation indexing.
type QueryBackend interface {
	Backend
	SolveQuery(ctx context.Context, q *join.Query, spec EncodeSpec, p Params) (*QueryResult, error)
}

// BatchSolver is implemented by backends with an amortised many-instance
// fast path (shared scratch buffers, one array pass over the jobs). The
// batch endpoint calls SolveBatch with the deduplicated instances of one
// envelope; backends without it are solved per instance. Both returned
// slices are index-aligned with encs, and results must be identical to
// calling Solve per instance with the same Params — the batch path is an
// allocation optimisation, never a semantic change.
type BatchSolver interface {
	Backend
	SolveBatch(ctx context.Context, encs []*core.Encoding, ps []Params) ([]*core.Decoded, []error)
}

// Health states reported by HealthReporter backends (the circuit-breaker
// wrapper in internal/faults). The strings appear verbatim in /healthz.
const (
	HealthOK       = "ok"        // closed breaker: traffic flows
	HealthOpen     = "open"      // tripped: requests fast-fail
	HealthHalfOpen = "half-open" // probing: limited trial traffic
)

// BackendHealth is one backend's resilience state as surfaced on /healthz
// and /metrics.
type BackendHealth struct {
	// State is HealthOK, HealthOpen, or HealthHalfOpen.
	State string `json:"state"`
	// ConsecutiveFailures is the current run of failed solves.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// ErrorRate is the failure fraction over the breaker's sliding window
	// (0 when the window is empty).
	ErrorRate float64 `json:"error_rate"`
	// Trips counts transitions into the open state since startup
	// (closed→open and a failed half-open probe alike).
	Trips int64 `json:"trips"`
	// StateAgeSeconds is how long the breaker has been in its current
	// state (seconds since the last state transition). A large age on an
	// open breaker means the backend has been sick for a while; cluster
	// peers use it to distinguish a blip from a persistent outage.
	StateAgeSeconds float64 `json:"state_age_seconds"`
}

// HealthReporter is implemented by backends that track their own health —
// notably the circuit-breaker wrapper in internal/faults. The service
// surfaces reported health on /healthz and /metrics, and the hybrid
// orchestrator skips backends reporting HealthOpen when assembling a
// portfolio.
type HealthReporter interface {
	Health() BackendHealth
}

// Registry is a thread-safe name → Backend map.
type Registry struct {
	mu       sync.RWMutex
	backends map[string]Backend
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{backends: make(map[string]Backend)}
}

// Register adds a backend, rejecting empty and duplicate names.
func (r *Registry) Register(b Backend) error {
	name := b.Name()
	if name == "" {
		return fmt.Errorf("service: backend has empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.backends[name]; dup {
		return fmt.Errorf("service: backend %q already registered", name)
	}
	r.backends[name] = b
	return nil
}

// Replace swaps the backend registered under b.Name() for b, failing when
// no backend of that name exists. cmd/qjoind uses it to wrap registered
// backends with resilience layers (fault injection, retries, circuit
// breakers) without re-plumbing their construction.
func (r *Registry) Replace(b Backend) error {
	name := b.Name()
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.backends[name]; !ok {
		return fmt.Errorf("service: cannot replace unregistered backend %q", name)
	}
	r.backends[name] = b
	return nil
}

// Get looks a backend up by name.
func (r *Registry) Get(name string) (Backend, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	b, ok := r.backends[name]
	return b, ok
}

// Names returns the registered backend names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.backends))
	for n := range r.backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
