package service_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"quantumjoin/internal/service"
)

// FuzzOptimizeRequest throws arbitrary bytes at the /v1/optimize JSON
// decoder. The contract under test: malformed, hostile, or merely weird
// bodies must come back as 4xx — never a 5xx, never a handler panic. The
// seed corpus (plus the checked-in files under
// testdata/fuzz/FuzzOptimizeRequest) covers the decoder's edge cases:
// truncated JSON, unknown fields, wrong types, self-joins, negative
// cardinalities, duplicate relations, and absent predicates.
func FuzzOptimizeRequest(f *testing.F) {
	seeds := []string{
		``,
		`{`,
		`null`,
		`[]`,
		`"query"`,
		`{"query": null}`,
		`{"query": {}}`,
		`{"query": {"relations": [], "predicates": []}}`,
		`{"query": {"relations": [{"name": "a", "cardinality": 10}], "predicates": []}, "timeout_ms": -5}`,
		`{"query": {"relations": [{"name": "a", "cardinality": -1}], "predicates": []}}`,
		`{"query": {"relations": [{"name": "a", "cardinality": 10}, {"name": "a", "cardinality": 20}], "predicates": []}}`,
		`{"query": {"relations": [{"name": "a", "cardinality": 10}], "predicates": [{"left": "a", "right": "a", "selectivity": 0.5}]}}`,
		`{"query": {"relations": [{"name": "a", "cardinality": 10}, {"name": "b", "cardinality": 20}], "predicates": [{"left": "a", "right": "z", "selectivity": 0.5}]}}`,
		`{"backend": "no-such-backend", "query": {"relations": [{"name": "a", "cardinality": 10}, {"name": "b", "cardinality": 20}], "predicates": [{"left": "a", "right": "b", "selectivity": 0.5}]}}`,
		`{"query": {"relations": [{"name": "a", "cardinality": 10}, {"name": "b", "cardinality": 20}], "predicates": [{"left": "a", "right": "b", "selectivity": 0.5}]}, "reads": -3, "seed": -9223372036854775808}`,
		`{"unknown_field": 1, "query": {"relations": [{"name": "a", "cardinality": 10}], "predicates": []}}`,
		`{"query": {"relations": [{"name": "a", "cardinality": 1e308}, {"name": "b", "cardinality": 1e308}], "predicates": [{"left": "a", "right": "b", "selectivity": 1e-308}]}}`,
		`{"query": {"relations": [{"name": "a", "cardinality": 10}, {"name": "b", "cardinality": 20}], "predicates": [{"left": "a", "right": "b", "selectivity": 0.5}]}, "thresholds": -1, "omega": -100}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	// One service for the whole fuzz run, greedy-only so accepted inputs
	// solve in microseconds.
	reg := service.NewRegistry()
	if err := reg.Register(service.NewGreedyBackend()); err != nil {
		f.Fatal(err)
	}
	svc := service.New(reg, service.Config{Workers: 2, DefaultBackend: "greedy"})
	f.Cleanup(func() { svc.Close(context.Background()) })
	handler := service.NewHandler(svc)

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // a panic here fails the fuzz run
		if rec.Code >= 500 {
			t.Fatalf("body %q: status %d, want < 500", body, rec.Code)
		}
	})
}

// FuzzBatchEnvelope is the batch-endpoint counterpart of
// FuzzOptimizeRequest: arbitrary bytes against /v1/optimize/batch must
// yield 4xx for malformed envelopes and 200 with per-item statuses for
// well-formed ones — never a 5xx, never a panic. The envelope decoder has
// its own failure modes beyond the single endpoint's: missing/empty/null
// "requests", null items, negative envelope timeouts, oversized batches,
// and unknown envelope-level fields.
func FuzzBatchEnvelope(f *testing.F) {
	valid := `{"query": {"relations": [{"name": "a", "cardinality": 10}, {"name": "b", "cardinality": 20}], "predicates": [{"left": "a", "right": "b", "selectivity": 0.5}]}}`
	seeds := []string{
		``,
		`{`,
		`null`,
		`[]`,
		`"requests"`,
		`{}`,
		`{"requests": null}`,
		`{"requests": []}`,
		`{"requests": {}}`,
		`{"requests": [null]}`,
		`{"requests": [{}]}`,
		`{"requests": [{"query": null}]}`,
		`{"requests": [` + valid + `]}`,
		`{"requests": [` + valid + `, ` + valid + `]}`,
		`{"requests": [` + valid + `, {"query": {"relations": [], "predicates": []}}]}`,
		`{"requests": [{"query": {"relations": [{"name": "a", "cardinality": -1}], "predicates": []}}]}`,
		`{"requests": [{"backend": "no-such-backend", "query": {"relations": [{"name": "a", "cardinality": 10}], "predicates": []}}]}`,
		`{"timeout_ms": -1, "requests": [` + valid + `]}`,
		`{"timeout_ms": 9999999999, "requests": [` + valid + `]}`,
		`{"unknown_field": true, "requests": [` + valid + `]}`,
		`{"requests": [{"query": {"relations": [{"name": "a", "cardinality": 10}], "predicates": [{"left": "a", "right": "a", "selectivity": 2}]}}]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	reg := service.NewRegistry()
	if err := reg.Register(service.NewGreedyBackend()); err != nil {
		f.Fatal(err)
	}
	svc := service.New(reg, service.Config{Workers: 2, DefaultBackend: "greedy"})
	f.Cleanup(func() { svc.Close(context.Background()) })
	handler := service.NewHandler(svc)

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize/batch", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req) // a panic here fails the fuzz run
		if rec.Code >= 500 {
			t.Fatalf("body %q: status %d, want < 500", body, rec.Code)
		}
	})
}
