package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
	"quantumjoin/internal/obs"
)

// EncodeSpec pins down every encoding-relevant request option; together
// with the canonical query form it determines the cache key.
type EncodeSpec struct {
	// Thresholds is the number of cardinality thresholds (DefaultThresholds
	// spread); default 3.
	Thresholds int
	// Omega is the slack discretisation precision ω; default 1.
	Omega float64
	// LogObjective selects the log-cost ablation of the objective.
	LogObjective bool
	// Compact selects the reduced-variable encoding (core.Options.Compact):
	// tio[t][j>0] eliminated by prefix substitution over tii, dropping
	// T·(J−1) decision qubits per instance.
	Compact bool
}

func (s EncodeSpec) withDefaults() EncodeSpec {
	if s.Thresholds <= 0 {
		s.Thresholds = 3
	}
	if s.Omega == 0 {
		s.Omega = 1
	}
	return s
}

// mix64 combines two words with a splitmix64-style finaliser; used for the
// order-insensitive colour refinement below (not cryptographic — the cache
// key itself is a SHA-256 over the full canonical serialisation, so colour
// collisions can only cause cache misses, never wrong results).
func mix64(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fpEdge is one predicate endpoint in the fingerprinter's flat adjacency.
type fpEdge struct {
	sel uint64
	to  int32
}

// fingerprinter computes cache fingerprints with reusable scratch: all
// working storage (colour refinement buffers, canonical predicate list,
// serialisation bytes) lives on the struct and is grown once, so a warm
// fingerprint of a familiar query shape allocates nothing. Not safe for
// concurrent use; pool instances (see fpPool) instead of sharing one.
type fingerprinter struct {
	edgeOff []int32
	edges   []fpEdge
	colors  []uint64
	next    []uint64
	sig     []uint64
	idx     []int
	perm    []int
	preds   []join.Predicate
	buf     []byte
}

// fpPool backs the exported Fingerprint helper and any caller without a
// request-scoped fingerprinter.
var fpPool = sync.Pool{New: func() any { return new(fingerprinter) }}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

// canonicalPerm computes a relabelling of the query's relations that is
// invariant under permutations of the relation list, via Weisfeiler-Leman
// colour refinement: a relation's colour starts from its cardinality and
// is repeatedly refined with the sorted multiset of (selectivity,
// neighbour colour) pairs. Relations left indistinguishable after n rounds
// (automorphic twins) are tie-broken by original index, which still
// serialises to the same canonical form. perm[original] = canonical index.
// The returned slice aliases fp.perm and is valid until the next call.
func (fp *fingerprinter) canonicalPerm(q *join.Query) []int {
	n := q.NumRelations()
	// Flat CSR adjacency of the predicate graph, counting-sort style.
	if cap(fp.edgeOff) < n+1 {
		fp.edgeOff = make([]int32, n+1)
	}
	fp.edgeOff = fp.edgeOff[:n+1]
	for i := range fp.edgeOff {
		fp.edgeOff[i] = 0
	}
	for _, p := range q.Predicates {
		fp.edgeOff[p.R1+1]++
		fp.edgeOff[p.R2+1]++
	}
	for i := 0; i < n; i++ {
		fp.edgeOff[i+1] += fp.edgeOff[i]
	}
	ne := int(fp.edgeOff[n])
	if cap(fp.edges) < ne {
		fp.edges = make([]fpEdge, ne)
	}
	fp.edges = fp.edges[:ne]
	if cap(fp.next) < n {
		fp.next = make([]uint64, n)
	}
	fill := fp.next[:n] // reuse as the insertion cursor before refinement
	for i := 0; i < n; i++ {
		fill[i] = uint64(fp.edgeOff[i])
	}
	for _, p := range q.Predicates {
		sb := math.Float64bits(p.Sel)
		fp.edges[fill[p.R1]] = fpEdge{sb, int32(p.R2)}
		fill[p.R1]++
		fp.edges[fill[p.R2]] = fpEdge{sb, int32(p.R1)}
		fill[p.R2]++
	}

	fp.colors = growU64(fp.colors, n)
	for i := range fp.colors {
		fp.colors[i] = mix64(0x517cc1b727220a95, math.Float64bits(q.Relations[i].Card))
	}
	fp.next = growU64(fp.next, n)
	for round := 0; round < n; round++ {
		for i := range fp.colors {
			fp.sig = fp.sig[:0]
			for _, e := range fp.edges[fp.edgeOff[i]:fp.edgeOff[i+1]] {
				fp.sig = append(fp.sig, mix64(e.sel, fp.colors[e.to]))
			}
			slices.Sort(fp.sig)
			h := fp.colors[i]
			for _, v := range fp.sig {
				h = mix64(h, v)
			}
			fp.next[i] = h
		}
		copy(fp.colors, fp.next)
	}
	fp.idx = growInts(fp.idx, n)
	for i := range fp.idx {
		fp.idx[i] = i
	}
	colors := fp.colors
	// slices.SortFunc (generic) instead of sort.Slice: the latter boxes the
	// slice into an interface and heap-allocates its closure on every call,
	// which would break the zero-alloc warm path.
	slices.SortFunc(fp.idx, func(ia, ib int) int {
		if colors[ia] != colors[ib] {
			if colors[ia] < colors[ib] {
				return -1
			}
			return 1
		}
		ca, cb := math.Float64bits(q.Relations[ia].Card), math.Float64bits(q.Relations[ib].Card)
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
		return ia - ib
	})
	fp.perm = growInts(fp.perm, n)
	for rank, orig := range fp.idx {
		fp.perm[orig] = rank
	}
	return fp.perm
}

// sum computes the cache fingerprint of (query shape, spec), returning
// the raw SHA-256 and the canonicalising permutation (aliasing fp.perm).
// The serialisation matches what canonicalize would produce, built
// directly from the original query plus the permutation so no canonical
// query is materialised on this path.
func (fp *fingerprinter) sum(q *join.Query, spec EncodeSpec) (sum [32]byte, perm []int) {
	spec = spec.withDefaults()
	perm = fp.canonicalPerm(q)

	if cap(fp.preds) < len(q.Predicates) {
		fp.preds = make([]join.Predicate, len(q.Predicates))
	}
	fp.preds = fp.preds[:len(q.Predicates)]
	for k, p := range q.Predicates {
		a, b := perm[p.R1], perm[p.R2]
		if a > b {
			a, b = b, a
		}
		fp.preds[k] = join.Predicate{R1: a, R2: b, Sel: p.Sel}
	}
	preds := fp.preds
	slices.SortFunc(preds, cmpPredicates)

	fp.buf = fp.buf[:0]
	w := func(v uint64) {
		fp.buf = binary.LittleEndian.AppendUint64(fp.buf, v)
	}
	w(uint64(len(q.Relations)))
	// Cards in canonical order: relation at canonical rank r is idx[r].
	for _, orig := range fp.idx {
		w(math.Float64bits(q.Relations[orig].Card))
	}
	w(uint64(len(preds)))
	for _, p := range preds {
		w(uint64(p.R1))
		w(uint64(p.R2))
		w(math.Float64bits(p.Sel))
	}
	w(uint64(spec.Thresholds))
	w(math.Float64bits(spec.Omega))
	var flags uint64
	if spec.LogObjective {
		flags |= 1
	}
	if spec.Compact {
		flags |= 2
	}
	w(flags)
	return sha256.Sum256(fp.buf), perm
}

// canonicalize relabels the query so that original relation i sits at
// canonical position perm[i], with positional names and a sorted predicate
// list — a fully deterministic instance to encode and hash.
func canonicalize(q *join.Query, perm []int) *join.Query {
	cq := &join.Query{Relations: make([]join.Relation, len(perm))}
	for i, r := range q.Relations {
		cq.Relations[perm[i]] = join.Relation{Name: fmt.Sprintf("R%d", perm[i]), Card: r.Card}
	}
	preds := make([]join.Predicate, len(q.Predicates))
	for k, p := range q.Predicates {
		a, b := perm[p.R1], perm[p.R2]
		if a > b {
			a, b = b, a
		}
		preds[k] = join.Predicate{R1: a, R2: b, Sel: p.Sel}
	}
	slices.SortFunc(preds, cmpPredicates)
	cq.Predicates = preds
	return cq
}

// cmpPredicates is the canonical predicate order: by endpoints, then by the
// raw bit pattern of the selectivity (a total order even for NaNs). Shared
// by the fingerprint serialisation and canonicalize so the hashed and the
// encoded predicate lists always agree.
func cmpPredicates(a, b join.Predicate) int {
	if a.R1 != b.R1 {
		return a.R1 - b.R1
	}
	if a.R2 != b.R2 {
		return a.R2 - b.R2
	}
	sa, sb := math.Float64bits(a.Sel), math.Float64bits(b.Sel)
	switch {
	case sa < sb:
		return -1
	case sa > sb:
		return 1
	}
	return 0
}

// Fingerprint returns the cache key for (query shape, encoding options)
// and the canonicalising relation permutation. Queries differing only by a
// permutation of their relation list map to the same key; equal keys imply
// (up to SHA-256 collisions) identical canonical instances, so a cached
// encoding is always valid for every query that hits it.
func Fingerprint(q *join.Query, spec EncodeSpec) (key string, perm []int) {
	fp := fpPool.Get().(*fingerprinter)
	sum, p := fp.sum(q, spec)
	perm = append([]int(nil), p...)
	fpPool.Put(fp)
	return hex.EncodeToString(sum[:]), perm
}

// EncodingCache is a thread-safe LRU cache of QUBO encodings keyed by
// Fingerprint. Encoding dominates request latency for the classical and
// sampling backends, so repeated query shapes — the common case for
// parameterised production queries — skip it entirely.
type EncodingCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[[32]byte]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

// cacheEntry stores the raw fingerprint alongside its hex form: lookups
// key on the raw sum (no per-request hex encoding), and a hit hands back
// the one hex string allocated at insert time.
type cacheEntry struct {
	sum    [32]byte
	hexKey string
	enc    *core.Encoding
}

// NewEncodingCache returns a cache holding up to capacity encodings
// (default 256 when capacity <= 0).
func NewEncodingCache(capacity int) *EncodingCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &EncodingCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[[32]byte]*list.Element),
	}
}

// Encoding returns the encoding of the canonical form of q under spec,
// building and inserting it on a miss, along with the cache key (the
// WL-hash fingerprint, also the cluster routing key), the relation
// permutation (perm[original] = canonical) needed to map decoded orders
// back, and whether the call was a cache hit. Concurrent misses on the
// same key may encode twice; the last insert wins, which is harmless
// because all canonical encodings for a key are identical.
func (c *EncodingCache) Encoding(q *join.Query, spec EncodeSpec) (enc *core.Encoding, key string, perm []int, hit bool, err error) {
	return c.EncodingContext(context.Background(), q, spec)
}

// EncodingContext is Encoding with tracing: a cache miss opens an
// "encode" span (with the MILP/BILP/QUBO stage spans as children) in the
// trace carried by ctx. A hit opens no span — nothing was encoded, and a
// nanosecond map lookup as a span would be pure trace noise; the hit is
// visible as the root span's cache_hit attribute instead.
func (c *EncodingCache) EncodingContext(ctx context.Context, q *join.Query, spec EncodeSpec) (enc *core.Encoding, key string, perm []int, hit bool, err error) {
	fp := fpPool.Get().(*fingerprinter)
	enc, key, p, hit, err := c.encodingScratch(ctx, q, spec, fp)
	if p != nil {
		perm = append([]int(nil), p...)
	}
	fpPool.Put(fp)
	return enc, key, perm, hit, err
}

// encodingScratch is the allocation-free core of EncodingContext: the
// fingerprint runs in fp's reusable buffers, the lookup keys on the raw
// SHA-256 (no hex encoding), and a hit returns the entry's interned hex
// key. The returned perm aliases fp.perm — valid only until fp's next
// use, so request-scoped callers must hold their own fingerprinter.
func (c *EncodingCache) encodingScratch(ctx context.Context, q *join.Query, spec EncodeSpec, fp *fingerprinter) (enc *core.Encoding, key string, perm []int, hit bool, err error) {
	spec = spec.withDefaults()
	sum, perm := fp.sum(q, spec)
	if enc, key, ok := c.get(sum); ok {
		c.hits.Add(1)
		return enc, key, perm, true, nil
	}
	c.misses.Add(1)
	key = hex.EncodeToString(sum[:])
	ectx, span := obs.StartSpan(ctx, "encode")
	cq := canonicalize(q, perm)
	enc, err = core.EncodeContext(ectx, cq, core.Options{
		Thresholds:   core.DefaultThresholds(cq, spec.Thresholds),
		Omega:        spec.Omega,
		LogObjective: spec.LogObjective,
		Compact:      spec.Compact,
	})
	if err != nil {
		span.End(err)
		return nil, key, nil, false, err
	}
	span.SetAttr("qubits", enc.NumQubits())
	span.End(nil)
	c.put(sum, key, enc)
	return enc, key, perm, false, nil
}

func (c *EncodingCache) get(sum [32]byte) (*core.Encoding, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[sum]
	if !ok {
		return nil, "", false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.enc, e.hexKey, true
}

func (c *EncodingCache) put(sum [32]byte, hexKey string, enc *core.Encoding) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[sum]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).enc = enc
		return
	}
	c.items[sum] = c.ll.PushFront(&cacheEntry{sum: sum, hexKey: hexKey, enc: enc})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).sum)
	}
}

// Len returns the number of cached encodings.
func (c *EncodingCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Stats returns the current cache counters.
func (c *EncodingCache) Stats() CacheStats {
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Size:     c.Len(),
		Capacity: c.capacity,
	}
}

// Purge drops every cached encoding (counters are kept).
func (c *EncodingCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[[32]byte]*list.Element)
}
