package service

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
	"quantumjoin/internal/obs"
)

// EncodeSpec pins down every encoding-relevant request option; together
// with the canonical query form it determines the cache key.
type EncodeSpec struct {
	// Thresholds is the number of cardinality thresholds (DefaultThresholds
	// spread); default 3.
	Thresholds int
	// Omega is the slack discretisation precision ω; default 1.
	Omega float64
	// LogObjective selects the log-cost ablation of the objective.
	LogObjective bool
}

func (s EncodeSpec) withDefaults() EncodeSpec {
	if s.Thresholds <= 0 {
		s.Thresholds = 3
	}
	if s.Omega == 0 {
		s.Omega = 1
	}
	return s
}

// mix64 combines two words with a splitmix64-style finaliser; used for the
// order-insensitive colour refinement below (not cryptographic — the cache
// key itself is a SHA-256 over the full canonical serialisation, so colour
// collisions can only cause cache misses, never wrong results).
func mix64(a, b uint64) uint64 {
	x := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// canonicalPerm computes a relabelling of the query's relations that is
// invariant under permutations of the relation list, via Weisfeiler-Leman
// colour refinement: a relation's colour starts from its cardinality and
// is repeatedly refined with the sorted multiset of (selectivity,
// neighbour colour) pairs. Relations left indistinguishable after n rounds
// (automorphic twins) are tie-broken by original index, which still
// serialises to the same canonical form. perm[original] = canonical index.
func canonicalPerm(q *join.Query) []int {
	n := q.NumRelations()
	type edge struct {
		sel uint64
		to  int
	}
	adj := make([][]edge, n)
	for _, p := range q.Predicates {
		sb := math.Float64bits(p.Sel)
		adj[p.R1] = append(adj[p.R1], edge{sb, p.R2})
		adj[p.R2] = append(adj[p.R2], edge{sb, p.R1})
	}
	colors := make([]uint64, n)
	for i := range colors {
		colors[i] = mix64(0x517cc1b727220a95, math.Float64bits(q.Relations[i].Card))
	}
	next := make([]uint64, n)
	var sig []uint64
	for round := 0; round < n; round++ {
		for i := range colors {
			sig = sig[:0]
			for _, e := range adj[i] {
				sig = append(sig, mix64(e.sel, colors[e.to]))
			}
			sort.Slice(sig, func(a, b int) bool { return sig[a] < sig[b] })
			h := colors[i]
			for _, v := range sig {
				h = mix64(h, v)
			}
			next[i] = h
		}
		copy(colors, next)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if colors[ia] != colors[ib] {
			return colors[ia] < colors[ib]
		}
		ca, cb := math.Float64bits(q.Relations[ia].Card), math.Float64bits(q.Relations[ib].Card)
		if ca != cb {
			return ca < cb
		}
		return ia < ib
	})
	perm := make([]int, n)
	for rank, orig := range idx {
		perm[orig] = rank
	}
	return perm
}

// canonicalize relabels the query so that original relation i sits at
// canonical position perm[i], with positional names and a sorted predicate
// list — a fully deterministic instance to encode and hash.
func canonicalize(q *join.Query, perm []int) *join.Query {
	cq := &join.Query{Relations: make([]join.Relation, len(perm))}
	for i, r := range q.Relations {
		cq.Relations[perm[i]] = join.Relation{Name: fmt.Sprintf("R%d", perm[i]), Card: r.Card}
	}
	preds := make([]join.Predicate, len(q.Predicates))
	for k, p := range q.Predicates {
		a, b := perm[p.R1], perm[p.R2]
		if a > b {
			a, b = b, a
		}
		preds[k] = join.Predicate{R1: a, R2: b, Sel: p.Sel}
	}
	sort.Slice(preds, func(i, j int) bool {
		if preds[i].R1 != preds[j].R1 {
			return preds[i].R1 < preds[j].R1
		}
		if preds[i].R2 != preds[j].R2 {
			return preds[i].R2 < preds[j].R2
		}
		return math.Float64bits(preds[i].Sel) < math.Float64bits(preds[j].Sel)
	})
	cq.Predicates = preds
	return cq
}

// Fingerprint returns the cache key for (query shape, encoding options)
// and the canonicalising relation permutation. Queries differing only by a
// permutation of their relation list map to the same key; equal keys imply
// (up to SHA-256 collisions) identical canonical instances, so a cached
// encoding is always valid for every query that hits it.
func Fingerprint(q *join.Query, spec EncodeSpec) (key string, perm []int) {
	spec = spec.withDefaults()
	perm = canonicalPerm(q)
	cq := canonicalize(q, perm)
	h := sha256.New()
	buf := make([]byte, 8)
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf, v)
		h.Write(buf)
	}
	w(uint64(len(cq.Relations)))
	for _, r := range cq.Relations {
		w(math.Float64bits(r.Card))
	}
	w(uint64(len(cq.Predicates)))
	for _, p := range cq.Predicates {
		w(uint64(p.R1))
		w(uint64(p.R2))
		w(math.Float64bits(p.Sel))
	}
	w(uint64(spec.Thresholds))
	w(math.Float64bits(spec.Omega))
	if spec.LogObjective {
		w(1)
	} else {
		w(0)
	}
	return hex.EncodeToString(h.Sum(nil)), perm
}

// EncodingCache is a thread-safe LRU cache of QUBO encodings keyed by
// Fingerprint. Encoding dominates request latency for the classical and
// sampling backends, so repeated query shapes — the common case for
// parameterised production queries — skip it entirely.
type EncodingCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key string
	enc *core.Encoding
}

// NewEncodingCache returns a cache holding up to capacity encodings
// (default 256 when capacity <= 0).
func NewEncodingCache(capacity int) *EncodingCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &EncodingCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Encoding returns the encoding of the canonical form of q under spec,
// building and inserting it on a miss, along with the cache key (the
// WL-hash fingerprint, also the cluster routing key), the relation
// permutation (perm[original] = canonical) needed to map decoded orders
// back, and whether the call was a cache hit. Concurrent misses on the
// same key may encode twice; the last insert wins, which is harmless
// because all canonical encodings for a key are identical.
func (c *EncodingCache) Encoding(q *join.Query, spec EncodeSpec) (enc *core.Encoding, key string, perm []int, hit bool, err error) {
	return c.EncodingContext(context.Background(), q, spec)
}

// EncodingContext is Encoding with tracing: a cache miss opens an
// "encode" span (with the MILP/BILP/QUBO stage spans as children) in the
// trace carried by ctx. A hit opens no span — nothing was encoded, and a
// nanosecond map lookup as a span would be pure trace noise; the hit is
// visible as the root span's cache_hit attribute instead.
func (c *EncodingCache) EncodingContext(ctx context.Context, q *join.Query, spec EncodeSpec) (enc *core.Encoding, key string, perm []int, hit bool, err error) {
	spec = spec.withDefaults()
	key, perm = Fingerprint(q, spec)
	if enc, ok := c.get(key); ok {
		c.hits.Add(1)
		return enc, key, perm, true, nil
	}
	c.misses.Add(1)
	ectx, span := obs.StartSpan(ctx, "encode")
	cq := canonicalize(q, perm)
	enc, err = core.EncodeContext(ectx, cq, core.Options{
		Thresholds:   core.DefaultThresholds(cq, spec.Thresholds),
		Omega:        spec.Omega,
		LogObjective: spec.LogObjective,
	})
	if err != nil {
		span.End(err)
		return nil, key, nil, false, err
	}
	span.SetAttr("qubits", enc.NumQubits())
	span.End(nil)
	c.put(key, enc)
	return enc, key, perm, false, nil
}

func (c *EncodingCache) get(key string) (*core.Encoding, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).enc, true
}

func (c *EncodingCache) put(key string, enc *core.Encoding) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).enc = enc
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, enc: enc})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached encodings.
func (c *EncodingCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats is a point-in-time view of the cache counters.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if total := s.Hits + s.Misses; total > 0 {
		return float64(s.Hits) / float64(total)
	}
	return 0
}

// Stats returns the current cache counters.
func (c *EncodingCache) Stats() CacheStats {
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Size:     c.Len(),
		Capacity: c.capacity,
	}
}

// Purge drops every cached encoding (counters are kept).
func (c *EncodingCache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}
