package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"quantumjoin/internal/join"
	"quantumjoin/internal/obs"
)

// OptimizeRequest is the POST /v1/optimize body. Query uses the join
// catalog schema: {"relations":[{"name":...,"cardinality":...}],
// "predicates":[{"left":...,"right":...,"selectivity":...}]}.
//
// TimeoutMs is the per-request deadline in milliseconds: absent or 0
// selects the server-side default (Config.DefaultTimeout, 10s unless
// reconfigured), values above Config.MaxTimeout are clamped to it, and
// negative values are rejected with 400.
//
// Strategy, Portfolio, and HedgeMs tune the hybrid backend only: Strategy
// is "race", "staged", or "learned" (contextual-bandit routing; needs the
// daemon's scheduler enabled), Portfolio lists backend names to
// orchestrate, and HedgeMs is the staged strategy's hedge delay in
// milliseconds (0 default, negative launches quantum stages immediately).
//
// Lean trims the response for throughput-sensitive callers: the rendered
// join tree and the optimal-cost comparison (a classical DP per unseen
// query shape) are skipped, keeping the warm path allocation-free.
type OptimizeRequest struct {
	Backend      string          `json:"backend,omitempty"`
	Query        json.RawMessage `json:"query"`
	Thresholds   int             `json:"thresholds,omitempty"`
	Omega        float64         `json:"omega,omitempty"`
	LogObjective bool            `json:"log_objective,omitempty"`
	// Compact selects the reduced-variable QUBO encoding (fewer qubits
	// per instance; see core.Options.Compact).
	Compact bool  `json:"compact,omitempty"`
	Reads   int   `json:"reads,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	// PartBudget caps relations per partition part on the decomp backend
	// (0 selects the backend default); other backends ignore it.
	PartBudget int      `json:"part_budget,omitempty"`
	TimeoutMs  int      `json:"timeout_ms,omitempty"`
	Strategy   string   `json:"strategy,omitempty"`
	Portfolio  []string `json:"portfolio,omitempty"`
	HedgeMs    int      `json:"hedge_ms,omitempty"`
	Lean       bool     `json:"lean,omitempty"`
}

// OptimizeResponse is the POST /v1/optimize result. Degraded reports that
// the selected backend failed and the plan came from the classical
// fallback instead (Backend then names the fallback solver);
// DegradedReason carries the original failure for observability.
type OptimizeResponse struct {
	Backend        string   `json:"backend"`
	Order          []string `json:"order"`
	Tree           string   `json:"tree"`
	Cost           float64  `json:"cost"`
	OptimalCost    float64  `json:"optimal_cost,omitempty"`
	Optimal        bool     `json:"optimal"`
	LogicalQubits  int      `json:"logical_qubits"`
	CacheKey       string   `json:"cache_key"`
	CacheHit       bool     `json:"cache_hit"`
	Degraded       bool     `json:"degraded"`
	DegradedReason string   `json:"degraded_reason,omitempty"`
	ElapsedMs      float64  `json:"elapsed_ms"`
}

type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

// Cache-warmth headers, read and set by the cluster layer.
const (
	// HeaderWarmOnly marks a POST /v1/optimize request that should only
	// populate the encoding cache, not solve: the handler validates,
	// encodes (or confirms the encoding is cached), and answers 204. The
	// cluster layer uses it to push a primary owner's fresh encodings to
	// the key's replicas so a failover lands on a warm cache.
	HeaderWarmOnly = "X-Warm-Only"
	// HeaderCacheHit reports whether a successful optimize answer came
	// from the encoding cache ("1") or was encoded fresh ("0").
	HeaderCacheHit = "X-Cache-Hit"
)

// NewHandler exposes the service as an HTTP/JSON API:
//
//	POST /v1/optimize   — run one optimisation job
//	GET  /v1/backends   — list registered backends
//	GET  /metrics       — Prometheus text exposition
//	GET  /metrics.json  — JSON observability snapshot
//	GET  /debug/traces  — recent request traces (JSON; ?id=, ?format=flame)
//	GET  /debug/pprof/* — runtime profiles (only with Config.Pprof)
//	GET  /healthz       — liveness probe
//
// Every request gets a request ID (an inbound X-Request-ID is adopted,
// otherwise one is generated), echoed as the X-Request-ID response
// header, attached to the context for structured logs and traces, and
// included in error bodies — a 503's ID resolves to its stored trace at
// /debug/traces?id=.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/optimize", s.handleOptimize)
	mux.HandleFunc("/v1/optimize/batch", s.handleOptimizeBatch)
	mux.HandleFunc("/v1/backends", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(r.Context(), w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"backends": s.Backends()})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(r.Context(), w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		_ = s.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(r.Context(), w, http.StatusMethodNotAllowed, "GET only")
			return
		}
		writeJSON(w, http.StatusOK, s.MetricsSnapshot())
	})
	mux.HandleFunc("/debug/traces", s.handleTraces)
	if s.cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		health := s.Health()
		status := "ok"
		for _, h := range health {
			if h.State != HealthOK {
				status = "degraded"
				break
			}
		}
		// Liveness stays 200 even when breakers are open: the daemon is
		// up and still answers every request via the classical fallback.
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   status,
			"backends": len(s.Backends()),
			"health":   health,
		})
	})
	return s.withRequestID(mux)
}

// withRequestID is the outermost middleware: request-ID minting and
// propagation, logger injection, and one structured access-log line per
// request.
func (s *Service) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		ctx := obs.WithRequestID(r.Context(), id)
		if s.cfg.Logger != nil {
			ctx = obs.WithLogger(ctx, s.cfg.Logger)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r.WithContext(ctx))
		if s.cfg.Logger != nil {
			s.cfg.Logger.InfoContext(ctx, "request",
				"method", r.Method, "path", r.URL.Path,
				"status", sw.status,
				"elapsed_ms", float64(time.Since(start))/float64(time.Millisecond))
		}
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// handleTraces serves the tracer's ring buffer: all recent traces as
// JSON, one trace by ?id= (404 when unknown or expired), and a
// flame-style text rendering with ?format=flame.
func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(r.Context(), w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	tracer := s.cfg.Tracer
	if tracer == nil {
		writeError(r.Context(), w, http.StatusNotFound, "tracing is not enabled")
		return
	}
	var traces []obs.TraceSnapshot
	if id := r.URL.Query().Get("id"); id != "" {
		t, ok := tracer.Find(id)
		if !ok {
			writeError(r.Context(), w, http.StatusNotFound, "no stored trace with id "+id)
			return
		}
		traces = []obs.TraceSnapshot{t}
	} else {
		traces = tracer.Snapshots()
	}
	if r.URL.Query().Get("format") == "flame" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		for _, t := range traces {
			obs.RenderFlame(w, t, 72)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"traces": traces,
		"stats":  tracer.Stats(),
	})
}

// toRequest turns one decoded OptimizeRequest body into a service Request,
// returning a client-facing message on validation failure. It is shared by
// the single and batch handlers.
func toRequest(body *OptimizeRequest) (*Request, string) {
	if len(body.Query) == 0 {
		return nil, `missing "query"`
	}
	q, err := join.ReadCatalog(bytes.NewReader(body.Query))
	if err != nil {
		return nil, "invalid query: " + err.Error()
	}
	if body.TimeoutMs < 0 {
		return nil, `"timeout_ms" must be >= 0 (0 or absent selects the server default)`
	}
	return &Request{
		Query:   q,
		Backend: body.Backend,
		Spec: EncodeSpec{
			Thresholds:   body.Thresholds,
			Omega:        body.Omega,
			LogObjective: body.LogObjective,
			Compact:      body.Compact,
		},
		Params: Params{
			Reads: body.Reads,
			Seed:  body.Seed,
			Hybrid: HybridParams{
				Strategy:   body.Strategy,
				Portfolio:  body.Portfolio,
				HedgeDelay: time.Duration(body.HedgeMs) * time.Millisecond,
			},
			Decomp: DecompParams{PartBudget: body.PartBudget},
		},
		Timeout: time.Duration(body.TimeoutMs) * time.Millisecond,
		Lean:    body.Lean,
	}, ""
}

// toHTTPResponse renders a service Response over the request's own
// relation names.
func toHTTPResponse(req *Request, resp *Response) OptimizeResponse {
	names := make([]string, len(resp.Order))
	for i, t := range resp.Order {
		names[i] = req.Query.Relations[t].Name
	}
	return OptimizeResponse{
		Backend:        resp.Backend,
		Order:          names,
		Tree:           resp.Tree,
		Cost:           resp.Cost,
		OptimalCost:    resp.OptimalCost,
		Optimal:        resp.Optimal,
		LogicalQubits:  resp.LogicalQubits,
		CacheKey:       resp.CacheKey,
		CacheHit:       resp.CacheHit,
		Degraded:       resp.Degraded,
		DegradedReason: resp.DegradedReason,
		ElapsedMs:      float64(resp.Elapsed) / float64(time.Millisecond),
	}
}

func (s *Service) handleOptimize(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if r.Method != http.MethodPost {
		writeError(ctx, w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var body OptimizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(ctx, w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if qp := r.URL.Query().Get("backend"); qp != "" {
		// The query parameter wins over the body so operators can steer a
		// canned request at another backend without editing the payload.
		body.Backend = qp
	}
	req, msg := toRequest(&body)
	if msg != "" {
		writeError(ctx, w, http.StatusBadRequest, msg)
		return
	}
	if r.Header.Get(HeaderWarmOnly) != "" {
		key, hit, err := s.Warm(ctx, req)
		if err != nil {
			writeError(ctx, w, statusFor(err), err.Error())
			return
		}
		w.Header().Set("X-Cache-Key", key)
		w.Header().Set(HeaderCacheHit, boolHeader(hit))
		w.WriteHeader(http.StatusNoContent)
		return
	}
	resp, err := s.Optimize(ctx, req)
	if err != nil {
		writeError(ctx, w, statusFor(err), err.Error())
		return
	}
	// The cache key doubles as the cluster routing key; exposing it as a
	// header lets clients and proxies verify sticky routing cheaply.
	w.Header().Set("X-Cache-Key", resp.CacheKey)
	w.Header().Set(HeaderCacheHit, boolHeader(resp.CacheHit))
	writeJSON(w, http.StatusOK, toHTTPResponse(req, resp))
}

// maxBatchItems caps one /v1/optimize/batch envelope; larger envelopes are
// rejected with 400 rather than silently truncated.
const maxBatchItems = 1024

// BatchRequest is the POST /v1/optimize/batch body: one deadline for the
// whole envelope plus the individual jobs. Per-item timeout_ms values are
// ignored — the envelope deadline governs (absent or 0 selects the server
// default, clamped to the configured maximum).
type BatchRequest struct {
	TimeoutMs int               `json:"timeout_ms,omitempty"`
	Requests  []OptimizeRequest `json:"requests"`
}

// BatchItemResult is one item's outcome: exactly one of Response or Error
// is set. Status carries the HTTP status the item would have received on
// the single endpoint (the envelope itself is 200 whenever it was solved,
// even with item failures).
type BatchItemResult struct {
	Response *OptimizeResponse `json:"response,omitempty"`
	Error    string            `json:"error,omitempty"`
	Status   int               `json:"status,omitempty"`
}

// BatchResponse is the POST /v1/optimize/batch result.
type BatchResponse struct {
	Results   []BatchItemResult `json:"results"`
	Items     int               `json:"items"`
	Unique    int               `json:"unique"`
	ElapsedMs float64           `json:"elapsed_ms"`
}

func (s *Service) handleOptimizeBatch(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if r.Method != http.MethodPost {
		writeError(ctx, w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	start := time.Now()
	var body BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<24))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil {
		writeError(ctx, w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if len(body.Requests) == 0 {
		writeError(ctx, w, http.StatusBadRequest, `missing "requests"`)
		return
	}
	if len(body.Requests) > maxBatchItems {
		writeError(ctx, w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d items exceeds the maximum of %d", len(body.Requests), maxBatchItems))
		return
	}
	if body.TimeoutMs < 0 {
		writeError(ctx, w, http.StatusBadRequest, `"timeout_ms" must be >= 0 (0 or absent selects the server default)`)
		return
	}

	reqs := make([]*Request, len(body.Requests))
	msgs := make([]string, len(body.Requests))
	for i := range body.Requests {
		reqs[i], msgs[i] = toRequest(&body.Requests[i])
	}
	resps, errs, stats := s.OptimizeBatch(ctx, reqs, time.Duration(body.TimeoutMs)*time.Millisecond)

	out := BatchResponse{
		Results: make([]BatchItemResult, len(body.Requests)),
		Items:   stats.Items,
		Unique:  stats.Unique,
	}
	envelopeStatus := http.StatusOK
	allRejected := true
	for i := range out.Results {
		switch {
		case msgs[i] != "":
			out.Results[i] = BatchItemResult{Error: msgs[i], Status: http.StatusBadRequest}
		case errs[i] != nil:
			st := statusFor(errs[i])
			out.Results[i] = BatchItemResult{Error: errs[i].Error(), Status: st}
			// A pool-level rejection fails every item identically; surface
			// it as the envelope status so clients can back off.
			if errors.Is(errs[i], ErrOverloaded) || errors.Is(errs[i], ErrShutdown) {
				envelopeStatus = st
			} else {
				allRejected = false
			}
		default:
			hr := toHTTPResponse(reqs[i], resps[i])
			out.Results[i] = BatchItemResult{Response: &hr}
			allRejected = false
		}
	}
	if envelopeStatus != http.StatusOK && allRejected {
		writeError(ctx, w, envelopeStatus, out.Results[0].Error)
		return
	}
	out.ElapsedMs = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, out)
}

// statusFor maps service errors onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnavailable), errors.Is(err, ErrShutdown):
		// Load shed or open breaker: try again shortly (Retry-After set).
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; 499 is the de-facto convention.
		return 499
	default:
		return http.StatusInternalServerError
	}
}

func boolHeader(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(ctx context.Context, w http.ResponseWriter, status int, msg string) {
	if status == http.StatusServiceUnavailable {
		// Load sheds and open breakers are transient by construction;
		// tell well-behaved clients when to come back.
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: msg, RequestID: obs.RequestID(ctx)})
}
