package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

const pairCatalog = `{
	"relations": [
		{"name": "orders", "cardinality": 1000},
		{"name": "customers", "cardinality": 100}
	],
	"predicates": [
		{"left": "orders", "right": "customers", "selectivity": 0.01}
	]
}`

func newTestServer(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	reg := DefaultRegistry(RegistryConfig{
		PegasusM:       3, // small hardware graph keeps tests fast
		QAOAIterations: 2,
	})
	svc := New(reg, Config{Workers: 4, DefaultBackend: "dp"})
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Close(context.Background())
	})
	return svc, ts
}

func postOptimize(t *testing.T, url string, body map[string]any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/optimize", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestHTTPOptimizeAllBackends drives POST /v1/optimize end to end against
// every backend in the default registry.
func TestHTTPOptimizeAllBackends(t *testing.T) {
	svc, ts := newTestServer(t)
	backends := svc.Backends()
	if len(backends) < 4 {
		t.Fatalf("default registry has %d backends, want >= 4", len(backends))
	}
	for _, backend := range backends {
		t.Run(backend, func(t *testing.T) {
			resp, body := postOptimize(t, ts.URL, map[string]any{
				"backend":    backend,
				"query":      json.RawMessage(pairCatalog),
				"thresholds": 1,
				"reads":      200,
				"seed":       7,
				"timeout_ms": 30000,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var out OptimizeResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatalf("bad response %s: %v", body, err)
			}
			if out.Backend != backend {
				t.Errorf("backend = %q", out.Backend)
			}
			if len(out.Order) != 2 {
				t.Errorf("order = %v, want both relations", out.Order)
			}
			if out.Cost <= 0 {
				t.Errorf("cost = %v", out.Cost)
			}
			// Both orders of a two-way join share the optimal cost.
			if !out.Optimal {
				t.Errorf("%s: cost %v not optimal (optimum %v)", backend, out.Cost, out.OptimalCost)
			}
			if out.LogicalQubits <= 0 {
				t.Errorf("logical_qubits = %d", out.LogicalQubits)
			}
		})
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		body map[string]any
		want int
	}{
		{"missing query", map[string]any{"backend": "dp"}, http.StatusBadRequest},
		{"unknown backend", map[string]any{
			"backend": "warp-drive", "query": json.RawMessage(pairCatalog),
		}, http.StatusBadRequest},
		{"invalid selectivity", map[string]any{
			"backend": "dp",
			"query": json.RawMessage(`{
				"relations":[{"name":"a","cardinality":10},{"name":"b","cardinality":20}],
				"predicates":[{"left":"a","right":"b","selectivity":2.5}]}`),
		}, http.StatusBadRequest},
		{"non-positive cardinality", map[string]any{
			"backend": "dp",
			"query": json.RawMessage(`{
				"relations":[{"name":"a","cardinality":0},{"name":"b","cardinality":20}],
				"predicates":[{"left":"a","right":"b","selectivity":0.5}]}`),
		}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postOptimize(t, ts.URL, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: missing error message in %s", tc.name, body)
		}
	}
}

func TestHTTPDeadline(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&blockingBackend{}); err != nil {
		t.Fatal(err)
	}
	svc := New(r, Config{Workers: 1, DefaultBackend: "block"})
	ts := httptest.NewServer(NewHandler(svc))
	defer func() {
		ts.Close()
		svc.Close(context.Background())
	}()
	resp, body := postOptimize(t, ts.URL, map[string]any{
		"query":      json.RawMessage(pairCatalog),
		"timeout_ms": 50,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status = %d (%s), want 504", resp.StatusCode, body)
	}
}

// TestHTTPTimeoutHandling pins the documented timeout_ms contract: negative
// values are client errors, while 0/absent fall back to the server default.
func TestHTTPTimeoutHandling(t *testing.T) {
	_, ts := newTestServer(t)

	resp, body := postOptimize(t, ts.URL, map[string]any{
		"backend":    "dp",
		"query":      json.RawMessage(pairCatalog),
		"timeout_ms": -1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative timeout_ms: status %d (%s), want 400", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("negative timeout_ms: missing error message in %s", body)
	}

	// Absent timeout_ms must select the server default, not an immediate
	// deadline: the request succeeds.
	resp, body = postOptimize(t, ts.URL, map[string]any{
		"backend": "dp",
		"query":   json.RawMessage(pairCatalog),
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("absent timeout_ms: status %d (%s), want 200", resp.StatusCode, body)
	}

	// Explicit 0 is the documented alias for the default.
	resp, body = postOptimize(t, ts.URL, map[string]any{
		"backend":    "dp",
		"query":      json.RawMessage(pairCatalog),
		"timeout_ms": 0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Errorf("timeout_ms=0: status %d (%s), want 200", resp.StatusCode, body)
	}
}

func TestHTTPHealthAndBackends(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/backends")
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Backends []string `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Backends) < 4 {
		t.Errorf("backends = %v, want >= 4", out.Backends)
	}
}

// TestHTTPConcurrentRequestsAndMetrics hammers the daemon concurrently
// (run under -race) and then checks the /metrics accounting.
func TestHTTPConcurrentRequestsAndMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	const goroutines, perG = 8, 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				backend := []string{"dp", "greedy", "tabu"}[(g+i)%3]
				resp, body := postOptimize(t, ts.URL, map[string]any{
					"backend":    backend,
					"query":      json.RawMessage(pairCatalog),
					"thresholds": 1,
					"reads":      24,
					"seed":       g*31 + i,
					"timeout_ms": 30000,
				})
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", backend, resp.StatusCode, body)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Requests.Total != goroutines*perG {
		t.Errorf("requests.total = %d, want %d", snap.Requests.Total, goroutines*perG)
	}
	if snap.Cache.Hits == 0 || snap.Cache.HitRate <= 0 {
		t.Errorf("cache hit rate = %v with %d hits; repeated shapes should hit", snap.Cache.HitRate, snap.Cache.Hits)
	}
	for _, name := range []string{"dp", "greedy", "tabu"} {
		b, ok := snap.Backends[name]
		if !ok || b.Requests == 0 {
			t.Errorf("backend %q missing from metrics: %+v", name, snap.Backends)
			continue
		}
		if b.Latency.Count != b.Requests {
			t.Errorf("%s: latency count %d != requests %d", name, b.Latency.Count, b.Requests)
		}
		if b.Latency.P99Ms < b.Latency.P50Ms {
			t.Errorf("%s: p99 %v < p50 %v", name, b.Latency.P99Ms, b.Latency.P50Ms)
		}
	}
}

// TestHTTPWarmOnly: a request carrying X-Warm-Only populates the encoding
// cache and returns 204 without solving; a later normal request for the
// same catalog hits that warm entry.
func TestHTTPWarmOnly(t *testing.T) {
	_, ts := newTestServer(t)

	raw, err := json.Marshal(map[string]any{"query": json.RawMessage(pairCatalog)})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderWarmOnly, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("warm-only status = %d, want 204", resp.StatusCode)
	}
	if resp.Header.Get(HeaderCacheHit) != "0" {
		t.Errorf("first warm: %s = %q, want 0 (fresh encode)", HeaderCacheHit, resp.Header.Get(HeaderCacheHit))
	}
	key := resp.Header.Get("X-Cache-Key")
	if key == "" {
		t.Error("warm-only response missing X-Cache-Key")
	}

	// The warmed encoding must serve the real solve as a cache hit.
	solveResp, body := postOptimize(t, ts.URL, map[string]any{"query": json.RawMessage(pairCatalog)})
	if solveResp.StatusCode != http.StatusOK {
		t.Fatalf("solve status = %d: %s", solveResp.StatusCode, body)
	}
	var out OptimizeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Error("solve after warm-only reported cache_hit=false")
	}
	if out.CacheKey != key {
		t.Errorf("solve cache key %q != warmed key %q", out.CacheKey, key)
	}

	// Warming a malformed body is still a 400, not a panic or solve.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/optimize", bytes.NewReader([]byte(`{"query": null}`)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderWarmOnly, "1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("warm-only with null query: status %d, want 400", resp.StatusCode)
	}
}
