//go:build !race

// The race detector instruments allocations, so AllocsPerRun reports
// nonzero under -race; these assertions only run in normal test builds.

package service

import (
	"context"
	"testing"

	"quantumjoin/internal/core"
)

// allocStub is a Backend + BatchSolver that performs zero allocations per
// solve: it hands back the same preallocated Decoded (and, for batches,
// reused result slices) every time. With the backend out of the picture,
// AllocsPerRun measures only the service scaffolding — fingerprinting,
// cache lookup, dedup, decode, and response assembly.
type allocStub struct {
	d  *core.Decoded
	ds []*core.Decoded
	es []error
}

func (b *allocStub) Name() string { return "stub" }

func (b *allocStub) Solve(ctx context.Context, enc *core.Encoding, p Params) (*core.Decoded, error) {
	return b.d, nil
}

func (b *allocStub) SolveBatch(ctx context.Context, encs []*core.Encoding, ps []Params) ([]*core.Decoded, []error) {
	if cap(b.ds) < len(encs) {
		b.ds = make([]*core.Decoded, len(encs))
		b.es = make([]error, len(encs))
	}
	b.ds = b.ds[:len(encs)]
	b.es = b.es[:len(encs)]
	for i := range b.ds {
		b.ds[i] = b.d
		b.es[i] = nil
	}
	return b.ds, b.es
}

// allocService builds a service with the stub registered and no tracer or
// logger — the configuration of a throughput-focused deployment.
func allocService(t *testing.T) (*Service, *allocStub) {
	t.Helper()
	stub := &allocStub{d: &core.Decoded{Valid: true, Order: []int{0, 1, 2, 3}, Cost: 1}}
	reg := NewRegistry()
	if err := reg.Register(stub); err != nil {
		t.Fatal(err)
	}
	return New(reg, Config{CompareRelations: -1}), stub
}

// TestSolveIntoZeroAllocWarm pins the tentpole guarantee: once the
// encoding cache and scratch pools are warm, a Lean request through the
// solve path allocates nothing.
func TestSolveIntoZeroAllocWarm(t *testing.T) {
	s, stub := allocService(t)
	req := &Request{Query: chainQuery(), Backend: "stub", Lean: true}
	resp := &Response{}
	ctx := context.Background()

	// One cold pass populates the encoding cache, the scratch pool, and
	// the per-backend metrics entry.
	if err := s.solveInto(ctx, stub, req, resp); err != nil {
		t.Fatal(err)
	}
	if resp.CacheKey == "" {
		t.Fatal("expected cache key")
	}

	avg := testing.AllocsPerRun(200, func() {
		if err := s.solveInto(ctx, stub, req, resp); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm solveInto allocates %.1f objects per run, want 0", avg)
	}
	if !resp.CacheHit || len(resp.Order) != 4 {
		t.Fatalf("warm response malformed: hit=%v order=%v", resp.CacheHit, resp.Order)
	}
}

// TestSolveBatchZeroAllocWarm is the batch-path counterpart: a warm
// envelope of familiar shapes — including duplicates that dedup into one
// group — runs through solveBatch without allocating, provided the caller
// recycles its request/response/error slices (as the benchmark driver and
// any steady-state batch client would).
func TestSolveBatchZeroAllocWarm(t *testing.T) {
	s, _ := allocService(t)
	ctx := context.Background()

	qa, qb := chainQuery(), chainQuery()
	qb.Relations[2].Card = 777 // second distinct shape
	reqs := []*Request{
		{Query: qa, Backend: "stub", Lean: true},
		{Query: qb, Backend: "stub", Lean: true},
		{Query: qa, Backend: "stub", Lean: true}, // dedups with item 0
	}
	resps := make([]*Response, len(reqs))
	for i := range resps {
		resps[i] = &Response{}
	}
	errs := make([]error, len(reqs))

	run := func() int {
		for i := range errs {
			errs[i] = nil
		}
		n := s.solveBatch(ctx, reqs, resps, errs)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("item %d: %v", i, err)
			}
			if resps[i] == nil {
				t.Fatalf("item %d: nil response", i)
			}
		}
		return n
	}

	if got := run(); got != 2 {
		t.Fatalf("cold batch solved %d unique groups, want 2", got)
	}
	avg := testing.AllocsPerRun(200, func() { run() })
	if avg != 0 {
		t.Fatalf("warm solveBatch allocates %.1f objects per run, want 0", avg)
	}
	if !resps[0].CacheHit || resps[0].CacheKey != resps[2].CacheKey {
		t.Fatalf("dedup members disagree: %+v vs %+v", resps[0], resps[2])
	}
	if resps[1].CacheKey == resps[0].CacheKey {
		t.Fatal("distinct shapes share a cache key")
	}
}

// TestPoolRunZeroAllocWarm covers the worker-pool hop: enqueueing a job
// and waiting for completion reuses pooled job shells.
func TestPoolRunZeroAllocWarm(t *testing.T) {
	p := NewPool(2, 4)
	defer p.Shutdown(context.Background())
	ctx := context.Background()
	f := func(context.Context) {}
	if err := p.Run(ctx, f); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := p.Run(ctx, f); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm Pool.Run allocates %.1f objects per run, want 0", avg)
	}
}
