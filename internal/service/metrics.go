package service

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBucketMs are the histogram upper bounds in milliseconds; an
// implicit overflow bucket catches everything beyond the last bound.
var latencyBucketMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// histogram is a fixed-bucket latency histogram with lock-free recording.
type histogram struct {
	counts    []atomic.Int64 // len(latencyBucketMs)+1, last = overflow
	sumMicros atomic.Int64
	count     atomic.Int64
	maxMicros atomic.Int64 // largest single observation
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBucketMs)+1)}
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketMs) && ms > latencyBucketMs[i] {
		i++
	}
	h.counts[i].Add(1)
	us := d.Microseconds()
	h.sumMicros.Add(us)
	h.count.Add(1)
	for {
		cur := h.maxMicros.Load()
		if us <= cur || h.maxMicros.CompareAndSwap(cur, us) {
			break
		}
	}
}

// quantile estimates the q-quantile (0 < q < 1) in milliseconds by linear
// interpolation within the containing bucket. Quantiles landing in the
// overflow (+Inf) bucket interpolate between the last finite bound and
// the largest observation seen, instead of reporting the raw bucket edge
// (which under-reported arbitrarily badly for heavy upper tails).
func (h *histogram) quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := 0.0
	lower := 0.0
	for i, bound := range latencyBucketMs {
		n := float64(h.counts[i].Load())
		if cum+n >= target && n > 0 {
			frac := (target - cum) / n
			return lower + frac*(bound-lower)
		}
		cum += n
		lower = bound
	}
	n := float64(h.counts[len(latencyBucketMs)].Load())
	maxMs := float64(h.maxMicros.Load()) / 1000
	if n == 0 || maxMs <= lower {
		// Nothing overflowed (or the max itself sits at the edge): the
		// last finite bound is the best statement the histogram can make.
		return lower
	}
	frac := (target - cum) / n
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return lower + frac*(maxMs-lower)
}

// LatencySnapshot summarises one histogram.
type LatencySnapshot struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

func (h *histogram) snapshot() LatencySnapshot {
	s := LatencySnapshot{Count: h.count.Load()}
	if s.Count > 0 {
		s.MeanMs = float64(h.sumMicros.Load()) / float64(s.Count) / 1000
		s.P50Ms = h.quantile(0.50)
		s.P90Ms = h.quantile(0.90)
		s.P99Ms = h.quantile(0.99)
	}
	return s
}

// BackendMetrics tracks one backend's requests, errors, latency, and — for
// backends competing inside the hybrid orchestrator — arbitration outcomes.
type BackendMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	wins     atomic.Int64
	losses   atomic.Int64
	degraded atomic.Int64
	retries  atomic.Int64
	faults   atomic.Int64
	lat      *histogram
}

// Observe records one solve.
func (b *BackendMetrics) Observe(d time.Duration, err error) {
	b.requests.Add(1)
	if err != nil {
		b.errors.Add(1)
	}
	b.lat.observe(d)
}

// RecordWin counts an arbitration win: the hybrid orchestrator selected
// this backend's candidate as the final answer.
func (b *BackendMetrics) RecordWin() { b.wins.Add(1) }

// RecordLoss counts an arbitration loss: the backend produced a candidate
// (or failed to) but another backend's answer was selected.
func (b *BackendMetrics) RecordLoss() { b.losses.Add(1) }

// RecordDegraded counts a degraded outcome: this backend's answer was used
// only because every primary candidate failed (a classical-degradation
// fallback or a hybrid safety-arm forfeit). Kept distinct from RecordWin so
// reward signals derived from win counts are not poisoned by forfeits —
// a fallback that "wins" because everything else broke says nothing about
// its plan quality relative to the field.
func (b *BackendMetrics) RecordDegraded() { b.degraded.Add(1) }

// RecordRetry counts one retried solve attempt (the resilience wrapper in
// internal/faults calls this per re-attempt, not per request).
func (b *BackendMetrics) RecordRetry() { b.retries.Add(1) }

// RecordFault counts one fault observed from (or injected into) this
// backend — rejected jobs, queue timeouts, aborts, corrupted results.
func (b *BackendMetrics) RecordFault() { b.faults.Add(1) }

// Metrics is the service-wide observability state. All recording paths are
// atomic; Snapshot is safe to call concurrently with traffic.
type Metrics struct {
	start time.Time

	requests atomic.Int64
	errors   atomic.Int64
	inFlight atomic.Int64
	sheds    atomic.Int64
	degrades atomic.Int64
	panics   atomic.Int64

	batchEnvelopes atomic.Int64 // /v1/optimize/batch envelopes accepted
	batchItems     atomic.Int64 // items across all envelopes
	batchUnique    atomic.Int64 // deduplicated instances actually solved

	mu       sync.RWMutex
	backends map[string]*BackendMetrics
}

// NewMetrics returns zeroed metrics with the clock started.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), backends: make(map[string]*BackendMetrics)}
}

// Backend returns (lazily creating) the per-backend metrics for name.
func (m *Metrics) Backend(name string) *BackendMetrics {
	m.mu.RLock()
	b, ok := m.backends[name]
	m.mu.RUnlock()
	if ok {
		return b
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if b, ok = m.backends[name]; !ok {
		b = &BackendMetrics{lat: newHistogram()}
		m.backends[name] = b
	}
	return b
}

// BackendSnapshot summarises one backend. Wins and Losses count hybrid
// arbitration outcomes and stay zero for backends never raced; Retries and
// Faults stay zero for backends without a resilience wrapper; Breaker is
// present only for backends reporting health (circuit-breaker wrapped).
type BackendSnapshot struct {
	Requests int64           `json:"requests"`
	Errors   int64           `json:"errors"`
	Wins     int64           `json:"wins,omitempty"`
	Losses   int64           `json:"losses,omitempty"`
	Degraded int64           `json:"degraded,omitempty"`
	Retries  int64           `json:"retries,omitempty"`
	Faults   int64           `json:"faults,omitempty"`
	Breaker  *BackendHealth  `json:"breaker,omitempty"`
	Latency  LatencySnapshot `json:"latency"`
}

// RequestsSnapshot summarises service-wide request counters. Shed counts
// load-shed rejections (503), Degraded counts requests answered by the
// classical fallback after their backend failed, Panics counts recovered
// worker/backend panics.
type RequestsSnapshot struct {
	Total    int64 `json:"total"`
	Errors   int64 `json:"errors"`
	InFlight int64 `json:"in_flight"`
	Shed     int64 `json:"shed"`
	Degraded int64 `json:"degraded"`
	Panics   int64 `json:"panics"`
}

// BatchSnapshot summarises the batch endpoint: envelopes accepted, items
// across them, and the deduplicated instance count actually solved (the
// gap between Items and Unique is work the dedup pass saved).
type BatchSnapshot struct {
	Envelopes int64 `json:"envelopes"`
	Items     int64 `json:"items"`
	Unique    int64 `json:"unique"`
}

// Snapshot is the full /metrics.json payload.
type Snapshot struct {
	UptimeSeconds float64                    `json:"uptime_seconds"`
	Requests      RequestsSnapshot           `json:"requests"`
	Batch         BatchSnapshot              `json:"batch"`
	Cache         CacheSnapshot              `json:"cache"`
	Backends      map[string]BackendSnapshot `json:"backends"`
}

// CacheSnapshot is CacheStats plus the derived hit rate.
type CacheSnapshot struct {
	CacheStats
	HitRate float64 `json:"hit_rate"`
}

// Snapshot captures the current counters; cache may be nil.
func (m *Metrics) Snapshot(cache *EncodingCache) Snapshot {
	s := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests: RequestsSnapshot{
			Total:    m.requests.Load(),
			Errors:   m.errors.Load(),
			InFlight: m.inFlight.Load(),
			Shed:     m.sheds.Load(),
			Degraded: m.degrades.Load(),
			Panics:   m.panics.Load(),
		},
		Batch: BatchSnapshot{
			Envelopes: m.batchEnvelopes.Load(),
			Items:     m.batchItems.Load(),
			Unique:    m.batchUnique.Load(),
		},
		Backends: make(map[string]BackendSnapshot),
	}
	if cache != nil {
		st := cache.Stats()
		s.Cache = CacheSnapshot{CacheStats: st, HitRate: st.HitRate()}
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	for name, b := range m.backends {
		s.Backends[name] = b.snapshot()
	}
	return s
}

func (b *BackendMetrics) snapshot() BackendSnapshot {
	return BackendSnapshot{
		Requests: b.requests.Load(),
		Errors:   b.errors.Load(),
		Wins:     b.wins.Load(),
		Losses:   b.losses.Load(),
		Degraded: b.degraded.Load(),
		Retries:  b.retries.Load(),
		Faults:   b.faults.Load(),
		Latency:  b.lat.snapshot(),
	}
}

// MetricsReader is the typed read-side of Metrics: per-backend win/loss/
// latency snapshots for in-process consumers (the learned scheduler, debug
// endpoints) that previously had no option but to poke unexported fields
// or scrape the Prometheus text exposition.
type MetricsReader interface {
	// BackendNames lists the backends with recorded metrics, sorted.
	BackendNames() []string
	// ReadBackend snapshots one backend's counters; ok is false when the
	// backend has never recorded anything.
	ReadBackend(name string) (snap BackendSnapshot, ok bool)
}

var _ MetricsReader = (*Metrics)(nil)

// BackendNames lists the backends with recorded metrics, sorted.
func (m *Metrics) BackendNames() []string {
	m.mu.RLock()
	names := make([]string, 0, len(m.backends))
	for name := range m.backends {
		names = append(names, name)
	}
	m.mu.RUnlock()
	sort.Strings(names)
	return names
}

// ReadBackend snapshots one backend's counters without creating it.
func (m *Metrics) ReadBackend(name string) (BackendSnapshot, bool) {
	m.mu.RLock()
	b, ok := m.backends[name]
	m.mu.RUnlock()
	if !ok {
		return BackendSnapshot{}, false
	}
	return b.snapshot(), true
}
