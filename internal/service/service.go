package service

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
	"quantumjoin/internal/obs"
)

// ErrBadRequest marks client errors (invalid query, unknown backend,
// oversized instance); the HTTP layer maps it to 400.
var ErrBadRequest = errors.New("service: bad request")

// Config tunes a Service.
type Config struct {
	// Workers bounds concurrent solves (default: GOMAXPROCS).
	Workers int
	// QueueDepth bounds waiting requests (default: 2× workers).
	QueueDepth int
	// CacheSize bounds the encoding cache (default 256 entries).
	CacheSize int
	// DefaultTimeout is applied when a request carries no deadline of its
	// own (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines (default 60s).
	MaxTimeout time.Duration
	// DefaultBackend serves requests that name no backend (default
	// "anneal").
	DefaultBackend string
	// CompareRelations is the largest relation count for which responses
	// include the classically computed optimal cost (default 16; 0 keeps
	// the default, negative disables the comparison).
	CompareRelations int
	// Shed selects load shedding over backpressure: when the worker
	// pool's bounded queue is full, requests are rejected immediately
	// with ErrOverloaded (HTTP 503 + Retry-After) instead of blocking
	// until their deadline. cmd/qjoind enables it by default.
	Shed bool
	// Degrade enables the last-resort classical fallback: when the
	// selected backend fails (fault, panic, deadline, invalid result),
	// the service answers with the greedy — or, within budget, the exact
	// DP — plan and marks the response Degraded instead of erroring.
	// Client errors (ErrBadRequest) never degrade. cmd/qjoind enables it
	// by default; the zero value keeps the strict fail-fast behaviour.
	Degrade bool
	// Tracer, when non-nil, traces every request: a root "optimize" span
	// with encode/solve/decode children (and deeper backend-specific
	// spans), tail-sampled into the tracer's ring buffer and served at
	// /debug/traces. Nil disables tracing at near-zero cost.
	Tracer *obs.Tracer
	// Logger receives structured request/degradation/resilience logs with
	// request IDs injected from the context. Nil discards.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ on the service's
	// HTTP handler. Off by default: profiling endpoints are opt-in.
	Pprof bool
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.DefaultBackend == "" {
		c.DefaultBackend = "anneal"
	}
	if c.CompareRelations == 0 {
		c.CompareRelations = 16
	}
	return c
}

// Service is the concurrent join order optimisation engine behind
// cmd/qjoind: registry + cache + pool + metrics.
type Service struct {
	cfg     Config
	reg     *Registry
	cache   *EncodingCache
	pool    *Pool
	metrics *Metrics
	scratch sync.Pool // *reqScratch, reused across requests
	batch   sync.Pool // *batchScratch, reused across batch envelopes

	collectorsMu   sync.RWMutex
	promCollectors []func(*obs.PromWriter) // extra /metrics families (AddPromCollector)
}

// reqScratch is the per-request working storage of the warm optimize
// path: fingerprint buffers, the inverse permutation, and decode scratch.
// Instances cycle through Service.scratch so a steady stream of
// same-shaped requests reuses the same allocations.
type reqScratch struct {
	fp  fingerprinter
	inv []int
	dec core.Decoder
}

// New assembles a service over the given backend registry.
func New(reg *Registry, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:     cfg,
		reg:     reg,
		cache:   NewEncodingCache(cfg.CacheSize),
		pool:    NewPool(cfg.Workers, cfg.QueueDepth),
		metrics: NewMetrics(),
	}
	s.scratch.New = func() any { return new(reqScratch) }
	s.batch.New = func() any { return new(batchScratch) }
	return s
}

// Request is one optimisation job.
type Request struct {
	// Query is the join ordering instance (validated here).
	Query *join.Query
	// Backend names the registered solver; empty selects the default.
	Backend string
	// Spec selects the QUBO encoding options (and the cache key).
	Spec EncodeSpec
	// Params are the solver knobs.
	Params Params
	// Timeout is the per-request deadline; 0 selects the default, and
	// values above Config.MaxTimeout are clamped to it.
	Timeout time.Duration
	// Lean trims the response for latency-critical callers: the rendered
	// Tree string and the classical optimal-cost comparison are skipped
	// (Tree is empty, OptimalCost/Optimal are zero). The order, cost, and
	// cache metadata are unaffected.
	Lean bool
}

// Response is the outcome of one optimisation job.
type Response struct {
	// Backend is the solver that produced the result.
	Backend string
	// Order is the join order in the request's own relation indexing.
	Order join.Order
	// Tree renders Order over the request's relation names.
	Tree string
	// Cost is the exact C_out cost of Order.
	Cost float64
	// OptimalCost is the classical DP optimum (0 when the comparison was
	// skipped, see Config.CompareRelations); Optimal reports Cost ≈
	// OptimalCost.
	OptimalCost float64
	Optimal     bool
	// LogicalQubits is the QUBO encoding size.
	LogicalQubits int
	// CacheKey is the permutation-invariant WL-hash fingerprint of (query
	// shape, encoding options) — the encoding-cache key and the cluster
	// routing key. Clients can use it to pre-group requests for
	// /v1/optimize/batch or to verify sticky routing.
	CacheKey string
	// CacheHit reports whether the encoding came from the cache.
	CacheHit bool
	// Degraded reports that the selected backend failed and the order
	// came from the classical fallback path instead; Backend then names
	// the fallback solver ("greedy" or "dp") and DegradedReason carries
	// the original failure.
	Degraded       bool
	DegradedReason string
	// Elapsed is the end-to-end service time including queueing.
	Elapsed time.Duration
}

// Backends lists the registered backend names.
func (s *Service) Backends() []string { return s.reg.Names() }

// MetricsSnapshot captures the current observability counters, including
// the breaker state of every health-reporting backend.
func (s *Service) MetricsSnapshot() Snapshot {
	snap := s.metrics.Snapshot(s.cache)
	for name, h := range s.Health() {
		hh := h
		b := snap.Backends[name] // zero value when the backend never solved
		b.Breaker = &hh
		snap.Backends[name] = b
	}
	return snap
}

// Health reports the resilience state of every registered backend that
// tracks one (see HealthReporter); backends without a breaker are absent.
func (s *Service) Health() map[string]BackendHealth {
	out := make(map[string]BackendHealth)
	for _, name := range s.reg.Names() {
		b, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		if hr, ok := b.(HealthReporter); ok {
			out[name] = hr.Health()
		}
	}
	return out
}

// Metrics exposes the live metrics registry so out-of-package backends
// (the hybrid orchestrator) can record per-backend arbitration outcomes.
func (s *Service) Metrics() *Metrics { return s.metrics }

// PurgeCache drops all cached encodings (used by benchmarks and tests).
func (s *Service) PurgeCache() { s.cache.Purge() }

// Close gracefully shuts the service down: no new requests are admitted,
// queued work drains, and in-flight solves finish; ctx bounds the wait.
func (s *Service) Close(ctx context.Context) error {
	return s.pool.Shutdown(ctx)
}

// Warm validates req and populates the encoding cache without solving:
// the cluster layer pushes a primary owner's fresh encodings to the key's
// replicas this way, so a failover lands on a warm cache. It returns the
// cache key and whether the encoding was already cached.
func (s *Service) Warm(ctx context.Context, req *Request) (key string, hit bool, err error) {
	if req == nil || req.Query == nil {
		return "", false, fmt.Errorf("service: warm: missing query: %w", ErrBadRequest)
	}
	_, key, _, hit, err = s.cache.EncodingContext(ctx, req.Query, req.Spec)
	if err != nil {
		return "", false, fmt.Errorf("service: warm: encoding failed: %v: %w", err, ErrBadRequest)
	}
	return key, hit, nil
}

// Optimize runs one request through the pool under its deadline. When
// the service has a tracer, the whole request runs under a root
// "optimize" span — errors (including sheds) end the span in error, so
// the tail sampler always keeps their traces.
func (s *Service) Optimize(ctx context.Context, req *Request) (*Response, error) {
	start := time.Now()
	s.metrics.requests.Add(1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	ctx, span := s.cfg.Tracer.Start(ctx, "optimize")
	if req != nil && req.Backend != "" {
		span.SetAttr("backend", req.Backend)
	}

	resp, err := s.optimize(ctx, req, start)
	if err != nil {
		s.metrics.errors.Add(1)
		if errors.Is(err, ErrOverloaded) {
			s.metrics.sheds.Add(1)
			span.SetAttr("shed", true)
		}
		span.End(err)
		return nil, err
	}
	span.SetAttr("producer", resp.Backend)
	span.SetAttr("cost", resp.Cost)
	if resp.Degraded {
		span.SetAttr("degraded", true)
	}
	span.End(nil)
	return resp, nil
}

func (s *Service) optimize(ctx context.Context, req *Request, start time.Time) (*Response, error) {
	if req.Query == nil {
		return nil, fmt.Errorf("service: request has no query: %w", ErrBadRequest)
	}
	if err := req.Query.Validate(); err != nil {
		return nil, fmt.Errorf("service: invalid query: %v: %w", err, ErrBadRequest)
	}
	name := req.Backend
	if name == "" {
		name = s.cfg.DefaultBackend
	}
	backend, ok := s.reg.Get(name)
	if !ok {
		return nil, fmt.Errorf("service: unknown backend %q (have: %s): %w",
			name, strings.Join(s.reg.Names(), ", "), ErrBadRequest)
	}

	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	run := s.pool.Run
	if s.cfg.Shed {
		run = s.pool.TryRun
	}
	var resp *Response
	var solveErr error
	if err := run(ctx, func(ctx context.Context) {
		resp, solveErr = s.solve(ctx, backend, req)
	}); err != nil {
		if errors.Is(err, ErrPanic) {
			s.metrics.panics.Add(1)
		}
		return nil, err
	}
	if solveErr != nil {
		return nil, solveErr
	}
	resp.Elapsed = time.Since(start)
	return resp, nil
}

// solve runs on a pool worker: encoding (cached), panic-guarded backend
// solve, result vetting, optional classical degradation, and mapping the
// canonical-labelled result back into the request's indexing.
func (s *Service) solve(ctx context.Context, backend Backend, req *Request) (*Response, error) {
	resp := &Response{}
	if err := s.solveInto(ctx, backend, req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// solveInto is solve writing into a caller-owned Response: the warm path
// (cache hit, healthy backend, Lean request, tracing off) performs zero
// allocations beyond whatever the backend itself does — fingerprint and
// decode scratch comes from the service's reqScratch pool and the
// response's slices are reused in place.
func (s *Service) solveInto(ctx context.Context, backend Backend, req *Request, resp *Response) error {
	sc := s.scratch.Get().(*reqScratch)
	defer s.scratch.Put(sc)

	// Query-level backends (decomposition) plan over the join graph
	// directly and build their own per-part encodings; routing them
	// through the monolithic encode would be wasted work at best and a
	// hard error above core.MaxMonolithicRelations.
	if qb, ok := backend.(QueryBackend); ok {
		return s.solveQueryInto(ctx, qb, req, sc, resp)
	}

	// On a miss the cache opens the "encode" span; a hit is recorded as
	// an attribute on the active (root) span rather than a noise span.
	enc, key, perm, hit, err := s.cache.encodingScratch(ctx, req.Query, req.Spec, &sc.fp)
	obs.ActiveSpan(ctx).SetAttrBool("cache_hit", hit)
	if err != nil {
		return fmt.Errorf("service: encoding failed: %v: %w", err, ErrBadRequest)
	}

	bm := s.metrics.Backend(backend.Name())
	solveCtx, solveSpan := obs.StartSpan(ctx, "solve")
	solveSpan.SetAttrStr("backend", backend.Name())
	solveStart := time.Now()
	// Thread the cache outcome into the solve parameters: the learned
	// scheduler uses it as a routing feature (a warm encoding shifts the
	// latency profile of every arm). Local copy — Params is a value struct.
	ps := req.Params
	ps.CacheHit = hit
	d, err := s.safeSolve(solveCtx, backend, enc, ps)
	if err == nil {
		// Never trust a backend's result structurally: an unreliable QPU
		// (or a fault injector standing in for one) can return corrupted
		// solutions with a straight face. An invalid order is a backend
		// failure like any other — eligible for degradation, never served.
		err = vetDecoded(enc.Query.NumRelations(), backend.Name(), d)
	}
	bm.Observe(time.Since(solveStart), err)
	solveSpan.End(err)

	return s.finishInto(ctx, req, backend.Name(), enc, key, perm, hit, d, err, sc, resp)
}

// finishInto turns one (possibly failed) backend outcome into a Response:
// classical degradation when enabled, translation of the canonical-
// labelled order back into the request's own relation indexing, true-cost
// re-scoring, and the optional optimal-cost comparison. It is shared by
// the single-request path and the batch path — in a batch, one solve of a
// deduplicated canonical instance is finished once per member request,
// each with its own permutation. Every Response field is (re)assigned, so
// a recycled Response never leaks stale state; resp.Order's backing array
// is reused in place.
func (s *Service) finishInto(ctx context.Context, req *Request, backendName string, enc *core.Encoding, key string, perm []int, hit bool, d *core.Decoded, err error, sc *reqScratch, resp *Response) error {
	producer := backendName
	degraded := false
	reason := ""
	if err != nil {
		if !s.cfg.Degrade || errors.Is(err, ErrBadRequest) {
			return err
		}
		fbCtx, fbSpan := obs.StartSpan(ctx, "degrade")
		d, producer = s.fallback(fbCtx, enc.Query)
		fbSpan.SetAttrStr("fallback", producer)
		fbSpan.End(nil)
		degraded, reason = true, err.Error()
		s.metrics.degrades.Add(1)
		// A degraded outcome, not an arbitration win: the fallback answered
		// only because the chosen backend failed.
		s.metrics.Backend(producer).RecordDegraded()
		if errors.Is(err, ErrPanic) {
			s.metrics.panics.Add(1)
		}
		obs.Logger(ctx).WarnContext(ctx, "backend failed, degrading to classical plan",
			"backend", backendName, "fallback", producer, "error", reason)
	}

	// The backend solved the canonical instance; translate the order back
	// into the request's relation indexing (costs are label-invariant).
	_, decodeSpan := obs.StartSpan(ctx, "decode")
	sc.inv = growInts(sc.inv, len(perm))
	for orig, canon := range perm {
		sc.inv[canon] = orig
	}
	order := resp.Order[:0]
	for _, canon := range d.Order {
		order = append(order, sc.inv[canon])
	}

	resp.Backend = producer
	resp.Order = order
	resp.Tree = ""
	if !req.Lean {
		resp.Tree = req.Query.Tree(order)
	}
	// Re-score by true plan cost in the request's own labelling: a
	// backend reporting a stale or energy-based cost cannot lie its way
	// into the response.
	resp.Cost = req.Query.Cost(order)
	resp.OptimalCost = 0
	resp.Optimal = false
	resp.LogicalQubits = enc.NumQubits()
	resp.CacheKey = key
	resp.CacheHit = hit
	resp.Degraded = degraded
	resp.DegradedReason = reason
	resp.Elapsed = 0
	if n := req.Query.NumRelations(); !req.Lean && s.cfg.CompareRelations > 0 && n <= s.cfg.CompareRelations {
		// The optimum of the canonical instance, computed once per cached
		// encoding (plan costs are invariant under relation relabelling),
		// replaces the per-request DP solve this comparison used to cost.
		if opt, err := enc.Optimal(); err == nil {
			resp.OptimalCost = opt.Cost
			resp.Optimal = resp.Cost <= opt.Cost*(1+1e-9)+1e-12
		}
	}
	decodeSpan.End(nil)
	return nil
}

// safeSolve invokes the backend with panic containment: one misbehaving
// backend must degrade its own request, never crash the daemon or leak a
// pool worker.
func (s *Service) safeSolve(ctx context.Context, backend Backend, enc *core.Encoding, p Params) (d *core.Decoded, err error) {
	defer func() {
		if r := recover(); r != nil {
			d = nil
			err = fmt.Errorf("service: backend %q panicked: %v: %w", backend.Name(), r, ErrPanic)
		}
	}()
	return backend.Solve(ctx, enc, p)
}

// vetDecoded checks that a backend result is a structurally valid join
// order over n relations.
func vetDecoded(n int, backend string, d *core.Decoded) error {
	if d == nil || !d.Valid {
		return fmt.Errorf("service: backend %q returned no valid join order", backend)
	}
	if !d.Order.IsPermutation(n) {
		return fmt.Errorf("service: backend %q returned order %v, not a permutation of %d relations",
			backend, d.Order, n)
	}
	return nil
}

// fallback is the last-resort classical path: the exact DP plan when the
// instance is small and deadline budget remains, the greedy plan
// otherwise. Greedy is pure microsecond-scale compute and needs no
// context, so it succeeds even when the deadline is already blown — the
// degraded answer is always available.
func (s *Service) fallback(ctx context.Context, q *join.Query) (*core.Decoded, string) {
	n := q.NumRelations()
	if s.cfg.CompareRelations > 0 && n <= s.cfg.CompareRelations {
		if deadline, ok := ctx.Deadline(); !ok || time.Until(deadline) > 10*time.Millisecond {
			if res, err := classical.OptimalContext(ctx, q); err == nil {
				return &core.Decoded{Valid: true, Order: res.Order, Cost: res.Cost}, "dp"
			}
		}
	}
	res := classical.Greedy(q)
	return &core.Decoded{Valid: true, Order: res.Order, Cost: res.Cost}, "greedy"
}

// solveQueryInto serves a QueryBackend request. The WL fingerprint is
// still computed — it is the response CacheKey and the cluster routing
// key — but no monolithic encoding is built or cached: the backend owns
// its own (per-part) encodings, and its order comes back in the request's
// own relation indexing, so no permutation translation happens either.
func (s *Service) solveQueryInto(ctx context.Context, backend QueryBackend, req *Request, sc *reqScratch, resp *Response) error {
	sum, _ := sc.fp.sum(req.Query, req.Spec)
	key := hex.EncodeToString(sum[:])
	obs.ActiveSpan(ctx).SetAttrBool("cache_hit", false)

	bm := s.metrics.Backend(backend.Name())
	solveCtx, solveSpan := obs.StartSpan(ctx, "solve")
	solveSpan.SetAttrStr("backend", backend.Name())
	solveStart := time.Now()
	qr, err := s.safeSolveQuery(solveCtx, backend, req)
	var d *core.Decoded
	qubits := 0
	if err == nil {
		d = &qr.Decoded
		qubits = qr.LogicalQubits
		err = vetDecoded(req.Query.NumRelations(), backend.Name(), d)
	}
	bm.Observe(time.Since(solveStart), err)
	solveSpan.End(err)

	producer := backend.Name()
	degraded := false
	reason := ""
	if err != nil {
		if !s.cfg.Degrade || errors.Is(err, ErrBadRequest) {
			return err
		}
		fbCtx, fbSpan := obs.StartSpan(ctx, "degrade")
		d, producer = s.fallback(fbCtx, req.Query)
		fbSpan.SetAttrStr("fallback", producer)
		fbSpan.End(nil)
		degraded, reason = true, err.Error()
		s.metrics.degrades.Add(1)
		s.metrics.Backend(producer).RecordDegraded()
		if errors.Is(err, ErrPanic) {
			s.metrics.panics.Add(1)
		}
		obs.Logger(ctx).WarnContext(ctx, "backend failed, degrading to classical plan",
			"backend", backend.Name(), "fallback", producer, "error", reason)
	}

	resp.Backend = producer
	resp.Order = append(resp.Order[:0], d.Order...)
	resp.Tree = ""
	if !req.Lean {
		resp.Tree = req.Query.Tree(resp.Order)
	}
	resp.Cost = req.Query.Cost(resp.Order)
	resp.OptimalCost = 0
	resp.Optimal = false
	resp.LogicalQubits = qubits
	resp.CacheKey = key
	resp.CacheHit = false
	resp.Degraded = degraded
	resp.DegradedReason = reason
	resp.Elapsed = 0
	if n := req.Query.NumRelations(); !req.Lean && s.cfg.CompareRelations > 0 && n <= s.cfg.CompareRelations {
		if opt, err := classical.OptimalContext(ctx, req.Query); err == nil {
			resp.OptimalCost = opt.Cost
			resp.Optimal = resp.Cost <= opt.Cost*(1+1e-9)+1e-12
		}
	}
	return nil
}

// safeSolveQuery is safeSolve for query-level backends: panic containment
// around SolveQuery.
func (s *Service) safeSolveQuery(ctx context.Context, backend QueryBackend, req *Request) (qr *QueryResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			qr = nil
			err = fmt.Errorf("service: backend %q panicked: %v: %w", backend.Name(), r, ErrPanic)
		}
	}()
	return backend.SolveQuery(ctx, req.Query, req.Spec, req.Params)
}
