package service

import (
	"testing"
	"time"
)

// TestHistogramQuantileInterpolation pins the in-bucket linear
// interpolation on the finite buckets.
func TestHistogramQuantileInterpolation(t *testing.T) {
	h := newHistogram()
	// 100 observations, all landing in the (2, 5] ms bucket.
	for i := 0; i < 100; i++ {
		h.observe(3 * time.Millisecond)
	}
	// Median of a bucket assumed uniform over (2, 5]: 2 + 0.5*(5-2) = 3.5.
	if got := h.quantile(0.50); got != 3.5 {
		t.Errorf("p50 = %v, want 3.5 (midpoint of the (2,5] bucket)", got)
	}
	if got := h.quantile(0.99); got != 2+0.99*3 {
		t.Errorf("p99 = %v, want %v", got, 2+0.99*3)
	}
}

// TestHistogramQuantileOverflow pins the terminal-bucket fix: a quantile
// landing in the overflow (+Inf) bucket must interpolate between the last
// finite bound and the largest observation, not report the raw bucket
// edge. Before the fix every overflow quantile collapsed to the last
// bound (10 s), under-reporting a 30 s tail by 3×.
func TestHistogramQuantileOverflow(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 100; i++ {
		h.observe(30 * time.Second) // far past the 10 s terminal bound
	}
	lastBound := latencyBucketMs[len(latencyBucketMs)-1]
	maxMs := 30000.0

	p50 := h.quantile(0.50)
	if want := lastBound + 0.5*(maxMs-lastBound); p50 != want {
		t.Errorf("p50 = %v, want %v (interpolated into overflow)", p50, want)
	}
	for _, q := range []float64{0.50, 0.90, 0.99} {
		v := h.quantile(q)
		if v <= lastBound {
			t.Errorf("quantile(%v) = %v, must exceed the last finite bound %v", q, v, lastBound)
		}
		if v > maxMs {
			t.Errorf("quantile(%v) = %v, must not exceed the max observation %v", q, v, maxMs)
		}
	}
}

// TestHistogramQuantileMixedTail checks a realistic split: a fast body
// with a heavy overflow tail keeps body quantiles in their buckets while
// tail quantiles track the observed maximum.
func TestHistogramQuantileMixedTail(t *testing.T) {
	h := newHistogram()
	for i := 0; i < 50; i++ {
		h.observe(3 * time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		h.observe(15 * time.Second)
	}
	if got := h.quantile(0.50); got != 5 {
		t.Errorf("p50 = %v, want 5 (upper edge of the fast bucket)", got)
	}
	// target 99 of 100: 50 finite + frac (99-50)/50 of [10000, 15000].
	if got, want := h.quantile(0.99), 10000+0.98*(15000-10000); got != want {
		t.Errorf("p99 = %v, want %v", got, want)
	}
	if p50, p90, p99 := h.quantile(0.5), h.quantile(0.9), h.quantile(0.99); !(p50 <= p90 && p90 <= p99) {
		t.Errorf("quantiles not monotone: p50=%v p90=%v p99=%v", p50, p90, p99)
	}
}

// TestHistogramQuantileEmpty: no observations means no statement.
func TestHistogramQuantileEmpty(t *testing.T) {
	h := newHistogram()
	if got := h.quantile(0.99); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
}

// TestMetricsReader exercises the typed read-side accessor: sorted names,
// per-backend snapshots without creation side effects, and the degraded
// counter kept distinct from wins.
func TestMetricsReader(t *testing.T) {
	m := NewMetrics()
	var _ MetricsReader = m

	m.Backend("tabu").Observe(3*time.Millisecond, nil)
	m.Backend("tabu").RecordWin()
	m.Backend("anneal").RecordLoss()
	m.Backend("greedy").RecordDegraded()

	if got := m.BackendNames(); len(got) != 3 ||
		got[0] != "anneal" || got[1] != "greedy" || got[2] != "tabu" {
		t.Fatalf("BackendNames() = %v, want sorted [anneal greedy tabu]", got)
	}

	ts, ok := m.ReadBackend("tabu")
	if !ok || ts.Wins != 1 || ts.Requests != 1 || ts.Latency.Count != 1 {
		t.Errorf("tabu snapshot = %+v ok=%v, want 1 win, 1 request, 1 latency obs", ts, ok)
	}
	gs, ok := m.ReadBackend("greedy")
	if !ok || gs.Degraded != 1 || gs.Wins != 0 {
		t.Errorf("greedy snapshot = %+v, want degraded=1 wins=0", gs)
	}

	// Reading an unknown backend must not lazily create it.
	if _, ok := m.ReadBackend("phantom"); ok {
		t.Error("ReadBackend fabricated a snapshot for an unknown backend")
	}
	if got := m.BackendNames(); len(got) != 3 {
		t.Errorf("ReadBackend created a backend entry: %v", got)
	}

	// The degraded counter also lands in the full JSON snapshot.
	snap := m.Snapshot(nil)
	if snap.Backends["greedy"].Degraded != 1 {
		t.Errorf("Snapshot degraded = %d, want 1", snap.Backends["greedy"].Degraded)
	}
}
