package service

import (
	"sync"
	"testing"

	"quantumjoin/internal/join"
)

// chainQuery builds a 4-relation chain with distinct cardinalities.
func chainQuery() *join.Query {
	return &join.Query{
		Relations: []join.Relation{
			{Name: "A", Card: 10},
			{Name: "B", Card: 100},
			{Name: "C", Card: 1000},
			{Name: "D", Card: 10000},
		},
		Predicates: []join.Predicate{
			{R1: 0, R2: 1, Sel: 0.1},
			{R1: 1, R2: 2, Sel: 0.01},
			{R1: 2, R2: 3, Sel: 0.1},
		},
	}
}

// permuted returns the same instance with the relation list reordered by
// perm (new index i holds old relation perm[i]) and predicates remapped.
func permuted(q *join.Query, perm []int) *join.Query {
	inv := make([]int, len(perm))
	for i, old := range perm {
		inv[old] = i
	}
	out := &join.Query{Relations: make([]join.Relation, len(perm))}
	for i, old := range perm {
		out.Relations[i] = q.Relations[old]
	}
	for _, p := range q.Predicates {
		out.Predicates = append(out.Predicates, join.Predicate{R1: inv[p.R1], R2: inv[p.R2], Sel: p.Sel})
	}
	return out
}

func TestFingerprintDeterministic(t *testing.T) {
	q := chainQuery()
	k1, _ := Fingerprint(q, EncodeSpec{Thresholds: 2})
	k2, _ := Fingerprint(q, EncodeSpec{Thresholds: 2})
	if k1 != k2 {
		t.Errorf("same query hashed differently: %s vs %s", k1, k2)
	}
}

func TestFingerprintPermutationInvariant(t *testing.T) {
	q := chainQuery()
	base, _ := Fingerprint(q, EncodeSpec{})
	for _, perm := range [][]int{
		{3, 2, 1, 0},
		{1, 0, 3, 2},
		{2, 3, 0, 1},
		{0, 2, 1, 3},
	} {
		qp := permuted(q, perm)
		if err := qp.Validate(); err != nil {
			t.Fatalf("permuted query invalid: %v", err)
		}
		key, _ := Fingerprint(qp, EncodeSpec{})
		if key != base {
			t.Errorf("permutation %v changed the fingerprint", perm)
		}
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	q := chainQuery()
	base, _ := Fingerprint(q, EncodeSpec{})

	sel := chainQuery()
	sel.Predicates[0].Sel = 0.5
	if k, _ := Fingerprint(sel, EncodeSpec{}); k == base {
		t.Error("different selectivity produced the same fingerprint")
	}

	card := chainQuery()
	card.Relations[2].Card = 7
	if k, _ := Fingerprint(card, EncodeSpec{}); k == base {
		t.Error("different cardinality produced the same fingerprint")
	}

	if k, _ := Fingerprint(q, EncodeSpec{Thresholds: 5}); k == base {
		t.Error("different threshold count produced the same fingerprint")
	}
	if k, _ := Fingerprint(q, EncodeSpec{Omega: 0.5}); k == base {
		t.Error("different omega produced the same fingerprint")
	}
}

func TestEncodingCacheHitMissAndPermutation(t *testing.T) {
	c := NewEncodingCache(8)
	q := chainQuery()
	enc1, _, _, hit, err := c.Encoding(q, EncodeSpec{Thresholds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first lookup reported a cache hit")
	}
	enc2, _, perm, hit, err := c.Encoding(permuted(q, []int{3, 1, 0, 2}), EncodeSpec{Thresholds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("permuted lookup missed the cache")
	}
	if enc1 != enc2 {
		t.Error("permuted lookup returned a different encoding object")
	}
	// The permutation must relabel the permuted query onto the canonical
	// instance the encoding was built for.
	qp := permuted(q, []int{3, 1, 0, 2})
	for i, canon := range perm {
		if got, want := qp.Relations[i].Card, enc2.Query.Relations[canon].Card; got != want {
			t.Errorf("perm[%d]=%d maps card %v onto %v", i, canon, got, want)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / size 1", st)
	}
}

func TestEncodingCacheLRUEviction(t *testing.T) {
	c := NewEncodingCache(2)
	queries := []*join.Query{chainQuery(), chainQuery(), chainQuery()}
	queries[1].Relations[0].Card = 20
	queries[2].Relations[0].Card = 30
	for _, q := range queries {
		if _, _, _, _, err := c.Encoding(q, EncodeSpec{Thresholds: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("cache size = %d after 3 inserts into capacity 2", got)
	}
	// The oldest entry (queries[0]) must have been evicted.
	if _, _, _, hit, _ := c.Encoding(queries[0], EncodeSpec{Thresholds: 1}); hit {
		t.Error("evicted entry reported a cache hit")
	}
	if _, _, _, hit, _ := c.Encoding(queries[2], EncodeSpec{Thresholds: 1}); !hit {
		t.Error("recently used entry was evicted")
	}
}

// TestEncodingCacheConcurrentEviction hammers a tiny cache from many
// goroutines with more distinct query shapes than it can hold, forcing
// constant eviction (run under -race). Afterwards the size must respect
// capacity and every lookup must be accounted as exactly one hit or miss.
func TestEncodingCacheConcurrentEviction(t *testing.T) {
	const capacity, goroutines, perG, shapes = 3, 8, 12, 7
	c := NewEncodingCache(capacity)

	// shapes distinct instances: same chain, different base cardinality.
	queries := make([]*join.Query, shapes)
	for i := range queries {
		q := chainQuery()
		q.Relations[0].Card = float64(10 * (i + 1))
		queries[i] = q
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				q := queries[(g*perG+i)%shapes]
				enc, _, _, _, err := c.Encoding(q, EncodeSpec{Thresholds: 1})
				if err != nil {
					t.Errorf("encoding failed: %v", err)
					return
				}
				// The returned encoding must match the query that asked
				// for it even while other goroutines churn the cache.
				if got := enc.Query.NumRelations(); got != q.NumRelations() {
					t.Errorf("encoding has %d relations, query %d", got, q.NumRelations())
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if got := c.Len(); got > capacity {
		t.Errorf("cache size %d exceeds capacity %d", got, capacity)
	}
	st := c.Stats()
	if total := st.Hits + st.Misses; total != goroutines*perG {
		t.Errorf("hits+misses = %d, want %d lookups", total, goroutines*perG)
	}
	if st.Misses < shapes {
		t.Errorf("misses = %d, want at least one per distinct shape (%d)", st.Misses, shapes)
	}
	if st.Size != c.Len() {
		t.Errorf("stats size %d != Len %d", st.Size, c.Len())
	}

	// Post-churn determinism: with no concurrent evictors, a back-to-back
	// repeat of the same shape must hit and bump the hit counter by one.
	// (During the churn phase cyclic LRU access may legitimately never hit.)
	if _, _, _, _, err := c.Encoding(queries[0], EncodeSpec{Thresholds: 1}); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().Hits // after priming: the priming lookup itself may hit
	if _, _, _, hit, err := c.Encoding(queries[0], EncodeSpec{Thresholds: 1}); err != nil || !hit {
		t.Errorf("repeat lookup hit=%v err=%v, want a hit", hit, err)
	}
	if after := c.Stats().Hits; after != before+1 {
		t.Errorf("hit counter went %d -> %d, want +1", before, after)
	}
}
