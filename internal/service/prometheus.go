package service

import (
	"io"
	"sort"
	"time"

	"quantumjoin/internal/obs"
)

// breakerStates enumerates the values qjoind_backend_breaker_state takes,
// exposed one-hot so dashboards can sum/alert without string parsing.
var breakerStates = []string{HealthOK, HealthOpen, HealthHalfOpen}

// WritePrometheus renders every service metric in Prometheus text
// exposition format 0.0.4: the counters and histograms behind
// /metrics.json, per-backend latency histograms with cumulative buckets
// in seconds, breaker states, cache hit/miss counters, hybrid
// arbitration outcomes, and (when tracing is on) tracer throughput.
// Served at /metrics; /metrics.json keeps the JSON snapshot.
func (s *Service) WritePrometheus(w io.Writer) error {
	p := obs.NewPromWriter(w)
	m := s.metrics

	p.Family("qjoind_uptime_seconds", "Seconds since the service started.", "gauge")
	p.Sample("qjoind_uptime_seconds", nil, time.Since(m.start).Seconds())
	p.Family("qjoind_requests_total", "Optimisation requests received.", "counter")
	p.Sample("qjoind_requests_total", nil, float64(m.requests.Load()))
	p.Family("qjoind_request_errors_total", "Requests that returned an error.", "counter")
	p.Sample("qjoind_request_errors_total", nil, float64(m.errors.Load()))
	p.Family("qjoind_in_flight_requests", "Requests currently being served.", "gauge")
	p.Sample("qjoind_in_flight_requests", nil, float64(m.inFlight.Load()))
	p.Family("qjoind_requests_shed_total", "Requests rejected by load shedding (503).", "counter")
	p.Sample("qjoind_requests_shed_total", nil, float64(m.sheds.Load()))
	p.Family("qjoind_requests_degraded_total", "Requests answered by the classical fallback after a backend failure.", "counter")
	p.Sample("qjoind_requests_degraded_total", nil, float64(m.degrades.Load()))
	p.Family("qjoind_panics_recovered_total", "Backend/worker panics recovered.", "counter")
	p.Sample("qjoind_panics_recovered_total", nil, float64(m.panics.Load()))

	p.Family("qjoind_batch_envelopes_total", "Batch envelopes accepted on /v1/optimize/batch.", "counter")
	p.Sample("qjoind_batch_envelopes_total", nil, float64(m.batchEnvelopes.Load()))
	p.Family("qjoind_batch_items_total", "Items across all batch envelopes.", "counter")
	p.Sample("qjoind_batch_items_total", nil, float64(m.batchItems.Load()))
	p.Family("qjoind_batch_unique_total", "Deduplicated batch instances actually solved.", "counter")
	p.Sample("qjoind_batch_unique_total", nil, float64(m.batchUnique.Load()))

	cs := s.cache.Stats()
	p.Family("qjoind_encoding_cache_hits_total", "Encoding cache hits.", "counter")
	p.Sample("qjoind_encoding_cache_hits_total", nil, float64(cs.Hits))
	p.Family("qjoind_encoding_cache_misses_total", "Encoding cache misses.", "counter")
	p.Sample("qjoind_encoding_cache_misses_total", nil, float64(cs.Misses))
	p.Family("qjoind_encoding_cache_entries", "Encodings currently cached.", "gauge")
	p.Sample("qjoind_encoding_cache_entries", nil, float64(cs.Size))
	p.Family("qjoind_encoding_cache_capacity", "Encoding cache capacity.", "gauge")
	p.Sample("qjoind_encoding_cache_capacity", nil, float64(cs.Capacity))

	// Per-backend families: one sample per backend, sorted for stable
	// scrapes.
	m.mu.RLock()
	names := make([]string, 0, len(m.backends))
	for name := range m.backends {
		names = append(names, name)
	}
	backends := make(map[string]*BackendMetrics, len(m.backends))
	for name, b := range m.backends {
		backends[name] = b
	}
	m.mu.RUnlock()
	sort.Strings(names)

	counter := func(metric, help string, load func(*BackendMetrics) int64) {
		p.Family(metric, help, "counter")
		for _, name := range names {
			p.Sample(metric, map[string]string{"backend": name}, float64(load(backends[name])))
		}
	}
	counter("qjoind_backend_requests_total", "Solves attempted per backend.",
		func(b *BackendMetrics) int64 { return b.requests.Load() })
	counter("qjoind_backend_errors_total", "Failed solves per backend.",
		func(b *BackendMetrics) int64 { return b.errors.Load() })
	counter("qjoind_backend_wins_total", "Hybrid arbitration wins per backend.",
		func(b *BackendMetrics) int64 { return b.wins.Load() })
	counter("qjoind_backend_losses_total", "Hybrid arbitration losses per backend.",
		func(b *BackendMetrics) int64 { return b.losses.Load() })
	counter("qjoind_backend_degraded_total", "Degraded outcomes per backend: its answer was used only because every primary candidate failed.",
		func(b *BackendMetrics) int64 { return b.degraded.Load() })
	counter("qjoind_backend_retries_total", "Retried solve attempts per backend.",
		func(b *BackendMetrics) int64 { return b.retries.Load() })
	counter("qjoind_backend_faults_total", "Faults observed or injected per backend.",
		func(b *BackendMetrics) int64 { return b.faults.Load() })

	p.Family("qjoind_backend_latency_seconds", "Solve latency per backend.", "histogram")
	for _, name := range names {
		h := backends[name].lat
		bounds := make([]float64, len(latencyBucketMs))
		counts := make([]int64, len(latencyBucketMs))
		for i, ms := range latencyBucketMs {
			bounds[i] = ms / 1000
			counts[i] = h.counts[i].Load()
		}
		overflow := h.counts[len(latencyBucketMs)].Load()
		sum := float64(h.sumMicros.Load()) / 1e6
		p.Histogram("qjoind_backend_latency_seconds", map[string]string{"backend": name},
			bounds, counts, overflow, sum)
	}

	health := s.Health()
	if len(health) > 0 {
		hnames := make([]string, 0, len(health))
		for name := range health {
			hnames = append(hnames, name)
		}
		sort.Strings(hnames)
		p.Family("qjoind_backend_breaker_state", "Circuit-breaker state per backend (one-hot over state label).", "gauge")
		for _, name := range hnames {
			for _, st := range breakerStates {
				v := 0.0
				if health[name].State == st {
					v = 1
				}
				p.Sample("qjoind_backend_breaker_state", map[string]string{"backend": name, "state": st}, v)
			}
		}
		p.Family("qjoind_backend_breaker_trips_total", "Breaker transitions into the open state.", "counter")
		for _, name := range hnames {
			p.Sample("qjoind_backend_breaker_trips_total", map[string]string{"backend": name}, float64(health[name].Trips))
		}
		p.Family("qjoind_backend_breaker_state_age_seconds", "Seconds since the breaker's last state transition.", "gauge")
		for _, name := range hnames {
			p.Sample("qjoind_backend_breaker_state_age_seconds", map[string]string{"backend": name}, health[name].StateAgeSeconds)
		}
	}

	if t := s.cfg.Tracer; t != nil {
		st := t.Stats()
		p.Family("qjoind_traces_started_total", "Root spans opened.", "counter")
		p.Sample("qjoind_traces_started_total", nil, float64(st.Started))
		p.Family("qjoind_traces_stored_total", "Traces kept by the sampling policy.", "counter")
		p.Sample("qjoind_traces_stored_total", nil, float64(st.Stored))
		p.Family("qjoind_traces_dropped_total", "Traces dropped by the sampling policy.", "counter")
		p.Sample("qjoind_traces_dropped_total", nil, float64(st.Dropped))
	}

	s.collectorsMu.RLock()
	var collectors []func(*obs.PromWriter)
	collectors = append(collectors, s.promCollectors...)
	s.collectorsMu.RUnlock()
	for _, c := range collectors {
		c(p)
	}
	return p.Err()
}

// AddPromCollector registers an extra metric-family writer appended to
// every /metrics scrape — the hook subsystems outside the service (the
// learned scheduler, cluster layers) use to publish their families without
// the service importing them.
func (s *Service) AddPromCollector(c func(*obs.PromWriter)) {
	s.collectorsMu.Lock()
	s.promCollectors = append(s.promCollectors, c)
	s.collectorsMu.Unlock()
}
