package service

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"quantumjoin/internal/anneal"
	"quantumjoin/internal/classical"
	"quantumjoin/internal/core"
	"quantumjoin/internal/qaoa"
	"quantumjoin/internal/qsim"
	"quantumjoin/internal/qubo"
	"quantumjoin/internal/topology"
)

// RegistryConfig tunes the built-in backends of DefaultRegistry.
type RegistryConfig struct {
	// PegasusM sets the annealer hardware graph size (default 6; 16 = the
	// full Advantage system, expensive to construct).
	PegasusM int
	// MaxQAOAQubits caps the statevector simulation of the qaoa backend
	// (default 16 — 2^16 amplitudes keep request latency service-grade).
	MaxQAOAQubits int
	// QAOALayers is the QAOA depth p (default 1, as in the paper).
	QAOALayers int
	// QAOAIterations is the classical optimiser budget (default 8).
	QAOAIterations int
	// QAOAPrecision selects the statevector width of the qaoa backend
	// (default qsim.Complex128; qsim.Complex64 halves simulator memory
	// traffic within the error bound pinned by the qaoa precision tests).
	QAOAPrecision qsim.Precision
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.PegasusM == 0 {
		c.PegasusM = 6
	}
	if c.MaxQAOAQubits == 0 {
		c.MaxQAOAQubits = 16
	}
	if c.QAOALayers == 0 {
		c.QAOALayers = 1
	}
	if c.QAOAIterations == 0 {
		c.QAOAIterations = 8
	}
	return c
}

// DefaultRegistry registers every built-in solver behind the Backend
// interface: the simulated quantum annealer, tabu search, QAOA simulation,
// the exact MILP solver, and the classical DP/greedy reference baselines.
func DefaultRegistry(cfg RegistryConfig) *Registry {
	cfg = cfg.withDefaults()
	r := NewRegistry()
	for _, b := range []Backend{
		NewAnnealBackend(cfg.PegasusM),
		NewTabuBackend(),
		qaoaBackend{maxQubits: cfg.MaxQAOAQubits, layers: cfg.QAOALayers, iterations: cfg.QAOAIterations, precision: cfg.QAOAPrecision},
		NewMILPBackend(),
		NewDPBackend(),
		NewGreedyBackend(),
	} {
		if err := r.Register(b); err != nil {
			// Built-in names are distinct by construction.
			panic(err)
		}
	}
	return r
}

// decoderPool recycles decode scratch across backend solves: decoding a
// few hundred samples per request used to allocate an order slice per
// valid sample; with pooled core.Decoders only the single returned
// Decoded escapes.
var decoderPool = sync.Pool{New: func() any { return new(core.Decoder) }}

// bestValid decodes every sample and returns the cheapest valid join
// order, mirroring the §3.5 post-processing.
func bestValid(enc *core.Encoding, assignments [][]bool) (*core.Decoded, error) {
	dec := decoderPool.Get().(*core.Decoder)
	defer decoderPool.Put(dec)
	best := new(core.Decoded)
	if _, ok := dec.BestValidInto(enc, assignments, best); !ok {
		return nil, fmt.Errorf("service: no valid join order among %d samples", len(assignments))
	}
	return best, nil
}

// annealBackend samples the encoding on the simulated D-Wave-style
// annealer. The device (including its Pegasus hardware graph) is built
// once and shared across requests; Sample does not mutate it.
type annealBackend struct {
	dev *anneal.Device
}

// NewAnnealBackend builds the quantum-annealing backend on a Pegasus graph
// of the given size (0 selects the default 6). Service reads run in
// batched replica groups: 32 interleaved reads per sweep keeps the strided
// state resident while amortising the problem-array walk.
func NewAnnealBackend(pegasusM int) Backend {
	if pegasusM <= 0 {
		pegasusM = 6
	}
	g, _ := topology.Pegasus(pegasusM)
	dev := anneal.NewDevice(g)
	dev.BatchReads = 32
	return &annealBackend{dev: dev}
}

func (b *annealBackend) Name() string { return "anneal" }

func (b *annealBackend) Solve(ctx context.Context, enc *core.Encoding, p Params) (*core.Decoded, error) {
	reads := p.Reads
	if reads <= 0 {
		reads = 500
	}
	dev := b.dev
	if len(p.InitialState) > 0 {
		// Warm start: Device is shared across requests, so set the initial
		// state on a shallow copy (the hardware graph stays shared,
		// read-only). SampleEmbeddedContext expands the logical assignment
		// onto chains and switches the sampler to a reverse-annealing
		// schedule.
		warm := *b.dev
		warm.InitialState = p.InitialState
		dev = &warm
	}
	out, err := dev.SampleContext(ctx, enc.QUBO, reads, 20, p.Seed)
	if err != nil {
		return nil, err
	}
	return bestValid(enc, out.Assignments)
}

// SolveBatch implements BatchSolver: the whole batch runs through
// anneal.Device.SampleBatchContext in one array pass, sharing the ICE
// perturbation scratch across each job's reads instead of allocating a
// problem copy per read. Results are bit-identical to per-instance Solve.
func (b *annealBackend) SolveBatch(ctx context.Context, encs []*core.Encoding, ps []Params) ([]*core.Decoded, []error) {
	jobs := make([]anneal.BatchJob, len(encs))
	for i, enc := range encs {
		reads := ps[i].Reads
		if reads <= 0 {
			reads = 500
		}
		jobs[i] = anneal.BatchJob{
			Q:                enc.QUBO,
			Reads:            reads,
			AnnealTimeMicros: 20,
			Seed:             ps[i].Seed,
			InitialState:     ps[i].InitialState,
		}
	}
	outs, errs := b.dev.SampleBatchContext(ctx, jobs)
	ds := make([]*core.Decoded, len(encs))
	for i := range encs {
		if errs[i] != nil {
			continue
		}
		ds[i], errs[i] = bestValid(encs[i], outs[i].Assignments)
	}
	return ds, errs
}

// tabuBackend runs the multistart tabu-search heuristic on the QUBO — the
// classical reference heuristic commonly paired with annealers.
type tabuBackend struct{}

// NewTabuBackend builds the tabu-search backend.
func NewTabuBackend() Backend { return tabuBackend{} }

func (tabuBackend) Name() string { return "tabu" }

func (tabuBackend) Solve(ctx context.Context, enc *core.Encoding, p Params) (*core.Decoded, error) {
	restarts := p.Reads
	if restarts <= 0 {
		restarts = 8
	}
	ts := qubo.TabuSearch{Restarts: restarts, InitialState: p.InitialState}
	sol, err := ts.SolveContext(ctx, enc.QUBO, rand.New(rand.NewSource(p.Seed)))
	if err != nil {
		return nil, err
	}
	return bestValid(enc, [][]bool{sol.Assignment})
}

// SolveBatch implements BatchSolver: all instances run through
// qubo.SolveTabuBatchContext with one shared search arena (state, delta,
// and tabu-tenure buffers), so per-restart allocations are paid once per
// batch instead of once per instance. Results match per-instance Solve.
func (tabuBackend) SolveBatch(ctx context.Context, encs []*core.Encoding, ps []Params) ([]*core.Decoded, []error) {
	jobs := make([]qubo.TabuJob, len(encs))
	for i, enc := range encs {
		restarts := ps[i].Reads
		if restarts <= 0 {
			restarts = 8
		}
		jobs[i] = qubo.TabuJob{
			Q:      enc.QUBO,
			Search: qubo.TabuSearch{Restarts: restarts, InitialState: ps[i].InitialState},
			Seed:   ps[i].Seed,
		}
	}
	sols, errs := qubo.SolveTabuBatchContext(ctx, jobs)
	ds := make([]*core.Decoded, len(encs))
	for i := range encs {
		if errs[i] != nil {
			continue
		}
		ds[i], errs[i] = bestValid(encs[i], [][]bool{sols[i].Assignment})
	}
	return ds, errs
}

// qaoaBackend runs the hybrid QAOA loop on the statevector simulator.
type qaoaBackend struct {
	maxQubits  int
	layers     int
	iterations int
	precision  qsim.Precision
}

// NewQAOABackend builds the QAOA backend with the given statevector cap,
// circuit depth p, and classical optimiser budget (Complex128 precision).
func NewQAOABackend(maxQubits, layers, iterations int) Backend {
	return qaoaBackend{maxQubits: maxQubits, layers: layers, iterations: iterations}
}

func (qaoaBackend) Name() string { return "qaoa" }

func (b qaoaBackend) options(shots int) qaoa.RunOptions {
	return qaoa.RunOptions{
		Layers:    b.layers,
		Optimizer: qaoa.AQGD{Iterations: b.iterations},
		Shots:     shots,
		Precision: b.precision,
	}
}

func (b qaoaBackend) decodeBest(enc *core.Encoding, out qaoa.Result) (*core.Decoded, error) {
	assignments := make([][]bool, len(out.Samples))
	for i, basis := range out.Samples {
		assignments[i] = qsim.BitsOf(basis, enc.QUBO.N())
	}
	return bestValid(enc, assignments)
}

func (b qaoaBackend) Solve(ctx context.Context, enc *core.Encoding, p Params) (*core.Decoded, error) {
	if n := enc.NumQubits(); n > b.maxQubits {
		return nil, fmt.Errorf("service: qaoa backend: %d logical qubits exceed the statevector budget of %d: %w", n, b.maxQubits, ErrBadRequest)
	}
	shots := p.Reads
	if shots <= 0 {
		shots = 256
	}
	rngs := [1]*rand.Rand{rand.New(rand.NewSource(p.Seed))}
	// RunSeedsContext checks the deadline before every optimiser energy
	// evaluation and reuses a pooled statevector buffer across them.
	outs, err := qaoa.RunSeedsContext(ctx, enc.QUBO, b.options(shots), rngs[:])
	if err != nil {
		return nil, err
	}
	return b.decodeBest(enc, outs[0])
}

// SolveBatch implements BatchSolver: instances sharing an encoding and a
// shot budget are optimised once (the classical tuner is deterministic and
// seed-independent) and sampled for all their seeds in one batched scan of
// the final statevector via qaoa.RunSeedsContext. Results are bit-identical
// to per-instance Solve.
func (b qaoaBackend) SolveBatch(ctx context.Context, encs []*core.Encoding, ps []Params) ([]*core.Decoded, []error) {
	ds := make([]*core.Decoded, len(encs))
	errs := make([]error, len(encs))
	type groupKey struct {
		enc   *core.Encoding
		shots int
	}
	order := make([]groupKey, 0, len(encs))
	members := make(map[groupKey][]int, len(encs))
	for i, enc := range encs {
		if n := enc.NumQubits(); n > b.maxQubits {
			errs[i] = fmt.Errorf("service: qaoa backend: %d logical qubits exceed the statevector budget of %d: %w", n, b.maxQubits, ErrBadRequest)
			continue
		}
		shots := ps[i].Reads
		if shots <= 0 {
			shots = 256
		}
		gk := groupKey{enc: enc, shots: shots}
		if _, ok := members[gk]; !ok {
			order = append(order, gk)
		}
		members[gk] = append(members[gk], i)
	}
	for _, gk := range order {
		idxs := members[gk]
		rngs := make([]*rand.Rand, len(idxs))
		for r, i := range idxs {
			rngs[r] = rand.New(rand.NewSource(ps[i].Seed))
		}
		outs, err := qaoa.RunSeedsContext(ctx, gk.enc.QUBO, b.options(gk.shots), rngs)
		if err != nil {
			for _, i := range idxs {
				errs[i] = err
			}
			continue
		}
		for r, i := range idxs {
			ds[i], errs[i] = b.decodeBest(gk.enc, outs[r])
		}
	}
	return ds, errs
}

// milpBackend solves the BILP model exactly with the built-in
// LP-relaxation branch-and-bound — optimal w.r.t. the
// threshold-approximated cost.
type milpBackend struct{}

// NewMILPBackend builds the exact MILP backend.
func NewMILPBackend() Backend { return milpBackend{} }

func (milpBackend) Name() string { return "milp" }

func (milpBackend) Solve(ctx context.Context, enc *core.Encoding, p Params) (*core.Decoded, error) {
	// The branch-and-bound search checks the context at every node, so a
	// request deadline interrupts deep searches mid-proof.
	d, err := enc.SolveMILPContext(ctx)
	if err != nil {
		return nil, err
	}
	return &d, nil
}

// dpBackend is the exact classical baseline: DP over relation subsets.
type dpBackend struct{}

// NewDPBackend builds the exact dynamic-programming backend.
func NewDPBackend() Backend { return dpBackend{} }

func (dpBackend) Name() string { return "dp" }

func (dpBackend) Solve(ctx context.Context, enc *core.Encoding, p Params) (*core.Decoded, error) {
	// The subset sweep polls the context, so a request deadline interrupts
	// the table fill on large instances instead of blowing the budget.
	res, err := classical.OptimalContext(ctx, enc.Query)
	if err != nil {
		return nil, err
	}
	return &core.Decoded{Valid: true, Order: res.Order, Cost: res.Cost}, nil
}

// greedyBackend is the min-intermediate-cardinality greedy baseline.
type greedyBackend struct{}

// NewGreedyBackend builds the greedy baseline backend.
func NewGreedyBackend() Backend { return greedyBackend{} }

func (greedyBackend) Name() string { return "greedy" }

func (greedyBackend) Solve(ctx context.Context, enc *core.Encoding, p Params) (*core.Decoded, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("service: greedy backend cancelled: %w", err)
	}
	res := classical.Greedy(enc.Query)
	return &core.Decoded{Valid: true, Order: res.Order, Cost: res.Cost}, nil
}
