package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/obs"
)

// BatchStats summarises one batch envelope: how many items it carried and
// how many deduplicated canonical instances were actually solved.
type BatchStats struct {
	Items  int `json:"items"`
	Unique int `json:"unique"`
}

// batchGroup is one deduplicated canonical instance: every member request
// shares the same cache key, backend, and solver params, so one solve
// serves them all. Members keep their own relation permutation — two
// queries that are relabellings of each other share the canonical solve
// but decode back into their own indexing.
type batchGroup struct {
	name    string
	backend Backend
	enc     *core.Encoding
	key     string
	params  Params
	members []batchMember

	d   *core.Decoded
	err error
}

type batchMember struct {
	idx  int
	perm []int
	hit  bool
}

// OptimizeBatch runs a whole envelope of requests as one unit of work:
// one envelope-level deadline (per-item timeouts are ignored), one worker
// pool slot, identical items deduplicated into a single solve, and
// backends with a BatchSolver fast path invoked once for all their
// instances. Items fail independently — the returned slices are
// index-aligned with reqs, and exactly one of resps[i]/errs[i] is non-nil
// per item. The whole envelope is rejected (every item erroring
// identically) only when the pool itself refuses the slot.
func (s *Service) OptimizeBatch(ctx context.Context, reqs []*Request, timeout time.Duration) ([]*Response, []error, BatchStats) {
	start := time.Now()
	stats := BatchStats{Items: len(reqs)}
	resps := make([]*Response, len(reqs))
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return resps, errs, stats
	}
	// Each item counts as a request in the service-wide counters so the
	// sequential and batch paths are comparable on /metrics.
	s.metrics.batchEnvelopes.Add(1)
	s.metrics.batchItems.Add(int64(len(reqs)))
	s.metrics.requests.Add(int64(len(reqs)))
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	ctx, span := s.cfg.Tracer.Start(ctx, "optimize.batch")
	span.SetAttr("items", len(reqs))

	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	run := s.pool.Run
	if s.cfg.Shed {
		run = s.pool.TryRun
	}
	if err := run(ctx, func(ctx context.Context) {
		stats.Unique = s.solveBatch(ctx, reqs, resps, errs)
	}); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.sheds.Add(1)
			span.SetAttr("shed", true)
		}
		if errors.Is(err, ErrPanic) {
			s.metrics.panics.Add(1)
		}
		for i := range errs {
			if errs[i] == nil && resps[i] == nil {
				errs[i] = err
			}
		}
	}

	nerr := 0
	var firstErr error
	for _, e := range errs {
		if e != nil {
			nerr++
			if firstErr == nil {
				firstErr = e
			}
		}
	}
	s.metrics.errors.Add(int64(nerr))
	s.metrics.batchUnique.Add(int64(stats.Unique))
	elapsed := time.Since(start)
	for _, r := range resps {
		if r != nil {
			r.Elapsed = elapsed
		}
	}
	span.SetAttr("unique", stats.Unique)
	span.SetAttr("item_errors", nerr)
	if nerr == len(reqs) {
		// A fully failed envelope is an error trace; partial failures are
		// kept visible via the item_errors attribute instead.
		span.End(firstErr)
	} else {
		span.End(nil)
	}
	return resps, errs, stats
}

// solveBatch runs on a pool worker: per-item validation and (cached)
// encoding, deduplication into canonical groups, grouped solving with the
// BatchSolver fast path where available, and per-member finishing. It
// returns the number of deduplicated groups solved.
func (s *Service) solveBatch(ctx context.Context, reqs []*Request, resps []*Response, errs []error) int {
	var groups []*batchGroup
	byKey := make(map[string]*batchGroup)
	for i, req := range reqs {
		if req == nil || req.Query == nil {
			errs[i] = fmt.Errorf("service: batch item %d has no query: %w", i, ErrBadRequest)
			continue
		}
		if err := req.Query.Validate(); err != nil {
			errs[i] = fmt.Errorf("service: batch item %d: invalid query: %v: %w", i, err, ErrBadRequest)
			continue
		}
		name := req.Backend
		if name == "" {
			name = s.cfg.DefaultBackend
		}
		backend, ok := s.reg.Get(name)
		if !ok {
			errs[i] = fmt.Errorf("service: batch item %d: unknown backend %q (have: %s): %w",
				i, name, strings.Join(s.reg.Names(), ", "), ErrBadRequest)
			continue
		}
		enc, key, perm, hit, err := s.cache.EncodingContext(ctx, req.Query, req.Spec)
		if err != nil {
			errs[i] = fmt.Errorf("service: batch item %d: encoding failed: %v: %w", i, err, ErrBadRequest)
			continue
		}
		// Warm-started and hybrid-tuned items are never deduplicated:
		// their extra inputs are not part of the group key.
		p := req.Params
		gk := fmt.Sprintf("!%d", i)
		if len(p.InitialState) == 0 && p.Hybrid.Strategy == "" && len(p.Hybrid.Portfolio) == 0 && p.Hybrid.HedgeDelay == 0 {
			gk = fmt.Sprintf("%s|%s|%d|%d", key, name, p.Reads, p.Seed)
		}
		g := byKey[gk]
		if g == nil {
			g = &batchGroup{name: name, backend: backend, enc: enc, key: key, params: p}
			byKey[gk] = g
			groups = append(groups, g)
		}
		g.members = append(g.members, batchMember{idx: i, perm: perm, hit: hit})
	}

	// Partition groups by backend in first-appearance order, so a batch
	// spanning several backends still makes one fast-path call each.
	var order []string
	perBackend := make(map[string][]*batchGroup)
	for _, g := range groups {
		if _, ok := perBackend[g.name]; !ok {
			order = append(order, g.name)
		}
		perBackend[g.name] = append(perBackend[g.name], g)
	}

	for _, name := range order {
		gs := perBackend[name]
		bm := s.metrics.Backend(name)
		if bs, ok := gs[0].backend.(BatchSolver); ok {
			encs := make([]*core.Encoding, len(gs))
			ps := make([]Params, len(gs))
			for gi, g := range gs {
				encs[gi] = g.enc
				ps[gi] = g.params
			}
			solveCtx, span := obs.StartSpan(ctx, "solve.batch")
			span.SetAttr("backend", name)
			span.SetAttr("instances", len(gs))
			solveStart := time.Now()
			ds, berrs := s.safeSolveBatch(solveCtx, bs, encs, ps)
			// Per-instance latency is the amortised share of the batched
			// call — the histogram then reflects per-query service rate.
			per := time.Since(solveStart) / time.Duration(len(gs))
			for gi, g := range gs {
				err := berrs[gi]
				if err == nil {
					err = vetDecoded(g.enc, name, ds[gi])
				}
				bm.Observe(per, err)
				g.d, g.err = ds[gi], err
			}
			span.End(nil)
		} else {
			for _, g := range gs {
				solveCtx, span := obs.StartSpan(ctx, "solve")
				span.SetAttr("backend", name)
				solveStart := time.Now()
				d, err := s.safeSolve(solveCtx, g.backend, g.enc, g.params)
				if err == nil {
					err = vetDecoded(g.enc, name, d)
				}
				bm.Observe(time.Since(solveStart), err)
				span.End(err)
				g.d, g.err = d, err
			}
		}
	}

	for _, g := range groups {
		for _, m := range g.members {
			resp, err := s.finish(ctx, reqs[m.idx], g.name, g.enc, g.key, m.perm, m.hit, g.d, g.err)
			if err != nil {
				errs[m.idx] = err
			} else {
				resps[m.idx] = resp
			}
		}
	}
	return len(groups)
}

// safeSolveBatch invokes a BatchSolver with the same panic containment as
// safeSolve, and normalises a misbehaving implementation's slice lengths.
func (s *Service) safeSolveBatch(ctx context.Context, bs BatchSolver, encs []*core.Encoding, ps []Params) (ds []*core.Decoded, errs []error) {
	defer func() {
		if r := recover(); r != nil {
			ds = make([]*core.Decoded, len(encs))
			errs = make([]error, len(encs))
			for i := range errs {
				errs[i] = fmt.Errorf("service: backend %q panicked in batch: %v: %w", bs.Name(), r, ErrPanic)
			}
		}
	}()
	ds, errs = bs.SolveBatch(ctx, encs, ps)
	if len(ds) != len(encs) || len(errs) != len(encs) {
		err := fmt.Errorf("service: backend %q returned %d results / %d errors for %d batch instances",
			bs.Name(), len(ds), len(errs), len(encs))
		ds = make([]*core.Decoded, len(encs))
		errs = make([]error, len(encs))
		for i := range errs {
			errs[i] = err
		}
	}
	return ds, errs
}
