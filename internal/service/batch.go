package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/obs"
)

// BatchStats summarises one batch envelope: how many items it carried and
// how many deduplicated canonical instances were actually solved.
type BatchStats struct {
	Items  int `json:"items"`
	Unique int `json:"unique"`
}

// batchGroup is one deduplicated canonical instance: every member request
// shares the same cache key, backend, and solver params, so one solve
// serves them all. Members keep their own relation permutation — two
// queries that are relabellings of each other share the canonical solve
// but decode back into their own indexing.
type batchGroup struct {
	name    string
	backend Backend
	enc     *core.Encoding
	key     string
	params  Params
	members []batchMember

	d   *core.Decoded
	err error
}

// batchMember references its permutation as an offset into the batch
// scratch's shared perm arena (a direct slice would be invalidated when
// the arena grows).
type batchMember struct {
	idx     int
	permOff int
	permLen int
	hit     bool
}

// groupKey is the comparable dedup key of one batch item: cache key (an
// interned string from the encoding cache), backend, and the params that
// change a solve's output. solo is 0 for dedupable items and index+1 for
// items that must solve alone (warm starts, hybrid tuning), making their
// keys unique. A struct key replaces the fmt.Sprintf string the dedup map
// used to allocate per item.
type groupKey struct {
	key   string
	name  string
	reads int
	seed  int64
	solo  int
}

// batchScratch is the reusable working set of one solveBatch call,
// cycled through Service.batchScratch.
type batchScratch struct {
	sc        reqScratch
	groups    []batchGroup
	byKey     map[groupKey]int
	permArena []int
	done      []bool
	gidx      []int
	encs      []*core.Encoding
	ps        []Params
}

func (b *batchScratch) reset() {
	b.groups = b.groups[:0]
	if b.byKey == nil {
		b.byKey = make(map[groupKey]int)
	} else {
		clear(b.byKey)
	}
	b.permArena = b.permArena[:0]
}

// addGroup appends a group slot, recycling the backing entry (and its
// members capacity) when one exists from an earlier batch.
func (b *batchScratch) addGroup(name string, backend Backend, enc *core.Encoding, key string, p Params) int {
	if len(b.groups) < cap(b.groups) {
		b.groups = b.groups[:len(b.groups)+1]
	} else {
		b.groups = append(b.groups, batchGroup{})
	}
	g := &b.groups[len(b.groups)-1]
	g.name, g.backend, g.enc, g.key, g.params = name, backend, enc, key, p
	g.members = g.members[:0]
	g.d, g.err = nil, nil
	return len(b.groups) - 1
}

// OptimizeBatch runs a whole envelope of requests as one unit of work:
// one envelope-level deadline (per-item timeouts are ignored), one worker
// pool slot, identical items deduplicated into a single solve, and
// backends with a BatchSolver fast path invoked once for all their
// instances. Items fail independently — the returned slices are
// index-aligned with reqs, and exactly one of resps[i]/errs[i] is non-nil
// per item. The whole envelope is rejected (every item erroring
// identically) only when the pool itself refuses the slot.
func (s *Service) OptimizeBatch(ctx context.Context, reqs []*Request, timeout time.Duration) ([]*Response, []error, BatchStats) {
	start := time.Now()
	stats := BatchStats{Items: len(reqs)}
	resps := make([]*Response, len(reqs))
	errs := make([]error, len(reqs))
	if len(reqs) == 0 {
		return resps, errs, stats
	}
	// Each item counts as a request in the service-wide counters so the
	// sequential and batch paths are comparable on /metrics.
	s.metrics.batchEnvelopes.Add(1)
	s.metrics.batchItems.Add(int64(len(reqs)))
	s.metrics.requests.Add(int64(len(reqs)))
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	ctx, span := s.cfg.Tracer.Start(ctx, "optimize.batch")
	span.SetAttr("items", len(reqs))

	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	run := s.pool.Run
	if s.cfg.Shed {
		run = s.pool.TryRun
	}
	if err := run(ctx, func(ctx context.Context) {
		stats.Unique = s.solveBatch(ctx, reqs, resps, errs)
	}); err != nil {
		if errors.Is(err, ErrOverloaded) {
			s.metrics.sheds.Add(1)
			span.SetAttr("shed", true)
		}
		if errors.Is(err, ErrPanic) {
			s.metrics.panics.Add(1)
		}
		for i := range errs {
			if errs[i] == nil && resps[i] == nil {
				errs[i] = err
			}
		}
	}

	nerr := 0
	var firstErr error
	for _, e := range errs {
		if e != nil {
			nerr++
			if firstErr == nil {
				firstErr = e
			}
		}
	}
	s.metrics.errors.Add(int64(nerr))
	s.metrics.batchUnique.Add(int64(stats.Unique))
	elapsed := time.Since(start)
	for _, r := range resps {
		if r != nil {
			r.Elapsed = elapsed
		}
	}
	span.SetAttr("unique", stats.Unique)
	span.SetAttr("item_errors", nerr)
	if nerr == len(reqs) {
		// A fully failed envelope is an error trace; partial failures are
		// kept visible via the item_errors attribute instead.
		span.End(firstErr)
	} else {
		span.End(nil)
	}
	return resps, errs, stats
}

// solveBatch runs on a pool worker: per-item validation and (cached)
// encoding, deduplication into canonical groups, grouped solving with the
// BatchSolver fast path where available, and per-member finishing. It
// returns the number of deduplicated groups solved. All working storage
// comes from the service's batchScratch pool, and entries of resps that
// already hold a Response are filled in place — a warm batch of familiar
// shapes allocates nothing in this scaffolding.
func (s *Service) solveBatch(ctx context.Context, reqs []*Request, resps []*Response, errs []error) int {
	b := s.batch.Get().(*batchScratch)
	defer s.batch.Put(b)
	b.reset()

	soloQuery := 0
	for i, req := range reqs {
		if req == nil || req.Query == nil {
			errs[i] = fmt.Errorf("service: batch item %d has no query: %w", i, ErrBadRequest)
			continue
		}
		if err := req.Query.Validate(); err != nil {
			errs[i] = fmt.Errorf("service: batch item %d: invalid query: %v: %w", i, err, ErrBadRequest)
			continue
		}
		name := req.Backend
		if name == "" {
			name = s.cfg.DefaultBackend
		}
		backend, ok := s.reg.Get(name)
		if !ok {
			errs[i] = fmt.Errorf("service: batch item %d: unknown backend %q (have: %s): %w",
				i, name, strings.Join(s.reg.Names(), ", "), ErrBadRequest)
			continue
		}
		// Query-level backends (decomposition) bypass the monolithic
		// encode and solve each item solo: their instances cannot be
		// deduplicated by canonical encoding (no canonicalisation runs),
		// and per-part solving is already batched internally.
		if qb, ok := backend.(QueryBackend); ok {
			resp := resps[i]
			if resp == nil {
				resp = &Response{}
			}
			if err := s.solveQueryInto(ctx, qb, req, &b.sc, resp); err != nil {
				errs[i] = err
				resps[i] = nil
			} else {
				resps[i] = resp
			}
			soloQuery++
			continue
		}
		enc, key, perm, hit, err := s.cache.encodingScratch(ctx, req.Query, req.Spec, &b.sc.fp)
		if err != nil {
			errs[i] = fmt.Errorf("service: batch item %d: encoding failed: %v: %w", i, err, ErrBadRequest)
			continue
		}
		// perm aliases the fingerprinter's buffer, which the next item
		// overwrites; park it in the shared arena (members store offsets —
		// arena growth would invalidate direct slices).
		permOff := len(b.permArena)
		b.permArena = append(b.permArena, perm...)
		// Warm-started and hybrid-tuned items are never deduplicated:
		// their extra inputs are not part of the group key.
		p := req.Params
		gk := groupKey{key: key, name: name, reads: p.Reads, seed: p.Seed}
		if len(p.InitialState) != 0 || p.Hybrid.Strategy != "" || len(p.Hybrid.Portfolio) != 0 || p.Hybrid.HedgeDelay != 0 {
			gk = groupKey{solo: i + 1}
		}
		gi, ok := b.byKey[gk]
		if !ok {
			gi = b.addGroup(name, backend, enc, key, p)
			b.byKey[gk] = gi
		}
		g := &b.groups[gi]
		g.members = append(g.members, batchMember{idx: i, permOff: permOff, permLen: len(perm), hit: hit})
	}

	// Process groups backend by backend in first-appearance order, so a
	// batch spanning several backends still makes one fast-path call each.
	if cap(b.done) < len(b.groups) {
		b.done = make([]bool, len(b.groups))
	}
	b.done = b.done[:len(b.groups)]
	for i := range b.done {
		b.done[i] = false
	}
	for first := range b.groups {
		if b.done[first] {
			continue
		}
		name := b.groups[first].name
		b.gidx = b.gidx[:0]
		for gj := first; gj < len(b.groups); gj++ {
			if !b.done[gj] && b.groups[gj].name == name {
				b.done[gj] = true
				b.gidx = append(b.gidx, gj)
			}
		}
		bm := s.metrics.Backend(name)
		if bsv, ok := b.groups[first].backend.(BatchSolver); ok {
			b.encs = b.encs[:0]
			b.ps = b.ps[:0]
			for _, gj := range b.gidx {
				b.encs = append(b.encs, b.groups[gj].enc)
				b.ps = append(b.ps, b.groups[gj].params)
			}
			solveCtx, span := obs.StartSpan(ctx, "solve.batch")
			span.SetAttrStr("backend", name)
			span.SetAttrInt("instances", len(b.gidx))
			solveStart := time.Now()
			ds, berrs := s.safeSolveBatch(solveCtx, bsv, b.encs, b.ps)
			// Per-instance latency is the amortised share of the batched
			// call — the histogram then reflects per-query service rate.
			per := time.Since(solveStart) / time.Duration(len(b.gidx))
			for k, gj := range b.gidx {
				g := &b.groups[gj]
				err := berrs[k]
				if err == nil {
					err = vetDecoded(g.enc.Query.NumRelations(), name, ds[k])
				}
				bm.Observe(per, err)
				g.d, g.err = ds[k], err
			}
			span.End(nil)
		} else {
			for _, gj := range b.gidx {
				g := &b.groups[gj]
				solveCtx, span := obs.StartSpan(ctx, "solve")
				span.SetAttrStr("backend", name)
				solveStart := time.Now()
				d, err := s.safeSolve(solveCtx, g.backend, g.enc, g.params)
				if err == nil {
					err = vetDecoded(g.enc.Query.NumRelations(), name, d)
				}
				bm.Observe(time.Since(solveStart), err)
				span.End(err)
				g.d, g.err = d, err
			}
		}
	}

	for gi := range b.groups {
		g := &b.groups[gi]
		for _, m := range g.members {
			perm := b.permArena[m.permOff : m.permOff+m.permLen]
			resp := resps[m.idx]
			if resp == nil {
				resp = &Response{}
			}
			if err := s.finishInto(ctx, reqs[m.idx], g.name, g.enc, g.key, perm, m.hit, g.d, g.err, &b.sc, resp); err != nil {
				errs[m.idx] = err
				resps[m.idx] = nil
			} else {
				resps[m.idx] = resp
			}
		}
	}
	return len(b.groups) + soloQuery
}

// safeSolveBatch invokes a BatchSolver with the same panic containment as
// safeSolve, and normalises a misbehaving implementation's slice lengths.
func (s *Service) safeSolveBatch(ctx context.Context, bs BatchSolver, encs []*core.Encoding, ps []Params) (ds []*core.Decoded, errs []error) {
	defer func() {
		if r := recover(); r != nil {
			ds = make([]*core.Decoded, len(encs))
			errs = make([]error, len(encs))
			for i := range errs {
				errs[i] = fmt.Errorf("service: backend %q panicked in batch: %v: %w", bs.Name(), r, ErrPanic)
			}
		}
	}()
	ds, errs = bs.SolveBatch(ctx, encs, ps)
	if len(ds) != len(encs) || len(errs) != len(encs) {
		err := fmt.Errorf("service: backend %q returned %d results / %d errors for %d batch instances",
			bs.Name(), len(ds), len(errs), len(encs))
		ds = make([]*core.Decoded, len(encs))
		errs = make([]error, len(encs))
		for i := range errs {
			errs[i] = err
		}
	}
	return ds, errs
}
