package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
)

// pairQuery is the smallest instance — QAOA-sized.
func pairQuery() *join.Query {
	return &join.Query{
		Relations: []join.Relation{
			{Name: "R", Card: 100},
			{Name: "S", Card: 1000},
		},
		Predicates: []join.Predicate{{R1: 0, R2: 1, Sel: 0.01}},
	}
}

func classicalRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	for _, b := range []Backend{NewDPBackend(), NewGreedyBackend(), NewTabuBackend()} {
		if err := r.Register(b); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(NewDPBackend()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(NewDPBackend()); err == nil {
		t.Error("duplicate registration succeeded")
	}
	if got := r.Names(); len(got) != 1 || got[0] != "dp" {
		t.Errorf("Names = %v", got)
	}
}

func TestOptimizeClassicalBackends(t *testing.T) {
	svc := New(classicalRegistry(t), Config{Workers: 2, DefaultBackend: "dp"})
	defer svc.Close(context.Background())
	q := chainQuery()
	for _, backend := range []string{"dp", "greedy", "tabu"} {
		resp, err := svc.Optimize(context.Background(), &Request{
			Query:   q,
			Backend: backend,
			Spec:    EncodeSpec{Thresholds: 1},
			Params:  Params{Seed: 1, Reads: 4},
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if got := q.Cost(resp.Order); got != resp.Cost {
			t.Errorf("%s: reported cost %v but order costs %v", backend, resp.Cost, got)
		}
		if resp.OptimalCost <= 0 {
			t.Errorf("%s: missing optimal-cost comparison", backend)
		}
		if backend == "dp" && !resp.Optimal {
			t.Errorf("dp backend did not report an optimal plan (cost %v vs %v)", resp.Cost, resp.OptimalCost)
		}
	}
}

// TestOptimizePermutedQueryMapsOrderBack exercises the cache-hit path
// where the encoding was built for a different relation labelling.
func TestOptimizePermutedQueryMapsOrderBack(t *testing.T) {
	svc := New(classicalRegistry(t), Config{Workers: 1})
	defer svc.Close(context.Background())
	q := chainQuery()
	qp := permuted(q, []int{2, 0, 3, 1})
	var costs [2]float64
	for i, query := range []*join.Query{q, qp} {
		resp, err := svc.Optimize(context.Background(), &Request{
			Query: query, Backend: "dp", Spec: EncodeSpec{Thresholds: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if i == 1 && !resp.CacheHit {
			t.Error("permuted query missed the encoding cache")
		}
		// The order must be valid in the request's own labelling.
		if got := query.Cost(resp.Order); got != resp.Cost {
			t.Errorf("query %d: order cost %v != reported %v", i, got, resp.Cost)
		}
		costs[i] = resp.Cost
	}
	if costs[0] != costs[1] {
		t.Errorf("permutation changed the optimal cost: %v vs %v", costs[0], costs[1])
	}
}

func TestOptimizeRejectsBadInput(t *testing.T) {
	svc := New(classicalRegistry(t), Config{Workers: 1})
	defer svc.Close(context.Background())
	cases := []struct {
		name string
		req  *Request
	}{
		{"nil query", &Request{Backend: "dp"}},
		{"bad selectivity", &Request{Backend: "dp", Query: &join.Query{
			Relations:  []join.Relation{{Card: 10}, {Card: 20}},
			Predicates: []join.Predicate{{R1: 0, R2: 1, Sel: 1.5}},
		}}},
		{"bad cardinality", &Request{Backend: "dp", Query: &join.Query{
			Relations:  []join.Relation{{Card: 0}, {Card: 20}},
			Predicates: []join.Predicate{{R1: 0, R2: 1, Sel: 0.5}},
		}}},
		{"unknown backend", &Request{Backend: "nope", Query: pairQuery()}},
	}
	for _, tc := range cases {
		if _, err := svc.Optimize(context.Background(), tc.req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: err = %v, want ErrBadRequest", tc.name, err)
		}
	}
}

// blockingBackend parks until its context expires.
type blockingBackend struct{ started chan struct{} }

func (b *blockingBackend) Name() string { return "block" }

func (b *blockingBackend) Solve(ctx context.Context, enc *core.Encoding, p Params) (*core.Decoded, error) {
	if b.started != nil {
		select {
		case b.started <- struct{}{}:
		default:
		}
	}
	<-ctx.Done()
	return nil, fmt.Errorf("block: %w", ctx.Err())
}

func TestOptimizeEnforcesDeadline(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&blockingBackend{}); err != nil {
		t.Fatal(err)
	}
	svc := New(r, Config{Workers: 1, DefaultBackend: "block"})
	defer svc.Close(context.Background())
	start := time.Now()
	_, err := svc.Optimize(context.Background(), &Request{
		Query:   pairQuery(),
		Timeout: 50 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline enforcement took %v", elapsed)
	}
	snap := svc.MetricsSnapshot()
	if snap.Requests.Errors != 1 {
		t.Errorf("error counter = %d, want 1", snap.Requests.Errors)
	}
}

func TestOptimizeAfterCloseReturnsShutdown(t *testing.T) {
	svc := New(classicalRegistry(t), Config{Workers: 1})
	if err := svc.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Optimize(context.Background(), &Request{Query: pairQuery(), Backend: "dp"}); !errors.Is(err, ErrShutdown) {
		t.Errorf("err = %v, want ErrShutdown", err)
	}
}

// TestCloseDrainsInFlight verifies graceful shutdown waits for running
// solves rather than killing them.
func TestCloseDrainsInFlight(t *testing.T) {
	block := &blockingBackend{started: make(chan struct{}, 1)}
	r := NewRegistry()
	if err := r.Register(block); err != nil {
		t.Fatal(err)
	}
	svc := New(r, Config{Workers: 1})
	done := make(chan error, 1)
	go func() {
		_, err := svc.Optimize(context.Background(), &Request{
			Query: pairQuery(), Backend: "block", Timeout: 300 * time.Millisecond,
		})
		done <- err
	}()
	<-block.started // the solve is running
	if err := svc.Close(context.Background()); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close returned only after the worker exited, i.e. after the
	// in-flight solve finished (with its own deadline error).
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("in-flight request err = %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never finished")
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers, workers)
	defer p.Shutdown(context.Background())
	var running, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = p.Run(context.Background(), func(context.Context) {
				n := running.Add(1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				time.Sleep(5 * time.Millisecond)
				running.Add(-1)
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", got, workers)
	}
}

func TestConcurrentOptimize(t *testing.T) {
	svc := New(classicalRegistry(t), Config{Workers: 4, CacheSize: 16})
	defer svc.Close(context.Background())
	q := chainQuery()
	const goroutines, perG = 8, 5
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			backends := []string{"dp", "greedy", "tabu"}
			for i := 0; i < perG; i++ {
				_, err := svc.Optimize(context.Background(), &Request{
					Query:   q,
					Backend: backends[(g+i)%len(backends)],
					Spec:    EncodeSpec{Thresholds: 1},
					Params:  Params{Seed: int64(g*100 + i), Reads: 24},
				})
				if err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	snap := svc.MetricsSnapshot()
	if snap.Requests.Total != goroutines*perG {
		t.Errorf("request counter = %d, want %d", snap.Requests.Total, goroutines*perG)
	}
	if snap.Cache.Hits+snap.Cache.Misses != goroutines*perG {
		t.Errorf("cache lookups = %d, want %d", snap.Cache.Hits+snap.Cache.Misses, goroutines*perG)
	}
	if snap.Cache.Hits == 0 {
		t.Error("no cache hits across repeated identical queries")
	}
	var solves int64
	for _, b := range snap.Backends {
		solves += b.Requests
	}
	if solves != goroutines*perG {
		t.Errorf("backend solves = %d, want %d", solves, goroutines*perG)
	}
}

func TestMetricsWinLossCounters(t *testing.T) {
	m := NewMetrics()
	m.Backend("tabu").RecordWin()
	m.Backend("tabu").RecordWin()
	m.Backend("anneal").RecordLoss()
	snap := m.Snapshot(nil)
	if got := snap.Backends["tabu"]; got.Wins != 2 || got.Losses != 0 {
		t.Errorf("tabu wins/losses = %d/%d, want 2/0", got.Wins, got.Losses)
	}
	if got := snap.Backends["anneal"]; got.Wins != 0 || got.Losses != 1 {
		t.Errorf("anneal wins/losses = %d/%d, want 0/1", got.Wins, got.Losses)
	}
}

// TestBackendsAcceptInitialState pins the warm-start plumbing: a full QUBO
// assignment built from a known join order must pass through Params into
// the tabu and anneal backends without breaking the solve.
func TestBackendsAcceptInitialState(t *testing.T) {
	q := pairQuery()
	enc, err := core.Encode(q, core.Options{Thresholds: core.DefaultThresholds(q, 1)})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := enc.EncodeOrder(join.Order{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	full, err := enc.CompleteSlacks(dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != enc.NumQubits() {
		t.Fatalf("warm state has %d vars, encoding %d", len(full), enc.NumQubits())
	}
	ctx := context.Background()
	p := Params{Reads: 50, Seed: 5, InitialState: full}
	for _, b := range []Backend{NewTabuBackend(), NewAnnealBackend(3)} {
		d, err := b.Solve(ctx, enc, p)
		if err != nil {
			t.Fatalf("%s warm solve: %v", b.Name(), err)
		}
		if !d.Valid || len(d.Order) != 2 {
			t.Fatalf("%s warm solve returned %+v", b.Name(), d)
		}
	}
}
