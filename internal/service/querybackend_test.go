package service

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
)

// stubQueryBackend plans over the query directly (the decomp backend's
// shape): it returns the reversed identity order and a fixed qubit count,
// and records whether the service ever took the monolithic Solve path.
type stubQueryBackend struct {
	queryCalls int32
	solveCalls int32
	fail       bool
}

func (s *stubQueryBackend) Name() string { return "stubqb" }

func (s *stubQueryBackend) Solve(ctx context.Context, enc *core.Encoding, p Params) (*core.Decoded, error) {
	atomic.AddInt32(&s.solveCalls, 1)
	return nil, fmt.Errorf("stubqb: monolithic Solve must not be reached")
}

func (s *stubQueryBackend) SolveQuery(ctx context.Context, q *join.Query, spec EncodeSpec, p Params) (*QueryResult, error) {
	atomic.AddInt32(&s.queryCalls, 1)
	if s.fail {
		return nil, fmt.Errorf("stubqb: injected failure")
	}
	n := q.NumRelations()
	o := make(join.Order, n)
	for i := range o {
		o[i] = n - 1 - i
	}
	return &QueryResult{
		Decoded:       core.Decoded{Valid: true, Order: o, Cost: q.Cost(o)},
		LogicalQubits: 7,
	}, nil
}

func queryBackendService(t *testing.T, stub *stubQueryBackend) *Service {
	t.Helper()
	reg := classicalRegistry(t)
	if err := reg.Register(stub); err != nil {
		t.Fatal(err)
	}
	return New(reg, Config{Workers: 2, DefaultBackend: "dp"})
}

// bigChainQuery builds a valid chain query past the monolithic encoding
// limit (core.MaxMonolithicRelations) but under join.MaxRelations.
func bigChainQuery(n int) *join.Query {
	q := &join.Query{Relations: make([]join.Relation, n)}
	for i := range q.Relations {
		q.Relations[i] = join.Relation{Name: fmt.Sprintf("R%d", i), Card: 100}
	}
	for i := 1; i < n; i++ {
		q.Predicates = append(q.Predicates, join.Predicate{R1: i - 1, R2: i, Sel: 0.1})
	}
	return q
}

// TestQueryBackendRoutesAroundEncodingCache: a QueryBackend request must
// never build (or hit) a monolithic encoding — repeated identical requests
// stay cache misses, call SolveQuery each time, and carry the backend's own
// qubit accounting.
func TestQueryBackendRoutesAroundEncodingCache(t *testing.T) {
	stub := &stubQueryBackend{}
	svc := queryBackendService(t, stub)
	defer svc.Close(context.Background())
	q := chainQuery()
	for i := 0; i < 2; i++ {
		resp, err := svc.Optimize(context.Background(), &Request{Query: q, Backend: "stubqb"})
		if err != nil {
			t.Fatal(err)
		}
		if resp.CacheHit {
			t.Error("QueryBackend response claims an encoding-cache hit")
		}
		if resp.CacheKey == "" {
			t.Error("QueryBackend response lost its fingerprint cache key")
		}
		if resp.LogicalQubits != 7 {
			t.Errorf("LogicalQubits = %d, want the backend's 7", resp.LogicalQubits)
		}
		if !resp.Order.IsPermutation(q.NumRelations()) {
			t.Errorf("order %v is not a permutation", resp.Order)
		}
		if got := q.Cost(resp.Order); got != resp.Cost {
			t.Errorf("reported cost %v but order costs %v", resp.Cost, got)
		}
		if resp.OptimalCost <= 0 {
			t.Error("missing classical optimal-cost comparison")
		}
	}
	if got := atomic.LoadInt32(&stub.queryCalls); got != 2 {
		t.Errorf("SolveQuery calls = %d, want 2", got)
	}
	if got := atomic.LoadInt32(&stub.solveCalls); got != 0 {
		t.Errorf("monolithic Solve was called %d times", got)
	}
}

// TestQueryBackendAcceptsBeyondMonolithicLimit: the same oversized query
// that 400s on an encoding backend must succeed on a QueryBackend.
func TestQueryBackendAcceptsBeyondMonolithicLimit(t *testing.T) {
	stub := &stubQueryBackend{}
	svc := queryBackendService(t, stub)
	defer svc.Close(context.Background())
	q := bigChainQuery(core.MaxMonolithicRelations + 8)
	if _, err := svc.Optimize(context.Background(), &Request{Query: q, Backend: "dp"}); err == nil {
		t.Fatal("monolithic backend accepted an oversized query")
	}
	resp, err := svc.Optimize(context.Background(), &Request{Query: q, Backend: "stubqb"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Order.IsPermutation(q.NumRelations()) {
		t.Errorf("order %v is not a permutation", resp.Order)
	}
}

// TestQueryBackendFailureDegrades: a failing QueryBackend degrades to the
// classical fallback exactly like a failing encoding backend.
func TestQueryBackendFailureDegrades(t *testing.T) {
	stub := &stubQueryBackend{fail: true}
	reg := classicalRegistry(t)
	if err := reg.Register(stub); err != nil {
		t.Fatal(err)
	}
	svc := New(reg, Config{Workers: 2, DefaultBackend: "dp", Degrade: true})
	defer svc.Close(context.Background())
	q := chainQuery()
	resp, err := svc.Optimize(context.Background(), &Request{Query: q, Backend: "stubqb"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || resp.DegradedReason == "" {
		t.Fatalf("expected a degraded response, got %+v", resp)
	}
	if !resp.Order.IsPermutation(q.NumRelations()) {
		t.Errorf("degraded order %v is not a permutation", resp.Order)
	}
	// The fallback producer's degraded counter moved; its win count did not.
	bs, ok := svc.Metrics().ReadBackend(resp.Backend)
	if !ok || bs.Degraded != 1 || bs.Wins != 0 {
		t.Errorf("fallback %q snapshot = %+v ok=%v, want degraded=1 wins=0", resp.Backend, bs, ok)
	}
}

// TestBatchSolvesQueryBackendItemsSolo: batch envelopes route QueryBackend
// items through the per-query path (no monolithic dedup group) while other
// items batch as usual.
func TestBatchSolvesQueryBackendItemsSolo(t *testing.T) {
	stub := &stubQueryBackend{}
	svc := queryBackendService(t, stub)
	defer svc.Close(context.Background())
	q := chainQuery()
	reqs := []*Request{
		{Query: q, Backend: "stubqb"},
		{Query: q, Backend: "dp"},
		{Query: q, Backend: "stubqb"},
	}
	resps, errs, _ := svc.OptimizeBatch(context.Background(), reqs, 5*time.Second)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("item %d: %v", i, err)
		}
		if !resps[i].Order.IsPermutation(q.NumRelations()) {
			t.Errorf("item %d: order %v is not a permutation", i, resps[i].Order)
		}
	}
	if got := atomic.LoadInt32(&stub.queryCalls); got != 2 {
		t.Errorf("SolveQuery calls = %d, want 2 (no dedup across QueryBackend items)", got)
	}
	if resps[0].LogicalQubits != 7 || resps[2].LogicalQubits != 7 {
		t.Errorf("QueryBackend items lost their qubit accounting: %d, %d",
			resps[0].LogicalQubits, resps[2].LogicalQubits)
	}
}
