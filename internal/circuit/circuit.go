// Package circuit provides quantum gates and circuits: the intermediate
// representation shared by the QAOA builder, the transpiler, and the
// statevector simulator. Circuits are flat gate lists; depth is computed
// from per-qubit dependency chains (the metric the paper reports in
// Figures 2 and 5).
package circuit

import (
	"fmt"
	"math"
)

// Kind enumerates the supported gate types. The set covers everything QAOA
// circuits need plus the native gate sets of the three hardware platforms
// studied in §6.2 (IBM: CX/RZ/SX/X, Rigetti: CZ/RZ/RX, IonQ: XX/1Q
// rotations).
type Kind int

const (
	// H is the Hadamard gate.
	H Kind = iota
	// X is the Pauli-X gate.
	X
	// SX is the square root of X (IBM native).
	SX
	// RX is a rotation about the X axis by Param.
	RX
	// RY is a rotation about the Y axis by Param.
	RY
	// RZ is a rotation about the Z axis by Param.
	RZ
	// CX is the controlled-X gate (control = Qubits[0]).
	CX
	// CZ is the controlled-Z gate (symmetric).
	CZ
	// SWAP exchanges two qubits.
	SWAP
	// RZZ is exp(-i Param/2 Z⊗Z), the two-qubit interaction QAOA cost
	// operators are built from.
	RZZ
	// XX is the Mølmer–Sørensen interaction exp(-i Param/2 X⊗X), native on
	// trapped-ion hardware (IonQ).
	XX
	numKinds
)

var kindNames = [...]string{"h", "x", "sx", "rx", "ry", "rz", "cx", "cz", "swap", "rzz", "xx"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsTwoQubit reports whether the kind acts on two qubits.
func (k Kind) IsTwoQubit() bool {
	switch k {
	case CX, CZ, SWAP, RZZ, XX:
		return true
	default:
		return false
	}
}

// HasParam reports whether the kind carries a rotation angle.
func (k Kind) HasParam() bool {
	switch k {
	case RX, RY, RZ, RZZ, XX:
		return true
	default:
		return false
	}
}

// Gate is one operation on one or two qubits.
type Gate struct {
	Kind   Kind
	Q0, Q1 int // Q1 = -1 for single-qubit gates
	Param  float64
}

// G1 constructs a single-qubit gate.
func G1(k Kind, q int, param float64) Gate { return Gate{Kind: k, Q0: q, Q1: -1, Param: param} }

// G2 constructs a two-qubit gate.
func G2(k Kind, a, b int, param float64) Gate { return Gate{Kind: k, Q0: a, Q1: b, Param: param} }

// Circuit is an ordered gate list over a fixed number of qubits.
type Circuit struct {
	NumQubits int
	Gates     []Gate
}

// New creates an empty circuit.
func New(n int) *Circuit {
	if n <= 0 {
		panic(fmt.Sprintf("circuit: non-positive qubit count %d", n))
	}
	return &Circuit{NumQubits: n}
}

// Append adds gates, validating qubit indices.
func (c *Circuit) Append(gs ...Gate) {
	for _, g := range gs {
		if g.Q0 < 0 || g.Q0 >= c.NumQubits {
			panic(fmt.Sprintf("circuit: gate %v qubit %d out of range [0,%d)", g.Kind, g.Q0, c.NumQubits))
		}
		if g.Kind.IsTwoQubit() {
			if g.Q1 < 0 || g.Q1 >= c.NumQubits || g.Q1 == g.Q0 {
				panic(fmt.Sprintf("circuit: gate %v qubits (%d,%d) invalid", g.Kind, g.Q0, g.Q1))
			}
		} else if g.Q1 != -1 {
			panic(fmt.Sprintf("circuit: single-qubit gate %v has second qubit %d", g.Kind, g.Q1))
		}
		c.Gates = append(c.Gates, g)
	}
}

// Copy returns a deep copy.
func (c *Circuit) Copy() *Circuit {
	return &Circuit{NumQubits: c.NumQubits, Gates: append([]Gate(nil), c.Gates...)}
}

// Depth returns the circuit depth: the length of the longest chain of
// gates that must execute sequentially because they share qubits. This is
// the quantity bounded by coherence time (§2.2.1, Figures 2 and 5).
func (c *Circuit) Depth() int {
	level := make([]int, c.NumQubits)
	depth := 0
	for _, g := range c.Gates {
		l := level[g.Q0]
		if g.Kind.IsTwoQubit() && level[g.Q1] > l {
			l = level[g.Q1]
		}
		l++
		level[g.Q0] = l
		if g.Kind.IsTwoQubit() {
			level[g.Q1] = l
		}
		if l > depth {
			depth = l
		}
	}
	return depth
}

// CountKind returns the number of gates of the given kind.
func (c *Circuit) CountKind(k Kind) int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == k {
			n++
		}
	}
	return n
}

// CountTwoQubit returns the number of two-qubit gates — the dominant error
// source on NISQ hardware.
func (c *Circuit) CountTwoQubit() int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind.IsTwoQubit() {
			n++
		}
	}
	return n
}

// CountSingleQubit returns the number of single-qubit gates.
func (c *Circuit) CountSingleQubit() int { return len(c.Gates) - c.CountTwoQubit() }

// Duration estimates the wall-clock execution time given per-gate times
// for single- and two-qubit operations: the critical-path sum, i.e.
// depth-weighted by the slowest gate per layer is approximated as
// depth × the weighted average gate time (the paper's d·g_avg model).
func (c *Circuit) Duration(t1q, t2q float64) float64 {
	n1, n2 := c.CountSingleQubit(), c.CountTwoQubit()
	total := n1 + n2
	if total == 0 {
		return 0
	}
	avg := (float64(n1)*t1q + float64(n2)*t2q) / float64(total)
	return float64(c.Depth()) * avg
}

// NormalizeAngle maps an angle into (-π, π] for stable comparison.
func NormalizeAngle(a float64) float64 {
	a = math.Mod(a, 2*math.Pi)
	if a <= -math.Pi {
		a += 2 * math.Pi
	}
	if a > math.Pi {
		a -= 2 * math.Pi
	}
	return a
}
