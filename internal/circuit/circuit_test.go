package circuit

import (
	"math"
	"testing"
)

func TestDepth(t *testing.T) {
	c := New(3)
	if c.Depth() != 0 {
		t.Fatal("empty circuit depth != 0")
	}
	c.Append(G1(H, 0, 0), G1(H, 1, 0), G1(H, 2, 0)) // parallel layer
	if c.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", c.Depth())
	}
	c.Append(G2(CX, 0, 1, 0)) // depends on both
	if c.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", c.Depth())
	}
	c.Append(G1(RZ, 2, 1)) // parallel to the CX chain
	if c.Depth() != 2 {
		t.Fatalf("depth = %d, want 2", c.Depth())
	}
	c.Append(G2(CX, 1, 2, 0))
	if c.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", c.Depth())
	}
}

func TestCounts(t *testing.T) {
	c := New(2)
	c.Append(G1(H, 0, 0), G2(CX, 0, 1, 0), G2(RZZ, 0, 1, 0.5), G1(RZ, 1, 0.2))
	if c.CountTwoQubit() != 2 || c.CountSingleQubit() != 2 {
		t.Fatalf("counts: 2q=%d 1q=%d", c.CountTwoQubit(), c.CountSingleQubit())
	}
	if c.CountKind(CX) != 1 || c.CountKind(H) != 1 || c.CountKind(X) != 0 {
		t.Fatal("CountKind wrong")
	}
}

func TestDuration(t *testing.T) {
	c := New(2)
	c.Append(G1(H, 0, 0), G2(CX, 0, 1, 0))
	// depth 2, avg gate time (50+300)/2 = 175 -> 350.
	if got := c.Duration(50, 300); math.Abs(got-350) > 1e-9 {
		t.Fatalf("Duration = %v, want 350", got)
	}
	if New(2).Duration(50, 300) != 0 {
		t.Fatal("empty circuit duration != 0")
	}
}

func TestAppendValidation(t *testing.T) {
	cases := []func(){
		func() { New(2).Append(G1(H, 2, 0)) },                 // out of range
		func() { New(2).Append(G2(CX, 0, 0, 0)) },             // same qubit twice
		func() { New(2).Append(G2(CX, 0, 5, 0)) },             // second out of range
		func() { New(2).Append(Gate{Kind: H, Q0: 0, Q1: 1}) }, // 1q gate with q1
		func() { New(0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCopyIsDeep(t *testing.T) {
	c := New(2)
	c.Append(G1(H, 0, 0))
	d := c.Copy()
	d.Append(G1(X, 1, 0))
	if len(c.Gates) != 1 {
		t.Fatal("Copy shares gate slice")
	}
}

func TestKindProperties(t *testing.T) {
	for _, k := range []Kind{CX, CZ, SWAP, RZZ, XX} {
		if !k.IsTwoQubit() {
			t.Errorf("%v should be two-qubit", k)
		}
	}
	for _, k := range []Kind{H, X, SX, RX, RY, RZ} {
		if k.IsTwoQubit() {
			t.Errorf("%v should be single-qubit", k)
		}
	}
	for _, k := range []Kind{RX, RY, RZ, RZZ, XX} {
		if !k.HasParam() {
			t.Errorf("%v should carry a parameter", k)
		}
	}
	if H.HasParam() || CX.HasParam() {
		t.Error("H/CX should not carry parameters")
	}
	if H.String() != "h" || RZZ.String() != "rzz" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-0.5, -0.5},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
