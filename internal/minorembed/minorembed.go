// Package minorembed finds minor embeddings of logical problem graphs into
// QPU hardware graphs: each logical variable is mapped to a connected
// chain of physical qubits so that every logical interaction is realised
// by at least one physical coupler (§2.2.2 "QPU Embedding"). The problem
// is NP-complete; this package implements the randomized heuristic of
// Cai, Macready and Roy — the algorithm behind D-Wave's minorminer tool
// that the paper uses to embed join-ordering QUBOs onto the Advantage
// system (Figure 3).
//
// The heuristic first embeds variables one by one, temporarily allowing
// qubits to be shared between chains but charging an exponentially
// growing cost for over-use; it then iteratively rips out and re-embeds
// variables until no qubit is shared, and finally shrinks chains.
package minorembed

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"quantumjoin/internal/obs"
	"quantumjoin/internal/topology"
)

// ErrNoEmbedding marks an exhausted attempt budget: the heuristic ran all
// its tries without finding a valid embedding. On real hardware this is a
// transient per-seed outcome — a retry with a different seed may succeed —
// so resilience layers classify errors wrapping it as retryable faults.
var ErrNoEmbedding = errors.New("minorembed: no embedding found")

// Embedding maps each logical variable to its chain of physical qubits.
type Embedding struct {
	// Chains[v] lists the physical qubits representing variable v.
	Chains [][]int
}

// PhysicalQubits returns the total number of physical qubits used — the
// quantity Figure 3 reports.
func (e *Embedding) PhysicalQubits() int {
	n := 0
	for _, c := range e.Chains {
		n += len(c)
	}
	return n
}

// MaxChainLength returns the longest chain.
func (e *Embedding) MaxChainLength() int {
	m := 0
	for _, c := range e.Chains {
		if len(c) > m {
			m = len(c)
		}
	}
	return m
}

// MeanChainLength returns the average chain length.
func (e *Embedding) MeanChainLength() float64 {
	if len(e.Chains) == 0 {
		return 0
	}
	return float64(e.PhysicalQubits()) / float64(len(e.Chains))
}

// Validate checks that the embedding is a proper minor embedding of the
// source adjacency into the target graph: chains non-empty, disjoint,
// connected, and every source edge realised by a physical coupler.
func (e *Embedding) Validate(source [][]int, target *topology.Graph) error {
	owner := make([]int, target.N())
	for i := range owner {
		owner[i] = -1
	}
	for v, chain := range e.Chains {
		if len(chain) == 0 {
			return fmt.Errorf("minorembed: variable %d has empty chain", v)
		}
		inChain := make(map[int]bool, len(chain))
		for _, q := range chain {
			if q < 0 || q >= target.N() {
				return fmt.Errorf("minorembed: variable %d uses invalid qubit %d", v, q)
			}
			if owner[q] != -1 {
				return fmt.Errorf("minorembed: qubit %d shared by variables %d and %d", q, owner[q], v)
			}
			owner[q] = v
			inChain[q] = true
		}
		// Chain connectivity via BFS restricted to the chain.
		seen := map[int]bool{chain[0]: true}
		queue := []int{chain[0]}
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			for _, u := range target.Neighbors(q) {
				if inChain[u] && !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		if len(seen) != len(chain) {
			return fmt.Errorf("minorembed: chain of variable %d is disconnected", v)
		}
	}
	for v, nbrs := range source {
		for _, u := range nbrs {
			if u <= v {
				continue
			}
			if !chainsCoupled(e.Chains[v], e.Chains[u], target) {
				return fmt.Errorf("minorembed: source edge (%d,%d) not realised", v, u)
			}
		}
	}
	return nil
}

func chainsCoupled(a, b []int, g *topology.Graph) bool {
	inB := make(map[int]bool, len(b))
	for _, q := range b {
		inB[q] = true
	}
	for _, q := range a {
		for _, u := range g.Neighbors(q) {
			if inB[u] {
				return true
			}
		}
	}
	return false
}

// Options tune the heuristic.
type Options struct {
	// Tries is the number of independent restarts (default 8).
	Tries int
	// InnerRounds is the number of rip-up/re-embed passes per try
	// (default 16).
	InnerRounds int
	// ImproveTries is the number of additional attempts spent looking for
	// a smaller embedding after the first success (default 1).
	ImproveTries int
	// Seed drives all randomness.
	Seed int64
}

// Embed finds a minor embedding of the source adjacency structure (as
// produced by qubo.AdjacencyLists) into the target hardware graph. It
// returns an error wrapping ErrNoEmbedding when no valid embedding is
// found within the configured tries — on real hardware this is the point
// where a problem stops being solvable at all (Figure 3's size frontier).
func Embed(source [][]int, target *topology.Graph, opts Options) (*Embedding, error) {
	return EmbedContext(context.Background(), source, target, opts)
}

// EmbedContext is Embed with cancellation: the context is polled before
// every restart and every refinement round, so a cancelled request (e.g. a
// race loser or an expired deadline) stops burning CPU on Dijkstra sweeps
// instead of finishing its attempt budget. On expiry it returns the best
// embedding found so far, or the context error when there is none.
func EmbedContext(ctx context.Context, source [][]int, target *topology.Graph, opts Options) (*Embedding, error) {
	ctx, span := obs.StartSpan(ctx, "minorembed.embed")
	span.SetAttr("vars", len(source))
	emb, err := embedContext(ctx, source, target, opts)
	if emb != nil {
		span.SetAttr("physical_qubits", emb.PhysicalQubits())
	}
	span.End(err)
	return emb, err
}

func embedContext(ctx context.Context, source [][]int, target *topology.Graph, opts Options) (*Embedding, error) {
	if opts.Tries <= 0 {
		opts.Tries = 8
	}
	if opts.InnerRounds <= 0 {
		opts.InnerRounds = 16
	}
	n := len(source)
	if n == 0 {
		return &Embedding{}, nil
	}
	if n > target.N() {
		return nil, fmt.Errorf("minorembed: %d variables cannot fit in %d qubits", n, target.N())
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	var best *Embedding
	improve := opts.ImproveTries
	if improve == 0 {
		improve = 1
	}
	for try := 0; try < opts.Tries; try++ {
		if err := ctx.Err(); err != nil {
			if best != nil {
				return best, nil
			}
			return nil, fmt.Errorf("minorembed: cancelled after %d/%d tries: %w", try, opts.Tries, err)
		}
		emb := attempt(ctx, source, target, opts.InnerRounds, rng)
		if emb != nil && emb.Validate(source, target) == nil {
			if best == nil || emb.PhysicalQubits() < best.PhysicalQubits() {
				best = emb
			}
		}
		// Once an embedding exists, spend only a bounded number of extra
		// attempts polishing it (minorminer-style early return).
		if best != nil {
			if improve <= 0 {
				break
			}
			improve--
		}
	}
	if best == nil {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("minorembed: cancelled before any embedding was found: %w", err)
		}
		return nil, fmt.Errorf("%w for %d variables into %q (%d qubits) after %d tries",
			ErrNoEmbedding, n, target.Name, target.N(), opts.Tries)
	}
	return best, nil
}

type state struct {
	source [][]int
	target *topology.Graph
	chains [][]int
	usage  []int // number of chains covering each qubit
	rng    *rand.Rand
	// penalty is the base of the exponential over-use cost; the CMR
	// schedule raises it every refinement round so congestion is first
	// tolerated, then squeezed out.
	penalty float64
}

func (s *state) clearChain(v int) {
	for _, q := range s.chains[v] {
		s.usage[q]--
	}
	s.chains[v] = nil
}

// attempt runs one randomized embedding construction followed by
// refinement; returns nil on failure or when ctx is cancelled mid-attempt.
func attempt(ctx context.Context, source [][]int, target *topology.Graph, rounds int, rng *rand.Rand) *Embedding {
	n := len(source)
	s := &state{
		source:  source,
		target:  target,
		chains:  make([][]int, n),
		usage:   make([]int, target.N()),
		rng:     rng,
		penalty: 16,
	}
	// Construction order matters and no single choice wins everywhere:
	// hubs-first packs chains densely (good on sparse targets such as
	// Chimera) but leaves the hub as a short chain that its neighbours'
	// chains can enclose, walling it off from later connections;
	// hubs-last avoids the enclosure but scatters leaf placements (bad on
	// sparse targets). Restarts therefore alternate randomly between the
	// two orders.
	order := rng.Perm(n)
	ascending := rng.Intn(2) == 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			di, dj := len(source[order[i]]), len(source[order[j]])
			if (ascending && dj < di) || (!ascending && dj > di) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, v := range order {
		// Each placement runs one Dijkstra sweep per embedded neighbour;
		// polling here keeps cancellation latency to a single placement.
		if ctx.Err() != nil {
			return nil
		}
		if !s.embedVariable(v) {
			return nil
		}
	}
	// Refinement: rip out and re-embed while any qubit is overused. Abort
	// early when congestion stagnates — the instance is (practically)
	// infeasible and further rounds just burn time at the frontier.
	overuse := func() int {
		o := 0
		for _, u := range s.usage {
			if u > 1 {
				o += u - 1
			}
		}
		return o
	}
	bestOver := overuse()
	stagnant := 0
	for round := 0; round < rounds; round++ {
		if bestOver == 0 {
			break
		}
		if ctx.Err() != nil {
			return nil
		}
		// A mild penalty ramp squeezes congestion out over the rounds
		// without forcing huge detour chains early.
		if s.penalty < 4096 {
			s.penalty *= 1.5
		}
		// Re-embed the variables implicated in congestion (their chains
		// touch an over-used qubit) plus a random share of all variables.
		// The random share matters: a congestion-free chain can still be
		// the *cause* of a conflict elsewhere — e.g. a hub variable whose
		// single-qubit chain has been enclosed by its neighbours' chains,
		// forcing every further connection to tunnel through occupied
		// qubits — and only a re-embed of that variable resolves it.
		congested := make([]bool, n)
		for v, chain := range s.chains {
			for _, q := range chain {
				if s.usage[q] > 1 {
					congested[v] = true
					break
				}
			}
		}
		perm := rng.Perm(n)
		for _, v := range perm {
			if !congested[v] && rng.Float64() > 0.35 {
				continue
			}
			if ctx.Err() != nil {
				return nil
			}
			s.clearChain(v)
			if !s.embedVariable(v) {
				return nil
			}
		}
		if o := overuse(); o < bestOver {
			bestOver = o
			stagnant = 0
		} else {
			stagnant++
			if stagnant >= 6 && round >= 8 {
				return nil
			}
		}
	}
	if overuse() > 0 {
		return nil
	}
	// Chain shrinking: one more pass of re-embedding typically shortens
	// chains now that congestion is resolved.
	for _, v := range rng.Perm(n) {
		if ctx.Err() != nil {
			// The embedding is already valid; stop polishing mid-pass.
			break
		}
		old := append([]int(nil), s.chains[v]...)
		s.clearChain(v)
		ok := s.embedVariable(v) && len(s.chains[v]) <= len(old)
		if ok {
			// The shrunk chain must not reintroduce qubit sharing.
			for _, q := range s.chains[v] {
				if s.usage[q] > 1 {
					ok = false
					break
				}
			}
		}
		if !ok {
			s.clearChain(v)
			s.chains[v] = old
			for _, q := range old {
				s.usage[q]++
			}
		}
	}
	return &Embedding{Chains: s.chains}
}

// embedVariable (re)builds the chain for v: it finds the qubit minimising
// the summed weighted distance to all embedded neighbours' chains, then
// joins it to each neighbour chain along the corresponding shortest path.
func (s *state) embedVariable(v int) bool {
	var embedded []int
	for _, u := range s.source[v] {
		if len(s.chains[u]) > 0 {
			embedded = append(embedded, u)
		}
	}
	if len(embedded) == 0 {
		// Free placement: prefer an unused qubit.
		for attempt := 0; attempt < 64; attempt++ {
			q := s.rng.Intn(s.target.N())
			if s.usage[q] == 0 {
				s.chains[v] = []int{q}
				s.usage[q]++
				return true
			}
		}
		q := s.rng.Intn(s.target.N())
		s.chains[v] = []int{q}
		s.usage[q]++
		return true
	}
	type pathInfo struct {
		dist []float64
		prev []int
	}
	infos := make([]pathInfo, len(embedded))
	total := make([]float64, s.target.N())
	for i, u := range embedded {
		d, p := s.dijkstraFromChain(s.chains[u])
		infos[i] = pathInfo{d, p}
		for q := range total {
			total[q] += d[q]
		}
	}
	// Root choice: minimal total distance, qubit cost included.
	root := -1
	best := math.Inf(1)
	for q := 0; q < s.target.N(); q++ {
		c := total[q] + s.qubitCost(q)
		if c < best {
			best = c
			root = q
		}
	}
	if root < 0 || math.IsInf(best, 1) {
		return false
	}
	inChain := map[int]bool{root: true}
	chain := []int{root}
	for i := range embedded {
		// Walk back from root towards the neighbour chain.
		q := root
		for infos[i].prev[q] != -1 {
			q = infos[i].prev[q]
			if infos[i].prev[q] == -1 {
				break // reached the chain itself; do not absorb it
			}
			if !inChain[q] {
				inChain[q] = true
				chain = append(chain, q)
			}
		}
	}
	s.chains[v] = chain
	for _, q := range chain {
		s.usage[q]++
	}
	return true
}

// qubitCost charges exponentially for qubits already used by other chains
// (the CMR trick that lets intermediate solutions overlap); the exponent
// base follows the per-round penalty schedule.
func (s *state) qubitCost(q int) float64 {
	if s.usage[q] == 0 {
		return 1
	}
	return math.Pow(s.penalty, float64(s.usage[q]))
}

// dijkstraFromChain computes weighted shortest distances from the set of
// chain qubits; entering a qubit costs qubitCost(q). Uses a hand-rolled
// binary heap of concrete items (this function dominates embedding time).
func (s *state) dijkstraFromChain(chain []int) (dist []float64, prev []int) {
	n := s.target.N()
	dist = make([]float64, n)
	prev = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	pq := make(pqHeap, 0, len(chain)+64)
	for _, q := range chain {
		dist[q] = 0
		pq.push(pqItem{q, 0})
	}
	for len(pq) > 0 {
		it := pq.pop()
		if it.dist > dist[it.node] {
			continue
		}
		for _, u := range s.target.Neighbors(it.node) {
			nd := it.dist + s.qubitCost(u)
			if nd < dist[u] {
				dist[u] = nd
				prev[u] = it.node
				pq.push(pqItem{u, nd})
			}
		}
	}
	return dist, prev
}

type pqItem struct {
	node int
	dist float64
}

// pqHeap is a minimal binary min-heap specialised to pqItem.
type pqHeap []pqItem

func (h *pqHeap) push(it pqItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist <= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *pqHeap) pop() pqItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && old[l].dist < old[smallest].dist {
			smallest = l
		}
		if r < last && old[r].dist < old[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		old[i], old[smallest] = old[smallest], old[i]
		i = smallest
	}
	return top
}
