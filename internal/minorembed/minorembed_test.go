package minorembed

import (
	"testing"

	"quantumjoin/internal/qubo"
	"quantumjoin/internal/topology"
)

func pathGraphAdj(n int) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n-1; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	return adj
}

func completeAdj(n int) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}

func TestEmbedIdentityOnSameGraph(t *testing.T) {
	// A path into a larger path: chains of length 1 suffice.
	target := topology.NewGraph("path", 10)
	for i := 0; i < 9; i++ {
		target.AddEdge(i, i+1)
	}
	emb, err := Embed(pathGraphAdj(5), target, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(pathGraphAdj(5), target); err != nil {
		t.Fatal(err)
	}
	if emb.PhysicalQubits() > 10 {
		t.Errorf("path-in-path used %d qubits, target only has 10", emb.PhysicalQubits())
	}
}

func TestEmbedTriangleInSquare(t *testing.T) {
	// K3 into C4 requires one chain of length 2: 4 physical qubits.
	square := topology.NewGraph("c4", 4)
	square.AddEdge(0, 1)
	square.AddEdge(1, 2)
	square.AddEdge(2, 3)
	square.AddEdge(3, 0)
	emb, err := Embed(completeAdj(3), square, Options{Seed: 3, Tries: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(completeAdj(3), square); err != nil {
		t.Fatal(err)
	}
	if emb.PhysicalQubits() != 4 {
		t.Errorf("K3 in C4 used %d qubits, want 4", emb.PhysicalQubits())
	}
	if emb.MaxChainLength() != 2 {
		t.Errorf("max chain %d, want 2", emb.MaxChainLength())
	}
}

func TestEmbedCompleteGraphIntoPegasus(t *testing.T) {
	g, _ := topology.Pegasus(3)
	// K8 needs chains on Pegasus (degree 15 but K8 has treewidth 7).
	emb, err := Embed(completeAdj(8), g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(completeAdj(8), g); err != nil {
		t.Fatal(err)
	}
	if emb.PhysicalQubits() < 8 {
		t.Error("impossible physical qubit count")
	}
}

func TestEmbedQUBOInterationGraph(t *testing.T) {
	// Build a small QUBO and embed its interaction graph.
	q := qubo.New(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if (i+j)%2 == 0 {
				q.AddQuad(i, j, 1)
			}
		}
	}
	g, _ := topology.Pegasus(2)
	emb, err := Embed(q.AdjacencyLists(), g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(q.AdjacencyLists(), g); err != nil {
		t.Fatal(err)
	}
}

func TestEmbedFailsWhenTooLarge(t *testing.T) {
	target := topology.NewGraph("tiny", 3)
	target.AddEdge(0, 1)
	target.AddEdge(1, 2)
	if _, err := Embed(completeAdj(5), target, Options{Seed: 1, Tries: 2}); err == nil {
		t.Error("embedded K5 into a 3-qubit path")
	}
}

func TestEmbedEmptySource(t *testing.T) {
	target := topology.Complete("k", 4)
	emb, err := Embed(nil, target, Options{})
	if err != nil || emb.PhysicalQubits() != 0 {
		t.Fatalf("empty source: %v, %d qubits", err, emb.PhysicalQubits())
	}
}

func TestEmbedDisconnectedVariables(t *testing.T) {
	// Variables with no interactions at all still get a qubit each.
	target := topology.Complete("k", 6)
	adj := make([][]int, 4)
	emb, err := Embed(adj, target, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := emb.Validate(adj, target); err != nil {
		t.Fatal(err)
	}
	if emb.PhysicalQubits() != 4 {
		t.Errorf("4 isolated variables used %d qubits", emb.PhysicalQubits())
	}
}

func TestValidateCatchesBrokenEmbeddings(t *testing.T) {
	target := topology.NewGraph("path", 4)
	target.AddEdge(0, 1)
	target.AddEdge(1, 2)
	target.AddEdge(2, 3)
	src := pathGraphAdj(2)
	cases := []Embedding{
		{Chains: [][]int{{0}, {}}},     // empty chain
		{Chains: [][]int{{0}, {0}}},    // shared qubit
		{Chains: [][]int{{0, 2}, {1}}}, // disconnected chain
		{Chains: [][]int{{0}, {3}}},    // edge not realised
		{Chains: [][]int{{0}, {9}}},    // invalid qubit
	}
	for i, emb := range cases {
		if err := emb.Validate(src, target); err == nil {
			t.Errorf("case %d: broken embedding validated", i)
		}
	}
	good := Embedding{Chains: [][]int{{0}, {1}}}
	if err := good.Validate(src, target); err != nil {
		t.Errorf("good embedding rejected: %v", err)
	}
}

func TestChainStats(t *testing.T) {
	emb := Embedding{Chains: [][]int{{0}, {1, 2, 3}}}
	if emb.PhysicalQubits() != 4 || emb.MaxChainLength() != 3 {
		t.Fatal("stats wrong")
	}
	if emb.MeanChainLength() != 2 {
		t.Fatalf("mean chain length %v", emb.MeanChainLength())
	}
	empty := Embedding{}
	if empty.MeanChainLength() != 0 {
		t.Fatal("empty mean should be 0")
	}
}

func TestEmbeddingGrowsWithCliqueSize(t *testing.T) {
	g, _ := topology.Pegasus(4)
	prev := 0
	for _, k := range []int{4, 8, 12} {
		emb, err := Embed(completeAdj(k), g, Options{Seed: 11})
		if err != nil {
			t.Fatalf("K%d: %v", k, err)
		}
		if err := emb.Validate(completeAdj(k), g); err != nil {
			t.Fatalf("K%d: %v", k, err)
		}
		if emb.PhysicalQubits() <= prev {
			t.Errorf("K%d used %d qubits, not more than K%d's %d",
				k, emb.PhysicalQubits(), k-4, prev)
		}
		prev = emb.PhysicalQubits()
	}
}

// Pegasus (degree 15) embeds cliques with shorter chains than the older
// Chimera generation (degree 6) of comparable size — the hardware
// advance between the prior MQO study's 2000Q and the Advantage system
// the paper targets.
func TestPegasusBeatsChimeraOnCliques(t *testing.T) {
	pegasus, _ := topology.Pegasus(4)    // 264 qubits
	chimera := topology.Chimera(6, 6, 4) // 288 qubits
	src := completeAdj(10)
	pe, err := Embed(src, pegasus, Options{Seed: 3, Tries: 12})
	if err != nil {
		t.Fatalf("pegasus: %v", err)
	}
	ch, err := Embed(src, chimera, Options{Seed: 3, Tries: 12})
	if err != nil {
		t.Fatalf("chimera: %v", err)
	}
	if err := pe.Validate(src, pegasus); err != nil {
		t.Fatal(err)
	}
	if err := ch.Validate(src, chimera); err != nil {
		t.Fatal(err)
	}
	if pe.PhysicalQubits() >= ch.PhysicalQubits() {
		t.Errorf("Pegasus used %d qubits, Chimera %d; expected Pegasus smaller",
			pe.PhysicalQubits(), ch.PhysicalQubits())
	}
}
