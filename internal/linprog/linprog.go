// Package linprog provides the binary (integer) linear programming
// machinery used as the intermediate representation between the paper's
// MILP join-ordering model and the final QUBO (paper §3.1–§3.4):
//
//   - Model: binary variables, a linear objective, and linear constraints
//     with either = or <= sense,
//   - ToEquality: conversion of inequality constraints to equalities by
//     introducing slack variables discretised into binary bits at a chosen
//     precision ω (Eq. 8/9: an integer bounded by C needs
//     ⌊log2(C/ω)⌋ + 1 bits),
//   - ToQUBO: the Lucas penalty transformation
//     H = A·Σ_j (b_j − S_j·x)² + B·Σ_i c_i x_i (Eq. 10), with coefficient
//     rounding to the discretisation grid.
//
// All decision variables are binary; continuous quantities enter only as
// bounded slacks, exactly as in the paper's pruned JO model.
package linprog

import (
	"fmt"
	"math"

	"quantumjoin/internal/qubo"
)

// Sense is the comparison sense of a constraint.
type Sense int

const (
	// EQ is an equality constraint Σ a_i x_i = b.
	EQ Sense = iota
	// LE is an inequality constraint Σ a_i x_i <= b.
	LE
)

// Term is one coefficient of a linear expression.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a linear constraint over binary variables.
type Constraint struct {
	Name  string
	Terms []Term
	Sense Sense
	RHS   float64
	// SlackBound is an upper bound on RHS − LHS over assignments that
	// satisfy the constraint; it determines how many binary slack bits the
	// equality conversion needs (Lemma 5.1 supplies this bound for the
	// cardinality-threshold constraints). Required for LE constraints.
	SlackBound float64
	// Integral marks constraints whose slack is integer-valued; their
	// slack is discretised at precision 1 regardless of the global ω.
	Integral bool
}

// VarClass tags the semantic role of a variable; the join-ordering encoder
// assigns meaningful classes, slack bits are tagged by the converter.
type VarClass int

const (
	// ClassDecision is an original problem variable.
	ClassDecision VarClass = iota
	// ClassSlack is a binary slack bit introduced by ToEquality.
	ClassSlack
)

// Model is a binary linear program: minimise Obj subject to Cons, with all
// variables in {0, 1}.
type Model struct {
	Names   []string
	Classes []VarClass
	Cons    []Constraint
	Obj     []Term
}

// NumVars returns the number of binary variables.
func (m *Model) NumVars() int { return len(m.Names) }

// AddVar appends a binary decision variable and returns its index.
func (m *Model) AddVar(name string) int {
	m.Names = append(m.Names, name)
	m.Classes = append(m.Classes, ClassDecision)
	return len(m.Names) - 1
}

func (m *Model) addSlackVar(name string) int {
	m.Names = append(m.Names, name)
	m.Classes = append(m.Classes, ClassSlack)
	return len(m.Names) - 1
}

// AddConstraint appends a constraint.
func (m *Model) AddConstraint(c Constraint) {
	m.Cons = append(m.Cons, c)
}

// AddObjectiveTerm adds coef·x_v to the minimisation objective.
func (m *Model) AddObjectiveTerm(v int, coef float64) {
	m.Obj = append(m.Obj, Term{Var: v, Coef: coef})
}

// Validate checks that all variable references are in range and that LE
// constraints carry a usable slack bound.
func (m *Model) Validate() error {
	n := m.NumVars()
	check := func(ts []Term, where string) error {
		for _, t := range ts {
			if t.Var < 0 || t.Var >= n {
				return fmt.Errorf("linprog: %s references variable %d outside [0,%d)", where, t.Var, n)
			}
		}
		return nil
	}
	if err := check(m.Obj, "objective"); err != nil {
		return err
	}
	for i, c := range m.Cons {
		if err := check(c.Terms, fmt.Sprintf("constraint %d (%s)", i, c.Name)); err != nil {
			return err
		}
		if c.Sense == LE && (c.SlackBound < 0 || math.IsNaN(c.SlackBound)) {
			return fmt.Errorf("linprog: constraint %d (%s) is <= but has invalid slack bound %v", i, c.Name, c.SlackBound)
		}
	}
	return nil
}

// LHS evaluates a constraint's left-hand side under an assignment.
func (c *Constraint) LHS(x []bool) float64 {
	v := 0.0
	for _, t := range c.Terms {
		if x[t.Var] {
			v += t.Coef
		}
	}
	return v
}

// Satisfied reports whether the constraint holds under x within tol.
func (c *Constraint) Satisfied(x []bool, tol float64) bool {
	lhs := c.LHS(x)
	switch c.Sense {
	case EQ:
		return math.Abs(lhs-c.RHS) <= tol
	case LE:
		return lhs <= c.RHS+tol
	default:
		return false
	}
}

// Feasible reports whether x satisfies every constraint within tol.
func (m *Model) Feasible(x []bool, tol float64) bool {
	for i := range m.Cons {
		if !m.Cons[i].Satisfied(x, tol) {
			return false
		}
	}
	return true
}

// Objective evaluates the objective under x.
func (m *Model) Objective(x []bool) float64 {
	v := 0.0
	for _, t := range m.Obj {
		if x[t.Var] {
			v += t.Coef
		}
	}
	return v
}

// SlackBits returns the number of binary slack bits needed to represent a
// slack bounded by c at precision omega: ⌊log2(c/ω)⌋ + 1 (Eq. 9). A
// non-positive bound needs no bits.
func SlackBits(bound, omega float64) int {
	if bound <= 0 {
		return 0
	}
	if omega <= 0 {
		panic(fmt.Sprintf("linprog: non-positive precision %v", omega))
	}
	r := bound / omega
	if r < 1 {
		return 1
	}
	return int(math.Floor(math.Log2(r))) + 1
}

// ToEquality returns a copy of the model in which every LE constraint has
// been converted to an equality by adding binary slack bits:
//
//	Σ a_i x_i + ω Σ_k 2^(k-1) b_k = RHS    (Eq. 8 with discretised slack)
//
// Integral constraints use precision 1; others use omega. The original
// decision variables keep their indices; slack bits are appended.
func (m *Model) ToEquality(omega float64) (*Model, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if omega <= 0 {
		return nil, fmt.Errorf("linprog: precision ω must be positive, got %v", omega)
	}
	out := &Model{
		Names:   append([]string(nil), m.Names...),
		Classes: append([]VarClass(nil), m.Classes...),
		Obj:     append([]Term(nil), m.Obj...),
	}
	for ci, c := range m.Cons {
		nc := Constraint{
			Name:  c.Name,
			Terms: append([]Term(nil), c.Terms...),
			Sense: EQ,
			RHS:   c.RHS,
		}
		if c.Sense == LE {
			prec := omega
			if c.Integral {
				prec = 1
			}
			bits := SlackBits(c.SlackBound, prec)
			for k := 0; k < bits; k++ {
				v := out.addSlackVar(fmt.Sprintf("slack[%d,%s][%d]", ci, c.Name, k))
				nc.Terms = append(nc.Terms, Term{Var: v, Coef: prec * math.Pow(2, float64(k))})
			}
		}
		out.Cons = append(out.Cons, nc)
	}
	return out, nil
}

// PenaltyWeight returns the constraint penalty A for B = 1 following §3.4:
// the smallest violation of any constraint is ω (for discretised
// constraints), contributing A·ω² to H_A, which must exceed the largest
// possible objective saving C = Σ_i |c_i|; hence A = C/ω² + ε.
func (m *Model) PenaltyWeight(omega, eps float64) float64 {
	c := 0.0
	for _, t := range m.Obj {
		c += math.Abs(t.Coef)
	}
	if c == 0 {
		c = 1
	}
	return c/(omega*omega) + eps
}

// ToQUBO converts an equality-only model into the penalty QUBO of Eq. 10:
//
//	H = A Σ_j (b_j − Σ_i S_ji x_i)² + B Σ_i c_i x_i.
//
// Coefficients S_ji and b_j are rounded to the discretisation grid `round`
// when round > 0 (the paper rounds to precision ω so that valid solutions
// reach exactly zero residual despite discretised slacks). Returns an
// error if any constraint is not an equality.
func (m *Model) ToQUBO(penaltyA, penaltyB, round float64) (*qubo.QUBO, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	snap := func(v float64) float64 {
		if round <= 0 {
			return v
		}
		return math.Round(v/round) * round
	}
	q := qubo.New(m.NumVars())
	for i, c := range m.Cons {
		if c.Sense != EQ {
			return nil, fmt.Errorf("linprog: constraint %d (%s) is not an equality; call ToEquality first", i, c.Name)
		}
		b := snap(c.RHS)
		q.Offset += penaltyA * b * b
		for ai, ta := range c.Terms {
			sa := snap(ta.Coef)
			// Diagonal: s_a² x_a − 2 b s_a x_a.
			q.AddLinear(ta.Var, penaltyA*(sa*sa-2*b*sa))
			for bi := ai + 1; bi < len(c.Terms); bi++ {
				tb := c.Terms[bi]
				sb := snap(tb.Coef)
				if ta.Var == tb.Var {
					// Duplicate variable in one constraint: x² = x.
					q.AddLinear(ta.Var, penaltyA*2*sa*sb)
					continue
				}
				q.AddQuad(ta.Var, tb.Var, penaltyA*2*sa*sb)
			}
		}
	}
	for _, t := range m.Obj {
		q.AddLinear(t.Var, penaltyB*t.Coef)
	}
	return q, nil
}

// Solve enumerates all assignments of the model's variables and returns a
// feasible minimiser of the objective (for validation; limited to 24
// variables). The boolean result reports whether any feasible assignment
// exists.
func (m *Model) Solve(tol float64) ([]bool, float64, bool, error) {
	n := m.NumVars()
	if n > 24 {
		return nil, 0, false, fmt.Errorf("linprog: %d variables exceeds enumeration limit 24", n)
	}
	best := math.Inf(1)
	var bestX []bool
	x := make([]bool, n)
	for bits := uint64(0); bits < 1<<uint(n); bits++ {
		for i := 0; i < n; i++ {
			x[i] = bits&(1<<uint(i)) != 0
		}
		if !m.Feasible(x, tol) {
			continue
		}
		if v := m.Objective(x); v < best {
			best = v
			bestX = append([]bool(nil), x...)
		}
	}
	return bestX, best, bestX != nil, nil
}
