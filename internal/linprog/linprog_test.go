package linprog

import (
	"math"
	"strings"
	"testing"
)

// knapsackModel: minimise -3x0 - 4x1 - 5x2 subject to x0 + x1 + x2 <= 2.
func knapsackModel() *Model {
	m := &Model{}
	a := m.AddVar("x0")
	b := m.AddVar("x1")
	c := m.AddVar("x2")
	m.AddObjectiveTerm(a, -3)
	m.AddObjectiveTerm(b, -4)
	m.AddObjectiveTerm(c, -5)
	m.AddConstraint(Constraint{
		Name:  "cap",
		Terms: []Term{{a, 1}, {b, 1}, {c, 1}},
		Sense: LE, RHS: 2, SlackBound: 2, Integral: true,
	})
	return m
}

func TestSolveKnapsack(t *testing.T) {
	x, v, ok, err := knapsackModel().Solve(1e-9)
	if err != nil || !ok {
		t.Fatalf("Solve: %v ok=%v", err, ok)
	}
	if v != -9 {
		t.Fatalf("optimal = %v, want -9", v)
	}
	if x[0] || !x[1] || !x[2] {
		t.Fatalf("optimal x = %v, want (0,1,1)", x)
	}
}

func TestSlackBits(t *testing.T) {
	cases := []struct {
		bound, omega float64
		want         int
	}{
		{1, 1, 1},      // binary slack
		{2, 1, 2},      // the paper's 3-relation example: c_jmax = 2 -> 2 bits
		{2, 0.1, 5},    // one decimal -> +3 bits
		{2, 0.01, 8},   // two decimals
		{2, 0.001, 11}, // three decimals
		{3, 1, 2},
		{4, 1, 3},
		{0, 1, 0},
		{-1, 1, 0},
		{0.5, 1, 1},
	}
	for _, c := range cases {
		if got := SlackBits(c.bound, c.omega); got != c.want {
			t.Errorf("SlackBits(%v, %v) = %d, want %d", c.bound, c.omega, got, c.want)
		}
	}
}

func TestToEqualityPreservesFeasibleSet(t *testing.T) {
	m := knapsackModel()
	eq, err := m.ToEquality(1)
	if err != nil {
		t.Fatal(err)
	}
	// Slack bound 2 -> 2 bits appended.
	if eq.NumVars() != 5 {
		t.Fatalf("NumVars = %d, want 5", eq.NumVars())
	}
	if eq.Classes[3] != ClassSlack || eq.Classes[4] != ClassSlack {
		t.Fatal("slack bits not tagged")
	}
	// Every original feasible point must extend to a feasible point of the
	// equality model with some slack assignment, and vice versa.
	for bits := 0; bits < 8; bits++ {
		x := []bool{bits&1 != 0, bits&2 != 0, bits&4 != 0}
		origFeasible := m.Feasible(x, 1e-9)
		extends := false
		for s := 0; s < 4; s++ {
			full := append(append([]bool(nil), x...), s&1 != 0, s&2 != 0)
			if eq.Feasible(full, 1e-9) {
				extends = true
				break
			}
		}
		if origFeasible != extends {
			t.Errorf("x=%v: original feasible=%v, equality extension=%v", x, origFeasible, extends)
		}
	}
}

func TestToEqualityRejectsBadOmega(t *testing.T) {
	if _, err := knapsackModel().ToEquality(0); err == nil {
		t.Error("accepted ω=0")
	}
}

func TestToQUBOMinimumMatchesBILP(t *testing.T) {
	m := knapsackModel()
	eq, err := m.ToEquality(1)
	if err != nil {
		t.Fatal(err)
	}
	a := eq.PenaltyWeight(1, 0.5)
	q, err := eq.ToQUBO(a, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := q.BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	// The QUBO minimum must equal the BILP optimum (valid solution, zero
	// penalty) and the decision-variable part must be a BILP optimum.
	if math.Abs(sol.Value-(-9)) > 1e-6 {
		t.Fatalf("QUBO minimum %v, want -9", sol.Value)
	}
	if !m.Feasible(sol.Assignment[:3], 1e-9) {
		t.Fatalf("QUBO argmin %v infeasible for original model", sol.Assignment[:3])
	}
	if v := m.Objective(sol.Assignment[:3]); math.Abs(v-(-9)) > 1e-9 {
		t.Fatalf("QUBO argmin objective %v, want -9", v)
	}
}

func TestToQUBORejectsInequalities(t *testing.T) {
	if _, err := knapsackModel().ToQUBO(10, 1, 0); err == nil {
		t.Error("ToQUBO accepted inequality constraints")
	}
}

func TestToQUBOInvalidPenalised(t *testing.T) {
	// x0 + x1 = 1; objective x0. Invalid assignments must exceed any valid.
	m := &Model{}
	a := m.AddVar("a")
	b := m.AddVar("b")
	m.AddObjectiveTerm(a, 1)
	m.AddConstraint(Constraint{Terms: []Term{{a, 1}, {b, 1}}, Sense: EQ, RHS: 1})
	q, err := m.ToQUBO(10, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{
		"00": q.Value([]bool{false, false}),
		"10": q.Value([]bool{true, false}),
		"01": q.Value([]bool{false, true}),
		"11": q.Value([]bool{true, true}),
	}
	if vals["01"] != 0 {
		t.Errorf("valid zero-cost solution has energy %v", vals["01"])
	}
	if vals["10"] != 1 {
		t.Errorf("valid cost-1 solution has energy %v", vals["10"])
	}
	if vals["00"] < 10 || vals["11"] < 10 {
		t.Errorf("invalid solutions not penalised: %v", vals)
	}
}

func TestCoefficientRounding(t *testing.T) {
	m := &Model{}
	a := m.AddVar("a")
	m.AddConstraint(Constraint{Terms: []Term{{a, 0.999999}}, Sense: EQ, RHS: 1.000001})
	q, err := m.ToQUBO(1, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// After rounding both sides to 0.1 grid: (1 - x)², so x=1 has zero energy.
	if v := q.Value([]bool{true}); math.Abs(v) > 1e-12 {
		t.Errorf("rounded residual = %v, want 0", v)
	}
}

func TestPenaltyWeight(t *testing.T) {
	m := knapsackModel()
	if got := m.PenaltyWeight(1, 0.5); got != 12.5 {
		t.Errorf("PenaltyWeight = %v, want 12.5 (=3+4+5+0.5)", got)
	}
	// ω = 0.1 divides by ω².
	if got := m.PenaltyWeight(0.1, 0); math.Abs(got-1200) > 1e-9 {
		t.Errorf("PenaltyWeight(0.1) = %v, want 1200", got)
	}
	empty := &Model{}
	empty.AddVar("x")
	if got := empty.PenaltyWeight(1, 0); got != 1 {
		t.Errorf("PenaltyWeight with empty objective = %v, want 1", got)
	}
}

func TestValidateCatchesBadReferences(t *testing.T) {
	m := &Model{}
	m.AddVar("a")
	m.AddConstraint(Constraint{Terms: []Term{{5, 1}}, Sense: EQ, RHS: 0})
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "variable 5") {
		t.Errorf("Validate = %v", err)
	}
	m2 := &Model{}
	m2.AddVar("a")
	m2.AddConstraint(Constraint{Terms: []Term{{0, 1}}, Sense: LE, RHS: 1, SlackBound: -1})
	if err := m2.Validate(); err == nil {
		t.Error("Validate accepted negative slack bound on LE")
	}
}

func TestSolveInfeasible(t *testing.T) {
	m := &Model{}
	a := m.AddVar("a")
	m.AddConstraint(Constraint{Terms: []Term{{a, 1}}, Sense: EQ, RHS: 0.5})
	_, _, ok, err := m.Solve(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("infeasible model reported feasible")
	}
}

func TestSolveLimit(t *testing.T) {
	m := &Model{}
	for i := 0; i < 25; i++ {
		m.AddVar("x")
	}
	if _, _, _, err := m.Solve(1e-9); err == nil {
		t.Error("oversized Solve accepted")
	}
}
