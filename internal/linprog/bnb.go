package linprog

import (
	"context"
	"fmt"
	"math"
)

// BnBOptions tune the branch-and-bound MILP solver.
type BnBOptions struct {
	// MaxNodes caps the search (default 200000).
	MaxNodes int
	// Gap is the relative optimality gap at which a node is fathomed
	// (default 1e-9: exact).
	Gap float64
}

// BnBResult is the outcome of a branch-and-bound solve.
type BnBResult struct {
	// Feasible reports whether any integral solution was found.
	Feasible bool
	// X is the best integral assignment.
	X []bool
	// Objective is its objective value.
	Objective float64
	// Nodes is the number of explored nodes.
	Nodes int
	// Proven reports whether optimality was proven before hitting limits.
	Proven bool
}

// SolveBnB solves the binary model exactly by LP-relaxation-based branch
// and bound: at each node the LP relaxation over [0,1] provides a lower
// bound; integral relaxation optima close the node; otherwise the solver
// branches on the most fractional variable. This reproduces, at library
// scale, what the original study delegated to Gurobi for the classical
// MILP pathway.
func (m *Model) SolveBnB(opts BnBOptions) (BnBResult, error) {
	return m.SolveBnBContext(context.Background(), opts)
}

// SolveBnBContext is SolveBnB with cancellation: the context is checked
// before every node's simplex solve and at every branch, so deep searches
// respect request deadlines. On expiry it returns the incumbent found so
// far (Feasible reports whether one exists, Proven is false) together with
// the context error wrapped in partial-progress information.
func (m *Model) SolveBnBContext(ctx context.Context, opts BnBOptions) (BnBResult, error) {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 200000
	}
	if opts.Gap <= 0 {
		opts.Gap = 1e-9
	}
	n := m.NumVars()
	res := BnBResult{Objective: math.Inf(1)}

	type node struct {
		fixed []float64 // -1 = free
		bound float64
	}
	free := make([]float64, n)
	for i := range free {
		free[i] = -1
	}
	root := node{fixed: free}
	rootLP, err := m.SolveLP(root.fixed)
	if err != nil {
		return res, err
	}
	switch rootLP.Status {
	case LPInfeasible:
		res.Proven = true
		return res, nil
	case LPUnbounded:
		return res, fmt.Errorf("linprog: LP relaxation unbounded; binary model malformed")
	}
	root.bound = rootLP.Objective

	// Depth-first search; children are pushed best-branch-last so the
	// preferred branch is explored first.
	stack := []node{root}

	for len(stack) > 0 && res.Nodes < opts.MaxNodes {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("linprog: branch and bound interrupted after %d nodes: %w", res.Nodes, err)
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++
		if res.Feasible && nd.bound >= res.Objective-math.Abs(res.Objective)*opts.Gap-1e-9 {
			continue
		}
		sol, err := m.SolveLP(nd.fixed)
		if err != nil {
			return res, err
		}
		if sol.Status != LPOptimal {
			continue
		}
		if res.Feasible && sol.Objective >= res.Objective-math.Abs(res.Objective)*opts.Gap-1e-9 {
			continue
		}
		// Find the most fractional variable.
		branch := -1
		worst := 0.0
		for i, v := range sol.X {
			if nd.fixed[i] >= 0 {
				continue
			}
			frac := math.Abs(v - math.Round(v))
			if frac > worst+1e-12 {
				worst = frac
				branch = i
			}
		}
		if branch < 0 || worst < 1e-6 {
			// Integral: round and verify.
			x := make([]bool, n)
			for i, v := range sol.X {
				if nd.fixed[i] >= 0 {
					x[i] = nd.fixed[i] > 0.5
				} else {
					x[i] = v > 0.5
				}
			}
			if !m.Feasible(x, 1e-6) {
				continue
			}
			obj := m.Objective(x)
			if !res.Feasible || obj < res.Objective {
				res.Feasible = true
				res.Objective = obj
				res.X = x
			}
			continue
		}
		// Branch: explore the rounded-towards side first (DFS on a slice
		// acts LIFO, so push the preferred child last).
		lo := append([]float64(nil), nd.fixed...)
		hi := append([]float64(nil), nd.fixed...)
		lo[branch] = 0
		hi[branch] = 1
		first, second := lo, hi
		if sol.X[branch] > 0.5 {
			first, second = hi, lo
		}
		stack = append(stack, node{fixed: second, bound: sol.Objective})
		stack = append(stack, node{fixed: first, bound: sol.Objective})
	}
	res.Proven = len(stack) == 0
	return res, nil
}
