package linprog

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestSolveLPSimple(t *testing.T) {
	// min -x0 - x1 s.t. x0 + x1 <= 1.5, x in [0,1]: optimum -1.5.
	m := &Model{}
	a := m.AddVar("a")
	b := m.AddVar("b")
	m.AddObjectiveTerm(a, -1)
	m.AddObjectiveTerm(b, -1)
	m.AddConstraint(Constraint{Terms: []Term{{a, 1}, {b, 1}}, Sense: LE, RHS: 1.5, SlackBound: 1.5, Integral: false})
	sol, err := m.SolveLP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != LPOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective-(-1.5)) > 1e-6 {
		t.Fatalf("objective %v, want -1.5", sol.Objective)
	}
	if math.Abs(sol.X[0]+sol.X[1]-1.5) > 1e-6 {
		t.Fatalf("x = %v", sol.X)
	}
}

func TestSolveLPRespectsUpperBounds(t *testing.T) {
	// min -x0 with no constraints: bounded at x0 = 1 by the [0,1] box.
	m := &Model{}
	a := m.AddVar("a")
	m.AddObjectiveTerm(a, -1)
	sol, err := m.SolveLP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != LPOptimal || math.Abs(sol.X[0]-1) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveLPEquality(t *testing.T) {
	// min x0 s.t. x0 + x1 = 1: optimum 0 with x1 = 1.
	m := &Model{}
	a := m.AddVar("a")
	b := m.AddVar("b")
	m.AddObjectiveTerm(a, 1)
	m.AddConstraint(Constraint{Terms: []Term{{a, 1}, {b, 1}}, Sense: EQ, RHS: 1})
	sol, err := m.SolveLP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != LPOptimal || math.Abs(sol.Objective) > 1e-6 || math.Abs(sol.X[1]-1) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveLPInfeasible(t *testing.T) {
	// x0 + x1 = 3 cannot hold with x in [0,1].
	m := &Model{}
	a := m.AddVar("a")
	b := m.AddVar("b")
	m.AddConstraint(Constraint{Terms: []Term{{a, 1}, {b, 1}}, Sense: EQ, RHS: 3})
	sol, err := m.SolveLP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != LPInfeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestSolveLPNegativeRHS(t *testing.T) {
	// -x0 <= -0.5 means x0 >= 0.5; minimising x0 gives 0.5.
	m := &Model{}
	a := m.AddVar("a")
	m.AddObjectiveTerm(a, 1)
	m.AddConstraint(Constraint{Terms: []Term{{a, -1}}, Sense: LE, RHS: -0.5, SlackBound: 1})
	sol, err := m.SolveLP(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != LPOptimal || math.Abs(sol.X[0]-0.5) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestSolveLPWithFixedVariables(t *testing.T) {
	m := &Model{}
	a := m.AddVar("a")
	b := m.AddVar("b")
	m.AddObjectiveTerm(a, -2)
	m.AddObjectiveTerm(b, -1)
	m.AddConstraint(Constraint{Terms: []Term{{a, 1}, {b, 1}}, Sense: LE, RHS: 1, SlackBound: 1, Integral: true})
	fixed := []float64{0, -1} // force a = 0
	sol, err := m.SolveLP(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.X[0]) > 1e-6 || math.Abs(sol.X[1]-1) > 1e-6 {
		t.Fatalf("sol = %+v", sol)
	}
}

func TestBnBMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		m := &Model{}
		for i := 0; i < n; i++ {
			m.AddVar("x")
			m.AddObjectiveTerm(i, math.Round(rng.NormFloat64()*10)/2)
		}
		// A couple of random knapsack constraints.
		for k := 0; k < 2; k++ {
			c := Constraint{Sense: LE, RHS: float64(1 + rng.Intn(n)), Integral: true}
			for i := 0; i < n; i++ {
				if rng.Float64() < 0.7 {
					c.Terms = append(c.Terms, Term{i, 1})
				}
			}
			c.SlackBound = c.RHS
			if len(c.Terms) == 0 {
				continue
			}
			m.AddConstraint(c)
		}
		// And one equality pinning the parity structure.
		eq := Constraint{Sense: EQ, RHS: 1, Terms: []Term{{0, 1}, {n - 1, 1}}}
		m.AddConstraint(eq)

		bx, bObj, bFeas, err := m.Solve(1e-9)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.SolveBnB(BnBOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Feasible != bFeas {
			t.Fatalf("trial %d: feasibility mismatch: bnb=%v enum=%v", trial, got.Feasible, bFeas)
		}
		if !bFeas {
			continue
		}
		if math.Abs(got.Objective-bObj) > 1e-6 {
			t.Fatalf("trial %d: bnb %v != enumeration %v (enum x=%v)", trial, got.Objective, bObj, bx)
		}
		if !m.Feasible(got.X, 1e-6) {
			t.Fatalf("trial %d: bnb solution infeasible", trial)
		}
		if !got.Proven {
			t.Fatalf("trial %d: optimality not proven", trial)
		}
	}
}

func TestBnBInfeasibleModel(t *testing.T) {
	m := &Model{}
	a := m.AddVar("a")
	m.AddConstraint(Constraint{Terms: []Term{{a, 1}}, Sense: EQ, RHS: 0.5})
	res, err := m.SolveBnB(BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("infeasible model reported feasible")
	}
}

func TestBnBContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m := &Model{}
	n := 10
	for i := 0; i < n; i++ {
		m.AddVar("x")
		m.AddObjectiveTerm(i, rng.NormFloat64())
	}
	c := Constraint{Sense: LE, RHS: 4, Integral: true, SlackBound: 4}
	for i := 0; i < n; i++ {
		c.Terms = append(c.Terms, Term{i, 1})
	}
	m.AddConstraint(c)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := m.SolveBnBContext(ctx, BnBOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Proven {
		t.Fatal("cancelled search claims a proven optimum")
	}

	// A live context must leave the result identical to SolveBnB.
	got, err := m.SolveBnBContext(context.Background(), BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.SolveBnB(BnBOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Feasible != want.Feasible || math.Abs(got.Objective-want.Objective) > 1e-9 {
		t.Fatalf("context solve %+v differs from plain solve %+v", got, want)
	}
}

func TestLPStatusString(t *testing.T) {
	if LPOptimal.String() != "optimal" || LPInfeasible.String() != "infeasible" ||
		LPUnbounded.String() != "unbounded" || LPStatus(9).String() == "" {
		t.Fatal("status strings wrong")
	}
}
