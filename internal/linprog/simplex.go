package linprog

import (
	"errors"
	"fmt"
	"math"
)

// This file implements a dense two-phase primal simplex solver for linear
// programming relaxations of the package's binary models, plus the
// branch-and-bound solver built on it (bnb.go). Together they stand in
// for the commercial MILP solver (Gurobi) the original study used to
// solve the Trummer/Koch join-ordering model classically (§3.1, §6.1).

// LPStatus reports the outcome of an LP solve.
type LPStatus int

const (
	// LPOptimal means an optimal basic feasible solution was found.
	LPOptimal LPStatus = iota
	// LPInfeasible means the constraints admit no solution.
	LPInfeasible
	// LPUnbounded means the objective is unbounded below.
	LPUnbounded
)

// String implements fmt.Stringer.
func (s LPStatus) String() string {
	switch s {
	case LPOptimal:
		return "optimal"
	case LPInfeasible:
		return "infeasible"
	case LPUnbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("LPStatus(%d)", int(s))
	}
}

// LPSolution is the result of an LP relaxation solve.
type LPSolution struct {
	Status LPStatus
	// X contains the variable values (original model variables only).
	X []float64
	// Objective is the optimal objective value (minimisation).
	Objective float64
}

// lp is the internal standard form: minimise c·x subject to rows with
// sense LE/EQ, x >= 0. Variable upper bounds are emitted as explicit LE
// rows by the builder.
type lp struct {
	nVars int
	rows  []lpRow
	c     []float64
}

type lpRow struct {
	coef  []float64
	sense Sense
	rhs   float64
}

const lpEps = 1e-9

// SolveLP solves the LP relaxation of the model: all variables continuous
// in [0, 1] (plus non-negative slack bits introduced earlier, also bounded
// by 1 since they are binary in the integral model), constraints as
// given. Fixed assigns variables to constants (used by branch and bound);
// entries outside [0, 1] mean free.
func (m *Model) SolveLP(fixed []float64) (LPSolution, error) {
	if err := m.Validate(); err != nil {
		return LPSolution{}, err
	}
	n := m.NumVars()
	p := lp{nVars: n, c: make([]float64, n)}
	for _, t := range m.Obj {
		p.c[t.Var] += t.Coef
	}
	for i := range m.Cons {
		c := &m.Cons[i]
		row := lpRow{coef: make([]float64, n), sense: c.Sense, rhs: c.RHS}
		for _, t := range c.Terms {
			row.coef[t.Var] += t.Coef
		}
		p.rows = append(p.rows, row)
	}
	// Variable bounds x_i <= 1, and fixing for branch and bound.
	for i := 0; i < n; i++ {
		if fixed != nil && fixed[i] >= 0 && fixed[i] <= 1 {
			row := lpRow{coef: make([]float64, n), sense: EQ, rhs: fixed[i]}
			row.coef[i] = 1
			p.rows = append(p.rows, row)
			continue
		}
		row := lpRow{coef: make([]float64, n), sense: LE, rhs: 1}
		row.coef[i] = 1
		p.rows = append(p.rows, row)
	}
	return p.solve()
}

// solve runs two-phase simplex on the standard form.
func (p *lp) solve() (LPSolution, error) {
	m := len(p.rows)
	n := p.nVars

	// Normalise RHS >= 0. LE with negative RHS becomes GE after negation;
	// GE rows get a surplus variable (negative slack) plus an artificial.
	type rowKind int
	const (
		kindLE rowKind = iota
		kindGE
		kindEQ
	)
	kinds := make([]rowKind, m)
	A := make([][]float64, m)
	b := make([]float64, m)
	for i, r := range p.rows {
		A[i] = append([]float64(nil), r.coef...)
		b[i] = r.rhs
		switch r.sense {
		case LE:
			kinds[i] = kindLE
		case EQ:
			kinds[i] = kindEQ
		default:
			return LPSolution{}, errors.New("linprog: unsupported constraint sense")
		}
		if b[i] < 0 {
			for j := range A[i] {
				A[i][j] = -A[i][j]
			}
			b[i] = -b[i]
			if kinds[i] == kindLE {
				kinds[i] = kindGE
			}
		}
	}

	// Column layout: [original n | slacks/surplus | artificials].
	nSlack := 0
	for _, k := range kinds {
		if k == kindLE || k == kindGE {
			nSlack++
		}
	}
	nArt := 0
	for _, k := range kinds {
		if k == kindGE || k == kindEQ {
			nArt++
		}
	}
	total := n + nSlack + nArt
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackCol := n
	artCol := n + nSlack
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, total+1)
		copy(tab[i], A[i])
		tab[i][total] = b[i]
		switch kinds[i] {
		case kindLE:
			tab[i][slackCol] = 1
			basis[i] = slackCol
			slackCol++
		case kindGE:
			tab[i][slackCol] = -1
			slackCol++
			tab[i][artCol] = 1
			basis[i] = artCol
			artCol++
		case kindEQ:
			tab[i][artCol] = 1
			basis[i] = artCol
			artCol++
		}
	}

	// Phase 1: minimise the sum of artificial variables.
	if nArt > 0 {
		phase1 := make([]float64, total)
		for j := n + nSlack; j < total; j++ {
			phase1[j] = 1
		}
		val, status := p.runSimplex(tab, basis, phase1, total)
		if status != LPOptimal {
			return LPSolution{Status: LPInfeasible}, nil
		}
		if val > 1e-6 {
			return LPSolution{Status: LPInfeasible}, nil
		}
		// Drive any remaining artificial variables out of the basis.
		for i := 0; i < m; i++ {
			if basis[i] < n+nSlack {
				continue
			}
			pivoted := false
			for j := 0; j < n+nSlack; j++ {
				if math.Abs(tab[i][j]) > lpEps {
					p.pivot(tab, basis, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; harmless.
				continue
			}
		}
	}

	// Phase 2: the real objective (artificial columns frozen at zero).
	obj := make([]float64, total)
	copy(obj, p.c)
	for i := 0; i < m; i++ {
		if basis[i] >= n+nSlack {
			// A basic artificial at value ~0 in a redundant row: ensure it
			// cannot re-enter with weight.
			continue
		}
	}
	val, status := p.runSimplexRestricted(tab, basis, obj, total, n+nSlack)
	if status == LPUnbounded {
		return LPSolution{Status: LPUnbounded}, nil
	}
	x := make([]float64, p.nVars)
	for i, bv := range basis {
		if bv < p.nVars {
			x[bv] = tab[i][total]
		}
	}
	return LPSolution{Status: LPOptimal, X: x, Objective: val}, nil
}

// runSimplex minimises obj over all columns.
func (p *lp) runSimplex(tab [][]float64, basis []int, obj []float64, total int) (float64, LPStatus) {
	return p.runSimplexRestricted(tab, basis, obj, total, total)
}

// runSimplexRestricted minimises obj allowing only columns < allowed to
// enter the basis (used in phase 2 to keep artificials out).
func (p *lp) runSimplexRestricted(tab [][]float64, basis []int, obj []float64, total, allowed int) (float64, LPStatus) {
	m := len(tab)
	// Reduced costs are computed directly: r_j = c_j - c_B · B^{-1} A_j,
	// with the tableau kept in B^{-1}-applied form, so r_j = c_j - Σ_i
	// c_{basis[i]} tab[i][j].
	maxIter := 200 * (total + m)
	for iter := 0; iter < maxIter; iter++ {
		// Compute reduced costs; Bland's rule (smallest index) prevents
		// cycling.
		enter := -1
		for j := 0; j < allowed; j++ {
			r := obj[j]
			for i := 0; i < m; i++ {
				if c := obj[basis[i]]; c != 0 {
					r -= c * tab[i][j]
				}
			}
			if r < -1e-7 {
				enter = j
				break
			}
		}
		if enter < 0 {
			val := 0.0
			for i := 0; i < m; i++ {
				val += obj[basis[i]] * tab[i][total]
			}
			return val, LPOptimal
		}
		// Ratio test.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > lpEps {
				ratio := tab[i][total] / tab[i][enter]
				if ratio < best-lpEps || (math.Abs(ratio-best) <= lpEps && (leave < 0 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return 0, LPUnbounded
		}
		p.pivot(tab, basis, leave, enter, total)
	}
	// Iteration limit: treat as optimal-so-far (degenerate stalling).
	val := 0.0
	for i := 0; i < m; i++ {
		val += obj[basis[i]] * tab[i][total]
	}
	return val, LPOptimal
}

func (p *lp) pivot(tab [][]float64, basis []int, row, col, total int) {
	pv := tab[row][col]
	inv := 1 / pv
	for j := 0; j <= total; j++ {
		tab[row][j] *= inv
	}
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			tab[i][j] -= f * tab[row][j]
		}
	}
	basis[row] = col
}
