package noise

import "quantumjoin/internal/circuit"

// TimingModel reproduces the paper's §4.2.1 timing observation: the pure
// circuit sampling time t_s is tens of milliseconds, while the overall QPU
// time t_qpu — including initialisation and communication overhead, but
// not queueing — is orders of magnitude larger and nearly independent of
// problem size. All durations are in nanoseconds.
type TimingModel struct {
	// RepetitionDelayNs is the reset/delay between successive shots.
	RepetitionDelayNs float64
	// ReadoutNs is the measurement duration per shot.
	ReadoutNs float64
	// JobOverheadNs covers per-job initialisation, loading, calibration
	// checks and communication (the dominant term).
	JobOverheadNs float64
}

// DefaultTimingModel matches the magnitudes reported for IBM Q Auckland:
// t_s ≈ 78–114 ms for 1024 shots and t_qpu ≈ 9.7–10.4 s.
func DefaultTimingModel() TimingModel {
	return TimingModel{
		RepetitionDelayNs: 70_000,
		ReadoutNs:         5_000,
		JobOverheadNs:     9.66e9,
	}
}

// SamplingTimeNs returns t_s: shots × (circuit duration + readout + reset).
func (m TimingModel) SamplingTimeNs(c *circuit.Circuit, cal Calibration, shots int) float64 {
	per := c.Duration(cal.GateTime1Q, cal.GateTime2Q) + m.ReadoutNs + m.RepetitionDelayNs
	return float64(shots) * per
}

// TotalQPUTimeNs returns t_qpu = t_s + job overhead.
func (m TimingModel) TotalQPUTimeNs(c *circuit.Circuit, cal Calibration, shots int) float64 {
	return m.SamplingTimeNs(c, cal, shots) + m.JobOverheadNs
}
