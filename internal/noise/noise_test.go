package noise

import (
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/circuit"
)

func TestCalibrationsMatchPaper(t *testing.T) {
	a := Auckland()
	if a.T1 != 151130 || a.T2 != 138720 {
		t.Errorf("Auckland T1/T2 = %v/%v", a.T1, a.T2)
	}
	if math.Abs(a.GAvg()-472.51) > 1e-9 {
		t.Errorf("Auckland g_avg = %v", a.GAvg())
	}
	w := Washington()
	if w.T1 != 92810 || w.T2 != 93360 || math.Abs(w.GAvg()-550.41) > 1e-9 {
		t.Errorf("Washington calibration wrong: %+v", w)
	}
	// The paper's observation: more qubits do not mean better coherence.
	if w.MaxDepth() >= a.MaxDepth() {
		t.Errorf("Washington depth budget %d should be below Auckland's %d",
			w.MaxDepth(), a.MaxDepth())
	}
}

func TestMaxDepthFormula(t *testing.T) {
	a := Auckland()
	want := int(math.Floor(math.Min(a.T1, a.T2) / a.GAvg()))
	if a.MaxDepth() != want {
		t.Errorf("MaxDepth = %d, want %d", a.MaxDepth(), want)
	}
	// Auckland: 138720/472.51 ≈ 293.
	if a.MaxDepth() != 293 {
		t.Errorf("Auckland MaxDepth = %d, want 293", a.MaxDepth())
	}
}

func deepCircuit(n, layers int) *circuit.Circuit {
	c := circuit.New(n)
	for l := 0; l < layers; l++ {
		for q := 0; q+1 < n; q++ {
			c.Append(circuit.G2(circuit.CX, q, q+1, 0))
		}
	}
	return c
}

func TestLambdaMonotoneInDepth(t *testing.T) {
	a := Auckland()
	prev := -1.0
	for _, layers := range []int{1, 5, 20, 100, 400} {
		l := a.Lambda(deepCircuit(5, layers))
		if l < 0 || l > 1 {
			t.Fatalf("λ = %v outside [0,1]", l)
		}
		if l <= prev {
			t.Fatalf("λ not increasing with depth: %v after %v", l, prev)
		}
		prev = l
	}
	// A very deep circuit must be essentially fully depolarised.
	if l := a.Lambda(deepCircuit(5, 2000)); l < 0.99 {
		t.Errorf("λ for 2000 layers = %v, want ~1", l)
	}
}

func TestWithinCoherence(t *testing.T) {
	a := Auckland()
	if !a.WithinCoherence(deepCircuit(3, 10)) {
		t.Error("shallow circuit should fit the coherence budget")
	}
	if a.WithinCoherence(deepCircuit(3, 500)) {
		t.Error("deep circuit should exceed the coherence budget")
	}
}

func TestMixedExpectation(t *testing.T) {
	if MixedExpectation(0, 2, 10) != 2 {
		t.Error("λ=0 should return ideal")
	}
	if MixedExpectation(1, 2, 10) != 10 {
		t.Error("λ=1 should return uniform")
	}
	if got := MixedExpectation(0.5, 2, 10); got != 6 {
		t.Errorf("λ=0.5 = %v, want 6", got)
	}
}

func TestSamplerFullyDepolarised(t *testing.T) {
	s := Sampler{Lambda: 1, NumQubits: 3}
	rng := rand.New(rand.NewSource(1))
	out := s.Sample(rng, 8000, func() uint64 { return 0 })
	counts := make([]int, 8)
	for _, b := range out {
		if b > 7 {
			t.Fatalf("sample %d outside 3-qubit range", b)
		}
		counts[b]++
	}
	for b, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("state %d count %d far from uniform 1000", b, c)
		}
	}
}

func TestSamplerNoNoisePassesThrough(t *testing.T) {
	s := Sampler{Lambda: 0, NumQubits: 3}
	rng := rand.New(rand.NewSource(2))
	out := s.Sample(rng, 100, func() uint64 { return 5 })
	for _, b := range out {
		if b != 5 {
			t.Fatalf("λ=0 sampler altered outcome: %d", b)
		}
	}
}

func TestSamplerReadoutFlips(t *testing.T) {
	s := Sampler{Lambda: 0, ReadoutError: 0.5, NumQubits: 8}
	rng := rand.New(rand.NewSource(3))
	out := s.Sample(rng, 2000, func() uint64 { return 0 })
	ones := 0
	for _, b := range out {
		for q := 0; q < 8; q++ {
			if b&(1<<uint(q)) != 0 {
				ones++
			}
		}
	}
	frac := float64(ones) / (2000 * 8)
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("readout error 0.5 flipped %v of bits, want ~0.5", frac)
	}
}

func TestTimingModelMagnitudes(t *testing.T) {
	m := DefaultTimingModel()
	a := Auckland()
	// A 27-qubit QAOA-scale circuit (~depth 500, mixed gates).
	c := deepCircuit(27, 20)
	ts := m.SamplingTimeNs(c, a, 1024)
	tq := m.TotalQPUTimeNs(c, a, 1024)
	// t_s should be tens of ms; t_qpu ~ 10 s (paper: 77.9 ms / 9.74 s).
	if ts < 50e6 || ts > 500e6 {
		t.Errorf("t_s = %v ms outside expected tens-of-ms range", ts/1e6)
	}
	if tq < 9e9 || tq > 11e9 {
		t.Errorf("t_qpu = %v s outside ~10 s range", tq/1e9)
	}
	// The paper's headline: t_qpu is orders of magnitude above t_s.
	if tq < 20*ts {
		t.Errorf("t_qpu %v not ≫ t_s %v", tq, ts)
	}
}
