package noise

import (
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/circuit"
)

func bellCircuit() *circuit.Circuit {
	c := circuit.New(2)
	c.Append(circuit.G1(circuit.H, 0, 0), circuit.G2(circuit.CX, 0, 1, 0))
	return c
}

func TestTrajectoryNoiselessMatchesIdeal(t *testing.T) {
	cal := Calibration{T1: 1e12, T2: 1e12, GateTime1Q: 1, GateTime2Q: 1}
	ts := TrajectorySampler{Calibration: cal}
	rng := rand.New(rand.NewSource(1))
	out, err := ts.Sample(bellCircuit(), 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for _, b := range out {
		counts[b]++
	}
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("noiseless trajectories produced odd-parity Bell outcomes: %v", counts)
	}
	frac := float64(counts[0]) / 4000
	if frac < 0.42 || frac > 0.58 {
		t.Fatalf("|00> fraction %v", frac)
	}
}

func TestTrajectoryStrongNoiseDecoheres(t *testing.T) {
	cal := Calibration{T1: 1e12, T2: 1e12, GateTime1Q: 1, GateTime2Q: 1,
		Error1Q: 0.5, Error2Q: 0.5}
	// Deep circuit so errors accumulate.
	c := circuit.New(2)
	for i := 0; i < 20; i++ {
		c.Append(circuit.G1(circuit.H, 0, 0), circuit.G2(circuit.CX, 0, 1, 0))
	}
	ts := TrajectorySampler{Calibration: cal, MaxTrajectories: 200}
	rng := rand.New(rand.NewSource(2))
	out, err := ts.Sample(c, 4000, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 4)
	for _, b := range out {
		counts[b]++
	}
	// All four outcomes must appear with substantial probability.
	for b, n := range counts {
		if n/4000 < 0.08 {
			t.Fatalf("outcome %d frequency %v: not decohered", b, n/4000)
		}
	}
}

// The trajectory model and the analytic λ mixing must agree on the
// magnitude of signal loss for a mid-depth circuit: compare the
// probability retained on the ideal Bell support.
func TestTrajectoryAgreesWithAnalyticLambda(t *testing.T) {
	cal := Auckland()
	cal.Error2Q = 0.02 // accelerate decoherence for a short test circuit
	c := circuit.New(2)
	for i := 0; i < 15; i++ {
		c.Append(circuit.G2(circuit.CX, 0, 1, 0), circuit.G2(circuit.CX, 0, 1, 0))
	}
	c.Append(circuit.G1(circuit.H, 0, 0), circuit.G2(circuit.CX, 0, 1, 0))
	lambda := cal.Lambda(c)
	ts := TrajectorySampler{Calibration: cal, MaxTrajectories: 400}
	rng := rand.New(rand.NewSource(3))
	out, err := ts.Sample(c, 8000, rng)
	if err != nil {
		t.Fatal(err)
	}
	onSupport := 0
	for _, b := range out {
		if b == 0 || b == 3 {
			onSupport++
		}
	}
	got := float64(onSupport) / 8000
	// Analytic prediction: (1−λ)·1 + λ·0.5 on the Bell support.
	want := (1-lambda)*1 + lambda*0.5
	if math.Abs(got-want) > 0.12 {
		t.Fatalf("support probability %v vs analytic %v (λ=%v)", got, want, lambda)
	}
}

func TestTrajectoryRejectsBadShots(t *testing.T) {
	ts := TrajectorySampler{Calibration: Auckland()}
	if _, err := ts.Sample(bellCircuit(), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("accepted zero shots")
	}
}
