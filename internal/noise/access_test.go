package noise

import "testing"

func TestAccessModels(t *testing.T) {
	cloud := CloudAccess()
	local := LocalCoprocessor()
	// Same quantum compute, wildly different end-to-end latency.
	compute := 100e6 // 100 ms of sampling
	if cloud.JobTimeNs(compute) <= local.JobTimeNs(compute) {
		t.Fatal("cloud access should dominate local")
	}
	// A classical optimiser finishing in 10 ms beats cloud-attached
	// quantum hardware even with zero quantum compute time...
	classical := 10e6
	if cloud.EffectiveSpeedup(classical, 0) >= 1 {
		t.Fatalf("cloud speedup %v should be < 1 for fast classical solvers",
			cloud.EffectiveSpeedup(classical, 0))
	}
	// ...while a local co-processor with 1 ms compute can win.
	if local.EffectiveSpeedup(classical, 1e6) <= 1 {
		t.Fatalf("local speedup %v should be > 1", local.EffectiveSpeedup(classical, 1e6))
	}
}

func TestBreakEven(t *testing.T) {
	cloud := CloudAccess()
	if cloud.BreakEvenComputeNs() < 2e9 {
		t.Fatal("cloud break-even should include the queue wait")
	}
	local := LocalCoprocessor()
	// The paper's point quantified: the break-even classical time drops
	// by orders of magnitude with local deployment.
	if cloud.BreakEvenComputeNs()/local.BreakEvenComputeNs() < 1000 {
		t.Fatalf("cloud/local break-even ratio %v too small",
			cloud.BreakEvenComputeNs()/local.BreakEvenComputeNs())
	}
}
