// Package noise models the imperfections of NISQ gate-based QPUs at the
// level the paper's experiments observe them: decoherence bounded by the
// T1/T2 times, gate errors accumulating with gate count, and the resulting
// degradation of the sampled output distribution.
//
// Substitution note (DESIGN.md): instead of density-matrix simulation, the
// sampled distribution of a circuit is modelled as a global-depolarising
// mixture p' = (1−λ)·p_ideal + λ·uniform with λ derived from the circuit's
// gate counts, its duration relative to T1/T2, and per-gate error rates.
// This is the standard analytic model of the dominant effect the paper
// reports for Table 2: deep circuits decohere towards uniform sampling
// with only a weak QAOA signal remaining.
package noise

import (
	"math"
	"math/rand"

	"quantumjoin/internal/circuit"
)

// Calibration holds the device parameters the paper reports (§4.2.1).
// Times are in nanoseconds, error rates are per-gate probabilities.
type Calibration struct {
	Name string
	// T1 and T2 are the relaxation and dephasing times (ns).
	T1, T2 float64
	// GateTime1Q and GateTime2Q are typical gate durations (ns); their
	// weighted average is the paper's g_avg.
	GateTime1Q, GateTime2Q float64
	// Error1Q and Error2Q are per-gate error probabilities.
	Error1Q, Error2Q float64
	// ReadoutError is the per-qubit measurement error probability.
	ReadoutError float64
}

// Auckland is IBM Q Auckland (27 qubits, Falcon r5.11) at the calibration
// the paper reports: T1 = 151.13 µs, T2 = 138.72 µs, g_avg = 472.51 ns.
func Auckland() Calibration {
	return Calibration{
		Name: "ibm_auckland",
		T1:   151130, T2: 138720,
		GateTime1Q: 35, GateTime2Q: 472.51,
		Error1Q: 2.5e-4, Error2Q: 8.5e-3,
		ReadoutError: 1.2e-2,
	}
}

// Washington is IBM Q Washington (127 qubits, Eagle r1): T1 = 92.81 µs,
// T2 = 93.36 µs, g_avg = 550.41 ns.
func Washington() Calibration {
	return Calibration{
		Name: "ibm_washington",
		T1:   92810, T2: 93360,
		GateTime1Q: 35, GateTime2Q: 550.41,
		Error1Q: 4.0e-4, Error2Q: 1.2e-2,
		ReadoutError: 2.0e-2,
	}
}

// GAvg returns the average gate time the paper uses for the coherence
// budget (dominated by two-qubit gates on superconducting hardware).
func (c Calibration) GAvg() float64 { return c.GateTime2Q }

// MaxDepth is the paper's coherence-budget bound on circuit depth:
// d = ⌊min(T1, T2) / g_avg⌋ (§4.2.1).
func (c Calibration) MaxDepth() int {
	return int(math.Floor(math.Min(c.T1, c.T2) / c.GAvg()))
}

// Lambda computes the depolarising mixture weight for a transpiled
// circuit: 1 − F where the retained-signal fraction F combines per-gate
// fidelities with decoherence over the circuit's critical-path duration:
//
//	F = (1−e1)^n1q · (1−e2)^n2q · exp(−t·(1/T1 + 1/T2)/2)
func (c Calibration) Lambda(circ *circuit.Circuit) float64 {
	n1 := float64(circ.CountSingleQubit())
	n2 := float64(circ.CountTwoQubit())
	t := circ.Duration(c.GateTime1Q, c.GateTime2Q)
	logF := n1*math.Log1p(-c.Error1Q) + n2*math.Log1p(-c.Error2Q) - t*(1/c.T1+1/c.T2)/2
	f := math.Exp(logF)
	if f < 0 {
		f = 0
	}
	return 1 - f
}

// WithinCoherence reports whether the circuit's depth fits the coherence
// budget MaxDepth.
func (c Calibration) WithinCoherence(circ *circuit.Circuit) bool {
	return circ.Depth() <= c.MaxDepth()
}

// Sampler draws noisy measurement outcomes: with probability lambda a
// uniformly random basis state (fully depolarised), otherwise a sample
// from the ideal distribution provided by the ideal func. Readout errors
// flip each output bit independently.
type Sampler struct {
	Lambda       float64
	ReadoutError float64
	NumQubits    int
}

// Sample produces shots noisy outcomes given a source of ideal samples.
func (s Sampler) Sample(rng *rand.Rand, shots int, ideal func() uint64) []uint64 {
	out := make([]uint64, shots)
	mask := uint64(1)<<uint(s.NumQubits) - 1
	for i := range out {
		var b uint64
		if rng.Float64() < s.Lambda {
			b = rng.Uint64() & mask
		} else {
			b = ideal()
		}
		if s.ReadoutError > 0 {
			for q := 0; q < s.NumQubits; q++ {
				if rng.Float64() < s.ReadoutError {
					b ^= 1 << uint(q)
				}
			}
		}
		out[i] = b
	}
	return out
}

// MixedExpectation combines an ideal expectation value with the fully
// mixed (uniform) expectation under the depolarising model:
// E' = (1−λ)·E_ideal + λ·E_uniform. QAOA's classical optimiser sees this
// degraded signal on hardware.
func MixedExpectation(lambda, ideal, uniform float64) float64 {
	return (1-lambda)*ideal + lambda*uniform
}
