package noise

import (
	"fmt"
	"math/rand"

	"quantumjoin/internal/circuit"
	"quantumjoin/internal/qsim"
)

// TrajectorySampler simulates gate noise by quantum-trajectory Monte
// Carlo: each trajectory executes the circuit on the statevector
// simulator and, after every gate, inserts a uniformly random Pauli error
// on the touched qubits with the calibrated per-gate probability
// (depolarising channel unravelling). Decoherence over idle time is
// approximated by per-layer phase/bit flips at a rate set by the gate
// time over T1/T2.
//
// This is the physically detailed counterpart to Calibration.Lambda's
// analytic global-depolarising model; tests verify the two agree in the
// limits (zero noise → ideal distribution; strong noise → uniform). It is
// exponentially more expensive (one statevector evolution per trajectory)
// and therefore reserved for validation and small studies.
type TrajectorySampler struct {
	Calibration Calibration
	// Trajectories is the number of noisy circuit executions; shots are
	// distributed evenly across them (default: one per shot, capped by
	// MaxTrajectories).
	MaxTrajectories int
}

// Sample draws shots measurement outcomes from the noisy execution of the
// circuit.
func (ts TrajectorySampler) Sample(c *circuit.Circuit, shots int, rng *rand.Rand) ([]uint64, error) {
	if shots <= 0 {
		return nil, fmt.Errorf("noise: shots must be positive, got %d", shots)
	}
	trajectories := ts.MaxTrajectories
	if trajectories <= 0 {
		trajectories = 32
	}
	if trajectories > shots {
		trajectories = shots
	}
	out := make([]uint64, 0, shots)
	cal := ts.Calibration
	// Per-gate decoherence probability from the duration/T ratio.
	pIdle1 := cal.GateTime1Q * (1/cal.T1 + 1/cal.T2) / 2
	pIdle2 := cal.GateTime2Q * (1/cal.T1 + 1/cal.T2) / 2
	for tr := 0; tr < trajectories; tr++ {
		s, err := qsim.NewState(c.NumQubits)
		if err != nil {
			return nil, err
		}
		for _, g := range c.Gates {
			if err := s.ApplyGate(g); err != nil {
				return nil, err
			}
			var pErr float64
			if g.Kind.IsTwoQubit() {
				pErr = cal.Error2Q + pIdle2
			} else {
				pErr = cal.Error1Q + pIdle1
			}
			if rng.Float64() < pErr {
				if err := applyRandomPauli(s, g.Q0, rng); err != nil {
					return nil, err
				}
			}
			if g.Kind.IsTwoQubit() && rng.Float64() < pErr {
				if err := applyRandomPauli(s, g.Q1, rng); err != nil {
					return nil, err
				}
			}
		}
		per := shots / trajectories
		if tr < shots%trajectories {
			per++
		}
		if per == 0 {
			continue
		}
		out = append(out, s.Sample(rng, per)...)
	}
	return out, nil
}

// applyRandomPauli applies X, Y (as X then Z up to phase) or Z with equal
// probability — the depolarising channel's Kraus unravelling.
func applyRandomPauli(s *qsim.State, q int, rng *rand.Rand) error {
	switch rng.Intn(3) {
	case 0:
		return s.ApplyGate(circuit.G1(circuit.X, q, 0))
	case 1:
		if err := s.ApplyGate(circuit.G1(circuit.X, q, 0)); err != nil {
			return err
		}
		return s.ApplyGate(circuit.G1(circuit.RZ, q, 3.141592653589793))
	default:
		return s.ApplyGate(circuit.G1(circuit.RZ, q, 3.141592653589793))
	}
}
