package noise

import "math/rand"

// AccessModel captures how a QPU is reached from the query optimiser —
// the paper's closing argument (§8, Figure 1): QPUs accessed via cloud
// services pay network round trips and queueing that can eliminate any
// quantum speedup, which motivates LOCAL co-processor deployment. All
// durations in nanoseconds.
type AccessModel struct {
	Name string
	// RoundTripNs is the network round-trip latency per job submission.
	RoundTripNs float64
	// QueueWaitNs is the expected time-sharing queue wait per job.
	QueueWaitNs float64
	// DispatchNs is the local software stack overhead (driver, encoding).
	DispatchNs float64
}

// CloudAccess models typical shared cloud QPU access: tens of ms network
// RTT and seconds of queueing (a deliberately optimistic lower bound —
// public queues often run to minutes).
func CloudAccess() AccessModel {
	return AccessModel{
		Name:        "cloud",
		RoundTripNs: 40e6, // 40 ms
		QueueWaitNs: 2e9,  // 2 s
		DispatchNs:  1e6,
	}
}

// LocalCoprocessor models the paper's envisioned deployment: the QPU on a
// local interconnect next to the database server.
func LocalCoprocessor() AccessModel {
	return AccessModel{
		Name:        "local",
		RoundTripNs: 5e3, // 5 µs bus/driver round trip
		QueueWaitNs: 0,
		DispatchNs:  50e3,
	}
}

// SampleOverheadNs draws one job's access overhead: the fixed round trip
// and dispatch cost plus an exponentially distributed queue wait with mean
// QueueWaitNs. Time-shared queues are well modelled as M/M/1-ish waits —
// mostly short, occasionally far above the mean — which is exactly the
// tail that breaks tight optimiser deadlines (§8). Deterministic for a
// seeded rng, which the fault-injection layer relies on.
func (m AccessModel) SampleOverheadNs(rng *rand.Rand) float64 {
	wait := 0.0
	if m.QueueWaitNs > 0 {
		wait = m.QueueWaitNs * rng.ExpFloat64()
	}
	return m.RoundTripNs + m.DispatchNs + wait
}

// JobTimeNs is the end-to-end latency of one optimisation job whose pure
// on-QPU compute time is computeNs.
func (m AccessModel) JobTimeNs(computeNs float64) float64 {
	return m.RoundTripNs + m.QueueWaitNs + m.DispatchNs + computeNs
}

// BreakEvenComputeNs returns the classical optimisation time above which
// this access path can win at all: below it, access overhead alone
// exceeds the classical solver, and no amount of quantum speedup helps.
func (m AccessModel) BreakEvenComputeNs() float64 {
	return m.RoundTripNs + m.QueueWaitNs + m.DispatchNs
}

// EffectiveSpeedup compares a classical optimiser that needs classicalNs
// against quantum hardware with pure compute time quantumNs behind this
// access path; values below 1 mean the quantum path loses end to end.
func (m AccessModel) EffectiveSpeedup(classicalNs, quantumNs float64) float64 {
	return classicalNs / m.JobTimeNs(quantumNs)
}
