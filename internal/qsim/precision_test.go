package qsim

import (
	"math"
	"math/rand"
	"testing"
)

// narrowInto copies a complex128 state's amplitudes into a complex64 state,
// rounding each component to float32 — the starting point for precision
// comparisons on dense input.
func narrowInto(dst *State, src *State) {
	for i, a := range src.amps {
		dst.amps64[i] = complex64(a)
	}
}

// complex64ProbBound is the pinned per-basis probability deviation between
// the complex64 backend and the complex128 ground truth after a ~40-gate
// random circuit. float32 machine epsilon is ~1.2e-7 per amplitude; error
// compounds roughly with circuit depth, and the observed maximum across the
// seeds below is ~2e-6. The bound leaves an order of magnitude of headroom
// without ever tolerating a wrong kernel (a real bug shows up at 1e-1).
const complex64ProbBound = 5e-5

// TestComplex64KernelsTrackReference runs random circuits at both
// precisions from the same (narrowed) dense state and pins the maximum
// per-basis probability deviation and the diagonal-expectation deviation.
func TestComplex64KernelsTrackReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := SetWorkers(workers)
		rng := rand.New(rand.NewSource(int64(7101 + workers)))
		for trial := 0; trial < 6; trial++ {
			n := 2 + rng.Intn(9)
			c := randomCircuit(rng, n, 40)
			ref, _ := NewState(n)
			randomizeState(rng, ref)
			got, _ := NewStateWith(n, Complex64)
			narrowInto(got, ref)
			if err := ref.Run(c); err != nil {
				t.Fatal(err)
			}
			if err := got.Run(c); err != nil {
				t.Fatal(err)
			}
			maxD := 0.0
			for i := range ref.amps {
				if d := math.Abs(got.Probability(uint64(i)) - ref.Probability(uint64(i))); d > maxD {
					maxD = d
				}
			}
			if maxD > complex64ProbBound {
				t.Fatalf("workers=%d trial=%d n=%d: complex64 probabilities deviate by %g > %g",
					workers, trial, n, maxD, complex64ProbBound)
			}
			table := make([]float64, 1<<uint(n))
			for i := range table {
				table[i] = rng.NormFloat64()
			}
			eRef := ref.ExpectationTable(table)
			eGot := got.ExpectationTable(table)
			if d := math.Abs(eGot - eRef); d > complex64ProbBound*float64(len(table)) {
				t.Fatalf("workers=%d trial=%d n=%d: complex64 expectation deviates by %g", workers, trial, n, d)
			}
			if math.Abs(got.Norm()-1) > 1e-4 {
				t.Fatalf("complex64 norm drifted to %v", got.Norm())
			}
		}
		SetWorkers(prev)
	}
}

// TestPoolPrecisionIsolation is the regression test for cross-precision
// pool reuse: releasing a state at one precision and acquiring the same
// qubit count at the other must never hand back the stale-width buffer.
func TestPoolPrecisionIsolation(t *testing.T) {
	const n = 7
	wide, err := Acquire(n)
	if err != nil {
		t.Fatal(err)
	}
	wide.Release()
	narrow, err := AcquireWith(n, Complex64)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Precision() != Complex64 || len(narrow.amps64) != 1<<n || narrow.amps != nil {
		t.Fatalf("AcquireWith(Complex64) after a Complex128 release returned a stale-width state: prec=%v len128=%d len64=%d",
			narrow.Precision(), len(narrow.amps), len(narrow.amps64))
	}
	if narrow.Probability(0) != 1 {
		t.Fatal("acquired complex64 state not |0...0⟩")
	}
	narrow.Release()
	wide2, err := Acquire(n)
	if err != nil {
		t.Fatal(err)
	}
	defer wide2.Release()
	if wide2.Precision() != Complex128 || len(wide2.amps) != 1<<n || wide2.amps64 != nil {
		t.Fatalf("Acquire(Complex128) after a Complex64 release returned a stale-width state: prec=%v len128=%d len64=%d",
			wide2.Precision(), len(wide2.amps), len(wide2.amps64))
	}
	if wide2.Probability(0) != 1 {
		t.Fatal("recycled complex128 state not |0...0⟩")
	}
}

// TestSampleBatchMatchesSample pins the batched scan's bit-identity
// contract at both precisions: SampleBatch over k seeds must emit exactly
// the sequences k solo Sample calls would, including the rounding-tail
// argmax snapshot and the per-rng shuffle.
func TestSampleBatchMatchesSample(t *testing.T) {
	for _, prec := range []Precision{Complex128, Complex64} {
		rng := rand.New(rand.NewSource(7202))
		n := 9
		ref, _ := NewState(n)
		randomizeState(rng, ref)
		s, _ := NewStateWith(n, prec)
		if prec == Complex64 {
			narrowInto(s, ref)
		} else {
			copy(s.amps, ref.amps)
		}
		seeds := []int64{1, 42, 7, 1e9}
		shots := 64
		batchRngs := make([]*rand.Rand, len(seeds))
		for i, seed := range seeds {
			batchRngs[i] = rand.New(rand.NewSource(seed))
		}
		got := s.SampleBatch(batchRngs, shots)
		for i, seed := range seeds {
			want := s.Sample(rand.New(rand.NewSource(seed)), shots)
			if len(got[i]) != len(want) {
				t.Fatalf("prec=%v seed=%d: batch emitted %d shots, solo %d", prec, seed, len(got[i]), len(want))
			}
			for k := range want {
				if got[i][k] != want[k] {
					t.Fatalf("prec=%v seed=%d shot=%d: batch %d != solo %d", prec, seed, k, got[i][k], want[k])
				}
			}
		}
	}
}

// TestSampleBatchTailArgmax extends the rounding-tail golden to the batched
// scan: on a deliberately unnormalised state, every stream's leftover shots
// must land on the argmax state seen up to where that stream stopped.
func TestSampleBatchTailArgmax(t *testing.T) {
	for _, prec := range []Precision{Complex128, Complex64} {
		n := 3
		s, _ := NewStateWith(n, prec)
		set := func(i uint64, p float64) {
			if prec == Complex64 {
				s.amps64[i] = complex64(complex(math.Sqrt(p), 0))
			} else {
				s.amps[i] = complex(math.Sqrt(p), 0)
			}
		}
		set(0, 0)
		set(1, 0.1)
		set(2, 0.3)
		set(5, 0.1)
		shots := 2000
		rngs := []*rand.Rand{rand.New(rand.NewSource(606)), rand.New(rand.NewSource(607))}
		outs := s.SampleBatch(rngs, shots)
		last := s.size() - 1
		for r, out := range outs {
			counts := map[uint64]int{}
			for _, b := range out {
				counts[b]++
			}
			if counts[last] != 0 {
				t.Fatalf("prec=%v stream=%d: %d leftover shots on last basis index", prec, r, counts[last])
			}
			if counts[2] < shots/2 {
				t.Fatalf("prec=%v stream=%d: argmax state got %d/%d shots", prec, r, counts[2], shots)
			}
			if counts[1]+counts[2]+counts[5] != shots {
				t.Fatalf("prec=%v stream=%d: shots outside support: %v", prec, r, counts)
			}
		}
	}
}

// TestExpectationTableDeterministicComplex64 extends the fixed-chunk
// determinism golden to the narrowed backend: results must be bit-identical
// across worker counts.
func TestExpectationTableDeterministicComplex64(t *testing.T) {
	rng := rand.New(rand.NewSource(7303))
	n := 15
	ref, _ := NewState(n)
	randomizeState(rng, ref)
	s, _ := NewStateWith(n, Complex64)
	narrowInto(s, ref)
	table := make([]float64, 1<<uint(n))
	for i := range table {
		table[i] = rng.NormFloat64()
	}
	var first float64
	for i, workers := range []int{1, 2, 3, 8} {
		prev := SetWorkers(workers)
		got := s.ExpectationTable(table)
		SetWorkers(prev)
		if i == 0 {
			first = got
		} else if got != first {
			t.Fatalf("workers=%d: complex64 expectation %v != workers=1 result %v (must be bit-identical)", workers, got, first)
		}
	}
}

// TestParsePrecision pins the flag spellings.
func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
		ok   bool
	}{
		{"", Complex128, true},
		{"complex128", Complex128, true},
		{"c128", Complex128, true},
		{"complex64", Complex64, true},
		{"c64", Complex64, true},
		{"64", Complex64, true},
		{"float32", Complex128, false},
	} {
		got, err := ParsePrecision(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if Complex64.String() != "complex64" || Complex128.String() != "complex128" {
		t.Fatal("Precision.String spelling drifted from the flag vocabulary")
	}
}
