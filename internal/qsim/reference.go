package qsim

// Reference kernels: the original single-threaded full-sweep gate
// implementations, retained verbatim as the ground truth for the
// equivalence tests and the serial baseline for the kernel benchmarks.
// The production kernels in qsim.go visit only the bit-clear half (or
// quarter) of the index space and shard across worker goroutines; these
// sweep all 2^n amplitudes with per-index branching.

import (
	"fmt"
	"math"
	"math/cmplx"

	"quantumjoin/internal/circuit"
)

// apply1QRef applies a 2x2 unitary to qubit q with a full index sweep.
func (s *State) apply1QRef(q int, u [2][2]complex128) {
	bit := uint64(1) << uint(q)
	for i := uint64(0); i < uint64(len(s.amps)); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.amps[i], s.amps[j]
		s.amps[i] = u[0][0]*a0 + u[0][1]*a1
		s.amps[j] = u[1][0]*a0 + u[1][1]*a1
	}
}

// phase2QRef multiplies amplitudes by basis-dependent phases for a
// diagonal two-qubit gate with a full index sweep.
func (s *State) phase2QRef(q0, q1 int, d [4]complex128) {
	b0 := uint64(1) << uint(q0)
	b1 := uint64(1) << uint(q1)
	for i := uint64(0); i < uint64(len(s.amps)); i++ {
		idx := 0
		if i&b0 != 0 {
			idx |= 1
		}
		if i&b1 != 0 {
			idx |= 2
		}
		if d[idx] != 1 {
			s.amps[i] *= d[idx]
		}
	}
}

// ApplyGateRef applies one gate through the reference kernels. The
// reference path is complex128-only: it is the ground truth the narrowed
// backend is measured against, so it never narrows itself.
func (s *State) ApplyGateRef(g circuit.Gate) error {
	if s.prec != Complex128 {
		return fmt.Errorf("qsim: reference kernels require Complex128, state is %v", s.prec)
	}
	switch g.Kind {
	case circuit.H:
		h := complex(1/math.Sqrt2, 0)
		s.apply1QRef(g.Q0, [2][2]complex128{{h, h}, {h, -h}})
	case circuit.X:
		s.apply1QRef(g.Q0, [2][2]complex128{{0, 1}, {1, 0}})
	case circuit.SX:
		p := complex(0.5, 0.5)
		m := complex(0.5, -0.5)
		s.apply1QRef(g.Q0, [2][2]complex128{{p, m}, {m, p}})
	case circuit.RX:
		c := complex(math.Cos(g.Param/2), 0)
		si := complex(0, -math.Sin(g.Param/2))
		s.apply1QRef(g.Q0, [2][2]complex128{{c, si}, {si, c}})
	case circuit.RY:
		c := complex(math.Cos(g.Param/2), 0)
		si := complex(math.Sin(g.Param/2), 0)
		s.apply1QRef(g.Q0, [2][2]complex128{{c, -si}, {si, c}})
	case circuit.RZ:
		em := cmplx.Exp(complex(0, -g.Param/2))
		ep := cmplx.Exp(complex(0, g.Param/2))
		s.apply1QRef(g.Q0, [2][2]complex128{{em, 0}, {0, ep}})
	case circuit.CX:
		ctrl := uint64(1) << uint(g.Q0)
		tgt := uint64(1) << uint(g.Q1)
		for i := uint64(0); i < uint64(len(s.amps)); i++ {
			if i&ctrl != 0 && i&tgt == 0 {
				j := i | tgt
				s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
			}
		}
	case circuit.CZ:
		s.phase2QRef(g.Q0, g.Q1, [4]complex128{1, 1, 1, -1})
	case circuit.SWAP:
		a := uint64(1) << uint(g.Q0)
		b := uint64(1) << uint(g.Q1)
		for i := uint64(0); i < uint64(len(s.amps)); i++ {
			if i&a != 0 && i&b == 0 {
				j := (i &^ a) | b
				s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
			}
		}
	case circuit.RZZ:
		em := cmplx.Exp(complex(0, -g.Param/2))
		ep := cmplx.Exp(complex(0, g.Param/2))
		s.phase2QRef(g.Q0, g.Q1, [4]complex128{em, ep, ep, em})
	case circuit.XX:
		c := complex(math.Cos(g.Param/2), 0)
		si := complex(0, -math.Sin(g.Param/2))
		b0 := uint64(1) << uint(g.Q0)
		b1 := uint64(1) << uint(g.Q1)
		for i := uint64(0); i < uint64(len(s.amps)); i++ {
			if i&b0 != 0 || i&b1 != 0 {
				continue
			}
			i00, i01, i10, i11 := i, i|b0, i|b1, i|b0|b1
			a00, a01, a10, a11 := s.amps[i00], s.amps[i01], s.amps[i10], s.amps[i11]
			s.amps[i00] = c*a00 + si*a11
			s.amps[i11] = c*a11 + si*a00
			s.amps[i01] = c*a01 + si*a10
			s.amps[i10] = c*a10 + si*a01
		}
	default:
		return errUnsupported(g)
	}
	return nil
}

// runRef executes a circuit gate by gate through the reference kernels
// (no diagonal fusion).
func (s *State) runRef(c *circuit.Circuit) error {
	for _, g := range c.Gates {
		if err := s.ApplyGateRef(g); err != nil {
			return err
		}
	}
	return nil
}
