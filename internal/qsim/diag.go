package qsim

import (
	"math"
	"math/bits"

	"quantumjoin/internal/circuit"
)

// Diagonal-gate fusion: QAOA cost layers are long runs of RZ/CZ/RZZ gates,
// all diagonal in the computational basis. Applying them one at a time
// costs one full memory sweep over 2^n amplitudes per gate; fusing a run
// costs a single sweep. Every diagonal gate here multiplies basis state i
// by exp(i·θ·(-1)^parity(i&mask)/2) for some bit mask, so a fused run
// accumulates one angle per amplitude (a popcount, a table lookup and an
// add per gate) and pays a single Sincos + complex multiply at the end:
//
//   RZ(θ) on q:  mask = 1<<q,          angle ∓θ/2 by the bit
//   RZZ(θ):      mask = b0|b1,         angle ∓θ/2 by the XOR of the bits
//   CZ:          phase -1 iff both bits set; since b0·b1 =
//                (b0 + b1 - (b0 XOR b1))/2, it splits into three parity
//                terms with angles π/2, π/2, -π/2 — no global phase
//
// Runs of length >= 2 are fused by State.Run; isolated diagonal gates go
// through the plain kernels.

// isDiagonal reports whether a gate only multiplies basis states by
// phases.
func isDiagonal(g circuit.Gate) bool {
	switch g.Kind {
	case circuit.RZ, circuit.CZ, circuit.RZZ:
		return true
	default:
		return false
	}
}

// diagOp is one parity term of a compiled diagonal run: basis state i
// picks up angle th[popcount(i&mask)&1].
type diagOp struct {
	mask uint64
	th   [2]float64
}

// compileDiag lowers a diagonal gate run to parity terms.
func compileDiag(gs []circuit.Gate) []diagOp {
	ops := make([]diagOp, 0, len(gs))
	for _, g := range gs {
		b0 := uint64(1) << uint(g.Q0)
		switch g.Kind {
		case circuit.RZ:
			ops = append(ops, diagOp{mask: b0, th: [2]float64{-g.Param / 2, g.Param / 2}})
		case circuit.RZZ:
			b1 := uint64(1) << uint(g.Q1)
			// Equal bits (even parity of the pair) get -θ/2.
			ops = append(ops, diagOp{mask: b0 | b1, th: [2]float64{-g.Param / 2, g.Param / 2}})
		case circuit.CZ:
			b1 := uint64(1) << uint(g.Q1)
			ops = append(ops,
				diagOp{mask: b0, th: [2]float64{0, math.Pi / 2}},
				diagOp{mask: b1, th: [2]float64{0, math.Pi / 2}},
				diagOp{mask: b0 | b1, th: [2]float64{0, -math.Pi / 2}},
			)
		default:
			panic("qsim: compileDiag on non-diagonal gate " + g.Kind.String())
		}
	}
	return mergeDiag(ops)
}

// mergeDiag sums the angle pairs of terms sharing a mask (repeated RZ on a
// qubit, RZZ over the same pair, the RZ-like pieces of CZs).
func mergeDiag(ops []diagOp) []diagOp {
	byMask := make(map[uint64]int, len(ops))
	out := ops[:0]
	for _, op := range ops {
		if k, ok := byMask[op.mask]; ok {
			out[k].th[0] += op.th[0]
			out[k].th[1] += op.th[1]
			continue
		}
		byMask[op.mask] = len(out)
		out = append(out, op)
	}
	return out
}

// applyDiagFused multiplies every amplitude by the accumulated phase of a
// compiled diagonal run in one (sharded) sweep.
func (s *State) applyDiagFused(ops []diagOp) {
	amps := s.amps
	parRange(uint64(len(amps)), func(lo, hi uint64) {
		for i := lo; i < hi; i++ {
			ang := 0.0
			for _, op := range ops {
				ang += op.th[bits.OnesCount64(i&op.mask)&1]
			}
			sin, cos := math.Sincos(ang)
			amps[i] *= complex(cos, sin)
		}
	})
}
