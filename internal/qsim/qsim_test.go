package qsim

import (
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/circuit"
)

func almostEq(a, b complex128) bool {
	return math.Abs(real(a)-real(b)) < 1e-9 && math.Abs(imag(a)-imag(b)) < 1e-9
}

func TestHadamardSuperposition(t *testing.T) {
	s, err := NewState(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyGate(circuit.G1(circuit.H, 0, 0)); err != nil {
		t.Fatal(err)
	}
	h := complex(1/math.Sqrt2, 0)
	if !almostEq(s.Amplitude(0), h) || !almostEq(s.Amplitude(1), h) {
		t.Fatalf("H|0> = (%v, %v)", s.Amplitude(0), s.Amplitude(1))
	}
	// H is self-inverse.
	s.ApplyGate(circuit.G1(circuit.H, 0, 0))
	if !almostEq(s.Amplitude(0), 1) {
		t.Fatalf("HH|0> = %v", s.Amplitude(0))
	}
}

func TestXAndCX(t *testing.T) {
	s, _ := NewState(2)
	s.ApplyGate(circuit.G1(circuit.X, 0, 0))
	s.ApplyGate(circuit.G2(circuit.CX, 0, 1, 0))
	// |11⟩ expected (qubit 0 LSB).
	if !almostEq(s.Amplitude(3), 1) {
		t.Fatalf("X,CX|00> amplitude(3) = %v", s.Amplitude(3))
	}
}

func TestBellState(t *testing.T) {
	s, _ := NewState(2)
	s.ApplyGate(circuit.G1(circuit.H, 0, 0))
	s.ApplyGate(circuit.G2(circuit.CX, 0, 1, 0))
	h := complex(1/math.Sqrt2, 0)
	if !almostEq(s.Amplitude(0), h) || !almostEq(s.Amplitude(3), h) ||
		!almostEq(s.Amplitude(1), 0) || !almostEq(s.Amplitude(2), 0) {
		t.Fatalf("Bell state wrong: %v %v %v %v",
			s.Amplitude(0), s.Amplitude(1), s.Amplitude(2), s.Amplitude(3))
	}
}

func TestSXSquaredIsX(t *testing.T) {
	s, _ := NewState(1)
	s.ApplyGate(circuit.G1(circuit.SX, 0, 0))
	s.ApplyGate(circuit.G1(circuit.SX, 0, 0))
	if !almostEq(s.Amplitude(1), 1) {
		t.Fatalf("SX²|0> = (%v, %v), want |1>", s.Amplitude(0), s.Amplitude(1))
	}
}

func TestRXPi(t *testing.T) {
	s, _ := NewState(1)
	s.ApplyGate(circuit.G1(circuit.RX, 0, math.Pi))
	// RX(π)|0> = -i|1>.
	if !almostEq(s.Amplitude(1), complex(0, -1)) {
		t.Fatalf("RX(π)|0> amp1 = %v", s.Amplitude(1))
	}
}

func TestRYPiHalf(t *testing.T) {
	s, _ := NewState(1)
	s.ApplyGate(circuit.G1(circuit.RY, 0, math.Pi/2))
	h := complex(1/math.Sqrt2, 0)
	if !almostEq(s.Amplitude(0), h) || !almostEq(s.Amplitude(1), h) {
		t.Fatalf("RY(π/2)|0> = (%v, %v)", s.Amplitude(0), s.Amplitude(1))
	}
}

func TestRZPhases(t *testing.T) {
	s, _ := NewState(1)
	s.ApplyGate(circuit.G1(circuit.H, 0, 0))
	s.ApplyGate(circuit.G1(circuit.RZ, 0, math.Pi))
	s.ApplyGate(circuit.G1(circuit.H, 0, 0))
	// HZH = X up to global phase: probability of |1> must be 1.
	if p := s.Probability(1); math.Abs(p-1) > 1e-9 {
		t.Fatalf("H RZ(π) H |0>: P(1) = %v", p)
	}
}

func TestSWAP(t *testing.T) {
	s, _ := NewState(2)
	s.ApplyGate(circuit.G1(circuit.X, 0, 0))
	s.ApplyGate(circuit.G2(circuit.SWAP, 0, 1, 0))
	if !almostEq(s.Amplitude(2), 1) {
		t.Fatalf("SWAP moved excitation wrong: amp(2) = %v", s.Amplitude(2))
	}
}

func TestSWAPEqualsThreeCX(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a, _ := NewState(3)
	b, _ := NewState(3)
	// Prepare the same random product state on both.
	for q := 0; q < 3; q++ {
		th := rng.Float64() * math.Pi
		a.ApplyGate(circuit.G1(circuit.RY, q, th))
		b.ApplyGate(circuit.G1(circuit.RY, q, th))
	}
	a.ApplyGate(circuit.G2(circuit.SWAP, 0, 2, 0))
	b.ApplyGate(circuit.G2(circuit.CX, 0, 2, 0))
	b.ApplyGate(circuit.G2(circuit.CX, 2, 0, 0))
	b.ApplyGate(circuit.G2(circuit.CX, 0, 2, 0))
	for i := range a.amps {
		if !almostEq(a.amps[i], b.amps[i]) {
			t.Fatalf("SWAP != CX³ at %d: %v vs %v", i, a.amps[i], b.amps[i])
		}
	}
}

func TestRZZEqualsCXRZCX(t *testing.T) {
	theta := 0.7
	a, _ := NewState(2)
	b, _ := NewState(2)
	for q := 0; q < 2; q++ {
		a.ApplyGate(circuit.G1(circuit.H, q, 0))
		b.ApplyGate(circuit.G1(circuit.H, q, 0))
	}
	a.ApplyGate(circuit.G2(circuit.RZZ, 0, 1, theta))
	b.ApplyGate(circuit.G2(circuit.CX, 0, 1, 0))
	b.ApplyGate(circuit.G1(circuit.RZ, 1, theta))
	b.ApplyGate(circuit.G2(circuit.CX, 0, 1, 0))
	for i := range a.amps {
		if !almostEq(a.amps[i], b.amps[i]) {
			t.Fatalf("RZZ != CX·RZ·CX at %d: %v vs %v", i, a.amps[i], b.amps[i])
		}
	}
}

func TestCZSymmetric(t *testing.T) {
	a, _ := NewState(2)
	b, _ := NewState(2)
	for q := 0; q < 2; q++ {
		a.ApplyGate(circuit.G1(circuit.H, q, 0))
		b.ApplyGate(circuit.G1(circuit.H, q, 0))
	}
	a.ApplyGate(circuit.G2(circuit.CZ, 0, 1, 0))
	b.ApplyGate(circuit.G2(circuit.CZ, 1, 0, 0))
	for i := range a.amps {
		if !almostEq(a.amps[i], b.amps[i]) {
			t.Fatal("CZ not symmetric")
		}
	}
}

func TestXXPiIsIsingFlip(t *testing.T) {
	s, _ := NewState(2)
	s.ApplyGate(circuit.G2(circuit.XX, 0, 1, math.Pi))
	// XX(π)|00> = -i|11>.
	if !almostEq(s.Amplitude(3), complex(0, -1)) {
		t.Fatalf("XX(π)|00> amp(3) = %v", s.Amplitude(3))
	}
}

func TestNormPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := circuit.New(5)
	kinds := []circuit.Kind{circuit.H, circuit.X, circuit.SX, circuit.RX, circuit.RY, circuit.RZ}
	for i := 0; i < 60; i++ {
		if rng.Float64() < 0.6 {
			c.Append(circuit.G1(kinds[rng.Intn(len(kinds))], rng.Intn(5), rng.Float64()*2*math.Pi))
		} else {
			a, b := rng.Intn(5), rng.Intn(5)
			if a == b {
				b = (b + 1) % 5
			}
			two := []circuit.Kind{circuit.CX, circuit.CZ, circuit.SWAP, circuit.RZZ, circuit.XX}
			c.Append(circuit.G2(two[rng.Intn(len(two))], a, b, rng.Float64()*2*math.Pi))
		}
	}
	s, _ := NewState(5)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	if n := s.Norm(); math.Abs(n-1) > 1e-9 {
		t.Fatalf("norm = %v after random circuit", n)
	}
}

func TestExpectationDiag(t *testing.T) {
	s, _ := NewState(2)
	s.ApplyGate(circuit.G1(circuit.H, 0, 0))
	// State (|00> + |01>)/√2: E[f] with f = basis index should be 0.5.
	got := s.ExpectationDiag(func(b uint64) float64 { return float64(b) })
	if math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("ExpectationDiag = %v, want 0.5", got)
	}
}

func TestSampleDistribution(t *testing.T) {
	s, _ := NewState(2)
	s.ApplyGate(circuit.G1(circuit.H, 0, 0))
	s.ApplyGate(circuit.G2(circuit.CX, 0, 1, 0))
	rng := rand.New(rand.NewSource(3))
	shots := s.Sample(rng, 10000)
	if len(shots) != 10000 {
		t.Fatalf("got %d shots", len(shots))
	}
	counts := map[uint64]int{}
	for _, b := range shots {
		counts[b]++
	}
	if counts[1] != 0 || counts[2] != 0 {
		t.Fatalf("Bell state sampled odd-parity outcomes: %v", counts)
	}
	frac := float64(counts[0]) / 10000
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("Bell |00> fraction %v, want ~0.5", frac)
	}
}

func TestBitsOf(t *testing.T) {
	x := BitsOf(0b101, 3)
	if !x[0] || x[1] || !x[2] {
		t.Fatalf("BitsOf = %v", x)
	}
}

func TestStateSizeLimits(t *testing.T) {
	if _, err := NewState(0); err == nil {
		t.Error("accepted 0 qubits")
	}
	if _, err := NewState(MaxQubits + 1); err == nil {
		t.Error("accepted oversized state")
	}
}

func TestRunRejectsSizeMismatch(t *testing.T) {
	s, _ := NewState(2)
	if err := s.Run(circuit.New(3)); err == nil {
		t.Error("accepted mismatched circuit")
	}
}
