package qsim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"quantumjoin/internal/circuit"
)

// randomCircuit builds a circuit of depth gates drawn uniformly from the
// full gate set, with random qubits and angles.
func randomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	kinds := []circuit.Kind{
		circuit.H, circuit.X, circuit.SX, circuit.RX, circuit.RY, circuit.RZ,
		circuit.CX, circuit.CZ, circuit.SWAP, circuit.RZZ, circuit.XX,
	}
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		theta := rng.Float64() * 2 * math.Pi
		if k.IsTwoQubit() {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			c.Append(circuit.G2(k, a, b, theta))
		} else {
			c.Append(circuit.G1(k, rng.Intn(n), theta))
		}
	}
	return c
}

// diagonalLayer builds a QAOA-like cost layer: a run of RZ/RZZ/CZ gates.
func diagonalLayer(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i < gates; i++ {
		theta := rng.Float64() * 2 * math.Pi
		switch rng.Intn(3) {
		case 0:
			c.Append(circuit.G1(circuit.RZ, rng.Intn(n), theta))
		case 1:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(circuit.G2(circuit.RZZ, a, b, theta))
		default:
			a := rng.Intn(n)
			b := (a + 1 + rng.Intn(n-1)) % n
			c.Append(circuit.G2(circuit.CZ, a, b, 0))
		}
	}
	return c
}

// randomizeState overwrites both states with the same normalised random
// amplitudes, so kernels are compared on dense input.
func randomizeState(rng *rand.Rand, states ...*State) {
	n := len(states[0].amps)
	norm := 0.0
	raw := make([]complex128, n)
	for i := range raw {
		raw[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(raw[i])*real(raw[i]) + imag(raw[i])*imag(raw[i])
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range raw {
		raw[i] *= scale
	}
	for _, s := range states {
		copy(s.amps, raw)
	}
}

func maxDelta(a, b *State) float64 {
	d := 0.0
	for i := range a.amps {
		if e := cmplx.Abs(a.amps[i] - b.amps[i]); e > d {
			d = e
		}
	}
	return d
}

// TestKernelsMatchReference checks that the strided (and, when forced,
// sharded) kernels agree with the original full-sweep serial kernels to
// 1e-12 on randomized circuits over randomized states.
func TestKernelsMatchReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := SetWorkers(workers)
		rng := rand.New(rand.NewSource(int64(101 + workers)))
		for trial := 0; trial < 8; trial++ {
			n := 2 + rng.Intn(9) // 2..10 qubits
			c := randomCircuit(rng, n, 40)
			got, _ := NewState(n)
			want, _ := NewState(n)
			randomizeState(rng, got, want)
			for _, g := range c.Gates {
				if err := got.ApplyGate(g); err != nil {
					t.Fatal(err)
				}
				if err := want.ApplyGateRef(g); err != nil {
					t.Fatal(err)
				}
			}
			if d := maxDelta(got, want); d > 1e-12 {
				t.Fatalf("workers=%d trial=%d n=%d: kernels diverge from reference by %g", workers, trial, n, d)
			}
		}
		SetWorkers(prev)
	}
}

// TestKernelsMatchReferenceSharded forces sharding even below parMinWork
// is impossible (threshold is fixed), so use enough qubits that parRange
// actually fans out, and run under -race to catch data races.
func TestKernelsMatchReferenceSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("16-qubit equivalence sweep skipped in -short mode")
	}
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	rng := rand.New(rand.NewSource(202))
	n := 16 // 2^15 pair-indices > parMinWork: kernels genuinely shard
	c := randomCircuit(rng, n, 30)
	got, _ := NewState(n)
	want, _ := NewState(n)
	randomizeState(rng, got, want)
	if err := got.Run(c); err != nil {
		t.Fatal(err)
	}
	if err := want.runRef(c); err != nil {
		t.Fatal(err)
	}
	if d := maxDelta(got, want); d > 1e-12 {
		t.Fatalf("sharded kernels diverge from reference by %g", d)
	}
}

// TestDiagonalFusionMatchesReference checks the fused diagonal pass against
// gate-by-gate reference execution on pure cost layers and on circuits
// mixing diagonal runs with entangling gates.
func TestDiagonalFusionMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := SetWorkers(workers)
		rng := rand.New(rand.NewSource(int64(303 + workers)))
		for trial := 0; trial < 6; trial++ {
			n := 3 + rng.Intn(8)
			// Interleave: H layer, diagonal run, CX, diagonal run.
			c := circuit.New(n)
			for q := 0; q < n; q++ {
				c.Append(circuit.G1(circuit.H, q, 0))
			}
			c.Gates = append(c.Gates, diagonalLayer(rng, n, 25).Gates...)
			c.Append(circuit.G2(circuit.CX, 0, n-1, 0))
			c.Gates = append(c.Gates, diagonalLayer(rng, n, 25).Gates...)
			got, _ := NewState(n)
			want, _ := NewState(n)
			if err := got.Run(c); err != nil {
				t.Fatal(err)
			}
			if err := want.runRef(c); err != nil {
				t.Fatal(err)
			}
			if d := maxDelta(got, want); d > 1e-12 {
				t.Fatalf("workers=%d trial=%d n=%d: fused diagonal pass diverges by %g", workers, trial, n, d)
			}
		}
		SetWorkers(prev)
	}
}

// TestExpectationTableMatchesDiag checks the table fast path against the
// closure-based expectation, including under forced sharding.
func TestExpectationTableMatchesDiag(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for _, workers := range []int{1, 4} {
		prev := SetWorkers(workers)
		n := 15
		s, _ := NewState(n)
		randomizeState(rng, s)
		table := make([]float64, 1<<uint(n))
		for i := range table {
			table[i] = rng.NormFloat64()
		}
		want := s.ExpectationDiag(func(b uint64) float64 { return table[b] })
		got := s.ExpectationTable(table)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("workers=%d: ExpectationTable %v != ExpectationDiag %v", workers, got, want)
		}
		SetWorkers(prev)
	}
}

// TestExpectationTableDeterministic checks the fixed-chunk reduction gives
// bit-identical results regardless of the worker count.
func TestExpectationTableDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	n := 15
	s, _ := NewState(n)
	randomizeState(rng, s)
	table := make([]float64, 1<<uint(n))
	for i := range table {
		table[i] = rng.NormFloat64()
	}
	var ref float64
	for i, workers := range []int{1, 2, 3, 8} {
		prev := SetWorkers(workers)
		got := s.ExpectationTable(table)
		SetWorkers(prev)
		if i == 0 {
			ref = got
		} else if got != ref {
			t.Fatalf("workers=%d: expectation %v != workers=1 result %v (must be bit-identical)", workers, got, ref)
		}
	}
}

// TestSampleTailGoesToArgmax pins the rounding-tail fix: when accumulated
// probability falls short of the last uniform draw, leftover shots must go
// to the most probable state, not the arbitrary final basis index.
func TestSampleTailGoesToArgmax(t *testing.T) {
	n := 3
	s, _ := NewState(n)
	// Deliberately unnormalised state: total probability 0.5, peak at
	// basis 2. Draws above 0.5 cannot be assigned in the sweep.
	for i := range s.amps {
		s.amps[i] = 0
	}
	s.amps[1] = complex(math.Sqrt(0.1), 0)
	s.amps[2] = complex(math.Sqrt(0.3), 0)
	s.amps[5] = complex(math.Sqrt(0.1), 0)
	rng := rand.New(rand.NewSource(606))
	shots := 2000
	out := s.Sample(rng, shots)
	if len(out) != shots {
		t.Fatalf("got %d shots, want %d", len(out), shots)
	}
	last := uint64(len(s.amps) - 1)
	counts := map[uint64]int{}
	for _, b := range out {
		counts[b]++
	}
	if counts[last] != 0 {
		t.Fatalf("%d leftover shots assigned to last basis index %d", counts[last], last)
	}
	// Roughly half the draws exceed total probability 0.5 and must land on
	// the argmax state 2 on top of its own ~0.3 share.
	if counts[2] < shots/2 {
		t.Fatalf("argmax state got %d/%d shots, want > %d", counts[2], shots, shots/2)
	}
	if counts[1]+counts[2]+counts[5] != shots {
		t.Fatalf("shots landed outside support: %v", counts)
	}
}

// TestAcquireRelease exercises the pooled-state API.
func TestAcquireRelease(t *testing.T) {
	s, err := Acquire(6)
	if err != nil {
		t.Fatal(err)
	}
	if s.Probability(0) != 1 {
		t.Fatal("acquired state not |0...0⟩")
	}
	c := circuit.New(6)
	c.Append(circuit.G1(circuit.H, 0, 0), circuit.G2(circuit.CX, 0, 3, 0))
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	s.Release()
	s2, err := Acquire(6)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Release()
	if s2.Probability(0) != 1 || s2.Probability(1<<3|1) != 0 {
		t.Fatal("recycled state not reset to |0...0⟩")
	}
	if _, err := Acquire(0); err == nil {
		t.Fatal("Acquire(0) must fail")
	}
	if _, err := Acquire(MaxQubits + 1); err == nil {
		t.Fatal("Acquire above MaxQubits must fail")
	}
}

// TestExpandBit pins the index-expansion helpers.
func TestExpandBit(t *testing.T) {
	for _, q := range []uint{0, 1, 3, 7} {
		mask := uint64(1) << q
		seen := map[uint64]bool{}
		for k := uint64(0); k < 64; k++ {
			i := expandBit(k, mask)
			if i&mask != 0 {
				t.Fatalf("expandBit(%d, 1<<%d) = %d has bit set", k, q, i)
			}
			if seen[i] {
				t.Fatalf("expandBit(%d, 1<<%d) duplicates index %d", k, q, i)
			}
			seen[i] = true
		}
	}
	lo, hi := sortMasks(1<<4, 1<<2)
	if lo != 1<<2 || hi != 1<<4 {
		t.Fatal("sortMasks order wrong")
	}
	seen := map[uint64]bool{}
	for k := uint64(0); k < 64; k++ {
		i := expandBits2(k, lo, hi)
		if i&lo != 0 || i&hi != 0 {
			t.Fatalf("expandBits2(%d) = %d has an inserted bit set", k, i)
		}
		if seen[i] {
			t.Fatalf("expandBits2(%d) duplicates index %d", k, i)
		}
		seen[i] = true
	}
}
