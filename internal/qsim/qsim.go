// Package qsim is a dense statevector simulator for the gate set defined
// in package circuit. It substitutes for the real IBM Q devices used in
// the paper's §4.2.1 experiments: circuits up to ~27 qubits (the size of
// IBM Q Auckland) can be executed exactly; hardware noise is modelled on
// top of the ideal output distribution by package noise.
package qsim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"

	"quantumjoin/internal/circuit"
)

// MaxQubits caps simulator size; 2^27 amplitudes of complex128 are ~2 GiB.
const MaxQubits = 27

// State is an n-qubit statevector. Basis state indices use qubit 0 as the
// least significant bit. Exactly one of amps/amps64 is populated, selected
// by prec.
type State struct {
	n      int
	prec   Precision
	amps   []complex128
	amps64 []complex64
}

func errQubitCount(n int) error {
	return fmt.Errorf("qsim: qubit count %d outside [1, %d]", n, MaxQubits)
}

// NewState allocates |0...0⟩ over n qubits at Complex128 precision.
func NewState(n int) (*State, error) {
	return NewStateWith(n, Complex128)
}

// NewStateWith allocates |0...0⟩ over n qubits at the given precision.
func NewStateWith(n int, p Precision) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, errQubitCount(n)
	}
	s := &State{n: n, prec: p}
	if p == Complex64 {
		s.amps64 = make([]complex64, 1<<uint(n))
		s.amps64[0] = 1
	} else {
		s.amps = make([]complex128, 1<<uint(n))
		s.amps[0] = 1
	}
	return s, nil
}

// NumQubits returns the number of qubits.
func (s *State) NumQubits() int { return s.n }

// Precision returns the amplitude storage width.
func (s *State) Precision() Precision { return s.prec }

// size returns the number of amplitudes, independent of precision.
func (s *State) size() uint64 { return uint64(1) << uint(s.n) }

// Amplitude returns the amplitude of a basis state (widened to complex128
// on a Complex64 state).
func (s *State) Amplitude(basis uint64) complex128 {
	if s.prec == Complex64 {
		return complex128(s.amps64[basis])
	}
	return s.amps[basis]
}

// apply1Q applies a 2x2 unitary to qubit q. The sweep enumerates only the
// 2^(n-1) indices whose q-th bit is clear (each visit updates the |0⟩/|1⟩
// amplitude pair at once) and shards the range across worker goroutines;
// chunks touch disjoint pairs, so no synchronisation is needed inside.
func (s *State) apply1Q(q int, u [2][2]complex128) {
	bit := uint64(1) << uint(q)
	amps := s.amps
	parRange(uint64(len(amps))>>1, func(lo, hi uint64) {
		for k := lo; k < hi; k++ {
			i := expandBit(k, bit)
			j := i | bit
			a0, a1 := amps[i], amps[j]
			amps[i] = u[0][0]*a0 + u[0][1]*a1
			amps[j] = u[1][0]*a0 + u[1][1]*a1
		}
	})
}

// phase2Q multiplies amplitudes by basis-dependent phases for a diagonal
// two-qubit gate: d[b] where b = (bit of q1)<<1 | (bit of q0). The sweep
// enumerates the quarter of the index space with both bits clear and
// updates all four bit combinations per visit, branch-free.
func (s *State) phase2Q(q0, q1 int, d [4]complex128) {
	b0 := uint64(1) << uint(q0)
	b1 := uint64(1) << uint(q1)
	loM, hiM := sortMasks(b0, b1)
	amps := s.amps
	parRange(uint64(len(amps))>>2, func(lo, hi uint64) {
		for k := lo; k < hi; k++ {
			i00 := expandBits2(k, loM, hiM)
			amps[i00] *= d[0]
			amps[i00|b0] *= d[1]
			amps[i00|b1] *= d[2]
			amps[i00|b0|b1] *= d[3]
		}
	})
}

// ApplyGate applies one gate.
func (s *State) ApplyGate(g circuit.Gate) error {
	if s.prec == Complex64 {
		return s.applyGate64(g)
	}
	switch g.Kind {
	case circuit.H:
		h := complex(1/math.Sqrt2, 0)
		s.apply1Q(g.Q0, [2][2]complex128{{h, h}, {h, -h}})
	case circuit.X:
		s.apply1Q(g.Q0, [2][2]complex128{{0, 1}, {1, 0}})
	case circuit.SX:
		// sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
		p := complex(0.5, 0.5)
		m := complex(0.5, -0.5)
		s.apply1Q(g.Q0, [2][2]complex128{{p, m}, {m, p}})
	case circuit.RX:
		c := complex(math.Cos(g.Param/2), 0)
		si := complex(0, -math.Sin(g.Param/2))
		s.apply1Q(g.Q0, [2][2]complex128{{c, si}, {si, c}})
	case circuit.RY:
		c := complex(math.Cos(g.Param/2), 0)
		si := complex(math.Sin(g.Param/2), 0)
		s.apply1Q(g.Q0, [2][2]complex128{{c, -si}, {si, c}})
	case circuit.RZ:
		em := cmplx.Exp(complex(0, -g.Param/2))
		ep := cmplx.Exp(complex(0, g.Param/2))
		s.apply1Q(g.Q0, [2][2]complex128{{em, 0}, {0, ep}})
	case circuit.CX:
		// Enumerate the quarter with {ctrl set, tgt clear}: exactly the
		// index pairs the gate exchanges.
		ctrl := uint64(1) << uint(g.Q0)
		tgt := uint64(1) << uint(g.Q1)
		loM, hiM := sortMasks(ctrl, tgt)
		amps := s.amps
		parRange(uint64(len(amps))>>2, func(lo, hi uint64) {
			for k := lo; k < hi; k++ {
				i := expandBits2(k, loM, hiM) | ctrl
				j := i | tgt
				amps[i], amps[j] = amps[j], amps[i]
			}
		})
	case circuit.CZ:
		s.phase2Q(g.Q0, g.Q1, [4]complex128{1, 1, 1, -1})
	case circuit.SWAP:
		// Enumerate the quarter with both bits clear; each visit exchanges
		// the |01⟩/|10⟩ pair above it.
		a := uint64(1) << uint(g.Q0)
		b := uint64(1) << uint(g.Q1)
		loM, hiM := sortMasks(a, b)
		amps := s.amps
		parRange(uint64(len(amps))>>2, func(lo, hi uint64) {
			for k := lo; k < hi; k++ {
				base := expandBits2(k, loM, hiM)
				i := base | a
				j := base | b
				amps[i], amps[j] = amps[j], amps[i]
			}
		})
	case circuit.RZZ:
		em := cmplx.Exp(complex(0, -g.Param/2))
		ep := cmplx.Exp(complex(0, g.Param/2))
		s.phase2Q(g.Q0, g.Q1, [4]complex128{em, ep, ep, em})
	case circuit.XX:
		// exp(-i θ/2 X⊗X): mixes |00⟩↔|11⟩ and |01⟩↔|10⟩; enumerate the
		// both-clear quarter and update all four amplitudes per visit.
		c := complex(math.Cos(g.Param/2), 0)
		si := complex(0, -math.Sin(g.Param/2))
		b0 := uint64(1) << uint(g.Q0)
		b1 := uint64(1) << uint(g.Q1)
		loM, hiM := sortMasks(b0, b1)
		amps := s.amps
		parRange(uint64(len(amps))>>2, func(lo, hi uint64) {
			for k := lo; k < hi; k++ {
				i00 := expandBits2(k, loM, hiM)
				i01, i10, i11 := i00|b0, i00|b1, i00|b0|b1
				a00, a01, a10, a11 := amps[i00], amps[i01], amps[i10], amps[i11]
				amps[i00] = c*a00 + si*a11
				amps[i11] = c*a11 + si*a00
				amps[i01] = c*a01 + si*a10
				amps[i10] = c*a10 + si*a01
			}
		})
	default:
		return errUnsupported(g)
	}
	return nil
}

// errUnsupported reports a gate kind the simulator cannot execute.
func errUnsupported(g circuit.Gate) error {
	return fmt.Errorf("qsim: unsupported gate kind %v", g.Kind)
}

// Run executes all gates of a circuit in order. Runs of two or more
// consecutive diagonal gates (RZ/CZ/RZZ — the bulk of a QAOA cost layer)
// are fused into a single sweep over the amplitudes.
func (s *State) Run(c *circuit.Circuit) error {
	if c.NumQubits != s.n {
		return fmt.Errorf("qsim: circuit has %d qubits, state has %d", c.NumQubits, s.n)
	}
	gs := c.Gates
	for i := 0; i < len(gs); {
		if isDiagonal(gs[i]) {
			j := i + 1
			for j < len(gs) && isDiagonal(gs[j]) {
				j++
			}
			if j-i >= 2 {
				ops := compileDiag(gs[i:j])
				if s.prec == Complex64 {
					s.applyDiagFused64(ops)
				} else {
					s.applyDiagFused(ops)
				}
				i = j
				continue
			}
		}
		if err := s.ApplyGate(gs[i]); err != nil {
			return err
		}
		i++
	}
	return nil
}

// Norm returns the state norm (should remain 1 up to rounding). The sum of
// squares accumulates in float64 at either precision.
func (s *State) Norm() float64 {
	t := 0.0
	if s.prec == Complex64 {
		for _, a := range s.amps64 {
			re, im := float64(real(a)), float64(imag(a))
			t += re*re + im*im
		}
		return math.Sqrt(t)
	}
	for _, a := range s.amps {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// Probability returns |⟨basis|ψ⟩|².
func (s *State) Probability(basis uint64) float64 {
	if s.prec == Complex64 {
		a := s.amps64[basis]
		re, im := float64(real(a)), float64(imag(a))
		return re*re + im*im
	}
	a := s.amps[basis]
	return real(a)*real(a) + imag(a)*imag(a)
}

// ExpectationDiag computes ⟨ψ| f |ψ⟩ for a diagonal observable given as a
// function of the basis state — exactly what QAOA needs for QUBO cost
// Hamiltonians.
func (s *State) ExpectationDiag(f func(basis uint64) float64) float64 {
	e := 0.0
	if s.prec == Complex64 {
		for i, a := range s.amps64 {
			re, im := float64(real(a)), float64(imag(a))
			if p := re*re + im*im; p > 0 {
				e += p * f(uint64(i))
			}
		}
		return e
	}
	for i, a := range s.amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 0 {
			e += p * f(uint64(i))
		}
	}
	return e
}

// expectationChunkBits fixes the reduction granularity of ExpectationTable
// so its result does not depend on the worker count: partial sums are
// always taken over the same aligned 2^expectationChunkBits blocks and
// combined in index order.
const expectationChunkBits = 14

// ExpectationTable computes ⟨ψ| diag(table) |ψ⟩ with table indexed by basis
// state. It is the fast path for QAOA energy evaluation: the cost of every
// basis state is a precomputed table lookup (qubo.CostTable) instead of a
// per-amplitude Hamiltonian evaluation. Deterministic regardless of the
// kernel worker setting.
func (s *State) ExpectationTable(table []float64) float64 {
	total := s.size()
	if uint64(len(table)) != total {
		panic(fmt.Sprintf("qsim: table length %d != state size %d", len(table), total))
	}
	nChunks := (total + (1 << expectationChunkBits) - 1) >> expectationChunkBits
	partial := make([]float64, nChunks)
	if s.prec == Complex64 {
		// Same fixed chunk structure as the complex128 path; per-chunk sums
		// accumulate in float64 so narrowing only affects amplitude storage.
		amps := s.amps64
		parRangeMin(nChunks, 2, func(clo, chi uint64) {
			for c := clo; c < chi; c++ {
				lo := c << expectationChunkBits
				hi := lo + (1 << expectationChunkBits)
				if hi > total {
					hi = total
				}
				e := 0.0
				for i := lo; i < hi; i++ {
					a := amps[i]
					re, im := float64(real(a)), float64(imag(a))
					e += (re*re + im*im) * table[i]
				}
				partial[c] = e
			}
		})
	} else {
		amps := s.amps
		parRangeMin(nChunks, 2, func(clo, chi uint64) {
			for c := clo; c < chi; c++ {
				lo := c << expectationChunkBits
				hi := lo + (1 << expectationChunkBits)
				if hi > total {
					hi = total
				}
				e := 0.0
				for i := lo; i < hi; i++ {
					a := amps[i]
					p := real(a)*real(a) + imag(a)*imag(a)
					e += p * table[i]
				}
				partial[c] = e
			}
		})
	}
	e := 0.0
	for _, p := range partial {
		e += p
	}
	return e
}

// Sample draws shots basis states from the measurement distribution using
// sorted uniforms and a single pass over the amplitudes, avoiding a
// cumulative array (important at 2^27 amplitudes).
func (s *State) Sample(rng *rand.Rand, shots int) []uint64 {
	rngs := [1]*rand.Rand{rng}
	return s.sampleStreams(rngs[:], shots)[0]
}

// SampleBatch draws shots basis states for every rng in one shared pass
// over the amplitudes — the multi-seed fast path for batched solves, where
// per-restart re-walks of the state would otherwise dominate. Stream k's
// output is bit-identical to s.Sample(rngs[k], shots) run on its own: each
// rng's draw order (shots uniforms, then the shuffle) is unchanged, the
// cumulative scan sums probabilities in the same index order, and the
// rounding-tail argmax is snapshotted at the index where that stream's
// scan would have stopped.
func (s *State) SampleBatch(rngs []*rand.Rand, shots int) [][]uint64 {
	return s.sampleStreams(rngs, shots)
}

// sampleStreams is the shared cumulative scan behind Sample/SampleBatch.
func (s *State) sampleStreams(rngs []*rand.Rand, shots int) [][]uint64 {
	nStreams := len(rngs)
	us := make([][]float64, nStreams)
	outs := make([][]uint64, nStreams)
	for r, rng := range rngs {
		u := make([]float64, shots)
		for i := range u {
			u[i] = rng.Float64()
		}
		sort.Float64s(u)
		us[r] = u
		outs[r] = make([]uint64, 0, shots)
	}
	// tails[r] records the running argmax at the moment stream r consumed
	// its last uniform — exactly the value a solo Sample would have seen at
	// its early break.
	tails := make([]uint64, nStreams)
	live := make([]bool, nStreams)
	for r := range live {
		live[r] = true
	}
	remaining := nStreams
	acc := 0.0
	maxI, maxP := uint64(0), -1.0
	scan := func(i uint64, p float64) bool {
		if p > maxP {
			maxI, maxP = i, p
		}
		acc += p
		for r := 0; r < nStreams; r++ {
			if !live[r] {
				continue
			}
			u := us[r]
			k := len(outs[r])
			for k < shots && u[k] <= acc {
				outs[r] = append(outs[r], i)
				k++
			}
			if k == shots {
				live[r] = false
				tails[r] = maxI
				remaining--
			}
		}
		return remaining == 0
	}
	if s.prec == Complex64 {
		for i, a := range s.amps64 {
			re, im := float64(real(a)), float64(imag(a))
			if scan(uint64(i), re*re+im*im) {
				break
			}
		}
	} else {
		for i, a := range s.amps {
			if scan(uint64(i), real(a)*real(a)+imag(a)*imag(a)) {
				break
			}
		}
	}
	for r, out := range outs {
		// Rounding may leave a few shots unassigned; give them the most
		// likely state seen so far rather than the arbitrary last index.
		tail := tails[r]
		if live[r] {
			tail = maxI
		}
		for len(out) < shots {
			out = append(out, tail)
		}
		// Restore randomness of order (callers may subsample).
		rngs[r].Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		outs[r] = out
	}
	return outs
}

// BitsOf unpacks a sampled basis state into a boolean assignment of n
// variables (bit i → variable i).
func BitsOf(basis uint64, n int) []bool {
	x := make([]bool, n)
	for i := 0; i < n; i++ {
		x[i] = basis&(1<<uint(i)) != 0
	}
	return x
}
