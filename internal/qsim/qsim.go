// Package qsim is a dense statevector simulator for the gate set defined
// in package circuit. It substitutes for the real IBM Q devices used in
// the paper's §4.2.1 experiments: circuits up to ~27 qubits (the size of
// IBM Q Auckland) can be executed exactly; hardware noise is modelled on
// top of the ideal output distribution by package noise.
package qsim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"sort"

	"quantumjoin/internal/circuit"
)

// MaxQubits caps simulator size; 2^27 amplitudes of complex128 are ~2 GiB.
const MaxQubits = 27

// State is an n-qubit statevector. Basis state indices use qubit 0 as the
// least significant bit.
type State struct {
	n    int
	amps []complex128
}

// NewState allocates |0...0⟩ over n qubits.
func NewState(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, fmt.Errorf("qsim: qubit count %d outside [1, %d]", n, MaxQubits)
	}
	s := &State{n: n, amps: make([]complex128, 1<<uint(n))}
	s.amps[0] = 1
	return s, nil
}

// NumQubits returns the number of qubits.
func (s *State) NumQubits() int { return s.n }

// Amplitude returns the amplitude of a basis state.
func (s *State) Amplitude(basis uint64) complex128 { return s.amps[basis] }

// apply1Q applies a 2x2 unitary to qubit q.
func (s *State) apply1Q(q int, u [2][2]complex128) {
	bit := uint64(1) << uint(q)
	for i := uint64(0); i < uint64(len(s.amps)); i++ {
		if i&bit != 0 {
			continue
		}
		j := i | bit
		a0, a1 := s.amps[i], s.amps[j]
		s.amps[i] = u[0][0]*a0 + u[0][1]*a1
		s.amps[j] = u[1][0]*a0 + u[1][1]*a1
	}
}

// phase2Q multiplies amplitudes by basis-dependent phases for a diagonal
// two-qubit gate: d[b] where b = (bit of q1)<<1 | (bit of q0).
func (s *State) phase2Q(q0, q1 int, d [4]complex128) {
	b0 := uint64(1) << uint(q0)
	b1 := uint64(1) << uint(q1)
	for i := uint64(0); i < uint64(len(s.amps)); i++ {
		idx := 0
		if i&b0 != 0 {
			idx |= 1
		}
		if i&b1 != 0 {
			idx |= 2
		}
		if d[idx] != 1 {
			s.amps[i] *= d[idx]
		}
	}
}

// ApplyGate applies one gate.
func (s *State) ApplyGate(g circuit.Gate) error {
	switch g.Kind {
	case circuit.H:
		h := complex(1/math.Sqrt2, 0)
		s.apply1Q(g.Q0, [2][2]complex128{{h, h}, {h, -h}})
	case circuit.X:
		s.apply1Q(g.Q0, [2][2]complex128{{0, 1}, {1, 0}})
	case circuit.SX:
		// sqrt(X) = 1/2 [[1+i, 1-i], [1-i, 1+i]]
		p := complex(0.5, 0.5)
		m := complex(0.5, -0.5)
		s.apply1Q(g.Q0, [2][2]complex128{{p, m}, {m, p}})
	case circuit.RX:
		c := complex(math.Cos(g.Param/2), 0)
		si := complex(0, -math.Sin(g.Param/2))
		s.apply1Q(g.Q0, [2][2]complex128{{c, si}, {si, c}})
	case circuit.RY:
		c := complex(math.Cos(g.Param/2), 0)
		si := complex(math.Sin(g.Param/2), 0)
		s.apply1Q(g.Q0, [2][2]complex128{{c, -si}, {si, c}})
	case circuit.RZ:
		em := cmplx.Exp(complex(0, -g.Param/2))
		ep := cmplx.Exp(complex(0, g.Param/2))
		s.apply1Q(g.Q0, [2][2]complex128{{em, 0}, {0, ep}})
	case circuit.CX:
		ctrl := uint64(1) << uint(g.Q0)
		tgt := uint64(1) << uint(g.Q1)
		for i := uint64(0); i < uint64(len(s.amps)); i++ {
			if i&ctrl != 0 && i&tgt == 0 {
				j := i | tgt
				s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
			}
		}
	case circuit.CZ:
		s.phase2Q(g.Q0, g.Q1, [4]complex128{1, 1, 1, -1})
	case circuit.SWAP:
		a := uint64(1) << uint(g.Q0)
		b := uint64(1) << uint(g.Q1)
		for i := uint64(0); i < uint64(len(s.amps)); i++ {
			if i&a != 0 && i&b == 0 {
				j := (i &^ a) | b
				s.amps[i], s.amps[j] = s.amps[j], s.amps[i]
			}
		}
	case circuit.RZZ:
		em := cmplx.Exp(complex(0, -g.Param/2))
		ep := cmplx.Exp(complex(0, g.Param/2))
		s.phase2Q(g.Q0, g.Q1, [4]complex128{em, ep, ep, em})
	case circuit.XX:
		// exp(-i θ/2 X⊗X): mixes |00⟩↔|11⟩ and |01⟩↔|10⟩.
		c := complex(math.Cos(g.Param/2), 0)
		si := complex(0, -math.Sin(g.Param/2))
		b0 := uint64(1) << uint(g.Q0)
		b1 := uint64(1) << uint(g.Q1)
		for i := uint64(0); i < uint64(len(s.amps)); i++ {
			if i&b0 != 0 || i&b1 != 0 {
				continue
			}
			i00, i01, i10, i11 := i, i|b0, i|b1, i|b0|b1
			a00, a01, a10, a11 := s.amps[i00], s.amps[i01], s.amps[i10], s.amps[i11]
			s.amps[i00] = c*a00 + si*a11
			s.amps[i11] = c*a11 + si*a00
			s.amps[i01] = c*a01 + si*a10
			s.amps[i10] = c*a10 + si*a01
		}
	default:
		return fmt.Errorf("qsim: unsupported gate kind %v", g.Kind)
	}
	return nil
}

// Run executes all gates of a circuit in order.
func (s *State) Run(c *circuit.Circuit) error {
	if c.NumQubits != s.n {
		return fmt.Errorf("qsim: circuit has %d qubits, state has %d", c.NumQubits, s.n)
	}
	for _, g := range c.Gates {
		if err := s.ApplyGate(g); err != nil {
			return err
		}
	}
	return nil
}

// Norm returns the state norm (should remain 1 up to rounding).
func (s *State) Norm() float64 {
	t := 0.0
	for _, a := range s.amps {
		t += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(t)
}

// Probability returns |⟨basis|ψ⟩|².
func (s *State) Probability(basis uint64) float64 {
	a := s.amps[basis]
	return real(a)*real(a) + imag(a)*imag(a)
}

// ExpectationDiag computes ⟨ψ| f |ψ⟩ for a diagonal observable given as a
// function of the basis state — exactly what QAOA needs for QUBO cost
// Hamiltonians.
func (s *State) ExpectationDiag(f func(basis uint64) float64) float64 {
	e := 0.0
	for i, a := range s.amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 0 {
			e += p * f(uint64(i))
		}
	}
	return e
}

// Sample draws shots basis states from the measurement distribution using
// sorted uniforms and a single pass over the amplitudes, avoiding a
// cumulative array (important at 2^27 amplitudes).
func (s *State) Sample(rng *rand.Rand, shots int) []uint64 {
	us := make([]float64, shots)
	for i := range us {
		us[i] = rng.Float64()
	}
	sort.Float64s(us)
	out := make([]uint64, 0, shots)
	acc := 0.0
	k := 0
	for i, a := range s.amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		for k < shots && us[k] <= acc {
			out = append(out, uint64(i))
			k++
		}
		if k == shots {
			break
		}
	}
	// Rounding may leave a few shots unassigned; give them the last state.
	for len(out) < shots {
		out = append(out, uint64(len(s.amps)-1))
	}
	// Restore randomness of order (callers may subsample).
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// BitsOf unpacks a sampled basis state into a boolean assignment of n
// variables (bit i → variable i).
func BitsOf(basis uint64, n int) []bool {
	x := make([]bool, n)
	for i := 0; i < n; i++ {
		x[i] = basis&(1<<uint(i)) != 0
	}
	return x
}
