package qsim

import "fmt"

// Precision selects the amplitude storage width of a State. Complex128 is
// the ground truth the equivalence tests compare against; Complex64 halves
// the memory traffic of every kernel sweep — the dominant cost of dense
// simulation — at the price of float32 rounding. Gate parameters and
// reductions (Norm, ExpectationTable, Sample cumulative scan) are always
// computed in float64, so the only error source is amplitude storage.
type Precision uint8

const (
	// Complex128 stores amplitudes as float64 pairs (the default).
	Complex128 Precision = iota
	// Complex64 stores amplitudes as float32 pairs.
	Complex64

	numPrecisions = 2
)

// String names the precision the way the -precision flags spell it.
func (p Precision) String() string {
	switch p {
	case Complex128:
		return "complex128"
	case Complex64:
		return "complex64"
	default:
		return fmt.Sprintf("Precision(%d)", uint8(p))
	}
}

// ParsePrecision maps flag spellings to a Precision. The empty string
// selects the Complex128 default so callers can thread an unset flag
// straight through.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "complex128", "c128", "128":
		return Complex128, nil
	case "complex64", "c64", "64":
		return Complex64, nil
	default:
		return Complex128, fmt.Errorf("qsim: unknown precision %q (want complex64 or complex128)", s)
	}
}
