package qsim

import (
	"fmt"
	"math/rand"
	"testing"

	"quantumjoin/internal/circuit"
)

// benchQubits are the statevector sizes the kernel benchmarks sweep. 24
// qubits is 256 MiB of amplitudes — skipped under -short.
func benchQubits(b *testing.B) []int {
	if testing.Short() {
		return []int{16}
	}
	return []int{16, 20, 24}
}

func benchState(b *testing.B, n int) *State {
	s, err := NewState(n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	norm := 0.0
	for i := range s.amps {
		s.amps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		norm += real(s.amps[i])*real(s.amps[i]) + imag(s.amps[i])*imag(s.amps[i])
	}
	// Leave unnormalised: kernels don't care and the fill dominates setup.
	_ = norm
	return s
}

// BenchmarkQsimH measures a Hadamard sweep over every qubit, comparing the
// reference full-sweep kernel against the strided kernel serial and with
// full fan-out.
func BenchmarkQsimH(b *testing.B) {
	h := complex(0.7071067811865476, 0)
	u := [2][2]complex128{{h, h}, {h, -h}}
	for _, n := range benchQubits(b) {
		s := benchState(b, n)
		b.Run(fmt.Sprintf("n=%d/ref", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.apply1QRef(i%n, u)
			}
		})
		b.Run(fmt.Sprintf("n=%d/serial", n), func(b *testing.B) {
			prev := SetWorkers(1)
			defer SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				s.apply1Q(i%n, u)
			}
		})
		b.Run(fmt.Sprintf("n=%d/parallel", n), func(b *testing.B) {
			prev := SetWorkers(0)
			defer SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				s.apply1Q(i%n, u)
			}
		})
	}
}

// BenchmarkQsimCXChain measures a chain of CXs across adjacent qubits.
func BenchmarkQsimCXChain(b *testing.B) {
	for _, n := range benchQubits(b) {
		s := benchState(b, n)
		chain := circuit.New(n)
		for q := 0; q+1 < n; q++ {
			chain.Append(circuit.G2(circuit.CX, q, q+1, 0))
		}
		b.Run(fmt.Sprintf("n=%d/ref", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := s.runRef(chain); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/serial", n), func(b *testing.B) {
			prev := SetWorkers(1)
			defer SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				if err := s.Run(chain); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/parallel", n), func(b *testing.B) {
			prev := SetWorkers(0)
			defer SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				if err := s.Run(chain); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQsimDiagLayer measures a QAOA-style cost layer (RZ on every
// qubit + RZZ ring), gate-by-gate versus fused into one pass.
func BenchmarkQsimDiagLayer(b *testing.B) {
	for _, n := range benchQubits(b) {
		s := benchState(b, n)
		layer := circuit.New(n)
		for q := 0; q < n; q++ {
			layer.Append(circuit.G1(circuit.RZ, q, 0.3+float64(q)*0.01))
		}
		for q := 0; q < n; q++ {
			layer.Append(circuit.G2(circuit.RZZ, q, (q+1)%n, 0.7+float64(q)*0.01))
		}
		b.Run(fmt.Sprintf("n=%d/gate-by-gate", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := s.runRef(layer); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/fused-serial", n), func(b *testing.B) {
			prev := SetWorkers(1)
			defer SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				if err := s.Run(layer); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/fused-parallel", n), func(b *testing.B) {
			prev := SetWorkers(0)
			defer SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				if err := s.Run(layer); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
