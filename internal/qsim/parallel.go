package qsim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// numWorkers is the number of goroutines statevector kernels shard across.
// 0 (the default) selects runtime.GOMAXPROCS at each call, so the
// simulator tracks the process's CPU budget without per-State plumbing.
var numWorkers atomic.Int32

// SetWorkers fixes the kernel fan-out to n goroutines and returns the
// previous setting; n <= 0 restores the GOMAXPROCS default. It exists for
// benchmarks (serial vs parallel kernels) and for tests that want to force
// sharded execution on machines where GOMAXPROCS is 1.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(numWorkers.Swap(int32(n)))
}

// Workers reports the current kernel fan-out.
func Workers() int {
	if w := int(numWorkers.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// parMinWork is the smallest per-kernel index count worth sharding; below
// it goroutine start/stop overhead dominates the O(2^n) sweep.
const parMinWork = 1 << 13

// parRange splits [0, total) into one contiguous chunk per worker and runs
// fn on each chunk, blocking until all complete. Chunks are disjoint, so
// fn may write freely inside its range. Small ranges run on the calling
// goroutine.
func parRange(total uint64, fn func(lo, hi uint64)) {
	parRangeMin(total, parMinWork, fn)
}

// parRangeMin is parRange with an explicit serial-fallback threshold, for
// callers whose range units represent more than one index of work each
// (e.g. ExpectationTable iterates over fixed-size blocks).
func parRangeMin(total, minWork uint64, fn func(lo, hi uint64)) {
	w := uint64(Workers())
	if w <= 1 || total < minWork {
		fn(0, total)
		return
	}
	if w > total {
		w = total
	}
	chunk := (total + w - 1) / w
	var wg sync.WaitGroup
	for lo := uint64(0); lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// expandBit widens k by inserting a 0 at the bit position given by mask
// (mask = 1<<q): the result iterates exactly the indices whose q-th bit is
// clear as k sweeps [0, 2^(n-1)). This is the standard stride trick that
// lets kernels visit only the bit-clear half of the index space.
func expandBit(k, mask uint64) uint64 {
	low := mask - 1
	return ((k &^ low) << 1) | (k & low)
}

// expandBits2 inserts 0s at two bit positions, loMask < hiMask, mapping
// k ∈ [0, 2^(n-2)) onto the quarter of the index space where both bits are
// clear.
func expandBits2(k, loMask, hiMask uint64) uint64 {
	return expandBit(expandBit(k, loMask), hiMask)
}

// sortMasks returns the two single-bit masks in ascending order.
func sortMasks(a, b uint64) (uint64, uint64) {
	if a < b {
		return a, b
	}
	return b, a
}
