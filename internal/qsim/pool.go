package qsim

import "sync"

// Per-(precision, size) amplitude buffer pools. Variational loops (QAOA
// optimisers) allocate a fresh 2^n statevector per energy evaluation; at
// 20+ qubits that is tens of MiB per call, all garbage. Acquire/Release
// recycle the backing arrays through a sync.Pool per qubit count. Pools
// are additionally keyed by precision: a complex64 buffer over n qubits is
// half the width of a complex128 one, so handing a state released at one
// precision to an acquirer of the other would alias a stale-width buffer.
var ampPools [numPrecisions][MaxQubits + 1]sync.Pool

// Acquire returns a |0...0⟩ Complex128 state over n qubits, reusing a
// previously Released amplitude buffer when one is available. Call Release
// when done.
func Acquire(n int) (*State, error) {
	return AcquireWith(n, Complex128)
}

// AcquireWith is Acquire at an explicit precision.
func AcquireWith(n int, p Precision) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, errQubitCount(n)
	}
	if v := ampPools[p][n].Get(); v != nil {
		s := v.(*State)
		s.Reset()
		return s, nil
	}
	return NewStateWith(n, p)
}

// Release returns the state's amplitude buffer to the pool matching its
// precision. The state must not be used afterwards.
func (s *State) Release() {
	if s == nil || s.n < 1 || s.n > MaxQubits {
		return
	}
	want := 1 << uint(s.n)
	if s.prec == Complex64 {
		if len(s.amps64) != want {
			return
		}
	} else if len(s.amps) != want {
		return
	}
	ampPools[s.prec][s.n].Put(s)
}

// Reset reinitialises the state to |0...0⟩ in place.
func (s *State) Reset() {
	if s.prec == Complex64 {
		amps := s.amps64
		parRange(uint64(len(amps)), func(lo, hi uint64) {
			for i := lo; i < hi; i++ {
				amps[i] = 0
			}
		})
		amps[0] = 1
		return
	}
	amps := s.amps
	parRange(uint64(len(amps)), func(lo, hi uint64) {
		for i := lo; i < hi; i++ {
			amps[i] = 0
		}
	})
	amps[0] = 1
}
