package qsim

import "sync"

// Per-size amplitude buffer pools. Variational loops (QAOA optimisers)
// allocate a fresh 2^n statevector per energy evaluation; at 20+ qubits
// that is tens of MiB per call, all garbage. Acquire/Release recycle the
// backing arrays through a sync.Pool per qubit count.
var ampPools [MaxQubits + 1]sync.Pool

// Acquire returns a |0...0⟩ state over n qubits, reusing a previously
// Released amplitude buffer when one is available. Call Release when done.
func Acquire(n int) (*State, error) {
	if n < 1 || n > MaxQubits {
		return nil, errQubitCount(n)
	}
	if v := ampPools[n].Get(); v != nil {
		s := v.(*State)
		s.Reset()
		return s, nil
	}
	return NewState(n)
}

// Release returns the state's amplitude buffer to the pool. The state must
// not be used afterwards.
func (s *State) Release() {
	if s == nil || s.n < 1 || s.n > MaxQubits || len(s.amps) != 1<<uint(s.n) {
		return
	}
	ampPools[s.n].Put(s)
}

// Reset reinitialises the state to |0...0⟩ in place.
func (s *State) Reset() {
	amps := s.amps
	parRange(uint64(len(amps)), func(lo, hi uint64) {
		for i := lo; i < hi; i++ {
			amps[i] = 0
		}
	})
	amps[0] = 1
}
