package qsim

import (
	"math"
	"math/bits"
	"math/cmplx"

	"quantumjoin/internal/circuit"
)

// Complex64 kernels: structurally identical to the complex128 sweeps in
// qsim.go (same bit-expansion enumeration, same worker sharding), but over
// float32 amplitude pairs — half the memory traffic on kernels that are
// memory-bound from ~2^16 amplitudes up. Gate matrices and fused diagonal
// angles are computed in float64 and narrowed once per gate, not per
// amplitude, so storage width is the only precision loss.

// to64 narrows a 2x2 unitary computed in float64.
func to64(u [2][2]complex128) [2][2]complex64 {
	return [2][2]complex64{
		{complex64(u[0][0]), complex64(u[0][1])},
		{complex64(u[1][0]), complex64(u[1][1])},
	}
}

// apply1Q64 applies a 2x2 unitary to qubit q (complex64 backing).
func (s *State) apply1Q64(q int, u [2][2]complex64) {
	bit := uint64(1) << uint(q)
	amps := s.amps64
	parRange(uint64(len(amps))>>1, func(lo, hi uint64) {
		for k := lo; k < hi; k++ {
			i := expandBit(k, bit)
			j := i | bit
			a0, a1 := amps[i], amps[j]
			amps[i] = u[0][0]*a0 + u[0][1]*a1
			amps[j] = u[1][0]*a0 + u[1][1]*a1
		}
	})
}

// phase2Q64 multiplies amplitudes by basis-dependent phases for a diagonal
// two-qubit gate (complex64 backing).
func (s *State) phase2Q64(q0, q1 int, d [4]complex64) {
	b0 := uint64(1) << uint(q0)
	b1 := uint64(1) << uint(q1)
	loM, hiM := sortMasks(b0, b1)
	amps := s.amps64
	parRange(uint64(len(amps))>>2, func(lo, hi uint64) {
		for k := lo; k < hi; k++ {
			i00 := expandBits2(k, loM, hiM)
			amps[i00] *= d[0]
			amps[i00|b0] *= d[1]
			amps[i00|b1] *= d[2]
			amps[i00|b0|b1] *= d[3]
		}
	})
}

// applyGate64 mirrors ApplyGate's switch over the complex64 kernels.
func (s *State) applyGate64(g circuit.Gate) error {
	switch g.Kind {
	case circuit.H:
		h := complex(1/math.Sqrt2, 0)
		s.apply1Q64(g.Q0, to64([2][2]complex128{{h, h}, {h, -h}}))
	case circuit.X:
		s.apply1Q64(g.Q0, [2][2]complex64{{0, 1}, {1, 0}})
	case circuit.SX:
		p := complex(0.5, 0.5)
		m := complex(0.5, -0.5)
		s.apply1Q64(g.Q0, to64([2][2]complex128{{p, m}, {m, p}}))
	case circuit.RX:
		c := complex(math.Cos(g.Param/2), 0)
		si := complex(0, -math.Sin(g.Param/2))
		s.apply1Q64(g.Q0, to64([2][2]complex128{{c, si}, {si, c}}))
	case circuit.RY:
		c := complex(math.Cos(g.Param/2), 0)
		si := complex(math.Sin(g.Param/2), 0)
		s.apply1Q64(g.Q0, to64([2][2]complex128{{c, -si}, {si, c}}))
	case circuit.RZ:
		em := cmplx.Exp(complex(0, -g.Param/2))
		ep := cmplx.Exp(complex(0, g.Param/2))
		s.apply1Q64(g.Q0, to64([2][2]complex128{{em, 0}, {0, ep}}))
	case circuit.CX:
		ctrl := uint64(1) << uint(g.Q0)
		tgt := uint64(1) << uint(g.Q1)
		loM, hiM := sortMasks(ctrl, tgt)
		amps := s.amps64
		parRange(uint64(len(amps))>>2, func(lo, hi uint64) {
			for k := lo; k < hi; k++ {
				i := expandBits2(k, loM, hiM) | ctrl
				j := i | tgt
				amps[i], amps[j] = amps[j], amps[i]
			}
		})
	case circuit.CZ:
		s.phase2Q64(g.Q0, g.Q1, [4]complex64{1, 1, 1, -1})
	case circuit.SWAP:
		a := uint64(1) << uint(g.Q0)
		b := uint64(1) << uint(g.Q1)
		loM, hiM := sortMasks(a, b)
		amps := s.amps64
		parRange(uint64(len(amps))>>2, func(lo, hi uint64) {
			for k := lo; k < hi; k++ {
				base := expandBits2(k, loM, hiM)
				i := base | a
				j := base | b
				amps[i], amps[j] = amps[j], amps[i]
			}
		})
	case circuit.RZZ:
		em := cmplx.Exp(complex(0, -g.Param/2))
		ep := cmplx.Exp(complex(0, g.Param/2))
		e64, p64 := complex64(em), complex64(ep)
		s.phase2Q64(g.Q0, g.Q1, [4]complex64{e64, p64, p64, e64})
	case circuit.XX:
		c := complex64(complex(math.Cos(g.Param/2), 0))
		si := complex64(complex(0, -math.Sin(g.Param/2)))
		b0 := uint64(1) << uint(g.Q0)
		b1 := uint64(1) << uint(g.Q1)
		loM, hiM := sortMasks(b0, b1)
		amps := s.amps64
		parRange(uint64(len(amps))>>2, func(lo, hi uint64) {
			for k := lo; k < hi; k++ {
				i00 := expandBits2(k, loM, hiM)
				i01, i10, i11 := i00|b0, i00|b1, i00|b0|b1
				a00, a01, a10, a11 := amps[i00], amps[i01], amps[i10], amps[i11]
				amps[i00] = c*a00 + si*a11
				amps[i11] = c*a11 + si*a00
				amps[i01] = c*a01 + si*a10
				amps[i10] = c*a10 + si*a01
			}
		})
	default:
		return errUnsupported(g)
	}
	return nil
}

// applyDiagFused64 is applyDiagFused over complex64 backing. The per-basis
// angle still accumulates in float64; only the final phase multiply is
// narrowed.
func (s *State) applyDiagFused64(ops []diagOp) {
	amps := s.amps64
	parRange(uint64(len(amps)), func(lo, hi uint64) {
		for i := lo; i < hi; i++ {
			ang := 0.0
			for _, op := range ops {
				ang += op.th[bits.OnesCount64(i&op.mask)&1]
			}
			sin, cos := math.Sincos(ang)
			amps[i] *= complex(float32(cos), float32(sin))
		}
	})
}
