package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2.138089935) > 1e-6 {
		t.Errorf("StdDev = %v", got)
	}
	if StdDev([]float64{1}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	// Does not mutate its input.
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	b := Summarize([]float64{7, 1, 3, 5})
	if b.Min != 1 || b.Max != 7 || b.Median != 4 {
		t.Errorf("Summarize = %+v", b)
	}
	if b.IQR() != b.Q3-b.Q1 {
		t.Error("IQR mismatch")
	}
	if b.String() == "" {
		t.Error("empty String()")
	}
}

func TestInts(t *testing.T) {
	got := Ints([]int{1, 2, 3})
	if len(got) != 3 || got[2] != 3 {
		t.Errorf("Ints = %v", got)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(n uint8) bool {
		m := int(n%50) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-12 || v < sorted[0]-1e-12 || v > sorted[m-1]+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
