// Package stats provides the small set of descriptive statistics used by
// the experiment harness: means, quantiles, and five-number boxplot
// summaries (the paper reports circuit depths as boxplots over 20
// transpilation runs).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics (type-7, the R/NumPy default). It returns NaN
// for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Boxplot is a five-number summary.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) Boxplot {
	return Boxplot{
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
	}
}

// IQR returns the interquartile range.
func (b Boxplot) IQR() float64 { return b.Q3 - b.Q1 }

// String renders the summary compactly.
func (b Boxplot) String() string {
	return fmt.Sprintf("min=%.0f q1=%.0f med=%.0f q3=%.0f max=%.0f", b.Min, b.Q1, b.Median, b.Q3, b.Max)
}

// Ints converts an int slice to float64 for use with the other helpers.
func Ints(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
