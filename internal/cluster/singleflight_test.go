package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitForWaiters blocks until the flight registered under key has at
// least n parked waiters (the counter is bumped under the group mutex, so
// once observed the waiters are committed to the waiter path).
func waitForWaiters(t *testing.T, g *Group, key string, n int32) *flight {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g.mu.Lock()
		f := g.inflight[key]
		g.mu.Unlock()
		if f != nil && f.waiters.Load() >= n {
			return f
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("flight %q never reached %d waiters", key, n)
	return nil
}

// TestGroupCoalesces drives N concurrent identical requests through one
// Group: exactly one inner invocation, one leader, N-1 waiters, and N
// byte-identical responses (run under -race).
func TestGroupCoalesces(t *testing.T) {
	const n = 8
	var (
		calls   atomic.Int64
		release = make(chan struct{})
	)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-release
		w.Header().Set("X-Test", "shared")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"answer":42}`))
	})

	g := NewGroup()
	type result struct {
		leader bool
		err    error
		status int
		body   string
		coal   string
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/v1/optimize", nil)
			leader, err := g.Do("k", rec, req, inner)
			results[i] = result{leader, err, rec.Code, rec.Body.String(), rec.Header().Get(HeaderCoalesced)}
		}(i)
	}
	waitForWaiters(t, g, "k", n-1)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("inner handler ran %d times for %d identical requests, want 1", got, n)
	}
	leaders, joined := 0, 0
	for i, res := range results {
		if res.err != nil {
			t.Fatalf("request %d failed: %v", i, res.err)
		}
		if res.leader {
			leaders++
			if res.coal != "" {
				t.Errorf("leader %d marked coalesced", i)
			}
		} else {
			joined++
			if res.coal != "1" {
				t.Errorf("waiter %d missing %s header", i, HeaderCoalesced)
			}
		}
		if res.status != http.StatusOK || res.body != `{"answer":42}` {
			t.Errorf("request %d got status=%d body=%q, want the shared response", i, res.status, res.body)
		}
	}
	if leaders != 1 || joined != n-1 {
		t.Errorf("leaders=%d joined=%d, want 1 and %d", leaders, joined, n-1)
	}

	// The flight must be gone: a later identical request leads its own solve.
	g.mu.Lock()
	left := len(g.inflight)
	g.mu.Unlock()
	if left != 0 {
		t.Errorf("%d flights still registered after completion", left)
	}
}

// TestGroupWaiterCancellation checks that one waiter giving up fails only
// that waiter: the shared solve keeps running on its detached context and
// the remaining waiter still receives the answer.
func TestGroupWaiterCancellation(t *testing.T) {
	var (
		calls      atomic.Int64
		release    = make(chan struct{})
		innerCtxOK atomic.Bool
	)
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-release
		// The leader runs detached: even though waiters have cancelled by
		// now, the solve's own context must still be alive.
		innerCtxOK.Store(r.Context().Err() == nil)
		_, _ = w.Write([]byte("ok"))
	})

	g := NewGroup()
	var wg sync.WaitGroup

	// Leader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize", nil)
		if leader, err := g.Do("k", rec, req, inner); !leader || err != nil {
			t.Errorf("leader: leader=%v err=%v", leader, err)
		}
	}()
	waitForWaiters(t, g, "k", 0) // flight registered

	// A waiter that will cancel.
	cancelCtx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize", nil).WithContext(cancelCtx)
		_, err := g.Do("k", rec, req, inner)
		cancelled <- err
	}()

	// A waiter that stays.
	stayRec := httptest.NewRecorder()
	stayed := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodPost, "/v1/optimize", nil)
		_, err := g.Do("k", stayRec, req, inner)
		stayed <- err
	}()

	waitForWaiters(t, g, "k", 2)
	cancel()
	if err := <-cancelled; err != context.Canceled {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
	// The shared solve must still be in flight after the cancellation.
	if got := calls.Load(); got != 1 {
		t.Fatalf("inner handler ran %d times, want 1", got)
	}
	close(release)
	if err := <-stayed; err != nil {
		t.Fatalf("remaining waiter failed: %v", err)
	}
	wg.Wait()
	if stayRec.Body.String() != "ok" {
		t.Errorf("remaining waiter got body %q, want the shared response", stayRec.Body.String())
	}
	if !innerCtxOK.Load() {
		t.Error("leader's context was cancelled by a waiter's departure")
	}
}

// TestGroupDistinctKeysDoNotCoalesce runs two different keys concurrently
// and expects two inner invocations.
func TestGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	var calls atomic.Int64
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		_, _ = w.Write([]byte("ok"))
	})
	g := NewGroup()
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			req := httptest.NewRequest(http.MethodPost, "/v1/optimize", nil)
			if _, err := g.Do(key, rec, req, inner); err != nil {
				t.Errorf("key %s: %v", key, err)
			}
		}(key)
	}
	wg.Wait()
	if got := calls.Load(); got != 2 {
		t.Errorf("inner handler ran %d times for 2 distinct keys, want 2", got)
	}
}
