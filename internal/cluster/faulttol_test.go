package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quantumjoin/internal/service"
)

func TestRingReplicas(t *testing.T) {
	nodes := []string{"http://a", "http://b", "http://c"}
	ring, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		reps := ring.Replicas(key, 2)
		if len(reps) != 2 {
			t.Fatalf("key %q: %d replicas, want 2", key, len(reps))
		}
		if reps[0] != ring.Owner(key) {
			t.Errorf("key %q: primary %q != Owner %q", key, reps[0], ring.Owner(key))
		}
		if reps[0] == reps[1] {
			t.Errorf("key %q: duplicate replica %q", key, reps[0])
		}
		if one := ring.Replicas(key, 1); len(one) != 1 || one[0] != ring.Owner(key) {
			t.Errorf("key %q: Replicas(1) = %v, want just the owner", key, one)
		}
		all := ring.Replicas(key, 99)
		if len(all) != len(nodes) {
			t.Errorf("key %q: Replicas(99) returned %d nodes, want the clamp to %d", key, len(all), len(nodes))
		}
	}

	// Every node must derive the identical replica set from the same peers.
	ring2, err := NewRing([]string{"http://c", "http://a", "http://b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("agree-%d", i)
		a, b := ring.Replicas(key, 2), ring2.Replicas(key, 2)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("key %q: rings disagree on replicas: %v vs %v", key, a, b)
		}
	}
}

func TestRingReplicasHealthyReorders(t *testing.T) {
	ring, err := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := "some-key"
	reps := ring.Replicas(key, 2)

	// Primary unhealthy: the secondary moves first; the set is unchanged
	// (those are the nodes holding the key warm).
	got := ring.ReplicasHealthy(key, 2, func(n string) bool { return n != reps[0] })
	if got[0] != reps[1] || got[1] != reps[0] {
		t.Errorf("ReplicasHealthy = %v, want secondary-first reorder of %v", got, reps)
	}

	// All healthy and all unhealthy both preserve the walk order.
	if got := ring.ReplicasHealthy(key, 2, func(string) bool { return true }); got[0] != reps[0] || got[1] != reps[1] {
		t.Errorf("all-healthy order = %v, want %v", got, reps)
	}
	if got := ring.ReplicasHealthy(key, 2, func(string) bool { return false }); got[0] != reps[0] || got[1] != reps[1] {
		t.Errorf("all-unhealthy order = %v, want %v", got, reps)
	}
}

func TestGossipFlapDamping(t *testing.T) {
	const peer = "http://peer"
	g := NewGossip("self", []string{"self", peer}, GossipConfig{DownAfter: 2})

	if !g.Healthy(peer) {
		t.Fatal("fresh peer not healthy")
	}
	// DownAfter consecutive failures always trip the threshold.
	g.ReportFailure(peer)
	if !g.Healthy(peer) {
		t.Fatal("one failure tripped DownAfter=2")
	}
	g.ReportFailure(peer)
	if g.Healthy(peer) {
		t.Fatal("two consecutive failures did not trip DownAfter=2")
	}
	// A genuinely recovering peer is readmitted after one clean probe
	// (score 2 decays to 1.5 < 2).
	g.ReportSuccess(peer)
	if !g.Healthy(peer) {
		t.Fatal("recovering peer not readmitted")
	}

	// A flapping peer (strict fail/success alternation) accumulates
	// suspicion: after a few cycles it is down even right after a success
	// — that is the damping that keeps it from thrashing the ring.
	g2 := NewGossip("self", []string{peer}, GossipConfig{DownAfter: 2})
	for i := 0; i < 8; i++ {
		g2.ReportFailure(peer)
		g2.ReportSuccess(peer)
	}
	if g2.Healthy(peer) {
		t.Fatal("flapping peer reported healthy right after its latest success")
	}
	// Only a run of consecutive successes decays it back below threshold.
	g2.ReportSuccess(peer)
	g2.ReportSuccess(peer)
	g2.ReportSuccess(peer)
	if !g2.Healthy(peer) {
		t.Fatal("peer not readmitted after a clean success run")
	}

	// The score is capped: a long outage cannot demand an unbounded
	// number of clean probes before readmission.
	g3 := NewGossip("self", []string{peer}, GossipConfig{DownAfter: 2})
	for i := 0; i < 1000; i++ {
		g3.ReportFailure(peer)
	}
	if s := g3.Snapshot(); s[0].Suspicion > suspicionCap {
		t.Fatalf("suspicion %v exceeds cap %v", s[0].Suspicion, suspicionCap)
	}
	for i := 0; i < 6; i++ {
		g3.ReportSuccess(peer)
	}
	if !g3.Healthy(peer) {
		t.Fatal("peer not readmitted after outage plus clean run")
	}
}

func TestGossipSnapshotSortedAndMarkLeft(t *testing.T) {
	self := "http://self"
	peers := []string{"http://zebra", self, "http://alpha", "http://mike", "http://alpha"}
	g := NewGossip(self, peers, GossipConfig{})
	snap := g.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("%d peers in snapshot, want 3 (self and duplicates excluded)", len(snap))
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Node < snap[j].Node }) {
		t.Errorf("snapshot not sorted: %+v", snap)
	}

	g.MarkLeft("http://mike")
	if g.Healthy("http://mike") {
		t.Error("departed peer still routable")
	}
	for _, p := range g.Snapshot() {
		if p.Node == "http://mike" && (!p.Draining || p.Healthy) {
			t.Errorf("departed peer snapshot = %+v, want draining and unhealthy", p)
		}
	}
}

// replicaRoles resolves one catalog's fleet roles on a 3-node cluster:
// the indices of its primary owner, its warm secondary, and the remaining
// node to act as the client-facing sender. Deriving the roles from the
// ring (rather than searching for a catalog that matches fixed roles)
// keeps the tests independent of the randomly-assigned port layout.
func replicaRoles(t *testing.T, tc *testCluster, card int) (catalog string, primary, secondary, sender int) {
	t.Helper()
	catalog, q := catalogFor(card)
	key, _ := service.Fingerprint(q, service.EncodeSpec{})
	reps := tc.nodes[0].Ring().Replicas(key, 2)
	if len(reps) != 2 {
		t.Fatalf("replica set %v, want 2 nodes", reps)
	}
	idx := func(u string) int {
		for i, v := range tc.urls {
			if v == u {
				return i
			}
		}
		t.Fatalf("replica %s is not a cluster member", u)
		return -1
	}
	primary, secondary = idx(reps[0]), idx(reps[1])
	for i := range tc.urls {
		if i != primary && i != secondary {
			return catalog, primary, secondary, i
		}
	}
	t.Fatal("no third node left to send from")
	return "", 0, 0, 0
}

func TestClusterHedgedForwardOnSlowPeer(t *testing.T) {
	release := make([]chan struct{}, 3)
	released := make([]bool, 3)
	tc := startCluster(t, 3, func(i int, nc *NodeConfig, b *testBackend) {
		nc.HedgeAfter = 20 * time.Millisecond
		release[i] = make(chan struct{})
		b.block = release[i]
	})
	defer func() {
		for i := range release {
			if !released[i] {
				close(release[i])
			}
		}
	}()

	catalog, primary, secondary, sender := replicaRoles(t, tc, 42)
	// Everyone but the primary solves instantly; the primary's solves
	// park, so only the hedge can answer.
	for i := range release {
		if i != primary {
			close(release[i])
			released[i] = true
		}
	}

	resp, raw := postJSON(t, tc.urls[sender]+"/v1/optimize", `{"query": `+catalog+`}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(HeaderServedBy); got != tc.urls[secondary] {
		t.Errorf("served by %q, want the hedged replica %s", got, tc.urls[secondary])
	}
	if got := resp.Header.Get(HeaderHedged); got != tc.urls[secondary] {
		t.Errorf("X-Hedged = %q, want %s", got, tc.urls[secondary])
	}
	var out service.OptimizeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Order) != 3 {
		t.Errorf("hedged response incomplete: %s", raw)
	}
	c := tc.nodes[sender].Counters()
	if c.Forwards != 1 || c.Hedges != 1 || c.HedgeWins != 1 {
		t.Errorf("sender counters = %+v, want one hedge launched and won", c)
	}
}

func TestForwardPropagatesClientHeadersAndRetryAfter(t *testing.T) {
	// A stub peer that records the forwarded request's negotiation
	// headers and answers a 503 with Retry-After, as a draining or
	// shedding qjoind would.
	stubL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stubURL := "http://" + stubL.Addr().String()
	var gotCT, gotAE atomic.Value
	stub := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotCT.Store(r.Header.Get("Content-Type"))
		gotAE.Store(r.Header.Get("Accept-Encoding"))
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error": "shedding load"}`))
	})}
	go func() { _ = stub.Serve(stubL) }()
	t.Cleanup(func() { _ = stub.Close() })

	selfL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	selfURL := "http://" + selfL.Addr().String()
	reg := service.NewRegistry()
	if err := reg.Register(&testBackend{}); err != nil {
		t.Fatal(err)
	}
	svc := service.New(reg, service.Config{Workers: 2, DefaultBackend: "test"})
	node, err := NewNode(service.NewHandler(svc), NodeConfig{Self: selfURL, Peers: []string{selfURL, stubURL}})
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: node}
	go func() { _ = srv.Serve(selfL) }()
	t.Cleanup(func() {
		_ = srv.Close()
		_ = svc.Close(context.Background())
	})

	catalog, _ := catalogOwnedBy(t, node.Ring(), stubURL, 10)
	resp, raw := postJSON(t, selfURL+"/v1/optimize", `{"query": `+catalog+`}`, map[string]string{
		"Content-Type":    "application/json; charset=utf-8",
		"Accept-Encoding": "identity",
	})

	// The upstream's 503 and Retry-After must reach the client verbatim.
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%s), want the forwarded 503", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want the upstream's 7", got)
	}
	// And the client's negotiation headers must reach the upstream verbatim.
	if got := gotCT.Load(); got != "application/json; charset=utf-8" {
		t.Errorf("forwarded Content-Type = %q, want the client's verbatim", got)
	}
	if got := gotAE.Load(); got != "identity" {
		t.Errorf("forwarded Accept-Encoding = %q, want the client's verbatim", got)
	}
}

func TestClusterDrainAnnouncesLeaveAndReroutes(t *testing.T) {
	tc := startCluster(t, 2, nil)
	catalog, _ := catalogOwnedBy(t, tc.nodes[0].Ring(), tc.urls[1], 10)

	resp, raw := postJSON(t, tc.urls[1]+"/v1/drain", `{}`, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("drain status %d: %s", resp.StatusCode, raw)
	}
	if !tc.nodes[1].Draining() {
		t.Fatal("node not draining after POST /v1/drain")
	}

	// The draining node's healthz answers "draining" (still 200: it is
	// alive and finishing work).
	hresp, err := http.Get(tc.urls[1] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || health.Status != "draining" {
		t.Fatalf("healthz = %d %q, want 200 \"draining\"", hresp.StatusCode, health.Status)
	}

	// The leave announcement reaches the peer without any gossip polling.
	deadline := time.Now().Add(5 * time.Second)
	for tc.nodes[0].Gossip().Healthy(tc.urls[1]) {
		if time.Now().After(deadline) {
			t.Fatal("peer never learned of the departure")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New work owned by the draining node routes elsewhere — served
	// locally by the receiving node, with no forward attempt.
	before := tc.nodes[0].Counters()
	resp, raw = postJSON(t, tc.urls[0]+"/v1/optimize", `{"query": `+catalog+`}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(HeaderServedBy); got != tc.urls[0] {
		t.Errorf("served by %q, want rerouted to %s", got, tc.urls[0])
	}
	after := tc.nodes[0].Counters()
	if after.Forwards != before.Forwards || after.ForwardErrors != before.ForwardErrors {
		t.Errorf("counters %+v -> %+v: the draining peer was still forwarded to", before, after)
	}

	// The draining node itself still answers work that reaches it
	// directly (clients mid-flight), it just sheds its ownership.
	resp, raw = postJSON(t, tc.urls[1]+"/v1/optimize", `{"query": `+catalog+`}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draining node refused a direct request: %d %s", resp.StatusCode, raw)
	}
}

func TestDrainCompletesCoalescedSolve(t *testing.T) {
	const n = 4
	release := make(chan struct{})
	tc := startCluster(t, 1, func(i int, nc *NodeConfig, b *testBackend) {
		b.block = release
	})
	catalog, _ := catalogFor(42)
	body := `{"query": ` + catalog + `}`

	type result struct {
		status int
		raw    []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJSON(t, tc.urls[0]+"/v1/optimize", body, nil)
			results[i] = result{resp.StatusCode, raw}
		}(i)
	}

	// Park the leader in the backend with n-1 waiters attached.
	g := tc.nodes[0].flights
	deadline := time.Now().Add(10 * time.Second)
	for {
		g.mu.Lock()
		var parked int32 = -1
		for _, f := range g.inflight {
			parked = f.waiters.Load()
		}
		flights := len(g.inflight)
		g.mu.Unlock()
		if flights == 1 && parked >= n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flights=%d waiters=%d, want 1 flight with %d waiters", flights, parked, n-1)
		}
		time.Sleep(time.Millisecond)
	}

	// SIGTERM arrives: the drain must NOT complete while the coalesced
	// solve (leader + waiters) is still in flight.
	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drainDone <- tc.nodes[0].Drain(ctx)
	}()
	select {
	case err := <-drainDone:
		t.Fatalf("drain returned (%v) while the coalesced solve was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	if !tc.nodes[0].Draining() {
		t.Fatal("node not marked draining")
	}

	// Release the solve: every attached client gets its 200 — no 499
	// storm — and only then does the drain complete.
	close(release)
	wg.Wait()
	for i, res := range results {
		if res.status != http.StatusOK {
			t.Errorf("request %d: status %d (%s), want 200 through the drain", i, res.status, res.raw)
		}
	}
	select {
	case err := <-drainDone:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed after the solve finished")
	}
	if got := tc.backends[0].calls.Load(); got != 1 {
		t.Errorf("backend solved %d times, want the single coalesced solve", got)
	}
}

func TestWarmReplicaServesAfterPrimaryKill(t *testing.T) {
	tc := startCluster(t, 3, nil)

	catalog, primary, secondary, sender := replicaRoles(t, tc, 42)
	body := `{"query": ` + catalog + `}`

	// First solve: the sender forwards to the primary, which encodes
	// fresh (a miss) and pushes the encoding to its replica.
	resp, raw := postJSON(t, tc.urls[sender]+"/v1/optimize", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(HeaderServedBy); got != tc.urls[primary] {
		t.Fatalf("served by %q, want primary %s", got, tc.urls[primary])
	}
	var first service.OptimizeResponse
	if err := json.Unmarshal(raw, &first); err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first solve reported a cache hit; the warm-push premise is broken")
	}

	// The warm push is asynchronous; wait for the replica to accept it.
	deadline := time.Now().Add(5 * time.Second)
	for tc.nodes[secondary].Counters().WarmsReceived == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("replica never received the warm push (primary counters: %+v)", tc.nodes[primary].Counters())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Kill the primary. The failover must land on the replica and be
	// served from its pre-warmed encoding cache.
	_ = tc.servers[primary].Close()
	resp, raw = postJSON(t, tc.urls[sender]+"/v1/optimize", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(HeaderServedBy); got != tc.urls[secondary] {
		t.Fatalf("post-kill served by %q, want warm replica %s", got, tc.urls[secondary])
	}
	var second service.OptimizeResponse
	if err := json.Unmarshal(raw, &second); err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Errorf("replica served the failed-over key cold (cache_hit=false); warm push did not take")
	}
	if second.CacheKey != first.CacheKey {
		t.Errorf("cache key changed across failover: %q -> %q", first.CacheKey, second.CacheKey)
	}
}
