package cluster

import (
	"fmt"
	"testing"
)

func testNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://127.0.0.1:%d", 9100+i)
	}
	return out
}

func TestRingDeterministicAcrossOrderings(t *testing.T) {
	nodes := testNodes(4)
	shuffled := []string{nodes[2], nodes[0], nodes[3], nodes[1]}
	a, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q owned by %s on one ring, %s on the other", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingOwnerStableUnderMembershipChange(t *testing.T) {
	// Consistent hashing's defining property: adding one node moves only
	// ~1/n of the keys, everything else keeps its owner.
	small, err := NewRing(testNodes(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := NewRing(testNodes(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 5000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		if small.Owner(key) != big.Owner(key) {
			moved++
		}
	}
	// Expect ~keys/5 moves; allow a wide band.
	if moved < keys/10 || moved > keys/2 {
		t.Errorf("adding a 5th node moved %d/%d keys, want roughly %d", moved, keys, keys/5)
	}
}

func TestRingDistribution(t *testing.T) {
	nodes := testNodes(4)
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, n := range nodes {
		// With 64 virtual nodes the shares wobble around the fair 25%;
		// the test only guards against starvation and domination.
		share := float64(counts[n]) / keys
		if share < 0.05 || share > 0.55 {
			t.Errorf("node %s owns %.1f%% of keys, want a roughly balanced share", n, 100*share)
		}
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty node name accepted")
	}
	r, err := NewRing([]string{"a", "a", "a"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Nodes(); len(got) != 1 {
		t.Errorf("duplicates not collapsed: %v", got)
	}
}

func TestOwnerHealthySkipsUnhealthy(t *testing.T) {
	nodes := testNodes(3)
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	const key = "some-query-fingerprint"
	primary := r.Owner(key)

	// Primary healthy: no rerouting.
	if got := r.OwnerHealthy(key, func(string) bool { return true }); got != primary {
		t.Errorf("all-healthy owner = %s, want primary %s", got, primary)
	}
	// Primary down: the key moves to a different, healthy node, and the
	// choice is deterministic.
	down := map[string]bool{primary: true}
	healthy := func(n string) bool { return !down[n] }
	alt := r.OwnerHealthy(key, healthy)
	if alt == primary {
		t.Fatalf("unhealthy primary %s still owns the key", primary)
	}
	if again := r.OwnerHealthy(key, healthy); again != alt {
		t.Errorf("failover owner flapped: %s then %s", alt, again)
	}
	// Everything down: fall back to the primary rather than nowhere.
	if got := r.OwnerHealthy(key, func(string) bool { return false }); got != primary {
		t.Errorf("all-down owner = %s, want primary %s", got, primary)
	}
	// Nil health predicate: primary.
	if got := r.OwnerHealthy(key, nil); got != primary {
		t.Errorf("nil-predicate owner = %s, want primary %s", got, primary)
	}
}
