// Package cluster turns a set of independent qjoind daemons into one
// sharded serving fleet. Requests are routed by the permutation-invariant
// WL-hash cache key (service.Fingerprint): every node builds the same
// consistent-hash ring from the same static peer list, so any node can
// compute the owner of any request and forward it there — the owner's
// encoding cache accumulates exactly the key range it owns, multiplying
// the fleet-wide cache hit rate instead of duplicating every encoding on
// every node.
//
// The pieces, each usable alone:
//
//   - Ring: consistent hashing with virtual nodes over the peer list.
//   - Gossip: peer health polling over the existing /healthz endpoint
//     (including per-backend breaker state), so the ring routes around
//     sick nodes.
//   - Group: singleflight request coalescing — concurrent identical
//     requests on one node share a single solve and a single trace.
//   - Node: the HTTP layer tying them together — an optimize-aware
//     forwarding proxy with hop-limit protection, the batch splitter, and
//     the /v1/cluster status endpoint.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringPoint is one virtual node: a position on the 64-bit hash circle
// owned by a physical node.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring with virtual nodes. All nodes
// construct identical rings from identical peer lists (the input order is
// normalised), so routing decisions agree fleet-wide without coordination.
type Ring struct {
	points []ringPoint
	nodes  []string
}

// DefaultVirtualNodes is the per-node virtual node count: enough that a
// 3–5 node ring balances within a few percent, small enough that ring
// construction and lookup stay trivial.
const DefaultVirtualNodes = 64

// NewRing builds a ring over the given node names (typically base URLs)
// with vnodes virtual nodes each (0 selects DefaultVirtualNodes).
// Duplicate names are collapsed; the node list is sorted before hashing
// so every peer derives the same ring regardless of flag order.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Equal hashes (vanishingly rare): break by node so the order is
		// still deterministic across peers.
		return r.points[a].node < r.points[b].node
	})
	return r, nil
}

// hash64 is 64-bit FNV-1a: stable across processes and platforms, which
// is the property the ring needs (every peer must agree), and fast enough
// that lookup cost is dominated by the binary search.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// Nodes returns the distinct node names on the ring, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key: the first virtual node clockwise
// from the key's hash.
func (r *Ring) Owner(key string) string {
	return r.points[r.successor(hash64(key))].node
}

// successor returns the index of the first point with hash >= h, wrapping
// to 0 past the end.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// DefaultReplicas is the default replica ownership factor: every key has
// a primary owner plus one warm secondary, so losing any single node
// leaves each fingerprint one warm cache to hedge or fail over to.
const DefaultReplicas = 2

// Replicas returns up to n distinct nodes owning key, in successor-walk
// order starting at the primary owner (Replicas(key, 1)[0] == Owner(key)).
// n is clamped to the node count; n <= 0 selects DefaultReplicas. All
// peers derive identical replica sets, so the fleet agrees on which nodes
// hold a fingerprint warm without coordination.
func (r *Ring) Replicas(key string, n int) []string {
	if n <= 0 {
		n = DefaultReplicas
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	start := r.successor(hash64(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		node := r.points[(start+i)%len(r.points)].node
		if !contains(out, node) {
			out = append(out, node)
		}
	}
	return out
}

// ReplicasHealthy returns the key's n-replica set reordered healthy-first:
// replicas that healthy reports true for keep their successor-walk order
// and precede the unhealthy ones (which also keep theirs). The set itself
// never changes with health — those are the nodes holding the fingerprint
// warm — only the preference order does. With every replica unhealthy the
// original walk order comes back and the caller's fallback path decides.
func (r *Ring) ReplicasHealthy(key string, n int, healthy func(node string) bool) []string {
	reps := r.Replicas(key, n)
	if healthy == nil {
		return reps
	}
	out := make([]string, 0, len(reps))
	for _, node := range reps {
		if healthy(node) {
			out = append(out, node)
		}
	}
	if len(out) == len(reps) || len(out) == 0 {
		return reps
	}
	for _, node := range reps {
		if !healthy(node) {
			out = append(out, node)
		}
	}
	return out
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// OwnerHealthy walks the ring clockwise from key and returns the first
// distinct node that healthy reports true for. When every node is
// unhealthy it falls back to the primary owner — routing into a sick
// node beats routing nowhere, and the caller's local-fallback path still
// guards the request.
func (r *Ring) OwnerHealthy(key string, healthy func(node string) bool) string {
	start := r.successor(hash64(key))
	primary := r.points[start].node
	if healthy == nil {
		return primary
	}
	tried := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(tried) < len(r.nodes); i++ {
		n := r.points[(start+i)%len(r.points)].node
		if tried[n] {
			continue
		}
		tried[n] = true
		if healthy(n) {
			return n
		}
	}
	return primary
}
