package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"quantumjoin/internal/service"
)

// GossipConfig tunes peer health polling. The zero value selects the
// defaults noted per field.
type GossipConfig struct {
	// Interval is the polling period per peer (default 2s).
	Interval time.Duration
	// Timeout bounds one /healthz probe (default 2s).
	Timeout time.Duration
	// DownAfter is the suspicion threshold that marks a peer down
	// (default 2 — a single lost packet should not trigger a fleet-wide
	// ownership reshuffle). Each failed probe or forward raises the
	// peer's suspicion score by 1; each success decays it by a quarter,
	// so DownAfter consecutive failures always trip it, and a flapping
	// peer (alternating success/failure) accumulates score instead of
	// bouncing in and out of the ring — see Healthy.
	DownAfter int
	// Client issues the probes (default: a dedicated client with Timeout).
	Client *http.Client
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Timeout}
	}
	return c
}

// suspicion tuning: every failure adds suspicionStep to a peer's score,
// every success multiplies it by suspicionDecay, and the score is capped
// at suspicionCap so a long outage cannot demand an unbounded run of
// clean probes before the peer is routable again. A peer flapping
// fail/success converges to step/(1-decay) = 4, which stays above any
// sane DownAfter — flapping peers remain down until they string together
// enough consecutive successes to decay below the threshold.
const (
	suspicionStep  = 1.0
	suspicionDecay = 0.75
	suspicionCap   = 8.0
)

// PeerHealth is one peer's last observed health, as reported on
// /v1/cluster.
type PeerHealth struct {
	Node string `json:"node"`
	// Healthy is the routing verdict: suspicion below DownAfter and not
	// draining.
	Healthy bool `json:"healthy"`
	// Status is the peer's own /healthz verdict ("ok", "degraded" — a
	// degraded peer still serves via its classical fallback — or
	// "draining": the peer is finishing in-flight work before leaving).
	Status string `json:"status,omitempty"`
	// ConsecutiveFailures counts probe failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Suspicion is the flap-damped failure score behind Healthy.
	Suspicion float64 `json:"suspicion"`
	// Draining reports the peer announced it is leaving (via
	// /v1/cluster/leave) or its /healthz answered "draining"; it receives
	// no new routed work until a probe sees it healthy again.
	Draining bool `json:"draining,omitempty"`
	// Backends carries the peer's per-backend breaker state (including
	// StateAgeSeconds) from its last successful probe.
	Backends map[string]service.BackendHealth `json:"backends,omitempty"`
}

type peerState struct {
	failures int
	score    float64
	draining bool
	status   string
	backends map[string]service.BackendHealth
}

// Gossip tracks peer liveness over the fleet's existing /healthz
// endpoints: a background loop probes every peer each Interval, and the
// forwarding path feeds its own outcomes in via ReportFailure /
// ReportSuccess, so a dead peer is routed around within one round trip
// even between polls. Verdicts are flap-damped: failures raise a
// suspicion score that successes only decay multiplicatively, so a peer
// oscillating between reachable and unreachable stays routed-around
// instead of thrashing the ring (see GossipConfig.DownAfter). A peer can
// also announce departure (MarkLeft, fed by /v1/cluster/leave) and is
// then drained of new work immediately, before any probe fails. "Gossip"
// is deliberately modest here — with a static peer list every node probes
// every other node directly; there is no epidemic relay to converge.
type Gossip struct {
	self  string
	peers []string // sorted at construction; Snapshot order follows it
	cfg   GossipConfig

	mu    sync.Mutex
	state map[string]*peerState

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewGossip builds (but does not start) a health tracker for the given
// peer base URLs; self is excluded from probing and always healthy. The
// peer list is sorted so Snapshot (and thus /v1/cluster) is deterministic
// regardless of flag order.
func NewGossip(self string, peers []string, cfg GossipConfig) *Gossip {
	g := &Gossip{
		self:  self,
		cfg:   cfg.withDefaults(),
		state: make(map[string]*peerState),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, p := range peers {
		if p == self || g.state[p] != nil {
			continue
		}
		g.peers = append(g.peers, p)
		g.state[p] = &peerState{}
	}
	sort.Strings(g.peers)
	return g
}

// Start launches the polling loop (one immediate round, then every
// Interval). Stop it with Stop.
func (g *Gossip) Start() {
	go func() {
		defer close(g.done)
		g.pollAll()
		t := time.NewTicker(g.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				g.pollAll()
			}
		}
	}()
}

// Stop terminates the polling loop and waits for it to exit.
func (g *Gossip) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
}

func (g *Gossip) pollAll() {
	for _, p := range g.peers {
		select {
		case <-g.stop:
			return
		default:
		}
		g.poll(p)
	}
}

// healthzBody is the subset of the qjoind /healthz payload gossip reads.
type healthzBody struct {
	Status string                           `json:"status"`
	Health map[string]service.BackendHealth `json:"health"`
}

func (g *Gossip) poll(peer string) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		g.ReportFailure(peer)
		return
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		g.ReportFailure(peer)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		g.ReportFailure(peer)
		return
	}
	var body healthzBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		g.ReportFailure(peer)
		return
	}
	g.mu.Lock()
	if st := g.state[peer]; st != nil {
		st.failures = 0
		st.score *= suspicionDecay
		st.status = body.Status
		st.backends = body.Health
		// A probe is the authoritative word on draining: a peer
		// answering "draining" is finishing up and must get no new work;
		// any other healthy answer clears a stale leave announcement
		// (e.g. the peer restarted).
		st.draining = body.Status == "draining"
	}
	g.mu.Unlock()
}

// ReportFailure records one failed interaction with peer (probe or
// forward), raising its suspicion score; DownAfter consecutive failures
// always mark it down.
func (g *Gossip) ReportFailure(peer string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st := g.state[peer]; st != nil {
		st.failures++
		st.score += suspicionStep
		if st.score > suspicionCap {
			st.score = suspicionCap
		}
	}
}

// ReportSuccess records one successful interaction with peer, resetting
// its failure run and decaying its suspicion (the next poll refreshes the
// detailed health). Decay is multiplicative, not a reset: one lucky
// round trip through a flapping link does not whitewash a failure streak.
func (g *Gossip) ReportSuccess(peer string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st := g.state[peer]; st != nil {
		st.failures = 0
		st.score *= suspicionDecay
	}
}

// MarkLeft records that peer announced its departure (graceful drain):
// it is immediately unroutable, without waiting for a probe to fail. A
// later successful probe with a healthy status clears it.
func (g *Gossip) MarkLeft(peer string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st := g.state[peer]; st != nil {
		st.draining = true
	}
}

// Healthy reports whether node should receive forwarded traffic. Self and
// unknown nodes are always healthy (an unknown node means the ring and
// the gossip peer list disagree — routing to it is the caller's best
// guess, and refusing would turn a config skew into an outage).
func (g *Gossip) Healthy(node string) bool {
	if node == g.self {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state[node]
	if st == nil {
		return true
	}
	return !st.draining && st.score < float64(g.cfg.DownAfter)
}

// Snapshot returns the current view of every peer, in deterministic
// sorted-by-node order (the peer list is sorted at construction), so
// /v1/cluster output and tests are stable across map iteration.
func (g *Gossip) Snapshot() []PeerHealth {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]PeerHealth, 0, len(g.peers))
	for _, p := range g.peers {
		st := g.state[p]
		out = append(out, PeerHealth{
			Node:                p,
			Healthy:             !st.draining && st.score < float64(g.cfg.DownAfter),
			Status:              st.status,
			ConsecutiveFailures: st.failures,
			Suspicion:           st.score,
			Draining:            st.draining,
			Backends:            st.backends,
		})
	}
	return out
}

// String implements fmt.Stringer for logs.
func (g *Gossip) String() string {
	return fmt.Sprintf("gossip(self=%s, peers=%d)", g.self, len(g.peers))
}
