package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"quantumjoin/internal/service"
)

// GossipConfig tunes peer health polling. The zero value selects the
// defaults noted per field.
type GossipConfig struct {
	// Interval is the polling period per peer (default 2s).
	Interval time.Duration
	// Timeout bounds one /healthz probe (default 2s).
	Timeout time.Duration
	// DownAfter is how many consecutive probe failures mark a peer down
	// (default 2 — a single lost packet should not trigger a fleet-wide
	// ownership reshuffle).
	DownAfter int
	// Client issues the probes (default: a dedicated client with Timeout).
	Client *http.Client
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Interval <= 0 {
		c.Interval = 2 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 2
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.Timeout}
	}
	return c
}

// PeerHealth is one peer's last observed health, as reported on
// /v1/cluster.
type PeerHealth struct {
	Node string `json:"node"`
	// Healthy is the routing verdict: fewer than DownAfter consecutive
	// probe failures.
	Healthy bool `json:"healthy"`
	// Status is the peer's own /healthz verdict ("ok" or "degraded" —
	// a degraded peer still serves, via its classical fallback).
	Status string `json:"status,omitempty"`
	// ConsecutiveFailures counts probe failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Backends carries the peer's per-backend breaker state (including
	// StateAgeSeconds) from its last successful probe.
	Backends map[string]service.BackendHealth `json:"backends,omitempty"`
}

type peerState struct {
	failures int
	status   string
	backends map[string]service.BackendHealth
}

// Gossip tracks peer liveness over the fleet's existing /healthz
// endpoints: a background loop probes every peer each Interval, and the
// forwarding path feeds its own outcomes in via ReportFailure /
// ReportSuccess, so a dead peer is routed around within one round trip
// even between polls. "Gossip" is deliberately modest here — with a
// static peer list every node probes every other node directly; there is
// no epidemic relay to converge.
type Gossip struct {
	self  string
	peers []string
	cfg   GossipConfig

	mu    sync.Mutex
	state map[string]*peerState

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewGossip builds (but does not start) a health tracker for the given
// peer base URLs; self is excluded from probing and always healthy.
func NewGossip(self string, peers []string, cfg GossipConfig) *Gossip {
	g := &Gossip{
		self:  self,
		cfg:   cfg.withDefaults(),
		state: make(map[string]*peerState),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for _, p := range peers {
		if p == self {
			continue
		}
		g.peers = append(g.peers, p)
		g.state[p] = &peerState{}
	}
	return g
}

// Start launches the polling loop (one immediate round, then every
// Interval). Stop it with Stop.
func (g *Gossip) Start() {
	go func() {
		defer close(g.done)
		g.pollAll()
		t := time.NewTicker(g.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-g.stop:
				return
			case <-t.C:
				g.pollAll()
			}
		}
	}()
}

// Stop terminates the polling loop and waits for it to exit.
func (g *Gossip) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
}

func (g *Gossip) pollAll() {
	for _, p := range g.peers {
		select {
		case <-g.stop:
			return
		default:
		}
		g.poll(p)
	}
}

// healthzBody is the subset of the qjoind /healthz payload gossip reads.
type healthzBody struct {
	Status string                           `json:"status"`
	Health map[string]service.BackendHealth `json:"health"`
}

func (g *Gossip) poll(peer string) {
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		g.ReportFailure(peer)
		return
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		g.ReportFailure(peer)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		g.ReportFailure(peer)
		return
	}
	var body healthzBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		g.ReportFailure(peer)
		return
	}
	g.mu.Lock()
	if st := g.state[peer]; st != nil {
		st.failures = 0
		st.status = body.Status
		st.backends = body.Health
	}
	g.mu.Unlock()
}

// ReportFailure records one failed interaction with peer (probe or
// forward); DownAfter consecutive failures mark it down.
func (g *Gossip) ReportFailure(peer string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st := g.state[peer]; st != nil {
		st.failures++
	}
}

// ReportSuccess records one successful interaction with peer, resetting
// its failure run (the next poll refreshes the detailed health).
func (g *Gossip) ReportSuccess(peer string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if st := g.state[peer]; st != nil {
		st.failures = 0
	}
}

// Healthy reports whether node should receive forwarded traffic. Self and
// unknown nodes are always healthy (an unknown node means the ring and
// the gossip peer list disagree — routing to it is the caller's best
// guess, and refusing would turn a config skew into an outage).
func (g *Gossip) Healthy(node string) bool {
	if node == g.self {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.state[node]
	if st == nil {
		return true
	}
	return st.failures < g.cfg.DownAfter
}

// Snapshot returns the current view of every peer, sorted by node name
// (the peer list is constructed sorted).
func (g *Gossip) Snapshot() []PeerHealth {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]PeerHealth, 0, len(g.peers))
	for _, p := range g.peers {
		st := g.state[p]
		out = append(out, PeerHealth{
			Node:                p,
			Healthy:             st.failures < g.cfg.DownAfter,
			Status:              st.status,
			ConsecutiveFailures: st.failures,
			Backends:            st.backends,
		})
	}
	return out
}

// String implements fmt.Stringer for logs.
func (g *Gossip) String() string {
	return fmt.Sprintf("gossip(self=%s, peers=%d)", g.self, len(g.peers))
}
