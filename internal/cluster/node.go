package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quantumjoin/internal/faults"
	"quantumjoin/internal/join"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// Cluster routing headers.
const (
	// HeaderForwardedNode names the node that forwarded the request.
	HeaderForwardedNode = "X-Forwarded-Node"
	// HeaderForwardHops counts how many times the request has been
	// forwarded; at or beyond NodeConfig.MaxHops the receiver must serve
	// locally, which bounds any routing loop a ring disagreement could
	// otherwise create.
	HeaderForwardHops = "X-Forward-Hops"
	// HeaderServedBy names the node that actually solved the request.
	HeaderServedBy = "X-Served-By"
	// HeaderCoalesced marks a response that was copied from a concurrent
	// identical request's solve rather than solved separately.
	HeaderCoalesced = "X-Coalesced"
	// HeaderHedged names the replica whose hedged (non-first) attempt won
	// the forwarding race; absent when the primary answered first.
	HeaderHedged = "X-Hedged"
)

const (
	maxOptimizeBody = 1 << 20
	maxBatchBody    = 1 << 24
)

// DefaultHedgeAfter is the default hedge delay: long enough that a warm
// primary (sub-millisecond cache hit plus a LAN round trip) never triggers
// it, short enough that a dropped packet costs tens of milliseconds of
// tail latency instead of a client timeout.
const DefaultHedgeAfter = 50 * time.Millisecond

// NodeConfig configures one cluster member.
type NodeConfig struct {
	// Self is this node's base URL as it appears in Peers (required).
	Self string
	// Peers is the static list of all cluster members' base URLs,
	// including Self (required, and identical on every node).
	Peers []string
	// VirtualNodes per peer on the ring (0 selects DefaultVirtualNodes).
	VirtualNodes int
	// MaxHops bounds forwarding: a request with X-Forward-Hops >= MaxHops
	// is served locally (0 selects 1 — at most one forward, which is all a
	// consistent ring ever needs).
	MaxHops int
	// Replicas is the replica ownership factor R: every fingerprint is
	// owned by R successive ring nodes, the primary plus R-1 warm
	// secondaries that hedged forwards and warm pushes target (0 selects
	// DefaultReplicas; clamped to the peer count; 1 disables replication).
	Replicas int
	// HedgeAfter is how long a forward waits on one replica before racing
	// the next (0 selects DefaultHedgeAfter; negative disables timed
	// hedging — a transport failure still fails over immediately).
	HedgeAfter time.Duration
	// Gossip tunes peer health polling.
	Gossip GossipConfig
	// Client issues forwards (default: a fresh client; the request's own
	// context bounds each forward). Wrap its Transport with
	// faults.NewFaultyTransport to chaos-test the interconnect.
	Client *http.Client
	// Tracer, when set, records a cluster.route root span per routed
	// request; pass the same tracer as the wrapped service so the
	// service's optimize span nests inside it.
	Tracer *obs.Tracer
	// Logger, when set, receives forward-failure warnings.
	Logger *slog.Logger
}

// Counters is a point-in-time snapshot of a node's routing counters.
type Counters struct {
	// RoutedLocal counts optimize requests served by this node (as owner,
	// by hop limit, or by peer-failure fallback).
	RoutedLocal int64 `json:"routed_local"`
	// Forwards counts optimize requests forwarded to a replica (the
	// winning attempt; failed attempts are ForwardErrors).
	Forwards int64 `json:"forwards"`
	// ForwardErrors counts forward attempts that failed at the transport.
	ForwardErrors int64 `json:"forward_errors"`
	// ForcedLocal counts requests served locally because the hop limit
	// was reached even though another node owned the key.
	ForcedLocal int64 `json:"forced_local"`
	// Hedges counts extra forward attempts launched beyond the first —
	// whether by the hedge timer or immediately on a transport failure.
	Hedges int64 `json:"hedges"`
	// HedgeWins counts responses won by a hedged (non-first) attempt.
	HedgeWins int64 `json:"hedge_wins"`
	// WarmPushes counts encodings this node pushed to a replica after a
	// primary-owner cache miss.
	WarmPushes int64 `json:"warm_pushes"`
	// WarmsReceived counts warm-only requests this node accepted from a
	// primary owner.
	WarmsReceived int64 `json:"warms_received"`
	// CoalesceLeaders counts local solves that led a singleflight.
	CoalesceLeaders int64 `json:"coalesce_leaders"`
	// CoalesceJoined counts requests answered from a concurrent identical
	// request's solve — each is one solve the fleet did not repeat.
	CoalesceJoined int64 `json:"coalesce_joined"`
	// BatchSplits counts batch envelopes split across owners.
	BatchSplits int64 `json:"batch_splits"`
	// BatchForwards counts sub-batches forwarded to peers.
	BatchForwards int64 `json:"batch_forwards"`
	// BatchFallbacks counts sub-batches solved locally after their
	// owner's forward failed.
	BatchFallbacks int64 `json:"batch_fallbacks"`
}

type nodeCounters struct {
	routedLocal     atomic.Int64
	forwards        atomic.Int64
	forwardErrors   atomic.Int64
	forcedLocal     atomic.Int64
	hedges          atomic.Int64
	hedgeWins       atomic.Int64
	warmPushes      atomic.Int64
	warmsReceived   atomic.Int64
	coalesceLeaders atomic.Int64
	coalesceJoined  atomic.Int64
	batchSplits     atomic.Int64
	batchForwards   atomic.Int64
	batchFallbacks  atomic.Int64
}

func (c *nodeCounters) snapshot() Counters {
	return Counters{
		RoutedLocal:     c.routedLocal.Load(),
		Forwards:        c.forwards.Load(),
		ForwardErrors:   c.forwardErrors.Load(),
		ForcedLocal:     c.forcedLocal.Load(),
		Hedges:          c.hedges.Load(),
		HedgeWins:       c.hedgeWins.Load(),
		WarmPushes:      c.warmPushes.Load(),
		WarmsReceived:   c.warmsReceived.Load(),
		CoalesceLeaders: c.coalesceLeaders.Load(),
		CoalesceJoined:  c.coalesceJoined.Load(),
		BatchSplits:     c.batchSplits.Load(),
		BatchForwards:   c.batchForwards.Load(),
		BatchFallbacks:  c.batchFallbacks.Load(),
	}
}

// StatusResponse is the GET /v1/cluster body.
type StatusResponse struct {
	Self         string       `json:"self"`
	Nodes        []string     `json:"nodes"`
	VirtualNodes int          `json:"virtual_nodes"`
	MaxHops      int          `json:"max_hops"`
	Replicas     int          `json:"replicas"`
	Draining     bool         `json:"draining"`
	Peers        []PeerHealth `json:"peers"`
	Counters     Counters     `json:"counters"`
}

// Node is the cluster HTTP layer wrapped around one qjoind handler. It
// owns the routing decision for POST /v1/optimize (forward to the key's
// replica set with hedging, or solve locally under singleflight
// coalescing), splits POST /v1/optimize/batch envelopes by owner, serves
// GET /v1/cluster, handles the drain protocol (POST /v1/drain, POST
// /v1/cluster/leave, the "draining" /healthz status), and appends cluster
// counter families to GET /metrics. Every other route passes straight
// through to the inner handler.
type Node struct {
	cfg      NodeConfig
	inner    http.Handler
	ring     *Ring
	gossip   *Gossip
	flights  *Group
	client   *http.Client
	vnodes   int
	counters nodeCounters

	// draining is the drain state machine: once set (SIGTERM or POST
	// /v1/drain) it never clears; peers learn via the leave announcement
	// and the patched /healthz, new work routes away, and Drain waits for
	// inflight to reach zero before the caller closes the listener.
	draining  atomic.Bool
	inflight  atomic.Int64
	drainOnce sync.Once
	drainCh   chan struct{}
}

// NewNode wraps inner (a service handler from service.NewHandler) with
// cluster routing. Call Start to begin peer health polling and Stop on
// shutdown.
func NewNode(inner http.Handler, cfg NodeConfig) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: NodeConfig.Self is required")
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list", cfg.Self)
	}
	vnodes := cfg.VirtualNodes
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	ring, err := NewRing(cfg.Peers, vnodes)
	if err != nil {
		return nil, err
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 1
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > len(ring.Nodes()) {
		cfg.Replicas = len(ring.Nodes())
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = DefaultHedgeAfter
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Node{
		cfg:     cfg,
		inner:   inner,
		ring:    ring,
		gossip:  NewGossip(cfg.Self, cfg.Peers, cfg.Gossip),
		flights: NewGroup(),
		client:  client,
		vnodes:  vnodes,
		drainCh: make(chan struct{}),
	}, nil
}

// Start launches peer health polling.
func (n *Node) Start() { n.gossip.Start() }

// Stop terminates peer health polling.
func (n *Node) Stop() { n.gossip.Stop() }

// Ring exposes the node's consistent-hash ring (for tooling and tests).
func (n *Node) Ring() *Ring { return n.ring }

// Gossip exposes the node's peer health tracker (for tooling and tests).
func (n *Node) Gossip() *Gossip { return n.gossip }

// Counters returns a snapshot of the routing counters.
func (n *Node) Counters() Counters { return n.counters.snapshot() }

// Draining reports whether the drain protocol has started.
func (n *Node) Draining() bool { return n.draining.Load() }

// DrainRequested is closed when a drain begins (POST /v1/drain or Drain),
// so the serving loop can initiate shutdown; read it with a nil-safe
// select in cmd/qjoind.
func (n *Node) DrainRequested() <-chan struct{} { return n.drainCh }

// beginDrain flips the node to draining exactly once and announces the
// departure to every peer (best-effort, in parallel) so they stop routing
// new work here immediately instead of waiting out a failed probe.
func (n *Node) beginDrain() {
	n.drainOnce.Do(func() {
		n.draining.Store(true)
		close(n.drainCh)
		body, _ := json.Marshal(map[string]string{"node": n.cfg.Self})
		for _, p := range n.cfg.Peers {
			if p == n.cfg.Self {
				continue
			}
			go func(peer string) {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				defer cancel()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/cluster/leave", bytes.NewReader(body))
				if err != nil {
					return
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := n.client.Do(req)
				if err != nil {
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}(p)
		}
	})
}

// Drain runs the graceful-drain protocol: mark the node draining (peers
// are told to stop routing new work here), then wait until every
// in-flight request — including coalesced solves with attached waiters —
// has finished, or ctx expires. After Drain returns nil the listener can
// close without cutting off any client.
func (n *Node) Drain(ctx context.Context) error {
	n.beginDrain()
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		if n.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: drain timed out with %d requests in flight: %w", n.inflight.Load(), ctx.Err())
		case <-t.C:
		}
	}
}

// routable reports whether new work may be routed to node: a draining
// self sheds its keys to their other replicas; peers answer from gossip.
func (n *Node) routable(node string) bool {
	if node == n.cfg.Self {
		return !n.draining.Load()
	}
	return n.gossip.Healthy(node)
}

// ServeHTTP implements http.Handler.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/optimize" && r.Method == http.MethodPost:
		n.inflight.Add(1)
		defer n.inflight.Add(-1)
		if r.Header.Get(service.HeaderWarmOnly) != "" {
			// A replica warm push from a primary owner: populate the
			// encoding cache directly, no routing (pushes never cascade).
			n.counters.warmsReceived.Add(1)
			w.Header().Set(HeaderServedBy, n.cfg.Self)
			n.inner.ServeHTTP(w, r)
			return
		}
		n.handleOptimize(w, r)
	case r.URL.Path == "/v1/optimize/batch" && r.Method == http.MethodPost:
		n.inflight.Add(1)
		defer n.inflight.Add(-1)
		n.handleBatch(w, r)
	case r.URL.Path == "/v1/cluster" && r.Method == http.MethodGet:
		n.handleStatus(w, r)
	case r.URL.Path == "/v1/cluster/leave" && r.Method == http.MethodPost:
		n.handleLeave(w, r)
	case r.URL.Path == "/v1/drain" && r.Method == http.MethodPost:
		n.handleDrain(w, r)
	case r.URL.Path == "/healthz" && r.Method == http.MethodGet && n.draining.Load():
		n.handleDrainingHealthz(w, r)
	case r.URL.Path == "/metrics" && r.Method == http.MethodGet:
		n.handleMetrics(w, r)
	default:
		n.inner.ServeHTTP(w, r)
	}
}

func (n *Node) handleOptimize(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxOptimizeBody))
	if err != nil {
		writeNodeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))

	// Parse just enough to route. Anything the inner handler would reject
	// (strict fields, bad query) is passed through untouched so the error
	// contract is byte-identical with and without clustering.
	var opt service.OptimizeRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&opt); err != nil || len(opt.Query) == 0 {
		n.serveLocal(w, r, "", "", nil)
		return
	}
	q, err := join.ReadCatalog(bytes.NewReader(opt.Query))
	if err != nil {
		n.serveLocal(w, r, "", "", nil)
		return
	}
	if qp := r.URL.Query().Get("backend"); qp != "" {
		opt.Backend = qp
	}
	key, _ := service.Fingerprint(q, service.EncodeSpec{
		Thresholds:   opt.Thresholds,
		Omega:        opt.Omega,
		LogObjective: opt.LogObjective,
	})

	// Mint the request ID here (adopting an inbound one) so the routing
	// span, the forwarded request, and the inner service trace all share
	// it — one ID resolves the whole cross-node story.
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = obs.NewRequestID()
		r.Header.Set("X-Request-ID", id)
	}
	ctx := obs.WithRequestID(r.Context(), id)
	ctx, span := n.cfg.Tracer.Start(ctx, "cluster.route")
	defer span.End(nil)
	span.SetAttr("cache_key", key)
	r = r.WithContext(ctx)

	hops := forwardHops(r)
	targets := n.ring.ReplicasHealthy(key, n.cfg.Replicas, n.routable)
	span.SetAttr("owner", targets[0])
	if targets[0] != n.cfg.Self {
		if hops >= n.cfg.MaxHops {
			// Ring disagreement (version skew, all-unhealthy fallback):
			// solving locally is always correct, just cache-colder.
			n.counters.forcedLocal.Add(1)
			span.SetAttr("forced_local", true)
		} else if n.hedgedForward(w, r, withoutNode(targets, n.cfg.Self), body, hops, span) {
			n.counters.forwards.Add(1)
			span.SetAttr("forwarded", true)
			return
		} else {
			span.SetAttr("forward_failed", true)
		}
	}
	n.serveLocal(w, r, coalesceKey(key, &opt), key, body)
}

// withoutNode returns targets minus node, preserving order.
func withoutNode(targets []string, node string) []string {
	out := make([]string, 0, len(targets))
	for _, t := range targets {
		if t != node {
			out = append(out, t)
		}
	}
	return out
}

// coalesceKey identifies solves that would be bit-identical: same
// canonical instance and spec (the fingerprint), same backend, and same
// solver parameters. Requests that differ only by relation labelling
// coalesce; requests with different seeds or budgets never do.
func coalesceKey(fingerprint string, opt *service.OptimizeRequest) string {
	return fmt.Sprintf("%s|%s|%d|%d|%d|%s|%s|%d",
		fingerprint, opt.Backend, opt.Reads, opt.Seed, opt.TimeoutMs,
		opt.Strategy, strings.Join(opt.Portfolio, ","), opt.HedgeMs)
}

// forwardHops reads the hop counter (absent or malformed reads as 0).
func forwardHops(r *http.Request) int {
	h, err := strconv.Atoi(r.Header.Get(HeaderForwardHops))
	if err != nil || h < 0 {
		return 0
	}
	return h
}

// fwdReply is one forward attempt's outcome in the hedge race.
type fwdReply struct {
	resp   *http.Response
	peer   string
	hedged bool
	err    error
}

// hedgedForward races the request across the key's remote replicas:
// the primary is tried first, the next replica joins after HedgeAfter
// (or immediately when an attempt dies at the transport — the
// KindPeerUnreachable case), and the first HTTP response wins; losers
// are cancelled through the shared context. Any HTTP response counts as
// a win — the replica's 4xx/5xx is the caller's 4xx/5xx, copied verbatim
// (including Retry-After). It returns false only when every attempt
// failed at the transport, in which case nothing has been written and
// the caller falls back to a local solve.
func (n *Node) hedgedForward(w http.ResponseWriter, r *http.Request, targets []string, body []byte, hops int, span *obs.Span) bool {
	if len(targets) == 0 {
		return false
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()

	replies := make(chan fwdReply, len(targets))
	launched, received := 0, 0
	launch := func(hedged bool) {
		target := targets[launched]
		launched++
		go func() {
			resp, err := n.doForward(ctx, r, target, body, hops)
			replies <- fwdReply{resp: resp, peer: target, hedged: hedged, err: err}
		}()
	}
	launch(false)

	var hedgeTimer *time.Timer
	var hedgeC <-chan time.Time
	if n.cfg.HedgeAfter > 0 && len(targets) > 1 {
		hedgeTimer = time.NewTimer(n.cfg.HedgeAfter)
		defer hedgeTimer.Stop()
		hedgeC = hedgeTimer.C
	}

	for received < launched {
		select {
		case <-hedgeC:
			if launched < len(targets) {
				n.counters.hedges.Add(1)
				span.SetAttr("hedged", true)
				launch(true)
			}
			if launched < len(targets) {
				hedgeTimer.Reset(n.cfg.HedgeAfter)
			} else {
				hedgeC = nil
			}
		case rep := <-replies:
			received++
			if rep.err != nil {
				n.counters.forwardErrors.Add(1)
				n.gossip.ReportFailure(rep.peer)
				n.logForwardFailure(r, rep.peer, rep.err)
				// Peer unreachable: don't wait out the hedge timer, race
				// the next replica now.
				if launched < len(targets) {
					n.counters.hedges.Add(1)
					span.SetAttr("hedged", true)
					launch(true)
				}
				continue
			}
			n.gossip.ReportSuccess(rep.peer)
			if pending := launched - received; pending > 0 {
				// First valid response wins: cancel the losers (via the
				// deferred cancel) and close their bodies off-path.
				go func(pending int) {
					for i := 0; i < pending; i++ {
						if late := <-replies; late.resp != nil {
							late.resp.Body.Close()
						}
					}
				}(pending)
			}
			h := w.Header()
			for k, vs := range rep.resp.Header {
				h[k] = vs
			}
			if rep.hedged {
				n.counters.hedgeWins.Add(1)
				h.Set(HeaderHedged, rep.peer)
				span.SetAttr("hedge_win", rep.peer)
			}
			w.WriteHeader(rep.resp.StatusCode)
			_, _ = io.Copy(w, rep.resp.Body)
			rep.resp.Body.Close()
			return true
		}
	}
	return false
}

// doForward issues one forward attempt. The client's Content-Type and
// Accept-Encoding travel verbatim (setting Accept-Encoding explicitly
// also disables the Go client's transparent gzip, so a compressed
// upstream answer flows back with its Content-Encoding intact — proxy
// semantics, not client semantics).
func (n *Node) doForward(ctx context.Context, r *http.Request, target string, body []byte, hops int) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, target+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		ct = "application/json"
	}
	req.Header.Set("Content-Type", ct)
	if ae := r.Header.Get("Accept-Encoding"); ae != "" {
		req.Header.Set("Accept-Encoding", ae)
	}
	req.Header.Set("X-Request-ID", r.Header.Get("X-Request-ID"))
	req.Header.Set(HeaderForwardedNode, n.cfg.Self)
	req.Header.Set(HeaderForwardHops, strconv.Itoa(hops+1))
	return n.client.Do(req)
}

func (n *Node) logForwardFailure(r *http.Request, owner string, err error) {
	if n.cfg.Logger == nil {
		return
	}
	fault := &faults.Error{Kind: faults.KindPeerUnreachable, Backend: owner}
	n.cfg.Logger.WarnContext(r.Context(), "cluster forward failed",
		"peer", owner, "fault", fault.Kind.String(), "error", err)
}

// serveLocal answers the request on this node, coalescing with concurrent
// identical requests when key is non-empty. fingerprint and body feed the
// replica warm push and may be empty when the request is not routable.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, key, fingerprint string, body []byte) {
	n.counters.routedLocal.Add(1)
	w.Header().Set(HeaderServedBy, n.cfg.Self)
	if key == "" {
		n.inner.ServeHTTP(w, r)
		return
	}
	leader, err := n.flights.Do(key, w, r, n.inner)
	if err != nil {
		// Only this waiter's client went away; the shared solve continues
		// for everyone else. 499 is the de-facto client-closed status.
		writeNodeError(w, 499, "request cancelled while waiting for coalesced solve")
		return
	}
	if leader {
		n.counters.coalesceLeaders.Add(1)
		n.maybeWarmReplica(w.Header(), fingerprint, body)
	} else {
		n.counters.coalesceJoined.Add(1)
	}
}

// maybeWarmReplica pushes the request body to the fingerprint's next
// healthy replica after this node — as primary owner — encoded it fresh,
// so a later failover of this key lands on a warm cache. The push rides
// the X-Warm-Only header: the replica validates and encodes but never
// solves, and never pushes onward (no cascade). Fire-and-forget on
// purpose: warmth is an optimisation, not a contract.
func (n *Node) maybeWarmReplica(h http.Header, fingerprint string, body []byte) {
	if fingerprint == "" || len(body) == 0 || n.cfg.Replicas < 2 {
		return
	}
	// "0" means the inner service answered 200 with a fresh encoding; a
	// hit means the replicas were warmed when the entry first appeared.
	if h.Get(service.HeaderCacheHit) != "0" {
		return
	}
	reps := n.ring.Replicas(fingerprint, n.cfg.Replicas)
	if len(reps) < 2 || reps[0] != n.cfg.Self {
		return
	}
	for _, rep := range reps[1:] {
		if rep == n.cfg.Self || !n.gossip.Healthy(rep) {
			continue
		}
		go n.warmPush(rep, append([]byte(nil), body...))
		return
	}
}

func (n *Node) warmPush(peer string, body []byte) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/optimize", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.HeaderWarmOnly, "1")
	resp, err := n.client.Do(req)
	if err != nil {
		n.gossip.ReportFailure(peer)
		return
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode < http.StatusMultipleChoices {
		n.counters.warmPushes.Add(1)
	}
}

func (n *Node) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err != nil {
		writeNodeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))

	var env service.BatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil || len(env.Requests) == 0 {
		// Malformed or empty: pass through for the inner handler's 400.
		n.serveLocal(w, r, "", "", nil)
		return
	}
	hops := forwardHops(r)
	if hops >= n.cfg.MaxHops || len(n.ring.Nodes()) == 1 {
		n.serveLocal(w, r, "", "", nil)
		return
	}

	// Partition items by ring owner. Items the router cannot fingerprint
	// (empty or invalid query) stay local; the inner handler reports their
	// per-item errors.
	groups := make(map[string][]int)
	order := make([]string, 0, 4)
	for i := range env.Requests {
		owner := n.cfg.Self
		if len(env.Requests[i].Query) > 0 {
			if q, err := join.ReadCatalog(bytes.NewReader(env.Requests[i].Query)); err == nil {
				key, _ := service.Fingerprint(q, service.EncodeSpec{
					Thresholds:   env.Requests[i].Thresholds,
					Omega:        env.Requests[i].Omega,
					LogObjective: env.Requests[i].LogObjective,
				})
				owner = n.ring.OwnerHealthy(key, n.routable)
			}
		}
		if _, ok := groups[owner]; !ok {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], i)
	}
	if len(groups) == 1 && groups[n.cfg.Self] != nil {
		n.serveLocal(w, r, "", "", nil)
		return
	}

	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = obs.NewRequestID()
		r.Header.Set("X-Request-ID", id)
	}
	ctx := obs.WithRequestID(r.Context(), id)
	ctx, span := n.cfg.Tracer.Start(ctx, "cluster.batch_split")
	defer span.End(nil)
	span.SetAttr("items", len(env.Requests))
	span.SetAttr("owners", len(groups))
	r = r.WithContext(ctx)

	n.counters.batchSplits.Add(1)
	start := time.Now()
	results := make([]service.BatchItemResult, len(env.Requests))
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		unique int
	)
	for _, owner := range order {
		idxs := groups[owner]
		sub := service.BatchRequest{TimeoutMs: env.TimeoutMs, Requests: make([]service.OptimizeRequest, len(idxs))}
		for j, i := range idxs {
			sub.Requests[j] = env.Requests[i]
		}
		wg.Add(1)
		go func(owner string, idxs []int, sub service.BatchRequest) {
			defer wg.Done()
			resp := n.solveSubBatch(r, owner, &sub, hops)
			mu.Lock()
			defer mu.Unlock()
			unique += resp.Unique
			for j, i := range idxs {
				if j < len(resp.Results) {
					results[i] = resp.Results[j]
				}
			}
		}(owner, idxs, sub)
	}
	wg.Wait()

	// Mirror the inner handler's envelope contract: when every item was
	// rejected by overload/shutdown, surface it as the envelope status.
	allRejected := len(results) > 0
	for i := range results {
		if results[i].Response != nil || results[i].Status != http.StatusServiceUnavailable {
			allRejected = false
			break
		}
	}
	if allRejected {
		w.Header().Set("Retry-After", "1")
		writeNodeError(w, http.StatusServiceUnavailable, results[0].Error)
		return
	}
	w.Header().Set(HeaderServedBy, n.cfg.Self)
	writeNodeJSON(w, http.StatusOK, service.BatchResponse{
		Results:   results,
		Items:     len(env.Requests),
		Unique:    unique,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// solveSubBatch runs one owner's share of a split envelope: forwarded to
// the owner when remote (falling back to a local solve on any failure),
// solved through the inner handler when local.
func (n *Node) solveSubBatch(r *http.Request, owner string, sub *service.BatchRequest, hops int) service.BatchResponse {
	raw, err := json.Marshal(sub)
	if err != nil {
		return subBatchFailure(len(sub.Requests), http.StatusInternalServerError, err.Error())
	}
	if owner != n.cfg.Self {
		if resp, ok := n.forwardSubBatch(r, owner, raw); ok {
			n.counters.batchForwards.Add(1)
			return resp
		}
		n.counters.batchFallbacks.Add(1)
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "/v1/optimize/batch", bytes.NewReader(raw))
	if err != nil {
		return subBatchFailure(len(sub.Requests), http.StatusInternalServerError, err.Error())
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", r.Header.Get("X-Request-ID"))
	rec := newRecorder()
	n.inner.ServeHTTP(rec, req)
	var out service.BatchResponse
	if err := json.Unmarshal(rec.body.Bytes(), &out); err != nil || rec.status != http.StatusOK {
		msg := errorMessage(rec.body.Bytes())
		return subBatchFailure(len(sub.Requests), rec.status, msg)
	}
	return out
}

// forwardSubBatch relays a sub-envelope to its owner; ok=false means the
// caller should solve it locally instead.
func (n *Node) forwardSubBatch(r *http.Request, owner string, raw []byte) (service.BatchResponse, bool) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+"/v1/optimize/batch", bytes.NewReader(raw))
	if err != nil {
		return service.BatchResponse{}, false
	}
	req.Header.Set("Content-Type", "application/json")
	if ae := r.Header.Get("Accept-Encoding"); ae != "" {
		req.Header.Set("Accept-Encoding", ae)
	}
	req.Header.Set("X-Request-ID", r.Header.Get("X-Request-ID"))
	req.Header.Set(HeaderForwardedNode, n.cfg.Self)
	req.Header.Set(HeaderForwardHops, strconv.Itoa(forwardHops(r)+1))
	resp, err := n.client.Do(req)
	if err != nil {
		n.gossip.ReportFailure(owner)
		n.logForwardFailure(r, owner, err)
		return service.BatchResponse{}, false
	}
	defer resp.Body.Close()
	n.gossip.ReportSuccess(owner)
	if resp.StatusCode != http.StatusOK {
		// The owner answered but refused the envelope (e.g. shedding
		// load); our local pool may still have room.
		_, _ = io.Copy(io.Discard, resp.Body)
		return service.BatchResponse{}, false
	}
	var out service.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return service.BatchResponse{}, false
	}
	return out, true
}

// subBatchFailure marks every item of a sub-envelope failed with the same
// status and message.
func subBatchFailure(items, status int, msg string) service.BatchResponse {
	if status == 0 {
		status = http.StatusInternalServerError
	}
	out := service.BatchResponse{Results: make([]service.BatchItemResult, items), Items: items}
	for i := range out.Results {
		out.Results[i] = service.BatchItemResult{Error: msg, Status: status}
	}
	return out
}

// errorMessage extracts {"error": ...} from an inner error body, falling
// back to the raw text.
func errorMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

func (n *Node) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeNodeJSON(w, http.StatusOK, StatusResponse{
		Self:         n.cfg.Self,
		Nodes:        n.ring.Nodes(),
		VirtualNodes: n.vnodes,
		MaxHops:      n.cfg.MaxHops,
		Replicas:     n.cfg.Replicas,
		Draining:     n.draining.Load(),
		Peers:        n.gossip.Snapshot(),
		Counters:     n.counters.snapshot(),
	})
}

// handleLeave records a peer's departure announcement: the named node is
// immediately unroutable, without waiting for a failed probe.
func (n *Node) handleLeave(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Node string `json:"node"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&body); err != nil || body.Node == "" {
		writeNodeError(w, http.StatusBadRequest, `leave body must be {"node": <base-url>}`)
		return
	}
	n.gossip.MarkLeft(body.Node)
	writeNodeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleDrain starts the graceful drain (idempotent). The caller is
// responsible for the rest of the protocol — cmd/qjoind watches
// DrainRequested and runs Drain before closing the listener.
func (n *Node) handleDrain(w http.ResponseWriter, _ *http.Request) {
	n.beginDrain()
	writeNodeJSON(w, http.StatusAccepted, map[string]any{
		"status":   "draining",
		"inflight": n.inflight.Load(),
	})
}

// handleDrainingHealthz serves the inner health body with the status
// patched to "draining": still 200 (the node is alive and finishing its
// work), but peers' gossip reads the status and stops routing here.
func (n *Node) handleDrainingHealthz(w http.ResponseWriter, r *http.Request) {
	rec := newRecorder()
	n.inner.ServeHTTP(rec, r)
	var body map[string]any
	if rec.status == http.StatusOK && json.Unmarshal(rec.body.Bytes(), &body) == nil {
		body["status"] = "draining"
		writeNodeJSON(w, http.StatusOK, body)
		return
	}
	h := w.Header()
	for k, vs := range rec.header {
		h[k] = vs
	}
	w.WriteHeader(rec.status)
	_, _ = w.Write(rec.body.Bytes())
}

// handleMetrics serves the inner Prometheus exposition and appends the
// qjoind_cluster_* families.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rec := newRecorder()
	n.inner.ServeHTTP(rec, r)
	h := w.Header()
	for k, vs := range rec.header {
		h[k] = vs
	}
	w.WriteHeader(rec.status)
	_, _ = w.Write(rec.body.Bytes())
	if rec.status != http.StatusOK {
		return
	}
	c := n.counters.snapshot()
	p := obs.NewPromWriter(w)
	counter := func(name, help string, v int64) {
		p.Family(name, help, "counter")
		p.Sample(name, nil, float64(v))
	}
	counter("qjoind_cluster_routed_local_total", "Optimize requests served by this node.", c.RoutedLocal)
	counter("qjoind_cluster_forwards_total", "Optimize requests forwarded to a replica.", c.Forwards)
	counter("qjoind_cluster_forward_errors_total", "Forward attempts that failed at the transport.", c.ForwardErrors)
	counter("qjoind_cluster_forced_local_total", "Requests served locally because the hop limit was reached.", c.ForcedLocal)
	counter("qjoind_cluster_hedges_total", "Extra forward attempts launched beyond the first.", c.Hedges)
	counter("qjoind_cluster_hedge_wins_total", "Responses won by a hedged (non-first) attempt.", c.HedgeWins)
	counter("qjoind_cluster_warm_pushes_total", "Encodings pushed to a replica after a primary cache miss.", c.WarmPushes)
	counter("qjoind_cluster_warms_received_total", "Warm-only requests accepted from a primary owner.", c.WarmsReceived)
	counter("qjoind_cluster_coalesce_leaders_total", "Local solves that led a singleflight.", c.CoalesceLeaders)
	counter("qjoind_cluster_coalesce_joined_total", "Requests answered from a coalesced concurrent solve.", c.CoalesceJoined)
	counter("qjoind_cluster_batch_splits_total", "Batch envelopes split across ring owners.", c.BatchSplits)
	counter("qjoind_cluster_batch_forwards_total", "Sub-batches forwarded to peer nodes.", c.BatchForwards)
	counter("qjoind_cluster_batch_fallbacks_total", "Sub-batches solved locally after a failed forward.", c.BatchFallbacks)
	p.Family("qjoind_cluster_draining", "Whether this node is draining (1 = draining).", "gauge")
	drainVal := 0.0
	if n.draining.Load() {
		drainVal = 1.0
	}
	p.Sample("qjoind_cluster_draining", nil, drainVal)
	peers := n.gossip.Snapshot()
	p.Family("qjoind_cluster_peer_up", "Peer routability as seen by this node (1 = healthy).", "gauge")
	for _, peer := range peers {
		up := 0.0
		if peer.Healthy {
			up = 1.0
		}
		p.Sample("qjoind_cluster_peer_up", map[string]string{"peer": peer.Node}, up)
	}
	p.Family("qjoind_cluster_peer_suspicion", "Flap-damped suspicion score per peer (failures add 1, successes decay).", "gauge")
	for _, peer := range peers {
		p.Sample("qjoind_cluster_peer_suspicion", map[string]string{"peer": peer.Node}, peer.Suspicion)
	}
}

func writeNodeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeNodeError(w http.ResponseWriter, status int, msg string) {
	writeNodeJSON(w, status, map[string]string{"error": msg})
}
