package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"quantumjoin/internal/faults"
	"quantumjoin/internal/join"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// Cluster routing headers.
const (
	// HeaderForwardedNode names the node that forwarded the request.
	HeaderForwardedNode = "X-Forwarded-Node"
	// HeaderForwardHops counts how many times the request has been
	// forwarded; at or beyond NodeConfig.MaxHops the receiver must serve
	// locally, which bounds any routing loop a ring disagreement could
	// otherwise create.
	HeaderForwardHops = "X-Forward-Hops"
	// HeaderServedBy names the node that actually solved the request.
	HeaderServedBy = "X-Served-By"
	// HeaderCoalesced marks a response that was copied from a concurrent
	// identical request's solve rather than solved separately.
	HeaderCoalesced = "X-Coalesced"
)

const (
	maxOptimizeBody = 1 << 20
	maxBatchBody    = 1 << 24
)

// NodeConfig configures one cluster member.
type NodeConfig struct {
	// Self is this node's base URL as it appears in Peers (required).
	Self string
	// Peers is the static list of all cluster members' base URLs,
	// including Self (required, and identical on every node).
	Peers []string
	// VirtualNodes per peer on the ring (0 selects DefaultVirtualNodes).
	VirtualNodes int
	// MaxHops bounds forwarding: a request with X-Forward-Hops >= MaxHops
	// is served locally (0 selects 1 — at most one forward, which is all a
	// consistent ring ever needs).
	MaxHops int
	// Gossip tunes peer health polling.
	Gossip GossipConfig
	// Client issues forwards (default: a fresh client; the request's own
	// context bounds each forward).
	Client *http.Client
	// Tracer, when set, records a cluster.route root span per routed
	// request; pass the same tracer as the wrapped service so the
	// service's optimize span nests inside it.
	Tracer *obs.Tracer
	// Logger, when set, receives forward-failure warnings.
	Logger *slog.Logger
}

// Counters is a point-in-time snapshot of a node's routing counters.
type Counters struct {
	// RoutedLocal counts optimize requests served by this node (as owner,
	// by hop limit, or by peer-failure fallback).
	RoutedLocal int64 `json:"routed_local"`
	// Forwards counts optimize requests forwarded to their owner.
	Forwards int64 `json:"forwards"`
	// ForwardErrors counts forwards that failed at the transport and fell
	// back to a local solve.
	ForwardErrors int64 `json:"forward_errors"`
	// ForcedLocal counts requests served locally because the hop limit
	// was reached even though another node owned the key.
	ForcedLocal int64 `json:"forced_local"`
	// CoalesceLeaders counts local solves that led a singleflight.
	CoalesceLeaders int64 `json:"coalesce_leaders"`
	// CoalesceJoined counts requests answered from a concurrent identical
	// request's solve — each is one solve the fleet did not repeat.
	CoalesceJoined int64 `json:"coalesce_joined"`
	// BatchSplits counts batch envelopes split across owners.
	BatchSplits int64 `json:"batch_splits"`
	// BatchForwards counts sub-batches forwarded to peers.
	BatchForwards int64 `json:"batch_forwards"`
	// BatchFallbacks counts sub-batches solved locally after their
	// owner's forward failed.
	BatchFallbacks int64 `json:"batch_fallbacks"`
}

type nodeCounters struct {
	routedLocal     atomic.Int64
	forwards        atomic.Int64
	forwardErrors   atomic.Int64
	forcedLocal     atomic.Int64
	coalesceLeaders atomic.Int64
	coalesceJoined  atomic.Int64
	batchSplits     atomic.Int64
	batchForwards   atomic.Int64
	batchFallbacks  atomic.Int64
}

func (c *nodeCounters) snapshot() Counters {
	return Counters{
		RoutedLocal:     c.routedLocal.Load(),
		Forwards:        c.forwards.Load(),
		ForwardErrors:   c.forwardErrors.Load(),
		ForcedLocal:     c.forcedLocal.Load(),
		CoalesceLeaders: c.coalesceLeaders.Load(),
		CoalesceJoined:  c.coalesceJoined.Load(),
		BatchSplits:     c.batchSplits.Load(),
		BatchForwards:   c.batchForwards.Load(),
		BatchFallbacks:  c.batchFallbacks.Load(),
	}
}

// StatusResponse is the GET /v1/cluster body.
type StatusResponse struct {
	Self         string       `json:"self"`
	Nodes        []string     `json:"nodes"`
	VirtualNodes int          `json:"virtual_nodes"`
	MaxHops      int          `json:"max_hops"`
	Peers        []PeerHealth `json:"peers"`
	Counters     Counters     `json:"counters"`
}

// Node is the cluster HTTP layer wrapped around one qjoind handler. It
// owns the routing decision for POST /v1/optimize (forward to the ring
// owner or solve locally under singleflight coalescing), splits POST
// /v1/optimize/batch envelopes by owner, serves GET /v1/cluster, and
// appends cluster counter families to GET /metrics. Every other route
// passes straight through to the inner handler.
type Node struct {
	cfg      NodeConfig
	inner    http.Handler
	ring     *Ring
	gossip   *Gossip
	flights  *Group
	client   *http.Client
	vnodes   int
	counters nodeCounters
}

// NewNode wraps inner (a service handler from service.NewHandler) with
// cluster routing. Call Start to begin peer health polling and Stop on
// shutdown.
func NewNode(inner http.Handler, cfg NodeConfig) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: NodeConfig.Self is required")
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list", cfg.Self)
	}
	vnodes := cfg.VirtualNodes
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	ring, err := NewRing(cfg.Peers, vnodes)
	if err != nil {
		return nil, err
	}
	if cfg.MaxHops <= 0 {
		cfg.MaxHops = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Node{
		cfg:     cfg,
		inner:   inner,
		ring:    ring,
		gossip:  NewGossip(cfg.Self, cfg.Peers, cfg.Gossip),
		flights: NewGroup(),
		client:  client,
		vnodes:  vnodes,
	}, nil
}

// Start launches peer health polling.
func (n *Node) Start() { n.gossip.Start() }

// Stop terminates peer health polling.
func (n *Node) Stop() { n.gossip.Stop() }

// Ring exposes the node's consistent-hash ring (for tooling and tests).
func (n *Node) Ring() *Ring { return n.ring }

// Counters returns a snapshot of the routing counters.
func (n *Node) Counters() Counters { return n.counters.snapshot() }

// ServeHTTP implements http.Handler.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/optimize" && r.Method == http.MethodPost:
		n.handleOptimize(w, r)
	case r.URL.Path == "/v1/optimize/batch" && r.Method == http.MethodPost:
		n.handleBatch(w, r)
	case r.URL.Path == "/v1/cluster" && r.Method == http.MethodGet:
		n.handleStatus(w, r)
	case r.URL.Path == "/metrics" && r.Method == http.MethodGet:
		n.handleMetrics(w, r)
	default:
		n.inner.ServeHTTP(w, r)
	}
}

func (n *Node) handleOptimize(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxOptimizeBody))
	if err != nil {
		writeNodeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))

	// Parse just enough to route. Anything the inner handler would reject
	// (strict fields, bad query) is passed through untouched so the error
	// contract is byte-identical with and without clustering.
	var opt service.OptimizeRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&opt); err != nil || len(opt.Query) == 0 {
		n.serveLocal(w, r, "")
		return
	}
	q, err := join.ReadCatalog(bytes.NewReader(opt.Query))
	if err != nil {
		n.serveLocal(w, r, "")
		return
	}
	if qp := r.URL.Query().Get("backend"); qp != "" {
		opt.Backend = qp
	}
	key, _ := service.Fingerprint(q, service.EncodeSpec{
		Thresholds:   opt.Thresholds,
		Omega:        opt.Omega,
		LogObjective: opt.LogObjective,
	})

	// Mint the request ID here (adopting an inbound one) so the routing
	// span, the forwarded request, and the inner service trace all share
	// it — one ID resolves the whole cross-node story.
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = obs.NewRequestID()
		r.Header.Set("X-Request-ID", id)
	}
	ctx := obs.WithRequestID(r.Context(), id)
	ctx, span := n.cfg.Tracer.Start(ctx, "cluster.route")
	defer span.End(nil)
	span.SetAttr("cache_key", key)
	r = r.WithContext(ctx)

	hops := forwardHops(r)
	owner := n.ring.OwnerHealthy(key, n.gossip.Healthy)
	span.SetAttr("owner", owner)
	if owner != n.cfg.Self {
		if hops >= n.cfg.MaxHops {
			// Ring disagreement (version skew, all-unhealthy fallback):
			// solving locally is always correct, just cache-colder.
			n.counters.forcedLocal.Add(1)
			span.SetAttr("forced_local", true)
		} else if n.forward(w, r, owner, body, hops) {
			n.counters.forwards.Add(1)
			span.SetAttr("forwarded", true)
			return
		} else {
			n.counters.forwardErrors.Add(1)
			span.SetAttr("forward_failed", true)
		}
	}
	n.serveLocal(w, r, coalesceKey(key, &opt))
}

// coalesceKey identifies solves that would be bit-identical: same
// canonical instance and spec (the fingerprint), same backend, and same
// solver parameters. Requests that differ only by relation labelling
// coalesce; requests with different seeds or budgets never do.
func coalesceKey(fingerprint string, opt *service.OptimizeRequest) string {
	return fmt.Sprintf("%s|%s|%d|%d|%d|%s|%s|%d",
		fingerprint, opt.Backend, opt.Reads, opt.Seed, opt.TimeoutMs,
		opt.Strategy, strings.Join(opt.Portfolio, ","), opt.HedgeMs)
}

// forwardHops reads the hop counter (absent or malformed reads as 0).
func forwardHops(r *http.Request) int {
	h, err := strconv.Atoi(r.Header.Get(HeaderForwardHops))
	if err != nil || h < 0 {
		return 0
	}
	return h
}

// forward relays the request to owner and copies the answer back verbatim
// (whatever its status — the owner's 4xx/5xx is the caller's 4xx/5xx).
// It returns false on transport failure, in which case nothing has been
// written and the caller falls back to a local solve.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte, hops int) bool {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, owner+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", r.Header.Get("X-Request-ID"))
	req.Header.Set(HeaderForwardedNode, n.cfg.Self)
	req.Header.Set(HeaderForwardHops, strconv.Itoa(hops+1))
	resp, err := n.client.Do(req)
	if err != nil {
		n.gossip.ReportFailure(owner)
		n.logForwardFailure(r, owner, err)
		return false
	}
	defer resp.Body.Close()
	n.gossip.ReportSuccess(owner)
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

func (n *Node) logForwardFailure(r *http.Request, owner string, err error) {
	if n.cfg.Logger == nil {
		return
	}
	fault := &faults.Error{Kind: faults.KindPeerUnreachable, Backend: owner}
	n.cfg.Logger.WarnContext(r.Context(), "cluster forward failed, solving locally",
		"peer", owner, "fault", fault.Kind.String(), "error", err)
}

// serveLocal answers the request on this node, coalescing with concurrent
// identical requests when key is non-empty.
func (n *Node) serveLocal(w http.ResponseWriter, r *http.Request, key string) {
	n.counters.routedLocal.Add(1)
	w.Header().Set(HeaderServedBy, n.cfg.Self)
	if key == "" {
		n.inner.ServeHTTP(w, r)
		return
	}
	leader, err := n.flights.Do(key, w, r, n.inner)
	if err != nil {
		// Only this waiter's client went away; the shared solve continues
		// for everyone else. 499 is the de-facto client-closed status.
		writeNodeError(w, 499, "request cancelled while waiting for coalesced solve")
		return
	}
	if leader {
		n.counters.coalesceLeaders.Add(1)
	} else {
		n.counters.coalesceJoined.Add(1)
	}
}

func (n *Node) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBody))
	if err != nil {
		writeNodeError(w, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	r.Body = io.NopCloser(bytes.NewReader(body))

	var env service.BatchRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil || len(env.Requests) == 0 {
		// Malformed or empty: pass through for the inner handler's 400.
		n.serveLocal(w, r, "")
		return
	}
	hops := forwardHops(r)
	if hops >= n.cfg.MaxHops || len(n.ring.Nodes()) == 1 {
		n.serveLocal(w, r, "")
		return
	}

	// Partition items by ring owner. Items the router cannot fingerprint
	// (empty or invalid query) stay local; the inner handler reports their
	// per-item errors.
	groups := make(map[string][]int)
	order := make([]string, 0, 4)
	for i := range env.Requests {
		owner := n.cfg.Self
		if len(env.Requests[i].Query) > 0 {
			if q, err := join.ReadCatalog(bytes.NewReader(env.Requests[i].Query)); err == nil {
				key, _ := service.Fingerprint(q, service.EncodeSpec{
					Thresholds:   env.Requests[i].Thresholds,
					Omega:        env.Requests[i].Omega,
					LogObjective: env.Requests[i].LogObjective,
				})
				owner = n.ring.OwnerHealthy(key, n.gossip.Healthy)
			}
		}
		if _, ok := groups[owner]; !ok {
			order = append(order, owner)
		}
		groups[owner] = append(groups[owner], i)
	}
	if len(groups) == 1 && groups[n.cfg.Self] != nil {
		n.serveLocal(w, r, "")
		return
	}

	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = obs.NewRequestID()
		r.Header.Set("X-Request-ID", id)
	}
	ctx := obs.WithRequestID(r.Context(), id)
	ctx, span := n.cfg.Tracer.Start(ctx, "cluster.batch_split")
	defer span.End(nil)
	span.SetAttr("items", len(env.Requests))
	span.SetAttr("owners", len(groups))
	r = r.WithContext(ctx)

	n.counters.batchSplits.Add(1)
	start := time.Now()
	results := make([]service.BatchItemResult, len(env.Requests))
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		unique int
	)
	for _, owner := range order {
		idxs := groups[owner]
		sub := service.BatchRequest{TimeoutMs: env.TimeoutMs, Requests: make([]service.OptimizeRequest, len(idxs))}
		for j, i := range idxs {
			sub.Requests[j] = env.Requests[i]
		}
		wg.Add(1)
		go func(owner string, idxs []int, sub service.BatchRequest) {
			defer wg.Done()
			resp := n.solveSubBatch(r, owner, &sub, hops)
			mu.Lock()
			defer mu.Unlock()
			unique += resp.Unique
			for j, i := range idxs {
				if j < len(resp.Results) {
					results[i] = resp.Results[j]
				}
			}
		}(owner, idxs, sub)
	}
	wg.Wait()

	// Mirror the inner handler's envelope contract: when every item was
	// rejected by overload/shutdown, surface it as the envelope status.
	allRejected := len(results) > 0
	for i := range results {
		if results[i].Response != nil || results[i].Status != http.StatusServiceUnavailable {
			allRejected = false
			break
		}
	}
	if allRejected {
		w.Header().Set("Retry-After", "1")
		writeNodeError(w, http.StatusServiceUnavailable, results[0].Error)
		return
	}
	w.Header().Set(HeaderServedBy, n.cfg.Self)
	writeNodeJSON(w, http.StatusOK, service.BatchResponse{
		Results:   results,
		Items:     len(env.Requests),
		Unique:    unique,
		ElapsedMs: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// solveSubBatch runs one owner's share of a split envelope: forwarded to
// the owner when remote (falling back to a local solve on any failure),
// solved through the inner handler when local.
func (n *Node) solveSubBatch(r *http.Request, owner string, sub *service.BatchRequest, hops int) service.BatchResponse {
	raw, err := json.Marshal(sub)
	if err != nil {
		return subBatchFailure(len(sub.Requests), http.StatusInternalServerError, err.Error())
	}
	if owner != n.cfg.Self {
		if resp, ok := n.forwardSubBatch(r, owner, raw); ok {
			n.counters.batchForwards.Add(1)
			return resp
		}
		n.counters.batchFallbacks.Add(1)
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "/v1/optimize/batch", bytes.NewReader(raw))
	if err != nil {
		return subBatchFailure(len(sub.Requests), http.StatusInternalServerError, err.Error())
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", r.Header.Get("X-Request-ID"))
	rec := newRecorder()
	n.inner.ServeHTTP(rec, req)
	var out service.BatchResponse
	if err := json.Unmarshal(rec.body.Bytes(), &out); err != nil || rec.status != http.StatusOK {
		msg := errorMessage(rec.body.Bytes())
		return subBatchFailure(len(sub.Requests), rec.status, msg)
	}
	return out
}

// forwardSubBatch relays a sub-envelope to its owner; ok=false means the
// caller should solve it locally instead.
func (n *Node) forwardSubBatch(r *http.Request, owner string, raw []byte) (service.BatchResponse, bool) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+"/v1/optimize/batch", bytes.NewReader(raw))
	if err != nil {
		return service.BatchResponse{}, false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", r.Header.Get("X-Request-ID"))
	req.Header.Set(HeaderForwardedNode, n.cfg.Self)
	req.Header.Set(HeaderForwardHops, strconv.Itoa(forwardHops(r)+1))
	resp, err := n.client.Do(req)
	if err != nil {
		n.gossip.ReportFailure(owner)
		n.logForwardFailure(r, owner, err)
		return service.BatchResponse{}, false
	}
	defer resp.Body.Close()
	n.gossip.ReportSuccess(owner)
	if resp.StatusCode != http.StatusOK {
		// The owner answered but refused the envelope (e.g. shedding
		// load); our local pool may still have room.
		_, _ = io.Copy(io.Discard, resp.Body)
		return service.BatchResponse{}, false
	}
	var out service.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return service.BatchResponse{}, false
	}
	return out, true
}

// subBatchFailure marks every item of a sub-envelope failed with the same
// status and message.
func subBatchFailure(items, status int, msg string) service.BatchResponse {
	if status == 0 {
		status = http.StatusInternalServerError
	}
	out := service.BatchResponse{Results: make([]service.BatchItemResult, items), Items: items}
	for i := range out.Results {
		out.Results[i] = service.BatchItemResult{Error: msg, Status: status}
	}
	return out
}

// errorMessage extracts {"error": ...} from an inner error body, falling
// back to the raw text.
func errorMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

func (n *Node) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeNodeJSON(w, http.StatusOK, StatusResponse{
		Self:         n.cfg.Self,
		Nodes:        n.ring.Nodes(),
		VirtualNodes: n.vnodes,
		MaxHops:      n.cfg.MaxHops,
		Peers:        n.gossip.Snapshot(),
		Counters:     n.counters.snapshot(),
	})
}

// handleMetrics serves the inner Prometheus exposition and appends the
// qjoind_cluster_* families.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rec := newRecorder()
	n.inner.ServeHTTP(rec, r)
	h := w.Header()
	for k, vs := range rec.header {
		h[k] = vs
	}
	w.WriteHeader(rec.status)
	_, _ = w.Write(rec.body.Bytes())
	if rec.status != http.StatusOK {
		return
	}
	c := n.counters.snapshot()
	p := obs.NewPromWriter(w)
	counter := func(name, help string, v int64) {
		p.Family(name, help, "counter")
		p.Sample(name, nil, float64(v))
	}
	counter("qjoind_cluster_routed_local_total", "Optimize requests served by this node.", c.RoutedLocal)
	counter("qjoind_cluster_forwards_total", "Optimize requests forwarded to their ring owner.", c.Forwards)
	counter("qjoind_cluster_forward_errors_total", "Forwards that failed and fell back to a local solve.", c.ForwardErrors)
	counter("qjoind_cluster_forced_local_total", "Requests served locally because the hop limit was reached.", c.ForcedLocal)
	counter("qjoind_cluster_coalesce_leaders_total", "Local solves that led a singleflight.", c.CoalesceLeaders)
	counter("qjoind_cluster_coalesce_joined_total", "Requests answered from a coalesced concurrent solve.", c.CoalesceJoined)
	counter("qjoind_cluster_batch_splits_total", "Batch envelopes split across ring owners.", c.BatchSplits)
	counter("qjoind_cluster_batch_forwards_total", "Sub-batches forwarded to peer nodes.", c.BatchForwards)
	counter("qjoind_cluster_batch_fallbacks_total", "Sub-batches solved locally after a failed forward.", c.BatchFallbacks)
	p.Family("qjoind_cluster_peer_up", "Peer routability as seen by this node (1 = healthy).", "gauge")
	for _, peer := range n.gossip.Snapshot() {
		up := 0.0
		if peer.Healthy {
			up = 1.0
		}
		p.Sample("qjoind_cluster_peer_up", map[string]string{"peer": peer.Node}, up)
	}
}

func writeNodeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeNodeError(w http.ResponseWriter, status int, msg string) {
	writeNodeJSON(w, status, map[string]string{"error": msg})
}
