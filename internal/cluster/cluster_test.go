package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
	"quantumjoin/internal/service"
)

// testBackend is a fast deterministic backend; when block is set, solves
// park on it so tests can control exactly when the solve completes.
type testBackend struct {
	calls atomic.Int64
	block chan struct{}
}

func (b *testBackend) Name() string { return "test" }

func (b *testBackend) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	b.calls.Add(1)
	if b.block != nil {
		select {
		case <-b.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	res := classical.Greedy(enc.Query)
	return &core.Decoded{Valid: true, Order: res.Order, Cost: res.Cost}, nil
}

type testCluster struct {
	urls     []string
	nodes    []*Node
	servers  []*http.Server
	backends []*testBackend
}

// startCluster boots n qjoind nodes on loopback, each wrapped in a
// cluster Node over the same peer list. Gossip polling is not started;
// tests that need it call Start on a node themselves.
func startCluster(t *testing.T, n int, configure func(i int, nc *NodeConfig, b *testBackend)) *testCluster {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	tc := &testCluster{urls: urls}
	for i := range listeners {
		backend := &testBackend{}
		reg := service.NewRegistry()
		if err := reg.Register(backend); err != nil {
			t.Fatal(err)
		}
		svc := service.New(reg, service.Config{Workers: 4, DefaultBackend: "test"})
		nc := NodeConfig{
			Self:   urls[i],
			Peers:  urls,
			Gossip: GossipConfig{Interval: 50 * time.Millisecond, Timeout: time.Second, DownAfter: 1},
		}
		if configure != nil {
			configure(i, &nc, backend)
		}
		node, err := NewNode(service.NewHandler(svc), nc)
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: node}
		go func(l net.Listener) { _ = srv.Serve(l) }(listeners[i])
		tc.nodes = append(tc.nodes, node)
		tc.servers = append(tc.servers, srv)
		tc.backends = append(tc.backends, backend)
		t.Cleanup(func() {
			_ = srv.Close()
			svc.Close(context.Background())
		})
	}
	return tc
}

// catalogFor builds a 3-relation chain catalog whose fingerprint varies
// with card, plus the equivalent join.Query for ring lookups.
func catalogFor(card int) (string, *join.Query) {
	catalog := fmt.Sprintf(`{
		"relations": [
			{"name": "a", "cardinality": %d},
			{"name": "b", "cardinality": 500},
			{"name": "c", "cardinality": 2000}
		],
		"predicates": [
			{"left": "a", "right": "b", "selectivity": 0.05},
			{"left": "b", "right": "c", "selectivity": 0.01}
		]
	}`, card)
	q := &join.Query{
		Relations: []join.Relation{
			{Name: "a", Card: float64(card)},
			{Name: "b", Card: 500},
			{Name: "c", Card: 2000},
		},
		Predicates: []join.Predicate{
			{R1: 0, R2: 1, Sel: 0.05},
			{R1: 1, R2: 2, Sel: 0.01},
		},
	}
	return catalog, q
}

// catalogOwnedBy searches for a catalog whose routing key lands on owner.
func catalogOwnedBy(t *testing.T, r *Ring, owner string, from int) (string, int) {
	t.Helper()
	for card := from; card < from+5000; card++ {
		_, q := catalogFor(card)
		key, _ := service.Fingerprint(q, service.EncodeSpec{})
		if r.Owner(key) == owner {
			catalog, _ := catalogFor(card)
			return catalog, card
		}
	}
	t.Fatalf("no catalog found owned by %s", owner)
	return "", 0
}

func postJSON(t *testing.T, url string, body string, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestClusterForwardsToOwner(t *testing.T) {
	tc := startCluster(t, 3, nil)
	ring := tc.nodes[0].Ring()

	// A request owned by node 1 posted to node 0 must be answered by
	// node 1.
	catalog, _ := catalogOwnedBy(t, ring, tc.urls[1], 10)
	resp, raw := postJSON(t, tc.urls[0]+"/v1/optimize", `{"query": `+catalog+`}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(HeaderServedBy); got != tc.urls[1] {
		t.Errorf("served by %q, want owner %s", got, tc.urls[1])
	}
	var out service.OptimizeResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.CacheKey == "" || len(out.Order) != 3 {
		t.Errorf("forwarded response incomplete: %s", raw)
	}
	if c := tc.nodes[0].Counters(); c.Forwards != 1 || c.RoutedLocal != 0 {
		t.Errorf("sender counters = %+v, want exactly one forward", c)
	}
	if c := tc.nodes[1].Counters(); c.RoutedLocal != 1 {
		t.Errorf("owner counters = %+v, want one local serve", c)
	}

	// The same request posted directly to its owner stays local.
	resp, raw = postJSON(t, tc.urls[1]+"/v1/optimize", `{"query": `+catalog+`}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(HeaderServedBy); got != tc.urls[1] {
		t.Errorf("direct request served by %q, want %s", got, tc.urls[1])
	}
	if c := tc.nodes[1].Counters(); c.Forwards != 0 {
		t.Errorf("owner forwarded its own key: %+v", c)
	}
}

func TestClusterHopLimit(t *testing.T) {
	tc := startCluster(t, 3, nil)
	catalog, _ := catalogOwnedBy(t, tc.nodes[0].Ring(), tc.urls[1], 10)

	// A request that already travelled MaxHops is served where it lands,
	// owner or not — this is the loop bound.
	resp, raw := postJSON(t, tc.urls[0]+"/v1/optimize", `{"query": `+catalog+`}`,
		map[string]string{HeaderForwardHops: "1", HeaderForwardedNode: tc.urls[2]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(HeaderServedBy); got != tc.urls[0] {
		t.Errorf("hop-limited request served by %q, want local %s", got, tc.urls[0])
	}
	c := tc.nodes[0].Counters()
	if c.ForcedLocal != 1 || c.Forwards != 0 {
		t.Errorf("counters = %+v, want one forced-local serve and no forward", c)
	}
}

func TestClusterMalformedBodiesPassThrough(t *testing.T) {
	tc := startCluster(t, 2, nil)
	for _, body := range []string{`{`, `{"unknown_field": 1}`, `{"backend": "test"}`} {
		resp, raw := postJSON(t, tc.urls[0]+"/v1/optimize", body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d (%s), want 400 from the inner handler", body, resp.StatusCode, raw)
		}
		if got := resp.Header.Get(HeaderServedBy); got != tc.urls[0] {
			t.Errorf("body %q served by %q, want local passthrough", body, got)
		}
	}
}

func TestClusterBatchSplit(t *testing.T) {
	tc := startCluster(t, 3, nil)
	ring := tc.nodes[0].Ring()

	// Two items per owner plus one invalid item that must fail alone.
	var items []string
	from := 10
	for _, owner := range tc.urls {
		for j := 0; j < 2; j++ {
			catalog, card := catalogOwnedBy(t, ring, owner, from)
			from = card + 1
			items = append(items, `{"query": `+catalog+`}`)
		}
	}
	items = append(items, `{"backend": "test"}`) // no query
	body := `{"requests": [` + joinStrings(items, ",") + `]}`

	resp, raw := postJSON(t, tc.urls[0]+"/v1/optimize/batch", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(HeaderServedBy); got != tc.urls[0] {
		t.Errorf("batch served by %q, want the splitting node", got)
	}
	var out service.BatchResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Items != 7 || len(out.Results) != 7 {
		t.Fatalf("items=%d results=%d, want 7", out.Items, len(out.Results))
	}
	for i, res := range out.Results[:6] {
		if res.Response == nil || len(res.Response.Order) != 3 {
			t.Errorf("item %d failed: %+v", i, res)
		}
	}
	if bad := out.Results[6]; bad.Response != nil || bad.Status != http.StatusBadRequest {
		t.Errorf("invalid item = %+v, want a per-item 400", bad)
	}
	c := tc.nodes[0].Counters()
	if c.BatchSplits != 1 || c.BatchForwards != 2 || c.BatchFallbacks != 0 {
		t.Errorf("counters = %+v, want 1 split and 2 forwarded sub-batches", c)
	}
	// Each peer must have solved its own share.
	for i := 1; i < 3; i++ {
		if got := tc.backends[i].calls.Load(); got != 2 {
			t.Errorf("node %d solved %d instances, want its 2 owned items", i, got)
		}
	}
}

func joinStrings(items []string, sep string) string {
	var b bytes.Buffer
	for i, s := range items {
		if i > 0 {
			b.WriteString(sep)
		}
		b.WriteString(s)
	}
	return b.String()
}

func TestClusterPeerDownFallsBackLocally(t *testing.T) {
	tc := startCluster(t, 2, nil)
	catalog, _ := catalogOwnedBy(t, tc.nodes[0].Ring(), tc.urls[1], 10)

	// Kill the owner.
	_ = tc.servers[1].Close()

	// First request: the forward fails at the transport and the sender
	// solves locally.
	resp, raw := postJSON(t, tc.urls[0]+"/v1/optimize", `{"query": `+catalog+`}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(HeaderServedBy); got != tc.urls[0] {
		t.Errorf("served by %q, want local fallback on %s", got, tc.urls[0])
	}
	c := tc.nodes[0].Counters()
	if c.ForwardErrors != 1 || c.RoutedLocal != 1 {
		t.Fatalf("counters after dead forward = %+v", c)
	}

	// The failure marked the peer down (DownAfter=1), so the second
	// request reroutes on the ring without attempting the forward.
	resp, raw = postJSON(t, tc.urls[0]+"/v1/optimize", `{"query": `+catalog+`}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	c = tc.nodes[0].Counters()
	if c.ForwardErrors != 1 || c.RoutedLocal != 2 || c.Forwards != 0 {
		t.Errorf("counters after reroute = %+v, want no second forward attempt", c)
	}
	if tc.nodes[0].gossip.Healthy(tc.urls[1]) {
		t.Error("dead peer still reported healthy")
	}
}

func TestClusterCoalescingEndToEnd(t *testing.T) {
	const n = 8
	release := make(chan struct{})
	tc := startCluster(t, 1, func(i int, nc *NodeConfig, b *testBackend) {
		b.block = release
	})
	catalog, _ := catalogFor(42)
	body := `{"query": ` + catalog + `}`

	type result struct {
		status    int
		raw       []byte
		requestID string
		coalesced bool
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJSON(t, tc.urls[0]+"/v1/optimize", body, nil)
			results[i] = result{resp.StatusCode, raw, resp.Header.Get("X-Request-ID"), resp.Header.Get(HeaderCoalesced) != ""}
		}(i)
	}

	// Wait until the leader is parked in the backend and the other n-1
	// requests have joined its flight, then release the solve.
	g := tc.nodes[0].flights
	deadline := time.Now().Add(10 * time.Second)
	for {
		g.mu.Lock()
		var parked int32 = -1
		for _, f := range g.inflight {
			parked = f.waiters.Load()
		}
		flights := len(g.inflight)
		g.mu.Unlock()
		if flights == 1 && parked >= n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flights=%d waiters=%d, want 1 flight with %d waiters", flights, parked, n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := tc.backends[0].calls.Load(); got != 1 {
		t.Fatalf("backend solved %d times for %d identical concurrent requests, want 1", got, n)
	}
	coalesced := 0
	for i, res := range results {
		if res.status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, res.status, res.raw)
		}
		if !bytes.Equal(res.raw, results[0].raw) {
			t.Errorf("request %d body differs from the shared response", i)
		}
		if res.requestID != results[0].requestID {
			t.Errorf("request %d has request ID %q, want the shared trace %q", i, res.requestID, results[0].requestID)
		}
		if res.coalesced {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Errorf("%d responses marked coalesced, want %d", coalesced, n-1)
	}
	c := tc.nodes[0].Counters()
	if c.CoalesceLeaders != 1 || c.CoalesceJoined != n-1 {
		t.Errorf("counters = %+v, want 1 leader and %d joined", c, n-1)
	}
}

func TestClusterStatusAndMetrics(t *testing.T) {
	tc := startCluster(t, 3, nil)
	tc.nodes[0].Start()
	defer tc.nodes[0].Stop()

	// Gossip must converge on both peers being healthy.
	deadline := time.Now().Add(5 * time.Second)
	for {
		peers := tc.nodes[0].gossip.Snapshot()
		ok := len(peers) == 2
		for _, p := range peers {
			if !p.Healthy || p.Status != "ok" {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gossip never converged: %+v", peers)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(tc.urls[0] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Self != tc.urls[0] || len(status.Nodes) != 3 || len(status.Peers) != 2 {
		t.Errorf("cluster status = %+v", status)
	}

	mresp, err := http.Get(tc.urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	for _, family := range []string{
		"qjoind_cluster_forwards_total",
		"qjoind_cluster_coalesce_joined_total",
		"qjoind_cluster_peer_up",
		"qjoind_requests_total", // the inner exposition must survive the append
	} {
		if !bytes.Contains(raw, []byte(family)) {
			t.Errorf("/metrics missing %s", family)
		}
	}
}
