package cluster

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"sync/atomic"
)

// recorder is a minimal in-process http.ResponseWriter capturing status,
// headers, and body (net/http/httptest is not imported outside tests —
// it registers command-line flags as a side effect).
type recorder struct {
	status int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder {
	return &recorder{status: http.StatusOK, header: make(http.Header)}
}

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(status int)      { r.status = status }
func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// flight is one in-progress coalesced request: the leader fills status,
// header, and body, then closes done.
type flight struct {
	done chan struct{}
	// waiters counts arrivals that joined this flight (incremented under
	// the group mutex, so tests can deterministically wait for N waiters
	// to be parked before releasing the leader).
	waiters atomic.Int32
	status  int
	header  http.Header
	body    []byte
}

// Group coalesces concurrent identical HTTP requests: the first arrival
// for a key becomes the leader and runs the inner handler once; arrivals
// while the leader is in flight block and receive a verbatim copy of the
// leader's response. There is deliberately no reference counting or
// leader cancellation: the shared solve runs on a context detached from
// the leader's client (context.WithoutCancel), so one waiter — or even
// the leader — walking away never cancels work other waiters depend on.
// The service's own default timeout still bounds the solve.
type Group struct {
	mu       sync.Mutex
	inflight map[string]*flight
}

// NewGroup returns an empty singleflight group.
func NewGroup() *Group {
	return &Group{inflight: make(map[string]*flight)}
}

// Do serves r under the coalescing key: as leader it invokes inner and
// returns the recorded response with leader=true; as a waiter it blocks
// until the leader finishes (or r's context expires, which fails only
// this waiter) and returns the shared response with leader=false.
func (g *Group) Do(key string, w http.ResponseWriter, r *http.Request, inner http.Handler) (leader bool, err error) {
	g.mu.Lock()
	if f, ok := g.inflight[key]; ok {
		f.waiters.Add(1)
		g.mu.Unlock()
		select {
		case <-f.done:
			w.Header().Set(HeaderCoalesced, "1")
			copyResponse(w, f.status, f.header, f.body)
			return false, nil
		case <-r.Context().Done():
			return false, r.Context().Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.inflight[key] = f
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.inflight, key)
		g.mu.Unlock()
		close(f.done)
	}()

	// The leader's solve is detached from its own client connection: if
	// the leader disconnects mid-solve, the waiters still get an answer.
	rec := newRecorder()
	inner.ServeHTTP(rec, r.WithContext(context.WithoutCancel(r.Context())))
	f.status = rec.status
	f.header = rec.header
	f.body = rec.body.Bytes()

	copyResponse(w, f.status, f.header, f.body)
	return true, nil
}

func copyResponse(w http.ResponseWriter, status int, header http.Header, body []byte) {
	h := w.Header()
	for k, vs := range header {
		h[k] = vs
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}
