package topology

import (
	"math/rand"
	"testing"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph("t", 4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate ignored
	g.AddEdge(1, 2)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.MaxDegree() != 2 {
		t.Fatal("degree wrong")
	}
	es := g.Edges()
	if len(es) != 2 || es[0] != [2]int{0, 1} {
		t.Fatalf("Edges = %v", es)
	}
	if g.Connected() {
		t.Fatal("graph with isolated vertex reported connected")
	}
	g.AddEdge(2, 3)
	if !g.Connected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestGraphPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewGraph("x", 0) },
		func() { NewGraph("x", 2).AddEdge(0, 0) },
		func() { NewGraph("x", 2).AddEdge(0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			f()
		}()
	}
}

func TestBFSDistances(t *testing.T) {
	g := NewGraph("path", 4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	d := g.BFSDistances(0)
	for i, want := range []int{0, 1, 2, 3} {
		if d[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
	ap := g.AllPairsDistances()
	if ap[3][0] != 3 || ap[1][2] != 1 {
		t.Fatal("AllPairsDistances wrong")
	}
}

func TestFalcon27(t *testing.T) {
	g := Falcon27()
	if g.N() != 27 || g.NumEdges() != 28 {
		t.Fatalf("Falcon27: %d qubits, %d couplers; want 27/28", g.N(), g.NumEdges())
	}
	if g.MaxDegree() > 3 {
		t.Fatalf("heavy-hex degree %d > 3", g.MaxDegree())
	}
	if !g.Connected() {
		t.Fatal("Falcon27 disconnected")
	}
}

func TestEagle127(t *testing.T) {
	g := Eagle127()
	if g.N() != 127 {
		t.Fatalf("Eagle127 has %d qubits, want 127", g.N())
	}
	if g.NumEdges() != 144 {
		t.Fatalf("Eagle127 has %d couplers, want 144", g.NumEdges())
	}
	if g.MaxDegree() > 3 {
		t.Fatalf("heavy-hex degree %d > 3", g.MaxDegree())
	}
	if !g.Connected() {
		t.Fatal("Eagle127 disconnected")
	}
}

func TestExtendIBM(t *testing.T) {
	for _, target := range []int{127, 200, 500} {
		g := ExtendIBM(target)
		if g.N() < target {
			t.Fatalf("ExtendIBM(%d) gave %d qubits", target, g.N())
		}
		if g.MaxDegree() > 3 || !g.Connected() {
			t.Fatalf("ExtendIBM(%d) structure broken", target)
		}
	}
}

func TestAspenM(t *testing.T) {
	g := AspenM()
	if g.N() != 80 {
		t.Fatalf("AspenM has %d qubits, want 80", g.N())
	}
	// 10 octagons × 8 ring edges + (horizontal 2·(rows·(cols-1)=8)=16?) —
	// structural checks instead of exact constants:
	if g.MaxDegree() > 4 {
		t.Fatalf("Aspen degree %d > 4", g.MaxDegree())
	}
	if !g.Connected() {
		t.Fatal("AspenM disconnected")
	}
	// Every qubit participates in its octagon ring: degree >= 2.
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) < 2 {
			t.Fatalf("qubit %d degree %d < 2", v, g.Degree(v))
		}
	}
}

func TestExtendRigetti(t *testing.T) {
	g := ExtendRigetti(300)
	if g.N() < 300 || g.N()%8 != 0 {
		t.Fatalf("ExtendRigetti(300) gave %d qubits", g.N())
	}
	if !g.Connected() || g.MaxDegree() > 4 {
		t.Fatal("extended Aspen structure broken")
	}
}

func TestComplete(t *testing.T) {
	g := Complete("ionq", 11)
	if g.NumEdges() != 55 || g.MaxDegree() != 10 {
		t.Fatalf("K11: %d edges, max degree %d", g.NumEdges(), g.MaxDegree())
	}
}

func TestPegasusSmall(t *testing.T) {
	g, coords := Pegasus(4)
	if g.N() != len(coords) {
		t.Fatal("coordinate list length mismatch")
	}
	// dwave_networkx pegasus_graph(4): 264 nodes.
	if g.N() != 264 {
		t.Fatalf("P4 has %d qubits, want 264", g.N())
	}
	if g.MaxDegree() > 15 {
		t.Fatalf("Pegasus degree %d > 15", g.MaxDegree())
	}
	if !g.Connected() {
		t.Fatal("P4 disconnected")
	}
}

func TestPegasusAdvantageShape(t *testing.T) {
	if testing.Short() {
		t.Skip("P16 generation skipped in -short")
	}
	g := Advantage()
	if g.N() != 5640 {
		t.Fatalf("Advantage has %d qubits, want 5640", g.N())
	}
	if g.MaxDegree() != 15 {
		t.Fatalf("Advantage max degree %d, want 15", g.MaxDegree())
	}
	// Published coupler count for ideal P16 is 40484.
	if g.NumEdges() != 40484 {
		t.Fatalf("Advantage has %d couplers, want 40484", g.NumEdges())
	}
}

func TestDensify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := Falcon27()
	d0 := Densify(base, 0, rng)
	if d0.NumEdges() != base.NumEdges() {
		t.Fatal("density 0 changed the graph")
	}
	d1 := Densify(base, 1, rng)
	if d1.NumEdges() != 27*26/2 {
		t.Fatalf("density 1 gave %d edges, want complete %d", d1.NumEdges(), 27*26/2)
	}
	half := Densify(base, 0.5, rng)
	got := Density(base, half)
	if got < 0.45 || got > 0.55 {
		t.Fatalf("requested density 0.5, measured %v", got)
	}
	// Baseline edges must all be preserved.
	for _, e := range base.Edges() {
		if !half.HasEdge(e[0], e[1]) {
			t.Fatal("densify dropped a baseline edge")
		}
	}
}

func TestDensifyPrefersCloseQubits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// On a long path, a small density target must add only distance-2
	// chords before any longer ones.
	path := NewGraph("path", 20)
	for i := 0; i+1 < 20; i++ {
		path.AddEdge(i, i+1)
	}
	dist := path.AllPairsDistances()
	dense := Densify(path, 0.05, rng)
	for _, e := range dense.Edges() {
		if !path.HasEdge(e[0], e[1]) && dist[e[0]][e[1]] > 2 {
			t.Fatalf("added edge %v at distance %d before exhausting distance 2",
				e, dist[e[0]][e[1]])
		}
	}
}

func TestDensityOfCompleteBaseline(t *testing.T) {
	g := Complete("k", 5)
	if Density(g, g) != 0 {
		t.Fatal("complete baseline density should be 0")
	}
}

func TestCopyIndependent(t *testing.T) {
	g := Falcon27()
	c := g.Copy("copy")
	c.AddEdge(0, 26)
	if g.HasEdge(0, 26) {
		t.Fatal("Copy shares edge set")
	}
}
