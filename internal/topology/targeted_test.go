package topology

import (
	"math/rand"
	"testing"
)

func ringDemands(n int, stride int) []Demand {
	var ds []Demand
	for i := 0; i < n; i++ {
		ds = append(ds, Demand{A: i, B: (i + stride) % n, Weight: 1})
	}
	return ds
}

func weightedDistance(g *Graph, demands []Demand) float64 {
	dist := g.AllPairsDistances()
	s := 0.0
	for _, d := range demands {
		s += d.Weight * float64(dist[d.A][d.B])
	}
	return s
}

func TestDensifyTargetedBeatsRandomOnDemands(t *testing.T) {
	// A 24-node ring with long-range demands: targeted edges should serve
	// the demands far better than proximity-random ones.
	n := 24
	ring := NewGraph("ring", n)
	for i := 0; i < n; i++ {
		ring.AddEdge(i, (i+1)%n)
	}
	demands := ringDemands(n, n/2) // antipodal interactions
	rng := rand.New(rand.NewSource(7))
	density := 0.05
	random := Densify(ring, density, rand.New(rand.NewSource(7)))
	targeted := DensifyTargeted(ring, density, demands, rng)
	if targeted.NumEdges() != random.NumEdges() {
		t.Fatalf("edge budgets differ: %d vs %d", targeted.NumEdges(), random.NumEdges())
	}
	wr := weightedDistance(random, demands)
	wt := weightedDistance(targeted, demands)
	if wt >= wr {
		t.Fatalf("targeted demand distance %v not below random %v", wt, wr)
	}
}

func TestDensifyTargetedPreservesBaseline(t *testing.T) {
	base := Falcon27()
	demands := []Demand{{A: 0, B: 26, Weight: 3}}
	out := DensifyTargeted(base, 0.02, demands, rand.New(rand.NewSource(1)))
	for _, e := range base.Edges() {
		if !out.HasEdge(e[0], e[1]) {
			t.Fatal("baseline edge dropped")
		}
	}
	// The single dominant demand should now be (nearly) direct.
	d := out.BFSDistances(0)[26]
	if d > 3 {
		t.Fatalf("demand pair still at distance %d", d)
	}
}

func TestDensifyTargetedZeroBudget(t *testing.T) {
	base := Falcon27()
	out := DensifyTargeted(base, 0, ringDemands(10, 2), rand.New(rand.NewSource(1)))
	if out.NumEdges() != base.NumEdges() {
		t.Fatal("density 0 changed the graph")
	}
}

func TestDensifyTargetedNoDemandsFallsBack(t *testing.T) {
	base := Falcon27()
	out := DensifyTargeted(base, 0.1, nil, rand.New(rand.NewSource(2)))
	want := Densify(base, 0.1, rand.New(rand.NewSource(2)))
	if out.NumEdges() != want.NumEdges() {
		t.Fatalf("fallback budget mismatch: %d vs %d", out.NumEdges(), want.NumEdges())
	}
}

func TestWorkloadDemands(t *testing.T) {
	pairs := [][2]int{{0, 1}, {1, 0}, {1, 2}}
	layout := []int{5, 3, 8}
	ds := WorkloadDemands(pairs, layout)
	if len(ds) != 2 {
		t.Fatalf("%d demands, want 2 (duplicates accumulated)", len(ds))
	}
	for _, d := range ds {
		if d.A == 3 && d.B == 5 {
			if d.Weight != 2 {
				t.Fatalf("duplicate pair weight %v, want 2", d.Weight)
			}
		}
	}
}
