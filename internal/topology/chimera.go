package topology

import "fmt"

// Chimera generates the Chimera C(rows, cols, t) graph of earlier D-Wave
// systems (the 2000Q used by Trummer & Koch's multi-query optimisation
// study is C(16,16,4)): a grid of K_{t,t} bipartite unit cells, with the
// "vertical" shore of each cell coupled to the cells above/below and the
// "horizontal" shore to the cells left/right. Maximum degree is t+2 —
// less than half of Pegasus' 15, which is why Advantage embeds the same
// QUBOs with much shorter chains.
func Chimera(rows, cols, t int) *Graph {
	if rows < 1 || cols < 1 || t < 1 {
		panic(fmt.Sprintf("topology: invalid Chimera dimensions (%d,%d,%d)", rows, cols, t))
	}
	n := rows * cols * 2 * t
	g := NewGraph(fmt.Sprintf("dwave-chimera-%dx%dx%d", rows, cols, t), n)
	// Index: cell (r,c), shore u in {0 vertical, 1 horizontal}, offset k.
	idx := func(r, c, u, k int) int { return ((r*cols+c)*2+u)*t + k }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			// Intra-cell bipartite coupling.
			for a := 0; a < t; a++ {
				for b := 0; b < t; b++ {
					g.AddEdge(idx(r, c, 0, a), idx(r, c, 1, b))
				}
			}
			// Inter-cell couplers.
			if r+1 < rows {
				for k := 0; k < t; k++ {
					g.AddEdge(idx(r, c, 0, k), idx(r+1, c, 0, k))
				}
			}
			if c+1 < cols {
				for k := 0; k < t; k++ {
					g.AddEdge(idx(r, c, 1, k), idx(r, c+1, 1, k))
				}
			}
		}
	}
	return g
}

// DWave2000Q returns the C(16,16,4) Chimera graph of the D-Wave 2000Q
// (2048 qubits), the system generation used by the prior VLDB work on
// multi-query optimisation.
func DWave2000Q() *Graph {
	return Chimera(16, 16, 4)
}
