package topology

import "fmt"

// pegasusVerticalOffsets and pegasusHorizontalOffsets are D-Wave's default
// offset lists: qubit k within a tile is shifted by S[k] fragment units
// along its own orientation.
var (
	pegasusVerticalOffsets   = [12]int{2, 2, 2, 2, 6, 6, 6, 6, 10, 10, 10, 10}
	pegasusHorizontalOffsets = [12]int{6, 6, 6, 6, 2, 2, 2, 2, 10, 10, 10, 10}
)

// PegasusCoord is a qubit coordinate (u, w, k, z) in D-Wave's Pegasus
// scheme: u ∈ {0,1} is the orientation (0 vertical, 1 horizontal), w the
// perpendicular tile offset, k ∈ [0,12) the track within the tile, and z
// the position along the qubit's orientation.
type PegasusCoord struct {
	U, W, K, Z int
}

// Pegasus generates the Pegasus P_m graph of D-Wave Advantage systems
// using the fragment construction: a vertical qubit (0,w,k,z) occupies
// fragment column x = 12w+k, rows [12z+S0[k], 12z+S0[k]+12); a horizontal
// qubit (1,w,k,z) occupies row y = 12w+k, columns [12z+S1[k], 12z+S1[k]+12).
// Couplers:
//
//   - external: same track, consecutive z,
//   - odd:      same tile, paired tracks 2j and 2j+1,
//   - internal: a vertical and a horizontal qubit whose fragment paths
//     cross (each qubit crosses exactly 12 others in the bulk).
//
// Bulk qubits therefore reach degree 15 (§2.2.2). Boundary qubits without
// any internal coupler are dropped, which reproduces D-Wave's node counts
// (P16 → 5640 qubits, the Advantage topology).
func Pegasus(m int) (*Graph, []PegasusCoord) {
	if m < 2 {
		panic(fmt.Sprintf("topology: Pegasus size m must be >= 2, got %d", m))
	}
	type q struct {
		c        PegasusCoord
		internal bool
	}
	span := m - 1 // z takes m-1 values
	index := func(u, w, k, z int) int {
		return ((u*m+w)*12+k)*span + z
	}
	total := 2 * m * 12 * span
	qubits := make([]q, total)
	for u := 0; u < 2; u++ {
		for w := 0; w < m; w++ {
			for k := 0; k < 12; k++ {
				for z := 0; z < span; z++ {
					qubits[index(u, w, k, z)] = q{c: PegasusCoord{u, w, k, z}}
				}
			}
		}
	}
	// Internal couplers: vertical (0,wv,kv,zv) × horizontal (1,wh,kh,zh)
	// cross iff each lies within the other's 12-fragment span.
	type edge struct{ a, b int }
	var edges []edge
	for wv := 0; wv < m; wv++ {
		for kv := 0; kv < 12; kv++ {
			x := 12*wv + kv
			for zv := 0; zv < span; zv++ {
				ylo := 12*zv + pegasusVerticalOffsets[kv]
				for wh := 0; wh < m; wh++ {
					for kh := 0; kh < 12; kh++ {
						y := 12*wh + kh
						if y < ylo || y >= ylo+12 {
							continue
						}
						// x must lie in the horizontal qubit's column span:
						// 12zh + S1[kh] <= x < 12zh + S1[kh] + 12.
						num := x - pegasusHorizontalOffsets[kh]
						zh := num / 12
						if num < 0 || zh >= span {
							continue
						}
						va := index(0, wv, kv, zv)
						hb := index(1, wh, kh, zh)
						edges = append(edges, edge{va, hb})
						qubits[va].internal = true
						qubits[hb].internal = true
					}
				}
			}
		}
	}
	// Relabel, dropping qubits without internal couplers.
	relabel := make([]int, total)
	coords := make([]PegasusCoord, 0, total)
	for i := range relabel {
		relabel[i] = -1
	}
	for i, qu := range qubits {
		if qu.internal {
			relabel[i] = len(coords)
			coords = append(coords, qu.c)
		}
	}
	g := NewGraph(fmt.Sprintf("dwave-pegasus-%d", m), len(coords))
	for _, e := range edges {
		g.AddEdge(relabel[e.a], relabel[e.b])
	}
	// External and odd couplers among retained qubits.
	for u := 0; u < 2; u++ {
		for w := 0; w < m; w++ {
			for k := 0; k < 12; k++ {
				for z := 0; z < span; z++ {
					a := relabel[index(u, w, k, z)]
					if a < 0 {
						continue
					}
					if z+1 < span {
						if b := relabel[index(u, w, k, z+1)]; b >= 0 {
							g.AddEdge(a, b)
						}
					}
					if k%2 == 0 {
						if b := relabel[index(u, w, k+1, z)]; b >= 0 {
							g.AddEdge(a, b)
						}
					}
				}
			}
		}
	}
	return g, coords
}

// Advantage returns the Pegasus P16 graph of the D-Wave Advantage system
// the paper's annealing experiments target (5640 qubits, degree ≤ 15).
func Advantage() *Graph {
	g, _ := Pegasus(16)
	g.Name = "dwave-advantage"
	return g
}
