package topology

// Falcon27 returns the coupling map of the 27-qubit IBM Falcon r5.11
// processors (ibm_auckland and siblings): the standard 27-qubit heavy-hex
// graph with 28 couplers and maximum degree 3.
func Falcon27() *Graph {
	g := NewGraph("ibm-falcon-27", 27)
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 5}, {1, 4}, {4, 7}, {5, 8}, {6, 7},
		{7, 10}, {8, 9}, {8, 11}, {10, 12}, {11, 14}, {12, 13}, {13, 14},
		{12, 15}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21}, {19, 20},
		{19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26},
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// HeavyHex generates an IBM heavy-hex style lattice with the given number
// of long rows and row length: rows of chained qubits separated by
// connector qubits at alternating column offsets {0,4,8,...} and
// {2,6,10,...}. The first and last long rows are shortened by one qubit on
// opposite ends, matching IBM's Eagle layout; HeavyHex(7, 15) yields
// exactly the 127-qubit, 144-coupler Eagle r1 graph shape.
func HeavyHex(rows, rowLen int) *Graph {
	if rows < 2 || rowLen < 5 {
		panic("topology: heavy-hex needs rows >= 2 and rowLen >= 5")
	}
	type span struct{ start, end int }
	spans := make([]span, rows)
	for r := range spans {
		spans[r] = span{0, rowLen - 1}
	}
	spans[0].end = rowLen - 2
	spans[rows-1].start = 1

	connCols := make([][]int, rows-1)
	for r := 0; r < rows-1; r++ {
		offset := 0
		if r%2 == 1 {
			offset = 2
		}
		for c := offset; c < rowLen; c += 4 {
			if c >= spans[r].start && c <= spans[r].end &&
				c >= spans[r+1].start && c <= spans[r+1].end {
				connCols[r] = append(connCols[r], c)
			}
		}
	}

	// Pass 1: assign indices — long row r, then its connector row.
	id := 0
	rowIdx := make([][]int, rows)
	connIdx := make([][]int, rows-1)
	for r := 0; r < rows; r++ {
		rowIdx[r] = make([]int, rowLen)
		for c := range rowIdx[r] {
			rowIdx[r][c] = -1
		}
		for c := spans[r].start; c <= spans[r].end; c++ {
			rowIdx[r][c] = id
			id++
		}
		if r < rows-1 {
			connIdx[r] = make([]int, len(connCols[r]))
			for i := range connCols[r] {
				connIdx[r][i] = id
				id++
			}
		}
	}

	// Pass 2: edges.
	g := NewGraph("ibm-heavy-hex", id)
	for r := 0; r < rows; r++ {
		for c := spans[r].start; c < spans[r].end; c++ {
			g.AddEdge(rowIdx[r][c], rowIdx[r][c+1])
		}
	}
	for r := 0; r < rows-1; r++ {
		for i, c := range connCols[r] {
			g.AddEdge(connIdx[r][i], rowIdx[r][c])
			g.AddEdge(connIdx[r][i], rowIdx[r+1][c])
		}
	}
	return g
}

// Eagle127 returns a 127-qubit heavy-hex lattice in the shape of IBM's
// Eagle r1 (ibm_washington): 7 long rows of 15 qubits (first and last
// shortened to 14) plus 24 connector qubits, 144 couplers.
func Eagle127() *Graph {
	g := HeavyHex(7, 15)
	g.Name = "ibm-eagle-127"
	return g
}

// ExtendIBM returns a heavy-hex lattice with at least minQubits qubits by
// growing the Eagle pattern row by row — the paper's §6.2 "size
// extrapolation" for the IBM platform.
func ExtendIBM(minQubits int) *Graph {
	for rows := 3; rows <= 400; rows++ {
		g := HeavyHex(rows, 15)
		if g.N() >= minQubits {
			g.Name = "ibm-heavy-hex-ext"
			return g
		}
	}
	panic("topology: ExtendIBM target too large")
}
