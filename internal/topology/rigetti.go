package topology

// Aspen generates a Rigetti Aspen-class lattice: a grid of 8-qubit
// octagon rings, with neighbouring octagons joined by two couplers both
// horizontally and vertically. Aspen(2, 5) is the 80-qubit Aspen-M shape
// the paper uses as the Rigetti baseline (§6.2).
//
// Octagon-local numbering runs clockwise from the top-left position:
//
//	   0   1
//	7         2
//	6         3
//	   5   4
//
// Horizontal neighbours connect (2,3) ↔ (7,6); vertical neighbours
// connect (4,5) ↔ (1,0).
func Aspen(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic("topology: Aspen needs positive grid dimensions")
	}
	n := rows * cols * 8
	g := NewGraph("rigetti-aspen", n)
	idx := func(r, c, k int) int { return (r*cols+c)*8 + k }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			for k := 0; k < 8; k++ {
				g.AddEdge(idx(r, c, k), idx(r, c, (k+1)%8))
			}
			if c+1 < cols {
				g.AddEdge(idx(r, c, 2), idx(r, c+1, 7))
				g.AddEdge(idx(r, c, 3), idx(r, c+1, 6))
			}
			if r+1 < rows {
				g.AddEdge(idx(r, c, 4), idx(r+1, c, 1))
				g.AddEdge(idx(r, c, 5), idx(r+1, c, 0))
			}
		}
	}
	return g
}

// AspenM returns the 80-qubit Aspen-M baseline (2×5 octagons).
func AspenM() *Graph {
	g := Aspen(2, 5)
	g.Name = "rigetti-aspen-m"
	return g
}

// ExtendRigetti returns an Aspen-class lattice with at least minQubits
// qubits, grown by enlarging the octagon grid while keeping it roughly
// square — the §6.2 size extrapolation for the Rigetti platform.
func ExtendRigetti(minQubits int) *Graph {
	rows, cols := 2, 5
	for rows*cols*8 < minQubits {
		if cols <= 2*rows {
			cols++
		} else {
			rows++
		}
	}
	g := Aspen(rows, cols)
	g.Name = "rigetti-aspen-ext"
	return g
}
