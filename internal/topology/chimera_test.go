package topology

import "testing"

func TestChimeraStructure(t *testing.T) {
	g := Chimera(2, 3, 4)
	if g.N() != 2*3*8 {
		t.Fatalf("C(2,3,4) has %d qubits, want 48", g.N())
	}
	// Edges: cells 6 × 16 intra + vertical 1*3*4 + horizontal 2*2*4.
	want := 6*16 + 3*4 + 4*4
	if g.NumEdges() != want {
		t.Fatalf("C(2,3,4) has %d couplers, want %d", g.NumEdges(), want)
	}
	if g.MaxDegree() > 6 {
		t.Fatalf("Chimera degree %d > t+2", g.MaxDegree())
	}
	if !g.Connected() {
		t.Fatal("Chimera disconnected")
	}
}

func TestDWave2000Q(t *testing.T) {
	g := DWave2000Q()
	if g.N() != 2048 {
		t.Fatalf("2000Q has %d qubits, want 2048", g.N())
	}
	// Published ideal coupler count for C(16,16,4): 16*16*16 + 2*15*16*4.
	want := 16*16*16 + 2*15*16*4
	if g.NumEdges() != want {
		t.Fatalf("2000Q has %d couplers, want %d", g.NumEdges(), want)
	}
	if g.MaxDegree() != 6 {
		t.Fatalf("2000Q max degree %d, want 6", g.MaxDegree())
	}
}

func TestChimeraPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Chimera(0, 1, 4)
}
