package topology

import (
	"fmt"
	"math/rand"
)

// Demand is a weighted interaction requirement between two physical
// qubits, extracted from a workload (e.g. the two-qubit gates of a QAOA
// circuit under a chosen layout).
type Demand struct {
	A, B   int
	Weight float64
}

// DensifyTargeted adds the same number of couplers as Densify would at
// the given density, but chooses them greedily to maximise the weighted
// reduction of hop distances between the workload's interacting qubit
// pairs, instead of sampling proximity-biased random edges. This
// implements the paper's §8 future-work direction of "more targeted
// extensions of topologies that transcend our semi-stochastic approach".
//
// The gain of a candidate edge (u,v) is estimated from the current
// all-pairs distances as Σ_d w_d · (dist(a_d,b_d) − dist'(a_d,b_d)) with
// dist'(a,b) = min(dist(a,b), dist(a,u)+1+dist(v,b), dist(a,v)+1+dist(u,b));
// distances are refreshed periodically as edges accumulate.
func DensifyTargeted(g *Graph, density float64, demands []Demand, rng *rand.Rand) *Graph {
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("topology: density %v outside [0,1]", density))
	}
	out := g.Copy(fmt.Sprintf("%s+t%.2f", g.Name, density))
	full := g.n * (g.n - 1) / 2
	missing := full - g.NumEdges()
	target := int(density*float64(missing) + 0.5)
	if target <= 0 || len(demands) == 0 {
		if target > 0 {
			return Densify(g, density, rng)
		}
		return out
	}
	// Candidate endpoints: qubits involved in demands (plus their
	// neighbourhood would also be viable; endpoints suffice in practice).
	involved := map[int]bool{}
	for _, d := range demands {
		involved[d.A] = true
		involved[d.B] = true
	}
	var nodes []int
	for v := range involved {
		nodes = append(nodes, v)
	}
	dist := out.AllPairsDistances()
	added := 0
	sinceRefresh := 0
	for added < target {
		bestGain := 0.0
		bestU, bestV := -1, -1
		for i := 0; i < len(nodes); i++ {
			for j := i + 1; j < len(nodes); j++ {
				u, v := nodes[i], nodes[j]
				if out.HasEdge(u, v) {
					continue
				}
				gain := 0.0
				for _, d := range demands {
					cur := dist[d.A][d.B]
					via1 := dist[d.A][u] + 1 + dist[v][d.B]
					via2 := dist[d.A][v] + 1 + dist[u][d.B]
					nd := cur
					if via1 < nd {
						nd = via1
					}
					if via2 < nd {
						nd = via2
					}
					if nd < cur {
						gain += d.Weight * float64(cur-nd)
					}
				}
				if gain > bestGain {
					bestGain = gain
					bestU, bestV = u, v
				}
			}
		}
		if bestU < 0 {
			// No demand-improving edge left: fall back to proximity-biased
			// random additions for the remaining budget.
			rest := Densify(out, float64(target-added)/float64(full-out.NumEdges()), rng)
			rest.Name = out.Name
			return rest
		}
		out.AddEdge(bestU, bestV)
		added++
		sinceRefresh++
		if sinceRefresh >= 8 {
			dist = out.AllPairsDistances()
			sinceRefresh = 0
		} else {
			// Cheap incremental update for the new edge only.
			du, dv := dist[bestU], dist[bestV]
			for a := 0; a < out.n; a++ {
				for b := 0; b < out.n; b++ {
					via1 := du[a] + 1 + dv[b]
					via2 := dv[a] + 1 + du[b]
					if via1 < dist[a][b] {
						dist[a][b] = via1
					}
					if via2 < dist[a][b] {
						dist[a][b] = via2
					}
				}
			}
		}
	}
	return out
}

// WorkloadDemands extracts weighted physical-qubit interaction demands
// from logical two-qubit interaction pairs under a layout (logical →
// physical). Duplicate pairs accumulate weight.
func WorkloadDemands(pairs [][2]int, layout []int) []Demand {
	acc := map[[2]int]float64{}
	for _, p := range pairs {
		a, b := layout[p[0]], layout[p[1]]
		if a > b {
			a, b = b, a
		}
		acc[[2]int{a, b}]++
	}
	out := make([]Demand, 0, len(acc))
	for k, w := range acc {
		out = append(out, Demand{A: k[0], B: k[1], Weight: w})
	}
	return out
}
