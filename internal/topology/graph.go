// Package topology models QPU hardware connectivity graphs: the IBM
// heavy-hex lattices (Falcon 27q, Eagle 127q), Rigetti's Aspen octagon
// lattice, IonQ's complete mesh, and D-Wave's Pegasus graph, plus the two
// co-design extrapolations the paper studies in §6.2 — size extension of
// the repeating lattice patterns and density extension by adding couplers
// between topologically close qubits.
package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph over vertices 0..N-1.
type Graph struct {
	Name string
	n    int
	adj  [][]int
	set  map[[2]int]bool
}

// NewGraph creates an empty graph with n vertices.
func NewGraph(name string, n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("topology: non-positive vertex count %d", n))
	}
	return &Graph{Name: name, n: n, adj: make([][]int, n), set: make(map[[2]int]bool)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

func edgeKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// AddEdge inserts an undirected edge; duplicate and self edges are ignored.
func (g *Graph) AddEdge(a, b int) {
	if a == b || a < 0 || b < 0 || a >= g.n || b >= g.n {
		panic(fmt.Sprintf("topology: invalid edge (%d,%d) for %d vertices", a, b, g.n))
	}
	k := edgeKey(a, b)
	if g.set[k] {
		return
	}
	g.set[k] = true
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
}

// HasEdge reports whether the edge exists.
func (g *Graph) HasEdge(a, b int) bool { return g.set[edgeKey(a, b)] }

// Neighbors returns the adjacency list of v (not to be mutated).
func (g *Graph) Neighbors(v int) []int { return g.adj[v] }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for v := 0; v < g.n; v++ {
		if d := len(g.adj[v]); d > m {
			m = d
		}
	}
	return m
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.set) }

// Edges returns all edges in deterministic order.
func (g *Graph) Edges() [][2]int {
	es := make([][2]int, 0, len(g.set))
	for k := range g.set {
		es = append(es, k)
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	return es
}

// Copy returns a deep copy, optionally renamed. Edges are inserted in
// sorted order so the copy's adjacency lists — and everything downstream
// that tie-breaks on neighbour order, like the basic router — do not
// depend on map iteration order.
func (g *Graph) Copy(name string) *Graph {
	c := NewGraph(name, g.n)
	for _, k := range g.Edges() {
		c.AddEdge(k[0], k[1])
	}
	return c
}

// BFSDistances returns hop distances from src (-1 for unreachable).
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// AllPairsDistances returns the full hop-distance matrix (BFS per vertex);
// intended for the gate-model devices (tens to a few hundred qubits).
func (g *Graph) AllPairsDistances() [][]int {
	d := make([][]int, g.n)
	for v := 0; v < g.n; v++ {
		d[v] = g.BFSDistances(v)
	}
	return d
}

// Connected reports whether the graph is connected.
func (g *Graph) Connected() bool {
	for _, d := range g.BFSDistances(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Complete returns the complete graph K_n — the connectivity of trapped-ion
// QPUs such as IonQ's (§6.2).
func Complete(name string, n int) *Graph {
	g := NewGraph(name, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	return g
}

// Densify adds edges between previously non-adjacent vertices until the
// extended-connectivity parameter d = added/(possible−existing) reaches
// the target (§6.2 "Density Extrapolation"). Following the paper, edges
// between topologically close vertices are preferred: candidates at hop
// distance δ = 2 are exhausted (in random order) before δ = 3, and so on.
// d = 0 returns a copy of the baseline; d = 1 the complete mesh.
func Densify(g *Graph, density float64, rng *rand.Rand) *Graph {
	if density < 0 || density > 1 {
		panic(fmt.Sprintf("topology: density %v outside [0,1]", density))
	}
	out := g.Copy(fmt.Sprintf("%s+d%.2f", g.Name, density))
	full := g.n * (g.n - 1) / 2
	missing := full - g.NumEdges()
	target := int(density*float64(missing) + 0.5)
	if target <= 0 {
		return out
	}
	added := 0
	dist := g.AllPairsDistances()
	maxDelta := 2
	for v := 0; v < g.n; v++ {
		for u := 0; u < g.n; u++ {
			if dist[v][u] > maxDelta {
				maxDelta = dist[v][u]
			}
		}
	}
	for delta := 2; delta <= maxDelta && added < target; delta++ {
		var cands [][2]int
		for v := 0; v < g.n; v++ {
			for u := v + 1; u < g.n; u++ {
				if dist[v][u] == delta && !out.HasEdge(v, u) {
					cands = append(cands, [2]int{v, u})
				}
			}
		}
		rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		for _, e := range cands {
			if added >= target {
				break
			}
			out.AddEdge(e[0], e[1])
			added++
		}
	}
	return out
}

// Density returns the extended-connectivity parameter of h relative to the
// baseline g: the fraction of originally missing edges that h adds.
func Density(baseline, extended *Graph) float64 {
	full := baseline.n * (baseline.n - 1) / 2
	missing := full - baseline.NumEdges()
	if missing == 0 {
		return 0
	}
	return float64(extended.NumEdges()-baseline.NumEdges()) / float64(missing)
}
