package workloads

import (
	"testing"

	"quantumjoin/internal/classical"
	"quantumjoin/internal/core"
)

func TestCatalogValid(t *testing.T) {
	if err := JOBLiteCatalog().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAllQueriesParse(t *testing.T) {
	all, err := LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Queries()) {
		t.Fatalf("loaded %d of %d queries", len(all), len(Queries()))
	}
	for _, nq := range Queries() {
		q := all[nq.Name]
		if q.NumRelations() != nq.Relations {
			t.Errorf("%s: %d relations, declared %d", nq.Name, q.NumRelations(), nq.Relations)
		}
		if err := q.Validate(); err != nil {
			t.Errorf("%s: %v", nq.Name, err)
		}
		if q.NumPredicates() < q.NumRelations()-1 {
			t.Errorf("%s: query graph disconnected (%d predicates for %d relations)",
				nq.Name, q.NumPredicates(), q.NumRelations())
		}
	}
}

func TestWorkloadOptimisable(t *testing.T) {
	q, err := Load("q5a-company-cast")
	if err != nil {
		t.Fatal(err)
	}
	res, err := classical.Optimal(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Order.IsPermutation(5) {
		t.Fatalf("order %v", res.Order)
	}
	greedy := classical.Greedy(q)
	if res.Cost > greedy.Cost*(1+1e-9) {
		t.Fatal("DP worse than greedy")
	}
}

func TestWorkloadQubitDemand(t *testing.T) {
	// The headline sanity check: the 10-relation JOB-scale query needs
	// hundreds of qubits (around the 1000-qubit roadmap scale with
	// realistic thresholds), far beyond the 27-qubit NISQ device.
	q, err := Load("q10a-everything")
	if err != nil {
		t.Fatal(err)
	}
	bound := core.UpperBound(q, 5, 1).Total()
	if bound < 200 || bound > 3000 {
		t.Fatalf("10-relation bound %d outside the expected few-hundred..few-thousand band", bound)
	}
	enc, err := core.Encode(q, core.Options{Thresholds: core.DefaultThresholds(q, 5), Omega: 1})
	if err != nil {
		t.Fatal(err)
	}
	if enc.NumQubits() > bound {
		t.Fatalf("encoding %d exceeds bound %d", enc.NumQubits(), bound)
	}
	if enc.NumQubits() <= 27 {
		t.Fatalf("JOB-scale query fits a 27-qubit NISQ device (%d qubits); statistics implausible", enc.NumQubits())
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("nope"); err == nil {
		t.Fatal("unknown query accepted")
	}
}
