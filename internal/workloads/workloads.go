// Package workloads provides a canned, named query workload over an
// IMDB-like schema in the spirit of the Join Order Benchmark (JOB) of
// Leis et al. — the benchmark the paper uses to size future QPUs ("a QPU
// offering 1,000 logical qubits can optimise queries roughly equal in
// size to those considered in the join order benchmark", §6.1). The
// statistics are synthetic but shaped like the real dataset; queries
// range from 3 to 10 relations with chains, stars and cycles.
package workloads

import (
	"fmt"
	"strings"

	"quantumjoin/internal/join"
	"quantumjoin/internal/sqlfront"
)

// JOBLiteCatalog returns the statistics catalog of the IMDB-like schema.
func JOBLiteCatalog() *sqlfront.Catalog {
	return &sqlfront.Catalog{Tables: []sqlfront.Table{
		{Name: "title", Cardinality: 2528312, Columns: []sqlfront.Column{
			{Name: "id", Distinct: 2528312},
			{Name: "kind_id", Distinct: 7},
			{Name: "production_year", Distinct: 133},
		}},
		{Name: "movie_companies", Cardinality: 2609129, Columns: []sqlfront.Column{
			{Name: "movie_id", Distinct: 1087236},
			{Name: "company_id", Distinct: 234997},
			{Name: "company_type_id", Distinct: 2},
		}},
		{Name: "company_name", Cardinality: 234997, Columns: []sqlfront.Column{
			{Name: "id", Distinct: 234997},
			{Name: "country_code", Distinct: 235},
		}},
		{Name: "cast_info", Cardinality: 36244344, Columns: []sqlfront.Column{
			{Name: "movie_id", Distinct: 2331601},
			{Name: "person_id", Distinct: 4051810},
			{Name: "role_id", Distinct: 11},
		}},
		{Name: "name", Cardinality: 4167491, Columns: []sqlfront.Column{
			{Name: "id", Distinct: 4167491},
			{Name: "gender", Distinct: 3},
		}},
		{Name: "movie_info", Cardinality: 14835720, Columns: []sqlfront.Column{
			{Name: "movie_id", Distinct: 2468825},
			{Name: "info_type_id", Distinct: 71},
		}},
		{Name: "info_type", Cardinality: 113, Columns: []sqlfront.Column{
			{Name: "id", Distinct: 113},
		}},
		{Name: "movie_keyword", Cardinality: 4523930, Columns: []sqlfront.Column{
			{Name: "movie_id", Distinct: 476794},
			{Name: "keyword_id", Distinct: 134170},
		}},
		{Name: "keyword", Cardinality: 134170, Columns: []sqlfront.Column{
			{Name: "id", Distinct: 134170},
		}},
		{Name: "kind_type", Cardinality: 7, Columns: []sqlfront.Column{
			{Name: "id", Distinct: 7},
		}},
	}}
}

// NamedQuery is one workload entry.
type NamedQuery struct {
	Name      string
	Relations int // number of joined relations
	SQL       string
}

// Queries returns the named workload, ordered by relation count.
func Queries() []NamedQuery {
	return []NamedQuery{
		{"q3a-company-movies", 3, `
			SELECT t.id FROM title t, movie_companies mc, company_name cn
			WHERE t.id = mc.movie_id AND mc.company_id = cn.id
			  AND cn.country_code = 'de'`},
		{"q3b-cast-by-year", 3, `
			SELECT t.id FROM title t, cast_info ci, name n
			WHERE t.id = ci.movie_id AND ci.person_id = n.id
			  AND t.production_year = 2004`},
		{"q4a-keyworded-info", 4, `
			SELECT t.id FROM title t, movie_keyword mk, keyword k, movie_info mi
			WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
			  AND t.id = mi.movie_id`},
		{"q5a-company-cast", 5, `
			SELECT t.id FROM title t, movie_companies mc, company_name cn, cast_info ci, name n
			WHERE t.id = mc.movie_id AND mc.company_id = cn.id
			  AND t.id = ci.movie_id AND ci.person_id = n.id
			  AND n.gender = 'f'`},
		{"q6a-info-keywords", 6, `
			SELECT t.id FROM title t, movie_info mi, info_type it, movie_keyword mk, keyword k, kind_type kt
			WHERE t.id = mi.movie_id AND mi.info_type_id = it.id
			  AND t.id = mk.movie_id AND mk.keyword_id = k.id
			  AND t.kind_id = kt.id`},
		{"q8a-full-star", 8, `
			SELECT t.id FROM title t, movie_companies mc, company_name cn, cast_info ci,
			              name n, movie_info mi, movie_keyword mk, keyword k
			WHERE t.id = mc.movie_id AND mc.company_id = cn.id
			  AND t.id = ci.movie_id AND ci.person_id = n.id
			  AND t.id = mi.movie_id
			  AND t.id = mk.movie_id AND mk.keyword_id = k.id
			  AND cn.country_code = 'us'`},
		{"q10a-everything", 10, `
			SELECT t.id FROM title t, movie_companies mc, company_name cn, cast_info ci,
			              name n, movie_info mi, info_type it, movie_keyword mk, keyword k, kind_type kt
			WHERE t.id = mc.movie_id AND mc.company_id = cn.id
			  AND t.id = ci.movie_id AND ci.person_id = n.id
			  AND t.id = mi.movie_id AND mi.info_type_id = it.id
			  AND t.id = mk.movie_id AND mk.keyword_id = k.id
			  AND t.kind_id = kt.id AND t.production_year = 1994`},
	}
}

// Load parses a named workload query into a join ordering instance.
func Load(name string) (*join.Query, error) {
	for _, q := range Queries() {
		if strings.EqualFold(q.Name, name) {
			parsed, err := sqlfront.Parse(q.SQL, JOBLiteCatalog())
			if err != nil {
				return nil, fmt.Errorf("workloads: %s: %w", q.Name, err)
			}
			return parsed.Query, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown query %q", name)
}

// LoadAll parses every workload query.
func LoadAll() (map[string]*join.Query, error) {
	out := make(map[string]*join.Query)
	for _, q := range Queries() {
		parsed, err := Load(q.Name)
		if err != nil {
			return nil, err
		}
		out[q.Name] = parsed
	}
	return out, nil
}
