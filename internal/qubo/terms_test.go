package qubo

import (
	"math"
	"math/rand"
	"testing"
)

func TestTermsMatchesQuadTerms(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := randomQUBO(rng, 9, 0.4)
	ts := q.Terms()
	ps := q.QuadTerms()
	if len(ts) != len(ps) || len(ts) != q.NumQuadTerms() {
		t.Fatalf("lengths differ: terms %d, pairs %d, map %d", len(ts), len(ps), q.NumQuadTerms())
	}
	for k, tm := range ts {
		if tm.I != ps[k].I || tm.J != ps[k].J {
			t.Fatalf("order mismatch at %d: %+v vs %+v", k, tm, ps[k])
		}
		if tm.I >= tm.J {
			t.Fatalf("term %d not ordered: %+v", k, tm)
		}
		if got := q.Quad(tm.I, tm.J); got != tm.W {
			t.Fatalf("term weight %v != map %v", tm.W, got)
		}
	}
}

func TestCSRMatchesAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	q := randomQUBO(rng, 10, 0.3)
	csr := q.CSR()
	adj := q.AdjacencyLists()
	for i := 0; i < q.N(); i++ {
		cols, w := csr.Row(i)
		if len(cols) != len(adj[i]) {
			t.Fatalf("row %d length %d != adjacency %d", i, len(cols), len(adj[i]))
		}
		for k, c := range cols {
			if int(c) != adj[i][k] {
				t.Fatalf("row %d col %d: %d != %d", i, k, c, adj[i][k])
			}
			if k > 0 && cols[k-1] >= c {
				t.Fatalf("row %d not sorted: %v", i, cols)
			}
			if got := q.Quad(i, int(c)); got != w[k] {
				t.Fatalf("row %d weight %v != map %v", i, w[k], got)
			}
		}
	}
}

func TestViewsInvalidatedByAddQuad(t *testing.T) {
	q := New(4)
	q.AddQuad(0, 1, 1)
	if len(q.Terms()) != 1 {
		t.Fatal("initial view wrong")
	}
	q.AddQuad(2, 3, 2)
	if len(q.Terms()) != 2 {
		t.Fatal("view not invalidated by AddQuad")
	}
	// Cancelling a term must drop it from the views too.
	q.AddQuad(2, 3, -2)
	if len(q.Terms()) != 1 || len(q.CSR().Cols) != 2 {
		t.Fatal("cancelled term still visible in views")
	}
}

func TestCostTableMatchesValueBits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 3, 7, 13} {
		q := randomQUBO(rng, n, 0.35)
		tab := q.CostTable()
		if len(tab) != 1<<uint(n) {
			t.Fatalf("n=%d: table length %d", n, len(tab))
		}
		for b := uint64(0); b < uint64(len(tab)); b++ {
			if want := q.ValueBits(b); math.Abs(tab[b]-want) > 1e-9 {
				t.Fatalf("n=%d b=%b: table %v != ValueBits %v", n, b, tab[b], want)
			}
		}
	}
}

// TestCostTableCrossesChunks covers sizes above the parallel chunking
// threshold so the per-chunk seeding path is exercised.
func TestCostTableCrossesChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	q := randomQUBO(rng, costTableChunkBits+3, 0.15)
	tab := q.CostTable()
	for _, b := range []uint64{0, 1, 1 << costTableChunkBits, (1 << costTableChunkBits) | 5, uint64(len(tab) - 1)} {
		if want := q.ValueBits(b); math.Abs(tab[b]-want) > 1e-9 {
			t.Fatalf("b=%d: table %v != ValueBits %v", b, tab[b], want)
		}
	}
	for i := 0; i < 2000; i++ {
		b := uint64(rng.Intn(len(tab)))
		if want := q.ValueBits(b); math.Abs(tab[b]-want) > 1e-9 {
			t.Fatalf("b=%d: table %v != ValueBits %v", b, tab[b], want)
		}
	}
}
