// Package qubo implements quadratic unconstrained binary optimisation
// (QUBO) problems — the problem encoding required by both QAOA on
// gate-based QPUs and by quantum annealers (paper §2.2, Eq. 1):
//
//	f(x) = Σ_i c_ii x_i + Σ_{i<j} c_ij x_i x_j,  x_i ∈ {0,1}
//
// plus the equivalent Ising form (spin variables s_i ∈ {−1,+1}) used by
// annealing hardware, exact solvers for validation, and the structural
// statistics (quadratic term count, variable interaction graph) that drive
// embedding and circuit-depth behaviour.
package qubo

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Pair identifies a quadratic term between two distinct variables, stored
// with I < J.
type Pair struct{ I, J int }

// QUBO is a quadratic pseudo-boolean function to be minimised. The zero
// value is unusable; create instances with New.
type QUBO struct {
	n      int
	Offset float64 // constant term (does not affect argmin)
	linear []float64
	quad   map[Pair]float64

	// Lazily built read-side views of quad (Terms slice + CSR adjacency,
	// see terms.go), published atomically so concurrent readers never see
	// a half-built view. The map remains the mutation-side source of
	// truth; AddQuad invalidates the views.
	viewsMu  sync.Mutex
	viewsPtr atomic.Pointer[quadViews]

	// Lazily built dense cost table (see CostTable in terms.go), cached
	// for small problems and invalidated by any coefficient mutation. The
	// entry remembers the Offset it was built at, since Offset is a public
	// field mutable without going through a method.
	costPtr atomic.Pointer[costCache]
}

// New creates a QUBO over n binary variables.
func New(n int) *QUBO {
	if n < 0 {
		panic(fmt.Sprintf("qubo: negative size %d", n))
	}
	return &QUBO{n: n, linear: make([]float64, n), quad: make(map[Pair]float64)}
}

// N returns the number of variables.
func (q *QUBO) N() int { return q.n }

// AddLinear adds w to the linear coefficient of variable i.
func (q *QUBO) AddLinear(i int, w float64) {
	q.linear[i] += w
	q.costPtr.Store(nil)
}

// Linear returns the linear coefficient of variable i.
func (q *QUBO) Linear(i int) float64 { return q.linear[i] }

// AddQuad adds w to the quadratic coefficient of the pair (i, j), i != j.
// Since x² = x for binaries, callers must use AddLinear for i == j.
func (q *QUBO) AddQuad(i, j int, w float64) {
	if i == j {
		panic(fmt.Sprintf("qubo: AddQuad(%d, %d): use AddLinear for diagonal terms", i, j))
	}
	if w == 0 {
		return
	}
	p := orderPair(i, j)
	q.quad[p] += w
	if q.quad[p] == 0 {
		delete(q.quad, p)
	}
	q.invalidateViews()
}

// Quad returns the quadratic coefficient of the pair (i, j).
func (q *QUBO) Quad(i, j int) float64 { return q.quad[orderPair(i, j)] }

func orderPair(i, j int) Pair {
	if i > j {
		i, j = j, i
	}
	return Pair{i, j}
}

// NumQuadTerms returns the number of nonzero quadratic coefficients — the
// quantity that dominates QAOA circuit depth and embedding difficulty
// (paper §3.4 "Quadratic Contributions").
func (q *QUBO) NumQuadTerms() int { return len(q.quad) }

// QuadTerms returns the nonzero quadratic terms in deterministic order.
func (q *QUBO) QuadTerms() []Pair {
	ts := q.Terms()
	ps := make([]Pair, len(ts))
	for i, t := range ts {
		ps[i] = Pair{t.I, t.J}
	}
	return ps
}

// Value evaluates f(x) + Offset for the given assignment.
func (q *QUBO) Value(x []bool) float64 {
	if len(x) != q.n {
		panic(fmt.Sprintf("qubo: assignment length %d != %d variables", len(x), q.n))
	}
	v := q.Offset
	for i, b := range x {
		if b {
			v += q.linear[i]
		}
	}
	for _, t := range q.Terms() {
		if x[t.I] && x[t.J] {
			v += t.W
		}
	}
	return v
}

// ValueBits evaluates f for an assignment packed into a uint64 (bit i =
// variable i); valid for n <= 64.
func (q *QUBO) ValueBits(bits uint64) float64 {
	v := q.Offset
	for i := 0; i < q.n; i++ {
		if bits&(1<<uint(i)) != 0 {
			v += q.linear[i]
		}
	}
	for _, t := range q.Terms() {
		if bits&(1<<uint(t.I)) != 0 && bits&(1<<uint(t.J)) != 0 {
			v += t.W
		}
	}
	return v
}

// AdjacencyLists returns, for each variable, the sorted list of variables
// it shares a quadratic term with (the QUBO interaction graph of Eq. 1,
// interpreted as a weighted undirected graph).
func (q *QUBO) AdjacencyLists() [][]int {
	csr := q.CSR()
	adj := make([][]int, q.n)
	for i := 0; i < q.n; i++ {
		cols, _ := csr.Row(i)
		row := make([]int, len(cols))
		for k, c := range cols {
			row[k] = int(c)
		}
		adj[i] = row
	}
	return adj
}

// MaxDegree returns the maximum number of distinct interaction partners of
// any variable.
func (q *QUBO) MaxDegree() int {
	deg := make([]int, q.n)
	for p := range q.quad {
		deg[p.I]++
		deg[p.J]++
	}
	m := 0
	for _, d := range deg {
		if d > m {
			m = d
		}
	}
	return m
}

// MaxAbsCoefficient returns the largest absolute linear or quadratic
// coefficient; annealers rescale all couplings by this (limited analog
// resolution, §3.4).
func (q *QUBO) MaxAbsCoefficient() float64 {
	m := 0.0
	for _, w := range q.linear {
		if a := math.Abs(w); a > m {
			m = a
		}
	}
	for _, w := range q.quad {
		if a := math.Abs(w); a > m {
			m = a
		}
	}
	return m
}

// Copy returns a deep copy.
func (q *QUBO) Copy() *QUBO {
	c := New(q.n)
	c.Offset = q.Offset
	copy(c.linear, q.linear)
	for p, w := range q.quad {
		c.quad[p] = w
	}
	return c
}

// Ising is the spin form H(s) = Σ h_i s_i + Σ_{i<j} J_ij s_i s_j + Offset
// with s_i ∈ {−1, +1}. The convention maps QUBO x_i = (1+s_i)/2, so spin
// +1 corresponds to x = 1.
type Ising struct {
	N      int
	H      []float64
	J      map[Pair]float64
	Offset float64
}

// ToIsing converts the QUBO into its equivalent Ising Hamiltonian.
func (q *QUBO) ToIsing() *Ising {
	is := &Ising{N: q.n, H: make([]float64, q.n), J: make(map[Pair]float64), Offset: q.Offset}
	for i, c := range q.linear {
		is.H[i] += c / 2
		is.Offset += c / 2
	}
	for _, t := range q.Terms() {
		is.J[Pair{t.I, t.J}] += t.W / 4
		is.H[t.I] += t.W / 4
		is.H[t.J] += t.W / 4
		is.Offset += t.W / 4
	}
	return is
}

// Value evaluates the Ising energy for spins (+1/−1).
func (is *Ising) Value(s []int8) float64 {
	v := is.Offset
	for i, h := range is.H {
		v += h * float64(s[i])
	}
	for p, w := range is.J {
		v += w * float64(s[p.I]) * float64(s[p.J])
	}
	return v
}

// SpinsToBits converts an Ising spin assignment to QUBO booleans
// (spin +1 → true).
func SpinsToBits(s []int8) []bool {
	x := make([]bool, len(s))
	for i, v := range s {
		x[i] = v > 0
	}
	return x
}

// BitsToSpins converts a QUBO assignment to Ising spins.
func BitsToSpins(x []bool) []int8 {
	s := make([]int8, len(x))
	for i, b := range x {
		if b {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}
