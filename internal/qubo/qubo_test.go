package qubo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomQUBO(rng *rand.Rand, n int, density float64) *QUBO {
	q := New(n)
	for i := 0; i < n; i++ {
		q.AddLinear(i, rng.NormFloat64())
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				q.AddQuad(i, j, rng.NormFloat64())
			}
		}
	}
	q.Offset = rng.NormFloat64()
	return q
}

func TestValueAgainstManual(t *testing.T) {
	q := New(3)
	q.AddLinear(0, 1)
	q.AddLinear(2, -2)
	q.AddQuad(0, 1, 3)
	q.AddQuad(2, 1, 0.5) // unordered pair must normalise
	q.Offset = 10
	// x = (1,1,1): 10 + 1 - 2 + 3 + 0.5 = 12.5
	if got := q.Value([]bool{true, true, true}); got != 12.5 {
		t.Errorf("Value = %v, want 12.5", got)
	}
	if got := q.ValueBits(0b111); got != 12.5 {
		t.Errorf("ValueBits = %v, want 12.5", got)
	}
	if got := q.Value([]bool{false, false, false}); got != 10 {
		t.Errorf("Value(0) = %v, want 10", got)
	}
	if q.Quad(1, 2) != 0.5 || q.Quad(2, 1) != 0.5 {
		t.Error("Quad not symmetric in argument order")
	}
}

func TestAddQuadCancelsToZero(t *testing.T) {
	q := New(2)
	q.AddQuad(0, 1, 2)
	q.AddQuad(1, 0, -2)
	if q.NumQuadTerms() != 0 {
		t.Errorf("cancelled term still stored: %d terms", q.NumQuadTerms())
	}
}

func TestAddQuadDiagonalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddQuad(i,i) should panic")
		}
	}()
	New(2).AddQuad(1, 1, 1)
}

func TestValueBitsMatchesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := randomQUBO(rng, 10, 0.4)
	for trial := 0; trial < 100; trial++ {
		bits := rng.Uint64() & ((1 << 10) - 1)
		x := make([]bool, 10)
		for i := range x {
			x[i] = bits&(1<<uint(i)) != 0
		}
		if a, b := q.Value(x), q.ValueBits(bits); math.Abs(a-b) > 1e-12 {
			t.Fatalf("Value %v != ValueBits %v", a, b)
		}
	}
}

func TestIsingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		q := randomQUBO(rng, 8, 0.5)
		is := q.ToIsing()
		for bits := uint64(0); bits < 1<<8; bits++ {
			x := make([]bool, 8)
			for i := range x {
				x[i] = bits&(1<<uint(i)) != 0
			}
			qv := q.Value(x)
			iv := is.Value(BitsToSpins(x))
			if math.Abs(qv-iv) > 1e-9 {
				t.Fatalf("QUBO %v != Ising %v at %b", qv, iv, bits)
			}
		}
	}
}

func TestSpinConversionRoundTrip(t *testing.T) {
	x := []bool{true, false, true}
	if got := SpinsToBits(BitsToSpins(x)); got[0] != true || got[1] != false || got[2] != true {
		t.Errorf("round trip = %v", got)
	}
}

func TestBruteForce(t *testing.T) {
	// min of x0 - 2 x1 + 3 x0 x1 is x0=0, x1=1 -> -2.
	q := New(2)
	q.AddLinear(0, 1)
	q.AddLinear(1, -2)
	q.AddQuad(0, 1, 3)
	s, err := q.BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	if s.Value != -2 || s.Assignment[0] || !s.Assignment[1] {
		t.Fatalf("BruteForce = %+v", s)
	}
}

func TestBruteForceLimit(t *testing.T) {
	if _, err := New(MaxBruteForceVars + 1).BruteForce(); err == nil {
		t.Error("oversized brute force accepted")
	}
}

func TestBranchAndBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(10)
		q := randomQUBO(rng, n, 0.5)
		bf, err := q.BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := q.BranchAndBound(0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bf.Value-bb.Value) > 1e-9 {
			t.Fatalf("n=%d: B&B %v != brute force %v", n, bb.Value, bf.Value)
		}
		if got := q.Value(bb.Assignment); math.Abs(got-bb.Value) > 1e-9 {
			t.Fatalf("B&B assignment evaluates to %v, reported %v", got, bb.Value)
		}
	}
}

func TestAdjacencyAndDegree(t *testing.T) {
	q := New(4)
	q.AddQuad(0, 1, 1)
	q.AddQuad(0, 2, 1)
	q.AddQuad(0, 3, 1)
	q.AddQuad(2, 3, 1)
	adj := q.AdjacencyLists()
	if len(adj[0]) != 3 || adj[0][0] != 1 {
		t.Errorf("adj[0] = %v", adj[0])
	}
	if q.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", q.MaxDegree())
	}
	if q.NumQuadTerms() != 4 {
		t.Errorf("NumQuadTerms = %d, want 4", q.NumQuadTerms())
	}
}

func TestMaxAbsCoefficient(t *testing.T) {
	q := New(2)
	q.AddLinear(0, -5)
	q.AddQuad(0, 1, 3)
	if q.MaxAbsCoefficient() != 5 {
		t.Errorf("MaxAbsCoefficient = %v", q.MaxAbsCoefficient())
	}
}

func TestCopyIsDeep(t *testing.T) {
	q := New(2)
	q.AddLinear(0, 1)
	q.AddQuad(0, 1, 2)
	c := q.Copy()
	c.AddLinear(0, 10)
	c.AddQuad(0, 1, 10)
	if q.Linear(0) != 1 || q.Quad(0, 1) != 2 {
		t.Error("Copy shares state with original")
	}
}

func TestQuadTermsDeterministic(t *testing.T) {
	q := New(5)
	q.AddQuad(3, 1, 1)
	q.AddQuad(0, 4, 1)
	q.AddQuad(0, 2, 1)
	ps := q.QuadTerms()
	want := []Pair{{0, 2}, {0, 4}, {1, 3}}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("QuadTerms = %v, want %v", ps, want)
		}
	}
}

// Property: the Ising conversion preserves the argmin value.
func TestQuickIsingPreservesMinimum(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQUBO(r, 6, 0.6)
		is := q.ToIsing()
		minQ, minI := math.Inf(1), math.Inf(1)
		for bits := uint64(0); bits < 1<<6; bits++ {
			x := make([]bool, 6)
			for i := range x {
				x[i] = bits&(1<<uint(i)) != 0
			}
			if v := q.Value(x); v < minQ {
				minQ = v
			}
			if v := is.Value(BitsToSpins(x)); v < minI {
				minI = v
			}
		}
		return math.Abs(minQ-minI) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
