package qubo

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"quantumjoin/internal/obs"
)

// tabuCtxCheckIters is the flip interval at which SolveContext polls the
// context — cheap relative to the per-flip neighbourhood scan.
const tabuCtxCheckIters = 64

// TabuSearch is a single-flip tabu-search heuristic for QUBO minimisation
// — the classical reference heuristic commonly paired with annealers
// (D-Wave's hybrid tooling uses a multistart tabu solver). It provides a
// scalable classical baseline for instances beyond BruteForce and
// BranchAndBound reach.
type TabuSearch struct {
	// Tenure is the number of iterations a flipped variable stays tabu
	// (default: n/4 + 1).
	Tenure int
	// MaxIters bounds the total number of flips (default 64·n).
	MaxIters int
	// Restarts is the number of random restarts (default 4).
	Restarts int
	// InitialState, when non-nil and of length N, seeds the first restart
	// with the given assignment instead of a random one (warm start from a
	// classical incumbent); subsequent restarts stay random for diversity.
	InitialState []bool
}

// tabuArena holds the per-solve scratch state (assignment, flip deltas,
// tabu clocks) sized to the largest instance it has seen. A single solve
// reuses it across restarts; SolveTabuBatchContext reuses one arena across
// every instance of the batch, which is where the batch fast path saves
// its allocations.
type tabuArena struct {
	x, localBestX []bool
	delta         []float64
	tabuUntil     []int
}

func (a *tabuArena) ensure(n int) {
	if cap(a.x) < n {
		a.x = make([]bool, n)
		a.localBestX = make([]bool, n)
		a.delta = make([]float64, n)
		a.tabuUntil = make([]int, n)
	}
	a.x = a.x[:n]
	a.localBestX = a.localBestX[:n]
	a.delta = a.delta[:n]
	a.tabuUntil = a.tabuUntil[:n]
}

// Solve runs the search and returns the best assignment found.
func (ts TabuSearch) Solve(q *QUBO, rng *rand.Rand) Solution {
	sol, _ := ts.SolveContext(context.Background(), q, rng)
	return sol
}

// SolveContext is Solve with cancellation: the context is polled every
// tabuCtxCheckIters flips and at every restart boundary. On expiry the
// search stops early and returns the best assignment found so far together
// with the context error wrapped in partial-progress information.
func (ts TabuSearch) SolveContext(ctx context.Context, q *QUBO, rng *rand.Rand) (Solution, error) {
	return ts.solveContext(ctx, q, rng, &tabuArena{})
}

func (ts TabuSearch) solveContext(ctx context.Context, q *QUBO, rng *rand.Rand, ar *tabuArena) (Solution, error) {
	n := q.N()
	if n == 0 {
		return Solution{Assignment: nil, Value: q.Offset}, nil
	}
	tenure := ts.Tenure
	if tenure <= 0 {
		tenure = n/4 + 1
	}
	maxIters := ts.MaxIters
	if maxIters <= 0 {
		maxIters = 64 * n
	}
	restarts := ts.Restarts
	if restarts <= 0 {
		restarts = 4
	}
	ar.ensure(n)

	// The CSR view makes the per-flip neighbourhood scans (delta init and
	// incremental updates) map-free.
	csr := q.CSR()
	best := Solution{Value: math.Inf(1)}
	// fold merges a restart's local optimum into the global best; also used
	// to preserve partial progress when the context expires mid-restart.
	fold := func(localBest float64, localBestX []bool) {
		if localBest < best.Value {
			best.Value = localBest
			best.Assignment = append([]bool(nil), localBestX...)
		}
	}
	for r := 0; r < restarts; r++ {
		if err := ctx.Err(); err != nil {
			return best, fmt.Errorf("qubo: tabu search interrupted after %d/%d restarts: %w", r, restarts, err)
		}
		_, restartSpan := obs.StartSpan(ctx, "tabu.restart")
		restartSpan.SetAttr("restart", r)
		x := ar.x
		if r == 0 && len(ts.InitialState) == n {
			copy(x, ts.InitialState)
		} else {
			for i := range x {
				x[i] = rng.Intn(2) == 0
			}
		}
		// delta[i] = change in objective when flipping variable i.
		delta := ar.delta
		val := q.Value(x)
		recompute := func(i int) {
			d := q.Linear(i)
			cols, w := csr.Row(i)
			for k, j := range cols {
				if x[j] {
					d += w[k]
				}
			}
			if x[i] {
				d = -d
			}
			delta[i] = d
		}
		for i := 0; i < n; i++ {
			recompute(i)
		}
		tabuUntil := ar.tabuUntil
		for i := range tabuUntil {
			tabuUntil[i] = 0
		}
		localBest := val
		localBestX := ar.localBestX
		copy(localBestX, x)
		for it := 0; it < maxIters; it++ {
			if it%tabuCtxCheckIters == 0 {
				if err := ctx.Err(); err != nil {
					fold(localBest, localBestX)
					restartSpan.End(err)
					return best, fmt.Errorf("qubo: tabu search interrupted at restart %d/%d, flip %d/%d: %w", r, restarts, it, maxIters, err)
				}
			}
			pick := -1
			pickDelta := math.Inf(1)
			for i := 0; i < n; i++ {
				if tabuUntil[i] > it {
					// Aspiration: a tabu move is allowed if it yields a
					// new overall best.
					if val+delta[i] >= localBest-1e-12 {
						continue
					}
				}
				if delta[i] < pickDelta {
					pickDelta = delta[i]
					pick = i
				}
			}
			if pick < 0 {
				break
			}
			x[pick] = !x[pick]
			val += delta[pick]
			tabuUntil[pick] = it + tenure
			recompute(pick)
			cols, _ := csr.Row(pick)
			for _, j := range cols {
				recompute(int(j))
			}
			if val < localBest {
				localBest = val
				copy(localBestX, x)
			}
		}
		fold(localBest, localBestX)
		restartSpan.SetAttr("local_best", localBest)
		restartSpan.End(nil)
	}
	return best, nil
}

// TabuJob is one instance of a batch tabu solve: the QUBO, the search
// parameters, and the seed of the instance's private RNG stream (equal
// seeds reproduce the single-instance SolveContext result exactly).
type TabuJob struct {
	Q      *QUBO
	Search TabuSearch
	Seed   int64
}

// SolveTabuBatchContext sweeps many QUBO instances through tabu search in
// one array pass: the scratch buffers (assignment, flip deltas, tabu
// clocks, local-best copy) are allocated once at the batch's maximum
// instance size and reused across every restart of every instance, instead
// of being reallocated per restart as the standalone path does. Results
// are bit-identical to calling SolveContext per job with the same seed.
//
// Returned slices are index-aligned with jobs; errs[i] is non-nil when
// instance i was interrupted (its Solution still carries partial progress,
// as in SolveContext). Once the context expires, all remaining instances
// fail fast with the context error.
func SolveTabuBatchContext(ctx context.Context, jobs []TabuJob) ([]Solution, []error) {
	sols := make([]Solution, len(jobs))
	errs := make([]error, len(jobs))
	ar := &tabuArena{}
	for i, job := range jobs {
		if err := ctx.Err(); err != nil {
			errs[i] = fmt.Errorf("qubo: tabu batch interrupted before instance %d/%d: %w", i, len(jobs), err)
			continue
		}
		rng := rand.New(rand.NewSource(job.Seed))
		sols[i], errs[i] = job.Search.solveContext(ctx, job.Q, rng, ar)
	}
	return sols, errs
}
