package qubo

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"quantumjoin/internal/obs"
)

// tabuCtxCheckIters is the flip interval at which SolveContext polls the
// context — cheap relative to the per-flip neighbourhood scan.
const tabuCtxCheckIters = 64

// TabuSearch is a single-flip tabu-search heuristic for QUBO minimisation
// — the classical reference heuristic commonly paired with annealers
// (D-Wave's hybrid tooling uses a multistart tabu solver). It provides a
// scalable classical baseline for instances beyond BruteForce and
// BranchAndBound reach.
type TabuSearch struct {
	// Tenure is the number of iterations a flipped variable stays tabu
	// (default: n/4 + 1).
	Tenure int
	// MaxIters bounds the total number of flips (default 64·n).
	MaxIters int
	// Restarts is the number of random restarts (default 4).
	Restarts int
	// InitialState, when non-nil and of length N, seeds the first restart
	// with the given assignment instead of a random one (warm start from a
	// classical incumbent); subsequent restarts stay random for diversity.
	InitialState []bool
}

// Solve runs the search and returns the best assignment found.
func (ts TabuSearch) Solve(q *QUBO, rng *rand.Rand) Solution {
	sol, _ := ts.SolveContext(context.Background(), q, rng)
	return sol
}

// SolveContext is Solve with cancellation: the context is polled every
// tabuCtxCheckIters flips and at every restart boundary. On expiry the
// search stops early and returns the best assignment found so far together
// with the context error wrapped in partial-progress information.
func (ts TabuSearch) SolveContext(ctx context.Context, q *QUBO, rng *rand.Rand) (Solution, error) {
	n := q.N()
	if n == 0 {
		return Solution{Assignment: nil, Value: q.Offset}, nil
	}
	tenure := ts.Tenure
	if tenure <= 0 {
		tenure = n/4 + 1
	}
	maxIters := ts.MaxIters
	if maxIters <= 0 {
		maxIters = 64 * n
	}
	restarts := ts.Restarts
	if restarts <= 0 {
		restarts = 4
	}

	// The CSR view makes the per-flip neighbourhood scans (delta init and
	// incremental updates) map-free.
	csr := q.CSR()
	best := Solution{Value: math.Inf(1)}
	// fold merges a restart's local optimum into the global best; also used
	// to preserve partial progress when the context expires mid-restart.
	fold := func(localBest float64, localBestX []bool) {
		if localBest < best.Value {
			best.Value = localBest
			best.Assignment = append([]bool(nil), localBestX...)
		}
	}
	for r := 0; r < restarts; r++ {
		if err := ctx.Err(); err != nil {
			return best, fmt.Errorf("qubo: tabu search interrupted after %d/%d restarts: %w", r, restarts, err)
		}
		_, restartSpan := obs.StartSpan(ctx, "tabu.restart")
		restartSpan.SetAttr("restart", r)
		x := make([]bool, n)
		if r == 0 && len(ts.InitialState) == n {
			copy(x, ts.InitialState)
		} else {
			for i := range x {
				x[i] = rng.Intn(2) == 0
			}
		}
		// delta[i] = change in objective when flipping variable i.
		delta := make([]float64, n)
		val := q.Value(x)
		recompute := func(i int) {
			d := q.Linear(i)
			cols, w := csr.Row(i)
			for k, j := range cols {
				if x[j] {
					d += w[k]
				}
			}
			if x[i] {
				d = -d
			}
			delta[i] = d
		}
		for i := 0; i < n; i++ {
			recompute(i)
		}
		tabuUntil := make([]int, n)
		localBest := val
		localBestX := append([]bool(nil), x...)
		for it := 0; it < maxIters; it++ {
			if it%tabuCtxCheckIters == 0 {
				if err := ctx.Err(); err != nil {
					fold(localBest, localBestX)
					restartSpan.End(err)
					return best, fmt.Errorf("qubo: tabu search interrupted at restart %d/%d, flip %d/%d: %w", r, restarts, it, maxIters, err)
				}
			}
			pick := -1
			pickDelta := math.Inf(1)
			for i := 0; i < n; i++ {
				if tabuUntil[i] > it {
					// Aspiration: a tabu move is allowed if it yields a
					// new overall best.
					if val+delta[i] >= localBest-1e-12 {
						continue
					}
				}
				if delta[i] < pickDelta {
					pickDelta = delta[i]
					pick = i
				}
			}
			if pick < 0 {
				break
			}
			x[pick] = !x[pick]
			val += delta[pick]
			tabuUntil[pick] = it + tenure
			recompute(pick)
			cols, _ := csr.Row(pick)
			for _, j := range cols {
				recompute(int(j))
			}
			if val < localBest {
				localBest = val
				copy(localBestX, x)
			}
		}
		fold(localBest, localBestX)
		restartSpan.SetAttr("local_best", localBest)
		restartSpan.End(nil)
	}
	return best, nil
}
