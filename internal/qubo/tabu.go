package qubo

import (
	"math"
	"math/rand"
)

// TabuSearch is a single-flip tabu-search heuristic for QUBO minimisation
// — the classical reference heuristic commonly paired with annealers
// (D-Wave's hybrid tooling uses a multistart tabu solver). It provides a
// scalable classical baseline for instances beyond BruteForce and
// BranchAndBound reach.
type TabuSearch struct {
	// Tenure is the number of iterations a flipped variable stays tabu
	// (default: n/4 + 1).
	Tenure int
	// MaxIters bounds the total number of flips (default 64·n).
	MaxIters int
	// Restarts is the number of random restarts (default 4).
	Restarts int
}

// Solve runs the search and returns the best assignment found.
func (ts TabuSearch) Solve(q *QUBO, rng *rand.Rand) Solution {
	n := q.N()
	if n == 0 {
		return Solution{Assignment: nil, Value: q.Offset}
	}
	tenure := ts.Tenure
	if tenure <= 0 {
		tenure = n/4 + 1
	}
	maxIters := ts.MaxIters
	if maxIters <= 0 {
		maxIters = 64 * n
	}
	restarts := ts.Restarts
	if restarts <= 0 {
		restarts = 4
	}

	adj := q.AdjacencyLists()
	best := Solution{Value: math.Inf(1)}
	for r := 0; r < restarts; r++ {
		x := make([]bool, n)
		for i := range x {
			x[i] = rng.Intn(2) == 0
		}
		// delta[i] = change in objective when flipping variable i.
		delta := make([]float64, n)
		val := q.Value(x)
		recompute := func(i int) {
			d := q.Linear(i)
			for _, j := range adj[i] {
				if x[j] {
					d += q.Quad(i, j)
				}
			}
			if x[i] {
				d = -d
			}
			delta[i] = d
		}
		for i := 0; i < n; i++ {
			recompute(i)
		}
		tabuUntil := make([]int, n)
		localBest := val
		localBestX := append([]bool(nil), x...)
		for it := 0; it < maxIters; it++ {
			pick := -1
			pickDelta := math.Inf(1)
			for i := 0; i < n; i++ {
				if tabuUntil[i] > it {
					// Aspiration: a tabu move is allowed if it yields a
					// new overall best.
					if val+delta[i] >= localBest-1e-12 {
						continue
					}
				}
				if delta[i] < pickDelta {
					pickDelta = delta[i]
					pick = i
				}
			}
			if pick < 0 {
				break
			}
			x[pick] = !x[pick]
			val += delta[pick]
			tabuUntil[pick] = it + tenure
			recompute(pick)
			for _, j := range adj[pick] {
				recompute(j)
			}
			if val < localBest {
				localBest = val
				copy(localBestX, x)
			}
		}
		if localBest < best.Value {
			best.Value = localBest
			best.Assignment = append([]bool(nil), localBestX...)
		}
	}
	return best
}
