package qubo

import (
	"math"
	"math/rand"
	"testing"
)

func TestTabuMatchesBruteForceOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		q := randomQUBO(rng, 10, 0.5)
		bf, err := q.BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		tb := (TabuSearch{Restarts: 6}).Solve(q, rng)
		if tb.Value > bf.Value+1e-9 && tb.Value-bf.Value > 0.05*math.Abs(bf.Value) {
			t.Fatalf("trial %d: tabu %v far from optimum %v", trial, tb.Value, bf.Value)
		}
		if got := q.Value(tb.Assignment); math.Abs(got-tb.Value) > 1e-9 {
			t.Fatalf("reported value %v != evaluated %v", tb.Value, got)
		}
	}
}

func TestTabuFindsExactOptimumUsually(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	hits := 0
	for trial := 0; trial < 10; trial++ {
		q := randomQUBO(rng, 12, 0.4)
		bf, err := q.BruteForce()
		if err != nil {
			t.Fatal(err)
		}
		tb := (TabuSearch{Restarts: 8}).Solve(q, rng)
		if math.Abs(tb.Value-bf.Value) < 1e-9 {
			hits++
		}
	}
	if hits < 7 {
		t.Fatalf("tabu found the exact optimum only %d/10 times", hits)
	}
}

func TestTabuScalesBeyondBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	q := randomQUBO(rng, 200, 0.05)
	tb := (TabuSearch{}).Solve(q, rng)
	if len(tb.Assignment) != 200 {
		t.Fatal("wrong assignment size")
	}
	// Must beat the all-zero and a random assignment.
	zero := q.Value(make([]bool, 200))
	if tb.Value > zero {
		t.Fatalf("tabu %v worse than the zero assignment %v", tb.Value, zero)
	}
}

func TestTabuEmptyQUBO(t *testing.T) {
	q := New(0)
	q.Offset = 5
	tb := (TabuSearch{}).Solve(q, rand.New(rand.NewSource(1)))
	if tb.Value != 5 {
		t.Fatalf("empty QUBO value %v", tb.Value)
	}
}
