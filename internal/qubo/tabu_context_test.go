package qubo

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestTabuSolveContextCancelled(t *testing.T) {
	q := New(48)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < q.N(); i++ {
		q.AddLinear(i, rng.NormFloat64())
		for j := i + 1; j < q.N(); j++ {
			q.AddQuad(i, j, rng.NormFloat64())
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ts := TabuSearch{MaxIters: 1 << 20, Restarts: 1 << 10}
	start := time.Now()
	_, err := ts.SolveContext(ctx, q, rand.New(rand.NewSource(1)))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Errorf("error lacks partial-progress info: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled search still ran for %v", elapsed)
	}
}

func TestTabuSolveContextDeadlineKeepsPartialBest(t *testing.T) {
	q := New(64)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < q.N(); i++ {
		q.AddLinear(i, rng.NormFloat64())
		for j := i + 1; j < q.N(); j++ {
			q.AddQuad(i, j, 0.2*rng.NormFloat64())
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ts := TabuSearch{MaxIters: 1 << 22, Restarts: 1 << 12}
	sol, err := ts.SolveContext(ctx, q, rand.New(rand.NewSource(2)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if sol.Assignment == nil || math.IsInf(sol.Value, 1) {
		t.Fatal("no partial best solution preserved")
	}
	// Values are tracked incrementally during search, so allow for
	// floating-point accumulation error against the direct evaluation.
	if got := q.Value(sol.Assignment); math.Abs(got-sol.Value) > 1e-9*math.Abs(got) {
		t.Errorf("partial best value %v does not match its assignment (%v)", sol.Value, got)
	}
}

func TestTabuSolveContextUncancelledMatchesSolve(t *testing.T) {
	q := New(20)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < q.N(); i++ {
		q.AddLinear(i, rng.NormFloat64())
		if i > 0 {
			q.AddQuad(i-1, i, rng.NormFloat64())
		}
	}
	a := TabuSearch{}.Solve(q, rand.New(rand.NewSource(4)))
	b, err := TabuSearch{}.SolveContext(context.Background(), q, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Errorf("Solve (%v) and SolveContext (%v) diverge on the same seed", a.Value, b.Value)
	}
}
