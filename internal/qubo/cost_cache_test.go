package qubo

import (
	"math"
	"math/rand"
	"testing"
)

// TestCostTableCachedAndInvalidated pins the cost-table cache contract:
// repeated calls share one table, and every mutation path — AddLinear,
// AddQuad, direct Offset writes — yields fresh correct values.
func TestCostTableCachedAndInvalidated(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	q := New(6)
	for i := 0; i < 6; i++ {
		q.AddLinear(i, rng.NormFloat64())
		for j := i + 1; j < 6; j++ {
			q.AddQuad(i, j, rng.NormFloat64())
		}
	}
	check := func(stage string) []float64 {
		tab := q.CostTable()
		for b := uint64(0); b < 1<<6; b++ {
			if want := q.ValueBits(b); math.Abs(tab[b]-want) > 1e-9 {
				t.Fatalf("%s: table[%d] = %v, ValueBits = %v", stage, b, tab[b], want)
			}
		}
		return tab
	}
	t1 := check("initial")
	t2 := check("repeat")
	if &t1[0] != &t2[0] {
		t.Fatal("repeated CostTable calls did not share the cached table")
	}

	q.AddLinear(2, 0.5)
	check("after AddLinear")
	q.AddQuad(0, 3, -0.25)
	check("after AddQuad")
	q.Offset += 1.5
	check("after Offset change")
	q.Offset -= 1.5
	check("after Offset restore")
}
