package qubo

import (
	"fmt"
	"math"
	"sort"
)

// MaxBruteForceVars bounds BruteForce: 2^26 evaluations is the practical
// single-core limit.
const MaxBruteForceVars = 26

// Solution is an assignment together with its objective value.
type Solution struct {
	Assignment []bool
	Value      float64
}

// BruteForce enumerates all 2^n assignments and returns a global minimum.
// Intended for validating encodings and heuristic samplers in tests.
func (q *QUBO) BruteForce() (Solution, error) {
	if q.n > MaxBruteForceVars {
		return Solution{}, fmt.Errorf("qubo: %d variables exceeds brute-force limit %d", q.n, MaxBruteForceVars)
	}
	best := Solution{Value: math.Inf(1)}
	var bestBits uint64
	for bits := uint64(0); bits < 1<<uint(q.n); bits++ {
		if v := q.ValueBits(bits); v < best.Value {
			best.Value = v
			bestBits = bits
		}
	}
	best.Assignment = make([]bool, q.n)
	for i := 0; i < q.n; i++ {
		best.Assignment[i] = bestBits&(1<<uint(i)) != 0
	}
	return best, nil
}

// BranchAndBound finds a global minimum by depth-first search with a lower
// bound: after fixing a prefix of variables, the remaining objective is
// bounded below by adding, for each free variable, the most favourable
// contribution it could possibly make. Handles somewhat larger instances
// than BruteForce when coefficients are informative.
func (q *QUBO) BranchAndBound(maxVars int) (Solution, error) {
	if maxVars == 0 {
		maxVars = 40
	}
	if q.n > maxVars {
		return Solution{}, fmt.Errorf("qubo: %d variables exceeds branch-and-bound limit %d", q.n, maxVars)
	}
	adj := q.AdjacencyLists()
	// Order variables by decreasing connectivity so bounds tighten early.
	order := make([]int, q.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return len(adj[order[a]]) > len(adj[order[b]]) })
	pos := make([]int, q.n) // variable -> decision depth
	for d, v := range order {
		pos[v] = d
	}

	x := make([]bool, q.n)
	best := Solution{Value: math.Inf(1), Assignment: make([]bool, q.n)}

	// minGain[v]: most negative contribution variable v can add when set,
	// assuming all its undecided neighbours choose in its favour.
	lowerTail := func(depth int, partial float64) float64 {
		lb := partial
		for d := depth; d < q.n; d++ {
			v := order[d]
			gain := q.linear[v]
			for _, u := range adj[v] {
				w := q.Quad(v, u)
				if pos[u] < depth { // decided: contribution is fixed if x[u]
					if x[u] {
						gain += w
					}
				} else if pos[u] > d && w < 0 { // count each undecided pair once
					gain += w
				}
			}
			if gain < 0 {
				lb += gain
			}
		}
		return lb
	}

	var rec func(depth int, val float64)
	rec = func(depth int, val float64) {
		if depth == q.n {
			if val < best.Value {
				best.Value = val
				copy(best.Assignment, x)
			}
			return
		}
		if lowerTail(depth, val) >= best.Value {
			return
		}
		v := order[depth]
		// Contribution of setting v given decided neighbours.
		delta := q.linear[v]
		for _, u := range adj[v] {
			if pos[u] < depth && x[u] {
				delta += q.Quad(v, u)
			}
		}
		// Explore the more promising branch first.
		branches := []bool{false, true}
		if delta < 0 {
			branches = []bool{true, false}
		}
		for _, b := range branches {
			x[v] = b
			if b {
				rec(depth+1, val+delta)
			} else {
				rec(depth+1, val)
			}
		}
		x[v] = false
	}
	rec(0, q.Offset)
	return best, nil
}
