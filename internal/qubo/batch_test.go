package qubo

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestTabuBatchMatchesSingle pins the batch fast path to the standalone
// solver: same seeds must give bit-identical assignments and values, so the
// shared-arena reuse cannot leak state between instances or restarts.
func TestTabuBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	jobs := make([]TabuJob, 0, 12)
	for i := 0; i < 12; i++ {
		n := 8 + rng.Intn(24) // mixed sizes exercise the arena resizing
		jobs = append(jobs, TabuJob{
			Q:      randomQUBO(rng, n, 0.4),
			Search: TabuSearch{Restarts: 3},
			Seed:   int64(1000 + i),
		})
	}
	sols, errs := SolveTabuBatchContext(context.Background(), jobs)
	for i, job := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d: unexpected error %v", i, errs[i])
		}
		want, err := job.Search.SolveContext(context.Background(), job.Q, rand.New(rand.NewSource(job.Seed)))
		if err != nil {
			t.Fatalf("job %d: single solve: %v", i, err)
		}
		if sols[i].Value != want.Value {
			t.Fatalf("job %d: batch value %v != single value %v", i, sols[i].Value, want.Value)
		}
		if len(sols[i].Assignment) != len(want.Assignment) {
			t.Fatalf("job %d: assignment length mismatch", i)
		}
		for k := range want.Assignment {
			if sols[i].Assignment[k] != want.Assignment[k] {
				t.Fatalf("job %d: assignment differs at variable %d", i, k)
			}
		}
	}
}

// TestTabuBatchCancellation: once the context expires, remaining instances
// fail fast with the context error rather than burning the caller's time.
func TestTabuBatchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	jobs := make([]TabuJob, 6)
	for i := range jobs {
		jobs[i] = TabuJob{
			Q:      randomQUBO(rng, 40, 0.5),
			Search: TabuSearch{Restarts: 50, MaxIters: 1 << 20},
			Seed:   int64(i),
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, errs := SolveTabuBatchContext(ctx, jobs)
	sawErr := false
	for _, err := range errs {
		if err != nil {
			sawErr = true
		}
	}
	if !sawErr {
		t.Fatal("expected at least one instance to be interrupted by the deadline")
	}
	if errs[len(errs)-1] == nil {
		t.Fatal("last instance should have failed fast after the deadline expired")
	}
}
