package qubo

import (
	"math"
	"math/rand"
	"testing"
)

// minItersToReach returns the smallest flip budget (single restart) for
// which the deterministically seeded search ends at or below target.
func minItersToReach(q *QUBO, target float64, seed int64, init []bool) int {
	for _, iters := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024} {
		ts := TabuSearch{MaxIters: iters, Restarts: 1, InitialState: init}
		sol := ts.Solve(q, rand.New(rand.NewSource(seed)))
		if sol.Value <= target+1e-9 {
			return iters
		}
	}
	return math.MaxInt
}

func TestTabuWarmStartReachesIncumbentInFewerIters(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		rng := rand.New(rand.NewSource(seed))
		q := randomQUBO(rng, 60, 0.2)
		// Incumbent: a short cold run — good but improvable.
		inc := (TabuSearch{MaxIters: 40, Restarts: 1}).Solve(q, rand.New(rand.NewSource(seed+50)))
		cold := minItersToReach(q, inc.Value, seed+99, nil)
		warm := minItersToReach(q, inc.Value, seed+99, inc.Assignment)
		// A warm start begins at the incumbent, so one iteration suffices
		// by construction; a cold start from random spins must re-descend.
		if warm != 1 {
			t.Errorf("seed %d: warm tabu needed %d iterations to match its incumbent", seed, warm)
		}
		if cold <= warm {
			t.Errorf("seed %d: cold tabu matched the incumbent in %d iterations (warm: %d)", seed, cold, warm)
		}
	}
}

func TestTabuWarmStartKeepsRestartDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q := randomQUBO(rng, 30, 0.3)
	inc := (TabuSearch{MaxIters: 20, Restarts: 1}).Solve(q, rand.New(rand.NewSource(22)))
	// With several restarts only the first is seeded; the search must
	// never end above the incumbent and usually improves on it.
	sol := (TabuSearch{Restarts: 4, InitialState: inc.Assignment}).Solve(q, rand.New(rand.NewSource(23)))
	if sol.Value > inc.Value+1e-9 {
		t.Errorf("warm multistart tabu %v worse than its incumbent %v", sol.Value, inc.Value)
	}
	if got := q.Value(sol.Assignment); math.Abs(got-sol.Value) > 1e-9 {
		t.Errorf("reported value %v != evaluated %v", sol.Value, got)
	}
}

func TestTabuWarmStartWrongLengthIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	q := randomQUBO(rng, 12, 0.4)
	short := []bool{true, false}
	sol := (TabuSearch{Restarts: 2, InitialState: short}).Solve(q, rand.New(rand.NewSource(32)))
	if len(sol.Assignment) != 12 {
		t.Fatalf("solution has %d variables, want 12", len(sol.Assignment))
	}
}
