package qubo

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Term is one nonzero quadratic coefficient, stored with I < J.
type Term struct {
	I, J int
	W    float64
}

// CSR is a compressed-sparse-row view of the QUBO interaction graph: the
// interaction partners of variable i are Cols[RowPtr[i]:RowPtr[i+1]]
// (sorted ascending) with coefficients W at the same offsets. Every
// quadratic term appears twice, once per endpoint, so hot loops can scan a
// variable's neighbourhood without map lookups. The view is read-only.
type CSR struct {
	RowPtr []int32
	Cols   []int32
	W      []float64
}

// Row returns the neighbour and coefficient slices of variable i.
func (c *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := c.RowPtr[i], c.RowPtr[i+1]
	return c.Cols[lo:hi], c.W[lo:hi]
}

// quadViews bundles the lazily built read-side views of the quad map so
// they can be published (and invalidated) atomically.
type quadViews struct {
	terms []Term
	csr   *CSR
}

// views returns the current read-side views, building them on first use.
// The coefficient map stays the mutation-side source of truth; AddQuad
// invalidates the views. Concurrent readers are safe; mutation requires
// external exclusion, as with any QUBO method.
func (q *QUBO) views() *quadViews {
	if v := q.viewsPtr.Load(); v != nil {
		return v
	}
	q.viewsMu.Lock()
	defer q.viewsMu.Unlock()
	if v := q.viewsPtr.Load(); v != nil {
		return v
	}
	v := &quadViews{terms: q.buildTerms()}
	v.csr = buildCSR(q.n, v.terms)
	q.viewsPtr.Store(v)
	return v
}

func (q *QUBO) buildTerms() []Term {
	ts := make([]Term, 0, len(q.quad))
	for p, w := range q.quad {
		ts = append(ts, Term{I: p.I, J: p.J, W: w})
	}
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].I != ts[b].I {
			return ts[a].I < ts[b].I
		}
		return ts[a].J < ts[b].J
	})
	return ts
}

func buildCSR(n int, terms []Term) *CSR {
	deg := make([]int32, n+1)
	for _, t := range terms {
		deg[t.I+1]++
		deg[t.J+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	c := &CSR{
		RowPtr: deg,
		Cols:   make([]int32, deg[n]),
		W:      make([]float64, deg[n]),
	}
	next := make([]int32, n)
	copy(next, c.RowPtr[:n])
	// Terms are sorted by (I, J), so filling both endpoint rows in term
	// order leaves every row's Cols sorted ascending.
	for _, t := range terms {
		k := next[t.I]
		c.Cols[k], c.W[k] = int32(t.J), t.W
		next[t.I]++
	}
	for _, t := range terms {
		k := next[t.J]
		c.Cols[k], c.W[k] = int32(t.I), t.W
		next[t.J]++
	}
	for i := 0; i < n; i++ {
		lo, hi := c.RowPtr[i], c.RowPtr[i+1]
		sort.Sort(csrRow{c.Cols[lo:hi], c.W[lo:hi]})
	}
	return c
}

type csrRow struct {
	cols []int32
	w    []float64
}

func (r csrRow) Len() int           { return len(r.cols) }
func (r csrRow) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r csrRow) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.w[i], r.w[j] = r.w[j], r.w[i]
}

// Terms returns the nonzero quadratic terms sorted by (I, J). The slice is
// cached and shared; callers must not modify it.
func (q *QUBO) Terms() []Term { return q.views().terms }

// CSR returns the cached compressed-sparse-row neighbourhood view.
func (q *QUBO) CSR() *CSR { return q.views().csr }

// invalidateViews drops the cached read-side views (and the cost table,
// which depends on the same coefficients) after a mutation.
func (q *QUBO) invalidateViews() {
	q.viewsPtr.Store(nil)
	q.costPtr.Store(nil)
}

// costTableChunkBits sizes the aligned blocks the dense cost table is
// filled in; each block is seeded with one direct evaluation and extended
// by single-bit-flip deltas, and blocks are independent, so the fill
// parallelises across them.
const costTableChunkBits = 12

// costCacheMaxBits caps the problem size whose cost table is kept alive
// by the cache (2^20 entries → 8 MiB); larger tables are rebuilt per call
// rather than pinned in memory.
const costCacheMaxBits = 20

// costCache is one published cost table together with the Offset it was
// built at (Offset is a public field, so it can change without a
// mutation-method hook; a stale offset is detected at lookup).
type costCache struct {
	offset float64
	table  []float64
}

// CostTable returns the dense diagonal t with t[b] = ValueBits(b) for
// every assignment b in [0, 2^n) — the cost Hamiltonian's diagonal, which
// QAOA expectation loops index instead of re-evaluating the QUBO per basis
// state. The table is built incrementally: within an aligned block, entry
// i derives from the entry with i's lowest set bit cleared by adding that
// variable's linear coefficient plus its couplings to the bits that remain
// set, read from the CSR view. Memory is 8·2^n bytes (20 qubits → 8 MiB).
//
// For problems up to costCacheMaxBits variables the table is cached on the
// QUBO and shared between callers — repeated expectation evaluations on the
// same problem (the QAOA optimisation loop, warm service requests) pay for
// the fill once. The returned slice is read-only; callers must not modify
// it. Coefficient mutations (AddLinear, AddQuad) and Offset changes
// invalidate the cache.
func (q *QUBO) CostTable() []float64 {
	cacheable := q.n <= costCacheMaxBits
	if cacheable {
		if c := q.costPtr.Load(); c != nil && c.offset == q.Offset {
			return c.table
		}
	}
	t := q.buildCostTable()
	if cacheable {
		q.costPtr.Store(&costCache{offset: q.Offset, table: t})
	}
	return t
}

// buildCostTable fills a fresh table (see CostTable for the scheme).
func (q *QUBO) buildCostTable() []float64 {
	n := q.n
	if n > 63 {
		panic(fmt.Sprintf("qubo: CostTable needs n <= 63, got %d", n))
	}
	size := uint64(1) << uint(n)
	t := make([]float64, size)
	csr := q.CSR()
	fill := func(lo, hi uint64) {
		t[lo] = q.ValueBits(lo)
		for i := lo + 1; i < hi; i++ {
			b := bits.TrailingZeros64(i)
			j := i &^ (uint64(1) << uint(b))
			v := t[j] + q.linear[b]
			// Bits below b are zero in j by construction, so only
			// neighbours above b can contribute.
			cols, w := csr.Row(b)
			for k := len(cols) - 1; k >= 0; k-- {
				c := cols[k]
				if int(c) < b {
					break
				}
				if j&(uint64(1)<<uint(c)) != 0 {
					v += w[k]
				}
			}
			t[i] = v
		}
	}
	if n <= costTableChunkBits+1 {
		fill(0, size)
		return t
	}
	chunk := uint64(1) << costTableChunkBits
	nchunks := size / chunk
	workers := uint64(runtime.GOMAXPROCS(0))
	if workers > nchunks {
		workers = nchunks
	}
	if workers <= 1 {
		for c := uint64(0); c < nchunks; c++ {
			fill(c*chunk, (c+1)*chunk)
		}
		return t
	}
	var next atomic.Uint64
	var wg sync.WaitGroup
	for w := uint64(0); w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := next.Add(1) - 1
				if c >= nchunks {
					return
				}
				fill(c*chunk, (c+1)*chunk)
			}
		}()
	}
	wg.Wait()
	return t
}
