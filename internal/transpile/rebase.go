package transpile

import (
	"fmt"
	"math"

	"quantumjoin/internal/circuit"
)

// GateSet identifies a native gate set (§6.2 studies native versus
// unrestricted sets).
type GateSet int

const (
	// Unrestricted keeps all logical gates (hypothetical ideal hardware).
	Unrestricted GateSet = iota
	// IBMNative is {CX, RZ, SX, X} (Falcon/Eagle superconducting QPUs).
	IBMNative
	// RigettiNative is {CZ, RZ, RX(±π/2), RX(π)} (Aspen superconducting
	// QPUs).
	RigettiNative
	// IonQNative is {RX, RY, RZ, XX} (trapped-ion QPUs; XX is the
	// Mølmer–Sørensen interaction).
	IonQNative
)

// String implements fmt.Stringer.
func (s GateSet) String() string {
	switch s {
	case Unrestricted:
		return "unrestricted"
	case IBMNative:
		return "ibm"
	case RigettiNative:
		return "rigetti"
	case IonQNative:
		return "ionq"
	default:
		return fmt.Sprintf("GateSet(%d)", int(s))
	}
}

// Native reports whether a gate is directly executable in the set.
func (s GateSet) Native(g circuit.Gate) bool {
	switch s {
	case Unrestricted:
		return true
	case IBMNative:
		switch g.Kind {
		case circuit.CX, circuit.RZ, circuit.SX, circuit.X:
			return true
		}
		return false
	case RigettiNative:
		switch g.Kind {
		case circuit.CZ, circuit.RZ:
			return true
		case circuit.RX:
			a := circuit.NormalizeAngle(g.Param)
			return angleIn(a, math.Pi/2) || angleIn(a, -math.Pi/2) || angleIn(a, math.Pi) || angleIn(a, 0)
		}
		return false
	case IonQNative:
		switch g.Kind {
		case circuit.RX, circuit.RY, circuit.RZ, circuit.XX:
			return true
		}
		return false
	default:
		return false
	}
}

func angleIn(a, b float64) bool {
	return math.Abs(circuit.NormalizeAngle(a-b)) < 1e-12
}

// Rebase rewrites every gate of the circuit into the native set. All
// decompositions are exact up to global phase; tests verify them against
// the statevector simulator. Returns an error only for unknown gate sets.
func Rebase(c *circuit.Circuit, set GateSet) (*circuit.Circuit, error) {
	switch set {
	case Unrestricted, IBMNative, RigettiNative, IonQNative:
	default:
		return nil, fmt.Errorf("transpile: unknown gate set %v", set)
	}
	out := circuit.New(c.NumQubits)
	for _, g := range c.Gates {
		expand(out, g, set)
	}
	return out, nil
}

// expand appends the native decomposition of g to out, recursing through
// intermediate rewrite steps until every emitted gate is native.
func expand(out *circuit.Circuit, g circuit.Gate, set GateSet) {
	if set.Native(g) {
		out.Append(g)
		return
	}
	for _, h := range rewrite(g, set) {
		expand(out, h, set)
	}
}

// rewrite returns a one-step decomposition of a non-native gate. The rules
// form a terminating rewriting system for each gate set.
func rewrite(g circuit.Gate, set GateSet) []circuit.Gate {
	q, q1 := g.Q0, g.Q1
	switch g.Kind {
	case circuit.SWAP:
		return []circuit.Gate{
			circuit.G2(circuit.CX, q, q1, 0),
			circuit.G2(circuit.CX, q1, q, 0),
			circuit.G2(circuit.CX, q, q1, 0),
		}
	case circuit.RZZ:
		if set == IonQNative {
			// ZZ(θ) = (RY(π/2)⊗RY(π/2)) · XX(θ) · (RY(−π/2)⊗RY(−π/2)).
			return []circuit.Gate{
				circuit.G1(circuit.RY, q, -math.Pi/2),
				circuit.G1(circuit.RY, q1, -math.Pi/2),
				circuit.G2(circuit.XX, q, q1, g.Param),
				circuit.G1(circuit.RY, q, math.Pi/2),
				circuit.G1(circuit.RY, q1, math.Pi/2),
			}
		}
		return []circuit.Gate{
			circuit.G2(circuit.CX, q, q1, 0),
			circuit.G1(circuit.RZ, q1, g.Param),
			circuit.G2(circuit.CX, q, q1, 0),
		}
	case circuit.CX:
		switch set {
		case RigettiNative:
			// CX = H_t · CZ · H_t.
			return []circuit.Gate{
				circuit.G1(circuit.H, q1, 0),
				circuit.G2(circuit.CZ, q, q1, 0),
				circuit.G1(circuit.H, q1, 0),
			}
		case IonQNative:
			// CX = RY(π/2)_c · XX(π/2) · RX(−π/2)_c · RX(−π/2)_t · RY(−π/2)_c.
			return []circuit.Gate{
				circuit.G1(circuit.RY, q, math.Pi/2),
				circuit.G2(circuit.XX, q, q1, math.Pi/2),
				circuit.G1(circuit.RX, q, -math.Pi/2),
				circuit.G1(circuit.RX, q1, -math.Pi/2),
				circuit.G1(circuit.RY, q, -math.Pi/2),
			}
		}
	case circuit.CZ:
		// CZ = H_t · CX · H_t (IBM and IonQ paths).
		return []circuit.Gate{
			circuit.G1(circuit.H, q1, 0),
			circuit.G2(circuit.CX, q, q1, 0),
			circuit.G1(circuit.H, q1, 0),
		}
	case circuit.XX:
		// XX(θ) = (H⊗H) · ZZ(θ) · (H⊗H).
		return []circuit.Gate{
			circuit.G1(circuit.H, q, 0),
			circuit.G1(circuit.H, q1, 0),
			circuit.G2(circuit.RZZ, q, q1, g.Param),
			circuit.G1(circuit.H, q, 0),
			circuit.G1(circuit.H, q1, 0),
		}
	case circuit.H:
		switch set {
		case IBMNative:
			return []circuit.Gate{
				circuit.G1(circuit.RZ, q, math.Pi/2),
				circuit.G1(circuit.SX, q, 0),
				circuit.G1(circuit.RZ, q, math.Pi/2),
			}
		default:
			// H = RZ(π/2) · RX(π/2) · RZ(π/2) (Rigetti, IonQ).
			return []circuit.Gate{
				circuit.G1(circuit.RZ, q, math.Pi/2),
				circuit.G1(circuit.RX, q, math.Pi/2),
				circuit.G1(circuit.RZ, q, math.Pi/2),
			}
		}
	case circuit.X:
		return []circuit.Gate{circuit.G1(circuit.RX, q, math.Pi)}
	case circuit.SX:
		return []circuit.Gate{circuit.G1(circuit.RX, q, math.Pi/2)}
	case circuit.RX:
		if set == IBMNative {
			// RX(θ) = RZ(π/2) · SX · RZ(θ+π) · SX · RZ(π/2) (up to phase).
			return []circuit.Gate{
				circuit.G1(circuit.RZ, q, math.Pi/2),
				circuit.G1(circuit.SX, q, 0),
				circuit.G1(circuit.RZ, q, g.Param+math.Pi),
				circuit.G1(circuit.SX, q, 0),
				circuit.G1(circuit.RZ, q, math.Pi/2),
			}
		}
		// Rigetti, arbitrary angle: RX(θ) = RZ(−π/2)·RX(π/2)·RZ(θ)·RX(−π/2)·RZ(π/2).
		return []circuit.Gate{
			circuit.G1(circuit.RZ, q, math.Pi/2),
			circuit.G1(circuit.RX, q, math.Pi/2),
			circuit.G1(circuit.RZ, q, g.Param),
			circuit.G1(circuit.RX, q, -math.Pi/2),
			circuit.G1(circuit.RZ, q, -math.Pi/2),
		}
	case circuit.RY:
		// RY(θ) = RX(π/2) · RZ(θ) · RX(−π/2) — wait, see tests; use
		// RZ(−π/2)·RX(θ)·RZ(π/2) which holds for all sets handling RX.
		return []circuit.Gate{
			circuit.G1(circuit.RZ, q, -math.Pi/2),
			circuit.G1(circuit.RX, q, g.Param),
			circuit.G1(circuit.RZ, q, math.Pi/2),
		}
	case circuit.RZ:
		// RZ is native everywhere except... it is native in all sets.
		return []circuit.Gate{g}
	}
	// Unreachable for well-formed inputs.
	panic(fmt.Sprintf("transpile: no rewrite rule for %v in %v", g.Kind, set))
}
