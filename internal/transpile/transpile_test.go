package transpile

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"quantumjoin/internal/circuit"
	"quantumjoin/internal/qsim"
	"quantumjoin/internal/topology"
)

// randomState prepares a random product state on n qubits (same for both
// circuits under comparison).
func randomPrep(n int, rng *rand.Rand) []circuit.Gate {
	var gs []circuit.Gate
	for q := 0; q < n; q++ {
		gs = append(gs,
			circuit.G1(circuit.RY, q, rng.Float64()*math.Pi),
			circuit.G1(circuit.RZ, q, rng.Float64()*2*math.Pi))
	}
	return gs
}

// statesEqualUpToPhase compares two states up to a global phase.
func statesEqualUpToPhase(a, b *qsim.State, n int) bool {
	var phase complex128
	found := false
	for i := uint64(0); i < 1<<uint(n); i++ {
		aa, bb := a.Amplitude(i), b.Amplitude(i)
		if cmplx.Abs(aa) < 1e-9 && cmplx.Abs(bb) < 1e-9 {
			continue
		}
		if cmplx.Abs(aa) < 1e-9 || cmplx.Abs(bb) < 1e-9 {
			return false
		}
		if !found {
			phase = bb / aa
			found = true
			continue
		}
		if cmplx.Abs(bb/aa-phase) > 1e-7 {
			return false
		}
	}
	return true
}

// runGates executes a gate list on a fresh n-qubit state.
func runGates(t *testing.T, n int, gs []circuit.Gate) *qsim.State {
	t.Helper()
	s, err := qsim.NewState(n)
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(n)
	c.Append(gs...)
	if err := s.Run(c); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRebaseUnitaryEquivalence verifies every decomposition rule by
// comparing the rebased circuit's action on random states against the
// original, up to global phase.
func TestRebaseUnitaryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gates := []circuit.Gate{
		circuit.G1(circuit.H, 0, 0),
		circuit.G1(circuit.X, 1, 0),
		circuit.G1(circuit.SX, 0, 0),
		circuit.G1(circuit.RX, 1, 0.73),
		circuit.G1(circuit.RY, 0, 1.21),
		circuit.G1(circuit.RZ, 1, 2.5),
		circuit.G2(circuit.CX, 0, 1, 0),
		circuit.G2(circuit.CX, 1, 0, 0),
		circuit.G2(circuit.CZ, 0, 1, 0),
		circuit.G2(circuit.SWAP, 0, 1, 0),
		circuit.G2(circuit.RZZ, 0, 1, 0.9),
		circuit.G2(circuit.XX, 0, 1, 1.3),
	}
	for _, set := range []GateSet{IBMNative, RigettiNative, IonQNative, Unrestricted} {
		for _, g := range gates {
			prep := randomPrep(2, rng)
			orig := circuit.New(2)
			orig.Append(g)
			rebased, err := Rebase(orig, set)
			if err != nil {
				t.Fatal(err)
			}
			for _, rg := range rebased.Gates {
				if !set.Native(rg) {
					t.Fatalf("%v: rebase of %v emitted non-native %v(%v)", set, g.Kind, rg.Kind, rg.Param)
				}
			}
			a := runGates(t, 2, append(append([]circuit.Gate(nil), prep...), g))
			b := runGates(t, 2, append(append([]circuit.Gate(nil), prep...), rebased.Gates...))
			if !statesEqualUpToPhase(a, b, 2) {
				t.Fatalf("%v: decomposition of %v(%v) not equivalent", set, g.Kind, g.Param)
			}
		}
	}
}

func TestRebaseRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		n := 3
		c := circuit.New(n)
		kinds1 := []circuit.Kind{circuit.H, circuit.X, circuit.SX, circuit.RX, circuit.RY, circuit.RZ}
		kinds2 := []circuit.Kind{circuit.CX, circuit.CZ, circuit.SWAP, circuit.RZZ, circuit.XX}
		for i := 0; i < 25; i++ {
			if rng.Float64() < 0.5 {
				c.Append(circuit.G1(kinds1[rng.Intn(len(kinds1))], rng.Intn(n), rng.Float64()*2*math.Pi))
			} else {
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.Append(circuit.G2(kinds2[rng.Intn(len(kinds2))], a, b, rng.Float64()*2*math.Pi))
			}
		}
		for _, set := range []GateSet{IBMNative, RigettiNative, IonQNative} {
			rb, err := Rebase(c, set)
			if err != nil {
				t.Fatal(err)
			}
			a := runGates(t, n, c.Gates)
			b := runGates(t, n, rb.Gates)
			if !statesEqualUpToPhase(a, b, n) {
				t.Fatalf("trial %d: %v rebase changed the unitary", trial, set)
			}
		}
	}
}

func TestRebaseRejectsUnknownSet(t *testing.T) {
	if _, err := Rebase(circuit.New(1), GateSet(77)); err == nil {
		t.Error("accepted unknown gate set")
	}
}

// linearCircuit entangles qubit 0 with every other: needs heavy routing on
// sparse devices.
func linearCircuit(n int) *circuit.Circuit {
	c := circuit.New(n)
	for q := 0; q < n; q++ {
		c.Append(circuit.G1(circuit.H, q, 0))
	}
	for q := 1; q < n; q++ {
		c.Append(circuit.G2(circuit.RZZ, 0, q, 0.5))
	}
	return c
}

func TestRoutingRespectsCoupling(t *testing.T) {
	g := topology.Falcon27()
	for _, r := range []Router{RouterBasic, RouterLookahead} {
		res, err := Transpile(linearCircuit(10), g, Options{Router: r, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, gate := range res.Circuit.Gates {
			if gate.Kind.IsTwoQubit() && !g.HasEdge(gate.Q0, gate.Q1) {
				t.Fatalf("%v: routed gate on uncoupled pair (%d,%d)", r, gate.Q0, gate.Q1)
			}
		}
		if res.Swaps == 0 {
			t.Errorf("%v: expected swaps on sparse topology", r)
		}
	}
}

func TestRoutingPreservesSemantics(t *testing.T) {
	// On a 5-qubit path graph, compare the routed circuit (undoing the
	// final layout with explicit swaps is unnecessary: we evaluate a
	// diagonal observable invariant under relabeling).
	path := topology.NewGraph("path5", 5)
	for i := 0; i+1 < 5; i++ {
		path.AddEdge(i, i+1)
	}
	logical := linearCircuit(5)
	sLog, _ := qsim.NewState(5)
	if err := sLog.Run(logical); err != nil {
		t.Fatal(err)
	}
	for _, r := range []Router{RouterBasic, RouterLookahead} {
		res, err := Transpile(logical, path, Options{Router: r, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		sPhys, _ := qsim.NewState(5)
		if err := sPhys.Run(res.Circuit); err != nil {
			t.Fatal(err)
		}
		// Compare amplitudes after undoing the final layout permutation.
		perm := res.FinalLayout // logical -> physical
		for basis := uint64(0); basis < 32; basis++ {
			var phys uint64
			for l := 0; l < 5; l++ {
				if basis&(1<<uint(l)) != 0 {
					phys |= 1 << uint(perm[l])
				}
			}
			pa := sLog.Probability(basis)
			pb := sPhys.Probability(phys)
			if math.Abs(pa-pb) > 1e-9 {
				t.Fatalf("%v: probability mismatch at basis %b: %v vs %v", r, basis, pa, pb)
			}
		}
	}
}

func TestCompleteMeshNeedsNoSwaps(t *testing.T) {
	g := topology.Complete("ionq", 12)
	res, err := Transpile(linearCircuit(12), g, Options{Router: RouterLookahead, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Swaps != 0 {
		t.Fatalf("complete mesh required %d swaps", res.Swaps)
	}
}

func TestLookaheadBeatsBasicOnAverage(t *testing.T) {
	g := topology.Eagle127()
	c := linearCircuit(18)
	sumBasic, sumLook := 0, 0
	for seed := int64(0); seed < 6; seed++ {
		rb, err := Transpile(c, g, Options{Router: RouterBasic, Seed: seed, GateSet: IBMNative})
		if err != nil {
			t.Fatal(err)
		}
		rl, err := Transpile(c, g, Options{Router: RouterLookahead, Seed: seed, GateSet: IBMNative})
		if err != nil {
			t.Fatal(err)
		}
		sumBasic += rb.Circuit.Depth()
		sumLook += rl.Circuit.Depth()
	}
	if sumLook >= sumBasic {
		t.Fatalf("lookahead avg depth %d not better than basic %d", sumLook/6, sumBasic/6)
	}
}

func TestTranspileErrors(t *testing.T) {
	g := topology.Falcon27()
	if _, err := Transpile(linearCircuit(28), g, Options{}); err == nil {
		t.Error("accepted circuit larger than device")
	}
	disc := topology.NewGraph("disc", 4)
	disc.AddEdge(0, 1)
	if _, err := Transpile(linearCircuit(2), disc, Options{}); err == nil {
		t.Error("accepted disconnected device")
	}
	if _, err := Transpile(linearCircuit(3), g, Options{Layout: []int{0, 0, 1}}); err == nil {
		t.Error("accepted duplicate layout")
	}
	if _, err := Transpile(linearCircuit(3), g, Options{Layout: []int{0, 1}}); err == nil {
		t.Error("accepted short layout")
	}
}

func TestSeedsProduceVariance(t *testing.T) {
	g := topology.Falcon27()
	c := linearCircuit(12)
	depths := map[int]bool{}
	for seed := int64(0); seed < 10; seed++ {
		res, err := Transpile(c, g, Options{Router: RouterLookahead, Seed: seed, GateSet: IBMNative})
		if err != nil {
			t.Fatal(err)
		}
		depths[res.Circuit.Depth()] = true
	}
	if len(depths) < 2 {
		t.Error("transpilation depth shows no seed variance")
	}
}

func TestFixedLayoutIsHonoured(t *testing.T) {
	g := topology.Falcon27()
	layout := []int{5, 8, 11}
	res, err := Transpile(linearCircuit(3), g, Options{Layout: layout, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.InitialLayout {
		if p != layout[i] {
			t.Fatalf("layout not honoured: %v", res.InitialLayout)
		}
	}
}

func TestStringers(t *testing.T) {
	if RouterLookahead.String() != "lookahead" || RouterBasic.String() != "basic" {
		t.Error("router names wrong")
	}
	if IBMNative.String() != "ibm" || Unrestricted.String() != "unrestricted" {
		t.Error("gate set names wrong")
	}
	if Router(9).String() == "" || GateSet(9).String() == "" {
		t.Error("unknown enum renders empty")
	}
}
