// Package transpile maps logical quantum circuits onto hardware: it
// chooses an initial qubit layout, inserts SWAP gates so that every
// two-qubit gate acts on coupled qubits (routing), and rewrites gates into
// a device's native gate set (§2.2.1 "QPU Embedding/Transpilation").
//
// Two routing heuristics of different strength are provided, standing in
// for the two production transpilers the paper compares (Qiskit and tket,
// §6.2): a SABRE-style lookahead router and a plain shortest-path router.
// Like the originals, they are randomized heuristics — repeated runs with
// different seeds spread out over a range of depths (Figure 2).
package transpile

import (
	"context"
	"fmt"
	"math/rand"

	"quantumjoin/internal/circuit"
	"quantumjoin/internal/topology"
)

// Router selects the SWAP-insertion heuristic.
type Router int

const (
	// RouterLookahead is a SABRE-style heuristic scoring candidate swaps
	// against a window of upcoming two-qubit gates ("qiskit-like").
	RouterLookahead Router = iota
	// RouterBasic inserts swaps along a shortest path for each gate
	// independently — a weaker heuristic ("tket-like" stand-in, typically
	// ~2x the lookahead depth on sparse topologies, matching §6.2).
	RouterBasic
)

// String implements fmt.Stringer.
func (r Router) String() string {
	switch r {
	case RouterLookahead:
		return "lookahead"
	case RouterBasic:
		return "basic"
	default:
		return fmt.Sprintf("Router(%d)", int(r))
	}
}

// Options configure a transpilation run.
type Options struct {
	GateSet GateSet
	Router  Router
	// Seed drives layout choice and routing tie-breaks; different seeds
	// model the run-to-run variance of heuristic transpilers.
	Seed int64
	// Layout optionally fixes the initial logical→physical mapping.
	Layout []int
}

// Result is a transpiled circuit with its qubit mappings.
type Result struct {
	// Circuit acts on physical qubit indices of the device graph.
	Circuit *circuit.Circuit
	// InitialLayout maps logical qubit -> physical qubit.
	InitialLayout []int
	// FinalLayout maps logical qubit -> physical qubit after all routing
	// swaps.
	FinalLayout []int
	// Swaps is the number of SWAP operations the router inserted.
	Swaps int
}

// Transpile maps the circuit onto the device graph.
func Transpile(c *circuit.Circuit, g *topology.Graph, opts Options) (*Result, error) {
	return TranspileContext(context.Background(), c, g, opts)
}

// TranspileContext is Transpile with cancellation: the routing loop polls
// the context between gates and between SWAP insertions, so a cancelled
// request (a race loser, an expired deadline) stops burning CPU instead of
// routing the rest of the circuit.
func TranspileContext(ctx context.Context, c *circuit.Circuit, g *topology.Graph, opts Options) (*Result, error) {
	if c.NumQubits > g.N() {
		return nil, fmt.Errorf("transpile: circuit needs %d qubits, device has %d", c.NumQubits, g.N())
	}
	if !g.Connected() {
		return nil, fmt.Errorf("transpile: device graph %q is disconnected", g.Name)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	layout := opts.Layout
	if layout == nil {
		layout = bfsLayout(g, c.NumQubits, rng)
	}
	if err := checkLayout(layout, c.NumQubits, g.N()); err != nil {
		return nil, err
	}
	dist := g.AllPairsDistances()

	routed, final, swaps, err := route(ctx, c, g, dist, layout, opts.Router, rng)
	if err != nil {
		return nil, err
	}
	rebased, err := Rebase(routed, opts.GateSet)
	if err != nil {
		return nil, err
	}
	rebased = FuseSingleQubitGates(rebased)
	return &Result{
		Circuit:       rebased,
		InitialLayout: layout,
		FinalLayout:   final,
		Swaps:         swaps,
	}, nil
}

func checkLayout(layout []int, n, devN int) error {
	if len(layout) != n {
		return fmt.Errorf("transpile: layout has %d entries, circuit has %d qubits", len(layout), n)
	}
	seen := make(map[int]bool, n)
	for _, p := range layout {
		if p < 0 || p >= devN || seen[p] {
			return fmt.Errorf("transpile: invalid layout %v", layout)
		}
		seen[p] = true
	}
	return nil
}

// bfsLayout picks a compact connected region of n physical qubits by
// breadth-first search from a random start — an approximation of a dense
// initial placement whose randomness models layout-stage variance.
func bfsLayout(g *topology.Graph, n int, rng *rand.Rand) []int {
	start := rng.Intn(g.N())
	layout := make([]int, 0, n)
	visited := make([]bool, g.N())
	queue := []int{start}
	visited[start] = true
	for len(queue) > 0 && len(layout) < n {
		v := queue[0]
		queue = queue[1:]
		layout = append(layout, v)
		nbrs := append([]int(nil), g.Neighbors(v)...)
		rng.Shuffle(len(nbrs), func(i, j int) { nbrs[i], nbrs[j] = nbrs[j], nbrs[i] })
		for _, u := range nbrs {
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	// The graph is connected, so BFS always reaches n qubits.
	perm := rng.Perm(len(layout))
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = layout[perm[i]]
	}
	return out
}

// route inserts SWAPs so every two-qubit gate acts on adjacent physical
// qubits. Returns the routed circuit over physical indices, the final
// layout, and the number of swaps inserted; cancellation aborts the loop
// with the context error.
func route(ctx context.Context, c *circuit.Circuit, g *topology.Graph, dist [][]int, initial []int, r Router, rng *rand.Rand) (*circuit.Circuit, []int, int, error) {
	l2p := append([]int(nil), initial...)
	p2l := make(map[int]int, len(l2p))
	for l, p := range l2p {
		p2l[p] = l
	}
	out := circuit.New(g.N())
	swaps := 0

	applySwap := func(pa, pb int) {
		out.Append(circuit.G2(circuit.SWAP, pa, pb, 0))
		swaps++
		la, haveA := p2l[pa]
		lb, haveB := p2l[pb]
		if haveA {
			l2p[la] = pb
			p2l[pb] = la
		} else {
			delete(p2l, pb)
		}
		if haveB {
			l2p[lb] = pa
			p2l[pa] = lb
		} else {
			delete(p2l, pa)
		}
	}

	// Pending two-qubit gates for the lookahead window.
	var future [][2]int
	if r == RouterLookahead {
		for _, gate := range c.Gates {
			if gate.Kind.IsTwoQubit() {
				future = append(future, [2]int{gate.Q0, gate.Q1})
			}
		}
	}
	fi := 0 // index of the current gate within future

	basicStep := func(la, lb int) {
		// Move la one step along a shortest path towards lb.
		pa, pb := l2p[la], l2p[lb]
		for _, u := range g.Neighbors(pa) {
			if dist[u][pb] == dist[pa][pb]-1 {
				applySwap(pa, u)
				return
			}
		}
	}

	for _, gate := range c.Gates {
		if err := ctx.Err(); err != nil {
			return nil, nil, 0, fmt.Errorf("transpile: routing cancelled after %d gates: %w", len(out.Gates), err)
		}
		if !gate.Kind.IsTwoQubit() {
			out.Append(circuit.G1(gate.Kind, l2p[gate.Q0], gate.Param))
			continue
		}
		stall := 0
		bestDist := dist[l2p[gate.Q0]][l2p[gate.Q1]]
		for dist[l2p[gate.Q0]][l2p[gate.Q1]] > 1 {
			if err := ctx.Err(); err != nil {
				return nil, nil, 0, fmt.Errorf("transpile: routing cancelled mid-gate after %d swaps: %w", swaps, err)
			}
			switch {
			case r == RouterBasic || stall >= 2:
				basicStep(gate.Q0, gate.Q1)
			default:
				pa, pb := l2p[gate.Q0], l2p[gate.Q1]
				best := [2]int{-1, -1}
				bestScore := 1e18
				score := func(qa, qb int) float64 {
					// Swap qa<->qb virtually and score the window.
					s := 0.0
					w := 1.0
					count := 0
					for k := fi; k < len(future) && count < 20; k++ {
						la, lb := future[k][0], future[k][1]
						p0, p1 := l2p[la], l2p[lb]
						if p0 == qa {
							p0 = qb
						} else if p0 == qb {
							p0 = qa
						}
						if p1 == qa {
							p1 = qb
						} else if p1 == qb {
							p1 = qa
						}
						s += w * float64(dist[p0][p1])
						w *= 0.7
						count++
					}
					return s
				}
				candidates := make([][2]int, 0, 8)
				for _, u := range g.Neighbors(pa) {
					candidates = append(candidates, [2]int{pa, u})
				}
				for _, u := range g.Neighbors(pb) {
					candidates = append(candidates, [2]int{pb, u})
				}
				rng.Shuffle(len(candidates), func(i, j int) {
					candidates[i], candidates[j] = candidates[j], candidates[i]
				})
				for _, cand := range candidates {
					if s := score(cand[0], cand[1]); s < bestScore {
						bestScore = s
						best = cand
					}
				}
				// Stall detection: if the front gate's distance does not
				// reach a new minimum, fall back to deterministic
				// shortest-path steps (prevents oscillation).
				applySwap(best[0], best[1])
				if d := dist[l2p[gate.Q0]][l2p[gate.Q1]]; d < bestDist {
					bestDist = d
					stall = 0
				} else {
					stall++
				}
			}
		}
		out.Append(circuit.G2(gate.Kind, l2p[gate.Q0], l2p[gate.Q1], gate.Param))
		fi++
	}
	return out, l2p, swaps, nil
}
