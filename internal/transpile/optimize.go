package transpile

import (
	"math"

	"quantumjoin/internal/circuit"
)

// FuseSingleQubitGates is a peephole optimisation pass in the spirit of
// Qiskit's optimisation level 1: consecutive RZ rotations on the same
// qubit are merged, rotations that reduce to the identity are dropped,
// and adjacent self-inverse gate pairs (H·H, X·X, CX·CX, CZ·CZ,
// SWAP·SWAP) cancel. The pass only inspects directly adjacent operations
// per qubit, so it is linear in circuit size and strictly
// unitary-preserving (up to global phase).
func FuseSingleQubitGates(c *circuit.Circuit) *circuit.Circuit {
	gates := append([]circuit.Gate(nil), c.Gates...)
	changed := true
	for changed {
		changed = false
		out := make([]circuit.Gate, 0, len(gates))
		// lastOn[q] = index in out of the most recent gate touching q.
		lastOn := make([]int, c.NumQubits)
		for i := range lastOn {
			lastOn[i] = -1
		}
		push := func(g circuit.Gate) {
			out = append(out, g)
			idx := len(out) - 1
			lastOn[g.Q0] = idx
			if g.Kind.IsTwoQubit() {
				lastOn[g.Q1] = idx
			}
		}
		for _, g := range gates {
			// Drop identity rotations.
			if g.Kind.HasParam() && math.Abs(circuit.NormalizeAngle(g.Param)) < 1e-12 {
				changed = true
				continue
			}
			li := -1
			if !g.Kind.IsTwoQubit() {
				li = lastOn[g.Q0]
			} else if lastOn[g.Q0] >= 0 && lastOn[g.Q0] == lastOn[g.Q1] {
				li = lastOn[g.Q0]
			}
			if li >= 0 {
				prev := out[li]
				switch {
				// Merge same-axis rotations on the same qubit(s).
				case mergeable(prev, g):
					out[li].Param = circuit.NormalizeAngle(prev.Param + g.Param)
					changed = true
					if math.Abs(out[li].Param) < 1e-12 {
						// Became identity: remove (rebuild lastOn next pass).
						out = append(out[:li], out[li+1:]...)
						rebuild(out, lastOn)
					}
					continue
				// Cancel self-inverse pairs.
				case selfInversePair(prev, g):
					out = append(out[:li], out[li+1:]...)
					rebuild(out, lastOn)
					changed = true
					continue
				}
			}
			push(g)
		}
		gates = out
	}
	res := circuit.New(c.NumQubits)
	res.Gates = gates
	return res
}

func mergeable(a, b circuit.Gate) bool {
	if a.Kind != b.Kind || !a.Kind.HasParam() {
		return false
	}
	switch a.Kind {
	case circuit.RX, circuit.RY, circuit.RZ:
		return a.Q0 == b.Q0
	case circuit.RZZ, circuit.XX:
		return (a.Q0 == b.Q0 && a.Q1 == b.Q1) || (a.Q0 == b.Q1 && a.Q1 == b.Q0)
	default:
		return false
	}
}

func selfInversePair(a, b circuit.Gate) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case circuit.H, circuit.X:
		return a.Q0 == b.Q0
	case circuit.CX:
		return a.Q0 == b.Q0 && a.Q1 == b.Q1
	case circuit.CZ, circuit.SWAP:
		return (a.Q0 == b.Q0 && a.Q1 == b.Q1) || (a.Q0 == b.Q1 && a.Q1 == b.Q0)
	default:
		return false
	}
}

func rebuild(out []circuit.Gate, lastOn []int) {
	for i := range lastOn {
		lastOn[i] = -1
	}
	for idx, g := range out {
		lastOn[g.Q0] = idx
		if g.Kind.IsTwoQubit() {
			lastOn[g.Q1] = idx
		}
	}
}
