package transpile

import (
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/circuit"
	"quantumjoin/internal/qsim"
)

func TestFuseMergesRotations(t *testing.T) {
	c := circuit.New(1)
	c.Append(
		circuit.G1(circuit.RZ, 0, 0.3),
		circuit.G1(circuit.RZ, 0, 0.4),
	)
	f := FuseSingleQubitGates(c)
	if len(f.Gates) != 1 {
		t.Fatalf("fused to %d gates, want 1", len(f.Gates))
	}
	if math.Abs(f.Gates[0].Param-0.7) > 1e-12 {
		t.Fatalf("merged angle %v", f.Gates[0].Param)
	}
}

func TestFuseCancelsInverses(t *testing.T) {
	c := circuit.New(2)
	c.Append(
		circuit.G1(circuit.H, 0, 0),
		circuit.G1(circuit.H, 0, 0),
		circuit.G2(circuit.CX, 0, 1, 0),
		circuit.G2(circuit.CX, 0, 1, 0),
		circuit.G1(circuit.RZ, 1, 0.5),
		circuit.G1(circuit.RZ, 1, -0.5),
	)
	f := FuseSingleQubitGates(c)
	if len(f.Gates) != 0 {
		t.Fatalf("expected full cancellation, got %d gates: %v", len(f.Gates), f.Gates)
	}
}

func TestFuseDropsIdentityRotations(t *testing.T) {
	c := circuit.New(1)
	c.Append(circuit.G1(circuit.RX, 0, 0), circuit.G1(circuit.RZ, 0, 2*math.Pi))
	f := FuseSingleQubitGates(c)
	if len(f.Gates) != 0 {
		t.Fatalf("identity rotations survived: %v", f.Gates)
	}
}

func TestFuseRespectsInterveningGates(t *testing.T) {
	// RZ(0)·CX·RZ(0) on different dependencies: the two RZs on qubit 1
	// are separated by a CX touching qubit 1 and must not merge.
	c := circuit.New(2)
	c.Append(
		circuit.G1(circuit.RZ, 1, 0.3),
		circuit.G2(circuit.CX, 0, 1, 0),
		circuit.G1(circuit.RZ, 1, 0.4),
	)
	f := FuseSingleQubitGates(c)
	if len(f.Gates) != 3 {
		t.Fatalf("gates across dependencies merged: %v", f.Gates)
	}
}

func TestFuseSWAPSymmetricCancellation(t *testing.T) {
	c := circuit.New(2)
	c.Append(
		circuit.G2(circuit.SWAP, 0, 1, 0),
		circuit.G2(circuit.SWAP, 1, 0, 0),
	)
	if f := FuseSingleQubitGates(c); len(f.Gates) != 0 {
		t.Fatalf("swapped-operand SWAP pair not cancelled: %v", f.Gates)
	}
	// CX with swapped operands must NOT cancel.
	c2 := circuit.New(2)
	c2.Append(
		circuit.G2(circuit.CX, 0, 1, 0),
		circuit.G2(circuit.CX, 1, 0, 0),
	)
	if f := FuseSingleQubitGates(c2); len(f.Gates) != 2 {
		t.Fatalf("direction-sensitive CX pair wrongly cancelled: %v", f.Gates)
	}
}

func TestFusePreservesUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 3
		c := circuit.New(n)
		k1 := []circuit.Kind{circuit.H, circuit.X, circuit.RX, circuit.RY, circuit.RZ}
		k2 := []circuit.Kind{circuit.CX, circuit.CZ, circuit.RZZ, circuit.SWAP}
		for i := 0; i < 40; i++ {
			if rng.Float64() < 0.6 {
				// Bias towards repeats so merging actually happens.
				q := rng.Intn(n)
				kind := k1[rng.Intn(len(k1))]
				angle := [4]float64{0.3, -0.3, 0, math.Pi}[rng.Intn(4)]
				c.Append(circuit.G1(kind, q, angle))
				if rng.Float64() < 0.5 {
					c.Append(circuit.G1(kind, q, angle))
				}
			} else {
				a := rng.Intn(n)
				b := (a + 1 + rng.Intn(n-1)) % n
				c.Append(circuit.G2(k2[rng.Intn(len(k2))], a, b, 0.7))
			}
		}
		f := FuseSingleQubitGates(c)
		if len(f.Gates) >= len(c.Gates) {
			t.Logf("trial %d: no reduction (%d gates)", trial, len(f.Gates))
		}
		a := runGates(t, n, c.Gates)
		var bState *qsim.State
		if len(f.Gates) == 0 {
			bState = runGates(t, n, nil)
		} else {
			bState = runGates(t, n, f.Gates)
		}
		if !statesEqualUpToPhase(a, bState, n) {
			t.Fatalf("trial %d: fusion changed the unitary", trial)
		}
	}
}

func TestFuseReducesRebasedDepth(t *testing.T) {
	// Rebasing introduces adjacent RZ gates; fusion must shrink them.
	// The QAOA prologue: H then a field rotation RZ on each qubit. The
	// IBM rebase turns H into RZ·SX·RZ whose trailing RZ merges with the
	// field RZ.
	c := circuit.New(3)
	for q := 0; q < 3; q++ {
		c.Append(circuit.G1(circuit.H, q, 0), circuit.G1(circuit.RZ, q, 0.4))
	}
	c.Append(circuit.G2(circuit.RZZ, 0, 1, 0.5), circuit.G2(circuit.RZZ, 1, 2, 0.5))
	for q := 0; q < 3; q++ {
		c.Append(circuit.G1(circuit.RX, q, 0.8), circuit.G1(circuit.RX, q, 0.8))
	}
	rb, err := Rebase(c, IBMNative)
	if err != nil {
		t.Fatal(err)
	}
	fused := FuseSingleQubitGates(rb)
	if len(fused.Gates) >= len(rb.Gates) {
		t.Fatalf("fusion did not reduce gate count: %d vs %d", len(fused.Gates), len(rb.Gates))
	}
	a := runGates(t, 3, rb.Gates)
	b := runGates(t, 3, fused.Gates)
	if !statesEqualUpToPhase(a, b, 3) {
		t.Fatal("fusion after rebase changed the unitary")
	}
}
