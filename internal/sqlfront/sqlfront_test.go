package sqlfront

import (
	"math"
	"strings"
	"testing"
)

func testCatalog() *Catalog {
	return &Catalog{Tables: []Table{
		{Name: "orders", Cardinality: 1500000, Columns: []Column{
			{Name: "o_custkey", Distinct: 100000},
			{Name: "o_status", Distinct: 3},
		}},
		{Name: "customers", Cardinality: 100000, Columns: []Column{
			{Name: "c_custkey", Distinct: 100000},
			{Name: "c_nation", Distinct: 25},
		}},
		{Name: "lineitem", Cardinality: 6000000, Columns: []Column{
			{Name: "l_orderkey", Distinct: 1500000},
		}},
	}}
}

func TestParseImplicitJoins(t *testing.T) {
	sql := `SELECT * FROM orders o, customers c, lineitem l
	        WHERE o.o_custkey = c.c_custkey AND l.l_orderkey = o.o_custkey;`
	res, err := Parse(sql, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	q := res.Query
	if q.NumRelations() != 3 || q.NumPredicates() != 2 {
		t.Fatalf("got %d relations, %d predicates", q.NumRelations(), q.NumPredicates())
	}
	if res.Aliases[0] != "o" || res.Tables[0] != "orders" {
		t.Fatalf("alias mapping wrong: %v / %v", res.Aliases, res.Tables)
	}
	// Join selectivity = 1/max(V(o_custkey), V(c_custkey)) = 1e-5.
	if math.Abs(q.Predicates[0].Sel-1e-5) > 1e-12 {
		t.Fatalf("join selectivity %v, want 1e-5", q.Predicates[0].Sel)
	}
	// No filters: cardinalities match the catalog.
	if q.Relations[0].Card != 1500000 {
		t.Fatalf("orders cardinality %v", q.Relations[0].Card)
	}
}

func TestParseExplicitJoin(t *testing.T) {
	sql := `SELECT o.o_custkey FROM orders AS o
	        INNER JOIN customers AS c ON o.o_custkey = c.c_custkey`
	res, err := Parse(sql, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.NumPredicates() != 1 {
		t.Fatalf("predicates: %d", res.Query.NumPredicates())
	}
}

func TestParseFilterPushdown(t *testing.T) {
	sql := `SELECT * FROM orders o, customers c
	        WHERE o.o_custkey = c.c_custkey AND o.o_status = 'shipped' AND c.c_nation = 'DE'`
	res, err := Parse(sql, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	q := res.Query
	// orders: 1.5e6 / V(o_status)=3 → 5e5; customers: 1e5 / 25 → 4000.
	if math.Abs(q.Relations[0].Card-500000) > 1e-6 {
		t.Fatalf("orders filtered cardinality %v, want 500000", q.Relations[0].Card)
	}
	if math.Abs(q.Relations[1].Card-4000) > 1e-6 {
		t.Fatalf("customers filtered cardinality %v, want 4000", q.Relations[1].Card)
	}
	// The literal filters must not create join predicates.
	if q.NumPredicates() != 1 {
		t.Fatalf("predicates: %d", q.NumPredicates())
	}
}

func TestParseRangeAndInequality(t *testing.T) {
	sql := `SELECT * FROM orders o, customers c
	        WHERE o.o_custkey = c.c_custkey AND o.o_custkey > 42 AND c.c_nation <> 'DE'`
	res, err := Parse(sql, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	q := res.Query
	if math.Abs(q.Relations[0].Card-1500000.0/3) > 1 {
		t.Fatalf("range filter: %v", q.Relations[0].Card)
	}
	if math.Abs(q.Relations[1].Card-100000*24.0/25) > 1 {
		t.Fatalf("inequality filter: %v", q.Relations[1].Card)
	}
}

func TestParseNonEquiJoin(t *testing.T) {
	sql := `SELECT * FROM orders o, customers c WHERE o.o_custkey < c.c_custkey`
	res, err := Parse(sql, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Query.Predicates[0].Sel-1.0/3) > 1e-12 {
		t.Fatalf("non-equi selectivity %v, want 1/3", res.Query.Predicates[0].Sel)
	}
}

func TestParseUncataloguedColumnDefaultsToKey(t *testing.T) {
	sql := `SELECT * FROM orders o, lineitem l WHERE o.unknown_col = l.l_orderkey`
	res, err := Parse(sql, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	// V defaults to the table cardinality: max(1.5e6, 1.5e6) → 1/1.5e6...
	// V(unknown) = card(orders) = 1.5e6, V(l_orderkey) = 1.5e6.
	want := 1 / 1500000.0
	if math.Abs(res.Query.Predicates[0].Sel-want) > 1e-15 {
		t.Fatalf("selectivity %v, want %v", res.Query.Predicates[0].Sel, want)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"not select":        `UPDATE x SET y = 1`,
		"unknown table":     `SELECT * FROM nosuch n, orders o WHERE n.a = o.b`,
		"duplicate alias":   `SELECT * FROM orders o, customers o`,
		"unknown alias":     `SELECT * FROM orders o, customers c WHERE x.a = c.c_custkey`,
		"single relation":   `SELECT * FROM orders`,
		"bare column":       `SELECT * FROM orders o, customers c WHERE o_custkey = c.c_custkey`,
		"literal = literal": `SELECT * FROM orders o, customers c WHERE 1 = 1`,
		"trailing garbage":  `SELECT * FROM orders o, customers c WHERE o.a = c.b GROUP`,
		"unterminated str":  `SELECT * FROM orders o, customers c WHERE o.a = 'x`,
		"bad char":          `SELECT * FROM orders o ? customers c`,
	}
	for name, sql := range cases {
		if _, err := Parse(sql, testCatalog()); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseCaseInsensitive(t *testing.T) {
	sql := `select * from ORDERS o join CUSTOMERS c on o.O_CUSTKEY = c.C_CUSTKEY`
	res, err := Parse(sql, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Query.Predicates[0].Sel-1e-5) > 1e-12 {
		t.Fatal("case-insensitive column lookup failed")
	}
}

func TestParseComments(t *testing.T) {
	sql := "SELECT * -- projection\nFROM orders o, customers c -- tables\nWHERE o.o_custkey = c.c_custkey"
	if _, err := Parse(sql, testCatalog()); err != nil {
		t.Fatal(err)
	}
}

func TestReadCatalog(t *testing.T) {
	doc := `{"tables": [
	  {"name": "t1", "cardinality": 100, "columns": [{"name": "a", "distinct": 10}]},
	  {"name": "t2", "cardinality": 50}
	]}`
	c, err := ReadCatalog(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tables) != 2 {
		t.Fatal("table count wrong")
	}
	tbl, ok := c.lookup("T1")
	if !ok || tbl.distinct("A") != 10 || tbl.distinct("nope") != 100 {
		t.Fatal("lookup/distinct wrong")
	}
}

func TestReadCatalogErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":        `{`,
		"unknown field":   `{"tables": [{"name": "a", "cardinality": 10, "rows": 1}]}`,
		"no name":         `{"tables": [{"cardinality": 10}]}`,
		"dup table":       `{"tables": [{"name": "a", "cardinality": 10}, {"name": "A", "cardinality": 10}]}`,
		"zero card":       `{"tables": [{"name": "a", "cardinality": 0}]}`,
		"unnamed column":  `{"tables": [{"name": "a", "cardinality": 10, "columns": [{"distinct": 5}]}]}`,
		"dup column":      `{"tables": [{"name": "a", "cardinality": 10, "columns": [{"name": "x", "distinct": 5}, {"name": "X", "distinct": 5}]}]}`,
		"distinct > card": `{"tables": [{"name": "a", "cardinality": 10, "columns": [{"name": "x", "distinct": 50}]}]}`,
		"zero distinct":   `{"tables": [{"name": "a", "cardinality": 10, "columns": [{"name": "x", "distinct": 0}]}]}`,
	}
	for name, doc := range cases {
		if _, err := ReadCatalog(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// End to end: the parsed instance is directly optimisable.
func TestParsedQueryIsOptimisable(t *testing.T) {
	sql := `SELECT * FROM orders o, customers c, lineitem l
	        WHERE o.o_custkey = c.c_custkey AND l.l_orderkey = o.o_custkey
	          AND c.c_nation = 'DE'`
	res, err := Parse(sql, testCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Query.Validate(); err != nil {
		t.Fatal(err)
	}
	// The cheapest first join must involve the filtered customers table.
	cost01 := res.Query.Cost([]int{0, 1, 2})
	cost12 := res.Query.Cost([]int{1, 0, 2})
	if math.IsNaN(cost01) || math.IsNaN(cost12) {
		t.Fatal("cost model returned NaN")
	}
}
