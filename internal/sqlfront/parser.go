package sqlfront

import (
	"fmt"
	"math"
	"strings"

	"quantumjoin/internal/join"
)

// ParsedQuery is the optimiser-ready result of parsing a SQL statement:
// the join ordering instance plus the alias bookkeeping needed to render
// plans back in the user's vocabulary.
type ParsedQuery struct {
	// Query has one relation per FROM item; cardinalities reflect the
	// catalog cardinality scaled by the selectivity of local filter
	// predicates (pushed-down selections), and one predicate per
	// join-column pair.
	Query *join.Query
	// Aliases holds the FROM-clause alias (or table name) per relation.
	Aliases []string
	// Tables holds the underlying catalog table per relation.
	Tables []string
}

// Parse parses the SELECT-FROM-WHERE join-ordering fragment of SQL and
// estimates cardinalities/selectivities against the catalog.
//
// Supported grammar (case-insensitive keywords):
//
//	SELECT (* | col {, col}) FROM item {, item | [INNER] JOIN item [ON conj]}
//	  [WHERE conj] [;]
//	item := table [[AS] alias]
//	conj := pred {AND pred}
//	pred := operand (= | <> | < | > | <= | >=) operand
//	operand := alias.column | number | 'string'
//
// Equality predicates between columns of two relations become join
// predicates with selectivity 1/max(V(a), V(b)); predicates against
// literals are pushed down into the relation's effective cardinality
// (equality: 1/V(col); ranges: 1/3; inequality: (V−1)/V — the classic
// System-R estimates).
func Parse(sql string, cat *Catalog) (*ParsedQuery, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, cat: cat}
	res, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := res.Query.Validate(); err != nil {
		return nil, fmt.Errorf("sqlfront: estimated instance invalid: %w", err)
	}
	return res, nil
}

type parser struct {
	toks []token
	pos  int
	cat  *Catalog

	aliases []string
	tables  []*Table
	// filterSel accumulates pushed-down filter selectivity per relation.
	filterSel []float64
	preds     []join.Predicate
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expectSymbol(s string) error {
	if t := p.cur(); t.kind == tokSymbol && t.text == s {
		p.pos++
		return nil
	}
	return fmt.Errorf("sqlfront: expected %q at position %d, found %q", s, p.cur().pos, p.cur().text)
}

func (p *parser) expectKeyword(kw string) error {
	if p.cur().keyword(kw) {
		p.pos++
		return nil
	}
	return fmt.Errorf("sqlfront: expected %s at position %d, found %q", strings.ToUpper(kw), p.cur().pos, p.cur().text)
}

func (p *parser) parseQuery() (*ParsedQuery, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	if err := p.parseSelectList(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.parseFromItem(); err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case t.kind == tokSymbol && t.text == ",":
			p.pos++
			if err := p.parseFromItem(); err != nil {
				return nil, err
			}
		case t.keyword("inner"):
			p.pos++
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			if err := p.parseJoinItem(); err != nil {
				return nil, err
			}
		case t.keyword("join"):
			p.pos++
			if err := p.parseJoinItem(); err != nil {
				return nil, err
			}
		default:
			goto fromDone
		}
	}
fromDone:
	if p.cur().keyword("where") {
		p.pos++
		if err := p.parseConjunction(); err != nil {
			return nil, err
		}
	}
	if t := p.cur(); t.kind == tokSymbol && t.text == ";" {
		p.pos++
	}
	if t := p.cur(); t.kind != tokEOF {
		return nil, fmt.Errorf("sqlfront: trailing input at position %d: %q", t.pos, t.text)
	}
	return p.finish()
}

func (p *parser) parseSelectList() error {
	if t := p.cur(); t.kind == tokSymbol && t.text == "*" {
		p.pos++
		return nil
	}
	for {
		if t := p.cur(); t.kind != tokIdent {
			return fmt.Errorf("sqlfront: expected column at position %d", t.pos)
		}
		p.pos++
		// Optional qualified form alias.column.
		if t := p.cur(); t.kind == tokSymbol && t.text == "." {
			p.pos++
			if t := p.cur(); t.kind != tokIdent {
				return fmt.Errorf("sqlfront: expected column after '.' at position %d", t.pos)
			}
			p.pos++
		}
		if t := p.cur(); t.kind == tokSymbol && t.text == "," {
			p.pos++
			continue
		}
		return nil
	}
}

func (p *parser) parseFromItem() error {
	t := p.cur()
	if t.kind != tokIdent {
		return fmt.Errorf("sqlfront: expected table name at position %d", t.pos)
	}
	p.pos++
	tableName := t.text
	alias := tableName
	if p.cur().keyword("as") {
		p.pos++
		a := p.cur()
		if a.kind != tokIdent {
			return fmt.Errorf("sqlfront: expected alias after AS at position %d", a.pos)
		}
		alias = a.text
		p.pos++
	} else if a := p.cur(); a.kind == tokIdent && !isReserved(a.text) {
		alias = a.text
		p.pos++
	}
	tbl, ok := p.cat.lookup(tableName)
	if !ok {
		return fmt.Errorf("sqlfront: unknown table %q", tableName)
	}
	for _, existing := range p.aliases {
		if strings.EqualFold(existing, alias) {
			return fmt.Errorf("sqlfront: duplicate alias %q", alias)
		}
	}
	p.aliases = append(p.aliases, alias)
	p.tables = append(p.tables, tbl)
	p.filterSel = append(p.filterSel, 1)
	return nil
}

// parseJoinItem handles JOIN item [ON conj].
func (p *parser) parseJoinItem() error {
	if err := p.parseFromItem(); err != nil {
		return err
	}
	if p.cur().keyword("on") {
		p.pos++
		return p.parseConjunction()
	}
	return nil
}

func (p *parser) parseConjunction() error {
	for {
		if err := p.parsePredicate(); err != nil {
			return err
		}
		if p.cur().keyword("and") {
			p.pos++
			continue
		}
		return nil
	}
}

type operand struct {
	isColumn bool
	rel      int // relation index for columns
	column   string
	pos      int
}

func (p *parser) parseOperand() (operand, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber, tokString:
		p.pos++
		return operand{pos: t.pos}, nil
	case tokIdent:
		p.pos++
		if dot := p.cur(); !(dot.kind == tokSymbol && dot.text == ".") {
			return operand{}, fmt.Errorf("sqlfront: expected qualified column (alias.column) at position %d", t.pos)
		}
		p.pos++
		col := p.cur()
		if col.kind != tokIdent {
			return operand{}, fmt.Errorf("sqlfront: expected column after '.' at position %d", col.pos)
		}
		p.pos++
		rel := -1
		for i, a := range p.aliases {
			if strings.EqualFold(a, t.text) {
				rel = i
				break
			}
		}
		if rel < 0 {
			return operand{}, fmt.Errorf("sqlfront: unknown alias %q at position %d", t.text, t.pos)
		}
		return operand{isColumn: true, rel: rel, column: col.text, pos: t.pos}, nil
	default:
		return operand{}, fmt.Errorf("sqlfront: expected operand at position %d, found %q", t.pos, t.text)
	}
}

func (p *parser) parsePredicate() error {
	left, err := p.parseOperand()
	if err != nil {
		return err
	}
	op := p.cur()
	if op.kind != tokCompare {
		return fmt.Errorf("sqlfront: expected comparison at position %d, found %q", op.pos, op.text)
	}
	p.pos++
	right, err := p.parseOperand()
	if err != nil {
		return err
	}
	switch {
	case left.isColumn && right.isColumn && left.rel != right.rel:
		// Join predicate.
		sel := 1.0 / 3 // non-equality column comparison (System-R default)
		if op.text == "=" {
			v1 := p.tables[left.rel].distinct(left.column)
			v2 := p.tables[right.rel].distinct(right.column)
			sel = 1 / math.Max(v1, v2)
		}
		p.preds = append(p.preds, join.Predicate{R1: left.rel, R2: right.rel, Sel: clampSel(sel)})
	case left.isColumn != right.isColumn:
		// Filter against a literal: push down.
		col := left
		if right.isColumn {
			col = right
		}
		v := p.tables[col.rel].distinct(col.column)
		var sel float64
		switch op.text {
		case "=":
			sel = 1 / v
		case "<>":
			sel = (v - 1) / v
		default:
			sel = 1.0 / 3
		}
		p.filterSel[col.rel] *= clampSel(sel)
	case left.isColumn && right.isColumn && left.rel == right.rel:
		// Same-relation column comparison: a local filter (use 1/3).
		p.filterSel[left.rel] *= 1.0 / 3
	default:
		return fmt.Errorf("sqlfront: predicate between two literals at position %d", op.pos)
	}
	return nil
}

func clampSel(s float64) float64 {
	if s <= 0 {
		return 1e-12
	}
	if s > 1 {
		return 1
	}
	return s
}

func (p *parser) finish() (*ParsedQuery, error) {
	if len(p.tables) < 2 {
		return nil, fmt.Errorf("sqlfront: join ordering needs at least two relations, got %d", len(p.tables))
	}
	q := &join.Query{}
	res := &ParsedQuery{Query: q}
	for i, tbl := range p.tables {
		card := math.Max(1, tbl.Cardinality*p.filterSel[i])
		q.Relations = append(q.Relations, join.Relation{Name: p.aliases[i], Card: card})
		res.Aliases = append(res.Aliases, p.aliases[i])
		res.Tables = append(res.Tables, tbl.Name)
	}
	q.Predicates = append(q.Predicates, p.preds...)
	return res, nil
}

func isReserved(word string) bool {
	switch strings.ToLower(word) {
	case "where", "join", "inner", "on", "and", "as", "select", "from":
		return true
	default:
		return false
	}
}
