// Package sqlfront is a minimal SQL front end for the join ordering
// pipeline, realising the paper's Figure 1 architecture: a parser feeds
// the (quantum) join order optimiser. It supports the SELECT-FROM-WHERE
// fragment relevant to join ordering — implicit join lists, explicit
// INNER JOIN ... ON, equality join predicates, and literal filter
// predicates — and resolves cardinalities and selectivities against a
// catalog using the classic System-R estimation rules (1/V(col) for
// equality, containment of value sets for joins).
package sqlfront

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol  // single-character punctuation: , . ( ) ; *
	tokCompare // = < > <= >= <>
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenises a SQL string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex splits the input into tokens, or reports the offending position.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		case unicode.IsDigit(rune(c)):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case strings.ContainsRune(",.();*", rune(c)):
			l.toks = append(l.toks, token{tokSymbol, string(c), l.pos})
			l.pos++
		case c == '=' || c == '<' || c == '>':
			l.lexCompare()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Line comment.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return nil, fmt.Errorf("sqlfront: unexpected character %q at position %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", l.pos})
	return l.toks, nil
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{tokIdent, l.src[start:l.pos], start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				return fmt.Errorf("sqlfront: malformed number at position %d", start)
			}
			seenDot = true
			l.pos++
			continue
		}
		if c == 'e' || c == 'E' {
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) && l.src[l.pos] != '\'' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("sqlfront: unterminated string starting at position %d", start)
	}
	l.pos++ // closing quote
	l.toks = append(l.toks, token{tokString, l.src[start+1 : l.pos-1], start})
	return nil
}

func (l *lexer) lexCompare() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	if l.pos < len(l.src) {
		two := string(c) + string(l.src[l.pos])
		switch two {
		case "<=", ">=", "<>":
			l.pos++
			l.toks = append(l.toks, token{tokCompare, two, start})
			return
		}
	}
	l.toks = append(l.toks, token{tokCompare, string(c), start})
}

// keyword reports whether the token is the given (case-insensitive)
// keyword.
func (t token) keyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
