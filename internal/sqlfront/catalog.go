package sqlfront

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Catalog holds the statistics the optimiser needs: per-table
// cardinalities and per-column distinct-value counts.
type Catalog struct {
	Tables []Table `json:"tables"`
}

// Table describes one base relation.
type Table struct {
	Name        string   `json:"name"`
	Cardinality float64  `json:"cardinality"`
	Columns     []Column `json:"columns,omitempty"`
}

// Column carries the distinct-value count V(col) used by the System-R
// selectivity rules.
type Column struct {
	Name     string  `json:"name"`
	Distinct float64 `json:"distinct"`
}

// ReadCatalog parses a statistics catalog from JSON.
func ReadCatalog(r io.Reader) (*Catalog, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Catalog
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("sqlfront: parsing catalog: %w", err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Validate checks structural soundness.
func (c *Catalog) Validate() error {
	seen := map[string]bool{}
	for i, t := range c.Tables {
		name := strings.ToLower(t.Name)
		if name == "" {
			return fmt.Errorf("sqlfront: table %d has no name", i)
		}
		if seen[name] {
			return fmt.Errorf("sqlfront: duplicate table %q", t.Name)
		}
		seen[name] = true
		if t.Cardinality < 1 {
			return fmt.Errorf("sqlfront: table %q has cardinality %v < 1", t.Name, t.Cardinality)
		}
		cols := map[string]bool{}
		for _, col := range t.Columns {
			cn := strings.ToLower(col.Name)
			if cn == "" {
				return fmt.Errorf("sqlfront: table %q has an unnamed column", t.Name)
			}
			if cols[cn] {
				return fmt.Errorf("sqlfront: table %q: duplicate column %q", t.Name, col.Name)
			}
			cols[cn] = true
			if col.Distinct < 1 {
				return fmt.Errorf("sqlfront: column %s.%s has distinct count %v < 1", t.Name, col.Name, col.Distinct)
			}
			if col.Distinct > t.Cardinality {
				return fmt.Errorf("sqlfront: column %s.%s has more distinct values (%v) than rows (%v)",
					t.Name, col.Name, col.Distinct, t.Cardinality)
			}
		}
	}
	return nil
}

// lookup finds a table by (case-insensitive) name.
func (c *Catalog) lookup(name string) (*Table, bool) {
	for i := range c.Tables {
		if strings.EqualFold(c.Tables[i].Name, name) {
			return &c.Tables[i], true
		}
	}
	return nil, false
}

// distinct returns V(col) for a table column, defaulting to the table
// cardinality (unique values) when the column is not catalogued — the
// conservative System-R fallback for keys.
func (t *Table) distinct(col string) float64 {
	for _, c := range t.Columns {
		if strings.EqualFold(c.Name, col) {
			return c.Distinct
		}
	}
	return t.Cardinality
}
