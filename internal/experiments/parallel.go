package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEach runs fn(0)..fn(n-1) over a bounded worker pool of cfg.Workers
// goroutines (0 selects GOMAXPROCS) and returns the lowest-index error.
// Tasks must be independent: every harness below gives each task its own
// derived RNG seed and writes results into its own slot of a pre-sized
// slice, so the output is bit-identical to the serial order regardless of
// the worker count or scheduling.
func (c Config) forEach(n int, fn func(i int) error) error {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
