package experiments

import (
	"context"
	"fmt"
	"io"

	"quantumjoin/internal/noise"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/qaoa"
	"quantumjoin/internal/stats"
	"quantumjoin/internal/topology"
	"quantumjoin/internal/transpile"
)

// Figure2Row is one boxplot of Figure 2: transpiled QAOA circuit depths
// over repeated heuristic transpilations for one scenario.
type Figure2Row struct {
	Panel    string // "precision", "predicates", "device"
	Label    string // e.g. "ω=0.01", "3 predicates", "washington/3 pred"
	Device   string
	Qubits   int
	Depths   stats.Boxplot
	Runs     int
	Budget   int  // coherence depth budget d = min(T1,T2)/g_avg
	Feasible bool // median depth within budget
}

// Figure2Result covers both panels of Figure 2 plus the coherence budgets.
type Figure2Result struct {
	Rows []Figure2Row
}

// RunFigure2 reproduces Figure 2: the left panel varies discretisation
// precision (0–3 decimals, 0 predicates) and predicate count (0–3, ω = 1)
// on the 27-qubit Falcon topology; the right panel compares predicate
// scenarios between Falcon (Auckland) and Eagle (Washington).
func RunFigure2(cfg Config) (*Figure2Result, error) {
	ctx, root := obs.StartSpan(cfg.traceCtx(), "figure2")
	res, err := runFigure2(ctx, cfg)
	root.End(err)
	return res, err
}

func runFigure2(ctx context.Context, cfg Config) (*Figure2Result, error) {
	falcon := topology.Falcon27()
	eagle := topology.Eagle127()
	auckland := noise.Auckland()
	washington := noise.Washington()
	res := &Figure2Result{}

	measure := func(predicates, decimals int, dev *topology.Graph, cal noise.Calibration, panel, label string) error {
		enc, err := paperEncoding(ctx, predicates, decimals)
		if err != nil {
			return err
		}
		params := qaoa.NewParams(1)
		params.Gammas[0] = 0.35
		params.Betas[0] = 0.6
		logical := qaoa.BuildCircuit(enc.QUBO, params)
		// Repetitions are independent (per-run seed) and fan out over the
		// worker pool; each writes its own slot, keeping results identical
		// to the serial order.
		ds := make([]float64, cfg.TranspileRuns)
		if err := cfg.forEach(cfg.TranspileRuns, func(run int) error {
			_, span := obs.StartSpan(ctx, "transpile")
			tr, err := transpile.Transpile(logical, dev, transpile.Options{
				GateSet: transpile.IBMNative,
				Router:  transpile.RouterLookahead,
				Seed:    cfg.Seed + int64(run)*7919,
			})
			span.End(err)
			if err != nil {
				return err
			}
			ds[run] = float64(tr.Circuit.Depth())
			return nil
		}); err != nil {
			return err
		}
		box := stats.Summarize(ds)
		res.Rows = append(res.Rows, Figure2Row{
			Panel: panel, Label: label, Device: dev.Name,
			Qubits: enc.NumQubits(), Depths: box, Runs: cfg.TranspileRuns,
			Budget: cal.MaxDepth(), Feasible: box.Median <= float64(cal.MaxDepth()),
		})
		return nil
	}

	// Left panel, precision series (0 predicates, 0–3 decimals).
	for d := 0; d <= 3; d++ {
		if err := measure(0, d, falcon, auckland, "precision", fmt.Sprintf("ω=1e-%d", d)); err != nil {
			return nil, err
		}
	}
	// Left panel, predicate series (ω = 1, 0–3 predicates).
	for p := 0; p <= 3; p++ {
		if err := measure(p, 0, falcon, auckland, "predicates", fmt.Sprintf("%d predicates", p)); err != nil {
			return nil, err
		}
	}
	// Right panel: Falcon vs Eagle across predicate scenarios.
	for p := 0; p <= 3; p++ {
		if err := measure(p, 0, falcon, auckland, "device", fmt.Sprintf("auckland/%dp", p)); err != nil {
			return nil, err
		}
		if err := measure(p, 0, eagle, washington, "device", fmt.Sprintf("washington/%dp", p)); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Write renders the depth distributions.
func (r *Figure2Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Figure 2: QAOA circuit depths after transpilation (boxplots over repeated runs)")
	fmt.Fprintf(w, "%-12s %-16s %-18s %7s %8s %8s %8s %8s %8s %7s %s\n",
		"panel", "scenario", "device", "qubits", "min", "q1", "median", "q3", "max", "budget", "fits")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %-16s %-18s %7d %8.0f %8.0f %8.0f %8.0f %8.0f %7d %v\n",
			row.Panel, row.Label, row.Device, row.Qubits,
			row.Depths.Min, row.Depths.Q1, row.Depths.Median, row.Depths.Q3, row.Depths.Max,
			row.Budget, row.Feasible)
	}
}

// MedianFor returns the median depth of the first row matching panel and
// label (helper for tests and EXPERIMENTS.md assertions).
func (r *Figure2Result) MedianFor(panel, label string) (float64, bool) {
	for _, row := range r.Rows {
		if row.Panel == panel && row.Label == label {
			return row.Depths.Median, true
		}
	}
	return 0, false
}
