package experiments

import (
	"context"
	"fmt"
	"io"

	"math/rand"

	"quantumjoin/internal/obs"
	"quantumjoin/internal/querygen"
)

// Figure3Row records one embedding attempt onto the Pegasus hardware
// graph.
type Figure3Row struct {
	Panel          string // "relations" or "precision"
	Graph          querygen.GraphType
	Relations      int
	Thresholds     int
	Omega          float64
	LogicalQubits  int
	PhysicalQubits int // 0 when embedding failed
	MaxChain       int
	OK             bool
}

// Figure3Result covers both panels of Figure 3.
type Figure3Result struct {
	Rows []Figure3Row
}

// RunFigure3 reproduces Figure 3: physical qubits needed to embed JO
// QUBOs onto the Pegasus topology. The top panel sweeps relations for
// chain/star/cycle graphs at minimum precision (one threshold, ω = 1);
// the bottom panel fixes the relations and sweeps the threshold count for
// ω ∈ {1, 0.01, 0.0001}, locating the feasibility frontier.
func RunFigure3(cfg Config) (*Figure3Result, error) {
	ctx, root := obs.StartSpan(cfg.traceCtx(), "figure3")
	res, err := runFigure3(ctx, cfg)
	root.End(err)
	return res, err
}

func runFigure3(ctx context.Context, cfg Config) (*Figure3Result, error) {
	dev := cfg.AnnealDevice()

	embed := func(rng *rand.Rand, panel string, g querygen.GraphType, relations, thresholds int, omega float64) (Figure3Row, error) {
		_, enc, err := randomInstance(ctx, relations, g, thresholds, omega, rng)
		if err != nil {
			return Figure3Row{}, err
		}
		row := Figure3Row{
			Panel: panel, Graph: g, Relations: relations,
			Thresholds: thresholds, Omega: omega,
			LogicalQubits: enc.NumQubits(),
		}
		// A failed embedding is a frontier probe, not a fault: the span
		// ends clean and the row records OK=false.
		_, span := obs.StartSpan(ctx, "embed")
		emb, err := dev.EmbedOnly(enc.QUBO, cfg.Seed+int64(relations*100+thresholds))
		span.SetAttr("ok", err == nil)
		span.End(nil)
		if err == nil {
			row.OK = true
			row.PhysicalQubits = emb.PhysicalQubits()
			row.MaxChain = emb.MaxChainLength()
		}
		return row, nil
	}

	// The figure is six independent sweeps — three graph types for the
	// relations panel and three precisions for the thresholds panel. Each
	// sweep is sequential inside (it stops at its first failure: that
	// failure is the feasibility frontier the figure locates, and anything
	// beyond it is equally infeasible on the hardware), draws instances
	// from its own derived RNG stream, and fans out over the worker pool.
	graphs := []querygen.GraphType{querygen.Chain, querygen.Star, querygen.Cycle}
	omegas := []float64{1, 0.01, 0.0001}
	sweeps := make([][]Figure3Row, len(graphs)+len(omegas))
	err := cfg.forEach(len(sweeps), func(i int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i)*9973))
		if i < len(graphs) {
			g := graphs[i]
			for _, n := range cfg.EmbedRelations {
				if g == querygen.Cycle && n < 3 {
					continue
				}
				row, err := embed(rng, "relations", g, n, 1, 1)
				if err != nil {
					return err
				}
				sweeps[i] = append(sweeps[i], row)
				if !row.OK {
					break
				}
			}
			return nil
		}
		omega := omegas[i-len(graphs)]
		for r := 1; r <= cfg.EmbedMaxThresholds; r++ {
			row, err := embed(rng, "precision", querygen.Chain, cfg.EmbedFixedRelations, r, omega)
			if err != nil {
				return err
			}
			sweeps[i] = append(sweeps[i], row)
			if !row.OK {
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{}
	for _, rows := range sweeps {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// Write renders both panels.
func (r *Figure3Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Figure 3: physical qubits to embed JO onto Pegasus")
	fmt.Fprintf(w, "%-10s %-7s %9s %10s %8s %8s %9s %9s\n",
		"panel", "graph", "relations", "thresholds", "omega", "logical", "physical", "maxchain")
	for _, row := range r.Rows {
		phys := "-"
		chain := "-"
		if row.OK {
			phys = fmt.Sprintf("%d", row.PhysicalQubits)
			chain = fmt.Sprintf("%d", row.MaxChain)
		}
		fmt.Fprintf(w, "%-10s %-7s %9d %10d %8g %8d %9s %9s\n",
			row.Panel, row.Graph, row.Relations, row.Thresholds, row.Omega,
			row.LogicalQubits, phys, chain)
	}
}

// OverheadFactor returns physical/logical qubit ratios of successful
// top-panel rows — the paper's "merely a linear qubit overhead" check.
func (r *Figure3Result) OverheadFactor() []float64 {
	var out []float64
	for _, row := range r.Rows {
		if row.Panel == "relations" && row.OK && row.LogicalQubits > 0 {
			out = append(out, float64(row.PhysicalQubits)/float64(row.LogicalQubits))
		}
	}
	return out
}

// MaxFeasibleThresholds returns, per ω of the bottom panel, the largest
// threshold count that still embedded.
func (r *Figure3Result) MaxFeasibleThresholds() map[float64]int {
	out := map[float64]int{}
	for _, row := range r.Rows {
		if row.Panel == "precision" && row.OK && row.Thresholds > out[row.Omega] {
			out[row.Omega] = row.Thresholds
		}
	}
	return out
}
