package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"quantumjoin/internal/core"
	"quantumjoin/internal/querygen"
)

// Figure4Row is one point of the logical-qubit bound sweep.
type Figure4Row struct {
	Relations  int
	Thresholds int
	Decimals   int
	Bound      int
}

// Figure4Result is the full sweep.
type Figure4Result struct {
	Rows []Figure4Row
}

// RunFigure4 reproduces Figure 4: the Theorem 5.3 upper bound on logical
// qubits for cycle queries (the most demanding graph type) with up to
// cfg.BoundMaxRelations relations, for threshold counts {1, 2, 5, 10, 20}
// and discretisation precisions of 0–4 decimal digits.
func RunFigure4(cfg Config) (*Figure4Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Figure4Result{}
	for n := 3; n <= cfg.BoundMaxRelations; n++ {
		q, err := querygen.Generate(querygen.Config{
			Relations: n, Graph: querygen.Cycle, IntegerLog: true,
			MinLogCard: 1, MaxLogCard: 5, MinLogSel: 1, MaxLogSel: 2,
		}, rng)
		if err != nil {
			return nil, err
		}
		for _, r := range []int{1, 2, 5, 10, 20} {
			for _, d := range []int{0, 1, 2, 3, 4} {
				bound := core.UpperBound(q, r, math.Pow(10, -float64(d))).Total()
				res.Rows = append(res.Rows, Figure4Row{
					Relations: n, Thresholds: r, Decimals: d, Bound: bound,
				})
			}
		}
	}
	return res, nil
}

// Write renders a condensed view (full resolution is in Rows).
func (r *Figure4Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: Theorem 5.3 upper bound on logical qubits (cycle queries)")
	fmt.Fprintf(w, "%-9s %10s %8s %10s\n", "relations", "thresholds", "decimals", "bound")
	for _, row := range r.Rows {
		if row.Relations%8 != 0 && row.Relations != 3 && row.Relations != 13 {
			continue // condensed output; full data in Rows
		}
		fmt.Fprintf(w, "%-9d %10d %8d %10d\n", row.Relations, row.Thresholds, row.Decimals, row.Bound)
	}
}

// BoundFor returns the bound for a specific configuration.
func (r *Figure4Result) BoundFor(relations, thresholds, decimals int) (int, bool) {
	for _, row := range r.Rows {
		if row.Relations == relations && row.Thresholds == thresholds && row.Decimals == decimals {
			return row.Bound, true
		}
	}
	return 0, false
}

// MaxRelationsWithin returns the largest relation count whose bound fits
// the given qubit budget at the given precision — the paper's "a QPU with
// 1000 logical qubits can solve problems with up to 13 relations".
func (r *Figure4Result) MaxRelationsWithin(budget, thresholds, decimals int) int {
	best := 0
	for _, row := range r.Rows {
		if row.Thresholds == thresholds && row.Decimals == decimals &&
			row.Bound <= budget && row.Relations > best {
			best = row.Relations
		}
	}
	return best
}
