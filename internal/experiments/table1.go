package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"quantumjoin/internal/core"
	"quantumjoin/internal/querygen"
)

// Table1Row compares one variable or constraint type between the original
// Trummer/Koch-style model and the paper's pruned model (§3.2, Table 1).
type Table1Row struct {
	Kind     string // "constraint" or "variable"
	Type     string
	FormulaO string // closed form, original
	FormulaP string // closed form, pruned
	CountO   int    // measured on the built model
	CountP   int
	QubitsO  int // total qubits of the full encodings (context columns)
	QubitsP  int
}

// Table1Result is the full comparison for one concrete instance.
type Table1Result struct {
	Relations, Joins, Predicates, Thresholds int
	Rows                                     []Table1Row
	QubitsOriginal, QubitsPruned             int
}

// RunTable1 builds both models for a representative cycle query and
// tallies per-type counts against the closed forms of Table 1.
func RunTable1(cfg Config) (*Table1Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	q, err := querygen.Generate(querygen.Config{
		Relations: 6, Graph: querygen.Cycle, IntegerLog: true,
		MinLogCard: 1, MaxLogCard: 3, MinLogSel: 1, MaxLogSel: 2,
	}, rng)
	if err != nil {
		return nil, err
	}
	const r = 2
	th := core.DefaultThresholds(q, r)
	orig, err := core.Encode(q, core.Options{Thresholds: th, Omega: 1, Original: true})
	if err != nil {
		return nil, err
	}
	pruned, err := core.Encode(q, core.Options{Thresholds: th, Omega: 1})
	if err != nil {
		return nil, err
	}
	co, cp := orig.Counts(), pruned.Counts()
	t, j, p := q.NumRelations(), q.NumJoins(), q.NumPredicates()
	res := &Table1Result{
		Relations: t, Joins: j, Predicates: p, Thresholds: r,
		QubitsOriginal: orig.NumQubits(), QubitsPruned: pruned.NumQubits(),
	}
	res.Rows = []Table1Row{
		{"constraint", "tio+tii<=1", "TJ", "T", co.DisjointCons, cp.DisjointCons, 0, 0},
		{"constraint", "pao<=tio (x2)", "2PJ", "2P(J-1)", co.PAOCons, cp.PAOCons, 0, 0},
		{"constraint", "threshold (Eq.7)", "RJ", "<=R(J-1)", co.ThresholdCons, cp.ThresholdCons, 0, 0},
		{"variable", "pao", "PJ", "P(J-1)", co.PAOVars, cp.PAOVars, 0, 0},
		{"variable", "cto", "RJ", "<=R(J-1)", co.CTOVars, cp.CTOVars, 0, 0},
	}
	return res, nil
}

// Write renders the comparison as the paper's Table 1 layout.
func (r *Table1Result) Write(w io.Writer) {
	fmt.Fprintf(w, "Table 1: original vs pruned model (T=%d, J=%d, P=%d, R=%d)\n",
		r.Relations, r.Joins, r.Predicates, r.Thresholds)
	fmt.Fprintf(w, "%-12s %-18s %10s %10s %10s %10s\n",
		"kind", "type", "orig.form", "pruned", "orig.n", "pruned.n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %-18s %10s %10s %10d %10d\n",
			row.Kind, row.Type, row.FormulaO, row.FormulaP, row.CountO, row.CountP)
	}
	fmt.Fprintf(w, "total qubits: original %d, pruned %d (saving %.0f%%)\n",
		r.QubitsOriginal, r.QubitsPruned,
		100*(1-float64(r.QubitsPruned)/float64(r.QubitsOriginal)))
}
