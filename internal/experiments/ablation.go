package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"quantumjoin/internal/anneal"
	"quantumjoin/internal/core"
	"quantumjoin/internal/querygen"
)

// AblationRow compares one design variant against the paper's default on
// the annealing backend.
type AblationRow struct {
	Variant   string
	Relations int
	Valid     float64
	Optimal   float64
	MaxCoeff  float64 // coefficient range the annealer must resolve
}

// AblationResult collects all variants.
type AblationResult struct {
	Rows []AblationRow
}

// RunAblation probes two design choices the paper's formulation fixes:
//
//  1. the objective weights — the paper adds the raw threshold value θ_r
//     (Example 3.3), which blows up the coefficient range annealers must
//     represent with limited analog precision; the log10 θ_r variant
//     compresses it,
//  2. the annealing dynamics — classical simulated annealing versus
//     path-integral (transverse-field) Monte Carlo.
func RunAblation(cfg Config) (*AblationResult, error) {
	res := &AblationResult{}
	for _, n := range []int{3, 4} {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(n)))
		q, err := querygen.Generate(querygen.Config{
			Relations: n, Graph: querygen.Chain, IntegerLog: true,
			MinLogCard: 1, MaxLogCard: 3, MinLogSel: 1, MaxLogSel: 2,
		}, rng)
		if err != nil {
			return nil, err
		}
		variants := []struct {
			name string
			opts core.Options
			pimc bool
		}{
			{"linear-objective (paper)", core.Options{Thresholds: core.DefaultThresholds(q, 1), Omega: 1}, false},
			{"log-objective", core.Options{Thresholds: core.DefaultThresholds(q, 1), Omega: 1, LogObjective: true}, false},
			{"linear-objective + PIMC", core.Options{Thresholds: core.DefaultThresholds(q, 1), Omega: 1}, true},
		}
		for _, v := range variants {
			enc, err := core.Encode(q, v.opts)
			if err != nil {
				return nil, err
			}
			dev := cfg.AnnealDevice()
			if v.pimc {
				dev.NewSampler = anneal.PIMCSamplerFactory(8)
			}
			out, err := dev.Sample(enc.QUBO, cfg.AnnealReads, 20, cfg.Seed)
			if err != nil {
				return nil, err
			}
			row := AblationRow{
				Variant: v.name, Relations: n,
				MaxCoeff: enc.QUBO.MaxAbsCoefficient(),
			}
			valid, optimal := 0, 0
			for _, x := range out.Assignments {
				d := enc.Decode(x)
				if !d.Valid {
					continue
				}
				valid++
				if ok, err := enc.IsOptimal(d); err == nil && ok {
					optimal++
				}
			}
			row.Valid = float64(valid) / float64(cfg.AnnealReads)
			row.Optimal = float64(optimal) / float64(cfg.AnnealReads)
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Write renders the ablation.
func (r *AblationResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Ablation: objective scaling and annealing dynamics")
	fmt.Fprintf(w, "%-28s %9s %9s %9s %12s\n", "variant", "relations", "valid", "optimal", "max |coeff|")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-28s %9d %9s %9s %12.3g\n",
			row.Variant, row.Relations, percent(row.Valid), percent(row.Optimal), row.MaxCoeff)
	}
}
