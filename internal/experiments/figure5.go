package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"quantumjoin/internal/obs"
	"quantumjoin/internal/qaoa"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/stats"
	"quantumjoin/internal/topology"
	"quantumjoin/internal/transpile"
)

// Figure5Row is one depth measurement of the co-design study.
type Figure5Row struct {
	Platform  string // "ibm", "rigetti", "ionq"
	Relations int
	Qubits    int
	Density   float64
	GateSet   transpile.GateSet
	Router    transpile.Router
	Median    float64
	Box       stats.Boxplot
}

// Figure5Result is the full sweep.
type Figure5Result struct {
	Rows []Figure5Row
}

// RunFigure5 reproduces Figure 5: transpiled QAOA circuit depths on
// hypothetical future QPUs, combining (a) size-extrapolated IBM heavy-hex
// and Rigetti Aspen lattices plus the IonQ complete mesh, (b) extended
// connectivity densities, (c) native versus unrestricted gate sets, and
// (d) the two routing heuristics. Instances use two threshold values and
// ω = 1 as in §6.2.
func RunFigure5(cfg Config) (*Figure5Result, error) {
	ctx, root := obs.StartSpan(cfg.traceCtx(), "figure5")
	res, err := runFigure5(ctx, cfg)
	root.End(err)
	return res, err
}

func runFigure5(ctx context.Context, cfg Config) (*Figure5Result, error) {
	res := &Figure5Result{}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range cfg.CoDesignRelations {
		g := querygen.Chain
		if n >= 3 {
			g = querygen.Cycle
		}
		_, enc, err := randomInstance(ctx, n, g, 2, 1, rng)
		if err != nil {
			return nil, err
		}
		params := qaoa.NewParams(1)
		params.Gammas[0] = 0.35
		params.Betas[0] = 0.6
		logical := qaoa.BuildCircuit(enc.QUBO, params)
		qubits := enc.NumQubits()

		type platform struct {
			name   string
			base   *topology.Graph
			native transpile.GateSet
			dense  bool // density sweep applies (superconducting only)
		}
		platforms := []platform{
			{"ibm", topology.ExtendIBM(qubits), transpile.IBMNative, true},
			{"rigetti", topology.ExtendRigetti(qubits), transpile.RigettiNative, true},
			{"ionq", topology.Complete("ionq-mesh", qubits), transpile.IonQNative, false},
		}
		for _, pl := range platforms {
			densities := cfg.CoDesignDensities
			if !pl.dense {
				densities = []float64{0}
			}
			for _, d := range densities {
				dev := pl.base
				if d > 0 {
					dev = topology.Densify(pl.base, d, rand.New(rand.NewSource(cfg.Seed+int64(d*1000))))
				}
				for _, set := range []transpile.GateSet{pl.native, transpile.Unrestricted} {
					for _, router := range []transpile.Router{transpile.RouterLookahead, transpile.RouterBasic} {
						// Per-run seeds make the repetitions independent;
						// fan them out and collect by index.
						ds := make([]float64, cfg.TranspileRuns)
						if err := cfg.forEach(cfg.TranspileRuns, func(run int) error {
							_, span := obs.StartSpan(ctx, "transpile")
							tr, err := transpile.Transpile(logical, dev, transpile.Options{
								GateSet: set,
								Router:  router,
								Seed:    cfg.Seed + int64(run)*6007,
							})
							span.End(err)
							if err != nil {
								return err
							}
							ds[run] = float64(tr.Circuit.Depth())
							return nil
						}); err != nil {
							return nil, err
						}
						box := stats.Summarize(ds)
						res.Rows = append(res.Rows, Figure5Row{
							Platform: pl.name, Relations: n, Qubits: qubits,
							Density: d, GateSet: set, Router: router,
							Median: box.Median, Box: box,
						})
					}
				}
			}
		}
	}
	return res, nil
}

// Write renders the sweep.
func (r *Figure5Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Figure 5: circuit depths on hypothetical future QPUs (2 thresholds, ω=1)")
	fmt.Fprintf(w, "%-8s %9s %7s %8s %-13s %-10s %9s %9s %9s\n",
		"platform", "relations", "qubits", "density", "gateset", "router", "q1", "median", "q3")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %9d %7d %8.2f %-13s %-10s %9.0f %9.0f %9.0f\n",
			row.Platform, row.Relations, row.Qubits, row.Density,
			row.GateSet, row.Router, row.Box.Q1, row.Median, row.Box.Q3)
	}
}

// MedianFor returns the median depth for an exact configuration.
func (r *Figure5Result) MedianFor(platform string, relations int, density float64, set transpile.GateSet, router transpile.Router) (float64, bool) {
	for _, row := range r.Rows {
		if row.Platform == platform && row.Relations == relations &&
			row.Density == density && row.GateSet == set && row.Router == router {
			return row.Median, true
		}
	}
	return 0, false
}
