package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"quantumjoin/internal/noise"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/qaoa"
	"quantumjoin/internal/qsim"
	"quantumjoin/internal/topology"
	"quantumjoin/internal/transpile"
)

// Table2Row reports solution quality for one (predicates, iterations)
// cell of Table 2: fractions of QAOA shots that decode to valid and to
// optimal join orders on the noisy simulated Auckland QPU.
type Table2Row struct {
	Predicates int
	Qubits     int
	Iterations int
	Shots      int
	Valid      float64
	Optimal    float64
	Lambda     float64 // depolarising weight of the transpiled circuit
	Skipped    bool    // true when the size exceeded cfg.MaxQAOAQubits
}

// Table2Result is the full table.
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 reproduces Table 2: the §4.1 three-relation instances with
// 0–3 predicates (18–27 qubits) run through the hybrid QAOA loop (p = 1,
// AQGD) with the configured iteration counts, sampling cfg.QAOAShots
// noisy shots on the simulated Auckland device, post-processed per §3.5.
func RunTable2(cfg Config) (*Table2Result, error) {
	ctx, root := obs.StartSpan(cfg.traceCtx(), "table2")
	res, err := runTable2(ctx, cfg)
	root.End(err)
	return res, err
}

func runTable2(ctx context.Context, cfg Config) (*Table2Result, error) {
	falcon := topology.Falcon27()
	cal := noise.Auckland()
	// Each (predicates, iterations) cell is independent: its RNG is seeded
	// from (p, iters) alone and it builds its own encoding, so the cells
	// fan out over the worker pool and land in their fixed row slots.
	type cell struct{ p, iters int }
	var cells []cell
	for p := 0; p <= 3; p++ {
		for _, iters := range cfg.QAOAIterations {
			cells = append(cells, cell{p, iters})
		}
	}
	rows := make([]Table2Row, len(cells))
	err := cfg.forEach(len(cells), func(i int) error {
		p, iters := cells[i].p, cells[i].iters
		enc, err := paperEncoding(ctx, p, 0)
		if err != nil {
			return err
		}
		row := Table2Row{Predicates: p, Qubits: enc.NumQubits(), Iterations: iters, Shots: cfg.QAOAShots}
		if enc.NumQubits() > cfg.MaxQAOAQubits {
			row.Skipped = true
			rows[i] = row
			return nil
		}
		// Transpile once to size the hardware noise.
		params := qaoa.NewParams(1)
		params.Gammas[0] = 0.35
		params.Betas[0] = 0.6
		logical := qaoa.BuildCircuit(enc.QUBO, params)
		_, tspan := obs.StartSpan(ctx, "transpile")
		tr, err := transpile.Transpile(logical, falcon, transpile.Options{
			GateSet: transpile.IBMNative,
			Router:  transpile.RouterLookahead,
			Seed:    cfg.Seed,
		})
		tspan.End(err)
		if err != nil {
			return err
		}
		row.Lambda = cal.Lambda(tr.Circuit)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(p)*101 + int64(iters)))
		_, sspan := obs.StartSpan(ctx, "solve")
		sspan.SetAttr("backend", "qaoa")
		out, err := qaoa.Run(enc.QUBO, 1, qaoa.AQGD{Iterations: iters}, cfg.QAOAShots, &cal, tr.Circuit, rng)
		sspan.End(err)
		if err != nil {
			return err
		}
		valid, optimal := 0, 0
		for _, b := range out.Samples {
			d := enc.Decode(qsim.BitsOf(b, enc.QUBO.N()))
			if !d.Valid {
				continue
			}
			valid++
			ok, err := enc.IsOptimal(d)
			if err != nil {
				return err
			}
			if ok {
				optimal++
			}
		}
		row.Valid = float64(valid) / float64(len(out.Samples))
		row.Optimal = float64(optimal) / float64(len(out.Samples))
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Table2Result{Rows: rows}, nil
}

// Write renders the table in the paper's layout.
func (r *Table2Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Table 2: QAOA solution quality on simulated IBM Q Auckland (p=1, AQGD)")
	fmt.Fprintf(w, "%-11s %7s %6s %7s %9s %9s %9s\n",
		"predicates", "qubits", "iter", "shots", "valid", "optimal", "lambda")
	for _, row := range r.Rows {
		if row.Skipped {
			fmt.Fprintf(w, "%-11d %7d %6d %7s %9s %9s %9s  (skipped: exceeds simulator cap)\n",
				row.Predicates, row.Qubits, row.Iterations, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-11d %7d %6d %7d %9s %9s %9.4f\n",
			row.Predicates, row.Qubits, row.Iterations, row.Shots,
			percent(row.Valid), percent(row.Optimal), row.Lambda)
	}
}

// TimingRow reports the §4.2.1 timing observation for one scenario, plus
// the §8 cloud-vs-local access comparison.
type TimingRow struct {
	Predicates int
	Qubits     int
	SamplingMs float64
	TotalQPUs  float64 // seconds
	Ratio      float64
	CloudJobS  float64 // end-to-end seconds via cloud access
	LocalJobS  float64 // end-to-end seconds as a local co-processor
}

// TimingResult covers the sampling-vs-total QPU time comparison.
type TimingResult struct {
	Rows []TimingRow
}

// RunTiming reproduces the §4.2.1 numbers: t_s (pure sampling) versus
// t_qpu (total QPU time) for the smallest and largest Table 2 scenarios.
func RunTiming(cfg Config) (*TimingResult, error) {
	ctx := cfg.traceCtx()
	falcon := topology.Falcon27()
	cal := noise.Auckland()
	tm := noise.DefaultTimingModel()
	res := &TimingResult{}
	for _, p := range []int{0, 3} {
		enc, err := paperEncoding(ctx, p, 0)
		if err != nil {
			return nil, err
		}
		params := qaoa.NewParams(1)
		params.Gammas[0] = 0.35
		params.Betas[0] = 0.6
		logical := qaoa.BuildCircuit(enc.QUBO, params)
		tr, err := transpile.Transpile(logical, falcon, transpile.Options{
			GateSet: transpile.IBMNative,
			Router:  transpile.RouterLookahead,
			Seed:    cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		ts := tm.SamplingTimeNs(tr.Circuit, cal, cfg.QAOAShots)
		tq := tm.TotalQPUTimeNs(tr.Circuit, cal, cfg.QAOAShots)
		res.Rows = append(res.Rows, TimingRow{
			Predicates: p, Qubits: enc.NumQubits(),
			SamplingMs: ts / 1e6, TotalQPUs: tq / 1e9, Ratio: tq / ts,
			CloudJobS: noise.CloudAccess().JobTimeNs(tq) / 1e9,
			LocalJobS: noise.LocalCoprocessor().JobTimeNs(ts) / 1e9,
		})
	}
	return res, nil
}

// Write renders the timing rows.
func (r *TimingResult) Write(w io.Writer) {
	fmt.Fprintln(w, "Timing (§4.2.1): sampling time t_s vs total QPU time t_qpu, 1024 shots;")
	fmt.Fprintln(w, "plus §8 deployment comparison (cloud job includes queue + network; local")
	fmt.Fprintln(w, "co-processor pays only t_s + bus dispatch)")
	fmt.Fprintf(w, "%-11s %7s %12s %12s %8s %12s %12s\n",
		"predicates", "qubits", "t_s [ms]", "t_qpu [s]", "ratio", "cloud [s]", "local [s]")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-11d %7d %12.1f %12.2f %8.0fx %12.2f %12.3f\n",
			row.Predicates, row.Qubits, row.SamplingMs, row.TotalQPUs, row.Ratio,
			row.CloudJobS, row.LocalJobS)
	}
}
