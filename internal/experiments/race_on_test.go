//go:build race

package experiments

// raceEnabled reports whether the race detector is compiled in; the
// worker-count determinism test skips itself under race (it reruns four
// harnesses twice, which blows the package test budget with the detector's
// overhead) — the parallel paths still get race coverage from the regular
// harness tests, which fan out whenever GOMAXPROCS > 1.
const raceEnabled = true
