package experiments

import (
	"bytes"
	"strings"
	"testing"

	"quantumjoin/internal/transpile"
)

// tiny returns a configuration small enough for unit tests (seconds).
func tiny() Config {
	return Config{
		Seed:                3,
		TranspileRuns:       3,
		QAOAShots:           256,
		QAOAIterations:      []int{2},
		MaxQAOAQubits:       18,
		EmbedRelations:      []int{3, 4, 5},
		EmbedFixedRelations: 4,
		EmbedMaxThresholds:  3,
		PegasusM:            4,
		AnnealReads:         60,
		AnnealInstances:     2,
		AnnealTimes:         []float64{20},
		AnnealRelations:     []int{3, 4},
		BoundMaxRelations:   20,
		CoDesignRelations:   []int{2, 3},
		CoDesignDensities:   []float64{0, 0.5},
	}
}

func TestRunTable1(t *testing.T) {
	res, err := RunTable1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.CountP > row.CountO {
			t.Errorf("%s %s: pruned %d > original %d", row.Kind, row.Type, row.CountP, row.CountO)
		}
	}
	if res.QubitsPruned >= res.QubitsOriginal {
		t.Error("pruning saved no qubits")
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "pruned") {
		t.Error("render missing content")
	}
}

func TestRunFigure2(t *testing.T) {
	cfg := tiny()
	res, err := RunFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 precision + 4 predicates + 8 device rows.
	if len(res.Rows) != 16 {
		t.Fatalf("%d rows, want 16", len(res.Rows))
	}
	// Shape 1: depth grows with precision.
	d0, _ := res.MedianFor("precision", "ω=1e-0")
	d3, _ := res.MedianFor("precision", "ω=1e-3")
	if d3 <= d0 {
		t.Errorf("precision did not increase depth: %v vs %v", d0, d3)
	}
	// Shape 2: precision grows depth at least as fast as predicates at
	// equal qubit count (27): compare the two 27-qubit scenarios.
	p3, _ := res.MedianFor("predicates", "3 predicates")
	if d3 < p3*0.5 {
		t.Errorf("precision series unexpectedly shallow: %v vs predicates %v", d3, p3)
	}
	// Shape 3 (the paper's §4.2.1 conclusion): the larger Washington
	// machine is NOT more capable — its coherence budget is lower and
	// none of its runs fit it, while Auckland can still run the smallest
	// scenario.
	var aucklandFits, washingtonFits int
	var aucklandBudget, washingtonBudget int
	for _, row := range res.Rows {
		if row.Panel != "device" {
			continue
		}
		if strings.HasPrefix(row.Label, "auckland") {
			aucklandBudget = row.Budget
			if row.Feasible {
				aucklandFits++
			}
		} else {
			washingtonBudget = row.Budget
			if row.Feasible {
				washingtonFits++
			}
		}
	}
	if washingtonBudget >= aucklandBudget {
		t.Errorf("Washington budget %d should be below Auckland's %d", washingtonBudget, aucklandBudget)
	}
	if aucklandFits == 0 {
		t.Error("no scenario fits Auckland's coherence budget")
	}
	if washingtonFits > aucklandFits {
		t.Errorf("Washington fits more scenarios (%d) than Auckland (%d)", washingtonFits, aucklandFits)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Error("render missing header")
	}
}

func TestRunTable2(t *testing.T) {
	cfg := tiny()
	res, err := RunTable2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // 4 predicate scenarios × 1 iteration count
		t.Fatalf("%d rows", len(res.Rows))
	}
	ran := 0
	for _, row := range res.Rows {
		if row.Skipped {
			if row.Qubits <= cfg.MaxQAOAQubits {
				t.Error("skipped a runnable size")
			}
			continue
		}
		ran++
		if row.Valid < 0 || row.Valid > 1 || row.Optimal > row.Valid {
			t.Errorf("implausible fractions: %+v", row)
		}
		// Deep NISQ circuits: λ must be essentially 1, and the valid rate
		// near the combinatorial noise floor (~9% for 3 relations),
		// matching the paper's 7–13%.
		if row.Lambda < 0.9 {
			t.Errorf("λ = %v unexpectedly small", row.Lambda)
		}
		if row.Valid < 0.02 || row.Valid > 0.25 {
			t.Errorf("valid rate %v outside the noise-floor band", row.Valid)
		}
	}
	if ran == 0 {
		t.Fatal("no scenario actually ran")
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Table 2") {
		t.Error("render missing header")
	}
}

func TestRunTiming(t *testing.T) {
	res, err := RunTiming(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Ratio < 10 {
			t.Errorf("t_qpu/t_s ratio %v too small; paper reports orders of magnitude", row.Ratio)
		}
	}
	// Problem size has negligible impact on total QPU time.
	small, large := res.Rows[0], res.Rows[1]
	if large.TotalQPUs > small.TotalQPUs*1.5 {
		t.Errorf("t_qpu grew strongly with size: %v -> %v", small.TotalQPUs, large.TotalQPUs)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "t_qpu") {
		t.Error("render missing content")
	}
}

func TestRunFigure3(t *testing.T) {
	cfg := tiny()
	res, err := RunFigure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Physical qubits grow with relations within each graph type.
	last := map[string]int{}
	for _, row := range res.Rows {
		if row.Panel != "relations" || !row.OK {
			continue
		}
		key := row.Graph.String()
		if prev, ok := last[key]; ok && row.PhysicalQubits < prev/2 {
			t.Errorf("%s: physical qubits dropped sharply: %d after %d", key, row.PhysicalQubits, prev)
		}
		last[key] = row.PhysicalQubits
	}
	if len(last) != 3 {
		t.Fatalf("missing graph types: %v", last)
	}
	// Embedding overhead stays a modest multiple of the logical size.
	for _, f := range res.OverheadFactor() {
		if f < 1 || f > 12 {
			t.Errorf("embedding overhead factor %v implausible", f)
		}
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Error("render missing header")
	}
	// Precision frontier: higher precision (smaller ω) must not allow
	// more thresholds.
	front := res.MaxFeasibleThresholds()
	if front[0.0001] > front[1] {
		t.Errorf("frontier inverted: %v", front)
	}
}

func TestRunTable3(t *testing.T) {
	cfg := tiny()
	res, err := RunTable3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// chain{3,4} + star{3(n/a),4} + cycle{3,4} = 6 cells × 1 time.
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	na := 0
	for _, row := range res.Rows {
		if !row.Applicable {
			na++
			continue
		}
		if row.Optimal > row.Valid+1e-9 {
			t.Errorf("optimal %v exceeds valid %v", row.Optimal, row.Valid)
		}
	}
	if na != 1 {
		t.Errorf("%d not-applicable cells, want 1 (star/3)", na)
	}
	// Quality declines with relations (the paper's steep decline).
	if res.ValidFor(4) > res.ValidFor(3)+0.05 {
		t.Errorf("valid rate did not decline: 3rel=%v 4rel=%v", res.ValidFor(3), res.ValidFor(4))
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("render missing header")
	}
}

func TestRunFigure4(t *testing.T) {
	cfg := tiny()
	res, err := RunFigure4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Quadratic-ish growth: bound(2n) >= 3*bound(n) for fixed settings.
	b10, ok1 := res.BoundFor(10, 2, 0)
	b20, ok2 := res.BoundFor(20, 2, 0)
	if !ok1 || !ok2 {
		t.Fatal("missing bound points")
	}
	if b20 < 3*b10 {
		t.Errorf("bound not superlinear: %d vs %d", b10, b20)
	}
	// More thresholds and precision increase the bound.
	b1, _ := res.BoundFor(16, 1, 0)
	b5, _ := res.BoundFor(16, 5, 0)
	bPrec, _ := res.BoundFor(16, 1, 4)
	if b5 <= b1 || bPrec <= b1 {
		t.Errorf("bound ordering wrong: R1d0=%d R5d0=%d R1d4=%d", b1, b5, bPrec)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Error("render missing header")
	}
}

func TestRunFigure5(t *testing.T) {
	cfg := tiny()
	res, err := RunFigure5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Shape: density reduces depth on IBM for the largest instance.
	n := cfg.CoDesignRelations[len(cfg.CoDesignRelations)-1]
	base, ok1 := res.MedianFor("ibm", n, 0, transpile.IBMNative, transpile.RouterLookahead)
	dense, ok2 := res.MedianFor("ibm", n, 0.5, transpile.IBMNative, transpile.RouterLookahead)
	if !ok1 || !ok2 {
		t.Fatal("missing IBM rows")
	}
	if dense >= base {
		t.Errorf("density 0.5 did not reduce depth: %v vs %v", dense, base)
	}
	// Shape: IonQ (complete mesh) is the shallowest platform at native
	// gates.
	ionq, ok := res.MedianFor("ionq", n, 0, transpile.IonQNative, transpile.RouterLookahead)
	if !ok {
		t.Fatal("missing IonQ row")
	}
	if ionq > base {
		t.Errorf("IonQ depth %v above IBM baseline %v", ionq, base)
	}
	// Shape: the weaker router is never substantially better.
	lb, _ := res.MedianFor("ibm", n, 0, transpile.IBMNative, transpile.RouterLookahead)
	bb, _ := res.MedianFor("ibm", n, 0, transpile.IBMNative, transpile.RouterBasic)
	if bb < lb*0.8 {
		t.Errorf("basic router substantially beat lookahead: %v vs %v", bb, lb)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Error("render missing header")
	}
}

func TestRunGenerations(t *testing.T) {
	cfg := tiny()
	res, err := RunGenerations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	betterOrEqual := 0
	comparable := 0
	for _, row := range res.Rows {
		if row.ChimeraOK && row.PegasusOK {
			comparable++
			if row.PegasusQubits <= row.ChimeraQubits {
				betterOrEqual++
			}
		}
	}
	if comparable == 0 {
		t.Fatal("no instance embedded on both generations")
	}
	if betterOrEqual*2 < comparable {
		t.Errorf("Pegasus smaller in only %d/%d comparable rows", betterOrEqual, comparable)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "generations") {
		t.Error("render missing header")
	}
}

func TestRunAblation(t *testing.T) {
	cfg := tiny()
	res, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(res.Rows))
	}
	// The log-objective variant must shrink the coefficient range.
	byName := map[string]AblationRow{}
	for _, row := range res.Rows {
		if row.Relations == 3 {
			byName[row.Variant] = row
		}
	}
	lin := byName["linear-objective (paper)"]
	logv := byName["log-objective"]
	if logv.MaxCoeff >= lin.MaxCoeff {
		t.Errorf("log objective did not shrink coefficients: %v vs %v", logv.MaxCoeff, lin.MaxCoeff)
	}
	var buf bytes.Buffer
	res.Write(&buf)
	if !strings.Contains(buf.String(), "Ablation") {
		t.Error("render missing header")
	}
}
