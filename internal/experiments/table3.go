package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"quantumjoin/internal/core"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/querygen"
)

// Table3Row is one cell of Table 3: average valid/optimal fractions of
// annealing reads over random instances for a (graph, relations,
// annealing time) combination.
type Table3Row struct {
	Graph      querygen.GraphType
	Relations  int
	AnnealTime float64
	Valid      float64
	Optimal    float64
	Instances  int
	Reads      int
	ChainBreak float64 // mean chain-break fraction (diagnostic)
	Applicable bool    // star queries need >= 4 relations to differ from chain
}

// Table3Result is the full table.
type Table3Result struct {
	Rows []Table3Row
}

// RunTable3 reproduces Table 3: JO instances of 3–5 relations with chain,
// star and cycle query graphs sampled on the simulated Advantage annealer
// at annealing times of 20/60/100 µs, decoded per §3.5 and averaged over
// random instances. Star queries over three relations coincide with chain
// queries, so that cell is marked not applicable (the paper prints "-").
func RunTable3(cfg Config) (*Table3Result, error) {
	ctx, root := obs.StartSpan(cfg.traceCtx(), "table3")
	res, err := runTable3(ctx, cfg)
	root.End(err)
	return res, err
}

func runTable3(ctx context.Context, cfg Config) (*Table3Result, error) {
	dev := cfg.AnnealDevice()
	res := &Table3Result{}
	for _, g := range []querygen.GraphType{querygen.Chain, querygen.Star, querygen.Cycle} {
		for _, n := range cfg.AnnealRelations {
			if g == querygen.Star && n < 4 {
				for _, at := range cfg.AnnealTimes {
					res.Rows = append(res.Rows, Table3Row{Graph: g, Relations: n, AnnealTime: at})
				}
				continue
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n)*1000 + int64(g)))
			encs := make([]*core.Encoding, 0, cfg.AnnealInstances)
			for i := 0; i < cfg.AnnealInstances; i++ {
				_, enc, err := randomInstance(ctx, n, g, 1, 1, rng)
				if err != nil {
					return nil, err
				}
				encs = append(encs, enc)
			}
			for _, at := range cfg.AnnealTimes {
				row := Table3Row{
					Graph: g, Relations: n, AnnealTime: at, Applicable: true,
					Instances: cfg.AnnealInstances, Reads: cfg.AnnealReads,
				}
				for i, enc := range encs {
					_, span := obs.StartSpan(ctx, "solve")
					span.SetAttr("backend", "anneal")
					out, err := dev.Sample(enc.QUBO, cfg.AnnealReads, at, cfg.Seed+int64(i))
					span.End(err)
					if err != nil {
						// Embedding failure counts as a zero-quality run,
						// mirroring hardware infeasibility.
						continue
					}
					valid, optimal := 0, 0
					for _, x := range out.Assignments {
						d := enc.Decode(x)
						if !d.Valid {
							continue
						}
						valid++
						ok, err := enc.IsOptimal(d)
						if err != nil {
							return nil, err
						}
						if ok {
							optimal++
						}
					}
					row.Valid += float64(valid) / float64(cfg.AnnealReads)
					row.Optimal += float64(optimal) / float64(cfg.AnnealReads)
					row.ChainBreak += out.ChainBreakFraction
				}
				row.Valid /= float64(cfg.AnnealInstances)
				row.Optimal /= float64(cfg.AnnealInstances)
				row.ChainBreak /= float64(cfg.AnnealInstances)
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// Write renders the table in the paper's layout.
func (r *Table3Result) Write(w io.Writer) {
	fmt.Fprintln(w, "Table 3: annealing solution quality on simulated D-Wave Advantage")
	fmt.Fprintf(w, "%-7s %9s %9s %9s %9s %11s\n",
		"graph", "relations", "Δt [µs]", "valid", "optimal", "chain-break")
	for _, row := range r.Rows {
		if !row.Applicable {
			fmt.Fprintf(w, "%-7s %9d %9.0f %9s %9s %11s\n",
				row.Graph, row.Relations, row.AnnealTime, "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-7s %9d %9.0f %9s %9s %11s\n",
			row.Graph, row.Relations, row.AnnealTime,
			percent(row.Valid), percent(row.Optimal), percent(row.ChainBreak))
	}
}

// ValidFor averages the valid fraction over annealing times and graphs
// for one relation count (helper for shape assertions).
func (r *Table3Result) ValidFor(relations int) float64 {
	sum, n := 0.0, 0
	for _, row := range r.Rows {
		if row.Relations == relations && row.Applicable {
			sum += row.Valid
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
