// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 Tables 2–3, Figures 2–3; §5/6 Figures 4–5; §3 Table 1)
// on the simulated substrates. Each experiment returns structured rows
// plus a text rendering, so the same code backs the cmd/experiments
// binary and the bench harness.
//
// Absolute numbers differ from the paper (the substrate is a simulator,
// not the authors' QPUs); the shapes under comparison are documented in
// DESIGN.md and recorded side by side in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"quantumjoin/internal/anneal"
	"quantumjoin/internal/core"
	"quantumjoin/internal/join"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/topology"
)

// Config scales the experiment suite. Full() reproduces the paper's
// dimensions; Quick() shrinks shot/instance/size budgets to what a
// single-core laptop runs in minutes (shapes preserved, variance larger).
type Config struct {
	Seed int64

	// Workers bounds the harnesses' fan-out over independent repetitions
	// and sweep cells (0 = GOMAXPROCS). Every task derives its RNG from
	// Seed and the task index alone, so results are identical for any
	// worker count.
	Workers int

	// Figure 2 / Figure 5: transpilation repetitions per scenario.
	TranspileRuns int

	// Table 2: QAOA shots, the iteration counts compared, and the largest
	// exactly simulated problem (in qubits).
	QAOAShots      int
	QAOAIterations []int
	MaxQAOAQubits  int

	// Figure 3: relations swept (top), fixed relations (bottom), maximum
	// threshold count probed, and the Pegasus size m of the target QPU
	// (16 = Advantage).
	EmbedRelations      []int
	EmbedFixedRelations int
	EmbedMaxThresholds  int
	PegasusM            int
	// EmbedTries caps the minor embedder's restarts (0 = device default).
	// Failures (frontier probes) cost the full budget, so quick runs keep
	// this small.
	EmbedTries int

	// Table 3: reads per problem, random instances per cell, annealing
	// times, and relation counts.
	AnnealReads     int
	AnnealInstances int
	AnnealTimes     []float64
	AnnealRelations []int

	// Figure 4: maximum relation count for the qubit-bound sweep.
	BoundMaxRelations int

	// Figure 5: relation counts and densities swept.
	CoDesignRelations []int
	CoDesignDensities []float64

	// Tracer, when non-nil, records per-stage spans (encode, transpile,
	// solve, embed) under one root span per experiment. cmd/experiments
	// aggregates the spans via the tracer's sink into the -timings JSON;
	// a nil tracer costs nothing.
	Tracer *obs.Tracer

	pegasus *topology.Graph
}

// Full returns the paper-scale configuration (hours of single-core time).
func Full() Config {
	return Config{
		Seed:                1,
		TranspileRuns:       20,
		QAOAShots:           1024,
		QAOAIterations:      []int{20, 50},
		MaxQAOAQubits:       27,
		EmbedRelations:      []int{3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		EmbedFixedRelations: 8,
		EmbedMaxThresholds:  20,
		PegasusM:            16,
		AnnealReads:         1000,
		AnnealInstances:     20,
		AnnealTimes:         []float64{20, 60, 100},
		AnnealRelations:     []int{3, 4, 5},
		BoundMaxRelations:   64,
		CoDesignRelations:   []int{2, 3, 4, 5, 6},
		CoDesignDensities:   []float64{0, 0.05, 0.1, 0.25, 0.5, 0.75, 1},
	}
}

// Quick returns a configuration that runs the whole suite in a few
// minutes on one core.
func Quick() Config {
	return Config{
		Seed:                1,
		TranspileRuns:       5,
		QAOAShots:           1024,
		QAOAIterations:      []int{5, 10},
		MaxQAOAQubits:       21,
		EmbedRelations:      []int{3, 4, 5, 6, 7},
		EmbedFixedRelations: 5,
		EmbedMaxThresholds:  6,
		PegasusM:            8,
		EmbedTries:          4,
		AnnealReads:         250,
		AnnealInstances:     4,
		AnnealTimes:         []float64{20, 60, 100},
		AnnealRelations:     []int{3, 4, 5},
		BoundMaxRelations:   64,
		CoDesignRelations:   []int{2, 3, 4},
		CoDesignDensities:   []float64{0, 0.1, 0.5, 1},
	}
}

// Pegasus lazily constructs (and caches) the annealer hardware graph.
func (c *Config) Pegasus() *topology.Graph {
	if c.pegasus == nil {
		g, _ := topology.Pegasus(c.PegasusM)
		c.pegasus = g
	}
	return c.pegasus
}

// AnnealDevice returns a fresh device on the configured Pegasus graph
// with Advantage-like analog characteristics.
func (c *Config) AnnealDevice() *anneal.Device {
	d := anneal.NewDevice(c.Pegasus())
	if c.EmbedTries > 0 {
		d.EmbeddingTries = c.EmbedTries
	}
	return d
}

// traceCtx returns a context armed with the configured tracer (the plain
// background context when tracing is off); instrumented experiments
// derive their root span from it.
func (c Config) traceCtx() context.Context {
	return obs.NewContext(context.Background(), c.Tracer)
}

// paperEncoding builds the canonical §4.1 instance: three relations of
// cardinality 10, 0–3 predicates of selectivity 0.1, one threshold θ = 10,
// discretisation precision 10^-decimals. Qubits: 18 + 3·predicates
// + 3·decimals. The encoding runs under an "encode" span in the trace
// carried by ctx.
func paperEncoding(ctx context.Context, predicates, decimals int) (*core.Encoding, error) {
	q, err := querygen.PaperInstance(predicates)
	if err != nil {
		return nil, err
	}
	ectx, span := obs.StartSpan(ctx, "encode")
	enc, err := core.EncodeContext(ectx, q, core.Options{
		Thresholds: []float64{10},
		Omega:      math.Pow(10, -float64(decimals)),
	})
	span.End(err)
	return enc, err
}

// randomInstance draws a random integer-log query and encodes it with one
// threshold at ω = 1 (the §4.1 experimental setting), under an "encode"
// span in the trace carried by ctx.
func randomInstance(ctx context.Context, relations int, graph querygen.GraphType, thresholds int, omega float64, rng *rand.Rand) (*join.Query, *core.Encoding, error) {
	q, err := querygen.Generate(querygen.Config{
		Relations:  relations,
		Graph:      graph,
		IntegerLog: true,
		MinLogCard: 1, MaxLogCard: 3,
		MinLogSel: 1, MaxLogSel: 2,
	}, rng)
	if err != nil {
		return nil, nil, err
	}
	ectx, span := obs.StartSpan(ctx, "encode")
	enc, err := core.EncodeContext(ectx, q, core.Options{
		Thresholds: core.DefaultThresholds(q, thresholds),
		Omega:      omega,
	})
	span.End(err)
	if err != nil {
		return nil, nil, err
	}
	return q, enc, nil
}

// percent formats a fraction as a percentage string.
func percent(f float64) string {
	return fmt.Sprintf("%.2f%%", 100*f)
}
