package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"quantumjoin/internal/minorembed"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/topology"
)

// GenerationsRow compares the embedding footprint of one JO instance on
// two annealer hardware generations.
type GenerationsRow struct {
	Relations     int
	LogicalQubits int
	ChimeraQubits int // 0 = failed
	ChimeraChain  int
	PegasusQubits int // 0 = failed
	PegasusChain  int
	ChimeraOK     bool
	PegasusOK     bool
}

// GenerationsResult is the full comparison.
type GenerationsResult struct {
	ChimeraName, PegasusName string
	Rows                     []GenerationsRow
}

// RunGenerations extends Figure 3 across annealer hardware generations:
// the same JO QUBOs are embedded into a Chimera graph (the D-Wave 2000Q
// topology used by the prior multi-query-optimisation study, degree 6)
// and into a Pegasus graph of comparable size (degree 15). Pegasus'
// richer connectivity yields shorter chains and a smaller footprint —
// quantifying the §7 observation that hardware generations matter as
// much as algorithms.
func RunGenerations(cfg Config) (*GenerationsResult, error) {
	ctx, root := obs.StartSpan(cfg.traceCtx(), "generations")
	res, err := runGenerations(ctx, cfg)
	root.End(err)
	return res, err
}

func runGenerations(ctx context.Context, cfg Config) (*GenerationsResult, error) {
	// Size-match the two graphs: Chimera C(m,m,4) has 8m² qubits,
	// Pegasus P(m') has ~24m'(m'-1); pick shapes near the configured
	// Pegasus size.
	pegasus := cfg.Pegasus()
	side := 1
	for 8*side*side < pegasus.N() {
		side++
	}
	chimera := topology.Chimera(side, side, 4)
	res := &GenerationsResult{ChimeraName: chimera.Name, PegasusName: pegasus.Name}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, n := range cfg.EmbedRelations {
		_, enc, err := randomInstance(ctx, n, querygen.Chain, 1, 1, rng)
		if err != nil {
			return nil, err
		}
		row := GenerationsRow{Relations: n, LogicalQubits: enc.NumQubits()}
		adj := enc.QUBO.AdjacencyLists()
		_, cspan := obs.StartSpan(ctx, "embed")
		cspan.SetAttr("target", chimera.Name)
		if emb, err := minorembed.Embed(adj, chimera, minorembed.Options{Tries: 8, Seed: cfg.Seed}); err == nil {
			row.ChimeraOK = true
			row.ChimeraQubits = emb.PhysicalQubits()
			row.ChimeraChain = emb.MaxChainLength()
		}
		cspan.End(nil)
		_, pspan := obs.StartSpan(ctx, "embed")
		pspan.SetAttr("target", pegasus.Name)
		if emb, err := minorembed.Embed(adj, pegasus, minorembed.Options{Tries: 8, Seed: cfg.Seed}); err == nil {
			row.PegasusOK = true
			row.PegasusQubits = emb.PhysicalQubits()
			row.PegasusChain = emb.MaxChainLength()
		}
		pspan.End(nil)
		res.Rows = append(res.Rows, row)
		if !row.ChimeraOK && !row.PegasusOK {
			break // both generations hit their frontier
		}
	}
	return res, nil
}

// Write renders the comparison.
func (r *GenerationsResult) Write(w io.Writer) {
	fmt.Fprintf(w, "Hardware generations: %s (degree 6) vs %s (degree 15)\n", r.ChimeraName, r.PegasusName)
	fmt.Fprintf(w, "%-9s %8s %16s %16s\n", "relations", "logical", "chimera (chain)", "pegasus (chain)")
	cell := func(ok bool, qubits, chain int) string {
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%d (%d)", qubits, chain)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-9d %8d %16s %16s\n", row.Relations, row.LogicalQubits,
			cell(row.ChimeraOK, row.ChimeraQubits, row.ChimeraChain),
			cell(row.PegasusOK, row.PegasusQubits, row.PegasusChain))
	}
}
