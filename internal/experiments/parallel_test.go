package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		cfg := Config{Workers: workers}
		var hits [50]atomic.Int32
		if err := cfg.forEach(len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if hits[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, hits[i].Load())
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	e3, e7 := errors.New("task 3"), errors.New("task 7")
	cfg := Config{Workers: 4}
	err := cfg.forEach(10, func(i int) error {
		switch i {
		case 3:
			return e3
		case 7:
			return e7
		}
		return nil
	})
	if !errors.Is(err, e3) {
		t.Fatalf("got %v, want the lowest-index error %v", err, e3)
	}
}

// TestHarnessesDeterministicAcrossWorkerCounts pins the parallelism
// guarantee: every fanned-out harness produces identical rows for any
// worker count, because each task's RNG is derived from the seed and task
// index alone.
func TestHarnessesDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config experiment reruns skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("double harness run too slow under the race detector; parallel paths are raced by the regular harness tests")
	}
	micro := Config{
		Seed:                3,
		TranspileRuns:       2,
		QAOAShots:           64,
		QAOAIterations:      []int{1},
		MaxQAOAQubits:       18,
		EmbedRelations:      []int{3, 4},
		EmbedFixedRelations: 3,
		EmbedMaxThresholds:  2,
		PegasusM:            4,
		EmbedTries:          2,
		CoDesignRelations:   []int{2},
		CoDesignDensities:   []float64{0, 0.5},
	}
	serial := micro
	serial.Workers = 1
	parallel := micro
	parallel.Workers = 4

	f2a, err := RunFigure2(serial)
	if err != nil {
		t.Fatal(err)
	}
	f2b, err := RunFigure2(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f2a.Rows, f2b.Rows) {
		t.Fatal("Figure 2 rows differ between worker counts")
	}

	f3a, err := RunFigure3(serial)
	if err != nil {
		t.Fatal(err)
	}
	f3b, err := RunFigure3(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f3a.Rows, f3b.Rows) {
		t.Fatal("Figure 3 rows differ between worker counts")
	}

	f5a, err := RunFigure5(serial)
	if err != nil {
		t.Fatal(err)
	}
	f5b, err := RunFigure5(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f5a.Rows, f5b.Rows) {
		t.Fatal("Figure 5 rows differ between worker counts")
	}

	t2a, err := RunTable2(serial)
	if err != nil {
		t.Fatal(err)
	}
	t2b, err := RunTable2(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t2a.Rows, t2b.Rows) {
		t.Fatal("Table 2 rows differ between worker counts")
	}
}
