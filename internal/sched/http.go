package sched

import (
	"encoding/json"
	"net/http"
	"sort"

	"quantumjoin/internal/obs"
)

// Handler serves the /v1/sched debug endpoint: the router's learned
// weights (theta per arm, feature names index-aligned), per-arm pull
// counts and mean rewards, decision counters, and — when a MetricsReader
// is configured — the service's per-backend outcome snapshots.
func (r *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(r.Snapshot())
	})
}

// WriteProm appends the scheduler's metric families to a Prometheus
// exposition: decision counts by mode, per-arm pull counts and cumulative
// rewards, and model update/save counters. Designed to be registered as a
// service prom collector so /metrics carries scheduler state alongside
// the backend families.
func (r *Router) WriteProm(p *obs.PromWriter) {
	s := r.Snapshot()
	p.Family("qjoind_sched_decisions_total", "Routing decisions made by the learned scheduler, by mode.", "counter")
	p.Sample("qjoind_sched_decisions_total", map[string]string{"mode": ModeDirect}, float64(s.Counters.Direct))
	p.Sample("qjoind_sched_decisions_total", map[string]string{"mode": ModeRace}, float64(s.Counters.Raced))
	p.Family("qjoind_sched_updates_total", "Reward updates applied to the scheduler's arm models.", "counter")
	p.Sample("qjoind_sched_updates_total", nil, float64(s.Counters.Updates))
	p.Family("qjoind_sched_state_saves_total", "Successful scheduler state persists.", "counter")
	p.Sample("qjoind_sched_state_saves_total", nil, float64(s.Counters.Saves))

	arms := make([]string, 0, len(s.Models))
	for name := range s.Models {
		arms = append(arms, name)
	}
	sort.Strings(arms)
	p.Family("qjoind_sched_arm_pulls_total", "Reward-bearing pulls per scheduler arm.", "counter")
	for _, name := range arms {
		p.Sample("qjoind_sched_arm_pulls_total", map[string]string{"arm": name}, float64(s.Models[name].Pulls))
	}
	p.Family("qjoind_sched_arm_mean_reward", "Mean observed reward per scheduler arm.", "gauge")
	for _, name := range arms {
		p.Sample("qjoind_sched_arm_mean_reward", map[string]string{"arm": name}, s.Models[name].MeanReward)
	}
}
