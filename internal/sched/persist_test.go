package sched

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"quantumjoin/internal/querygen"
)

// train runs a deterministic decide/update schedule against r and returns
// the decisions it made.
func train(t *testing.T, r *Router, rounds int) []Decision {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	var out []Decision
	for i := 0; i < rounds; i++ {
		q := testQuery(t, querygen.GraphType(i%5), 4+i%5, int64(100+i))
		c := Context{Budget: time.Duration(20+10*(i%3)) * time.Millisecond}
		d := r.Decide(q, c)
		out = append(out, d)
		for _, arm := range d.Arms {
			r.Update(&d, arm, float64(rng.Intn(100))/100)
		}
	}
	return out
}

// TestSaveLoadRoundTripBitIdentical: save → load into a fresh router →
// save again must produce byte-identical files, and the reloaded router
// must make the identical decision sequence — the CI persistence gate.
func TestSaveLoadRoundTripBitIdentical(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "sched1.json")
	p2 := filepath.Join(dir, "sched2.json")

	cfg := Config{Arms: []string{"dp", "tabu", "anneal"}, Seed: 7}
	r1 := newTestRouter(t, cfg)
	train(t, r1, 25)
	if err := r1.SaveFile(p1); err != nil {
		t.Fatal(err)
	}

	r2 := newTestRouter(t, cfg)
	loaded, err := r2.LoadFile(p1)
	if err != nil || !loaded {
		t.Fatalf("load: loaded=%v err=%v", loaded, err)
	}
	if err := r2.SaveFile(p2); err != nil {
		t.Fatal(err)
	}

	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("save → load → save is not byte-identical")
	}

	// Both routers must now agree on every future decision.
	d1 := train(t, r1, 15)
	d2 := train(t, r2, 15)
	for i := range d1 {
		if d1[i].Mode != d2[i].Mode || d1[i].Best != d2[i].Best ||
			!reflect.DeepEqual(d1[i].Arms, d2[i].Arms) ||
			d1[i].Confidence != d2[i].Confidence {
			t.Fatalf("post-reload decision %d diverged:\n  %+v\n  %+v", i, d1[i], d2[i])
		}
	}
}

func TestLoadFileMissingIsCold(t *testing.T) {
	r := newTestRouter(t, Config{})
	loaded, err := r.LoadFile(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || loaded {
		t.Fatalf("missing file: loaded=%v err=%v, want cold start without error", loaded, err)
	}
}

func TestLoadFileRejectsWrongVersionAndDim(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sched.json")
	r := newTestRouter(t, Config{})
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	for _, tamper := range []struct {
		name, from, to string
	}{
		{"version", `"version": 1`, `"version": 99`},
		{"dim", `"dim": 15`, `"dim": 4`},
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		bad := bytes.Replace(data, []byte(tamper.from), []byte(tamper.to), 1)
		if bytes.Equal(bad, data) {
			t.Fatalf("%s: tamper pattern %q not found in state file", tamper.name, tamper.from)
		}
		badPath := filepath.Join(dir, tamper.name+".json")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh := newTestRouter(t, Config{})
		if _, err := fresh.LoadFile(badPath); err == nil {
			t.Errorf("%s mismatch accepted", tamper.name)
		}
	}
}

// TestImportStateDropsUnknownArms: a state file from an older arm set must
// not inject models for arms this router does not serve.
func TestImportStateDropsUnknownArms(t *testing.T) {
	r1, err := NewRouter(Config{Arms: []string{"dp", "legacy"}})
	if err != nil {
		t.Fatal(err)
	}
	train(t, r1, 10)
	st := r1.ExportState()

	r2, err := NewRouter(Config{Arms: []string{"dp", "tabu"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.ImportState(st); err != nil {
		t.Fatal(err)
	}
	s := r2.Snapshot()
	if _, ok := s.Models["legacy"]; ok {
		t.Error("legacy arm model imported into a router that does not serve it")
	}
	if s.Models["dp"].Pulls == 0 {
		t.Error("shared arm's pulls not imported")
	}
	if s.Models["tabu"].Pulls != 0 {
		t.Error("fresh arm gained pulls from nowhere")
	}
}
