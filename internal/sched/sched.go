package sched

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quantumjoin/internal/join"
	"quantumjoin/internal/service"
)

// Decision modes.
const (
	// ModeDirect routes straight to the predicted-best arm (plus the
	// classical floor as a safety arm).
	ModeDirect = "direct"
	// ModeRace races the plausibly-optimal arm set: every arm whose upper
	// confidence bound still reaches the best arm's lower bound, plus any
	// cold arm owed exploration pulls.
	ModeRace = "race"
)

// Config tunes a Router. The zero value of every field selects a default.
type Config struct {
	// Arms are the backend names the router chooses between (required).
	Arms []string
	// Floor is the safety arm appended to every decision so plan quality
	// never regresses versus the classical baseline (default "greedy").
	// It does not count against MaxWidth.
	Floor string
	// Alpha scales the UCB exploration width (default 0.35). Larger values
	// race longer before committing; 0 keeps the default (use a tiny
	// positive value for pure exploitation).
	Alpha float64
	// Lambda is the ridge regularisation of each arm's linear model
	// (default 1).
	Lambda float64
	// MinPulls is the cold-start quota: an arm pulled fewer times always
	// joins the race, whatever its confidence bound (default 3).
	MinPulls int
	// MaxWidth caps the raced portfolio (default: all arms). The
	// predicted-best arm and the floor always fit.
	MaxWidth int
	// LatencyWeight is the reward penalty per unit of deadline budget an
	// arm consumed (default 0.3): among arms of equal plan quality the
	// model learns to prefer the cheaper one.
	LatencyWeight float64
	// Seed feeds the deterministic tie-break hash; equal seeds give
	// identical decision sequences for identical request sequences.
	Seed int64
	// Metrics, when non-nil, enriches the /v1/sched snapshot with the
	// service's per-backend win/loss/latency state — consumed in-process
	// through the typed reader, never by scraping Prometheus text.
	Metrics service.MetricsReader
}

func (c Config) withDefaults() Config {
	if c.Floor == "" {
		c.Floor = "greedy"
	}
	if c.Alpha == 0 {
		c.Alpha = 0.35
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.MinPulls == 0 {
		c.MinPulls = 3
	}
	if c.MaxWidth == 0 {
		c.MaxWidth = len(c.Arms)
	}
	if c.LatencyWeight == 0 {
		c.LatencyWeight = 0.3
	}
	return c
}

// armModel is one arm's ridge-regression state: A = λI + Σ x xᵀ and
// b = Σ r·x over the arm's pulls. The model mean is θ = A⁻¹b and the
// LinUCB exploration width for context x is √(xᵀ A⁻¹ x).
type armModel struct {
	A         [][]float64
	B         []float64
	Pulls     int64
	RewardSum float64
}

func newArmModel(dim int, lambda float64) *armModel {
	m := &armModel{A: make([][]float64, dim), B: make([]float64, dim)}
	for i := range m.A {
		m.A[i] = make([]float64, dim)
		m.A[i][i] = lambda
	}
	return m
}

func (m *armModel) update(x []float64, reward float64) {
	for i := range x {
		for j := range x {
			m.A[i][j] += x[i] * x[j]
		}
		m.B[i] += reward * x[i]
	}
	m.Pulls++
	m.RewardSum += reward
}

// theta solves A θ = b (Gaussian elimination with partial pivoting; the
// matrix is symmetric positive definite by construction, so the solve
// cannot fail). Dim is ~15, so the cubic cost is nanoseconds.
func (m *armModel) theta() []float64 {
	return solve(m.A, m.B)
}

// score returns the model mean θ·x and the exploration width √(xᵀA⁻¹x).
func (m *armModel) score(x []float64) (mean, width float64) {
	th := m.theta()
	z := solve(m.A, x)
	for i := range x {
		mean += th[i] * x[i]
		width += x[i] * z[i]
	}
	if width < 0 {
		width = 0 // round-off guard; xᵀA⁻¹x ≥ 0 analytically
	}
	return mean, math.Sqrt(width)
}

// solve returns A⁻¹ v via Gaussian elimination with partial pivoting on a
// copy of A. Deterministic: no map iteration, no randomness.
func solve(a [][]float64, v []float64) []float64 {
	n := len(v)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = v[i]
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		m[col], m[piv] = m[piv], m[col]
		p := m[col][col]
		if p == 0 {
			continue // defensive: SPD matrices never hit this
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / p
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if m[i][i] != 0 {
			out[i] = m[i][n] / m[i][i]
		}
	}
	return out
}

// ArmScore is one arm's confidence interval inside a Decision.
type ArmScore struct {
	Arm   string  `json:"arm"`
	Mean  float64 `json:"mean"`
	Width float64 `json:"width"`
	UCB   float64 `json:"ucb"`
	LCB   float64 `json:"lcb"`
	Pulls int64   `json:"pulls"`
	Cold  bool    `json:"cold,omitempty"`
}

// Decision is one routing choice: the arms to invoke and why.
type Decision struct {
	// Mode is ModeDirect or ModeRace.
	Mode string
	// Arms are the backends to invoke, best-first; the floor arm is always
	// present (last unless it is also the predicted best).
	Arms []string
	// Best is the predicted-best arm (highest UCB).
	Best string
	// Confidence is the router's belief that Best alone suffices, in
	// [0, 1]: above ½ the best arm's lower bound clears the runner-up's
	// upper bound.
	Confidence float64
	// Safety names the floor arm when it was appended purely as the
	// safety arm (empty when the floor earned its slot on merit or is
	// absent). Consumers use it to label the floor's result a degraded
	// outcome — not an arbitration win — should it win only by forfeit.
	Safety string
	// Scores are the per-arm confidence intervals behind the choice.
	Scores []ArmScore

	vectors map[string][]float64 // decision-time feature vector per arm
}

// Vector returns the feature vector the decision scored arm with (nil for
// arms outside the decision); Update consumes it so rewards are attributed
// to the exact decision-time context.
func (d *Decision) Vector(arm string) []float64 { return d.vectors[arm] }

// Router is the learned scheduler. All methods are safe for concurrent
// use; decisions and updates serialise on one mutex (the linear algebra is
// nanoseconds next to any solver invocation).
type Router struct {
	mu   sync.Mutex
	cfg  Config
	arms map[string]*armModel

	decisions atomic.Int64
	direct    atomic.Int64
	raced     atomic.Int64
	updates   atomic.Int64
	saves     atomic.Int64
}

// NewRouter builds a router over the configured arm set.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Arms) == 0 {
		return nil, fmt.Errorf("sched: config needs at least one arm")
	}
	seen := map[string]bool{}
	for _, a := range cfg.Arms {
		if a == "" {
			return nil, fmt.Errorf("sched: empty arm name")
		}
		if seen[a] {
			return nil, fmt.Errorf("sched: duplicate arm %q", a)
		}
		seen[a] = true
	}
	if !seen[cfg.Floor] {
		cfg.Arms = append(append([]string(nil), cfg.Arms...), cfg.Floor)
	}
	r := &Router{cfg: cfg, arms: make(map[string]*armModel, len(cfg.Arms))}
	for _, a := range cfg.Arms {
		r.arms[a] = newArmModel(Dim, cfg.Lambda)
	}
	return r, nil
}

// Arms returns the configured arm names in configuration order.
func (r *Router) Arms() []string { return append([]string(nil), r.cfg.Arms...) }

// Floor returns the safety arm.
func (r *Router) Floor() string { return r.cfg.Floor }

// Decide scores every available arm against the request context and
// returns the routing decision: the predicted-best arm alone (plus the
// floor) when its lower confidence bound clears every rival's upper bound,
// otherwise a race over the plausibly-optimal set — uncertainty-
// proportional portfolio width. Cold arms (fewer than MinPulls pulls) are
// always raced. Deterministic: equal models, query, and context give the
// identical decision.
func (r *Router) Decide(q *join.Query, c Context) Decision {
	qf := QueryFeatures(q)
	avail := c.Available
	if len(avail) == 0 {
		avail = r.cfg.Arms
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.decisions.Add(1)

	scores := make([]ArmScore, 0, len(avail))
	vectors := make(map[string][]float64, len(avail))
	for _, arm := range avail {
		m, ok := r.arms[arm]
		if !ok {
			continue // unknown arm: not modelled, not routed
		}
		x := Vector(qf, c, arm, nil)
		vectors[arm] = x
		mean, width := m.score(x)
		w := r.cfg.Alpha * width
		scores = append(scores, ArmScore{
			Arm: arm, Mean: mean, Width: width,
			UCB: mean + w, LCB: mean - w,
			Pulls: m.Pulls, Cold: m.Pulls < int64(r.cfg.MinPulls),
		})
	}
	if len(scores) == 0 {
		// Nothing modelled: fall back to the floor alone.
		x := Vector(qf, c, r.cfg.Floor, nil)
		return Decision{
			Mode: ModeDirect, Arms: []string{r.cfg.Floor}, Best: r.cfg.Floor,
			Confidence: 0, vectors: map[string][]float64{r.cfg.Floor: x},
		}
	}

	// Rank by UCB, ties broken by name so the ordering never depends on
	// map iteration or input order.
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].UCB != scores[j].UCB {
			return scores[i].UCB > scores[j].UCB
		}
		return scores[i].Arm < scores[j].Arm
	})
	best := scores[0]

	// Plausible set: arms whose optimism still reaches the best arm's
	// pessimism, plus cold arms owed exploration.
	const eps = 1e-12
	plausible := []ArmScore{best}
	for _, s := range scores[1:] {
		if s.Cold || s.UCB >= best.LCB-eps {
			plausible = append(plausible, s)
		}
	}
	// The width cap counts only non-floor arms: the floor is a safety arm,
	// not portfolio budget.
	if r.cfg.MaxWidth > 0 {
		capped := plausible[:0:0]
		nonFloor := 0
		for _, s := range plausible {
			if s.Arm == r.cfg.Floor {
				capped = append(capped, s)
				continue
			}
			if nonFloor < r.cfg.MaxWidth {
				capped = append(capped, s)
				nonFloor++
			}
		}
		plausible = capped
	}

	d := Decision{Best: best.Arm, Scores: scores, vectors: vectors}
	for _, s := range plausible {
		d.Arms = append(d.Arms, s.Arm)
	}
	// The classical floor is the safety arm of every decision: appended
	// outside the width cap, so quality never regresses versus greedy.
	if !contains(d.Arms, r.cfg.Floor) {
		if _, ok := r.arms[r.cfg.Floor]; ok {
			d.Arms = append(d.Arms, r.cfg.Floor)
			d.Safety = r.cfg.Floor
			if _, ok := vectors[r.cfg.Floor]; !ok {
				vectors[r.cfg.Floor] = Vector(qf, c, r.cfg.Floor, nil)
			}
		}
	}
	if len(plausible) == 1 {
		d.Mode = ModeDirect
		r.direct.Add(1)
	} else {
		d.Mode = ModeRace
		r.raced.Add(1)
	}
	// Confidence: how far the best arm's pessimism clears the runner-up's
	// optimism, centred at ½ (gap 0 = coin flip).
	if len(scores) > 1 {
		gap := best.LCB - scores[1].UCB
		d.Confidence = clamp01(0.5 + gap/2)
	} else {
		d.Confidence = 1
	}
	return d
}

// Update feeds one arm's observed reward back into its model, using the
// decision-time feature vector so the credit lands on the context that
// caused the pull. Unknown arms and arms outside the decision are ignored.
func (r *Router) Update(d *Decision, arm string, reward float64) {
	x := d.Vector(arm)
	if x == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.arms[arm]
	if !ok {
		return
	}
	m.update(x, reward)
	r.updates.Add(1)
}

// Reward computes the router's reward for one pulled arm from the
// arbiter's ground truth: bestCost/cost (true C_out plan-cost ratio versus
// the incumbent — 1 when the arm produced the winning plan, less the worse
// it did) minus the latency penalty for the fraction of the deadline
// budget the arm consumed. Arms that failed or missed the deadline earn 0.
func (r *Router) Reward(bestCost, cost float64, elapsed, budget time.Duration) float64 {
	if cost <= 0 || bestCost <= 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		return 0
	}
	q := bestCost / cost
	if q > 1 {
		q = 1
	}
	lat := 0.0
	if budget > 0 {
		lat = clamp01(float64(elapsed) / float64(budget))
	}
	return clamp01(q - r.cfg.LatencyWeight*lat)
}

// ArmState is one arm's learned state as exposed on /v1/sched.
type ArmState struct {
	Pulls      int64     `json:"pulls"`
	MeanReward float64   `json:"mean_reward"`
	Theta      []float64 `json:"theta"`
}

// SnapshotCounters aggregates the router's decision counters.
type SnapshotCounters struct {
	Decisions int64 `json:"decisions"`
	Direct    int64 `json:"direct"`
	Raced     int64 `json:"raced"`
	Updates   int64 `json:"updates"`
	Saves     int64 `json:"saves"`
}

// Snapshot is the /v1/sched payload: configuration, per-arm learned
// weights and pull counts, decision counters, and — when a MetricsReader
// is wired — the service's live per-backend outcome snapshots.
type Snapshot struct {
	Arms         []string                           `json:"arms"`
	Floor        string                             `json:"floor"`
	Alpha        float64                            `json:"alpha"`
	MinPulls     int                                `json:"min_pulls"`
	FeatureNames []string                           `json:"feature_names"`
	Counters     SnapshotCounters                   `json:"counters"`
	Models       map[string]ArmState                `json:"models"`
	Backends     map[string]service.BackendSnapshot `json:"backends,omitempty"`
}

// Snapshot captures the router's current state for /v1/sched.
func (r *Router) Snapshot() Snapshot {
	r.mu.Lock()
	models := make(map[string]ArmState, len(r.arms))
	for name, m := range r.arms {
		st := ArmState{Pulls: m.Pulls, Theta: m.theta()}
		if m.Pulls > 0 {
			st.MeanReward = m.RewardSum / float64(m.Pulls)
		}
		models[name] = st
	}
	arms := append([]string(nil), r.cfg.Arms...)
	floor, alpha, minPulls := r.cfg.Floor, r.cfg.Alpha, r.cfg.MinPulls
	mr := r.cfg.Metrics
	r.mu.Unlock()

	s := Snapshot{
		Arms: arms, Floor: floor, Alpha: alpha, MinPulls: minPulls,
		FeatureNames: featureNames[:],
		Counters: SnapshotCounters{
			Decisions: r.decisions.Load(),
			Direct:    r.direct.Load(),
			Raced:     r.raced.Load(),
			Updates:   r.updates.Load(),
			Saves:     r.saves.Load(),
		},
		Models: models,
	}
	if mr != nil {
		s.Backends = make(map[string]service.BackendSnapshot, len(arms))
		for _, name := range arms {
			if bs, ok := mr.ReadBackend(name); ok {
				s.Backends[name] = bs
			}
		}
	}
	return s
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
