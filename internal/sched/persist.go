package sched

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// StateVersion is the persistence format version. Loading a file with a
// different version fails loudly instead of silently misreading weights.
const StateVersion = 1

// State is the on-disk model: every number the router needs to resume
// exactly where it left off. encoding/json round-trips float64 exactly
// (shortest-representation encoding), and map keys marshal sorted, so
// save → load → save produces byte-identical files.
type State struct {
	Version   int                  `json:"version"`
	Dim       int                  `json:"dim"`
	Alpha     float64              `json:"alpha"`
	Lambda    float64              `json:"lambda"`
	MinPulls  int                  `json:"min_pulls"`
	Seed      int64                `json:"seed"`
	Floor     string               `json:"floor"`
	Arms      map[string]*armState `json:"arms"`
	Decisions int64                `json:"decisions"`
	Direct    int64                `json:"direct"`
	Raced     int64                `json:"raced"`
	Updates   int64                `json:"updates"`
}

type armState struct {
	Pulls     int64       `json:"pulls"`
	RewardSum float64     `json:"reward_sum"`
	A         [][]float64 `json:"a"`
	B         []float64   `json:"b"`
}

// ExportState snapshots the router's full learned state.
func (r *Router) ExportState() *State {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &State{
		Version:   StateVersion,
		Dim:       Dim,
		Alpha:     r.cfg.Alpha,
		Lambda:    r.cfg.Lambda,
		MinPulls:  r.cfg.MinPulls,
		Seed:      r.cfg.Seed,
		Floor:     r.cfg.Floor,
		Arms:      make(map[string]*armState, len(r.arms)),
		Decisions: r.decisions.Load(),
		Direct:    r.direct.Load(),
		Raced:     r.raced.Load(),
		Updates:   r.updates.Load(),
	}
	for name, m := range r.arms {
		a := make([][]float64, len(m.A))
		for i := range m.A {
			a[i] = append([]float64(nil), m.A[i]...)
		}
		st.Arms[name] = &armState{
			Pulls:     m.Pulls,
			RewardSum: m.RewardSum,
			A:         a,
			B:         append([]float64(nil), m.B...),
		}
	}
	return st
}

// ImportState replaces the router's learned state with a previously
// exported one. Arms present on disk but absent from the configuration are
// dropped; configured arms absent from disk keep their fresh model.
func (r *Router) ImportState(st *State) error {
	if st.Version != StateVersion {
		return fmt.Errorf("sched: state version %d, want %d", st.Version, StateVersion)
	}
	if st.Dim != Dim {
		return fmt.Errorf("sched: state dim %d, want %d (feature layout changed; discard the file)", st.Dim, Dim)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, as := range st.Arms {
		m, ok := r.arms[name]
		if !ok {
			continue
		}
		if len(as.B) != Dim || len(as.A) != Dim {
			return fmt.Errorf("sched: arm %q has malformed model", name)
		}
		for i := range as.A {
			if len(as.A[i]) != Dim {
				return fmt.Errorf("sched: arm %q has malformed model", name)
			}
			copy(m.A[i], as.A[i])
		}
		copy(m.B, as.B)
		m.Pulls = as.Pulls
		m.RewardSum = as.RewardSum
	}
	r.decisions.Store(st.Decisions)
	r.direct.Store(st.Direct)
	r.raced.Store(st.Raced)
	r.updates.Store(st.Updates)
	return nil
}

// SaveFile atomically persists the router's state as versioned JSON:
// write to a temp file in the destination directory, fsync, rename. A
// crash mid-save leaves the previous file intact.
func (r *Router) SaveFile(path string) error {
	st := r.ExportState()
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return fmt.Errorf("sched: marshal state: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".sched-*.json")
	if err != nil {
		return fmt.Errorf("sched: save state: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("sched: save state: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sched: save state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sched: save state: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("sched: save state: %w", err)
	}
	r.saves.Add(1)
	return nil
}

// LoadFile restores state saved by SaveFile. A missing file is not an
// error — the router simply starts cold.
func (r *Router) LoadFile(path string) (loaded bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("sched: load state: %w", err)
	}
	var st State
	if err := json.Unmarshal(data, &st); err != nil {
		return false, fmt.Errorf("sched: load state %s: %w", path, err)
	}
	if err := r.ImportState(&st); err != nil {
		return false, fmt.Errorf("sched: load state %s: %w", path, err)
	}
	return true, nil
}
