package sched

import (
	"math/rand"
	"testing"
	"time"

	"quantumjoin/internal/join"
	"quantumjoin/internal/querygen"
	"quantumjoin/internal/service"
)

// permuteQuery relabels the relations of q by perm (new index =
// perm[old index]), remapping predicate endpoints accordingly: the same
// join graph under a different labelling.
func permuteQuery(q *join.Query, perm []int) *join.Query {
	out := &join.Query{
		Relations:  make([]join.Relation, len(q.Relations)),
		Predicates: make([]join.Predicate, len(q.Predicates)),
	}
	for old, to := range perm {
		out.Relations[to] = q.Relations[old]
	}
	for i, p := range q.Predicates {
		out.Predicates[i] = join.Predicate{R1: perm[p.R1], R2: perm[p.R2], Sel: p.Sel}
	}
	return out
}

// TestQueryFeaturesPermutationInvariant property-tests feature extraction
// against the WL fingerprint's permutation invariance: whenever two
// queries are the same graph up to relation relabelling (same
// service.Fingerprint key), their feature blocks must be bit-identical.
func TestQueryFeaturesPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []querygen.GraphType{
		querygen.Chain, querygen.Star, querygen.Cycle, querygen.Clique, querygen.Tree,
	}
	for trial := 0; trial < 200; trial++ {
		shape := shapes[trial%len(shapes)]
		n := 3 + rng.Intn(10)
		q, err := querygen.Generate(querygen.Config{
			Relations: n,
			Graph:     shape,
			Skew:      float64(trial%2) * 0.5,
		}, rng)
		if err != nil {
			t.Fatalf("trial %d: generate: %v", trial, err)
		}
		perm := rng.Perm(n)
		qp := permuteQuery(q, perm)

		k1, _ := service.Fingerprint(q, service.EncodeSpec{})
		k2, _ := service.Fingerprint(qp, service.EncodeSpec{})
		if k1 != k2 {
			t.Fatalf("trial %d (%v): WL fingerprint not permutation invariant; the property's premise broke", trial, shape)
		}

		f1 := QueryFeatures(q)
		f2 := QueryFeatures(qp)
		if f1 != f2 {
			t.Fatalf("trial %d (%v, perm %v): features differ under relabelling:\n  %v\n  %v",
				trial, shape, perm, f1, f2)
		}
	}
}

// TestQueryFeaturesSeparateShapes: the shape statistics must actually
// separate the canonical graph families (otherwise the bandit cannot
// condition on them).
func TestQueryFeaturesSeparateShapes(t *testing.T) {
	gen := func(g querygen.GraphType) [QueryDim]float64 {
		q, err := querygen.Generate(querygen.Config{Relations: 8, Graph: g},
			rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		return QueryFeatures(q)
	}
	chain, star, clique := gen(querygen.Chain), gen(querygen.Star), gen(querygen.Clique)
	if !(clique[2] > star[2] && clique[2] > chain[2]) {
		t.Errorf("density should peak for clique: chain %v star %v clique %v", chain[2], star[2], clique[2])
	}
	if !(star[3] > chain[3]) {
		t.Errorf("max degree should separate star from chain: star %v chain %v", star[3], chain[3])
	}
	if !(star[5] > chain[5]) {
		t.Errorf("leaf fraction should separate star from chain: star %v chain %v", star[5], chain[5])
	}
}

func TestQueryFeaturesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		q, err := querygen.Generate(querygen.Config{
			Relations: 3 + rng.Intn(19),
			Graph:     querygen.GraphType(rng.Intn(5)),
			Skew:      0.8,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		f := QueryFeatures(q)
		for i, v := range f {
			if v < -1.5 || v > 1.5 {
				t.Fatalf("feature %s = %v outside sane range for %d relations", featureNames[i], v, q.NumRelations())
			}
		}
	}
}

func TestVectorContextBlock(t *testing.T) {
	var qf [QueryDim]float64
	qf[0] = 1
	c := Context{
		Budget:   250 * time.Millisecond,
		CacheHit: true,
		Parts:    3,
		Breakers: map[string]string{"tabu": service.HealthOpen, "anneal": service.HealthHalfOpen},
	}
	x := Vector(qf, c, "tabu", nil)
	if len(x) != Dim {
		t.Fatalf("vector length %d, want %d", len(x), Dim)
	}
	if x[QueryDim] <= 0 || x[QueryDim] > 1 {
		t.Errorf("budget feature %v outside (0, 1]", x[QueryDim])
	}
	if x[QueryDim+1] != 1 {
		t.Errorf("cache-hit feature = %v, want 1", x[QueryDim+1])
	}
	if x[QueryDim+2] != 0.25 {
		t.Errorf("parts feature = %v, want 0.25 for 3 parts", x[QueryDim+2])
	}
	if x[QueryDim+3] != 1 {
		t.Errorf("breaker feature = %v, want 1 for open breaker", x[QueryDim+3])
	}
	if y := Vector(qf, c, "anneal", nil); y[QueryDim+3] != 0.5 {
		t.Errorf("breaker feature = %v, want 0.5 for half-open breaker", y[QueryDim+3])
	}
	if y := Vector(qf, c, "greedy", nil); y[QueryDim+3] != 0 {
		t.Errorf("breaker feature = %v, want 0 for healthy arm", y[QueryDim+3])
	}
	// Reuse: passing dst back must not change the result.
	x2 := Vector(qf, c, "tabu", x)
	for i := range x2 {
		if x2[i] != x[i] {
			t.Fatalf("dst reuse changed slot %d", i)
		}
	}
}
