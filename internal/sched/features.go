// Package sched closes the co-design loop the paper leaves open — *when*
// is a quantum(-simulated) join-ordering solver worth invoking? — with a
// learned scheduler: a contextual bandit (per-arm LinUCB linear models,
// stdlib-only, deterministic) that maps request features (join-graph shape
// statistics, cardinality spread, deadline budget, breaker states,
// cache warmth, decomposition width) to a routing decision. When the model
// is confident it routes straight to the predicted-best backend; when it
// is uncertain it races a portfolio sized to the uncertainty — never the
// whole registry by reflex, the way the always-race orchestrator does —
// and the classical floor rides along as a safety arm so plan quality can
// never regress versus greedy. Rewards flow back from the hybrid arbiter's
// ground truth: true C_out cost ratio versus the best candidate plus a
// deadline-consumption penalty.
package sched

import (
	"math"
	"sort"
	"time"

	"quantumjoin/internal/join"
	"quantumjoin/internal/service"
)

// Feature-vector layout. The query-derived block (QueryDim slots) is a
// function of the join graph alone and is permutation-invariant: two
// queries identical up to a relabelling of their relation list (same WL
// fingerprint) produce bit-identical feature blocks — every aggregate is
// computed over sorted copies so float summation order cannot depend on
// the labelling. The context block appends the request-time signals.
const (
	// QueryDim is the length of the query-derived feature block.
	QueryDim = 11
	// Dim is the full feature-vector length: the query block plus the
	// deadline budget, cache-hit flag, decomposition part count, and the
	// candidate arm's breaker state.
	Dim = QueryDim + 4
)

// featureNames document the vector layout, index-aligned with Vector's
// output; /v1/sched exposes them beside the learned weights.
var featureNames = [Dim]string{
	"bias",
	"relations",
	"density",
	"max_degree",
	"degree_stddev",
	"leaf_fraction",
	"card_spread",
	"card_stddev",
	"card_skew",
	"sel_mean",
	"sel_spread",
	"deadline_budget",
	"cache_hit",
	"decomp_parts",
	"arm_breaker",
}

// QueryFeatures extracts the permutation-invariant feature block of a join
// query: relation count, join-graph shape statistics (density, maximum
// degree, degree spread, leaf fraction — together separating chains, stars,
// cliques, and trees), cardinality spread and skew, and selectivity
// statistics. All values are scaled into roughly [0, 1] so one slot cannot
// dominate the linear model numerically.
func QueryFeatures(q *join.Query) [QueryDim]float64 {
	var f [QueryDim]float64
	n := q.NumRelations()
	if n == 0 {
		return f
	}
	nf := float64(n)

	deg := make([]float64, n)
	for _, p := range q.Predicates {
		deg[p.R1]++
		deg[p.R2]++
	}
	sort.Float64s(deg)
	maxDeg := deg[n-1]
	leaves := 0.0
	for _, d := range deg {
		if d == 1 {
			leaves++
		}
	}

	logCards := make([]float64, n)
	for t := 0; t < n; t++ {
		logCards[t] = q.LogCard(t)
	}
	sort.Float64s(logCards)

	negLogSels := make([]float64, 0, len(q.Predicates))
	for p := range q.Predicates {
		negLogSels = append(negLogSels, -q.LogSel(p))
	}
	sort.Float64s(negLogSels)

	f[0] = 1 // bias
	f[1] = nf / 64
	if n > 1 {
		f[2] = float64(2*len(q.Predicates)) / (nf * (nf - 1)) // density
		f[3] = maxDeg / (nf - 1)
	}
	f[4] = stddev(deg) / math.Max(1, nf-1)
	f[5] = leaves / nf
	f[6] = (logCards[n-1] - logCards[0]) / 10
	f[7] = stddev(logCards) / 5
	// Skew: mean minus median of the log-cardinalities — positive when a
	// few huge relations pull the mean above the bulk.
	f[8] = (mean(logCards) - median(logCards)) / 5
	if len(negLogSels) > 0 {
		f[9] = mean(negLogSels) / 5
		f[10] = (negLogSels[len(negLogSels)-1] - negLogSels[0]) / 5
	}
	return f
}

// Context carries the request-time signals that are not a function of the
// query graph.
type Context struct {
	// Budget is the remaining deadline at decision time (0 = no deadline).
	Budget time.Duration
	// CacheHit reports whether the request's encoding came from the cache.
	CacheHit bool
	// Parts is the decomposition part count (1 for a monolithic solve).
	Parts int
	// Breakers maps arm name to its reported health state
	// (service.HealthOK and friends); absent arms count as healthy.
	Breakers map[string]string
	// Available restricts the decision to these arms (registered backends
	// whose breakers are not open, size-gated where applicable). Empty
	// means every configured arm is available.
	Available []string
}

// Vector composes the full per-arm feature vector: the query block, the
// log-scaled deadline budget, the cache-hit flag, the decomposition part
// count, and the arm's breaker state (0 healthy, ½ half-open, 1 open).
func Vector(qf [QueryDim]float64, c Context, arm string, dst []float64) []float64 {
	dst = dst[:0]
	dst = append(dst, qf[:]...)
	budgetMs := float64(c.Budget) / float64(time.Millisecond)
	if budgetMs < 0 {
		budgetMs = 0
	}
	// log10(1+ms)/4: 0 for no budget, ~0.35 at 25ms, ~0.6 at 250ms, 1 at 10s.
	dst = append(dst, math.Log10(1+budgetMs)/4)
	dst = append(dst, b2f(c.CacheHit))
	parts := c.Parts
	if parts < 1 {
		parts = 1
	}
	dst = append(dst, float64(parts-1)/8)
	breaker := 0.0
	switch c.Breakers[arm] {
	case service.HealthHalfOpen:
		breaker = 0.5
	case service.HealthOpen:
		breaker = 1
	}
	dst = append(dst, breaker)
	return dst
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// mean of a sorted slice: summation order is fixed by the sort, so the
// result is invariant under permutations of the original data.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
