package sched

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"quantumjoin/internal/join"
	"quantumjoin/internal/querygen"
)

func testQuery(t *testing.T, g querygen.GraphType, n int, seed int64) *join.Query {
	t.Helper()
	q, err := querygen.Generate(querygen.Config{Relations: n, Graph: g},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.Arms == nil {
		cfg.Arms = []string{"dp", "tabu", "anneal"}
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(Config{}); err == nil {
		t.Error("empty arm set accepted")
	}
	if _, err := NewRouter(Config{Arms: []string{"dp", "dp"}}); err == nil {
		t.Error("duplicate arm accepted")
	}
	r, err := NewRouter(Config{Arms: []string{"dp"}})
	if err != nil {
		t.Fatal(err)
	}
	// The floor is implicitly added to the arm set when absent.
	if got := r.Arms(); !reflect.DeepEqual(got, []string{"dp", "greedy"}) {
		t.Errorf("arms = %v, want implicit greedy floor appended", got)
	}
}

// TestColdStartRacesEverything: with no rewards recorded, every arm is
// cold, so the decision must be a race over the full set plus the floor.
func TestColdStartRacesEverything(t *testing.T) {
	r := newTestRouter(t, Config{})
	q := testQuery(t, querygen.Chain, 6, 1)
	d := r.Decide(q, Context{Budget: 100 * time.Millisecond})
	if d.Mode != ModeRace {
		t.Fatalf("cold decision mode = %q, want race", d.Mode)
	}
	if len(d.Arms) != 4 {
		t.Fatalf("cold decision arms = %v, want all 3 + floor", d.Arms)
	}
	if !contains(d.Arms, "greedy") {
		t.Fatalf("decision %v is missing the classical floor", d.Arms)
	}
}

// TestConvergesToDirect: feed one arm consistently high rewards and the
// others low ones; after the cold-start quota the router must route direct
// to the good arm (floor riding along) and report high confidence.
func TestConvergesToDirect(t *testing.T) {
	r := newTestRouter(t, Config{})
	q := testQuery(t, querygen.Star, 7, 2)
	c := Context{Budget: 100 * time.Millisecond}
	for i := 0; i < 30; i++ {
		d := r.Decide(q, c)
		for _, arm := range d.Arms {
			switch arm {
			case "dp":
				r.Update(&d, arm, 1.0)
			case "greedy":
				r.Update(&d, arm, 0.5)
			default:
				r.Update(&d, arm, 0.1)
			}
		}
	}
	d := r.Decide(q, c)
	if d.Best != "dp" {
		t.Fatalf("best arm = %q, want dp (scores %+v)", d.Best, d.Scores)
	}
	if d.Mode != ModeDirect {
		t.Fatalf("mode = %q after 30 unambiguous rounds, want direct (scores %+v)", d.Mode, d.Scores)
	}
	if !reflect.DeepEqual(d.Arms, []string{"dp", "greedy"}) {
		t.Fatalf("direct arms = %v, want predicted best + floor", d.Arms)
	}
	if d.Confidence <= 0.5 {
		t.Errorf("confidence = %v, want > 0.5 once separated", d.Confidence)
	}
}

// TestDecideDeterministic: two routers fed the identical decision/update
// sequence must produce identical decisions at every step — the property
// the persistence round-trip check and CI gate rely on.
func TestDecideDeterministic(t *testing.T) {
	run := func() []Decision {
		r := newTestRouter(t, Config{Seed: 42})
		rng := rand.New(rand.NewSource(9))
		var out []Decision
		for i := 0; i < 40; i++ {
			q := testQuery(t, querygen.GraphType(i%5), 4+i%6, int64(i))
			c := Context{Budget: time.Duration(10+i) * time.Millisecond, Parts: 1 + i%3}
			d := r.Decide(q, c)
			out = append(out, d)
			for _, arm := range d.Arms {
				r.Update(&d, arm, float64(rng.Intn(100))/100)
			}
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Mode != b[i].Mode || a[i].Best != b[i].Best ||
			!reflect.DeepEqual(a[i].Arms, b[i].Arms) ||
			a[i].Confidence != b[i].Confidence {
			t.Fatalf("decision %d diverged:\n  %+v\n  %+v", i, a[i], b[i])
		}
	}
}

// TestMaxWidthCapsRace: the raced portfolio honours MaxWidth but the floor
// still rides along.
func TestMaxWidthCapsRace(t *testing.T) {
	r := newTestRouter(t, Config{Arms: []string{"a", "b", "c", "d"}, MaxWidth: 2})
	q := testQuery(t, querygen.Clique, 5, 3)
	d := r.Decide(q, Context{})
	if len(d.Arms) != 3 {
		t.Fatalf("arms = %v, want 2 raced + floor", d.Arms)
	}
	if d.Arms[len(d.Arms)-1] != "greedy" {
		t.Fatalf("arms = %v, want floor appended last", d.Arms)
	}
}

// TestAvailableRestrictsArms: breakers/size gates shrink the candidate set
// via Context.Available; unknown arms are ignored.
func TestAvailableRestrictsArms(t *testing.T) {
	r := newTestRouter(t, Config{})
	q := testQuery(t, querygen.Tree, 6, 4)
	d := r.Decide(q, Context{Available: []string{"tabu", "nonexistent"}})
	if !reflect.DeepEqual(d.Arms, []string{"tabu", "greedy"}) {
		t.Fatalf("arms = %v, want tabu + floor", d.Arms)
	}
	// Nothing available at all: the floor alone answers.
	d = r.Decide(q, Context{Available: []string{"nonexistent"}})
	if !reflect.DeepEqual(d.Arms, []string{"greedy"}) || d.Mode != ModeDirect {
		t.Fatalf("decision %+v, want direct floor-only", d)
	}
}

func TestRewardShape(t *testing.T) {
	r := newTestRouter(t, Config{LatencyWeight: 0.3})
	budget := 100 * time.Millisecond
	if got := r.Reward(10, 10, 0, budget); got != 1 {
		t.Errorf("winner with zero latency: reward %v, want 1", got)
	}
	if got := r.Reward(10, 20, 0, budget); got != 0.5 {
		t.Errorf("2x worse plan: reward %v, want 0.5", got)
	}
	full := r.Reward(10, 10, budget, budget)
	if math.Abs(full-0.7) > 1e-12 {
		t.Errorf("winner consuming the whole budget: reward %v, want 0.7", full)
	}
	if got := r.Reward(10, 0, 0, budget); got != 0 {
		t.Errorf("invalid cost: reward %v, want 0", got)
	}
	if got := r.Reward(1, 1e6, 2*budget, budget); got != 0 {
		t.Errorf("bad plan over deadline: reward %v, want 0", got)
	}
}

// TestUpdateIgnoresForeignArms: rewards for arms outside the decision (or
// unknown to the router) must not corrupt any model.
func TestUpdateIgnoresForeignArms(t *testing.T) {
	r := newTestRouter(t, Config{})
	q := testQuery(t, querygen.Chain, 5, 5)
	d := r.Decide(q, Context{})
	before := r.Snapshot()
	r.Update(&d, "not-an-arm", 1)
	after := r.Snapshot()
	if !reflect.DeepEqual(before.Models, after.Models) {
		t.Fatal("foreign-arm update changed a model")
	}
}

func TestSnapshotShape(t *testing.T) {
	r := newTestRouter(t, Config{})
	q := testQuery(t, querygen.Star, 5, 6)
	d := r.Decide(q, Context{})
	for _, arm := range d.Arms {
		r.Update(&d, arm, 0.7)
	}
	s := r.Snapshot()
	if s.Counters.Decisions != 1 || s.Counters.Updates != int64(len(d.Arms)) {
		t.Fatalf("counters %+v, want 1 decision and %d updates", s.Counters, len(d.Arms))
	}
	if len(s.FeatureNames) != Dim {
		t.Fatalf("feature names %d, want %d", len(s.FeatureNames), Dim)
	}
	for _, arm := range d.Arms {
		m := s.Models[arm]
		if m.Pulls != 1 || len(m.Theta) != Dim {
			t.Fatalf("arm %s state %+v, want 1 pull and %d-dim theta", arm, m, Dim)
		}
	}
}
