package qaoa

import (
	"math"
)

// AQGD is a gradient-descent optimiser with momentum in the style of
// Qiskit's Analytic Quantum Gradient Descent, the optimiser the paper uses
// (§4.1). Gradients are estimated by symmetric central differences, which
// for the smooth trigonometric QAOA landscape is equivalent to the
// parameter-shift estimate up to O(ε²).
type AQGD struct {
	// Iterations is the number of gradient steps (the paper compares 20
	// and 50).
	Iterations int
	// LearningRate is the step size η (default 0.1).
	LearningRate float64
	// Momentum is the momentum coefficient (default 0.25, Qiskit default).
	Momentum float64
	// Epsilon is the finite-difference step (default 0.2).
	Epsilon float64
}

// Name implements Optimizer.
func (a AQGD) Name() string { return "aqgd" }

// Optimize implements Optimizer.
func (a AQGD) Optimize(start Params, eval func(Params) (float64, error)) (Params, float64, error) {
	if a.Iterations <= 0 {
		a.Iterations = 20
	}
	if a.LearningRate == 0 {
		a.LearningRate = 0.1
	}
	if a.Momentum == 0 {
		a.Momentum = 0.25
	}
	if a.Epsilon == 0 {
		a.Epsilon = 0.2
	}
	x := start.flat()
	vel := make([]float64, len(x))
	best := append([]float64(nil), x...)
	bestVal, err := eval(paramsFromFlat(x))
	if err != nil {
		return start, 0, err
	}
	// Normalise step size to the objective scale so that penalty-heavy
	// QUBOs (huge energies) do not blow up the parameter updates.
	scale := math.Abs(bestVal)
	if scale < 1 {
		scale = 1
	}
	for it := 0; it < a.Iterations; it++ {
		grad := make([]float64, len(x))
		for i := range x {
			xp := append([]float64(nil), x...)
			xm := append([]float64(nil), x...)
			xp[i] += a.Epsilon
			xm[i] -= a.Epsilon
			fp, err := eval(paramsFromFlat(xp))
			if err != nil {
				return start, 0, err
			}
			fm, err := eval(paramsFromFlat(xm))
			if err != nil {
				return start, 0, err
			}
			grad[i] = (fp - fm) / (2 * a.Epsilon)
		}
		for i := range x {
			vel[i] = a.Momentum*vel[i] - a.LearningRate*grad[i]/scale
			x[i] += vel[i]
		}
		val, err := eval(paramsFromFlat(x))
		if err != nil {
			return start, 0, err
		}
		if val < bestVal {
			bestVal = val
			copy(best, x)
		}
	}
	return paramsFromFlat(best), bestVal, nil
}

// GridSearch scans an evenly spaced (γ, β) grid; only available for p = 1
// where the landscape is two-dimensional. It is the deterministic
// reference optimiser used in tests and ablations.
type GridSearch struct {
	// Points per axis (default 16).
	Points int
	// GammaMax bounds the γ axis (default π); β spans [0, π).
	GammaMax float64
}

// Name implements Optimizer.
func (g GridSearch) Name() string { return "grid" }

// Optimize implements Optimizer.
func (g GridSearch) Optimize(start Params, eval func(Params) (float64, error)) (Params, float64, error) {
	if start.P() != 1 {
		// Fall back to keeping the start point for p > 1.
		v, err := eval(start)
		return start, v, err
	}
	if g.Points <= 0 {
		g.Points = 16
	}
	if g.GammaMax == 0 {
		g.GammaMax = math.Pi
	}
	best := start.Clone()
	bestVal := math.Inf(1)
	for i := 0; i < g.Points; i++ {
		for j := 0; j < g.Points; j++ {
			p := NewParams(1)
			p.Gammas[0] = g.GammaMax * float64(i) / float64(g.Points)
			p.Betas[0] = math.Pi * float64(j) / float64(g.Points)
			v, err := eval(p)
			if err != nil {
				return start, 0, err
			}
			if v < bestVal {
				bestVal = v
				best = p
			}
		}
	}
	return best, bestVal, nil
}

// SPSA is the simultaneous-perturbation stochastic approximation
// optimiser: two evaluations per iteration regardless of dimension, the
// standard choice when evaluations are expensive or noisy (provided as an
// alternative to AQGD for ablations).
type SPSA struct {
	Iterations int
	// A and C are the standard SPSA gain parameters (defaults 0.2, 0.15).
	A, C float64
	// Seed drives the perturbation signs deterministically.
	Seed int64
}

// Name implements Optimizer.
func (s SPSA) Name() string { return "spsa" }

// Optimize implements Optimizer.
func (s SPSA) Optimize(start Params, eval func(Params) (float64, error)) (Params, float64, error) {
	if s.Iterations <= 0 {
		s.Iterations = 50
	}
	if s.A == 0 {
		s.A = 0.2
	}
	if s.C == 0 {
		s.C = 0.15
	}
	rng := splitMix(uint64(s.Seed) ^ 0x9e3779b97f4a7c15)
	x := start.flat()
	best := append([]float64(nil), x...)
	bestVal, err := eval(paramsFromFlat(x))
	if err != nil {
		return start, 0, err
	}
	scale := math.Abs(bestVal)
	if scale < 1 {
		scale = 1
	}
	for k := 1; k <= s.Iterations; k++ {
		ak := s.A / math.Pow(float64(k), 0.602)
		ck := s.C / math.Pow(float64(k), 0.101)
		delta := make([]float64, len(x))
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		for i := range delta {
			if rng()&1 == 0 {
				delta[i] = 1
			} else {
				delta[i] = -1
			}
			xp[i] += ck * delta[i]
			xm[i] -= ck * delta[i]
		}
		fp, err := eval(paramsFromFlat(xp))
		if err != nil {
			return start, 0, err
		}
		fm, err := eval(paramsFromFlat(xm))
		if err != nil {
			return start, 0, err
		}
		g := (fp - fm) / (2 * ck * scale)
		for i := range x {
			x[i] -= ak * g * delta[i]
		}
		val, err := eval(paramsFromFlat(x))
		if err != nil {
			return start, 0, err
		}
		if val < bestVal {
			bestVal = val
			copy(best, x)
		}
	}
	return paramsFromFlat(best), bestVal, nil
}

// splitMix returns a tiny deterministic PRNG (SplitMix64) so SPSA does not
// depend on math/rand ordering.
func splitMix(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}
