// Package qaoa implements the Quantum Approximate Optimisation Algorithm
// (Farhi et al.) for QUBO problems, as used by the paper for gate-based
// join ordering (§2.2.1, §4.1): a depth-p alternation of a cost operator
// exp(-iγH_C) built from the problem's Ising form and a transverse-field
// mixer exp(-iβΣX), wrapped in a hybrid loop where a classical gradient
// optimiser tunes (γ, β) from measured expectations.
package qaoa

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"quantumjoin/internal/circuit"
	"quantumjoin/internal/noise"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/qsim"
	"quantumjoin/internal/qubo"
)

// Params are the 2p variational parameters of a depth-p QAOA circuit.
type Params struct {
	Gammas []float64 // cost-operator angles, one per layer
	Betas  []float64 // mixer angles, one per layer
}

// NewParams allocates zeroed parameters for p layers.
func NewParams(p int) Params {
	return Params{Gammas: make([]float64, p), Betas: make([]float64, p)}
}

// P returns the layer count.
func (p Params) P() int { return len(p.Gammas) }

// Clone returns a deep copy.
func (p Params) Clone() Params {
	return Params{
		Gammas: append([]float64(nil), p.Gammas...),
		Betas:  append([]float64(nil), p.Betas...),
	}
}

// flat returns the parameters as a single vector (γ_1..γ_p, β_1..β_p).
func (p Params) flat() []float64 {
	return append(append([]float64(nil), p.Gammas...), p.Betas...)
}

func paramsFromFlat(v []float64) Params {
	p := len(v) / 2
	return Params{
		Gammas: append([]float64(nil), v[:p]...),
		Betas:  append([]float64(nil), v[p:]...),
	}
}

// BuildCircuit constructs the QAOA circuit for a QUBO: Hadamards on all
// qubits, then per layer an RZ per linear Ising field, an RZZ per coupling
// (these are the quadratic contributions whose count drives depth, §3.4),
// and an RX mixer on every qubit.
func BuildCircuit(q *qubo.QUBO, params Params) *circuit.Circuit {
	is := q.ToIsing()
	c := circuit.New(q.N())
	for i := 0; i < q.N(); i++ {
		c.Append(circuit.G1(circuit.H, i, 0))
	}
	for layer := 0; layer < params.P(); layer++ {
		gamma := params.Gammas[layer]
		for i, h := range is.H {
			if h != 0 {
				c.Append(circuit.G1(circuit.RZ, i, 2*gamma*h))
			}
		}
		for _, p := range sortedPairs(is) {
			c.Append(circuit.G2(circuit.RZZ, p.I, p.J, 2*gamma*is.J[p]))
		}
		beta := params.Betas[layer]
		for i := 0; i < q.N(); i++ {
			c.Append(circuit.G1(circuit.RX, i, 2*beta))
		}
	}
	return c
}

func sortedPairs(is *qubo.Ising) []qubo.Pair {
	tmp := qubo.New(is.N)
	for p, w := range is.J {
		tmp.AddQuad(p.I, p.J, w)
	}
	return tmp.QuadTerms()
}

// Executor evaluates QAOA circuits on the statevector simulator, with an
// optional noise calibration that degrades both the optimiser's signal and
// the final samples exactly as the paper's hardware runs experienced.
type Executor struct {
	QUBO *qubo.QUBO
	// Noise, when non-nil, applies the depolarising output model with λ
	// computed from the transpiled circuit handed to SetTranspiled (or,
	// if none was provided, from the logical circuit itself).
	Noise *noise.Calibration
	// CostTableMaxQubits caps the problem size for which a dense cost
	// table (8·2^n bytes) is precomputed and cached across optimiser
	// iterations; above the cap Expectation falls back to evaluating the
	// QUBO per basis state. 0 selects qsim.MaxQubits.
	CostTableMaxQubits int

	transpiled *circuit.Circuit
	uniformE   float64
	haveUnifE  bool

	// state is the pooled statevector reused across the optimiser's energy
	// evaluations (Reset between runs); costTable caches the dense QUBO
	// diagonal. An Executor is not safe for concurrent use.
	state     *qsim.State
	costTable []float64
	haveTable bool
}

// Close releases the executor's pooled statevector buffer. The executor
// remains usable; the next run re-acquires a buffer.
func (ex *Executor) Close() {
	if ex.state != nil {
		ex.state.Release()
		ex.state = nil
	}
}

// table returns the cached dense cost table, building it on first use, or
// nil when the problem exceeds CostTableMaxQubits.
func (ex *Executor) table() []float64 {
	if !ex.haveTable {
		max := ex.CostTableMaxQubits
		if max <= 0 || max > qsim.MaxQubits {
			max = qsim.MaxQubits
		}
		if ex.QUBO.N() <= max {
			ex.costTable = ex.QUBO.CostTable()
		}
		ex.haveTable = true
	}
	return ex.costTable
}

// SetTranspiled registers the hardware-level circuit whose gate counts and
// duration determine the noise strength; the logical circuit is still what
// the simulator executes (the transpiled one is unitarily equivalent).
func (ex *Executor) SetTranspiled(c *circuit.Circuit) { ex.transpiled = c }

// run executes the circuit for the given parameters and returns the
// executor's pooled state (valid until the next run or Close).
func (ex *Executor) run(params Params) (*qsim.State, error) {
	c := BuildCircuit(ex.QUBO, params)
	if ex.state == nil {
		s, err := qsim.Acquire(ex.QUBO.N())
		if err != nil {
			return nil, err
		}
		ex.state = s
	} else {
		ex.state.Reset()
	}
	if err := ex.state.Run(c); err != nil {
		return nil, err
	}
	return ex.state, nil
}

// lambda returns the depolarising weight for the current noise setting.
func (ex *Executor) lambda(params Params) float64 {
	if ex.Noise == nil {
		return 0
	}
	c := ex.transpiled
	if c == nil {
		c = BuildCircuit(ex.QUBO, params)
	}
	return ex.Noise.Lambda(c)
}

// uniformExpectation returns the QUBO mean over all assignments, the
// expectation of a fully depolarised state. For a QUBO this is
// Offset + Σc_i/2 + Σc_ij/4.
func (ex *Executor) uniformExpectation() float64 {
	if ex.haveUnifE {
		return ex.uniformE
	}
	e := ex.QUBO.Offset
	for i := 0; i < ex.QUBO.N(); i++ {
		e += ex.QUBO.Linear(i) / 2
	}
	for _, p := range ex.QUBO.QuadTerms() {
		e += ex.QUBO.Quad(p.I, p.J) / 4
	}
	ex.uniformE = e
	ex.haveUnifE = true
	return e
}

// Expectation returns ⟨H_C⟩ for the given parameters, degraded by the
// noise model when one is configured.
func (ex *Executor) Expectation(params Params) (float64, error) {
	s, err := ex.run(params)
	if err != nil {
		return 0, err
	}
	var ideal float64
	if tab := ex.table(); tab != nil {
		ideal = s.ExpectationTable(tab)
	} else {
		ideal = s.ExpectationDiag(func(b uint64) float64 { return ex.QUBO.ValueBits(b) })
	}
	if l := ex.lambda(params); l > 0 {
		return noise.MixedExpectation(l, ideal, ex.uniformExpectation()), nil
	}
	return ideal, nil
}

// Sample measures the optimised circuit: shots outcomes from the (noisy)
// output distribution.
func (ex *Executor) Sample(params Params, shots int, rng *rand.Rand) ([]uint64, error) {
	s, err := ex.run(params)
	if err != nil {
		return nil, err
	}
	ideal := s.Sample(rng, shots)
	l := ex.lambda(params)
	if l == 0 && (ex.Noise == nil || ex.Noise.ReadoutError == 0) {
		return ideal, nil
	}
	k := 0
	ro := 0.0
	if ex.Noise != nil {
		ro = ex.Noise.ReadoutError
	}
	sampler := noise.Sampler{Lambda: l, ReadoutError: ro, NumQubits: ex.QUBO.N()}
	return sampler.Sample(rng, shots, func() uint64 {
		b := ideal[k%len(ideal)]
		k++
		return b
	}), nil
}

// ScoreSamples returns the QUBO cost of each sampled basis state, reusing
// the cached dense cost table when one is available.
func (ex *Executor) ScoreSamples(samples []uint64) []float64 {
	energies := make([]float64, len(samples))
	if tab := ex.table(); tab != nil {
		for i, b := range samples {
			energies[i] = tab[b]
		}
		return energies
	}
	for i, b := range samples {
		energies[i] = ex.QUBO.ValueBits(b)
	}
	return energies
}

// Result summarises a full hybrid optimisation run.
type Result struct {
	Params      Params
	Expectation float64
	Evaluations int
	Samples     []uint64
	// Energies holds the QUBO cost of each sample (same order), scored
	// through the executor's cost table.
	Energies []float64
}

// Optimizer tunes QAOA parameters from expectation evaluations.
type Optimizer interface {
	// Optimize minimises eval starting from the given parameters and
	// returns the best parameters found together with their value.
	Optimize(start Params, eval func(Params) (float64, error)) (Params, float64, error)
	Name() string
}

// Run performs the full hybrid loop of §4.1: optimise (γ, β) with the
// given classical optimiser, then draw the requested number of shots at
// the optimum.
func Run(q *qubo.QUBO, p int, opt Optimizer, shots int, cal *noise.Calibration, transpiled *circuit.Circuit, rng *rand.Rand) (Result, error) {
	return RunContext(context.Background(), q, p, opt, shots, cal, transpiled, rng)
}

// RunContext is Run with cancellation checked before every optimiser
// energy evaluation, so long hybrid loops respect request deadlines.
func RunContext(ctx context.Context, q *qubo.QUBO, p int, opt Optimizer, shots int, cal *noise.Calibration, transpiled *circuit.Circuit, rng *rand.Rand) (Result, error) {
	if p < 1 {
		return Result{}, fmt.Errorf("qaoa: layer count p must be >= 1, got %d", p)
	}
	ex := &Executor{QUBO: q, Noise: cal}
	defer ex.Close()
	if transpiled != nil {
		ex.SetTranspiled(transpiled)
	}
	evals := 0
	eval := func(par Params) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("qaoa: cancelled after %d evaluations: %w", evals, err)
		}
		evals++
		return ex.Expectation(par)
	}
	start := NewParams(p)
	for i := 0; i < p; i++ {
		// Small symmetric starting angles; the landscape at 0 is flat.
		start.Gammas[i] = 0.01
		start.Betas[i] = math.Pi / 8
	}
	_, optSpan := obs.StartSpan(ctx, "qaoa.optimize")
	optSpan.SetAttr("layers", p)
	optSpan.SetAttr("optimizer", opt.Name())
	best, val, err := opt.Optimize(start, eval)
	optSpan.SetAttr("evaluations", evals)
	optSpan.End(err)
	if err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("qaoa: cancelled before sampling: %w", err)
	}
	_, sampleSpan := obs.StartSpan(ctx, "qaoa.sample")
	sampleSpan.SetAttr("shots", shots)
	samples, err := ex.Sample(best, shots, rng)
	sampleSpan.End(err)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Params:      best,
		Expectation: val,
		Evaluations: evals,
		Samples:     samples,
		Energies:    ex.ScoreSamples(samples),
	}, nil
}
