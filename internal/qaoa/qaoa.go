// Package qaoa implements the Quantum Approximate Optimisation Algorithm
// (Farhi et al.) for QUBO problems, as used by the paper for gate-based
// join ordering (§2.2.1, §4.1): a depth-p alternation of a cost operator
// exp(-iγH_C) built from the problem's Ising form and a transverse-field
// mixer exp(-iβΣX), wrapped in a hybrid loop where a classical gradient
// optimiser tunes (γ, β) from measured expectations.
package qaoa

import (
	"fmt"
	"math"
	"math/rand"

	"quantumjoin/internal/circuit"
	"quantumjoin/internal/noise"
	"quantumjoin/internal/qsim"
	"quantumjoin/internal/qubo"
)

// Params are the 2p variational parameters of a depth-p QAOA circuit.
type Params struct {
	Gammas []float64 // cost-operator angles, one per layer
	Betas  []float64 // mixer angles, one per layer
}

// NewParams allocates zeroed parameters for p layers.
func NewParams(p int) Params {
	return Params{Gammas: make([]float64, p), Betas: make([]float64, p)}
}

// P returns the layer count.
func (p Params) P() int { return len(p.Gammas) }

// Clone returns a deep copy.
func (p Params) Clone() Params {
	return Params{
		Gammas: append([]float64(nil), p.Gammas...),
		Betas:  append([]float64(nil), p.Betas...),
	}
}

// flat returns the parameters as a single vector (γ_1..γ_p, β_1..β_p).
func (p Params) flat() []float64 {
	return append(append([]float64(nil), p.Gammas...), p.Betas...)
}

func paramsFromFlat(v []float64) Params {
	p := len(v) / 2
	return Params{
		Gammas: append([]float64(nil), v[:p]...),
		Betas:  append([]float64(nil), v[p:]...),
	}
}

// BuildCircuit constructs the QAOA circuit for a QUBO: Hadamards on all
// qubits, then per layer an RZ per linear Ising field, an RZZ per coupling
// (these are the quadratic contributions whose count drives depth, §3.4),
// and an RX mixer on every qubit.
func BuildCircuit(q *qubo.QUBO, params Params) *circuit.Circuit {
	is := q.ToIsing()
	c := circuit.New(q.N())
	for i := 0; i < q.N(); i++ {
		c.Append(circuit.G1(circuit.H, i, 0))
	}
	for layer := 0; layer < params.P(); layer++ {
		gamma := params.Gammas[layer]
		for i, h := range is.H {
			if h != 0 {
				c.Append(circuit.G1(circuit.RZ, i, 2*gamma*h))
			}
		}
		for _, p := range sortedPairs(is) {
			c.Append(circuit.G2(circuit.RZZ, p.I, p.J, 2*gamma*is.J[p]))
		}
		beta := params.Betas[layer]
		for i := 0; i < q.N(); i++ {
			c.Append(circuit.G1(circuit.RX, i, 2*beta))
		}
	}
	return c
}

func sortedPairs(is *qubo.Ising) []qubo.Pair {
	tmp := qubo.New(is.N)
	for p, w := range is.J {
		tmp.AddQuad(p.I, p.J, w)
	}
	return tmp.QuadTerms()
}

// Executor evaluates QAOA circuits on the statevector simulator, with an
// optional noise calibration that degrades both the optimiser's signal and
// the final samples exactly as the paper's hardware runs experienced.
type Executor struct {
	QUBO *qubo.QUBO
	// Noise, when non-nil, applies the depolarising output model with λ
	// computed from the transpiled circuit handed to SetTranspiled (or,
	// if none was provided, from the logical circuit itself).
	Noise *noise.Calibration

	transpiled *circuit.Circuit
	uniformE   float64
	haveUnifE  bool
}

// SetTranspiled registers the hardware-level circuit whose gate counts and
// duration determine the noise strength; the logical circuit is still what
// the simulator executes (the transpiled one is unitarily equivalent).
func (ex *Executor) SetTranspiled(c *circuit.Circuit) { ex.transpiled = c }

// run executes the circuit for the given parameters and returns the state.
func (ex *Executor) run(params Params) (*qsim.State, error) {
	c := BuildCircuit(ex.QUBO, params)
	s, err := qsim.NewState(ex.QUBO.N())
	if err != nil {
		return nil, err
	}
	if err := s.Run(c); err != nil {
		return nil, err
	}
	return s, nil
}

// lambda returns the depolarising weight for the current noise setting.
func (ex *Executor) lambda(params Params) float64 {
	if ex.Noise == nil {
		return 0
	}
	c := ex.transpiled
	if c == nil {
		c = BuildCircuit(ex.QUBO, params)
	}
	return ex.Noise.Lambda(c)
}

// uniformExpectation returns the QUBO mean over all assignments, the
// expectation of a fully depolarised state. For a QUBO this is
// Offset + Σc_i/2 + Σc_ij/4.
func (ex *Executor) uniformExpectation() float64 {
	if ex.haveUnifE {
		return ex.uniformE
	}
	e := ex.QUBO.Offset
	for i := 0; i < ex.QUBO.N(); i++ {
		e += ex.QUBO.Linear(i) / 2
	}
	for _, p := range ex.QUBO.QuadTerms() {
		e += ex.QUBO.Quad(p.I, p.J) / 4
	}
	ex.uniformE = e
	ex.haveUnifE = true
	return e
}

// Expectation returns ⟨H_C⟩ for the given parameters, degraded by the
// noise model when one is configured.
func (ex *Executor) Expectation(params Params) (float64, error) {
	s, err := ex.run(params)
	if err != nil {
		return 0, err
	}
	ideal := s.ExpectationDiag(func(b uint64) float64 { return ex.QUBO.ValueBits(b) })
	if l := ex.lambda(params); l > 0 {
		return noise.MixedExpectation(l, ideal, ex.uniformExpectation()), nil
	}
	return ideal, nil
}

// Sample measures the optimised circuit: shots outcomes from the (noisy)
// output distribution.
func (ex *Executor) Sample(params Params, shots int, rng *rand.Rand) ([]uint64, error) {
	s, err := ex.run(params)
	if err != nil {
		return nil, err
	}
	ideal := s.Sample(rng, shots)
	l := ex.lambda(params)
	if l == 0 && (ex.Noise == nil || ex.Noise.ReadoutError == 0) {
		return ideal, nil
	}
	k := 0
	ro := 0.0
	if ex.Noise != nil {
		ro = ex.Noise.ReadoutError
	}
	sampler := noise.Sampler{Lambda: l, ReadoutError: ro, NumQubits: ex.QUBO.N()}
	return sampler.Sample(rng, shots, func() uint64 {
		b := ideal[k%len(ideal)]
		k++
		return b
	}), nil
}

// Result summarises a full hybrid optimisation run.
type Result struct {
	Params      Params
	Expectation float64
	Evaluations int
	Samples     []uint64
}

// Optimizer tunes QAOA parameters from expectation evaluations.
type Optimizer interface {
	// Optimize minimises eval starting from the given parameters and
	// returns the best parameters found together with their value.
	Optimize(start Params, eval func(Params) (float64, error)) (Params, float64, error)
	Name() string
}

// Run performs the full hybrid loop of §4.1: optimise (γ, β) with the
// given classical optimiser, then draw the requested number of shots at
// the optimum.
func Run(q *qubo.QUBO, p int, opt Optimizer, shots int, cal *noise.Calibration, transpiled *circuit.Circuit, rng *rand.Rand) (Result, error) {
	if p < 1 {
		return Result{}, fmt.Errorf("qaoa: layer count p must be >= 1, got %d", p)
	}
	ex := &Executor{QUBO: q, Noise: cal}
	if transpiled != nil {
		ex.SetTranspiled(transpiled)
	}
	evals := 0
	eval := func(par Params) (float64, error) {
		evals++
		return ex.Expectation(par)
	}
	start := NewParams(p)
	for i := 0; i < p; i++ {
		// Small symmetric starting angles; the landscape at 0 is flat.
		start.Gammas[i] = 0.01
		start.Betas[i] = math.Pi / 8
	}
	best, val, err := opt.Optimize(start, eval)
	if err != nil {
		return Result{}, err
	}
	samples, err := ex.Sample(best, shots, rng)
	if err != nil {
		return Result{}, err
	}
	return Result{Params: best, Expectation: val, Evaluations: evals, Samples: samples}, nil
}
