// Package qaoa implements the Quantum Approximate Optimisation Algorithm
// (Farhi et al.) for QUBO problems, as used by the paper for gate-based
// join ordering (§2.2.1, §4.1): a depth-p alternation of a cost operator
// exp(-iγH_C) built from the problem's Ising form and a transverse-field
// mixer exp(-iβΣX), wrapped in a hybrid loop where a classical gradient
// optimiser tunes (γ, β) from measured expectations.
package qaoa

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"quantumjoin/internal/circuit"
	"quantumjoin/internal/noise"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/qsim"
	"quantumjoin/internal/qubo"
)

// Params are the 2p variational parameters of a depth-p QAOA circuit.
type Params struct {
	Gammas []float64 // cost-operator angles, one per layer
	Betas  []float64 // mixer angles, one per layer
}

// NewParams allocates zeroed parameters for p layers.
func NewParams(p int) Params {
	return Params{Gammas: make([]float64, p), Betas: make([]float64, p)}
}

// P returns the layer count.
func (p Params) P() int { return len(p.Gammas) }

// Clone returns a deep copy.
func (p Params) Clone() Params {
	return Params{
		Gammas: append([]float64(nil), p.Gammas...),
		Betas:  append([]float64(nil), p.Betas...),
	}
}

// flat returns the parameters as a single vector (γ_1..γ_p, β_1..β_p).
func (p Params) flat() []float64 {
	return append(append([]float64(nil), p.Gammas...), p.Betas...)
}

func paramsFromFlat(v []float64) Params {
	p := len(v) / 2
	return Params{
		Gammas: append([]float64(nil), v[:p]...),
		Betas:  append([]float64(nil), v[p:]...),
	}
}

// BuildCircuit constructs the QAOA circuit for a QUBO: Hadamards on all
// qubits, then per layer an RZ per linear Ising field, an RZZ per coupling
// (these are the quadratic contributions whose count drives depth, §3.4),
// and an RX mixer on every qubit.
func BuildCircuit(q *qubo.QUBO, params Params) *circuit.Circuit {
	is := q.ToIsing()
	c := circuit.New(q.N())
	for i := 0; i < q.N(); i++ {
		c.Append(circuit.G1(circuit.H, i, 0))
	}
	for layer := 0; layer < params.P(); layer++ {
		gamma := params.Gammas[layer]
		for i, h := range is.H {
			if h != 0 {
				c.Append(circuit.G1(circuit.RZ, i, 2*gamma*h))
			}
		}
		for _, p := range sortedPairs(is) {
			c.Append(circuit.G2(circuit.RZZ, p.I, p.J, 2*gamma*is.J[p]))
		}
		beta := params.Betas[layer]
		for i := 0; i < q.N(); i++ {
			c.Append(circuit.G1(circuit.RX, i, 2*beta))
		}
	}
	return c
}

func sortedPairs(is *qubo.Ising) []qubo.Pair {
	tmp := qubo.New(is.N)
	for p, w := range is.J {
		tmp.AddQuad(p.I, p.J, w)
	}
	return tmp.QuadTerms()
}

// program is a compiled circuit skeleton: the gate list of BuildCircuit
// whose structure depends only on the QUBO and the layer count, never on
// (γ, β). Per evaluation the variational angles are rewritten in place —
// gate i's Param is factor[i] times its layer's γ or β — instead of
// re-deriving the Ising form, re-sorting couplings, and re-allocating the
// whole circuit on every optimiser step.
type program struct {
	circ   *circuit.Circuit
	layers int
	factor []float64 // 2h for RZ, 2J for RZZ, 2 for RX; 0 marks fixed gates
	layer  []int
	gamma  []bool // γ (cost) vs β (mixer)
}

// ensureProgram builds (or rebuilds, if the layer count changed) the cached
// program for the executor's QUBO.
func (ex *Executor) ensureProgram(p int) *program {
	if ex.prog != nil && ex.prog.layers == p {
		return ex.prog
	}
	c := BuildCircuit(ex.QUBO, NewParams(p))
	is := ex.QUBO.ToIsing()
	pr := &program{
		circ:   c,
		layers: p,
		factor: make([]float64, len(c.Gates)),
		layer:  make([]int, len(c.Gates)),
		gamma:  make([]bool, len(c.Gates)),
	}
	n := ex.QUBO.N()
	rx := 0 // n mixer gates per layer: rx/n is the current layer index
	for i, g := range c.Gates {
		switch g.Kind {
		case circuit.RZ:
			pr.factor[i] = 2 * is.H[g.Q0]
			pr.layer[i] = rx / n
			pr.gamma[i] = true
		case circuit.RZZ:
			pr.factor[i] = 2 * is.J[qubo.Pair{I: g.Q0, J: g.Q1}]
			pr.layer[i] = rx / n
			pr.gamma[i] = true
		case circuit.RX:
			pr.factor[i] = 2
			pr.layer[i] = rx / n
			rx++
		}
	}
	ex.prog = pr
	return pr
}

// rewrite sets the variational angles. factor·angle multiplies in the same
// order as BuildCircuit's 2·angle·coeff up to commutativity of one rounding
// step, so rewritten circuits are bit-identical to freshly built ones.
func (pr *program) rewrite(params Params) {
	gs := pr.circ.Gates
	for i := range gs {
		f := pr.factor[i]
		if f == 0 {
			continue
		}
		ang := params.Betas[pr.layer[i]]
		if pr.gamma[i] {
			ang = params.Gammas[pr.layer[i]]
		}
		gs[i].Param = f * ang
	}
}

// Executor evaluates QAOA circuits on the statevector simulator, with an
// optional noise calibration that degrades both the optimiser's signal and
// the final samples exactly as the paper's hardware runs experienced.
type Executor struct {
	QUBO *qubo.QUBO
	// Noise, when non-nil, applies the depolarising output model with λ
	// computed from the transpiled circuit handed to SetTranspiled (or,
	// if none was provided, from the logical circuit itself).
	Noise *noise.Calibration
	// CostTableMaxQubits caps the problem size for which a dense cost
	// table (8·2^n bytes) is precomputed and cached across optimiser
	// iterations; above the cap Expectation falls back to evaluating the
	// QUBO per basis state. 0 selects qsim.MaxQubits.
	CostTableMaxQubits int
	// Precision selects the statevector storage width. The default,
	// qsim.Complex128, is the ground truth; qsim.Complex64 halves kernel
	// memory traffic within the error bound pinned by the precision tests.
	Precision qsim.Precision

	transpiled *circuit.Circuit
	uniformE   float64
	haveUnifE  bool
	prog       *program

	// state is the pooled statevector reused across the optimiser's energy
	// evaluations (Reset between runs); costTable caches the dense QUBO
	// diagonal. An Executor is not safe for concurrent use.
	state     *qsim.State
	costTable []float64
	haveTable bool
}

// Close releases the executor's pooled statevector buffer. The executor
// remains usable; the next run re-acquires a buffer.
func (ex *Executor) Close() {
	if ex.state != nil {
		ex.state.Release()
		ex.state = nil
	}
}

// table returns the cached dense cost table, building it on first use, or
// nil when the problem exceeds CostTableMaxQubits.
func (ex *Executor) table() []float64 {
	if !ex.haveTable {
		max := ex.CostTableMaxQubits
		if max <= 0 || max > qsim.MaxQubits {
			max = qsim.MaxQubits
		}
		if ex.QUBO.N() <= max {
			ex.costTable = ex.QUBO.CostTable()
		}
		ex.haveTable = true
	}
	return ex.costTable
}

// SetTranspiled registers the hardware-level circuit whose gate counts and
// duration determine the noise strength; the logical circuit is still what
// the simulator executes (the transpiled one is unitarily equivalent).
func (ex *Executor) SetTranspiled(c *circuit.Circuit) { ex.transpiled = c }

// run executes the circuit for the given parameters and returns the
// executor's pooled state (valid until the next run or Close).
func (ex *Executor) run(params Params) (*qsim.State, error) {
	pr := ex.ensureProgram(params.P())
	pr.rewrite(params)
	if ex.state != nil && ex.state.Precision() != ex.Precision {
		ex.state.Release()
		ex.state = nil
	}
	if ex.state == nil {
		s, err := qsim.AcquireWith(ex.QUBO.N(), ex.Precision)
		if err != nil {
			return nil, err
		}
		ex.state = s
	} else {
		ex.state.Reset()
	}
	if err := ex.state.Run(pr.circ); err != nil {
		return nil, err
	}
	return ex.state, nil
}

// lambda returns the depolarising weight for the current noise setting. It
// is always called after run(params), so the cached program already holds
// this evaluation's angles (Lambda only reads gate counts and durations
// anyway).
func (ex *Executor) lambda(params Params) float64 {
	if ex.Noise == nil {
		return 0
	}
	c := ex.transpiled
	if c == nil {
		c = ex.ensureProgram(params.P()).circ
	}
	return ex.Noise.Lambda(c)
}

// uniformExpectation returns the QUBO mean over all assignments, the
// expectation of a fully depolarised state. For a QUBO this is
// Offset + Σc_i/2 + Σc_ij/4.
func (ex *Executor) uniformExpectation() float64 {
	if ex.haveUnifE {
		return ex.uniformE
	}
	e := ex.QUBO.Offset
	for i := 0; i < ex.QUBO.N(); i++ {
		e += ex.QUBO.Linear(i) / 2
	}
	for _, p := range ex.QUBO.QuadTerms() {
		e += ex.QUBO.Quad(p.I, p.J) / 4
	}
	ex.uniformE = e
	ex.haveUnifE = true
	return e
}

// Expectation returns ⟨H_C⟩ for the given parameters, degraded by the
// noise model when one is configured.
func (ex *Executor) Expectation(params Params) (float64, error) {
	s, err := ex.run(params)
	if err != nil {
		return 0, err
	}
	var ideal float64
	if tab := ex.table(); tab != nil {
		ideal = s.ExpectationTable(tab)
	} else {
		ideal = s.ExpectationDiag(func(b uint64) float64 { return ex.QUBO.ValueBits(b) })
	}
	if l := ex.lambda(params); l > 0 {
		return noise.MixedExpectation(l, ideal, ex.uniformExpectation()), nil
	}
	return ideal, nil
}

// Sample measures the optimised circuit: shots outcomes from the (noisy)
// output distribution.
func (ex *Executor) Sample(params Params, shots int, rng *rand.Rand) ([]uint64, error) {
	s, err := ex.run(params)
	if err != nil {
		return nil, err
	}
	ideal := s.Sample(rng, shots)
	l := ex.lambda(params)
	if l == 0 && (ex.Noise == nil || ex.Noise.ReadoutError == 0) {
		return ideal, nil
	}
	k := 0
	ro := 0.0
	if ex.Noise != nil {
		ro = ex.Noise.ReadoutError
	}
	sampler := noise.Sampler{Lambda: l, ReadoutError: ro, NumQubits: ex.QUBO.N()}
	return sampler.Sample(rng, shots, func() uint64 {
		b := ideal[k%len(ideal)]
		k++
		return b
	}), nil
}

// SampleSeeds measures the optimised circuit for every rng at once: one
// circuit execution and one batched cumulative scan (qsim.SampleBatch)
// serve all seeds, instead of re-walking the 2^n amplitudes per restart.
// Stream k is bit-identical to Sample(params, shots, rngs[k]), including
// the noise model's per-rng draws.
func (ex *Executor) SampleSeeds(params Params, shots int, rngs []*rand.Rand) ([][]uint64, error) {
	s, err := ex.run(params)
	if err != nil {
		return nil, err
	}
	ideal := s.SampleBatch(rngs, shots)
	l := ex.lambda(params)
	ro := 0.0
	if ex.Noise != nil {
		ro = ex.Noise.ReadoutError
	}
	if l == 0 && ro == 0 {
		return ideal, nil
	}
	out := make([][]uint64, len(rngs))
	for r, rng := range rngs {
		k := 0
		seq := ideal[r]
		sampler := noise.Sampler{Lambda: l, ReadoutError: ro, NumQubits: ex.QUBO.N()}
		out[r] = sampler.Sample(rng, shots, func() uint64 {
			b := seq[k%len(seq)]
			k++
			return b
		})
	}
	return out, nil
}

// ScoreSamples returns the QUBO cost of each sampled basis state, reusing
// the cached dense cost table when one is available.
func (ex *Executor) ScoreSamples(samples []uint64) []float64 {
	energies := make([]float64, len(samples))
	if tab := ex.table(); tab != nil {
		for i, b := range samples {
			energies[i] = tab[b]
		}
		return energies
	}
	for i, b := range samples {
		energies[i] = ex.QUBO.ValueBits(b)
	}
	return energies
}

// Result summarises a full hybrid optimisation run.
type Result struct {
	Params      Params
	Expectation float64
	Evaluations int
	Samples     []uint64
	// Energies holds the QUBO cost of each sample (same order), scored
	// through the executor's cost table.
	Energies []float64
}

// Optimizer tunes QAOA parameters from expectation evaluations.
type Optimizer interface {
	// Optimize minimises eval starting from the given parameters and
	// returns the best parameters found together with their value.
	Optimize(start Params, eval func(Params) (float64, error)) (Params, float64, error)
	Name() string
}

// Run performs the full hybrid loop of §4.1: optimise (γ, β) with the
// given classical optimiser, then draw the requested number of shots at
// the optimum.
func Run(q *qubo.QUBO, p int, opt Optimizer, shots int, cal *noise.Calibration, transpiled *circuit.Circuit, rng *rand.Rand) (Result, error) {
	return RunContext(context.Background(), q, p, opt, shots, cal, transpiled, rng)
}

// RunContext is Run with cancellation checked before every optimiser
// energy evaluation, so long hybrid loops respect request deadlines.
func RunContext(ctx context.Context, q *qubo.QUBO, p int, opt Optimizer, shots int, cal *noise.Calibration, transpiled *circuit.Circuit, rng *rand.Rand) (Result, error) {
	o := RunOptions{Layers: p, Optimizer: opt, Shots: shots, Noise: cal, Transpiled: transpiled}
	rngs := [1]*rand.Rand{rng}
	rs, err := RunSeedsContext(ctx, q, o, rngs[:])
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// RunOptions collects the knobs of a hybrid run, so callers that only tune
// some of them (precision, batched seeds) don't grow the positional
// RunContext signature.
type RunOptions struct {
	Layers     int
	Optimizer  Optimizer
	Shots      int
	Noise      *noise.Calibration
	Transpiled *circuit.Circuit
	// Precision selects the statevector width (default qsim.Complex128).
	Precision qsim.Precision
}

// RunSeedsContext runs the hybrid loop once — the classical optimiser is
// deterministic, so one (γ, β) tune serves every restart — then samples all
// rngs through one batched scan of the final state. Element k equals the
// Result of a solo RunContext with rngs[k] bit for bit; the shared Params
// slices are owned by the call and must be treated as read-only.
func RunSeedsContext(ctx context.Context, q *qubo.QUBO, o RunOptions, rngs []*rand.Rand) ([]Result, error) {
	if o.Layers < 1 {
		return nil, fmt.Errorf("qaoa: layer count p must be >= 1, got %d", o.Layers)
	}
	if len(rngs) == 0 {
		return nil, fmt.Errorf("qaoa: no sampling seeds supplied")
	}
	ex := &Executor{QUBO: q, Noise: o.Noise, Precision: o.Precision}
	defer ex.Close()
	if o.Transpiled != nil {
		ex.SetTranspiled(o.Transpiled)
	}
	evals := 0
	eval := func(par Params) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("qaoa: cancelled after %d evaluations: %w", evals, err)
		}
		evals++
		return ex.Expectation(par)
	}
	start := NewParams(o.Layers)
	for i := 0; i < o.Layers; i++ {
		// Small symmetric starting angles; the landscape at 0 is flat.
		start.Gammas[i] = 0.01
		start.Betas[i] = math.Pi / 8
	}
	_, optSpan := obs.StartSpan(ctx, "qaoa.optimize")
	optSpan.SetAttr("layers", o.Layers)
	optSpan.SetAttr("optimizer", o.Optimizer.Name())
	best, val, err := o.Optimizer.Optimize(start, eval)
	optSpan.SetAttr("evaluations", evals)
	optSpan.End(err)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("qaoa: cancelled before sampling: %w", err)
	}
	_, sampleSpan := obs.StartSpan(ctx, "qaoa.sample")
	sampleSpan.SetAttr("shots", o.Shots)
	sampleSpan.SetAttr("seeds", len(rngs))
	samples, err := ex.SampleSeeds(best, o.Shots, rngs)
	sampleSpan.End(err)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(rngs))
	for r := range out {
		out[r] = Result{
			Params:      best,
			Expectation: val,
			Evaluations: evals,
			Samples:     samples[r],
			Energies:    ex.ScoreSamples(samples[r]),
		}
	}
	return out, nil
}
