package qaoa

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/qubo"
)

func denseQUBO(rng *rand.Rand, n int) *qubo.QUBO {
	q := qubo.New(n)
	for i := 0; i < n; i++ {
		q.AddLinear(i, rng.NormFloat64())
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.5 {
				q.AddQuad(i, j, rng.NormFloat64())
			}
		}
	}
	return q
}

// TestExpectationTablePathMatchesValueBits checks that the cost-table fast
// path of Executor.Expectation agrees with the per-basis-state ValueBits
// fallback across random QUBOs and parameters.
func TestExpectationTablePathMatchesValueBits(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 4; trial++ {
		n := 4 + rng.Intn(6)
		q := denseQUBO(rng, n)
		params := NewParams(1)
		params.Gammas[0] = rng.Float64()
		params.Betas[0] = rng.Float64()

		fast := &Executor{QUBO: q}
		defer fast.Close()
		slow := &Executor{QUBO: q}
		slow.haveTable = true // nil table forces the ValueBits fallback
		defer slow.Close()

		got, err := fast.Expectation(params)
		if err != nil {
			t.Fatal(err)
		}
		if fast.table() == nil {
			t.Fatal("fast executor did not build a cost table")
		}
		want, err := slow.Expectation(params)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d n=%d: table path %v != ValueBits path %v", trial, n, got, want)
		}
	}
}

// TestExecutorStateReuse checks that repeated evaluations reuse the pooled
// statevector and still give identical results.
func TestExecutorStateReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	q := denseQUBO(rng, 6)
	ex := &Executor{QUBO: q}
	defer ex.Close()
	params := NewParams(1)
	params.Gammas[0] = 0.4
	params.Betas[0] = 0.3
	e1, err := ex.Expectation(params)
	if err != nil {
		t.Fatal(err)
	}
	s1 := ex.state
	e2, err := ex.Expectation(params)
	if err != nil {
		t.Fatal(err)
	}
	if ex.state != s1 {
		t.Fatal("executor allocated a fresh state on the second evaluation")
	}
	if e1 != e2 {
		t.Fatalf("state reuse changed the expectation: %v != %v", e1, e2)
	}
}

// TestScoreSamplesMatchesValueBits checks sample scoring through the table
// against direct evaluation.
func TestScoreSamplesMatchesValueBits(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	q := denseQUBO(rng, 8)
	ex := &Executor{QUBO: q}
	samples := make([]uint64, 50)
	for i := range samples {
		samples[i] = uint64(rng.Intn(1 << 8))
	}
	energies := ex.ScoreSamples(samples)
	for i, b := range samples {
		if want := q.ValueBits(b); math.Abs(energies[i]-want) > 1e-9 {
			t.Fatalf("sample %d (basis %d): energy %v != ValueBits %v", i, b, energies[i], want)
		}
	}
}

// TestRunContextCancellation checks that a cancelled context aborts the
// hybrid loop with a context error.
func TestRunContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	q := denseQUBO(rng, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, q, 1, AQGD{Iterations: 5}, 32, nil, nil, rng)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunContext returned %v, want context.Canceled", err)
	}
}

// TestRunPopulatesEnergies checks the end-to-end result carries per-sample
// energies consistent with the samples.
func TestRunPopulatesEnergies(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	q := denseQUBO(rng, 5)
	res, err := Run(q, 1, AQGD{Iterations: 3}, 64, nil, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Energies) != len(res.Samples) {
		t.Fatalf("got %d energies for %d samples", len(res.Energies), len(res.Samples))
	}
	for i, b := range res.Samples {
		if want := q.ValueBits(b); math.Abs(res.Energies[i]-want) > 1e-9 {
			t.Fatalf("sample %d: energy %v != ValueBits %v", i, res.Energies[i], want)
		}
	}
}
