package qaoa

import (
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/noise"
	"quantumjoin/internal/qsim"
	"quantumjoin/internal/qubo"
)

// smallQUBO has its unique minimum -2 at x = (0, 1, 1).
func smallQUBO() *qubo.QUBO {
	q := qubo.New(3)
	q.AddLinear(0, 2)
	q.AddLinear(1, -1)
	q.AddLinear(2, -1)
	q.AddQuad(0, 1, 1)
	q.AddQuad(1, 2, 0)
	q.AddQuad(0, 2, 1)
	return q
}

func TestBuildCircuitStructure(t *testing.T) {
	q := smallQUBO()
	c := BuildCircuit(q, NewParams(1))
	// n Hadamards + RZ per nonzero field + RZZ per coupling + n RX.
	is := q.ToIsing()
	nonzeroH := 0
	for _, h := range is.H {
		if h != 0 {
			nonzeroH++
		}
	}
	want := q.N() + nonzeroH + len(is.J) + q.N()
	if len(c.Gates) != want {
		t.Fatalf("gate count %d, want %d", len(c.Gates), want)
	}
	// p layers scale the layered part.
	c2 := BuildCircuit(q, NewParams(2))
	if len(c2.Gates) != q.N()+2*(nonzeroH+len(is.J)+q.N()) {
		t.Fatalf("p=2 gate count %d", len(c2.Gates))
	}
}

func TestZeroParamsGiveUniform(t *testing.T) {
	q := smallQUBO()
	ex := &Executor{QUBO: q}
	e, err := ex.Expectation(NewParams(1))
	if err != nil {
		t.Fatal(err)
	}
	// γ = β = 0 leaves the uniform superposition: E = mean of f.
	mean := 0.0
	for b := uint64(0); b < 8; b++ {
		mean += q.ValueBits(b)
	}
	mean /= 8
	if math.Abs(e-mean) > 1e-9 {
		t.Fatalf("E at zero params = %v, want uniform mean %v", e, mean)
	}
	if u := ex.uniformExpectation(); math.Abs(u-mean) > 1e-9 {
		t.Fatalf("uniformExpectation = %v, want %v", u, mean)
	}
}

func TestQAOABeatsRandomGuessing(t *testing.T) {
	q := smallQUBO()
	ex := &Executor{QUBO: q}
	opt := GridSearch{Points: 12}
	best, val, err := opt.Optimize(NewParams(1), func(p Params) (float64, error) {
		return ex.Expectation(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	uniform := ex.uniformExpectation()
	if val >= uniform {
		t.Fatalf("optimised expectation %v not below uniform %v", val, uniform)
	}
	// The optimal state must over-sample the minimiser relative to uniform.
	s, err := ex.run(best)
	if err != nil {
		t.Fatal(err)
	}
	pOpt := s.Probability(0b110) // x = (0,1,1)
	if pOpt <= 1.0/8 {
		t.Fatalf("P(optimum) = %v, not amplified above uniform 1/8", pOpt)
	}
}

func TestRunEndToEnd(t *testing.T) {
	q := smallQUBO()
	rng := rand.New(rand.NewSource(1))
	res, err := Run(q, 1, AQGD{Iterations: 15}, 2048, nil, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations < 15 {
		t.Fatalf("too few evaluations: %d", res.Evaluations)
	}
	if len(res.Samples) != 2048 {
		t.Fatalf("sample count %d", len(res.Samples))
	}
	hits := 0
	for _, b := range res.Samples {
		if b == 0b110 {
			hits++
		}
	}
	if frac := float64(hits) / 2048; frac <= 1.0/8 {
		t.Fatalf("optimum sampled with frequency %v, want > uniform 0.125", frac)
	}
}

func TestRunRejectsBadP(t *testing.T) {
	if _, err := Run(smallQUBO(), 0, AQGD{}, 16, nil, nil, rand.New(rand.NewSource(1))); err == nil {
		t.Error("accepted p=0")
	}
}

func TestNoiseDegradesExpectation(t *testing.T) {
	q := smallQUBO()
	clean := &Executor{QUBO: q}
	cal := noise.Auckland()
	noisy := &Executor{QUBO: q, Noise: &cal}
	p := NewParams(1)
	p.Gammas[0] = 0.4
	p.Betas[0] = 0.5
	ec, err := clean.Expectation(p)
	if err != nil {
		t.Fatal(err)
	}
	en, err := noisy.Expectation(p)
	if err != nil {
		t.Fatal(err)
	}
	u := clean.uniformExpectation()
	// Noisy expectation must lie between the clean value and the uniform
	// mean (when clean < uniform).
	if ec < u && !(en >= ec-1e-9 && en <= u+1e-9) {
		t.Fatalf("noisy E=%v outside [clean %v, uniform %v]", en, ec, u)
	}
}

func TestFullyDepolarisedSamplingIsUniformish(t *testing.T) {
	q := smallQUBO()
	cal := noise.Auckland()
	cal.Error2Q = 0.8 // drive λ to ~1
	ex := &Executor{QUBO: q, Noise: &cal}
	p := NewParams(1)
	rng := rand.New(rand.NewSource(2))
	samples, err := ex.Sample(p, 8000, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	for _, b := range samples {
		counts[b]++
	}
	for b, c := range counts {
		frac := float64(c) / 8000
		if frac < 0.05 || frac > 0.22 {
			t.Fatalf("state %d frequency %v too far from uniform", b, frac)
		}
	}
}

func TestAQGDImprovesOverStart(t *testing.T) {
	q := smallQUBO()
	ex := &Executor{QUBO: q}
	start := NewParams(1)
	start.Gammas[0] = 0.01
	start.Betas[0] = math.Pi / 8
	sv, err := ex.Expectation(start)
	if err != nil {
		t.Fatal(err)
	}
	_, val, err := AQGD{Iterations: 25}.Optimize(start, func(p Params) (float64, error) {
		return ex.Expectation(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if val > sv+1e-9 {
		t.Fatalf("AQGD worsened: %v -> %v", sv, val)
	}
}

func TestSPSAImprovesOverStart(t *testing.T) {
	q := smallQUBO()
	ex := &Executor{QUBO: q}
	start := NewParams(1)
	start.Gammas[0] = 0.01
	start.Betas[0] = math.Pi / 8
	sv, _ := ex.Expectation(start)
	_, val, err := SPSA{Iterations: 60, Seed: 7}.Optimize(start, func(p Params) (float64, error) {
		return ex.Expectation(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if val > sv+1e-9 {
		t.Fatalf("SPSA worsened: %v -> %v", sv, val)
	}
}

func TestOptimizerNames(t *testing.T) {
	if (AQGD{}).Name() != "aqgd" || (GridSearch{}).Name() != "grid" || (SPSA{}).Name() != "spsa" {
		t.Error("optimizer names wrong")
	}
}

func TestGridSearchFallsBackForP2(t *testing.T) {
	q := smallQUBO()
	ex := &Executor{QUBO: q}
	start := NewParams(2)
	p, _, err := GridSearch{}.Optimize(start, func(p Params) (float64, error) {
		return ex.Expectation(p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.P() != 2 {
		t.Fatal("grid fallback changed p")
	}
}

func TestSamplesDecodeViaBits(t *testing.T) {
	// Cross-check qsim.BitsOf against QUBO evaluation on samples.
	q := smallQUBO()
	rng := rand.New(rand.NewSource(3))
	res, err := Run(q, 1, GridSearch{Points: 8}, 64, nil, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Samples {
		x := qsim.BitsOf(b, q.N())
		if math.Abs(q.Value(x)-q.ValueBits(b)) > 1e-12 {
			t.Fatal("BitsOf and ValueBits disagree")
		}
	}
}
