package qaoa

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"quantumjoin/internal/qsim"
	"quantumjoin/internal/qubo"
)

// randomQUBO builds a dense-ish random problem at QAOA service scale.
func randomQUBO(rng *rand.Rand, n int) *qubo.QUBO {
	q := qubo.New(n)
	for i := 0; i < n; i++ {
		q.AddLinear(i, rng.NormFloat64())
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.4 {
				q.AddQuad(i, j, rng.NormFloat64())
			}
		}
	}
	return q
}

// qaoaExpectationBound pins the allowed complex64-vs-complex128 deviation
// of a QAOA expectation, and qaoaEnergyBound the deviation of the mean
// sampled energy, both relative to the QUBO's energy scale. float32
// amplitude storage perturbs each probability by ~1e-7; summed against
// O(1) cost coefficients over 2^10 basis states the observed expectation
// drift is ~1e-6, and sampling shifts only the shots whose uniforms
// straddle a perturbed cumulative boundary. A real kernel bug (wrong
// phase, swapped pair) shows up at 1e-1.
const (
	qaoaExpectationBound = 1e-4
	qaoaEnergyBound      = 5e-3
)

// TestComplex64ExpectationWithinBound is the tentpole error-bound test:
// QAOA expectations and mean sampled energies evaluated on the complex64
// backend must stay within the pinned bound of the complex128 ground truth
// across random problems and parameter settings.
func TestComplex64ExpectationWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8101))
	for trial := 0; trial < 4; trial++ {
		q := randomQUBO(rng, 10)
		scale := 1.0
		for b := uint64(0); b < 1<<10; b++ {
			if v := math.Abs(q.ValueBits(b)); v > scale {
				scale = v
			}
		}
		ref := &Executor{QUBO: q}
		fast := &Executor{QUBO: q, Precision: qsim.Complex64}
		for pi := 0; pi < 3; pi++ {
			params := NewParams(1)
			params.Gammas[0] = rng.Float64()
			params.Betas[0] = rng.Float64() * math.Pi
			eRef, err := ref.Expectation(params)
			if err != nil {
				t.Fatal(err)
			}
			eFast, err := fast.Expectation(params)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(eFast-eRef) / scale; d > qaoaExpectationBound {
				t.Fatalf("trial=%d params=%d: complex64 expectation off by %g×scale (bound %g)", trial, pi, d, qaoaExpectationBound)
			}
			const shots = 4096
			sRef, err := ref.Sample(params, shots, rand.New(rand.NewSource(int64(trial*10+pi))))
			if err != nil {
				t.Fatal(err)
			}
			sFast, err := fast.Sample(params, shots, rand.New(rand.NewSource(int64(trial*10+pi))))
			if err != nil {
				t.Fatal(err)
			}
			mean := func(es []float64) float64 {
				m := 0.0
				for _, e := range es {
					m += e
				}
				return m / float64(len(es))
			}
			dm := math.Abs(mean(ref.ScoreSamples(sRef))-mean(fast.ScoreSamples(sFast))) / scale
			if dm > qaoaEnergyBound {
				t.Fatalf("trial=%d params=%d: complex64 mean sampled energy off by %g×scale (bound %g)", trial, pi, dm, qaoaEnergyBound)
			}
		}
		ref.Close()
		fast.Close()
	}
}

// TestProgramRewriteMatchesRebuild pins the cached-skeleton fast path: an
// executor that rewrites angles in place must produce bit-identical
// expectations to executing a freshly built circuit on a fresh state.
func TestProgramRewriteMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(8202))
	q := randomQUBO(rng, 8)
	ex := &Executor{QUBO: q}
	defer ex.Close()
	tab := q.CostTable()
	for trial := 0; trial < 5; trial++ {
		params := NewParams(2)
		for i := range params.Gammas {
			params.Gammas[i] = rng.NormFloat64()
			params.Betas[i] = rng.NormFloat64()
		}
		got, err := ex.Expectation(params)
		if err != nil {
			t.Fatal(err)
		}
		s, err := qsim.NewState(q.N())
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(BuildCircuit(q, params)); err != nil {
			t.Fatal(err)
		}
		want := s.ExpectationTable(tab)
		if got != want {
			t.Fatalf("trial=%d: rewritten program expectation %v != rebuilt circuit %v (must be bit-identical)", trial, got, want)
		}
	}
}

// TestRunSeedsContextMatchesRunContext pins the batched multi-seed run
// against solo runs: same params, expectation, samples, and energies per
// seed.
func TestRunSeedsContextMatchesRunContext(t *testing.T) {
	rng := rand.New(rand.NewSource(8303))
	q := randomQUBO(rng, 6)
	opt := AQGD{Iterations: 4}
	seeds := []int64{3, 17, 99}
	rngs := make([]*rand.Rand, len(seeds))
	for i, s := range seeds {
		rngs[i] = rand.New(rand.NewSource(s))
	}
	batch, err := RunSeedsContext(context.Background(), q, RunOptions{Layers: 1, Optimizer: opt, Shots: 128}, rngs)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		solo, err := RunContext(context.Background(), q, 1, opt, 128, nil, nil, rand.New(rand.NewSource(s)))
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Expectation != solo.Expectation || batch[i].Evaluations != solo.Evaluations {
			t.Fatalf("seed=%d: batched run diverges on expectation/evals", s)
		}
		if len(batch[i].Samples) != len(solo.Samples) {
			t.Fatalf("seed=%d: sample count %d != %d", s, len(batch[i].Samples), len(solo.Samples))
		}
		for k := range solo.Samples {
			if batch[i].Samples[k] != solo.Samples[k] {
				t.Fatalf("seed=%d shot=%d: batched sample %d != solo %d", s, k, batch[i].Samples[k], solo.Samples[k])
			}
			if batch[i].Energies[k] != solo.Energies[k] {
				t.Fatalf("seed=%d shot=%d: batched energy %v != solo %v", s, k, batch[i].Energies[k], solo.Energies[k])
			}
		}
	}
}
