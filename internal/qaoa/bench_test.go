package qaoa

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkQAOAExpectation compares one optimiser energy evaluation through
// the per-basis-state ValueBits closure (the old inner loop) against the
// precomputed dense cost table. The table is built once outside the timed
// loop, as it is in a real run (cached across optimiser iterations).
func BenchmarkQAOAExpectation(b *testing.B) {
	sizes := []int{16, 20}
	if testing.Short() {
		sizes = []int{16}
	}
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(int64(n)))
		q := denseQUBO(rng, n)
		params := NewParams(1)
		params.Gammas[0] = 0.37
		params.Betas[0] = 0.41

		b.Run(fmt.Sprintf("n=%d/valuebits", n), func(b *testing.B) {
			ex := &Executor{QUBO: q}
			ex.haveTable = true // nil table: per-amplitude ValueBits
			defer ex.Close()
			if _, err := ex.Expectation(params); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Expectation(params); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/table", n), func(b *testing.B) {
			ex := &Executor{QUBO: q}
			defer ex.Close()
			if _, err := ex.Expectation(params); err != nil {
				b.Fatal(err) // warm: builds table and pooled state
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ex.Expectation(params); err != nil {
					b.Fatal(err)
				}
			}
		})
		// Isolate the expectation sweep itself (no circuit re-execution):
		// this is the piece the cost table accelerates.
		b.Run(fmt.Sprintf("n=%d/sweep-valuebits", n), func(b *testing.B) {
			ex := &Executor{QUBO: q}
			defer ex.Close()
			s, err := ex.run(params)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.ExpectationDiag(func(bb uint64) float64 { return q.ValueBits(bb) })
			}
		})
		b.Run(fmt.Sprintf("n=%d/sweep-table", n), func(b *testing.B) {
			ex := &Executor{QUBO: q}
			defer ex.Close()
			s, err := ex.run(params)
			if err != nil {
				b.Fatal(err)
			}
			tab := ex.table()
			if tab == nil {
				b.Fatal("no cost table built")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.ExpectationTable(tab)
			}
		})
	}
}
