package faults

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/obs"
	"quantumjoin/internal/service"
)

// ErrBreakerOpen is returned (wrapped) when the circuit breaker fast-fails
// a request without touching the backend. It unwraps to
// service.ErrUnavailable so the HTTP layer answers 503 + Retry-After, and
// it is deliberately not Retryable: retrying into an open breaker is how
// retry storms are made.
var ErrBreakerOpen = fmt.Errorf("faults: circuit breaker open: %w", service.ErrUnavailable)

// BreakerConfig tunes the circuit breaker. The zero value selects the
// defaults noted per field.
type BreakerConfig struct {
	// ConsecutiveFailures trips the breaker after this many failed solves
	// in a row (default 5).
	ConsecutiveFailures int
	// ErrorRate trips the breaker when the failure fraction over the
	// sliding window reaches it, once MinSamples outcomes are recorded
	// (default 0.6).
	ErrorRate float64
	// Window is the sliding outcome window size (default 20).
	Window int
	// MinSamples is the minimum window occupancy before the error-rate
	// condition can trip — a single early failure is not a 100% error rate
	// (default 10).
	MinSamples int
	// OpenFor is how long the breaker stays open before admitting a
	// half-open probe (default 500ms).
	OpenFor time.Duration
	// HalfOpenSuccesses is how many consecutive successful probes close
	// the breaker again (default 2).
	HalfOpenSuccesses int
	// Now is the breaker's clock (default time.Now); tests inject a fake.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 5
	}
	if c.ErrorRate <= 0 || c.ErrorRate > 1 {
		c.ErrorRate = 0.6
	}
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 500 * time.Millisecond
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// stateName maps a breaker state to its log/metrics label.
func stateName(s int) string {
	switch s {
	case stateOpen:
		return service.HealthOpen
	case stateHalfOpen:
		return service.HealthHalfOpen
	default:
		return service.HealthOK
	}
}

// breaker is the three-state circuit breaker. All state transitions happen
// under mu; Solve holds the lock only around admission and bookkeeping,
// never across the inner solve.
type breaker struct {
	inner service.Backend
	cfg   BreakerConfig

	mu          sync.Mutex
	state       int
	consecutive int    // current run of failures (closed state)
	window      []bool // ring buffer of outcomes, true = failure
	widx        int
	wcount      int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
	successes   int  // consecutive successful probes (half-open state)
	trips       int64
	// lastTransition is when the breaker last changed state (construction
	// counts as entering closed); Health surfaces its age so operators —
	// and the cluster gossip layer — can tell a freshly-tripped breaker
	// from one that has been open for minutes.
	lastTransition time.Time
}

// WithBreaker wraps backend with a three-state circuit breaker: after
// ConsecutiveFailures failed solves in a row (or an ErrorRate failure
// fraction over the sliding window) the breaker opens and requests
// fast-fail with ErrBreakerOpen — sub-millisecond, no backend work, no
// queue wait. After OpenFor it admits one probe request at a time
// (half-open); HalfOpenSuccesses consecutive probe successes close it,
// any probe failure re-opens it.
//
// Stack it outermost (WithBreaker(WithRetry(Inject(b)))) so the breaker
// judges post-retry outcomes: a request that succeeded on its third
// attempt is a success, not three data points.
func WithBreaker(backend service.Backend, cfg BreakerConfig) service.Backend {
	cfg = cfg.withDefaults()
	return &breaker{
		inner:          backend,
		cfg:            cfg,
		window:         make([]bool, cfg.Window),
		lastTransition: cfg.Now(),
	}
}

// Name implements service.Backend.
func (b *breaker) Name() string { return b.inner.Name() }

// Solve implements service.Backend.
func (b *breaker) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	if err := b.admit(); err != nil {
		return nil, fmt.Errorf("faults: backend %q: %w", b.Name(), err)
	}
	d, err := b.inner.Solve(ctx, enc, p)
	if from, to, changed := b.observe(err); changed {
		obs.Logger(ctx).WarnContext(ctx, "circuit breaker state change",
			"backend", b.Name(), "from", stateName(from), "to", stateName(to))
	}
	return d, err
}

// admit decides whether a request may reach the backend, advancing
// open→half-open when the open interval has elapsed.
func (b *breaker) admit() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.OpenFor {
			return ErrBreakerOpen
		}
		b.state = stateHalfOpen
		b.successes = 0
		b.probing = false
		b.lastTransition = b.cfg.Now()
		fallthrough
	default: // stateHalfOpen
		if b.probing {
			// One probe at a time: concurrent traffic keeps fast-failing
			// until the probe's verdict is in.
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// observe folds one solve outcome into the breaker state and reports any
// state transition it caused, so the caller can log it. Caller
// cancellation is neutral — a race loser or a client walking away says
// nothing about the backend's health — but a blown deadline counts as a
// failure: the backend did not answer within the budget it was given.
func (b *breaker) observe(err error) (from, to int, changed bool) {
	neutral := errors.Is(err, context.Canceled)
	failure := err != nil && !neutral

	b.mu.Lock()
	defer b.mu.Unlock()
	from = b.state
	defer func() {
		to = b.state
		changed = to != from
	}()
	switch b.state {
	case stateHalfOpen:
		b.probing = false
		if neutral {
			return
		}
		if failure {
			b.trip()
			return
		}
		b.successes++
		if b.successes >= b.cfg.HalfOpenSuccesses {
			b.reset()
		}
	case stateClosed:
		if neutral {
			return
		}
		b.window[b.widx] = failure
		b.widx = (b.widx + 1) % len(b.window)
		if b.wcount < len(b.window) {
			b.wcount++
		}
		if failure {
			b.consecutive++
		} else {
			b.consecutive = 0
		}
		if b.consecutive >= b.cfg.ConsecutiveFailures ||
			(b.wcount >= b.cfg.MinSamples && b.errorRateLocked() >= b.cfg.ErrorRate) {
			b.trip()
		}
	default: // stateOpen: a straggler admitted earlier; its outcome is stale.
	}
	return
}

// trip moves the breaker to open (from closed or half-open).
func (b *breaker) trip() {
	b.state = stateOpen
	b.openedAt = b.cfg.Now()
	b.lastTransition = b.openedAt
	b.trips++
}

// reset returns the breaker to closed with a clean slate.
func (b *breaker) reset() {
	b.state = stateClosed
	b.consecutive = 0
	b.wcount = 0
	b.widx = 0
	b.successes = 0
	b.lastTransition = b.cfg.Now()
}

// errorRateLocked is the failure fraction over the occupied window; the
// caller holds mu.
func (b *breaker) errorRateLocked() float64 {
	if b.wcount == 0 {
		return 0
	}
	failures := 0
	for i := 0; i < b.wcount; i++ {
		if b.window[i] {
			failures++
		}
	}
	return float64(failures) / float64(b.wcount)
}

// Health implements service.HealthReporter; /healthz and /metrics surface
// it, and the hybrid orchestrator skips backends reporting HealthOpen.
func (b *breaker) Health() service.BackendHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	state := service.HealthOK
	switch b.state {
	case stateOpen:
		state = service.HealthOpen
		if b.cfg.Now().Sub(b.openedAt) >= b.cfg.OpenFor {
			// The next request will be admitted as a probe.
			state = service.HealthHalfOpen
		}
	case stateHalfOpen:
		state = service.HealthHalfOpen
	}
	return service.BackendHealth{
		State:               state,
		ConsecutiveFailures: b.consecutive,
		ErrorRate:           b.errorRateLocked(),
		Trips:               b.trips,
		StateAgeSeconds:     b.cfg.Now().Sub(b.lastTransition).Seconds(),
	}
}
