// Package faults models the QPU as an unreliable co-processor and makes
// qjoind correct in spite of it. The paper's closing co-design argument
// (§8) is that cloud-accessed quantum hardware pays network round trips,
// time-shared queueing, and recalibration windows; internal/noise encodes
// the latency side of that story, and this package encodes the failure
// side: rejected jobs, queue timeouts, calibration blackouts, mid-run
// aborts, and silently corrupted results — the failure modes real IBM Q
// and D-Wave access exhibits.
//
// Three composable service.Backend wrappers are provided:
//
//   - Inject: a deterministic, seed-driven fault injector that turns any
//     backend into an unreliable one (for chaos tests, cmd/chaosbench, and
//     the qjoind -chaos-* flags).
//   - WithRetry: retries retryable faults with jittered exponential
//     backoff drawn strictly from the request's remaining deadline budget.
//   - WithBreaker: a three-state circuit breaker (closed/open/half-open)
//     that fast-fails requests to a backend that keeps failing and probes
//     it back to health.
//
// Stack them inner→outer as Inject → WithRetry → WithBreaker: retries sit
// next to the flaky backend, and the breaker sees post-retry outcomes.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"quantumjoin/internal/core"
	"quantumjoin/internal/minorembed"
	"quantumjoin/internal/noise"
	"quantumjoin/internal/service"
)

// Kind classifies an injected (or observed) fault, mirroring the failure
// taxonomy of real cloud QPU access (see DESIGN.md "Fault model").
type Kind int

const (
	// KindRejected: the submission API refused the job (malformed by the
	// device's standards of the hour, over quota, embedding rejected).
	KindRejected Kind = iota
	// KindQueueTimeout: the time-shared queue wait exceeded the request's
	// remaining deadline budget; the job was never started.
	KindQueueTimeout
	// KindCalibration: the device is inside a recalibration window and
	// rejects all submissions until it reopens.
	KindCalibration
	// KindAborted: the job started and was killed mid-run (preemption,
	// control error, chain break storm).
	KindAborted
	// KindCorrupted: the job "succeeded" but the returned solution failed
	// structural validation downstream (readout bit flips).
	KindCorrupted
	// KindPeerUnreachable: a cluster peer that owns the request's cache key
	// could not be reached (connection refused, timeout, 5xx); the sender
	// falls back to solving locally and routes around the peer.
	KindPeerUnreachable
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRejected:
		return "rejected"
	case KindQueueTimeout:
		return "queue-timeout"
	case KindCalibration:
		return "calibration"
	case KindAborted:
		return "aborted"
	case KindCorrupted:
		return "corrupted"
	case KindPeerUnreachable:
		return "peer-unreachable"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Error is a classified backend fault. All kinds are transient: a retry
// with a fresh seed (and, for calibration, a little patience) may succeed.
type Error struct {
	Kind    Kind
	Backend string
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: backend %q: %s", e.Backend, e.Kind)
}

// Unwrap maps every fault onto service.ErrUnavailable: a fault that
// survives the retry layer is transient unavailability, so the HTTP layer
// answers 503 + Retry-After (never 500) even with degradation disabled.
func (e *Error) Unwrap() error { return service.ErrUnavailable }

// Retryable reports whether err is worth retrying against the same
// backend: classified faults, failed minor-embedding attempts (a different
// seed may embed — the anneal backend surfaces minorembed.ErrNoEmbedding),
// and nothing else. Context errors are explicitly not retryable: the
// deadline budget is gone or the caller walked away.
func Retryable(err error) bool {
	var fe *Error
	if errors.As(err, &fe) {
		return true
	}
	if errors.Is(err, minorembed.ErrNoEmbedding) {
		return true
	}
	return false
}

// InjectorConfig tunes the unreliable-QPU model. All probabilities are per
// solve attempt in [0,1]; the zero value injects nothing.
type InjectorConfig struct {
	// RejectProb is the probability the job is refused on submission.
	RejectProb float64
	// AbortProb is the probability the job is killed mid-run: the inner
	// solve is started and cancelled partway through its budget.
	AbortProb float64
	// CorruptProb is the probability a successful result is corrupted
	// before being returned: either the order is damaged into a
	// non-permutation (caught by structural vetting downstream) or the
	// reported cost is silently halved (caught by true-cost re-scoring).
	CorruptProb float64
	// Access models the submission path; queue waits are sampled from it
	// (exponential with mean Access.QueueWaitNs) and slept before the
	// inner solve, or converted into a queue-timeout fault when the wait
	// exceeds the remaining deadline. The zero model waits nothing.
	Access noise.AccessModel
	// CalibrationPeriod and CalibrationWindow define periodic blackout
	// intervals: submissions inside the first CalibrationWindow of every
	// CalibrationPeriod (measured from the injector's epoch) are refused.
	// A zero period disables blackouts.
	CalibrationPeriod time.Duration
	CalibrationWindow time.Duration
	// Seed drives every fault decision. Fault fates are derived from
	// mix(Seed, request seed), so a request's fate is a pure function of
	// the two seeds — deterministic under any concurrency interleaving.
	Seed int64
	// Now is the clock for calibration windows (default time.Now); tests
	// inject a fake.
	Now func() time.Time
	// Metrics, when non-nil, receives a RecordFault per injected fault
	// under the wrapped backend's name.
	Metrics *service.Metrics
}

// injector wraps a backend with the unreliable-QPU model.
type injector struct {
	inner service.Backend
	cfg   InjectorConfig
	epoch time.Time
}

// Inject wraps backend with a deterministic seed-driven fault model.
func Inject(backend service.Backend, cfg InjectorConfig) service.Backend {
	now := cfg.Now
	if now == nil {
		now = time.Now
		cfg.Now = now
	}
	return &injector{inner: backend, cfg: cfg, epoch: now()}
}

// Name implements service.Backend (the injector impersonates its inner
// backend — callers select it under the original name).
func (in *injector) Name() string { return in.inner.Name() }

// mix combines the injector and request seeds into an rng seed
// (splitmix64-style finalizer, so adjacent seeds diverge).
func mix(a, b int64) int64 {
	z := uint64(a) ^ (uint64(b) * 0x9e3779b97f4a7c15)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

func (in *injector) fault(k Kind) error {
	if in.cfg.Metrics != nil {
		in.cfg.Metrics.Backend(in.Name()).RecordFault()
	}
	return &Error{Kind: k, Backend: in.Name()}
}

// Solve implements service.Backend: it rolls the fault dice (deterministic
// for the request seed), then delegates to the inner backend with whatever
// damage the model prescribes.
func (in *injector) Solve(ctx context.Context, enc *core.Encoding, p service.Params) (*core.Decoded, error) {
	rng := rand.New(rand.NewSource(mix(in.cfg.Seed, p.Seed)))

	// Calibration blackout: wall-clock periodic, checked first — the real
	// submission APIs bounce jobs before queueing them.
	if in.cfg.CalibrationPeriod > 0 && in.cfg.CalibrationWindow > 0 {
		phase := in.cfg.Now().Sub(in.epoch) % in.cfg.CalibrationPeriod
		if phase < in.cfg.CalibrationWindow {
			return nil, in.fault(KindCalibration)
		}
	}
	if rng.Float64() < in.cfg.RejectProb {
		return nil, in.fault(KindRejected)
	}

	// Queue wait: sampled from the access model. A wait longer than the
	// remaining budget is a queue timeout without burning the budget (the
	// cloud queue estimators bounce such jobs up front); otherwise the
	// wait is really slept so latency observability sees it.
	if wait := time.Duration(in.cfg.Access.SampleOverheadNs(rng)); wait > 0 {
		if deadline, ok := ctx.Deadline(); ok && wait > time.Until(deadline) {
			return nil, in.fault(KindQueueTimeout)
		}
		timer := time.NewTimer(wait)
		select {
		case <-ctx.Done():
			timer.Stop()
			return nil, fmt.Errorf("faults: backend %q cancelled in queue: %w", in.Name(), ctx.Err())
		case <-timer.C:
		}
	}

	// Mid-run abort: start the job, kill it partway through its remaining
	// budget. A solve that finishes before the axe falls survives.
	abort := rng.Float64() < in.cfg.AbortProb
	corrupt := rng.Float64() < in.cfg.CorruptProb
	corruptHard := rng.Intn(2) == 0
	solveCtx := ctx
	if abort {
		budget := 5 * time.Millisecond
		if deadline, ok := ctx.Deadline(); ok {
			if rem := time.Until(deadline); rem > 0 {
				budget = time.Duration(rng.Int63n(int64(rem)/2 + 1))
			}
		}
		var cancel context.CancelFunc
		solveCtx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	d, err := in.inner.Solve(solveCtx, enc, p)
	if err != nil {
		if abort && solveCtx.Err() != nil && ctx.Err() == nil {
			// The abort axe, not the caller's deadline, killed it.
			return nil, in.fault(KindAborted)
		}
		return nil, err
	}

	if corrupt && d != nil && d.Valid && len(d.Order) > 1 {
		dd := *d
		dd.Order = append(dd.Order[:0:0], dd.Order...)
		if corruptHard {
			// Readout bit flip: duplicate one relation — no longer a
			// permutation, caught by structural vetting.
			dd.Order[0] = dd.Order[len(dd.Order)-1]
		} else {
			// Soft lie: claim half the true cost — caught by true-cost
			// re-scoring, which silently repairs the number.
			dd.Cost /= 2
		}
		if in.cfg.Metrics != nil {
			in.cfg.Metrics.Backend(in.Name()).RecordFault()
		}
		return &dd, nil
	}
	return d, nil
}
